#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/algos.h"
#include "graph/generators.h"
#include "reach/reachability.h"

namespace pitract {
namespace reach {
namespace {

TEST(BitsetTest, SetTestClear) {
  Bitset b(130);
  EXPECT_FALSE(b.Test(0));
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 3);
  b.Clear(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 2);
}

TEST(BitsetTest, UnionWithReportsChange) {
  Bitset a(100), b(100);
  a.Set(3);
  b.Set(70);
  EXPECT_TRUE(a.UnionWith(b));
  EXPECT_TRUE(a.Test(3));
  EXPECT_TRUE(a.Test(70));
  EXPECT_FALSE(a.UnionWith(b)) << "idempotent union reports no change";
}

TEST(ReachabilityMatrixTest, PathGraph) {
  graph::Graph g = graph::Path(6, /*directed=*/true);
  auto m = ReachabilityMatrix::Build(g);
  CostMeter meter;
  EXPECT_TRUE(m.Reachable(0, 5, &meter));
  EXPECT_TRUE(m.Reachable(2, 2, &meter)) << "reflexive by convention";
  EXPECT_FALSE(m.Reachable(5, 0, &meter));
  EXPECT_FALSE(m.Reachable(3, 1, &meter));
}

TEST(ReachabilityMatrixTest, CycleReachesEverything) {
  graph::Graph g = graph::Cycle(5, /*directed=*/true);
  auto m = ReachabilityMatrix::Build(g);
  for (graph::NodeId u = 0; u < 5; ++u) {
    for (graph::NodeId v = 0; v < 5; ++v) {
      EXPECT_TRUE(m.Reachable(u, v, nullptr));
    }
  }
  EXPECT_EQ(m.NumReachablePairs(), 25);
}

TEST(ReachabilityMatrixTest, EmptyGraph) {
  auto g = graph::Graph::FromEdges(3, {}, true);
  ASSERT_TRUE(g.ok());
  auto m = ReachabilityMatrix::Build(*g);
  EXPECT_TRUE(m.Reachable(1, 1, nullptr));
  EXPECT_FALSE(m.Reachable(0, 1, nullptr));
  EXPECT_EQ(m.NumReachablePairs(), 3);
}

TEST(ReachabilityMatrixTest, QueryIsConstantDepth) {
  Rng rng(50);
  graph::Graph small = graph::ErdosRenyi(64, 128, true, &rng);
  graph::Graph large = graph::ErdosRenyi(1024, 4096, true, &rng);
  auto ms = ReachabilityMatrix::Build(small);
  auto ml = ReachabilityMatrix::Build(large);
  CostMeter cs, cl;
  ms.Reachable(1, 2, &cs);
  ml.Reachable(1, 2, &cl);
  EXPECT_EQ(cs.depth(), cl.depth()) << "O(1) probes regardless of |G|";
}

// Differential sweep: matrix must agree with per-query BFS on random
// digraphs of several densities.
struct ReachParam {
  uint64_t seed;
  graph::NodeId n;
  int64_t m;
};

class ReachabilityPropertyTest : public ::testing::TestWithParam<ReachParam> {};

TEST_P(ReachabilityPropertyTest, MatchesBfs) {
  const auto param = GetParam();
  Rng rng(param.seed);
  graph::Graph g = graph::ErdosRenyi(param.n, param.m, true, &rng);
  auto matrix = ReachabilityMatrix::Build(g);
  for (int trial = 0; trial < 200; ++trial) {
    auto u = static_cast<graph::NodeId>(
        rng.NextBelow(static_cast<uint64_t>(param.n)));
    auto v = static_cast<graph::NodeId>(
        rng.NextBelow(static_cast<uint64_t>(param.n)));
    EXPECT_EQ(matrix.Reachable(u, v, nullptr),
              graph::BfsReachable(g, u, v, nullptr))
        << "u=" << u << " v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Graphs, ReachabilityPropertyTest,
    ::testing::Values(ReachParam{1, 30, 20}, ReachParam{2, 30, 60},
                      ReachParam{3, 60, 240}, ReachParam{4, 100, 100},
                      ReachParam{5, 100, 500}, ReachParam{6, 200, 150}));

TEST(ReachabilityMatrixTest, NumReachablePairsCountsNodePairs) {
  // Two-node cycle plus a tail: {0<->1} -> 2.
  auto g = graph::Graph::FromEdges(3, {{0, 1}, {1, 0}, {1, 2}}, true);
  ASSERT_TRUE(g.ok());
  auto m = ReachabilityMatrix::Build(*g);
  // 0 reaches {0,1,2}, 1 reaches {0,1,2}, 2 reaches {2} = 7 pairs.
  EXPECT_EQ(m.NumReachablePairs(), 7);
}

}  // namespace
}  // namespace reach
}  // namespace pitract
