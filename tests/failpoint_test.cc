// Coverage for the fault-injection subsystem (common/failpoint.h): policy
// semantics (always / once / every-Nth / seeded probability), the global
// enable switch, site stats, the RAII guard, and determinism of seeded
// schedules.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"

namespace pitract {
namespace failpoint {
namespace {

TEST(FailpointTest, DisarmedProcessNeverFires) {
  DisarmAll();
  EXPECT_FALSE(Enabled());
  // The macro's short-circuit: a disarmed process never even reaches
  // ShouldFail, so an unknown site is free.
  EXPECT_FALSE(PITRACT_FAILPOINT("no.such.site"));
  EXPECT_TRUE(ArmedSites().empty());
}

TEST(FailpointTest, ArmingFlipsTheGlobalSwitchAndDisarmingRestoresIt) {
  ScopedFailpoints guard;
  EXPECT_FALSE(Enabled());
  Arm("a", Never());
  EXPECT_TRUE(Enabled());
  Arm("b", Never());
  Disarm("a");
  EXPECT_TRUE(Enabled());  // "b" still armed
  Disarm("b");
  EXPECT_FALSE(Enabled());  // last site out turns the switch off
}

TEST(FailpointTest, UnknownSiteDoesNotFireEvenWhenEnabled) {
  ScopedFailpoints guard;
  Arm("known", Always());
  EXPECT_FALSE(PITRACT_FAILPOINT("unknown"));
  EXPECT_TRUE(PITRACT_FAILPOINT("known"));
}

TEST(FailpointTest, AlwaysPolicyFiresEveryEvaluation) {
  ScopedFailpoints guard;
  Arm("site", Always());
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(PITRACT_FAILPOINT("site"));
  }
  const SiteStats stats = StatsFor("site");
  EXPECT_EQ(stats.evaluations, 10);
  EXPECT_EQ(stats.fires, 10);
}

TEST(FailpointTest, OncePolicyFiresExactlyOnce) {
  ScopedFailpoints guard;
  Arm("site", Once());
  EXPECT_TRUE(PITRACT_FAILPOINT("site"));
  for (int i = 0; i < 9; ++i) {
    EXPECT_FALSE(PITRACT_FAILPOINT("site"));
  }
  const SiteStats stats = StatsFor("site");
  EXPECT_EQ(stats.evaluations, 10);
  EXPECT_EQ(stats.fires, 1);
}

TEST(FailpointTest, EveryNthFiresOnTheNthEvaluation) {
  ScopedFailpoints guard;
  Arm("site", EveryNth(3));
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) {
    fired.push_back(PITRACT_FAILPOINT("site"));
  }
  int fires = 0;
  for (size_t i = 0; i < fired.size(); ++i) {
    if (fired[i]) ++fires;
  }
  EXPECT_EQ(fires, 3);
  // Exactly one fire per period of three.
  for (size_t base = 0; base < 9; base += 3) {
    EXPECT_TRUE(fired[base] || fired[base + 1] || fired[base + 2]);
  }
  EXPECT_EQ(StatsFor("site").fires, 3);
}

TEST(FailpointTest, ProbabilityScheduleIsDeterministicFromItsSeed) {
  std::vector<bool> first;
  {
    ScopedFailpoints guard;
    Arm("site", WithProbability(0.5, 42));
    for (int i = 0; i < 64; ++i) first.push_back(PITRACT_FAILPOINT("site"));
  }
  std::vector<bool> second;
  {
    ScopedFailpoints guard;
    Arm("site", WithProbability(0.5, 42));
    for (int i = 0; i < 64; ++i) second.push_back(PITRACT_FAILPOINT("site"));
  }
  EXPECT_EQ(first, second);  // same seed, same schedule — bit for bit
  // And it is a *mixed* schedule at p = 0.5 over 64 draws (the chance of
  // all-true or all-false is 2^-63).
  int fires = 0;
  for (size_t i = 0; i < first.size(); ++i) {
    if (first[i]) ++fires;
  }
  EXPECT_GT(fires, 0);
  EXPECT_LT(fires, 64);
}

TEST(FailpointTest, ProbabilityBoundsAreExact) {
  ScopedFailpoints guard;
  Arm("never", WithProbability(0.0, 7));
  Arm("surely", WithProbability(1.0, 7));
  for (int i = 0; i < 32; ++i) {
    EXPECT_FALSE(PITRACT_FAILPOINT("never"));
    EXPECT_TRUE(PITRACT_FAILPOINT("surely"));
  }
}

TEST(FailpointTest, RearmingResetsCountersAndPolicy) {
  ScopedFailpoints guard;
  Arm("site", Once());
  EXPECT_TRUE(PITRACT_FAILPOINT("site"));
  EXPECT_FALSE(PITRACT_FAILPOINT("site"));
  Arm("site", Once());  // re-arm: the "once" budget refills
  EXPECT_TRUE(PITRACT_FAILPOINT("site"));
  const SiteStats stats = StatsFor("site");
  EXPECT_EQ(stats.evaluations, 1);
  EXPECT_EQ(stats.fires, 1);
}

TEST(FailpointTest, ArmedSitesListsEverySite) {
  ScopedFailpoints guard;
  Arm("b.site", Never());
  Arm("a.site", Never());
  std::vector<std::string> sites = ArmedSites();
  EXPECT_EQ(sites.size(), 2u);
  bool saw_a = false;
  bool saw_b = false;
  for (const std::string& site : sites) {
    saw_a = saw_a || site == "a.site";
    saw_b = saw_b || site == "b.site";
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);
}

TEST(FailpointTest, ConcurrentEvaluationCountsEveryArrival) {
  ScopedFailpoints guard;
  Arm("site", EveryNth(2));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 250;
  std::atomic<int> fires{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        if (PITRACT_FAILPOINT("site")) fires.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const SiteStats stats = StatsFor("site");
  EXPECT_EQ(stats.evaluations, kThreads * kPerThread);
  EXPECT_EQ(stats.fires, fires.load());
  EXPECT_EQ(fires.load(), kThreads * kPerThread / 2);
}

}  // namespace
}  // namespace failpoint
}  // namespace pitract
