#include <gtest/gtest.h>

#include "circuit/circuit.h"
#include "circuit/generators.h"
#include "circuit/transforms.h"
#include "common/rng.h"

namespace pitract {
namespace circuit {
namespace {

/// Builds (x0 AND x1) OR (NOT x2).
Circuit SampleCircuit() {
  Circuit c;
  GateId x0 = c.AddInput();
  GateId x1 = c.AddInput();
  GateId x2 = c.AddInput();
  GateId a = c.AddAnd(x0, x1);
  GateId n = c.AddNot(x2);
  c.set_output(c.AddOr(a, n));
  return c;
}

bool Expected(bool x0, bool x1, bool x2) { return (x0 && x1) || !x2; }

TEST(CircuitTest, EvaluatesTruthTable) {
  Circuit c = SampleCircuit();
  ASSERT_TRUE(c.Validate().ok());
  for (int bits = 0; bits < 8; ++bits) {
    std::vector<char> assignment = {static_cast<char>(bits & 1),
                                    static_cast<char>((bits >> 1) & 1),
                                    static_cast<char>((bits >> 2) & 1)};
    auto value = c.Evaluate(assignment, nullptr);
    ASSERT_TRUE(value.ok());
    EXPECT_EQ(*value, Expected(assignment[0], assignment[1], assignment[2]))
        << "bits=" << bits;
  }
}

TEST(CircuitTest, ConstantsAndNand) {
  Circuit c;
  GateId t = c.AddConst(true);
  GateId f = c.AddConst(false);
  c.set_output(c.AddNand(t, f));
  auto v = c.Evaluate({}, nullptr);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(*v);
  Circuit c2;
  GateId t2 = c2.AddConst(true);
  c2.set_output(c2.AddNand(t2, t2));
  EXPECT_FALSE(*c2.Evaluate({}, nullptr));
}

TEST(CircuitTest, ValidateCatchesForwardReference) {
  Circuit c;
  GateId x = c.AddInput();
  c.set_output(c.AddAnd(x, 5));  // operand 5 does not precede the gate
  EXPECT_FALSE(c.Validate().ok());
}

TEST(CircuitTest, ValidateCatchesMissingOutput) {
  Circuit c;
  c.AddInput();
  EXPECT_FALSE(c.Validate().ok());
}

TEST(CircuitTest, EvaluateRejectsWrongArity) {
  Circuit c = SampleCircuit();
  EXPECT_FALSE(c.Evaluate({1, 0}, nullptr).ok());
  EXPECT_FALSE(c.Evaluate({1, 0, 1, 1}, nullptr).ok());
}

TEST(CircuitTest, DepthOfChainIsLinear) {
  Rng rng(90);
  Circuit chain = ChainCircuit(100, &rng);
  EXPECT_GE(chain.Depth(), 100);
  CostMeter m;
  ASSERT_TRUE(chain.Evaluate({1, 0}, &m).ok());
  EXPECT_GE(m.depth(), 100) << "deep circuits cost linear parallel time";
}

TEST(CircuitTest, ShallowCircuitHasShallowDepthCharge) {
  Rng rng(91);
  CircuitGenOptions options;
  options.num_inputs = 16;
  options.num_gates = 4096;
  options.deep = false;  // operands drawn uniformly => depth O(log gates)
  Circuit c = RandomCircuit(options, &rng);
  EXPECT_LT(c.Depth(), 64);
  CostMeter m;
  std::vector<char> assignment(16, 1);
  ASSERT_TRUE(c.Evaluate(assignment, &m).ok());
  EXPECT_LT(m.depth(), 80);
  EXPECT_GE(m.work(), 4096);
}

TEST(CircuitTest, EncodeDecodeRoundTrip) {
  Rng rng(92);
  CircuitGenOptions options;
  options.num_inputs = 6;
  options.num_gates = 64;
  for (int trial = 0; trial < 10; ++trial) {
    Circuit c = RandomCircuit(options, &rng);
    auto back = Circuit::Decode(c.Encode());
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->num_gates(), c.num_gates());
    EXPECT_EQ(back->num_inputs(), c.num_inputs());
    EXPECT_EQ(back->output(), c.output());
    // Semantics must survive the round trip.
    for (int probe = 0; probe < 8; ++probe) {
      std::vector<char> assignment(6);
      for (auto& bit : assignment) bit = rng.NextBool() ? 1 : 0;
      EXPECT_EQ(*back->Evaluate(assignment, nullptr),
                *c.Evaluate(assignment, nullptr));
    }
  }
}

TEST(CircuitTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(Circuit::Decode("garbage").ok());
  EXPECT_FALSE(Circuit::Decode("").ok());
}

TEST(CvpInstanceTest, RoundTrip) {
  Rng rng(93);
  CvpInstance instance = RandomCvpInstance({}, &rng);
  auto back = CvpInstance::Decode(instance.Encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->assignment, instance.assignment);
  EXPECT_EQ(*back->circuit.Evaluate(back->assignment, nullptr),
            *instance.circuit.Evaluate(instance.assignment, nullptr));
}

TEST(CvpInstanceTest, DecodeRejectsArityMismatch) {
  Rng rng(94);
  CvpInstance instance = RandomCvpInstance({}, &rng);
  std::string encoded = instance.Encode();
  encoded.pop_back();  // drop one assignment bit
  EXPECT_FALSE(CvpInstance::Decode(encoded).ok());
}

// ---------------------------------------------------------------------------
// Transforms: exhaustive equivalence on small circuits, randomized on big.
// ---------------------------------------------------------------------------

class TransformPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TransformPropertyTest, NandRewritePreservesFunctionExhaustively) {
  Rng rng(GetParam());
  CircuitGenOptions options;
  options.num_inputs = 5;
  options.num_gates = 40;
  Circuit c = RandomCircuit(options, &rng);
  auto nand = ToNandOnly(c);
  ASSERT_TRUE(nand.ok());
  EXPECT_TRUE(nand->IsNandOnly());
  ASSERT_TRUE(nand->Validate().ok());
  for (int bits = 0; bits < 32; ++bits) {
    std::vector<char> assignment(5);
    for (int i = 0; i < 5; ++i) assignment[static_cast<size_t>(i)] = (bits >> i) & 1;
    EXPECT_EQ(*nand->Evaluate(assignment, nullptr),
              *c.Evaluate(assignment, nullptr))
        << "bits=" << bits;
  }
}

TEST_P(TransformPropertyTest, MonotoneDoubleRailPreservesFunction) {
  Rng rng(GetParam() + 1000);
  CircuitGenOptions options;
  options.num_inputs = 5;
  options.num_gates = 40;
  options.not_probability = 0.35;
  Circuit c = RandomCircuit(options, &rng);
  auto mono = ToMonotoneDoubleRail(c);
  ASSERT_TRUE(mono.ok());
  EXPECT_TRUE(mono->IsMonotone());
  ASSERT_TRUE(mono->Validate().ok());
  EXPECT_EQ(mono->num_inputs(), 10);
  for (int bits = 0; bits < 32; ++bits) {
    std::vector<char> assignment(5);
    for (int i = 0; i < 5; ++i) assignment[static_cast<size_t>(i)] = (bits >> i) & 1;
    EXPECT_EQ(*mono->Evaluate(DoubleRailAssignment(assignment), nullptr),
              *c.Evaluate(assignment, nullptr))
        << "bits=" << bits;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransformPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(TransformTest, NandOfNandIsStable) {
  Rng rng(95);
  Circuit c = RandomCircuit({}, &rng);
  auto once = ToNandOnly(c);
  ASSERT_TRUE(once.ok());
  auto twice = ToNandOnly(*once);
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(twice->num_gates(), once->num_gates())
      << "NAND-only circuits pass through unchanged";
}

TEST(TransformTest, DoubleRailAssignmentInterleaves) {
  auto doubled = DoubleRailAssignment({1, 0});
  EXPECT_EQ(doubled, (std::vector<char>{1, 0, 0, 1}));
}

TEST(TransformTest, MonotoneCircuitIsMonotoneInItsInputs) {
  // Semantic monotonicity check: flipping any double-rail "positive" input
  // 0 -> 1 (with its rail partner fixed) never flips the output 1 -> 0.
  Rng rng(96);
  CircuitGenOptions options;
  options.num_inputs = 4;
  options.num_gates = 30;
  Circuit c = RandomCircuit(options, &rng);
  auto mono = ToMonotoneDoubleRail(c);
  ASSERT_TRUE(mono.ok());
  for (int bits = 0; bits < 16; ++bits) {
    std::vector<char> base(8);
    for (int i = 0; i < 8; ++i) base[static_cast<size_t>(i)] = (bits >> (i % 4)) & 1;
    auto before = mono->Evaluate(base, nullptr);
    ASSERT_TRUE(before.ok());
    for (int i = 0; i < 8; ++i) {
      if (base[static_cast<size_t>(i)] == 1) continue;
      auto raised = base;
      raised[static_cast<size_t>(i)] = 1;
      auto after = mono->Evaluate(raised, nullptr);
      ASSERT_TRUE(after.ok());
      EXPECT_GE(*after, *before) << "raising an input lowered the output";
    }
  }
}

TEST(GeneratorTest, DeepOptionProducesDeepCircuits) {
  Rng rng(97);
  CircuitGenOptions shallow_options, deep_options;
  shallow_options.num_gates = deep_options.num_gates = 2000;
  shallow_options.deep = false;
  deep_options.deep = true;
  Circuit shallow = RandomCircuit(shallow_options, &rng);
  Circuit deep = RandomCircuit(deep_options, &rng);
  EXPECT_GT(deep.Depth(), 10 * shallow.Depth());
}

}  // namespace
}  // namespace circuit
}  // namespace pitract
