#include <gtest/gtest.h>

#include <cmath>

#include "core/classifier.h"
#include "core/query_class.h"

namespace pitract {
namespace core {
namespace {

const std::vector<int64_t> kSweep = {1 << 8, 1 << 9, 1 << 10, 1 << 11};

std::unique_ptr<QueryClassCase> FindCase(const std::string& name) {
  for (auto& c : MakeAllCases()) {
    if (c->name() == name) return std::move(c);
  }
  return nullptr;
}

TEST(LogLogSlopeTest, RecoversPolynomialDegrees) {
  std::vector<std::pair<double, double>> linear, quadratic, constant;
  for (double n : {256.0, 512.0, 1024.0, 2048.0}) {
    linear.emplace_back(n, 3 * n);
    quadratic.emplace_back(n, 0.5 * n * n);
    constant.emplace_back(n, 7.0);
  }
  EXPECT_NEAR(LogLogSlope(linear), 1.0, 0.01);
  EXPECT_NEAR(LogLogSlope(quadratic), 2.0, 0.01);
  EXPECT_NEAR(LogLogSlope(constant), 0.0, 0.01);
}

TEST(LogLogSlopeTest, LogCurveIsBelowThreshold) {
  std::vector<std::pair<double, double>> logs;
  for (double n : {256.0, 512.0, 1024.0, 2048.0, 4096.0}) {
    logs.emplace_back(n, std::log2(n));
  }
  EXPECT_LT(LogLogSlope(logs), kPolylogSlopeThreshold);
}

TEST(LogLogSlopeTest, DegenerateInputs) {
  EXPECT_EQ(LogLogSlope({}), 0.0);
  EXPECT_EQ(LogLogSlope({{100.0, 5.0}}), 0.0);
}

TEST(ClassifierTest, PointSelectionIsPiTractable) {
  auto c = FindCase("point-selection");
  ASSERT_NE(c, nullptr);
  auto result = Classify(c.get(), kSweep, /*seed=*/1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->pi_tractable);
  EXPECT_TRUE(result->prepared_polylog);
  EXPECT_FALSE(result->baseline_polylog)
      << "the linear scan must not look polylog";
  EXPECT_GT(result->baseline_slope, 0.6);
  EXPECT_LE(result->preprocess_degree, 2.0);
}

TEST(ClassifierTest, ListMembershipIsPiTractable) {
  auto c = FindCase("list-membership");
  ASSERT_NE(c, nullptr);
  auto result = Classify(c.get(), kSweep, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->pi_tractable);
  EXPECT_FALSE(result->baseline_polylog);
}

TEST(ClassifierTest, ReachabilityIsPiTractable) {
  auto c = FindCase("graph-reachability");
  ASSERT_NE(c, nullptr);
  auto result = Classify(c.get(), kSweep, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->pi_tractable);
  EXPECT_NEAR(result->prepared_slope, 0.0, 0.05) << "O(1) matrix probes";
}

TEST(ClassifierTest, BdsIsPiTractableAfterPreprocessing) {
  auto c = FindCase("breadth-depth-search");
  ASSERT_NE(c, nullptr);
  auto result = Classify(c.get(), kSweep, 4);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->pi_tractable)
      << "Example 5: P-complete BDS becomes polylog with preprocessing";
  EXPECT_FALSE(result->baseline_polylog)
      << "without preprocessing every query re-runs the search";
}

TEST(ClassifierTest, RefactorizedCvpIsPiTractableButY0BaselineIsNot) {
  auto c = FindCase("cvp-refactorized");
  ASSERT_NE(c, nullptr);
  auto result = Classify(c.get(), kSweep, 5);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->pi_tractable)
      << "Corollary 6 direction: the data-carrying factorization works";
  EXPECT_FALSE(result->baseline_polylog)
      << "Theorem 9 direction: under Y0 the per-query evaluation stays deep";
  EXPECT_GT(result->baseline_slope, 0.8);
}

TEST(ClassifierTest, EveryRegisteredCaseClassifies) {
  // Smoke sweep across the whole registry at small sizes; Classify itself
  // asserts prepared/baseline answer agreement on every query.
  const std::vector<int64_t> tiny = {1 << 7, 1 << 8, 1 << 9};
  auto cases = MakeAllCases();
  std::vector<Classification> rows;
  for (auto& c : cases) {
    auto result = Classify(c.get(), tiny, 6);
    ASSERT_TRUE(result.ok()) << c->name() << ": " << result.status().ToString();
    rows.push_back(*result);
  }
  EXPECT_EQ(rows.size(), cases.size());
  std::string report = LandscapeReport(rows);
  for (const auto& row : rows) {
    EXPECT_NE(report.find(row.name), std::string::npos);
  }
}

TEST(ClassifierTest, SweepPointsAreRecorded) {
  auto c = FindCase("range-minimum");
  ASSERT_NE(c, nullptr);
  auto result = Classify(c.get(), kSweep, 7);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->points.size(), kSweep.size());
  for (size_t i = 0; i < kSweep.size(); ++i) {
    EXPECT_EQ(result->points[i].n, kSweep[i]);
    EXPECT_GT(result->points[i].preprocess_work, 0);
    EXPECT_GT(result->points[i].baseline_depth,
              result->points[i].prepared_depth);
  }
}

}  // namespace
}  // namespace core
}  // namespace pitract
