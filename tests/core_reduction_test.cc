#include <gtest/gtest.h>

#include "circuit/generators.h"
#include "common/codec.h"
#include "common/rng.h"
#include "core/problems.h"
#include "core/reduction.h"
#include "graph/generators.h"

namespace pitract {
namespace core {
namespace {

std::string RandomMemberInstance(Rng* rng, int64_t universe) {
  std::vector<int64_t> list;
  for (uint64_t i = 1 + rng->NextBelow(12); i > 0; --i) {
    list.push_back(
        static_cast<int64_t>(rng->NextBelow(static_cast<uint64_t>(universe))));
  }
  return MakeMemberInstance(
      universe, list,
      static_cast<int64_t>(rng->NextBelow(static_cast<uint64_t>(universe))));
}

std::string RandomConnInstance(Rng* rng, graph::NodeId n, int64_t m) {
  graph::Graph g = graph::ErdosRenyi(n, m, /*directed=*/false, rng);
  auto s = static_cast<graph::NodeId>(rng->NextBelow(static_cast<uint64_t>(n)));
  auto t = static_cast<graph::NodeId>(rng->NextBelow(static_cast<uint64_t>(n)));
  return MakeConnInstance(g, s, t);
}

// ---------------------------------------------------------------------------
// Definition 4: the concrete reductions preserve membership.
// ---------------------------------------------------------------------------

TEST(MemberToConnTest, PreservesMembershipOnRandomInstances) {
  Rng rng(150);
  auto r = MemberToConnReduction();
  auto l1 = ListMembershipProblem();
  auto l2 = ConnectivityProblem();
  for (int trial = 0; trial < 60; ++trial) {
    std::string x = RandomMemberInstance(&rng, 16);
    EXPECT_TRUE(VerifyReductionOnInstance(l1, r, l2, x).ok())
        << "instance: " << x;
  }
}

TEST(MemberToConnTest, EmptyListMapsToNoAnswer) {
  auto r = MemberToConnReduction();
  EXPECT_TRUE(VerifyReductionOnInstance(ListMembershipProblem(), r,
                                        ConnectivityProblem(),
                                        MakeMemberInstance(5, {}, 3))
                  .ok());
}

TEST(MemberToConnTest, AlphaTouchesOnlyData) {
  // α must be a pure function of the data part: same list, different query
  // element => identical mapped graphs.
  auto r = MemberToConnReduction();
  auto d = FieldSplitFactorization("Y", 1).pi1(MakeMemberInstance(8, {1, 2}, 1));
  ASSERT_TRUE(d.ok());
  auto g1 = r.alpha(*d);
  auto g2 = r.alpha(*d);
  ASSERT_TRUE(g1.ok() && g2.ok());
  EXPECT_EQ(*g1, *g2);
}

TEST(ConnToBdsTest, PreservesMembershipOnRandomInstances) {
  Rng rng(151);
  auto r = ConnToBdsReduction();
  auto l1 = ConnectivityProblem();
  auto l2 = BdsProblem();
  for (int trial = 0; trial < 40; ++trial) {
    // Sparse graphs: plenty of disconnected pairs.
    std::string x = RandomConnInstance(&rng, 24, 12);
    EXPECT_TRUE(VerifyReductionOnInstance(l1, r, l2, x).ok())
        << "instance: " << x;
  }
  for (int trial = 0; trial < 40; ++trial) {
    // Dense graphs: mostly connected pairs.
    std::string x = RandomConnInstance(&rng, 24, 60);
    EXPECT_TRUE(VerifyReductionOnInstance(l1, r, l2, x).ok());
  }
}

TEST(ConnToBdsTest, SourceEqualsTargetNode) {
  Rng rng(152);
  graph::Graph g = graph::ErdosRenyi(10, 15, false, &rng);
  EXPECT_TRUE(VerifyReductionOnInstance(ConnectivityProblem(),
                                        ConnToBdsReduction(), BdsProblem(),
                                        MakeConnInstance(g, 4, 4))
                  .ok());
}

// ---------------------------------------------------------------------------
// Lemma 2: composition through the padding construction.
// ---------------------------------------------------------------------------

TEST(ComposeTest, MemberThroughConnToBds) {
  Rng rng(153);
  auto composed = Compose(MemberToConnReduction(), ConnToBdsReduction());
  auto l1 = ListMembershipProblem();
  auto l3 = BdsProblem();
  for (int trial = 0; trial < 60; ++trial) {
    std::string x = RandomMemberInstance(&rng, 12);
    EXPECT_TRUE(VerifyReductionOnInstance(l1, composed, l3, x).ok())
        << "instance: " << x;
  }
}

TEST(ComposeTest, PaddedFactorizationSatisfiesLaw) {
  auto composed = Compose(MemberToConnReduction(), ConnToBdsReduction());
  const std::string x = MakeMemberInstance(6, {0, 3}, 3);
  EXPECT_TRUE(VerifyFactorization(composed.source_factorization, x).ok());
  // Both parts carry the padded instance.
  auto d = composed.source_factorization.pi1(x);
  auto q = composed.source_factorization.pi2(x);
  ASSERT_TRUE(d.ok() && q.ok());
  EXPECT_EQ(*d, *q) << "σ₁ = σ₂ in the Lemma 2 construction";
}

TEST(ComposeTest, ThreeWayAssociativeBehaviour) {
  // Compose twice with an identity-on-BDS reduction; answers must persist.
  NcFactorReduction identity;
  identity.name = "bds-id";
  identity.source_factorization = BdsFactorization();
  identity.target_factorization = BdsFactorization();
  identity.alpha = [](const std::string& d) -> Result<std::string> {
    return d;
  };
  identity.beta = [](const std::string& q) -> Result<std::string> {
    return q;
  };
  Rng rng(154);
  auto chained =
      Compose(Compose(MemberToConnReduction(), ConnToBdsReduction()), identity);
  for (int trial = 0; trial < 30; ++trial) {
    std::string x = RandomMemberInstance(&rng, 10);
    EXPECT_TRUE(VerifyReductionOnInstance(ListMembershipProblem(), chained,
                                          BdsProblem(), x)
                    .ok());
  }
}

// ---------------------------------------------------------------------------
// F-reductions (Definition 7 / Lemma 8).
// ---------------------------------------------------------------------------

TEST(FReductionTest, CvpToNandPreservesPairs) {
  Rng rng(155);
  auto r = CvpToNandFReduction();
  LanguageOfPairs s1(CvpProblem(), CvpCircuitDataFactorization());
  LanguageOfPairs s2(CvpProblem(), CvpCircuitDataFactorization());
  for (int trial = 0; trial < 30; ++trial) {
    circuit::CircuitGenOptions options;
    options.num_inputs = 6;
    options.num_gates = 32;
    auto instance = circuit::RandomCvpInstance(options, &rng);
    auto x = MakeCvpInstanceString(instance);
    auto d = s1.factorization().pi1(x);
    auto q = s1.factorization().pi2(x);
    ASSERT_TRUE(d.ok() && q.ok());
    EXPECT_TRUE(VerifyFReductionOnPair(s1, r, s2, *d, *q).ok());
  }
}

TEST(FReductionTest, CvpToMonotonePreservesPairs) {
  Rng rng(156);
  auto r = CvpToMonotoneFReduction();
  LanguageOfPairs s1(CvpProblem(), CvpCircuitDataFactorization());
  LanguageOfPairs s2(CvpProblem(), CvpCircuitDataFactorization());
  for (int trial = 0; trial < 30; ++trial) {
    circuit::CircuitGenOptions options;
    options.num_inputs = 5;
    options.num_gates = 24;
    options.not_probability = 0.4;
    auto instance = circuit::RandomCvpInstance(options, &rng);
    auto x = MakeCvpInstanceString(instance);
    auto d = s1.factorization().pi1(x);
    auto q = s1.factorization().pi2(x);
    ASSERT_TRUE(d.ok() && q.ok());
    EXPECT_TRUE(VerifyFReductionOnPair(s1, r, s2, *d, *q).ok());
  }
}

TEST(FReductionTest, ComposeFChainsBothMaps) {
  // NAND then monotone: the composed F-reduction still preserves answers.
  Rng rng(157);
  auto r = ComposeF(CvpToNandFReduction(), CvpToMonotoneFReduction());
  LanguageOfPairs s(CvpProblem(), CvpCircuitDataFactorization());
  for (int trial = 0; trial < 20; ++trial) {
    circuit::CircuitGenOptions options;
    options.num_inputs = 4;
    options.num_gates = 16;
    auto instance = circuit::RandomCvpInstance(options, &rng);
    auto x = MakeCvpInstanceString(instance);
    auto d = s.factorization().pi1(x);
    auto q = s.factorization().pi2(x);
    ASSERT_TRUE(d.ok() && q.ok());
    EXPECT_TRUE(VerifyFReductionOnPair(s, r, s, *d, *q).ok());
  }
}

TEST(ReductionTest, BrokenReductionIsDetected) {
  // Sanity-check the verifier itself: a wrong β must be flagged.
  auto r = MemberToConnReduction();
  r.beta = [](const std::string&) -> Result<std::string> {
    return codec::EncodeFields({"0", "0"});  // always asks conn(0, 0) = true
  };
  Rng rng(158);
  int failures = 0;
  for (int trial = 0; trial < 30; ++trial) {
    std::string x = RandomMemberInstance(&rng, 16);
    if (!VerifyReductionOnInstance(ListMembershipProblem(), r,
                                   ConnectivityProblem(), x)
             .ok()) {
      ++failures;
    }
  }
  EXPECT_GT(failures, 0);
}

}  // namespace
}  // namespace core
}  // namespace pitract
