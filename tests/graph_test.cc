#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "graph/algos.h"
#include "graph/generators.h"
#include "graph/graph.h"

namespace pitract {
namespace graph {
namespace {

TEST(GraphTest, FromEdgesBuildsSortedCsr) {
  auto g = Graph::FromEdges(4, {{2, 1}, {0, 3}, {0, 1}, {0, 2}}, true);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 4);
  EXPECT_EQ(g->num_edges(), 4);
  auto nbrs = g->OutNeighbors(0);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(nbrs.size(), 3u);
  EXPECT_TRUE(g->HasEdge(2, 1));
  EXPECT_FALSE(g->HasEdge(1, 2));
}

TEST(GraphTest, UndirectedStoresBothDirections) {
  auto g = Graph::FromEdges(3, {{0, 1}, {1, 2}}, false);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2);
  EXPECT_TRUE(g->HasEdge(1, 0));
  EXPECT_TRUE(g->HasEdge(2, 1));
  EXPECT_EQ(g->Edges().size(), 2u) << "Edges() lists undirected edges once";
}

TEST(GraphTest, DedupCollapsesParallelEdges) {
  auto g = Graph::FromEdges(2, {{0, 1}, {0, 1}, {0, 1}}, true);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 1);
}

TEST(GraphTest, SelfLoopsKept) {
  auto g = Graph::FromEdges(2, {{0, 0}, {0, 1}}, false);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->HasEdge(0, 0));
  EXPECT_EQ(g->num_edges(), 2);
}

TEST(GraphTest, OutOfRangeEdgeRejected) {
  EXPECT_FALSE(Graph::FromEdges(2, {{0, 2}}, true).ok());
  EXPECT_FALSE(Graph::FromEdges(2, {{-1, 0}}, true).ok());
}

TEST(GraphTest, ReversedSwapsDirections) {
  auto g = Graph::FromEdges(3, {{0, 1}, {1, 2}, {0, 2}}, true);
  ASSERT_TRUE(g.ok());
  Graph rev = g->Reversed();
  EXPECT_TRUE(rev.HasEdge(1, 0));
  EXPECT_TRUE(rev.HasEdge(2, 1));
  EXPECT_TRUE(rev.HasEdge(2, 0));
  EXPECT_FALSE(rev.HasEdge(0, 1));
  EXPECT_EQ(rev.num_edges(), 3);
  // Double reversal restores the original arc set.
  Graph twice = rev.Reversed();
  EXPECT_EQ(twice.Edges(), g->Edges());
}

TEST(GraphTest, EncodeDecodeRoundTrip) {
  Rng rng(31);
  Graph g = ErdosRenyi(50, 150, /*directed=*/true, &rng);
  auto back = Graph::Decode(g.Encode());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_nodes(), g.num_nodes());
  EXPECT_EQ(back->Edges(), g.Edges());
  EXPECT_EQ(back->directed(), g.directed());
}

TEST(GraphTest, EncodeDecodeUndirected) {
  Rng rng(32);
  Graph g = ErdosRenyi(30, 60, /*directed=*/false, &rng);
  auto back = Graph::Decode(g.Encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->Edges(), g.Edges());
  EXPECT_FALSE(back->directed());
}

TEST(BfsTest, DistancesOnPath) {
  Graph g = Path(5, /*directed=*/true);
  auto dist = BfsDistances(g, 0);
  EXPECT_EQ(dist, (std::vector<int64_t>{0, 1, 2, 3, 4}));
  auto from_2 = BfsDistances(g, 2);
  EXPECT_EQ(from_2[0], -1) << "directed path: no way back";
  EXPECT_EQ(from_2[4], 2);
}

TEST(BfsTest, ReachableChargesWork) {
  Graph g = Path(1000, /*directed=*/true);
  CostMeter m;
  EXPECT_TRUE(BfsReachable(g, 0, 999, &m));
  EXPECT_GE(m.work(), 999);
  CostMeter m2;
  EXPECT_FALSE(BfsReachable(g, 999, 0, &m2));
}

TEST(BfsTest, SelfReachable) {
  Graph g = Path(3, true);
  EXPECT_TRUE(BfsReachable(g, 1, 1, nullptr));
}

TEST(DfsTest, PreorderVisitsAllNodes) {
  Rng rng(33);
  Graph g = ErdosRenyi(64, 128, true, &rng);
  auto order = DfsPreorder(g);
  std::set<NodeId> seen(order.begin(), order.end());
  EXPECT_EQ(seen.size(), 64u);
  EXPECT_EQ(order[0], 0) << "DFS starts at the smallest node";
}

TEST(SccTest, CycleIsOneComponent) {
  Graph g = Cycle(5, /*directed=*/true);
  auto scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, 1);
}

TEST(SccTest, PathIsAllSingletons) {
  Graph g = Path(5, /*directed=*/true);
  auto scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, 5);
}

TEST(SccTest, ComponentsAreMaximalAndMutuallyReachable) {
  Rng rng(34);
  Graph g = ErdosRenyi(60, 150, true, &rng);
  auto scc = StronglyConnectedComponents(g);
  // Same component <=> mutually reachable (checked by BFS both ways).
  for (NodeId u = 0; u < g.num_nodes(); u += 7) {
    for (NodeId v = 0; v < g.num_nodes(); v += 5) {
      bool mutual = BfsReachable(g, u, v, nullptr) &&
                    BfsReachable(g, v, u, nullptr);
      bool same = scc.component[static_cast<size_t>(u)] ==
                  scc.component[static_cast<size_t>(v)];
      EXPECT_EQ(mutual, same) << "u=" << u << " v=" << v;
    }
  }
}

TEST(SccTest, ReverseTopologicalNumbering) {
  Rng rng(35);
  Graph g = ErdosRenyi(50, 120, true, &rng);
  auto scc = StronglyConnectedComponents(g);
  // For every arc u -> v in distinct components, comp(u) > comp(v).
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) {
      NodeId cu = scc.component[static_cast<size_t>(u)];
      NodeId cv = scc.component[static_cast<size_t>(v)];
      if (cu != cv) EXPECT_GT(cu, cv);
    }
  }
}

TEST(SccTest, DeepGraphDoesNotOverflowStack) {
  // 200k-node path: a recursive Tarjan would blow the stack.
  Graph g = Path(200000, /*directed=*/true);
  auto scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, 200000);
}

TEST(CondenseTest, CondensationIsDag) {
  Rng rng(36);
  Graph g = ErdosRenyi(80, 240, true, &rng);
  auto scc = StronglyConnectedComponents(g);
  Graph dag = Condense(g, scc);
  EXPECT_EQ(dag.num_nodes(), scc.num_components);
  EXPECT_TRUE(TopologicalSort(dag).is_dag);
}

TEST(TopoTest, DetectsCycle) {
  EXPECT_FALSE(TopologicalSort(Cycle(4, true)).is_dag);
  EXPECT_TRUE(TopologicalSort(Path(4, true)).is_dag);
}

TEST(TopoTest, OrderRespectsArcs) {
  Rng rng(37);
  Graph g = RandomDag(100, 300, &rng);
  auto topo = TopologicalSort(g);
  ASSERT_TRUE(topo.is_dag);
  std::vector<int64_t> position(100);
  for (size_t i = 0; i < topo.order.size(); ++i) {
    position[static_cast<size_t>(topo.order[i])] = static_cast<int64_t>(i);
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) {
      EXPECT_LT(position[static_cast<size_t>(u)],
                position[static_cast<size_t>(v)]);
    }
  }
}

TEST(ComponentsTest, CountsIslands) {
  auto g = Graph::FromEdges(6, {{0, 1}, {1, 2}, {4, 5}}, false);
  ASSERT_TRUE(g.ok());
  auto comp = ConnectedComponents(*g);
  EXPECT_EQ(comp.num_components, 3);  // {0,1,2}, {3}, {4,5}
  EXPECT_EQ(comp.component[0], comp.component[2]);
  EXPECT_NE(comp.component[0], comp.component[3]);
  EXPECT_EQ(comp.component[4], comp.component[5]);
}

TEST(GeneratorsTest, RandomDagIsAcyclic) {
  Rng rng(38);
  for (int trial = 0; trial < 5; ++trial) {
    Graph g = RandomDag(64, 256, &rng);
    EXPECT_TRUE(TopologicalSort(g).is_dag);
  }
}

TEST(GeneratorsTest, RandomTreeIsConnectedWithNMinus1Edges) {
  Rng rng(39);
  Graph g = RandomTree(128, &rng);
  EXPECT_EQ(g.num_edges(), 127);
  EXPECT_EQ(ConnectedComponents(g).num_components, 1);
}

TEST(GeneratorsTest, ParentArrayIsValidTree) {
  Rng rng(40);
  auto parent = RandomParentArray(100, &rng);
  EXPECT_EQ(parent[0], -1);
  for (NodeId i = 1; i < 100; ++i) {
    EXPECT_GE(parent[static_cast<size_t>(i)], 0);
    EXPECT_LT(parent[static_cast<size_t>(i)], i);
  }
}

TEST(GeneratorsTest, PreferentialAttachmentIsSkewed) {
  Rng rng(41);
  Graph g = PreferentialAttachment(2000, 2, &rng);
  int64_t max_degree = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    max_degree = std::max(max_degree, g.OutDegree(u));
  }
  // A hub emerges; uniform graphs with mean degree ~4 would cap far lower.
  EXPECT_GT(max_degree, 30);
  EXPECT_EQ(ConnectedComponents(g).num_components, 1);
}

TEST(GeneratorsTest, DeterministicInSeed) {
  Rng a(42), b(42);
  Graph ga = ErdosRenyi(64, 128, true, &a);
  Graph gb = ErdosRenyi(64, 128, true, &b);
  EXPECT_EQ(ga.Encode(), gb.Encode());
}

TEST(GeneratorsTest, StarShape) {
  Graph g = Star(5, false);
  EXPECT_EQ(g.OutDegree(0), 4);
  for (NodeId i = 1; i < 5; ++i) EXPECT_EQ(g.OutDegree(i), 1);
}

}  // namespace
}  // namespace graph
}  // namespace pitract
