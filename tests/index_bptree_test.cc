#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/rng.h"
#include "index/bptree.h"

namespace pitract {
namespace index {
namespace {

TEST(BPlusTreeTest, EmptyTree) {
  BPlusTree tree;
  EXPECT_TRUE(tree.empty());
  CostMeter m;
  EXPECT_FALSE(tree.PointExists(1, &m));
  EXPECT_FALSE(tree.RangeExists(0, 100, &m));
  EXPECT_EQ(tree.RangeCount(0, 100, &m), 0);
  EXPECT_FALSE(tree.Begin().Valid());
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(BPlusTreeTest, SingleEntry) {
  BPlusTree tree;
  tree.Insert(5, 50);
  CostMeter m;
  EXPECT_TRUE(tree.PointExists(5, &m));
  EXPECT_FALSE(tree.PointExists(4, &m));
  EXPECT_EQ(tree.Lookup(5, &m), std::vector<int64_t>{50});
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(BPlusTreeTest, SplitsGrowHeight) {
  BPlusTreeOptions options;
  options.max_leaf_entries = 4;
  options.max_internal_children = 4;
  BPlusTree tree(options);
  for (int64_t i = 0; i < 100; ++i) tree.Insert(i, i);
  EXPECT_GE(tree.Stats().height, 3);
  ASSERT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();
  CostMeter m;
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_TRUE(tree.PointExists(i, &m)) << i;
  }
  EXPECT_FALSE(tree.PointExists(100, &m));
}

TEST(BPlusTreeTest, DuplicateKeys) {
  BPlusTreeOptions options;
  options.max_leaf_entries = 4;
  options.max_internal_children = 4;
  BPlusTree tree(options);
  for (int64_t p = 0; p < 50; ++p) tree.Insert(7, p);
  tree.Insert(6, 0);
  tree.Insert(8, 0);
  ASSERT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();
  CostMeter m;
  auto payloads = tree.Lookup(7, &m);
  EXPECT_EQ(payloads.size(), 50u);
  EXPECT_EQ(tree.RangeCount(7, 7, &m), 50);
  EXPECT_TRUE(tree.PointExists(7, &m));
}

TEST(BPlusTreeTest, DeleteSimple) {
  BPlusTree tree;
  tree.Insert(1, 10);
  tree.Insert(2, 20);
  EXPECT_TRUE(tree.Delete(1, 10).ok());
  CostMeter m;
  EXPECT_FALSE(tree.PointExists(1, &m));
  EXPECT_TRUE(tree.PointExists(2, &m));
  EXPECT_FALSE(tree.Delete(1, 10).ok()) << "double delete must fail";
  EXPECT_FALSE(tree.Delete(2, 99).ok()) << "payload must match";
}

TEST(BPlusTreeTest, DeleteTriggersMergesAndKeepsInvariants) {
  BPlusTreeOptions options;
  options.max_leaf_entries = 4;
  options.max_internal_children = 4;
  BPlusTree tree(options);
  const int64_t kN = 500;
  for (int64_t i = 0; i < kN; ++i) tree.Insert(i, i);
  // Delete everything in an adversarial (alternating ends) order.
  int64_t lo = 0, hi = kN - 1;
  while (lo <= hi) {
    ASSERT_TRUE(tree.Delete(lo, lo).ok()) << lo;
    if (lo != hi) ASSERT_TRUE(tree.Delete(hi, hi).ok()) << hi;
    ASSERT_TRUE(tree.Validate().ok())
        << "after deleting " << lo << "/" << hi << ": "
        << tree.Validate().ToString();
    ++lo;
    --hi;
  }
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.Stats().height, 1);
}

TEST(BPlusTreeTest, BulkLoadMatchesInserts) {
  std::vector<std::pair<int64_t, int64_t>> entries;
  for (int64_t i = 0; i < 1000; ++i) entries.emplace_back(i * 3, i);
  BPlusTree bulk;
  ASSERT_TRUE(bulk.BulkLoad(entries).ok());
  ASSERT_TRUE(bulk.Validate().ok()) << bulk.Validate().ToString();
  CostMeter m;
  for (int64_t i = 0; i < 1000; ++i) {
    EXPECT_TRUE(bulk.PointExists(i * 3, &m));
    EXPECT_FALSE(bulk.PointExists(i * 3 + 1, &m));
  }
}

TEST(BPlusTreeTest, BulkLoadRejectsUnsorted) {
  BPlusTree tree;
  EXPECT_FALSE(tree.BulkLoad({{3, 0}, {1, 0}}).ok());
}

TEST(BPlusTreeTest, BulkLoadEmpty) {
  BPlusTree tree;
  ASSERT_TRUE(tree.BulkLoad({}).ok());
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(BPlusTreeTest, IteratorWalksSortedOrder) {
  BPlusTreeOptions options;
  options.max_leaf_entries = 8;
  options.max_internal_children = 8;
  BPlusTree tree(options);
  Rng rng(11);
  std::multiset<int64_t> reference;
  for (int i = 0; i < 500; ++i) {
    int64_t key = static_cast<int64_t>(rng.NextBelow(200));
    tree.Insert(key, i);
    reference.insert(key);
  }
  std::vector<int64_t> walked;
  for (auto it = tree.Begin(); it.Valid(); it.Next()) {
    walked.push_back(it.key());
  }
  EXPECT_TRUE(std::is_sorted(walked.begin(), walked.end()));
  EXPECT_EQ(walked.size(), reference.size());
}

TEST(BPlusTreeTest, SeekFirstFindsLowerBound) {
  BPlusTree tree;
  for (int64_t i = 0; i < 100; ++i) tree.Insert(i * 10, i);
  auto it = tree.SeekFirst(55);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 60);
  it = tree.SeekFirst(990);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 990);
  it = tree.SeekFirst(991);
  EXPECT_FALSE(it.Valid());
}

TEST(BPlusTreeTest, RangeQueries) {
  BPlusTree tree;
  for (int64_t i = 0; i < 1000; ++i) tree.Insert(i, i);
  CostMeter m;
  EXPECT_EQ(tree.RangeCount(100, 199, &m), 100);
  EXPECT_TRUE(tree.RangeExists(500, 500, &m));
  EXPECT_FALSE(tree.RangeExists(1000, 2000, &m));
  EXPECT_EQ(tree.RangeCount(990, 5000, &m), 10);
  EXPECT_EQ(tree.RangeCount(10, 5, &m), 0) << "inverted range is empty";
}

TEST(BPlusTreeTest, ProbeDepthIsLogarithmic) {
  BPlusTree small, large;
  for (int64_t i = 0; i < 1 << 10; ++i) small.Insert(i, i);
  for (int64_t i = 0; i < 1 << 17; ++i) large.Insert(i, i);
  CostMeter small_m, large_m;
  small.PointExists(123, &small_m);
  large.PointExists(123456, &large_m);
  // 128x more data must cost far less than 128x more depth — the Example 1
  // separation. Allow generous slack: depth ratio below 4.
  EXPECT_LT(large_m.depth(), 4 * small_m.depth())
      << "small=" << small_m.depth() << " large=" << large_m.depth();
}

// Randomized differential test against std::multimap. Parameterized over
// (seed, fanout) so narrow trees exercise deep split/merge chains.
struct FuzzParam {
  uint64_t seed;
  int fanout;
};

class BPlusTreeFuzzTest : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(BPlusTreeFuzzTest, MatchesReferenceUnderRandomOps) {
  const auto param = GetParam();
  Rng rng(param.seed);
  BPlusTreeOptions options;
  options.max_leaf_entries = param.fanout;
  options.max_internal_children = param.fanout;
  BPlusTree tree(options);
  std::multimap<int64_t, int64_t> reference;

  for (int step = 0; step < 3000; ++step) {
    const uint64_t dice = rng.NextBelow(10);
    const int64_t key = static_cast<int64_t>(rng.NextBelow(300));
    if (dice < 6 || reference.empty()) {
      const int64_t payload = static_cast<int64_t>(rng.NextBelow(1000));
      tree.Insert(key, payload);
      reference.emplace(key, payload);
    } else if (dice < 9) {
      // Delete a (key, payload) that exists.
      auto it = reference.lower_bound(key);
      if (it == reference.end()) it = reference.begin();
      ASSERT_TRUE(tree.Delete(it->first, it->second).ok());
      reference.erase(it);
    } else {
      // Probe.
      CostMeter m;
      EXPECT_EQ(tree.PointExists(key, &m), reference.count(key) > 0);
      const int64_t lo = key - 5;
      const int64_t hi = key + 5;
      auto lower = reference.lower_bound(lo);
      auto upper = reference.upper_bound(hi);
      EXPECT_EQ(tree.RangeCount(lo, hi, &m),
                static_cast<int64_t>(std::distance(lower, upper)));
    }
    if (step % 250 == 0) {
      ASSERT_TRUE(tree.Validate().ok())
          << "step " << step << ": " << tree.Validate().ToString();
      ASSERT_EQ(tree.size(), static_cast<int64_t>(reference.size()));
    }
  }
  ASSERT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();
  // Final sweep: contents must match exactly.
  std::vector<std::pair<int64_t, int64_t>> tree_contents;
  for (auto it = tree.Begin(); it.Valid(); it.Next()) {
    tree_contents.emplace_back(it.key(), it.payload());
  }
  std::vector<std::pair<int64_t, int64_t>> ref_contents(reference.begin(),
                                                        reference.end());
  std::sort(tree_contents.begin(), tree_contents.end());
  std::sort(ref_contents.begin(), ref_contents.end());
  EXPECT_EQ(tree_contents, ref_contents);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndFanouts, BPlusTreeFuzzTest,
    ::testing::Values(FuzzParam{1, 4}, FuzzParam{2, 4}, FuzzParam{3, 5},
                      FuzzParam{4, 8}, FuzzParam{5, 16}, FuzzParam{6, 64},
                      FuzzParam{7, 4}, FuzzParam{8, 6}));

}  // namespace
}  // namespace index
}  // namespace pitract
