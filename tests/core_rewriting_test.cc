#include <gtest/gtest.h>

#include "common/codec.h"
#include "common/rng.h"
#include "core/problems.h"

namespace pitract {
namespace core {
namespace {

std::vector<int64_t> RandomPredicate(Rng* rng, int64_t universe) {
  switch (rng->NextBelow(4)) {
    case 0:
      return {0, rng->NextInRange(0, universe)};  // eq
    case 1:
      return {1, rng->NextInRange(-2, universe)};  // le
    case 2:
      return {2, rng->NextInRange(0, universe + 2)};  // ge
    default: {
      int64_t a = rng->NextInRange(0, universe);
      int64_t b = rng->NextInRange(0, universe);
      return {3, std::min(a, b), std::max(a, b)};  // between
    }
  }
}

TEST(RewritingTest, SelectionProblemSemantics) {
  auto p = PredicateSelectionProblem();
  const std::vector<int64_t> list = {3, 7, 10};
  EXPECT_TRUE(*p.contains(MakeSelectionInstance(16, list, {0, 7})));
  EXPECT_FALSE(*p.contains(MakeSelectionInstance(16, list, {0, 8})));
  EXPECT_TRUE(*p.contains(MakeSelectionInstance(16, list, {1, 3})));
  EXPECT_FALSE(*p.contains(MakeSelectionInstance(16, list, {1, 2})));
  EXPECT_TRUE(*p.contains(MakeSelectionInstance(16, list, {2, 10})));
  EXPECT_FALSE(*p.contains(MakeSelectionInstance(16, list, {2, 11})));
  EXPECT_TRUE(*p.contains(MakeSelectionInstance(16, list, {3, 4, 8})));
  EXPECT_FALSE(*p.contains(MakeSelectionInstance(16, list, {3, 4, 6})));
  EXPECT_FALSE(p.contains(MakeSelectionInstance(16, list, {9, 1})).ok())
      << "unknown op rejected";
  EXPECT_FALSE(p.contains(MakeSelectionInstance(16, list, {3, 4})).ok())
      << "between needs two arguments";
}

TEST(RewritingTest, LambdaNormalizesPredicates) {
  auto rewriter = IntervalNormalizingRewriter();
  auto eq = rewriter.lambda(codec::EncodeInts({0, 5}));
  ASSERT_TRUE(eq.ok());
  EXPECT_EQ(*codec::DecodeInts(*eq), (std::vector<int64_t>{5, 5}));
  auto between = rewriter.lambda(codec::EncodeInts({3, 2, 9}));
  ASSERT_TRUE(between.ok());
  EXPECT_EQ(*codec::DecodeInts(*between), (std::vector<int64_t>{2, 9}));
  EXPECT_FALSE(rewriter.lambda("junk").ok());
}

TEST(RewritingTest, RevisedDefinition1WitnessIsCorrect) {
  // The paper's generalized setting: ⟨D, Q⟩ ∈ S iff ⟨Π(D), λ(Q)⟩ ∈ S′.
  Rng rng(40);
  auto witness =
      ApplyRewriting(IntervalNormalizingRewriter(), IntervalWitness());
  LanguageOfPairs s(PredicateSelectionProblem(), SelectionFactorization());
  for (int trial = 0; trial < 120; ++trial) {
    std::vector<int64_t> list;
    for (uint64_t i = rng.NextBelow(12); i > 0; --i) {
      list.push_back(rng.NextInRange(0, 20));
    }
    std::string x =
        MakeSelectionInstance(20, list, RandomPredicate(&rng, 20));
    EXPECT_TRUE(VerifyWitnessOnInstance(s, witness, x).ok()) << x;
  }
}

TEST(RewritingTest, AnswerDepthStaysLogarithmicThroughLambda) {
  Rng rng(41);
  auto witness =
      ApplyRewriting(IntervalNormalizingRewriter(), IntervalWitness());
  std::vector<int64_t> big_list;
  for (int64_t i = 0; i < (1 << 12); ++i) {
    big_list.push_back(static_cast<int64_t>(rng.NextBelow(1 << 16)));
  }
  auto data = SelectionFactorization().pi1(
      MakeSelectionInstance(1 << 16, big_list, {0, 0}));
  ASSERT_TRUE(data.ok());
  auto prepared = witness.preprocess(*data, nullptr);
  ASSERT_TRUE(prepared.ok());
  CostMeter m;
  ASSERT_TRUE(
      witness.answer(*prepared, codec::EncodeInts({3, 10, 5000}), &m).ok());
  EXPECT_LE(m.depth(), 2 * (12 + 2))
      << "λ adds only the rewrite, answering stays O(log n)";
}

TEST(RewritingTest, RewriterErrorsPropagate) {
  auto witness =
      ApplyRewriting(IntervalNormalizingRewriter(), IntervalWitness());
  auto prepared = witness.preprocess(
      *SelectionFactorization().pi1(MakeSelectionInstance(4, {1}, {0, 1})),
      nullptr);
  ASSERT_TRUE(prepared.ok());
  EXPECT_FALSE(witness.answer(*prepared, "not-a-predicate", nullptr).ok());
}

}  // namespace
}  // namespace core
}  // namespace pitract
