#include <gtest/gtest.h>

#include <vector>

#include "ncsim/ncsim.h"

namespace pitract {
namespace ncsim {
namespace {

TEST(CeilLog2Test, KnownValues) {
  EXPECT_EQ(CeilLog2(0), 0);
  EXPECT_EQ(CeilLog2(1), 0);
  EXPECT_EQ(CeilLog2(2), 1);
  EXPECT_EQ(CeilLog2(3), 2);
  EXPECT_EQ(CeilLog2(4), 2);
  EXPECT_EQ(CeilLog2(5), 3);
  EXPECT_EQ(CeilLog2(1024), 10);
  EXPECT_EQ(CeilLog2(1025), 11);
}

TEST(ParallelForTest, DepthIsMaxPlusSpawnTree) {
  CostMeter m;
  // 8 bodies of depth i: max depth 7, spawn tree log2(8)=3, +1.
  ParallelFor(&m, 8, [](int64_t i, CostMeter* sub) { sub->AddSerial(i); });
  EXPECT_EQ(m.depth(), 7 + 3 + 1);
  // work = sum(0..7) + n = 28 + 8.
  EXPECT_EQ(m.work(), 28 + 8);
}

TEST(ParallelForTest, EmptyRangeChargesNothing) {
  CostMeter m;
  ParallelFor(&m, 0, [](int64_t, CostMeter* sub) { sub->AddSerial(100); });
  EXPECT_EQ(m.work(), 0);
  EXPECT_EQ(m.depth(), 0);
}

TEST(ParallelForTest, ConstantBodiesGiveLogDepth) {
  // The central NC accounting property: n-way parallel constant work has
  // Θ(log n) depth, not Θ(n).
  CostMeter small, large;
  ParallelFor(&small, 1 << 10,
              [](int64_t, CostMeter* sub) { sub->AddSerial(1); });
  ParallelFor(&large, 1 << 20,
              [](int64_t, CostMeter* sub) { sub->AddSerial(1); });
  EXPECT_EQ(small.depth(), 1 + 10 + 1);
  EXPECT_EQ(large.depth(), 1 + 20 + 1);
  // Depth doubled (log-linear), work grew 1024x.
  EXPECT_GT(large.work(), 1000 * small.work());
}

TEST(ParallelForTest, NestingComposesDepths) {
  CostMeter m;
  ParallelFor(&m, 4, [](int64_t, CostMeter* outer_sub) {
    ParallelFor(outer_sub, 4,
                [](int64_t, CostMeter* inner_sub) { inner_sub->AddSerial(2); });
  });
  // Inner: depth 2 + 2 + 1 = 5; outer: 5 + 2 + 1 = 8.
  EXPECT_EQ(m.depth(), 8);
}

TEST(ParallelMapTest, ProducesValuesAndCharges) {
  CostMeter m;
  auto out = ParallelMap<int64_t>(&m, 5, [](int64_t i, CostMeter* sub) {
    sub->AddSerial(1);
    return i * i;
  });
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[4], 16);
  EXPECT_EQ(m.depth(), 1 + CeilLog2(5) + 1);
}

TEST(ParallelReduceTest, SumsWithTreeDepth) {
  CostMeter m;
  int64_t total = ParallelReduce<int64_t>(
      &m, 16, 0,
      [](int64_t i, CostMeter* sub) {
        sub->AddSerial(1);
        return i;
      },
      [](int64_t a, int64_t b) { return a + b; });
  EXPECT_EQ(total, 120);
  EXPECT_EQ(m.depth(), 1 + 2 * 4 + 1);  // map depth + 2*log(16) + 1
  EXPECT_EQ(m.work(), 16 + 16 + 15);    // leaf work + spawn + combines
}

TEST(ParallelReduceTest, EmptyReturnsIdentity) {
  CostMeter m;
  int64_t total = ParallelReduce<int64_t>(
      &m, 0, -7, [](int64_t, CostMeter*) { return 0; },
      [](int64_t a, int64_t b) { return a + b; });
  EXPECT_EQ(total, -7);
  EXPECT_EQ(m.work(), 0);
}

TEST(ParallelAnyTest, FindsWitnessAndChargesFullParallelCost) {
  CostMeter m;
  bool found = ParallelAny(&m, 1024, [](int64_t i, CostMeter* sub) {
    sub->AddSerial(1);
    return i == 3;  // early witness
  });
  EXPECT_TRUE(found);
  // A PRAM evaluates all leaves: work reflects all 1024 predicates.
  EXPECT_GE(m.work(), 1024);
  EXPECT_LE(m.depth(), 1 + 2 * 10 + 1);
}

TEST(ParallelAnyTest, AllFalse) {
  CostMeter m;
  EXPECT_FALSE(
      ParallelAny(&m, 64, [](int64_t, CostMeter* sub) {
        sub->AddSerial(1);
        return false;
      }));
}

TEST(ScanTest, ExclusivePrefixSums) {
  CostMeter m;
  std::vector<int64_t> in = {1, 2, 3, 4};
  auto out = ParallelScanExclusive<int64_t>(
      &m, in, 0, [](int64_t a, int64_t b) { return a + b; });
  EXPECT_EQ(out, (std::vector<int64_t>{0, 1, 3, 6}));
  EXPECT_EQ(m.depth(), 2 * CeilLog2(4) + 2);
  EXPECT_EQ(m.work(), 8);
}

TEST(ChargeBinarySearchTest, LogDepth) {
  CostMeter m;
  ChargeBinarySearch(&m, 1 << 20);
  EXPECT_EQ(m.depth(), 21);
  m.Reset();
  ChargeBinarySearch(&m, 1);
  EXPECT_EQ(m.depth(), 1);
}

// Parameterized law: for any n, ParallelFor's depth with unit bodies is
// exactly 1 + CeilLog2(n) + 1 and its work is 2n.
class ParallelForLawTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(ParallelForLawTest, UnitBodyLaw) {
  const int64_t n = GetParam();
  CostMeter m;
  ParallelFor(&m, n, [](int64_t, CostMeter* sub) { sub->AddSerial(1); });
  EXPECT_EQ(m.depth(), 1 + CeilLog2(n) + 1);
  EXPECT_EQ(m.work(), 2 * n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ParallelForLawTest,
                         ::testing::Values(1, 2, 3, 7, 8, 9, 100, 1000, 4096));

}  // namespace
}  // namespace ncsim
}  // namespace pitract
