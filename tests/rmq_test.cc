#include <gtest/gtest.h>

#include "common/rng.h"
#include "rmq/rmq.h"

namespace pitract {
namespace rmq {
namespace {

TEST(NaiveRmqTest, FindsLeftmostMin) {
  NaiveRmq rmq({5, 2, 8, 2, 9});
  CostMeter m;
  auto r = rmq.Query(0, 4, &m);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 1) << "ties break left";
  EXPECT_EQ(m.work(), 5);
}

TEST(NaiveRmqTest, RejectsBadRanges) {
  NaiveRmq rmq({1, 2, 3});
  CostMeter m;
  EXPECT_FALSE(rmq.Query(2, 1, &m).ok());
  EXPECT_FALSE(rmq.Query(-1, 1, &m).ok());
  EXPECT_FALSE(rmq.Query(0, 3, &m).ok());
}

TEST(SparseTableRmqTest, SingleElement) {
  CostMeter m;
  auto rmq = SparseTableRmq::Build({42}, &m);
  auto r = rmq.Query(0, 0, &m);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 0);
}

TEST(SparseTableRmqTest, KnownArray) {
  CostMeter m;
  auto rmq = SparseTableRmq::Build({9, 3, 7, 1, 8, 1, 2}, &m);
  EXPECT_EQ(*rmq.Query(0, 6, &m), 3);
  EXPECT_EQ(*rmq.Query(4, 6, &m), 5);
  EXPECT_EQ(*rmq.Query(3, 5, &m), 3) << "ties break left";
  EXPECT_EQ(*rmq.Query(2, 2, &m), 2);
}

TEST(SparseTableRmqTest, QueryIsConstantDepth) {
  Rng rng(60);
  std::vector<int64_t> small(1 << 8), large(1 << 16);
  for (auto& v : small) v = static_cast<int64_t>(rng.NextBelow(1000));
  for (auto& v : large) v = static_cast<int64_t>(rng.NextBelow(1000));
  auto rs = SparseTableRmq::Build(small, nullptr);
  auto rl = SparseTableRmq::Build(large, nullptr);
  CostMeter cs, cl;
  ASSERT_TRUE(rs.Query(10, 200, &cs).ok());
  ASSERT_TRUE(rl.Query(10, 60000, &cl).ok());
  EXPECT_EQ(cs.depth(), cl.depth());
}

TEST(BlockRmqTest, EmptyAndTiny) {
  CostMeter m;
  auto empty = BlockRmq::Build({}, &m);
  EXPECT_FALSE(empty.Query(0, 0, &m).ok());
  auto one = BlockRmq::Build({7}, &m);
  EXPECT_EQ(*one.Query(0, 0, &m), 0);
}

TEST(BlockRmqTest, SignatureSharingKeepsTablesSmall) {
  // A periodic array re-uses block signatures: far fewer tables than
  // blocks.
  std::vector<int64_t> values;
  for (int i = 0; i < 10000; ++i) values.push_back(i % 7);
  CostMeter m;
  auto rmq = BlockRmq::Build(values, &m);
  EXPECT_GT(rmq.size() / rmq.block_size(), 4 * rmq.num_signatures())
      << "blocks=" << rmq.size() / rmq.block_size()
      << " signatures=" << rmq.num_signatures();
}

struct RmqParam {
  uint64_t seed;
  int64_t n;
  int64_t value_range;  // small ranges force many ties
};

class RmqAgreementTest : public ::testing::TestWithParam<RmqParam> {};

TEST_P(RmqAgreementTest, AllThreeImplementationsAgree) {
  const auto param = GetParam();
  Rng rng(param.seed);
  std::vector<int64_t> values(static_cast<size_t>(param.n));
  for (auto& v : values) {
    v = static_cast<int64_t>(
        rng.NextBelow(static_cast<uint64_t>(param.value_range)));
  }
  NaiveRmq naive(values);
  auto sparse = SparseTableRmq::Build(values, nullptr);
  auto block = BlockRmq::Build(values, nullptr);
  for (int trial = 0; trial < 400; ++trial) {
    int64_t i = static_cast<int64_t>(
        rng.NextBelow(static_cast<uint64_t>(param.n)));
    int64_t j = static_cast<int64_t>(
        rng.NextBelow(static_cast<uint64_t>(param.n)));
    if (i > j) std::swap(i, j);
    CostMeter m;
    auto expected = naive.Query(i, j, &m);
    auto s = sparse.Query(i, j, &m);
    auto b = block.Query(i, j, &m);
    ASSERT_TRUE(expected.ok() && s.ok() && b.ok());
    EXPECT_EQ(*s, *expected) << "sparse [" << i << "," << j << "]";
    EXPECT_EQ(*b, *expected) << "block [" << i << "," << j << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Arrays, RmqAgreementTest,
    ::testing::Values(RmqParam{1, 10, 5}, RmqParam{2, 100, 3},
                      RmqParam{3, 1000, 1000000}, RmqParam{4, 1000, 2},
                      RmqParam{5, 4096, 10}, RmqParam{6, 5000, 100},
                      RmqParam{7, 65536, 1000}, RmqParam{8, 17, 4}));

TEST(BlockRmqTest, AdjacentBlockBoundaries) {
  // Exercise every (i, j) with small n to hit all boundary cases:
  // in-block, adjacent-block, and spanning queries.
  Rng rng(61);
  std::vector<int64_t> values(257);
  for (auto& v : values) v = static_cast<int64_t>(rng.NextBelow(32));
  NaiveRmq naive(values);
  auto block = BlockRmq::Build(values, nullptr);
  for (int64_t i = 0; i < 257; ++i) {
    for (int64_t j = i; j < 257; ++j) {
      CostMeter m;
      ASSERT_EQ(*block.Query(i, j, &m), *naive.Query(i, j, &m))
          << "[" << i << "," << j << "]";
    }
  }
}

TEST(BlockRmqTest, ConstantQueryDepthAcrossSizes) {
  Rng rng(62);
  std::vector<int64_t> small(1 << 10), large(1 << 18);
  for (auto& v : small) v = static_cast<int64_t>(rng.NextBelow(100));
  for (auto& v : large) v = static_cast<int64_t>(rng.NextBelow(100));
  auto rs = BlockRmq::Build(small, nullptr);
  auto rl = BlockRmq::Build(large, nullptr);
  CostMeter cs, cl;
  ASSERT_TRUE(rs.Query(3, 1000, &cs).ok());
  ASSERT_TRUE(rl.Query(3, 250000, &cl).ok());
  EXPECT_LE(cl.depth(), cs.depth() + 4) << "O(1) queries";
}

TEST(BlockRmqTest, LinearPreprocessingBeatsSparseTable) {
  Rng rng(63);
  std::vector<int64_t> values(1 << 16);
  for (auto& v : values) v = static_cast<int64_t>(rng.NextBelow(1 << 20));
  CostMeter sparse_m, block_m;
  SparseTableRmq::Build(values, &sparse_m);
  BlockRmq::Build(values, &block_m);
  EXPECT_LT(block_m.work(), sparse_m.work())
      << "Fischer-Heun O(n) must undercut the O(n log n) table";
}

}  // namespace
}  // namespace rmq
}  // namespace pitract
