#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/csv.h"
#include "storage/generator.h"

namespace pitract {
namespace storage {
namespace {

TEST(CsvTest, WriteReadRoundTripMixedTypes) {
  Relation rel{Schema(
      {{"id", ValueType::kInt64}, {"name", ValueType::kString}})};
  ASSERT_TRUE(rel.AppendRow({Value(int64_t{1}), Value(std::string("plain"))}).ok());
  ASSERT_TRUE(
      rel.AppendRow({Value(int64_t{-2}), Value(std::string("with,comma"))}).ok());
  ASSERT_TRUE(rel.AppendRow({Value(int64_t{3}),
                             Value(std::string("quote\"and\nnewline"))})
                  .ok());
  auto back = csv::Read(csv::Write(rel));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_rows(), 3);
  EXPECT_TRUE(back->schema() == rel.schema());
  EXPECT_EQ(*back->GetString(1, 1), "with,comma");
  EXPECT_EQ(*back->GetString(2, 1), "quote\"and\nnewline");
  EXPECT_EQ(*back->GetInt64(1, 0), -2);
}

TEST(CsvTest, HandWrittenDocument) {
  const std::string text =
      "ts:int64,msg:string\n"
      "100,hello\n"
      "200,\"a,b\"\n";
  auto rel = csv::Read(text);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_EQ(rel->num_rows(), 2);
  EXPECT_EQ(*rel->GetInt64(1, 0), 200);
  EXPECT_EQ(*rel->GetString(1, 1), "a,b");
}

TEST(CsvTest, CrLfTolerated) {
  auto rel = csv::Read("a:int64\r\n1\r\n2\r\n");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->num_rows(), 2);
}

TEST(CsvTest, MissingTrailingNewlineTolerated) {
  auto rel = csv::Read("a:int64\n7");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->num_rows(), 1);
  EXPECT_EQ(*rel->GetInt64(0, 0), 7);
}

TEST(CsvTest, RejectsMalformedInput) {
  EXPECT_FALSE(csv::Read("").ok()) << "missing header";
  EXPECT_FALSE(csv::Read("a\n1\n").ok()) << "header without type";
  EXPECT_FALSE(csv::Read("a:float\n1\n").ok()) << "unknown type";
  EXPECT_FALSE(csv::Read("a:int64\nnot-a-number\n").ok());
  EXPECT_FALSE(csv::Read("a:int64,b:int64\n1\n").ok()) << "ragged row";
  EXPECT_FALSE(csv::Read("a:string\n\"unterminated\n").ok());
}

TEST(CsvTest, EmptyRelationRoundTrips) {
  Relation rel{Schema({{"x", ValueType::kInt64}})};
  auto back = csv::Read(csv::Write(rel));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 0);
  EXPECT_EQ(back->num_columns(), 1);
}

TEST(CsvTest, GeneratedRelationRoundTrips) {
  Rng rng(7);
  RelationGenOptions options;
  options.num_rows = 200;
  options.num_columns = 3;
  Relation rel = GenerateIntRelation(options, &rng);
  auto back = csv::Read(csv::Write(rel));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->Encode(), rel.Encode());
}

}  // namespace
}  // namespace storage
}  // namespace pitract
