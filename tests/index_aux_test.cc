#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "common/rng.h"
#include "index/hash_index.h"
#include "index/sorted_column.h"

namespace pitract {
namespace index {
namespace {

// ---------------------------------------------------------------------------
// HashIndex
// ---------------------------------------------------------------------------

TEST(HashIndexTest, InsertContainsErase) {
  HashIndex idx;
  CostMeter m;
  EXPECT_FALSE(idx.Contains(42, &m));
  idx.Insert(42);
  EXPECT_TRUE(idx.Contains(42, &m));
  EXPECT_EQ(idx.Count(42, &m), 1);
  idx.Insert(42);
  EXPECT_EQ(idx.Count(42, &m), 2);
  EXPECT_TRUE(idx.Erase(42));
  EXPECT_EQ(idx.Count(42, &m), 1);
  EXPECT_TRUE(idx.Erase(42));
  EXPECT_FALSE(idx.Contains(42, &m));
  EXPECT_FALSE(idx.Erase(42));
}

TEST(HashIndexTest, GrowthKeepsContents) {
  HashIndex idx(4);
  for (int64_t i = 0; i < 10000; ++i) idx.Insert(i * 7919);
  CostMeter m;
  for (int64_t i = 0; i < 10000; ++i) {
    ASSERT_TRUE(idx.Contains(i * 7919, &m)) << i;
  }
  EXPECT_FALSE(idx.Contains(-1, &m));
  EXPECT_EQ(idx.size(), 10000);
  EXPECT_EQ(idx.num_distinct(), 10000);
}

TEST(HashIndexTest, TombstonesDoNotBreakProbing) {
  HashIndex idx(4);
  // Insert a colliding cluster, erase the middle, then find the tail.
  for (int64_t i = 0; i < 100; ++i) idx.Insert(i);
  for (int64_t i = 20; i < 80; ++i) EXPECT_TRUE(idx.Erase(i));
  CostMeter m;
  for (int64_t i = 0; i < 20; ++i) EXPECT_TRUE(idx.Contains(i, &m));
  for (int64_t i = 20; i < 80; ++i) EXPECT_FALSE(idx.Contains(i, &m));
  for (int64_t i = 80; i < 100; ++i) EXPECT_TRUE(idx.Contains(i, &m));
  // Reinsertion reuses tombstones.
  for (int64_t i = 20; i < 80; ++i) idx.Insert(i);
  for (int64_t i = 0; i < 100; ++i) EXPECT_TRUE(idx.Contains(i, &m));
}

TEST(HashIndexTest, RandomizedAgainstReference) {
  Rng rng(99);
  HashIndex idx;
  std::unordered_map<int64_t, int64_t> reference;
  for (int step = 0; step < 20000; ++step) {
    int64_t key = static_cast<int64_t>(rng.NextBelow(500));
    if (rng.NextBool(0.6)) {
      idx.Insert(key);
      ++reference[key];
    } else {
      bool erased = idx.Erase(key);
      auto it = reference.find(key);
      bool expect = it != reference.end() && it->second > 0;
      EXPECT_EQ(erased, expect);
      if (expect && --it->second == 0) reference.erase(it);
    }
  }
  CostMeter m;
  for (int64_t key = 0; key < 500; ++key) {
    auto it = reference.find(key);
    EXPECT_EQ(idx.Count(key, &m), it == reference.end() ? 0 : it->second);
  }
}

// ---------------------------------------------------------------------------
// SortedColumn
// ---------------------------------------------------------------------------

TEST(SortedColumnTest, BuildSortsAndCharges) {
  std::vector<int64_t> values = {5, 1, 4, 1, 3};
  CostMeter m;
  auto col = SortedColumn::Build({values.data(), values.size()}, &m);
  EXPECT_GT(m.work(), 0);
  EXPECT_EQ(col.values(), (std::vector<int64_t>{1, 1, 3, 4, 5}));
}

TEST(SortedColumnTest, ContainsAndRanges) {
  std::vector<int64_t> values = {10, 20, 30, 40, 50};
  CostMeter m;
  auto col = SortedColumn::Build({values.data(), values.size()}, nullptr);
  EXPECT_TRUE(col.Contains(30, &m));
  EXPECT_FALSE(col.Contains(35, &m));
  EXPECT_TRUE(col.ContainsInRange(31, 40, &m));
  EXPECT_FALSE(col.ContainsInRange(31, 39, &m));
  EXPECT_FALSE(col.ContainsInRange(40, 31, &m)) << "inverted range";
  EXPECT_EQ(col.CountInRange(15, 45, &m), 3);
  EXPECT_EQ(col.CountInRange(0, 100, &m), 5);
  EXPECT_EQ(col.CountInRange(11, 19, &m), 0);
}

TEST(SortedColumnTest, EmptyColumn) {
  CostMeter m;
  auto col = SortedColumn::Build({}, &m);
  EXPECT_FALSE(col.Contains(1, &m));
  EXPECT_EQ(col.CountInRange(0, 10, &m), 0);
}

TEST(SortedColumnTest, ProbeDepthLogarithmic) {
  std::vector<int64_t> small(1 << 8), large(1 << 18);
  for (size_t i = 0; i < small.size(); ++i) small[i] = static_cast<int64_t>(i);
  for (size_t i = 0; i < large.size(); ++i) large[i] = static_cast<int64_t>(i);
  auto small_col = SortedColumn::Build({small.data(), small.size()}, nullptr);
  auto large_col = SortedColumn::Build({large.data(), large.size()}, nullptr);
  CostMeter ms, ml;
  small_col.Contains(7, &ms);
  large_col.Contains(7, &ml);
  EXPECT_LT(ml.depth(), 3 * ms.depth());
}

class SortedColumnPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SortedColumnPropertyTest, MatchesLinearScan) {
  Rng rng(GetParam());
  std::vector<int64_t> values;
  for (int i = 0; i < 300; ++i) {
    values.push_back(static_cast<int64_t>(rng.NextBelow(100)));
  }
  auto col = SortedColumn::Build({values.data(), values.size()}, nullptr);
  std::multiset<int64_t> reference(values.begin(), values.end());
  CostMeter m;
  for (int64_t probe = -5; probe < 105; ++probe) {
    EXPECT_EQ(col.Contains(probe, &m), reference.count(probe) > 0) << probe;
  }
  for (int trial = 0; trial < 100; ++trial) {
    int64_t lo = rng.NextInRange(-10, 110);
    int64_t hi = rng.NextInRange(-10, 110);
    // Distance is only well-defined when the range is non-inverted.
    int64_t expected =
        lo > hi ? 0
                : static_cast<int64_t>(std::distance(
                      reference.lower_bound(lo), reference.upper_bound(hi)));
    EXPECT_EQ(col.CountInRange(lo, hi, &m), expected)
        << "[" << lo << "," << hi << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SortedColumnPropertyTest,
                         ::testing::Values(21, 22, 23, 24));

}  // namespace
}  // namespace index
}  // namespace pitract
