#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/generator.h"
#include "storage/relation.h"

namespace pitract {
namespace storage {
namespace {

Relation TwoColumnRelation() {
  Relation rel{Schema({{"id", ValueType::kInt64}, {"name", ValueType::kString}})};
  EXPECT_TRUE(rel.AppendRow({Value(int64_t{1}), Value(std::string("ada"))}).ok());
  EXPECT_TRUE(rel.AppendRow({Value(int64_t{2}), Value(std::string("grace"))}).ok());
  return rel;
}

TEST(SchemaTest, FindColumn) {
  Schema schema({{"a", ValueType::kInt64}, {"b", ValueType::kString}});
  EXPECT_EQ(schema.FindColumn("a"), 0);
  EXPECT_EQ(schema.FindColumn("b"), 1);
  EXPECT_EQ(schema.FindColumn("c"), -1);
  EXPECT_EQ(schema.ToString(), "(a:int64, b:string)");
}

TEST(RelationTest, AppendAndGet) {
  Relation rel = TwoColumnRelation();
  EXPECT_EQ(rel.num_rows(), 2);
  auto id = rel.GetInt64(1, 0);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 2);
  auto name = rel.GetString(0, 1);
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(*name, "ada");
}

TEST(RelationTest, TypeAndArityErrors) {
  Relation rel = TwoColumnRelation();
  EXPECT_FALSE(rel.AppendRow({Value(int64_t{3})}).ok());
  EXPECT_FALSE(
      rel.AppendRow({Value(std::string("x")), Value(std::string("y"))}).ok());
  EXPECT_FALSE(rel.GetInt64(0, 1).ok());   // wrong type
  EXPECT_FALSE(rel.GetInt64(5, 0).ok());   // row out of range
  EXPECT_FALSE(rel.GetInt64(0, 9).ok());   // column out of range
  EXPECT_FALSE(rel.AppendIntRow({1, 2}).ok());  // string column present
}

TEST(RelationTest, ScanPointExistsChargesTouchedPrefix) {
  Relation rel{Schema({{"v", ValueType::kInt64}})};
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(rel.AppendIntRow({i}).ok());
  }
  CostMeter hit_meter;
  auto hit = rel.ScanPointExists(0, 5, &hit_meter);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(*hit);
  EXPECT_EQ(hit_meter.work(), 6);  // positions 0..5

  CostMeter miss_meter;
  auto miss = rel.ScanPointExists(0, 1000, &miss_meter);
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(*miss);
  EXPECT_EQ(miss_meter.work(), 100);  // full scan on miss
  EXPECT_EQ(miss_meter.bytes_read(), 100 * 8);
}

TEST(RelationTest, ScanRangeExists) {
  Relation rel{Schema({{"v", ValueType::kInt64}})};
  for (int64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(rel.AppendIntRow({i * 10}).ok());
  }
  CostMeter m;
  auto in = rel.ScanRangeExists(0, 101, 109, &m);
  ASSERT_TRUE(in.ok());
  EXPECT_FALSE(*in);
  auto found = rel.ScanRangeExists(0, 100, 110, &m);
  ASSERT_TRUE(found.ok());
  EXPECT_TRUE(*found);
}

TEST(RelationTest, EncodeDecodeRoundTripIntColumns) {
  Rng rng(3);
  RelationGenOptions options;
  options.num_rows = 64;
  options.num_columns = 3;
  Relation rel = GenerateIntRelation(options, &rng);
  auto back = Relation::Decode(rel.Encode());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_rows(), rel.num_rows());
  ASSERT_TRUE(back->schema() == rel.schema());
  for (int64_t row = 0; row < rel.num_rows(); ++row) {
    for (int col = 0; col < rel.num_columns(); ++col) {
      EXPECT_EQ(*back->GetInt64(row, col), *rel.GetInt64(row, col));
    }
  }
}

TEST(RelationTest, EncodeDecodeRoundTripStringColumns) {
  Relation rel = TwoColumnRelation();
  auto back = Relation::Decode(rel.Encode());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back->GetString(1, 1), "grace");
}

TEST(RelationTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(Relation::Decode("not-a-relation").ok());
  EXPECT_FALSE(Relation::Decode("").ok());
}

TEST(GeneratorTest, UniformRelationShape) {
  Rng rng(5);
  RelationGenOptions options;
  options.num_rows = 1000;
  options.num_columns = 2;
  options.value_range = 100;
  Relation rel = GenerateIntRelation(options, &rng);
  EXPECT_EQ(rel.num_rows(), 1000);
  EXPECT_EQ(rel.num_columns(), 2);
  auto col = rel.Int64Column(0);
  ASSERT_TRUE(col.ok());
  for (int64_t v : *col) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(GeneratorTest, LogRelationTimestampsMonotone) {
  Rng rng(6);
  Relation rel = GenerateLogRelation(500, 4, 32, &rng);
  auto ts = rel.Int64Column(0);
  ASSERT_TRUE(ts.ok());
  for (size_t i = 1; i < ts->size(); ++i) {
    EXPECT_GT((*ts)[i], (*ts)[i - 1]);
  }
  auto level = rel.Int64Column(1);
  ASSERT_TRUE(level.ok());
  for (int64_t v : *level) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 4);
  }
}

TEST(GeneratorTest, DeterministicInSeed) {
  Rng rng_a(7), rng_b(7);
  RelationGenOptions options;
  options.num_rows = 128;
  Relation a = GenerateIntRelation(options, &rng_a);
  Relation b = GenerateIntRelation(options, &rng_b);
  EXPECT_EQ(a.Encode(), b.Encode());
}

TEST(GeneratorTest, ZipfRelationIsSkewed) {
  Rng rng(8);
  RelationGenOptions options;
  options.num_rows = 5000;
  options.num_columns = 1;
  options.value_range = 1000;
  options.zipf_theta = 0.9;
  Relation rel = GenerateIntRelation(options, &rng);
  auto col = rel.Int64Column(0);
  ASSERT_TRUE(col.ok());
  int64_t low = 0;
  for (int64_t v : *col) {
    if (v < 10) ++low;
  }
  EXPECT_GT(low, rel.num_rows() / 20);
}

}  // namespace
}  // namespace storage
}  // namespace pitract
