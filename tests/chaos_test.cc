// The invariant-checked chaos harness: seeded failpoint schedules fire
// across every failure edge (Π builds, spill I/O, frame decode, Δ-patch
// hooks, view builds, preparer completion) while submitters, bulk answer
// traffic, ApplyDelta chains, Spill/Load cycles, and eviction churn race.
//
// Four invariants hold under EVERY schedule:
//   1. exactly-once completion — every admitted item's callback fires
//      exactly once, success or failure;
//   2. answer correctness — every OK answer matches a shadow model the
//      fault schedule cannot touch (probes target elements deltas never
//      modify, so the expected answers are constant across versions);
//   3. exact accounting — after the storm the store clears to zero and
//      re-admits to byte-for-byte the same residency a fresh store builds;
//   4. bounded termination — Drain() returns and every thread joins.
//
// Runs under the normal build and the TSan build (see .github/workflows).
// Deterministic single-fault tests for the Π retry/quarantine policy live
// at the bottom.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/timer.h"
#include "core/problems.h"
#include "engine/builtins.h"
#include "engine/delta.h"
#include "engine/engine.h"
#include "engine/pipeline.h"
#include "engine/prepared_store.h"
#include "engine/serve.h"

namespace pitract {
namespace engine {
namespace {

namespace fs = std::filesystem;

std::string UniqueTempDir(const char* tag) {
  static std::atomic<int> counter{0};
  fs::path dir = fs::temp_directory_path() /
                 (std::string("pitract_") + tag + "_" +
                  std::to_string(::getpid()) + "_" +
                  std::to_string(counter.fetch_add(1)));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::unique_ptr<QueryEngine> MakeEngine(PreparedStore::Options options = {}) {
  auto engine = std::make_unique<QueryEngine>(options);
  auto status = RegisterBuiltins(engine.get());
  EXPECT_TRUE(status.ok()) << status.ToString();
  return engine;
}

// ---------------------------------------------------------------------------
// The shadow model. Each data part is a list-membership instance over
// universe 512 split into two halves:
//   * stable elements in [256, 512) — fixed at construction, never touched
//     by a delta;
//   * volatile elements in [0, 256) — the only values ApplyDelta chains
//     insert/delete.
// Every probe targets [256, 512), so the expected answer vector is a pure
// function of the stable set — constant across the whole delta chain, every
// MVCC version, and every recompute. That is what lets a racing prober
// check answers without knowing which version it hit.
// ---------------------------------------------------------------------------

struct ShadowPart {
  std::string data;                 // the original (version-0) encoding
  std::set<int64_t> stable;         // elements in [256, 512)
  std::vector<int64_t> volatiles;   // elements in [0, 256)
  std::vector<std::string> probes;  // queries, all in [256, 512)
  std::vector<bool> expected;       // shadow answers for `probes`
};

ShadowPart MakeShadowPart(Rng* rng, int stable_count, int volatile_count,
                          int probe_count) {
  ShadowPart part;
  std::vector<int64_t> list;
  for (int i = 0; i < stable_count; ++i) {
    const int64_t e = 256 + static_cast<int64_t>(rng->NextBelow(256));
    part.stable.insert(e);
    list.push_back(e);
  }
  for (int i = 0; i < volatile_count; ++i) {
    const int64_t e = static_cast<int64_t>(rng->NextBelow(256));
    part.volatiles.push_back(e);
    list.push_back(e);
  }
  rng->Shuffle(&list);
  part.data = core::MemberFactorization()
                  .pi1(core::MakeMemberInstance(512, list, 0))
                  .value();
  for (int i = 0; i < probe_count; ++i) {
    const int64_t q = 256 + static_cast<int64_t>(rng->NextBelow(256));
    part.probes.push_back(std::to_string(q));
    part.expected.push_back(part.stable.count(q) > 0);
  }
  return part;
}

/// Checks one OK batch against the shadow model.
void ExpectShadowAnswers(const ShadowPart& part,
                         const std::vector<bool>& answers,
                         const char* where) {
  ASSERT_EQ(answers.size(), part.expected.size()) << where;
  for (size_t i = 0; i < answers.size(); ++i) {
    EXPECT_EQ(answers[i], part.expected[i])
        << where << ": probe " << part.probes[i] << " diverged from shadow";
  }
}

// ---------------------------------------------------------------------------
// One seeded chaos schedule end to end.
// ---------------------------------------------------------------------------

void RunChaosSchedule(uint64_t seed) {
  SCOPED_TRACE("chaos seed " + std::to_string(seed));
  Rng rng(seed);

  // Fault mix: every probability is drawn from the schedule seed, so the
  // whole run (faults included) is reproducible from one integer.
  failpoint::ScopedFailpoints guard;
  failpoint::Arm("store.pi_build",
                 failpoint::WithProbability(0.02 + 0.04 * rng.NextDouble(),
                                            rng.Next()));
  failpoint::Arm("pipeline.preparer_publish",
                 failpoint::WithProbability(0.05 + 0.15 * rng.NextDouble(),
                                            rng.Next()));
  failpoint::Arm("store.patch",
                 failpoint::WithProbability(0.3, rng.Next()));
  failpoint::Arm("store.view_build",
                 failpoint::WithProbability(0.05, rng.Next()));
  failpoint::Arm("spill.write", failpoint::WithProbability(0.3, rng.Next()));
  failpoint::Arm("spill.rename", failpoint::WithProbability(0.2, rng.Next()));
  failpoint::Arm("spill.read", failpoint::WithProbability(0.2, rng.Next()));
  failpoint::Arm("serde.read_bytes",
                 failpoint::WithProbability(0.1, rng.Next()));

  PreparedStore::Options store_options;
  store_options.shards = 4;
  store_options.max_entries = 6;  // < parts x versions: eviction churns
  store_options.versions = 2;
  auto engine = MakeEngine(store_options);

  constexpr int kParts = 4;
  std::vector<ShadowPart> parts;
  for (int p = 0; p < kParts; ++p) {
    parts.push_back(MakeShadowPart(&rng, /*stable_count=*/24,
                                   /*volatile_count=*/16,
                                   /*probe_count=*/12));
  }

  const std::string spill_dir = UniqueTempDir("chaos");

  // --- the storm -----------------------------------------------------------
  PipelineOptions pipeline_options;
  pipeline_options.threads = 3;
  pipeline_options.preparers = 2;
  pipeline_options.pi_retries = 2;
  pipeline_options.pi_retry_backoff_ns = 10'000;  // keep schedules fast
  pipeline_options.quarantine_ttl_ns = 5'000'000;  // 5 ms: storms re-probe

  constexpr int kSubmitters = 3;
  constexpr int kItemsPerSubmitter = 40;
  constexpr int kTotalItems = kSubmitters * kItemsPerSubmitter;
  std::vector<std::atomic<int>> completions(kTotalItems);
  std::atomic<int64_t> ok_items{0};
  std::atomic<int64_t> failed_items{0};

  {
    ServePipeline pipeline(engine.get(), pipeline_options);
    std::vector<std::thread> threads;

    // Submitters: per-item completion slots prove exactly-once.
    for (int s = 0; s < kSubmitters; ++s) {
      const uint64_t submitter_seed = rng.Next();
      threads.emplace_back([&, s, submitter_seed] {
        Rng local(submitter_seed);
        for (int i = 0; i < kItemsPerSubmitter; ++i) {
          const int slot = s * kItemsPerSubmitter + i;
          const ShadowPart& part =
              parts[local.NextBelow(static_cast<uint64_t>(kParts))];
          ServeWorkItem item;
          item.problem = "list-membership";
          item.data = part.data;
          item.queries = part.probes;
          const size_t expected_queries = part.probes.size();
          Status admitted = pipeline.Submit(
              std::move(item), [&, slot, expected_queries](
                                   const ItemOutcome& outcome) {
                completions[static_cast<size_t>(slot)].fetch_add(1);
                if (outcome.status.ok()) {
                  EXPECT_EQ(outcome.queries,
                            static_cast<int64_t>(expected_queries));
                  ok_items.fetch_add(1);
                } else {
                  failed_items.fetch_add(1);
                }
              });
          ASSERT_TRUE(admitted.ok()) << admitted.ToString();
        }
      });
    }

    // Probers: direct AnswerBatch traffic whose OK answers are checked
    // against the shadow model *during* the storm.
    std::atomic<bool> stop{false};
    for (int p = 0; p < 2; ++p) {
      const uint64_t prober_seed = rng.Next();
      threads.emplace_back([&, prober_seed] {
        Rng local(prober_seed);
        while (!stop.load(std::memory_order_acquire)) {
          const ShadowPart& part =
              parts[local.NextBelow(static_cast<uint64_t>(kParts))];
          auto batch =
              engine->AnswerBatch("list-membership", part.data, part.probes);
          if (batch.ok()) {
            ExpectShadowAnswers(part, batch->answers, "prober");
          }
          std::this_thread::yield();
        }
      });
    }

    // Delta chain: valid volatile-only deltas against part 0; the thread
    // owns the evolving data part and its volatile multiset, and checks
    // the post-delta version against the same shadow (stable elements are
    // untouched by construction).
    const uint64_t delta_seed = rng.Next();
    threads.emplace_back([&, delta_seed] {
      Rng local(delta_seed);
      ShadowPart& part = parts[0];
      std::string current = part.data;
      std::vector<int64_t> volatiles = part.volatiles;
      for (int step = 0; step < 16; ++step) {
        DeltaBatch delta;
        DeltaOp op;
        if (!volatiles.empty() && local.NextBool(0.5)) {
          const size_t at = local.NextBelow(volatiles.size());
          op.kind = DeltaOp::Kind::kListDelete;
          op.a = volatiles[at];
          volatiles.erase(volatiles.begin() + static_cast<long>(at));
        } else {
          op.kind = DeltaOp::Kind::kListInsert;
          op.a = static_cast<int64_t>(local.NextBelow(256));
          volatiles.push_back(op.a);
        }
        delta.ops.push_back(op);
        auto outcome = engine->ApplyDelta("list-membership", current, delta);
        ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
        current = outcome->new_data;
        auto batch =
            engine->AnswerBatch("list-membership", current, part.probes);
        if (batch.ok()) {
          ExpectShadowAnswers(part, batch->answers, "delta-chain");
        }
      }
    });

    // Spill/Load churn against the live store, under the spill/serde
    // failpoints — partial spills, torn reads, rejected frames.
    const uint64_t spill_seed = rng.Next();
    threads.emplace_back([&, spill_seed] {
      Rng local(spill_seed);
      for (int cycle = 0; cycle < 6; ++cycle) {
        (void)engine->store().Spill(spill_dir);  // best effort under faults
        (void)engine->store().Load(spill_dir);
        std::this_thread::sleep_for(
            std::chrono::microseconds(local.NextBelow(500)));
      }
    });

    // Invariant 4 (bounded termination): Drain returns, threads join.
    for (int s = 0; s < kSubmitters; ++s) threads[s].join();
    pipeline.Drain();
    stop.store(true, std::memory_order_release);
    for (size_t t = kSubmitters; t < threads.size(); ++t) threads[t].join();

    // Invariant 1: exactly-once completion for every admitted item.
    for (int slot = 0; slot < kTotalItems; ++slot) {
      EXPECT_EQ(completions[static_cast<size_t>(slot)].load(), 1)
          << "item " << slot << " completed "
          << completions[static_cast<size_t>(slot)].load() << " times";
    }
    EXPECT_EQ(ok_items.load() + failed_items.load(), kTotalItems);

    ServeReport report = pipeline.report();
    // Quarantined items are also errors; shed cannot happen (no depth).
    EXPECT_EQ(report.shed, 0);
    EXPECT_LE(report.quarantined, report.errors);
  }

  // --- after the storm -----------------------------------------------------
  failpoint::DisarmAll();

  // Invariant 2 (final): with faults off, every part answers the full
  // probe set correctly — whatever the schedule corrupted, rejected, or
  // quarantined degraded to recompute, never to a wrong answer.
  for (const ShadowPart& part : parts) {
    auto batch =
        engine->AnswerBatch("list-membership", part.data, part.probes);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    ExpectShadowAnswers(part, batch->answers, "post-storm");
  }

  // Invariant 3: accounting is exact. Clear drops every entry and every
  // byte; re-admitting one part lands on byte-for-byte the residency a
  // store that never saw the storm builds for the same content.
  engine->store().Clear();
  EXPECT_EQ(engine->store().size(), 0u);
  EXPECT_EQ(engine->store().bytes_resident(), 0u);
  ASSERT_TRUE(
      engine->AnswerBatch("list-membership", parts[1].data, parts[1].probes)
          .ok());
  auto reference = MakeEngine();
  ASSERT_TRUE(
      reference
          ->AnswerBatch("list-membership", parts[1].data, parts[1].probes)
          .ok());
  EXPECT_EQ(engine->store().bytes_resident(),
            reference->store().bytes_resident());
  EXPECT_EQ(engine->store().size(), reference->store().size());

  fs::remove_all(spill_dir);
}

TEST(ChaosTest, TwelveSeededSchedulesHoldEveryInvariant) {
  // Each seed draws its own fault mix, data parts, and interleavings; the
  // dozen schedules together cover Π failures, publish faults, patch
  // failures, view-build failures, and torn spill frames racing delta
  // chains, eviction, and Spill/Load cycles.
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    RunChaosSchedule(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// ---------------------------------------------------------------------------
// Tiered-residency chaos: view-build and spill-write faults land exactly
// where the demotion sweeps do their work. A byte-budgeted store with an
// armed spill directory churns hot->warm view demotions, warm->cold frame
// writes, and cold->hot promotions while both failure edges fire; a failed
// view build must degrade to the string answer path and a failed frame
// write must degrade to a plain eviction — never a wrong answer, never a
// stuck sweep, never broken accounting.
// ---------------------------------------------------------------------------

TEST(ChaosTest, TieredDemotionSweepsSurviveViewBuildAndSpillFaults) {
  Rng rng(2026);
  constexpr int kParts = 6;
  std::vector<ShadowPart> parts;
  for (int p = 0; p < kParts; ++p) {
    parts.push_back(MakeShadowPart(&rng, /*stable_count=*/24,
                                   /*volatile_count=*/16,
                                   /*probe_count=*/12));
  }

  // Size the budget off a fault-free probe: room for ~2.5 parts, so six
  // parts in rotation keep every sweep phase busy.
  size_t per_part = 0;
  {
    auto probe = MakeEngine();
    ASSERT_TRUE(
        probe->AnswerBatch("list-membership", parts[0].data, parts[0].probes)
            .ok());
    per_part = probe->store().bytes_resident();
    ASSERT_GT(per_part, 0u);
  }

  failpoint::ScopedFailpoints guard;
  failpoint::Arm("store.view_build", failpoint::EveryNth(3));
  failpoint::Arm("spill.write", failpoint::WithProbability(0.35, rng.Next()));

  PreparedStore::Options options;
  options.shards = 2;
  options.byte_budget = per_part * 5 / 2;
  auto engine = MakeEngine(options);
  ASSERT_TRUE(options.tiered);
  const std::string spill_dir = UniqueTempDir("chaos_tiered");
  ASSERT_TRUE(engine->store().Spill(spill_dir).ok());

  // The storm: three workers rotate through more parts than the budget
  // holds. Every batch must come back OK and shadow-correct no matter
  // which demotion/promotion edge it raced or which faults it absorbed.
  std::vector<std::thread> workers;
  for (int w = 0; w < 3; ++w) {
    const uint64_t worker_seed = rng.Next();
    workers.emplace_back([&, worker_seed] {
      Rng local(worker_seed);
      for (int i = 0; i < 50; ++i) {
        const ShadowPart& part =
            parts[local.NextBelow(static_cast<uint64_t>(kParts))];
        auto batch =
            engine->AnswerBatch("list-membership", part.data, part.probes);
        ASSERT_TRUE(batch.ok()) << batch.status().ToString();
        ExpectShadowAnswers(part, batch->answers, "tiered-storm");
      }
    });
  }
  for (auto& worker : workers) worker.join();

  // The sweeps really ran across every tier boundary: views were shed in
  // the hot->warm phase, entries left the warm set, and each spillable
  // eviction either landed a cold frame or was charged as a respill
  // failure by the fault schedule.
  const PreparedStore::Stats stats = engine->store().stats();
  EXPECT_GT(stats.view_demotions, 0);
  EXPECT_GT(stats.evictions, 0);
  EXPECT_GT(stats.cold_demotions + stats.respill_failures, 0);
  EXPECT_LE(engine->store().bytes_resident(), options.byte_budget);

  // Fault-free epilogue: every part still answers correctly, and the
  // ledger clears to exactly zero — no bytes stranded by a sweep that a
  // failpoint interrupted halfway.
  failpoint::DisarmAll();
  for (const ShadowPart& part : parts) {
    auto batch =
        engine->AnswerBatch("list-membership", part.data, part.probes);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    ExpectShadowAnswers(part, batch->answers, "tiered-post-storm");
  }
  engine->store().Clear();
  EXPECT_EQ(engine->store().size(), 0u);
  EXPECT_EQ(engine->store().bytes_resident(), 0u);
  fs::remove_all(spill_dir);
}

// ---------------------------------------------------------------------------
// Deterministic Π retry / quarantine policy tests (the acceptance pins).
// ---------------------------------------------------------------------------

/// A registered problem whose Π fails until `fail_until` computes have
/// happened, counting every attempt — the deterministic witness for the
/// retry budget.
struct FlakyPi {
  std::atomic<int> computes{0};
  int fail_until = 0;  // computes 1..fail_until fail, later ones succeed
};

void RegisterFlaky(QueryEngine* engine, FlakyPi* pi) {
  ProblemEntry entry;
  entry.name = "flaky-echo";
  entry.paper_anchor = "test-only";
  entry.has_language = true;
  entry.witness.name = "echo";
  entry.witness.preprocess = [pi](const std::string& data,
                                  CostMeter*) -> Result<std::string> {
    const int attempt = pi->computes.fetch_add(1) + 1;
    if (attempt <= pi->fail_until) {
      return Status::Internal("flaky Π attempt " + std::to_string(attempt));
    }
    return "pi:" + data;
  };
  entry.witness.answer = [](const std::string& prepared,
                            const std::string& query,
                            CostMeter*) -> Result<bool> {
    return prepared.find(query) != std::string::npos;
  };
  ASSERT_TRUE(engine->Register(std::move(entry)).ok());
}

ServeWorkItem FlakyItem() {
  ServeWorkItem item;
  item.problem = "flaky-echo";
  item.data = "base";
  item.queries = {"pi:base"};
  return item;
}

TEST(PipelinePiFailureTest, RetryHealsTransientPiFailure) {
  auto engine = MakeEngine();
  FlakyPi pi;
  pi.fail_until = 2;  // attempts 1 and 2 fail, attempt 3 succeeds
  RegisterFlaky(engine.get(), &pi);

  PipelineOptions options;
  options.threads = 1;
  options.preparers = 1;
  options.pi_retries = 2;
  options.pi_retry_backoff_ns = 1'000;
  ServePipeline pipeline(engine.get(), options);

  std::atomic<bool> done_ok{false};
  ASSERT_TRUE(pipeline
                  .Submit(FlakyItem(),
                          [&](const ItemOutcome& outcome) {
                            EXPECT_TRUE(outcome.status.ok())
                                << outcome.status.ToString();
                            done_ok.store(true);
                          })
                  .ok());
  pipeline.Drain();
  EXPECT_TRUE(done_ok.load());
  EXPECT_EQ(pi.computes.load(), 3);  // CostMeter-adjacent pin: 1 + 2 retries

  ServeReport report = pipeline.report();
  EXPECT_EQ(report.pi_retries, 2);
  EXPECT_EQ(report.pi_failures, 0);
  EXPECT_EQ(report.quarantined, 0);
  EXPECT_EQ(report.errors, 0);
}

TEST(PipelinePiFailureTest, PoisonedPiQuarantinesAfterRetryBudget) {
  auto engine = MakeEngine();
  FlakyPi pi;
  pi.fail_until = 1 << 20;  // never succeeds inside this test
  RegisterFlaky(engine.get(), &pi);

  PipelineOptions options;
  options.threads = 2;
  options.preparers = 1;
  options.pi_retries = 2;
  options.pi_retry_backoff_ns = 1'000;
  options.quarantine_ttl_ns = 60'000'000'000;  // 60 s: never expires here
  ServePipeline pipeline(engine.get(), options);

  // One item spends the whole retry budget and fails terminally.
  std::atomic<int> internal_failures{0};
  ASSERT_TRUE(pipeline
                  .Submit(FlakyItem(),
                          [&](const ItemOutcome& outcome) {
                            EXPECT_EQ(outcome.status.code(),
                                      StatusCode::kInternal);
                            internal_failures.fetch_add(1);
                          })
                  .ok());
  pipeline.Drain();
  ASSERT_EQ(internal_failures.load(), 1);
  const int computes_after_terminal = pi.computes.load();
  EXPECT_EQ(computes_after_terminal, 3);  // 1 attempt + pi_retries

  // Every later item on the poisoned digest fails FAST: no further Π run
  // (the compute-count pin), Status::Internal, counted as quarantined.
  constexpr int kParked = 19;
  for (int i = 0; i < kParked; ++i) {
    ASSERT_TRUE(pipeline
                    .Submit(FlakyItem(),
                            [&](const ItemOutcome& outcome) {
                              EXPECT_EQ(outcome.status.code(),
                                        StatusCode::kInternal);
                              internal_failures.fetch_add(1);
                            })
                    .ok());
  }
  pipeline.Drain();
  EXPECT_EQ(internal_failures.load(), 1 + kParked);
  EXPECT_EQ(pi.computes.load(), computes_after_terminal);  // Π never re-ran

  ServeReport report = pipeline.report();
  EXPECT_EQ(report.pi_failures, 1);
  EXPECT_EQ(report.pi_retries, 2);
  EXPECT_EQ(report.quarantined, kParked);
  EXPECT_EQ(report.errors, 1 + kParked);
}

TEST(PipelinePiFailureTest, QuarantineExpiresAndPiIsReprobed) {
  auto engine = MakeEngine();
  FlakyPi pi;
  pi.fail_until = 3;  // the first storm's budget (3 attempts) all fail...
  RegisterFlaky(engine.get(), &pi);

  PipelineOptions options;
  options.threads = 1;
  options.preparers = 1;
  options.pi_retries = 2;
  options.pi_retry_backoff_ns = 1'000;
  options.quarantine_ttl_ns = 20'000'000;  // 20 ms
  ServePipeline pipeline(engine.get(), options);

  std::atomic<int> failures{0};
  ASSERT_TRUE(pipeline
                  .Submit(FlakyItem(),
                          [&](const ItemOutcome&) { failures.fetch_add(1); })
                  .ok());
  pipeline.Drain();
  ASSERT_EQ(failures.load(), 1);
  ASSERT_EQ(pi.computes.load(), 3);

  // ...wait out the TTL; the next item re-probes Π (attempt 4 succeeds).
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  std::atomic<bool> recovered{false};
  ASSERT_TRUE(pipeline
                  .Submit(FlakyItem(),
                          [&](const ItemOutcome& outcome) {
                            EXPECT_TRUE(outcome.status.ok())
                                << outcome.status.ToString();
                            recovered.store(true);
                          })
                  .ok());
  pipeline.Drain();
  EXPECT_TRUE(recovered.load());
  EXPECT_EQ(pi.computes.load(), 4);
  EXPECT_EQ(pipeline.report().quarantined, 0);  // expiry re-probed, not fast-failed
}

TEST(PipelinePiFailureTest, PreparerPublishFailpointHealsViaRetry) {
  auto engine = MakeEngine();
  failpoint::ScopedFailpoints guard;
  // Π and the store publish succeed, then the preparer "dies" once before
  // waking its parked units; the retry hits the published entry warm.
  failpoint::Arm("pipeline.preparer_publish", failpoint::Once());

  PipelineOptions options;
  options.threads = 1;
  options.preparers = 1;
  options.pi_retries = 1;
  options.pi_retry_backoff_ns = 1'000;
  ServePipeline pipeline(engine.get(), options);

  ServeWorkItem item;
  item.problem = "list-membership";
  item.data = core::MemberFactorization()
                  .pi1(core::MakeMemberInstance(64, {1, 2, 3}, 0))
                  .value();
  item.queries = {"1", "5"};
  std::atomic<bool> done_ok{false};
  ASSERT_TRUE(pipeline
                  .Submit(std::move(item),
                          [&](const ItemOutcome& outcome) {
                            EXPECT_TRUE(outcome.status.ok())
                                << outcome.status.ToString();
                            EXPECT_EQ(outcome.queries, 2);
                            done_ok.store(true);
                          })
                  .ok());
  pipeline.Drain();
  EXPECT_TRUE(done_ok.load());

  ServeReport report = pipeline.report();
  EXPECT_EQ(report.pi_retries, 1);
  EXPECT_EQ(report.pi_failures, 0);
  EXPECT_EQ(report.errors, 0);
  EXPECT_EQ(failpoint::StatsFor("pipeline.preparer_publish").fires, 1);
}

}  // namespace
}  // namespace engine
}  // namespace pitract
