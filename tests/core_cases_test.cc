#include <gtest/gtest.h>

#include <set>

#include "core/query_class.h"

namespace pitract {
namespace core {
namespace {

/// Contract tests for the typed query-class registry: every registered
/// case must honour the QueryClassCase protocol the classifier and the
/// benchmark harness rely on.

class RegistryCaseTest : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<QueryClassCase> GetCase() {
    auto cases = MakeAllCases();
    return std::move(cases[static_cast<size_t>(GetParam())]);
  }
};

TEST_P(RegistryCaseTest, HasIdentity) {
  auto c = GetCase();
  EXPECT_FALSE(c->name().empty());
  EXPECT_FALSE(c->paper_anchor().empty());
}

TEST_P(RegistryCaseTest, AnswerBeforePreprocessFailsCleanly) {
  auto c = GetCase();
  ASSERT_TRUE(c->Generate(1 << 7, /*seed=*/3).ok());
  auto answer = c->AnswerPrepared(0, nullptr);
  EXPECT_FALSE(answer.ok())
      << c->name() << " must reject prepared answering before Preprocess";
  EXPECT_EQ(answer.status().code(), StatusCode::kFailedPrecondition);
  // The baseline needs no preprocessing.
  EXPECT_TRUE(c->AnswerBaseline(0, nullptr).ok());
}

TEST_P(RegistryCaseTest, PreparedAgreesWithBaselineOnEveryQuery) {
  auto c = GetCase();
  ASSERT_TRUE(c->Generate(1 << 8, /*seed=*/4).ok());
  ASSERT_TRUE(c->Preprocess(nullptr).ok());
  ASSERT_GE(c->num_queries(), 1);
  for (int qi = 0; qi < c->num_queries(); ++qi) {
    auto fast = c->AnswerPrepared(qi, nullptr);
    auto slow = c->AnswerBaseline(qi, nullptr);
    ASSERT_TRUE(fast.ok()) << c->name() << " qi=" << qi << ": "
                           << fast.status().ToString();
    ASSERT_TRUE(slow.ok()) << c->name() << " qi=" << qi;
    EXPECT_EQ(*fast, *slow) << c->name() << " qi=" << qi;
  }
}

TEST_P(RegistryCaseTest, RegenerationIsDeterministicInSeed) {
  auto c = GetCase();
  auto answers_for = [&](uint64_t seed) {
    EXPECT_TRUE(c->Generate(1 << 7, seed).ok());
    EXPECT_TRUE(c->Preprocess(nullptr).ok());
    std::vector<bool> answers;
    for (int qi = 0; qi < c->num_queries(); ++qi) {
      auto a = c->AnswerPrepared(qi, nullptr);
      EXPECT_TRUE(a.ok());
      answers.push_back(a.ok() && *a);
    }
    return answers;
  };
  auto first = answers_for(9);
  auto again = answers_for(9);
  auto other = answers_for(10);
  EXPECT_EQ(first, again) << c->name() << " must be reproducible";
  (void)other;  // different seeds may or may not differ; just must not crash
}

TEST_P(RegistryCaseTest, PreprocessChargesPositiveWork) {
  auto c = GetCase();
  ASSERT_TRUE(c->Generate(1 << 8, /*seed=*/6).ok());
  CostMeter meter;
  ASSERT_TRUE(c->Preprocess(&meter).ok());
  EXPECT_GT(meter.work(), 0) << c->name();
}

TEST_P(RegistryCaseTest, PreparedQueriesAreCheaperInDepthAtScale) {
  auto c = GetCase();
  ASSERT_TRUE(c->Generate(1 << 9, /*seed=*/7).ok());
  ASSERT_TRUE(c->Preprocess(nullptr).ok());
  double prepared = 0;
  double baseline = 0;
  for (int qi = 0; qi < c->num_queries(); ++qi) {
    CostMeter pm, bm;
    ASSERT_TRUE(c->AnswerPrepared(qi, &pm).ok());
    ASSERT_TRUE(c->AnswerBaseline(qi, &bm).ok());
    prepared += static_cast<double>(pm.depth());
    baseline += static_cast<double>(bm.depth());
  }
  EXPECT_LT(prepared, baseline)
      << c->name() << ": preprocessing must pay off on average";
}

INSTANTIATE_TEST_SUITE_P(AllCases, RegistryCaseTest,
                         ::testing::Range(0, 10),
                         [](const ::testing::TestParamInfo<int>& info) {
                           auto cases = MakeAllCases();
                           std::string name =
                               cases[static_cast<size_t>(info.param)]->name();
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(RegistryTest, NamesAreUniqueAndStable) {
  auto cases = MakeAllCases();
  EXPECT_EQ(cases.size(), 10u);
  std::set<std::string> names;
  for (const auto& c : cases) {
    EXPECT_TRUE(names.insert(c->name()).second)
        << "duplicate case name " << c->name();
  }
  EXPECT_TRUE(names.count("point-selection"));
  EXPECT_TRUE(names.count("breadth-depth-search"));
  EXPECT_TRUE(names.count("cvp-refactorized"));
}

TEST(RegistryTest, MakeCaseByNameCoversEveryCase) {
  // Guards the factory table against drifting from each case's name().
  for (const auto& c : MakeAllCases()) {
    auto by_name = MakeCaseByName(c->name());
    ASSERT_NE(by_name, nullptr) << c->name();
    EXPECT_EQ(by_name->name(), c->name());
  }
  EXPECT_EQ(MakeCaseByName("no-such-case"), nullptr);
}

}  // namespace
}  // namespace core
}  // namespace pitract
