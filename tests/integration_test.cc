#include <gtest/gtest.h>

#include <algorithm>

#include "common/codec.h"
#include "common/rng.h"
#include "compress/reach_compress.h"
#include "core/problems.h"
#include "core/reduction.h"
#include "incremental/incremental_tc.h"
#include "incremental/union_find.h"
#include "index/bptree.h"
#include "storage/csv.h"
#include "storage/generator.h"
#include "topk/threshold.h"
#include "views/views.h"

namespace pitract {
namespace {

/// Cross-module pipelines: each test exercises a realistic end-to-end path
/// through several libraries, the way the examples do, with assertions.

TEST(IntegrationTest, CsvToBPlusTreeToPointSelection) {
  // CSV ingestion -> columnar relation -> B+-tree preprocessing -> queries
  // agreeing with relation scans.
  Rng rng(201);
  storage::RelationGenOptions options;
  options.num_rows = 2000;
  options.num_columns = 2;
  options.value_range = 500;
  storage::Relation original = storage::GenerateIntRelation(options, &rng);
  auto relation = storage::csv::Read(storage::csv::Write(original));
  ASSERT_TRUE(relation.ok());

  auto column = relation->Int64Column(0);
  ASSERT_TRUE(column.ok());
  std::vector<std::pair<int64_t, int64_t>> entries;
  for (size_t row = 0; row < column->size(); ++row) {
    entries.emplace_back((*column)[row], static_cast<int64_t>(row));
  }
  std::sort(entries.begin(), entries.end());
  index::BPlusTree tree;
  ASSERT_TRUE(tree.BulkLoad(entries).ok());
  ASSERT_TRUE(tree.Validate().ok());

  for (int64_t probe = -5; probe < 505; probe += 7) {
    CostMeter scan_m, tree_m;
    auto scanned = relation->ScanPointExists(0, probe, &scan_m);
    ASSERT_TRUE(scanned.ok());
    EXPECT_EQ(tree.PointExists(probe, &tree_m), *scanned) << probe;
  }
}

TEST(IntegrationTest, GraphStringCodecThroughReductionPipeline) {
  // graph -> Σ* encoding -> the full Theorem 5 pipeline -> answers match
  // direct membership, end to end over the wire format.
  Rng rng(202);
  auto composed = core::Compose(core::MemberToConnReduction(),
                                core::ConnToBdsReduction());
  auto witness = core::Transport(composed, core::BdsWitness());
  auto member = core::ListMembershipProblem();
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int64_t> list;
    for (uint64_t i = 1 + rng.NextBelow(15); i > 0; --i) {
      list.push_back(static_cast<int64_t>(rng.NextBelow(30)));
    }
    std::string x = core::MakeMemberInstance(
        30, list, static_cast<int64_t>(rng.NextBelow(30)));
    core::LanguageOfPairs s(member, composed.source_factorization);
    EXPECT_TRUE(core::VerifyWitnessOnInstance(s, witness, x).ok());
  }
}

TEST(IntegrationTest, IncrementalClosureFeedsCompression) {
  // Maintain a closure incrementally, then compress the final graph; the
  // two independently-built oracles must agree everywhere.
  Rng rng(203);
  const graph::NodeId n = 40;
  incremental::IncrementalTransitiveClosure tc(n);
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
  for (int step = 0; step < 90; ++step) {
    auto u = static_cast<graph::NodeId>(rng.NextBelow(n));
    auto v = static_cast<graph::NodeId>(rng.NextBelow(n));
    ASSERT_TRUE(tc.InsertEdge(u, v, nullptr).ok());
    edges.emplace_back(u, v);
  }
  auto g = graph::Graph::FromEdges(n, edges, /*directed=*/true);
  ASSERT_TRUE(g.ok());
  auto compressed = compress::ReachCompressed::Build(*g, nullptr);
  for (graph::NodeId u = 0; u < n; ++u) {
    for (graph::NodeId v = 0; v < n; ++v) {
      EXPECT_EQ(*tc.Reachable(u, v, nullptr),
                *compressed.Reachable(u, v, nullptr))
          << u << "->" << v;
    }
  }
}

TEST(IntegrationTest, UnionFindMaintainsConnWitnessAnswers) {
  // Incremental preprocessing maintenance (§1): a union-find updated per
  // edge must keep answering exactly like the from-scratch ConnWitness.
  Rng rng(204);
  const graph::NodeId n = 60;
  incremental::UnionFind uf(n);
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
  auto witness = core::ConnWitness();
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 15; ++i) {
      auto a = static_cast<graph::NodeId>(rng.NextBelow(n));
      auto b = static_cast<graph::NodeId>(rng.NextBelow(n));
      ASSERT_TRUE(uf.Union(a, b, nullptr).ok());
      edges.emplace_back(a, b);
    }
    auto g = graph::Graph::FromEdges(n, edges, /*directed=*/false);
    ASSERT_TRUE(g.ok());
    auto data = core::ConnFactorization().pi1(core::MakeConnInstance(*g, 0, 1));
    ASSERT_TRUE(data.ok());
    auto prepared = witness.preprocess(*data, nullptr);
    ASSERT_TRUE(prepared.ok());
    for (int probe = 0; probe < 30; ++probe) {
      auto u = static_cast<graph::NodeId>(rng.NextBelow(n));
      auto v = static_cast<graph::NodeId>(rng.NextBelow(n));
      auto fast = uf.Connected(u, v, nullptr);
      auto slow = witness.answer(
          *prepared,
          codec::EncodeFields({std::to_string(u), std::to_string(v)}),
          nullptr);
      ASSERT_TRUE(fast.ok() && slow.ok());
      EXPECT_EQ(*fast, *slow);
    }
  }
}

TEST(IntegrationTest, ViewsAndTopKOverOneLogRelation) {
  // One dataset, two preprocessing strategies: a view catalog for counts
  // and a TA index for ranking; both validated against scans.
  Rng rng(205);
  storage::Relation log = storage::GenerateLogRelation(3000, 4, 16, &rng);
  views::ViewCatalog catalog;
  ASSERT_TRUE(catalog.AddCountView(log, "code", nullptr).ok());
  for (int64_t code = 0; code < 16; ++code) {
    views::ViewQuery q;
    q.kind = views::ViewQuery::Kind::kCountByKey;
    q.key_column = "code";
    q.key = code;
    auto fast = catalog.Answer(q, nullptr);
    auto slow = views::ViewCatalog::AnswerByScan(log, q, nullptr);
    ASSERT_TRUE(fast.ok() && slow.ok());
    EXPECT_EQ(*fast, *slow);
  }
  auto index = topk::ThresholdIndex::Build(log, {0, 2}, nullptr);
  ASSERT_TRUE(index.ok());
  auto ta = index->TopK({1, 100}, 5, nullptr);
  auto scan = topk::ThresholdIndex::TopKByScan(log, {0, 2}, {1, 100}, 5,
                                               nullptr);
  ASSERT_TRUE(ta.ok() && scan.ok());
  ASSERT_EQ(ta->objects.size(), scan->objects.size());
  for (size_t i = 0; i < ta->objects.size(); ++i) {
    EXPECT_EQ(ta->objects[i].score, scan->objects[i].score);
  }
}

TEST(IntegrationTest, RewrittenSelectionOverCsvData) {
  // CSV -> list column -> λ-rewritten predicate selection witness.
  auto relation = storage::csv::Read(
      "v:int64\n12\n5\n40\n7\n22\n");
  ASSERT_TRUE(relation.ok());
  auto column = relation->Int64Column(0);
  ASSERT_TRUE(column.ok());
  std::vector<int64_t> list(column->begin(), column->end());
  auto witness = core::ApplyRewriting(core::IntervalNormalizingRewriter(),
                                      core::IntervalWitness());
  core::LanguageOfPairs s(core::PredicateSelectionProblem(),
                          core::SelectionFactorization());
  EXPECT_TRUE(core::VerifyWitnessOnInstance(
                  s, witness, core::MakeSelectionInstance(64, list, {3, 20, 30}))
                  .ok());
  EXPECT_TRUE(core::VerifyWitnessOnInstance(
                  s, witness, core::MakeSelectionInstance(64, list, {0, 8}))
                  .ok());
}

}  // namespace
}  // namespace pitract
