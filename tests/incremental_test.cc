#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "graph/generators.h"
#include "incremental/delta_index.h"
#include "incremental/incremental_tc.h"
#include "reach/reachability.h"

namespace pitract {
namespace incremental {
namespace {

// ---------------------------------------------------------------------------
// Incremental transitive closure
// ---------------------------------------------------------------------------

TEST(IncrementalTcTest, PathBuiltEdgeByEdge) {
  IncrementalTransitiveClosure tc(5);
  CostMeter m;
  EXPECT_EQ(*tc.InsertEdge(0, 1, &m), 1);  // (0,1)
  EXPECT_EQ(*tc.InsertEdge(1, 2, &m), 2);  // (1,2), (0,2)
  EXPECT_EQ(*tc.InsertEdge(2, 3, &m), 3);  // (2,3), (1,3), (0,3)
  EXPECT_TRUE(*tc.Reachable(0, 3, &m));
  EXPECT_FALSE(*tc.Reachable(3, 0, &m));
  EXPECT_EQ(tc.NumReachablePairs(), 5 + 3 + 2 + 1);  // reflexive + new
}

TEST(IncrementalTcTest, RedundantInsertIsConstantWork) {
  IncrementalTransitiveClosure tc(100);
  ASSERT_TRUE(tc.InsertEdge(0, 1, nullptr).ok());
  ASSERT_TRUE(tc.InsertEdge(1, 2, nullptr).ok());
  auto changed = tc.InsertEdge(0, 2, nullptr);  // already implied
  ASSERT_TRUE(changed.ok());
  EXPECT_EQ(*changed, 0);
  EXPECT_EQ(tc.last_insert_work(), 1)
      << "bounded incremental: no-op changes cost O(1)";
}

TEST(IncrementalTcTest, CycleMakesEverythingMutual) {
  IncrementalTransitiveClosure tc(4);
  for (graph::NodeId i = 0; i < 4; ++i) {
    ASSERT_TRUE(tc.InsertEdge(i, (i + 1) % 4, nullptr).ok());
  }
  for (graph::NodeId u = 0; u < 4; ++u) {
    for (graph::NodeId v = 0; v < 4; ++v) {
      EXPECT_TRUE(*tc.Reachable(u, v, nullptr));
    }
  }
}

TEST(IncrementalTcTest, RejectsBadIds) {
  IncrementalTransitiveClosure tc(3);
  EXPECT_FALSE(tc.InsertEdge(0, 3, nullptr).ok());
  EXPECT_FALSE(tc.Reachable(-1, 0, nullptr).ok());
}

struct TcParam {
  uint64_t seed;
  graph::NodeId n;
  int inserts;
};

class IncrementalTcPropertyTest : public ::testing::TestWithParam<TcParam> {};

TEST_P(IncrementalTcPropertyTest, AgreesWithFromScratchClosure) {
  const auto param = GetParam();
  Rng rng(param.seed);
  IncrementalTransitiveClosure tc(param.n);
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
  for (int step = 0; step < param.inserts; ++step) {
    auto u = static_cast<graph::NodeId>(
        rng.NextBelow(static_cast<uint64_t>(param.n)));
    auto v = static_cast<graph::NodeId>(
        rng.NextBelow(static_cast<uint64_t>(param.n)));
    auto before = tc.NumReachablePairs();
    auto changed = tc.InsertEdge(u, v, nullptr);
    ASSERT_TRUE(changed.ok());
    EXPECT_EQ(tc.NumReachablePairs(), before + *changed)
        << "|CHANGED| accounting must be exact";
    edges.emplace_back(u, v);
    if (step % 10 == 9) {
      // Differential check against a from-scratch closure.
      auto g = graph::Graph::FromEdges(param.n, edges, true);
      ASSERT_TRUE(g.ok());
      auto matrix = reach::ReachabilityMatrix::Build(*g);
      for (int probe = 0; probe < 50; ++probe) {
        auto a = static_cast<graph::NodeId>(
            rng.NextBelow(static_cast<uint64_t>(param.n)));
        auto b = static_cast<graph::NodeId>(
            rng.NextBelow(static_cast<uint64_t>(param.n)));
        ASSERT_EQ(*tc.Reachable(a, b, nullptr),
                  matrix.Reachable(a, b, nullptr))
            << "a=" << a << " b=" << b << " after " << step + 1 << " inserts";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Runs, IncrementalTcPropertyTest,
                         ::testing::Values(TcParam{1, 20, 60},
                                           TcParam{2, 40, 100},
                                           TcParam{3, 60, 80},
                                           TcParam{4, 30, 200}));

TEST(IncrementalTcTest, BuildFromGraphMatchesMatrix) {
  Rng rng(110);
  graph::Graph g = graph::ErdosRenyi(50, 150, true, &rng);
  auto tc = IncrementalTransitiveClosure::Build(g, nullptr);
  auto matrix = reach::ReachabilityMatrix::Build(g);
  for (graph::NodeId u = 0; u < 50; ++u) {
    for (graph::NodeId v = 0; v < 50; ++v) {
      EXPECT_EQ(*tc.Reachable(u, v, nullptr), matrix.Reachable(u, v, nullptr));
    }
  }
}

TEST(IncrementalTcTest, WorkTracksChangedPairsNotGraphSize) {
  // Insert a far-apart edge into a big, mostly-disconnected graph: the
  // affected region is two nodes, so work must stay near-constant even
  // though n is large.
  IncrementalTransitiveClosure tc(2000);
  ASSERT_TRUE(tc.InsertEdge(0, 1, nullptr).ok());
  int64_t small_work = tc.last_insert_work();
  ASSERT_TRUE(tc.InsertEdge(1500, 1501, nullptr).ok());
  EXPECT_LE(tc.last_insert_work(), 2 * small_work + 64);
}

// ---------------------------------------------------------------------------
// Delta-maintained index
// ---------------------------------------------------------------------------

TEST(DeltaIndexTest, ApplyDeltaMatchesRebuild) {
  Rng rng(120);
  std::vector<std::pair<int64_t, int64_t>> entries;
  for (int64_t i = 0; i < 500; ++i) {
    entries.emplace_back(static_cast<int64_t>(rng.NextBelow(1000)), i);
  }
  auto incremental = DeltaMaintainedIndex::Build(entries, nullptr);
  auto rebuilt = DeltaMaintainedIndex::Build(entries, nullptr);
  ASSERT_TRUE(incremental.ok() && rebuilt.ok());

  std::multiset<int64_t> reference;
  for (const auto& [k, v] : entries) {
    (void)v;
    reference.insert(k);
  }
  int64_t next_row = 500;
  for (int batch = 0; batch < 20; ++batch) {
    std::vector<Delta> deltas;
    for (int i = 0; i < 10; ++i) {
      Delta d;
      d.op = Delta::Op::kInsert;
      d.key = static_cast<int64_t>(rng.NextBelow(1000));
      d.row_id = next_row++;
      reference.insert(d.key);
      deltas.push_back(d);
    }
    CostMeter inc_m, reb_m;
    ASSERT_TRUE(incremental->ApplyDelta(deltas, &inc_m).ok());
    ASSERT_TRUE(rebuilt->RebuildWith(deltas, &reb_m).ok());
    EXPECT_LT(inc_m.work(), reb_m.work())
        << "Δ-maintenance must undercut the rebuild";
    ASSERT_TRUE(incremental->Validate().ok());
    for (int probe = 0; probe < 30; ++probe) {
      int64_t key = static_cast<int64_t>(rng.NextBelow(1000));
      CostMeter m;
      bool expect = reference.count(key) > 0;
      EXPECT_EQ(incremental->PointExists(key, &m), expect);
      EXPECT_EQ(rebuilt->PointExists(key, &m), expect);
    }
  }
}

TEST(DeltaIndexTest, DeletesMaintained) {
  std::vector<std::pair<int64_t, int64_t>> entries = {
      {1, 100}, {2, 200}, {3, 300}};
  auto index = DeltaMaintainedIndex::Build(entries, nullptr);
  ASSERT_TRUE(index.ok());
  std::vector<Delta> batch;
  Delta del;
  del.op = Delta::Op::kDelete;
  del.key = 2;
  del.row_id = 200;
  batch.push_back(del);
  ASSERT_TRUE(index->ApplyDelta(batch, nullptr).ok());
  CostMeter m;
  EXPECT_FALSE(index->PointExists(2, &m));
  EXPECT_TRUE(index->PointExists(1, &m));
  EXPECT_EQ(index->size(), 2);
  // Deleting an absent entry fails loudly.
  EXPECT_FALSE(index->ApplyDelta(batch, nullptr).ok());
}

TEST(DeltaIndexTest, DeltaCostIsIndependentOfDataSize) {
  std::vector<std::pair<int64_t, int64_t>> small_entries, large_entries;
  for (int64_t i = 0; i < 1 << 8; ++i) small_entries.emplace_back(i, i);
  for (int64_t i = 0; i < 1 << 16; ++i) large_entries.emplace_back(i, i);
  auto small = DeltaMaintainedIndex::Build(small_entries, nullptr);
  auto large = DeltaMaintainedIndex::Build(large_entries, nullptr);
  ASSERT_TRUE(small.ok() && large.ok());
  std::vector<Delta> batch;
  for (int i = 0; i < 16; ++i) {
    Delta d;
    d.op = Delta::Op::kInsert;
    d.key = -i;
    d.row_id = i;
    batch.push_back(d);
  }
  CostMeter small_m, large_m;
  ASSERT_TRUE(small->ApplyDelta(batch, &small_m).ok());
  ASSERT_TRUE(large->ApplyDelta(batch, &large_m).ok());
  // 256x more data, cost may only grow by the log factor (~2x).
  EXPECT_LT(large_m.work(), 3 * small_m.work());
}

}  // namespace
}  // namespace incremental
}  // namespace pitract
