#include <gtest/gtest.h>

#include "common/codec.h"
#include "common/rng.h"
#include "core/factorization.h"
#include "core/language.h"
#include "core/problems.h"
#include "graph/generators.h"

namespace pitract {
namespace core {
namespace {

TEST(FactorizationTest, TrivialLaw) {
  Factorization f = TrivialFactorization();
  EXPECT_TRUE(VerifyFactorization(f, "any#instance@string").ok());
  EXPECT_EQ(*f.pi1("x"), "x");
  EXPECT_EQ(*f.pi2("x"), "x");
  EXPECT_FALSE(f.rho("a", "b").ok()) << "halves must agree";
}

TEST(FactorizationTest, EmptyDataLaw) {
  Factorization f = EmptyDataFactorization();
  EXPECT_TRUE(VerifyFactorization(f, "whole-instance").ok());
  EXPECT_EQ(*f.pi1("whole-instance"), "");
  EXPECT_EQ(*f.pi2("whole-instance"), "whole-instance");
  EXPECT_FALSE(f.rho("not-empty", "q").ok());
}

TEST(FactorizationTest, EmptyQueryLaw) {
  Factorization f = EmptyQueryFactorization();
  EXPECT_TRUE(VerifyFactorization(f, "whole-instance").ok());
  EXPECT_EQ(*f.pi2("whole-instance"), "");
}

TEST(FactorizationTest, FieldSplit) {
  Factorization f = FieldSplitFactorization("Y_test", 2);
  const std::string x = codec::EncodeFields({"data1", "data2", "q1", "q2"});
  EXPECT_TRUE(VerifyFactorization(f, x).ok());
  EXPECT_EQ(*f.pi1(x), codec::EncodeFields({"data1", "data2"}));
  EXPECT_EQ(*f.pi2(x), codec::EncodeFields({"q1", "q2"}));
}

TEST(FactorizationTest, FieldSplitWithEscapedDelimiters) {
  Factorization f = FieldSplitFactorization("Y_test", 1);
  const std::string x = codec::EncodeFields({"da#ta", "que@ry"});
  ASSERT_TRUE(VerifyFactorization(f, x).ok());
  auto q = f.pi2(x);
  ASSERT_TRUE(q.ok());
  auto decoded = codec::DecodeFields(*q);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ((*decoded)[0], "que@ry");
}

TEST(FactorizationTest, FieldSplitTooFewFields) {
  Factorization f = FieldSplitFactorization("Y_test", 5);
  EXPECT_FALSE(f.pi1(codec::EncodeFields({"only", "two"})).ok());
  // The escape-free fast path must enforce the same arity check.
  EXPECT_FALSE(f.pi1("only#two").ok());
  EXPECT_FALSE(f.pi2("only#two").ok());
}

TEST(FactorizationTest, FieldSplitFastPathMatchesCopyingPath) {
  // The zero-copy split (escape-free input) and the decode/re-encode path
  // (escaped input) must agree wherever both are defined; sweep arities and
  // degenerate splits.
  for (int query_fields = 0; query_fields <= 3; ++query_fields) {
    Factorization f = FieldSplitFactorization("Y_test", query_fields);
    const std::string plain = codec::EncodeFields({"d1", "d2", "q1"});
    ASSERT_TRUE(VerifyFactorization(f, plain).ok()) << query_fields;
    // Reference: decode + re-encode by hand.
    auto fields = codec::DecodeFields(plain);
    ASSERT_TRUE(fields.ok());
    std::vector<std::string> head(fields->begin(),
                                  fields->end() - query_fields);
    std::vector<std::string> tail(fields->end() - query_fields,
                                  fields->end());
    EXPECT_EQ(*f.pi1(plain), codec::EncodeFields(head)) << query_fields;
    EXPECT_EQ(*f.pi2(plain), codec::EncodeFields(tail)) << query_fields;
  }
  // An unescaped '@' (only possible in hand-made input) takes the copying
  // path, which re-escapes it — same bytes as before the fast path existed.
  Factorization f = FieldSplitFactorization("Y_test", 1);
  EXPECT_EQ(*f.pi1("a@b#q"), "a\\@b");
  EXPECT_EQ(*f.pi2("a@b#q"), "q");
}

TEST(FactorizationTest, CanonicalProblemFactorizationsSatisfyLaw) {
  Rng rng(140);
  graph::Graph g = graph::ErdosRenyi(20, 40, false, &rng);
  EXPECT_TRUE(
      VerifyFactorization(ConnFactorization(), MakeConnInstance(g, 1, 2)).ok());
  EXPECT_TRUE(
      VerifyFactorization(BdsFactorization(), MakeBdsInstance(g, 3, 4)).ok());
  EXPECT_TRUE(VerifyFactorization(MemberFactorization(),
                                  MakeMemberInstance(10, {1, 2, 3}, 2))
                  .ok());
}

// ---------------------------------------------------------------------------
// Languages of pairs / Proposition 1
// ---------------------------------------------------------------------------

TEST(LanguageOfPairsTest, MembershipViaRestore) {
  LanguageOfPairs s(ListMembershipProblem(), MemberFactorization());
  const std::string yes = MakeMemberInstance(10, {1, 5, 7}, 5);
  const std::string no = MakeMemberInstance(10, {1, 5, 7}, 6);
  auto data_yes = s.factorization().pi1(yes);
  auto query_yes = s.factorization().pi2(yes);
  ASSERT_TRUE(data_yes.ok() && query_yes.ok());
  EXPECT_TRUE(*s.Contains(*data_yes, *query_yes));
  auto data_no = s.factorization().pi1(no);
  auto query_no = s.factorization().pi2(no);
  EXPECT_FALSE(*s.Contains(*data_no, *query_no));
}

TEST(LanguageOfPairsTest, Proposition1RestoresUniqueInstance) {
  // ρ(π₁(x), π₂(x)) must reproduce x exactly, so pair membership is
  // instance membership (Proposition 1).
  Rng rng(141);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int64_t> list;
    for (uint64_t i = rng.NextBelow(8); i > 0; --i) {
      list.push_back(static_cast<int64_t>(rng.NextBelow(20)));
    }
    std::string x = MakeMemberInstance(20, list, static_cast<int64_t>(rng.NextBelow(20)));
    Factorization f = MemberFactorization();
    auto restored = f.rho(*f.pi1(x), *f.pi2(x));
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(*restored, x);
  }
}

// ---------------------------------------------------------------------------
// Reference problem semantics
// ---------------------------------------------------------------------------

TEST(ProblemsTest, MemberSemantics) {
  auto p = ListMembershipProblem();
  EXPECT_TRUE(*p.contains(MakeMemberInstance(10, {3, 1, 4}, 4)));
  EXPECT_FALSE(*p.contains(MakeMemberInstance(10, {3, 1, 4}, 5)));
  EXPECT_FALSE(*p.contains(MakeMemberInstance(10, {}, 0)));
  EXPECT_FALSE(p.contains("garbage").ok());
}

TEST(ProblemsTest, ConnSemantics) {
  auto g = graph::Graph::FromEdges(4, {{0, 1}, {2, 3}}, false);
  ASSERT_TRUE(g.ok());
  auto p = ConnectivityProblem();
  EXPECT_TRUE(*p.contains(MakeConnInstance(*g, 0, 1)));
  EXPECT_FALSE(*p.contains(MakeConnInstance(*g, 0, 2)));
  EXPECT_TRUE(*p.contains(MakeConnInstance(*g, 3, 3)));
  EXPECT_FALSE(p.contains(MakeConnInstance(*g, 0, 9)).ok());
}

TEST(ProblemsTest, BdsSemantics) {
  auto g = graph::Graph::FromEdges(6, {{0, 4}, {0, 5}, {4, 1}, {5, 2}}, false);
  ASSERT_TRUE(g.ok());
  auto p = BdsProblem();
  // Visit order is 0, 4, 5, 1, 2, 3 (see bds_test).
  EXPECT_TRUE(*p.contains(MakeBdsInstance(*g, 4, 5)));
  EXPECT_TRUE(*p.contains(MakeBdsInstance(*g, 2, 3)));
  EXPECT_FALSE(*p.contains(MakeBdsInstance(*g, 1, 5)));
  EXPECT_FALSE(*p.contains(MakeBdsInstance(*g, 3, 3)));
}

TEST(ProblemsTest, CvpAndGvpSemantics) {
  circuit::Circuit c;
  auto x0 = c.AddInput();
  auto x1 = c.AddInput();
  auto a = c.AddAnd(x0, x1);
  c.set_output(a);
  circuit::CvpInstance instance;
  instance.circuit = c;
  instance.assignment = {1, 1};
  EXPECT_TRUE(*CvpProblem().contains(MakeCvpInstanceString(instance)));
  instance.assignment = {1, 0};
  EXPECT_FALSE(*CvpProblem().contains(MakeCvpInstanceString(instance)));
  // GVP can probe inner gates.
  EXPECT_TRUE(*GateValueProblem().contains(MakeGvpInstance(instance, x0)));
  EXPECT_FALSE(*GateValueProblem().contains(MakeGvpInstance(instance, a)));
  EXPECT_FALSE(GateValueProblem().contains(MakeGvpInstance(instance, 99)).ok());
}

}  // namespace
}  // namespace core
}  // namespace pitract
