#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "bds/bds.h"
#include "common/rng.h"
#include "graph/algos.h"
#include "graph/generators.h"

namespace pitract {
namespace bds {
namespace {

graph::Graph U(graph::NodeId n,
               const std::vector<std::pair<graph::NodeId, graph::NodeId>>& e) {
  auto g = graph::Graph::FromEdges(n, e, /*directed=*/false);
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(BdsOrderTest, StarVisitsChildrenInNumberOrder) {
  graph::Graph g = U(4, {{0, 1}, {0, 2}, {0, 3}});
  auto order = BdsVisitOrder(g, nullptr);
  EXPECT_EQ(order, (std::vector<graph::NodeId>{0, 1, 2, 3}));
}

TEST(BdsOrderTest, HandComputedStackDiscipline) {
  // Visit 0, mark {4, 5}; stack top is the smaller-numbered 4. Pop 4, mark
  // 1. Pop 1 (nothing), pop 5, mark 2. Restart at isolated 3.
  graph::Graph g = U(6, {{0, 4}, {0, 5}, {4, 1}, {5, 2}});
  auto order = BdsVisitOrder(g, nullptr);
  EXPECT_EQ(order, (std::vector<graph::NodeId>{0, 4, 5, 1, 2, 3}));
}

TEST(BdsOrderTest, DiffersFromBfsAndDfs) {
  // BDS: 0,1,2,3,4,5 — BFS gives 0,1,2,3,5,4 and DFS gives 0,1,3,4,2,5.
  graph::Graph g = U(6, {{0, 1}, {0, 2}, {1, 3}, {3, 4}, {2, 5}});
  auto order = BdsVisitOrder(g, nullptr);
  EXPECT_EQ(order, (std::vector<graph::NodeId>{0, 1, 2, 3, 4, 5}));
  EXPECT_NE(order, graph::DfsPreorder(g));
}

TEST(BdsOrderTest, OrderIsAPermutation) {
  Rng rng(80);
  graph::Graph g = graph::ErdosRenyi(200, 500, false, &rng);
  auto order = BdsVisitOrder(g, nullptr);
  std::set<graph::NodeId> seen(order.begin(), order.end());
  EXPECT_EQ(seen.size(), 200u);
}

TEST(BdsOrderTest, ComponentsAreContiguousBlocks) {
  Rng rng(81);
  graph::Graph g = graph::ErdosRenyi(150, 120, false, &rng);  // sparse
  auto comp = graph::ConnectedComponents(g);
  auto order = BdsVisitOrder(g, nullptr);
  // Once a component is left it is never re-entered.
  std::set<graph::NodeId> closed;
  graph::NodeId current = comp.component[static_cast<size_t>(order[0])];
  for (graph::NodeId v : order) {
    graph::NodeId c = comp.component[static_cast<size_t>(v)];
    if (c != current) {
      EXPECT_EQ(closed.count(c), 0u) << "component re-entered";
      closed.insert(current);
      current = c;
    }
  }
}

TEST(BdsOrderTest, ExplicitNumberingChangesTheSearch) {
  graph::Graph g = U(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  auto identity_order = BdsVisitOrder(g, nullptr);
  // Reverse numbering: node 3 gets number 0, so the search starts there.
  std::vector<graph::NodeId> numbering = {3, 2, 1, 0};
  auto reversed_order = BdsVisitOrder(g, numbering, nullptr);
  EXPECT_EQ(identity_order.front(), 0);
  EXPECT_EQ(reversed_order.front(), 3);
  EXPECT_NE(identity_order, reversed_order);
}

TEST(BdsOrderTest, NumberingPermutationStillVisitsAll) {
  Rng rng(82);
  graph::Graph g = graph::ErdosRenyi(64, 128, false, &rng);
  auto perm64 = rng.Permutation(64);
  std::vector<graph::NodeId> numbering(perm64.begin(), perm64.end());
  auto order = BdsVisitOrder(g, numbering, nullptr);
  std::set<graph::NodeId> seen(order.begin(), order.end());
  EXPECT_EQ(seen.size(), 64u);
}

TEST(BdsOnlineTest, MatchesFullOrder) {
  Rng rng(83);
  graph::Graph g = graph::ErdosRenyi(80, 200, false, &rng);
  auto order = BdsVisitOrder(g, nullptr);
  std::vector<int64_t> rank(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    rank[static_cast<size_t>(order[i])] = static_cast<int64_t>(i);
  }
  for (int trial = 0; trial < 200; ++trial) {
    auto u = static_cast<graph::NodeId>(rng.NextBelow(80));
    auto v = static_cast<graph::NodeId>(rng.NextBelow(80));
    CostMeter m;
    auto online = BdsVisitedBeforeOnline(g, u, v, &m);
    ASSERT_TRUE(online.ok());
    EXPECT_EQ(*online, rank[static_cast<size_t>(u)] <
                           rank[static_cast<size_t>(v)]);
  }
}

TEST(BdsOnlineTest, SelfQueryIsFalse) {
  graph::Graph g = U(3, {{0, 1}, {1, 2}});
  auto r = BdsVisitedBeforeOnline(g, 1, 1, nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r) << "strictly-before is irreflexive";
}

TEST(BdsOnlineTest, RejectsBadIds) {
  graph::Graph g = U(3, {{0, 1}});
  EXPECT_FALSE(BdsVisitedBeforeOnline(g, 0, 5, nullptr).ok());
  EXPECT_FALSE(BdsVisitedBeforeOnline(g, -1, 0, nullptr).ok());
}

TEST(BdsOracleTest, MatchesOnline) {
  Rng rng(84);
  graph::Graph g = graph::ErdosRenyi(100, 250, false, &rng);
  CostMeter pre;
  BdsOracle oracle = BdsOracle::Build(g, &pre);
  EXPECT_GT(pre.work(), 0);
  for (int trial = 0; trial < 300; ++trial) {
    auto u = static_cast<graph::NodeId>(rng.NextBelow(100));
    auto v = static_cast<graph::NodeId>(rng.NextBelow(100));
    CostMeter m;
    auto fast = oracle.VisitedBefore(u, v, &m);
    auto slow = BdsVisitedBeforeOnline(g, u, v, nullptr);
    ASSERT_TRUE(fast.ok() && slow.ok());
    EXPECT_EQ(*fast, *slow) << "u=" << u << " v=" << v;
  }
}

TEST(BdsOracleTest, QueryCostModes) {
  Rng rng(85);
  graph::Graph g = graph::ErdosRenyi(1 << 12, 1 << 13, false, &rng);
  BdsOracle oracle = BdsOracle::Build(g, nullptr);
  CostMeter constant_mode;
  ASSERT_TRUE(oracle.VisitedBefore(1, 2, &constant_mode).ok());
  EXPECT_EQ(constant_mode.depth(), 2) << "rank-array probes";
  oracle.set_charge_binary_search(true);
  CostMeter log_mode;
  ASSERT_TRUE(oracle.VisitedBefore(1, 2, &log_mode).ok());
  EXPECT_EQ(log_mode.depth(), 2 * (12 + 1)) << "the paper's O(log|M|) bound";
}

TEST(BdsOracleTest, PreprocessingBeatsPerQuerySearch) {
  Rng rng(86);
  graph::Graph g = graph::ErdosRenyi(1 << 12, 3 << 12, false, &rng);
  BdsOracle oracle = BdsOracle::Build(g, nullptr);
  CostMeter fast, slow;
  ASSERT_TRUE(oracle.VisitedBefore(7, 9, &fast).ok());
  ASSERT_TRUE(BdsVisitedBeforeOnline(g, 7, 9, &slow).ok());
  EXPECT_GT(slow.depth(), 100 * fast.depth())
      << "Example 5's whole point: the search runs once, not per query";
}

}  // namespace
}  // namespace bds
}  // namespace pitract
