#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/generator.h"
#include "views/views.h"

namespace pitract {
namespace views {
namespace {

storage::Relation MakeLog(int64_t rows, uint64_t seed) {
  Rng rng(seed);
  return storage::GenerateLogRelation(rows, /*num_levels=*/4,
                                      /*num_codes=*/32, &rng);
}

TEST(CountViewTest, CountsMatchScan) {
  storage::Relation base = MakeLog(2000, 1);
  CostMeter pre;
  auto view = CountView::Materialize(base, "level", &pre);
  ASSERT_TRUE(view.ok());
  EXPECT_GT(pre.work(), 0);
  for (int64_t level = 0; level < 5; ++level) {
    ViewQuery q;
    q.kind = ViewQuery::Kind::kCountByKey;
    q.key_column = "level";
    q.key = level;
    CostMeter m;
    auto scanned = ViewCatalog::AnswerByScan(base, q, &m);
    ASSERT_TRUE(scanned.ok());
    CostMeter vm;
    EXPECT_EQ(view->Count(level, &vm), *scanned);
    EXPECT_LT(vm.depth(), m.depth()) << "view probe beats the scan";
  }
}

TEST(CountViewTest, MissingColumnRejected) {
  storage::Relation base = MakeLog(10, 2);
  EXPECT_FALSE(CountView::Materialize(base, "nope", nullptr).ok());
}

TEST(PartitionedRangeViewTest, MatchesScan) {
  storage::Relation base = MakeLog(3000, 3);
  auto view = PartitionedRangeView::Materialize(base, "level", "ts", nullptr);
  ASSERT_TRUE(view.ok());
  Rng rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    ViewQuery q;
    q.kind = ViewQuery::Kind::kExistsInRange;
    q.key_column = "level";
    q.range_column = "ts";
    q.key = static_cast<int64_t>(rng.NextBelow(5));
    q.lo = static_cast<int64_t>(rng.NextBelow(9000));
    q.hi = q.lo + static_cast<int64_t>(rng.NextBelow(500));
    CostMeter m;
    auto scanned = ViewCatalog::AnswerByScan(base, q, &m);
    ASSERT_TRUE(scanned.ok());
    CostMeter vm;
    EXPECT_EQ(view->ExistsInRange(q.key, q.lo, q.hi, &vm) ? 1 : 0, *scanned);
  }
}

TEST(ViewCatalogTest, RewritesToTheRightView) {
  storage::Relation base = MakeLog(1000, 5);
  ViewCatalog catalog;
  ASSERT_TRUE(catalog.AddCountView(base, "code", nullptr).ok());
  ASSERT_TRUE(catalog.AddCountView(base, "level", nullptr).ok());
  ASSERT_TRUE(catalog.AddRangeView(base, "level", "ts", nullptr).ok());

  ViewQuery count_q;
  count_q.kind = ViewQuery::Kind::kCountByKey;
  count_q.key_column = "code";
  count_q.key = 7;
  CostMeter m;
  auto via_views = catalog.Answer(count_q, &m);
  auto via_scan = ViewCatalog::AnswerByScan(base, count_q, &m);
  ASSERT_TRUE(via_views.ok() && via_scan.ok());
  EXPECT_EQ(*via_views, *via_scan);

  ViewQuery range_q;
  range_q.kind = ViewQuery::Kind::kExistsInRange;
  range_q.key_column = "level";
  range_q.range_column = "ts";
  range_q.key = 0;
  range_q.lo = 0;
  range_q.hi = 1'000'000;
  auto range_ans = catalog.Answer(range_q, &m);
  ASSERT_TRUE(range_ans.ok());
  EXPECT_EQ(*range_ans, 1);
}

TEST(ViewCatalogTest, UncoveredQueryFailsPrecondition) {
  storage::Relation base = MakeLog(100, 6);
  ViewCatalog catalog;
  ASSERT_TRUE(catalog.AddCountView(base, "level", nullptr).ok());
  ViewQuery q;
  q.kind = ViewQuery::Kind::kCountByKey;
  q.key_column = "code";  // no view over code
  auto answer = catalog.Answer(q, nullptr);
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kFailedPrecondition);

  ViewQuery rq;
  rq.kind = ViewQuery::Kind::kExistsInRange;
  rq.key_column = "level";
  rq.range_column = "code";  // range view is over ts, not code
  EXPECT_EQ(catalog.Answer(rq, nullptr).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ViewCatalogTest, ViewsAreSmallerThanBaseForAggregates) {
  storage::Relation base = MakeLog(50000, 7);
  ViewCatalog catalog;
  ASSERT_TRUE(catalog.AddCountView(base, "level", nullptr).ok());
  // 4 levels of counts vs 50k rows: V(D) << D.
  EXPECT_LT(catalog.EstimateBytes() * 100, base.EstimateBytes());
}

class ViewsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ViewsPropertyTest, CatalogAgreesWithScansEverywhere) {
  storage::Relation base = MakeLog(1500, GetParam());
  ViewCatalog catalog;
  ASSERT_TRUE(catalog.AddCountView(base, "code", nullptr).ok());
  ASSERT_TRUE(catalog.AddRangeView(base, "code", "ts", nullptr).ok());
  Rng rng(GetParam() * 31);
  for (int trial = 0; trial < 150; ++trial) {
    ViewQuery q;
    if (rng.NextBool()) {
      q.kind = ViewQuery::Kind::kCountByKey;
      q.key_column = "code";
      q.key = static_cast<int64_t>(rng.NextBelow(40));
    } else {
      q.kind = ViewQuery::Kind::kExistsInRange;
      q.key_column = "code";
      q.range_column = "ts";
      q.key = static_cast<int64_t>(rng.NextBelow(40));
      q.lo = rng.NextInRange(-100, 5000);
      q.hi = q.lo + rng.NextInRange(0, 800);
    }
    CostMeter m;
    auto fast = catalog.Answer(q, &m);
    auto slow = ViewCatalog::AnswerByScan(base, q, &m);
    ASSERT_TRUE(fast.ok() && slow.ok());
    EXPECT_EQ(*fast, *slow);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ViewsPropertyTest,
                         ::testing::Values(11, 12, 13, 14));

}  // namespace
}  // namespace views
}  // namespace pitract
