#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include <algorithm>

#include "circuit/generators.h"
#include "common/codec.h"
#include "common/rng.h"
#include "core/problems.h"
#include "engine/builtins.h"
#include "engine/crosscheck.h"
#include "engine/engine.h"
#include "engine/prepared_store.h"
#include "engine/serve.h"
#include "graph/generators.h"

namespace pitract {
namespace engine {
namespace {

// QueryEngine owns a mutex-guarded store, so it is neither movable nor
// copyable; tests hold it behind a unique_ptr.
std::unique_ptr<QueryEngine> MakeEngine() {
  auto engine = std::make_unique<QueryEngine>();
  auto status = RegisterBuiltins(engine.get());
  EXPECT_TRUE(status.ok()) << status.ToString();
  return engine;
}

std::vector<int64_t> RandomList(Rng* rng, int64_t universe, int count) {
  std::vector<int64_t> list;
  for (int i = 0; i < count; ++i) {
    list.push_back(
        static_cast<int64_t>(rng->NextBelow(static_cast<uint64_t>(universe))));
  }
  return list;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(EngineRegistryTest, BuiltinsAreRegisteredUnderOneNameEach) {
  auto engine = MakeEngine();
  // Every typed Figure 2 row plus the Σ*-only and reduced entries.
  for (const char* name :
       {"point-selection", "range-selection", "list-membership",
        "graph-reachability", "range-minimum", "tree-lca",
        "breadth-depth-search", "cvp-refactorized", "compressed-reachability",
        "vertex-cover-k", "connectivity", "cvp-empty-data",
        "predicate-selection", "cvp-nand-eval", "member-via-conn",
        "connectivity-via-bds", "member-via-bds", "cvp-via-nand"}) {
    auto entry = engine->Find(name);
    ASSERT_TRUE(entry.ok()) << name;
    EXPECT_EQ((*entry)->name, name);
  }
  EXPECT_EQ(engine->Names().size(), 18u);
}

TEST(EngineRegistryTest, EntriesCarryTheExpectedPaths) {
  auto engine = MakeEngine();
  // Both paths: the three typed cases with Σ*-level twins.
  for (const char* name :
       {"list-membership", "breadth-depth-search", "cvp-refactorized"}) {
    auto entry = engine->Find(name);
    ASSERT_TRUE(entry.ok());
    EXPECT_TRUE((*entry)->has_language) << name;
    EXPECT_TRUE(static_cast<bool>((*entry)->make_case)) << name;
  }
  // Typed-only: no Σ* witness → string path refuses.
  auto typed_only = engine->Find("range-minimum");
  ASSERT_TRUE(typed_only.ok());
  EXPECT_FALSE((*typed_only)->has_language);
  auto refused = engine->AnswerBatch("range-minimum", "", {});
  EXPECT_FALSE(refused.ok());
  // Σ*-only: no typed case → typed path refuses.
  auto refused_typed = engine->AnswerTypedBatch("member-via-bds", 64, 1);
  EXPECT_FALSE(refused_typed.ok());
}

TEST(EngineRegistryTest, UnknownAndDuplicateNamesAreRejected) {
  auto engine = MakeEngine();
  EXPECT_FALSE(engine->Find("no-such-problem").ok());
  ProblemEntry duplicate;
  duplicate.name = "connectivity";
  duplicate.has_language = true;
  duplicate.problem = core::ConnectivityProblem();
  duplicate.factorization = core::ConnFactorization();
  duplicate.witness = core::ConnWitness();
  EXPECT_EQ(engine->Register(std::move(duplicate)).code(),
            StatusCode::kAlreadyExists);
}

TEST(EngineRegistryTest, ReductionRegistrationChecksTargetFactorization) {
  auto engine = MakeEngine();
  // member<=conn targets Y_conn; pointing it at a Y_BDS entry must fail.
  auto status = engine->RegisterViaReduction(
      "member-via-wrong-target", "test", core::ListMembershipProblem(),
      core::MemberToConnReduction(), "breadth-depth-search");
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  // Unknown target.
  EXPECT_EQ(engine
                ->RegisterViaReduction("member-via-nothing", "test",
                                       core::ListMembershipProblem(),
                                       core::MemberToConnReduction(), "nope")
                .code(),
            StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// PreparedStore: Π runs exactly once per distinct data part.
// ---------------------------------------------------------------------------

TEST(PreparedStoreTest, PiRunsOncePerDataPartAcrossLargeBatch) {
  auto engine = MakeEngine();
  Rng rng(901);
  const int64_t universe = 512;
  std::string data = core::MemberFactorization()
                         .pi1(core::MakeMemberInstance(
                             universe, RandomList(&rng, universe, 200), 0))
                         .value();
  // N >= 100 queries against the same data part.
  std::vector<std::string> queries;
  for (int i = 0; i < 128; ++i) {
    queries.push_back(std::to_string(rng.NextBelow(universe)));
  }

  auto batch = engine->AnswerBatch("list-membership", data, queries);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch->answers.size(), 128u);
  EXPECT_EQ(batch->prepare_runs, 1);
  EXPECT_FALSE(batch->cache_hit);
  // CostMeter-verified: the batch charged Π's full PTIME work exactly once.
  CostMeter reference;
  ASSERT_TRUE(core::MemberWitness().preprocess(data, &reference).ok());
  EXPECT_GT(reference.work(), 0);
  EXPECT_EQ(batch->prepare_cost.work, reference.work());

  // Second batch over the same data: served from the store, Π never re-runs.
  auto again = engine->AnswerBatch("list-membership", data, queries);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->prepare_runs, 0);
  EXPECT_TRUE(again->cache_hit);
  EXPECT_LT(again->prepare_cost.work, reference.work());
  EXPECT_EQ(again->answers, batch->answers);

  auto stats = engine->store().stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 1);
}

TEST(PreparedStoreTest, DistinctDataPartsPreprocessSeparately) {
  auto engine = MakeEngine();
  Rng rng(902);
  std::vector<std::string> queries = {"1", "2", "3"};
  for (int variant = 0; variant < 3; ++variant) {
    std::string data =
        core::MemberFactorization()
            .pi1(core::MakeMemberInstance(64, RandomList(&rng, 64, 20), 0))
            .value();
    auto batch = engine->AnswerBatch("list-membership", data, queries);
    ASSERT_TRUE(batch.ok());
    EXPECT_EQ(batch->prepare_runs, 1);
  }
  EXPECT_EQ(engine->store().stats().misses, 3);
  EXPECT_EQ(engine->store().size(), 3u);
}

TEST(PreparedStoreTest, LruEvictionPastCapacity) {
  PreparedStore store(/*max_entries=*/2);
  auto compute = [](CostMeter* meter) -> Result<std::string> {
    if (meter != nullptr) meter->AddSerial(10);
    return std::string("prepared");
  };
  for (const char* data : {"a", "b", "c"}) {
    ASSERT_TRUE(store.GetOrCompute("p", "w", data, compute).ok());
  }
  EXPECT_EQ(store.size(), 2u);
  auto stats = store.stats();
  EXPECT_EQ(stats.misses, 3);
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_FALSE(store.Contains("p", "w", "a"));  // the least recently used
  EXPECT_TRUE(store.Contains("p", "w", "c"));
  // Re-requesting the evicted entry recomputes.
  bool hit = true;
  ASSERT_TRUE(store.GetOrCompute("p", "w", "a", compute, nullptr, &hit).ok());
  EXPECT_FALSE(hit);
}

TEST(PreparedStoreTest, KeysSeparateProblemWitnessAndData) {
  PreparedStore store;
  int computes = 0;
  auto compute = [&computes](CostMeter*) -> Result<std::string> {
    ++computes;
    return std::string("x");
  };
  ASSERT_TRUE(store.GetOrCompute("p1", "w", "d", compute).ok());
  ASSERT_TRUE(store.GetOrCompute("p2", "w", "d", compute).ok());
  ASSERT_TRUE(store.GetOrCompute("p1", "w2", "d", compute).ok());
  ASSERT_TRUE(store.GetOrCompute("p1", "w", "d", compute).ok());  // hit
  EXPECT_EQ(computes, 3);
  EXPECT_EQ(store.stats().hits, 1);
}

// ---------------------------------------------------------------------------
// Batch answering parity with per-query answering and reference semantics.
// ---------------------------------------------------------------------------

TEST(EngineBatchTest, BatchMatchesPerQueryAndReferenceSemantics) {
  auto engine = MakeEngine();
  Rng rng(903);
  const int64_t universe = 128;
  auto list = RandomList(&rng, universe, 40);
  std::string data =
      core::MemberFactorization()
          .pi1(core::MakeMemberInstance(universe, list, 0))
          .value();
  std::vector<std::string> queries;
  for (int i = 0; i < 64; ++i) {
    queries.push_back(std::to_string(rng.NextBelow(universe)));
  }
  auto batch = engine->AnswerBatch("list-membership", data, queries);
  ASSERT_TRUE(batch.ok());
  auto member = core::ListMembershipProblem();
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    auto single = engine->Answer("list-membership", data, queries[qi]);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(*single, batch->answers[qi]) << queries[qi];
    auto e = std::stoll(queries[qi]);
    auto reference =
        member.contains(core::MakeMemberInstance(universe, list, e));
    ASSERT_TRUE(reference.ok());
    EXPECT_EQ(*reference, batch->answers[qi]) << queries[qi];
  }
}

TEST(EngineBatchTest, AnswerInstanceRoundTripsDefinitionOne) {
  auto engine = MakeEngine();
  Rng rng(904);
  auto member = core::ListMembershipProblem();
  for (int trial = 0; trial < 25; ++trial) {
    auto list = RandomList(&rng, 32, 10);
    std::string x = core::MakeMemberInstance(
        32, list, static_cast<int64_t>(rng.NextBelow(32)));
    auto via_engine = engine->AnswerInstance("list-membership", x);
    auto reference = member.contains(x);
    ASSERT_TRUE(via_engine.ok() && reference.ok());
    EXPECT_EQ(*via_engine, *reference) << x;
  }
}

TEST(EngineBatchTest, LambdaRewritingEntryAnswersPredicates) {
  auto engine = MakeEngine();
  std::vector<int64_t> list = {4, 9, 17, 40};
  std::string data = core::SelectionFactorization()
                         .pi1(core::MakeSelectionInstance(64, list, {0, 0}))
                         .value();
  // Predicates: =9, <=3, >=40, between 10 20, between 18 30.
  std::vector<std::string> queries = {"0,9", "1,3", "2,40", "3,10,20",
                                      "3,18,30"};
  auto batch = engine->AnswerBatch("predicate-selection", data, queries);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch->answers,
            (std::vector<bool>{true, false, true, true, false}));
}

// ---------------------------------------------------------------------------
// The reduction chain through the registry.
// ---------------------------------------------------------------------------

TEST(EngineReductionTest, TransportedEntriesAnswerTheSourceProblem) {
  auto engine = MakeEngine();
  Rng rng(905);
  auto member = core::ListMembershipProblem();
  for (const char* name : {"member-via-conn", "member-via-bds"}) {
    for (int trial = 0; trial < 10; ++trial) {
      auto list = RandomList(&rng, 24, 8);
      std::string x = core::MakeMemberInstance(
          24, list, static_cast<int64_t>(rng.NextBelow(24)));
      auto via_engine = engine->AnswerInstance(name, x);
      auto reference = member.contains(x);
      ASSERT_TRUE(via_engine.ok()) << name << ": "
                                   << via_engine.status().ToString();
      ASSERT_TRUE(reference.ok());
      EXPECT_EQ(*via_engine, *reference) << name << " on " << x;
    }
  }
}

TEST(EngineReductionTest, MemberToConnChainCachesPerDataPart) {
  auto engine = MakeEngine();
  Rng rng(906);
  auto list = RandomList(&rng, 48, 16);
  std::string data = core::MemberFactorization()
                         .pi1(core::MakeMemberInstance(48, list, 0))
                         .value();
  std::vector<std::string> queries;
  for (int i = 0; i < 100; ++i) {
    queries.push_back(std::to_string(rng.NextBelow(48)));
  }
  // The transported witness runs Π = (conn preprocessing) ∘ α once...
  auto first = engine->AnswerBatch("member-via-conn", data, queries);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->prepare_runs, 1);
  // ...and every later batch against the same data part reuses it.
  auto second = engine->AnswerBatch("member-via-conn", data, queries);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->prepare_runs, 0);
  EXPECT_TRUE(second->cache_hit);
  EXPECT_EQ(second->answers, first->answers);
  // The source entry and the reduced entry cache under distinct keys.
  auto direct = engine->AnswerBatch("list-membership", data, queries);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct->prepare_runs, 1);
  EXPECT_EQ(direct->answers, first->answers);
  EXPECT_EQ(engine->store().stats().misses, 2);
  EXPECT_EQ(engine->store().stats().hits, 1);
}

// ---------------------------------------------------------------------------
// Typed path through the same interface.
// ---------------------------------------------------------------------------

TEST(EngineTypedTest, TypedBatchPreparesOncePerGeneratedData) {
  auto engine = MakeEngine();
  auto first = engine->AnswerTypedBatch("list-membership", 256, 7);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->prepare_runs, 1);
  EXPECT_FALSE(first->cache_hit);
  EXPECT_GT(first->prepare_cost.work, 0);
  EXPECT_GT(first->answers.size(), 0u);

  auto second = engine->AnswerTypedBatch("list-membership", 256, 7);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->prepare_runs, 0);
  EXPECT_TRUE(second->cache_hit);
  EXPECT_EQ(second->answers, first->answers);

  // A different size is different data: Π runs again.
  auto other = engine->AnswerTypedBatch("list-membership", 512, 7);
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(other->prepare_runs, 1);
}

// ---------------------------------------------------------------------------
// Typed-path vs Σ*-witness parity (engine::CrossCheck).
// ---------------------------------------------------------------------------

TEST(EngineCrossCheckTest, EveryDualPathBuiltinAgreesAcrossPaths) {
  auto engine = MakeEngine();
  // The three Figure 2 rows registered with both a typed case and a Σ*
  // witness must all be discoverable as cross-checkable...
  auto names = CrossCheckableNames(*engine);
  for (const char* expected :
       {"list-membership", "breadth-depth-search", "cvp-refactorized"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  // ...and answer identically, query for query, on several workloads.
  for (const std::string& name : names) {
    for (int64_t n : {64, 256}) {
      for (uint64_t seed : {1u, 9u}) {
        auto report = CrossCheck(engine.get(), name, n, seed);
        ASSERT_TRUE(report.ok()) << name << ": "
                                 << report.status().ToString();
        EXPECT_GT(report->queries, 0) << name;
        EXPECT_EQ(report->mismatches, 0)
            << name << " diverged at n=" << n << " seed=" << seed;
      }
    }
  }
}

TEST(EngineCrossCheckTest, SinglePathEntriesAreRejected) {
  auto engine = MakeEngine();
  // Typed-only: no Σ* witness to compare against.
  EXPECT_EQ(CrossCheck(engine.get(), "range-minimum", 64, 1).status().code(),
            StatusCode::kFailedPrecondition);
  // Σ*-only: no typed case to drive.
  EXPECT_EQ(CrossCheck(engine.get(), "member-via-bds", 64, 1).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(CrossCheck(engine.get(), "no-such", 64, 1).status().code(),
            StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Digest handles: Intern once, then zero O(|D|) key work per warm batch.
// ---------------------------------------------------------------------------

TEST(EngineHandleTest, WarmHandleBatchesDoZeroKeyBuildsAndMatchStringPath) {
  auto engine = MakeEngine();
  Rng rng(77);
  const int64_t universe = 512;
  std::string data = core::MemberFactorization()
                         .pi1(core::MakeMemberInstance(
                             universe, RandomList(&rng, universe, 256), 0))
                         .value();
  std::vector<std::string> queries;
  for (int i = 0; i < 32; ++i) {
    queries.push_back(std::to_string(rng.NextBelow(512)));
  }

  auto handle = engine->Intern("list-membership", data);
  ASSERT_TRUE(handle.ok());
  auto cold = engine->AnswerBatch(*handle, queries);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->prepare_runs, 1);

  engine->store().ResetStats();
  auto warm = engine->AnswerBatch(*handle, queries);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->cache_hit);
  EXPECT_EQ(warm->prepare_runs, 0);
  // The acceptance counter: a warm handle batch never copies or hashes the
  // O(|D|) store key.
  EXPECT_EQ(engine->store().stats().key_builds, 0);

  // Same answers as the string-keyed admission path...
  auto via_string = engine->AnswerBatch("list-membership", data, queries);
  ASSERT_TRUE(via_string.ok());
  EXPECT_EQ(via_string->answers, warm->answers);
  EXPECT_EQ(via_string->answers, cold->answers);
  // ...which paid the per-batch key build the handle skipped.
  EXPECT_EQ(engine->store().stats().key_builds, 1);
}

TEST(EngineHandleTest, InternValidatesTheProblem) {
  auto engine = MakeEngine();
  EXPECT_FALSE(engine->Intern("no-such-problem", "d").ok());
  // Typed-only entries have no Σ* witness to key against.
  EXPECT_FALSE(engine->Intern("range-minimum", "d").ok());
  EXPECT_FALSE(
      engine->AnswerBatch(DataHandle{}, std::vector<std::string>{"0"}).ok());
}

// ServeParallel's per-worker tallies (thread-local CostMeters, batched
// cursor pulls) must aggregate to the same totals a sequential driver
// sees: counts exact, Π cost charged once per data part, answer cost
// proportional to the query volume, threads = 0 resolved to the machine.
TEST(EngineServeReportTest, TalliesAggregateAcrossWorkersAndBatchedPulls) {
  auto engine = MakeEngine();
  Rng rng(88);
  constexpr int kParts = 3;
  constexpr int kQueries = 8;
  constexpr int kRepeat = 5;
  std::vector<ServeWorkItem> workload;
  for (int part = 0; part < kParts; ++part) {
    ServeWorkItem item;
    item.problem = "list-membership";
    item.data = core::MemberFactorization()
                    .pi1(core::MakeMemberInstance(
                        128, RandomList(&rng, 128, 40), 0))
                    .value();
    for (int i = 0; i < kQueries; ++i) {
      item.queries.push_back(std::to_string(rng.NextBelow(128)));
    }
    workload.push_back(std::move(item));
  }
  ServeOptions options;
  options.threads = 0;  // auto: hardware_concurrency
  options.repeat = kRepeat;
  options.batch = 2;    // force several pulls per worker
  auto report = ServeParallel(engine.get(), workload, options);
  EXPECT_EQ(report.errors, 0) << report.first_error.ToString();
  EXPECT_GE(report.threads, 1);
  EXPECT_EQ(report.batches, kParts * kRepeat);
  EXPECT_EQ(report.queries, kParts * kRepeat * kQueries);
  EXPECT_EQ(report.pi_runs, kParts);
  // Π cost was charged by exactly the kParts cold batches; every one of
  // the kParts*kRepeat*kQueries answers charged the answer meters.
  EXPECT_GT(report.prepare_cost.work, 0);
  EXPECT_GE(report.answer_cost.work, report.queries);
}

// ---------------------------------------------------------------------------
// Decoded Π-views: the view path must agree with the string path on every
// view-enabled builtin (including rewritten and reduction-derived ones).
// ---------------------------------------------------------------------------

std::unique_ptr<QueryEngine> MakeStringPathEngine() {
  auto engine = std::make_unique<QueryEngine>();
  BuiltinOptions options;
  options.enable_views = false;
  auto status = RegisterBuiltins(engine.get(), options);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return engine;
}

TEST(EngineViewTest, ViewAndStringPathsAgreeOnEveryViewEnabledBuiltin) {
  auto view_engine = MakeEngine();
  auto string_engine = MakeStringPathEngine();
  Rng rng(4242);

  struct Case {
    std::string problem;
    std::string data;
    std::vector<std::string> queries;
  };
  std::vector<Case> cases;

  // Sorted-column problems: list-membership, its λ-rewritten dialect, and
  // the reduction-transported member-via-conn (Transport view propagation).
  const int64_t universe = 256;
  auto list = RandomList(&rng, universe, 128);
  std::string member_data =
      core::MemberFactorization()
          .pi1(core::MakeMemberInstance(universe, list, 0))
          .value();
  Case member{"list-membership", member_data, {}};
  Case via_conn{"member-via-conn", member_data, {}};
  for (int i = 0; i < 24; ++i) {
    std::string e = std::to_string(rng.NextBelow(256));
    member.queries.push_back(e);
    via_conn.queries.push_back(e);
  }
  Case selection{"predicate-selection",
                 core::SelectionFactorization()
                     .pi1(core::MakeSelectionInstance(universe, list, {0, 1}))
                     .value(),
                 {}};
  for (int i = 0; i < 12; ++i) {
    const int64_t a = static_cast<int64_t>(rng.NextBelow(256));
    selection.queries.push_back(codec::EncodeInts({0, a}));       // = a
    selection.queries.push_back(codec::EncodeInts({3, a, a + 9}));  // between
  }
  cases.push_back(std::move(member));
  cases.push_back(std::move(via_conn));
  cases.push_back(std::move(selection));

  // Graph problems: connectivity, BDS order, directed reachability.
  auto undirected = graph::ErdosRenyi(64, 96, /*directed=*/false, &rng);
  auto directed = graph::ErdosRenyi(64, 128, /*directed=*/true, &rng);
  Case conn{"connectivity",
            core::ConnFactorization()
                .pi1(core::MakeConnInstance(undirected, 0, 0))
                .value(),
            {}};
  Case bds{"breadth-depth-search",
           core::BdsFactorization()
               .pi1(core::MakeBdsInstance(undirected, 0, 0))
               .value(),
           {}};
  Case reach{"graph-reachability",
             core::ReachFactorization()
                 .pi1(core::MakeReachInstance(directed, 0, 0))
                 .value(),
             {}};
  for (int i = 0; i < 24; ++i) {
    std::string q = std::to_string(rng.NextBelow(64)) + "#" +
                    std::to_string(rng.NextBelow(64));
    conn.queries.push_back(q);
    bds.queries.push_back(q);
    reach.queries.push_back(q);
  }
  cases.push_back(std::move(conn));
  cases.push_back(std::move(bds));
  cases.push_back(std::move(reach));

  // Circuit problems: the GVP bitmap and the kept-circuit evaluator.
  {
    Rng crng(9);
    circuit::CircuitGenOptions copts;
    copts.num_inputs = 6;
    copts.num_gates = 24;
    auto instance = circuit::RandomCvpInstance(copts, &crng);
    Case gvp{"cvp-refactorized",
             core::GvpFactorization()
                 .pi1(core::MakeGvpInstance(instance, 0))
                 .value(),
             {}};
    for (circuit::GateId g = 0; g < instance.circuit.num_gates(); ++g) {
      gvp.queries.push_back(std::to_string(g));
    }
    Case nand_eval{"cvp-nand-eval",
                   core::CvpCircuitDataFactorization()
                       .pi1(core::MakeCvpInstanceString(instance))
                       .value(),
                   {}};
    for (int i = 0; i < 8; ++i) {
      std::string bits;
      for (int b = 0; b < instance.circuit.num_inputs(); ++b) {
        bits.push_back(crng.NextBool() ? '1' : '0');
      }
      nand_eval.queries.push_back(std::move(bits));
    }
    cases.push_back(std::move(gvp));
    cases.push_back(std::move(nand_eval));
  }

  for (const Case& c : cases) {
    auto entry = view_engine->Find(c.problem);
    ASSERT_TRUE(entry.ok()) << c.problem;
    EXPECT_TRUE((*entry)->witness.has_view())
        << c.problem << " lost its decoded-view hooks";
    auto stripped = string_engine->Find(c.problem);
    ASSERT_TRUE(stripped.ok()) << c.problem;
    EXPECT_FALSE((*stripped)->witness.has_view()) << c.problem;

    auto cold = view_engine->AnswerBatch(c.problem, c.data, c.queries);
    ASSERT_TRUE(cold.ok()) << c.problem << ": " << cold.status().ToString();
    auto warm = view_engine->AnswerBatch(c.problem, c.data, c.queries);
    ASSERT_TRUE(warm.ok()) << c.problem;
    EXPECT_TRUE(warm->cache_hit) << c.problem;
    auto baseline = string_engine->AnswerBatch(c.problem, c.data, c.queries);
    ASSERT_TRUE(baseline.ok()) << c.problem;
    EXPECT_EQ(cold->answers, baseline->answers) << c.problem;
    EXPECT_EQ(warm->answers, baseline->answers) << c.problem;
    // Conceptual probe charges stay identical across the two paths: the
    // view changes wall-clock, never the cost model.
    EXPECT_EQ(warm->answer_cost.work, baseline->answer_cost.work)
        << c.problem;
  }
  // Views were actually built (one per distinct (problem, witness, data)).
  EXPECT_GT(view_engine->store().stats().view_builds, 0);
  EXPECT_EQ(string_engine->store().stats().view_builds, 0);
}

TEST(EngineTypedTest, TypedBatchMatchesManualCaseDrive) {
  auto engine = MakeEngine();
  auto batch = engine->AnswerTypedBatch("point-selection", 128, 3);
  ASSERT_TRUE(batch.ok());

  auto manual = engine->MakeCase("point-selection");
  ASSERT_TRUE(manual.ok());
  ASSERT_TRUE((*manual)->Generate(128, 3).ok());
  ASSERT_TRUE((*manual)->Preprocess(nullptr).ok());
  ASSERT_EQ((*manual)->num_queries(),
            static_cast<int>(batch->answers.size()));
  for (int qi = 0; qi < (*manual)->num_queries(); ++qi) {
    auto expected = (*manual)->AnswerPrepared(qi, nullptr);
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(*expected, batch->answers[static_cast<size_t>(qi)]) << qi;
  }
}

}  // namespace
}  // namespace engine
}  // namespace pitract
