// Randomized and adversarial coverage for the serving layer's incremental
// Π(D) maintenance: QueryEngine::ApplyDelta / PreparedStore::UpdateData
// against a recompute-from-scratch shadow model, the O(|Δ|)-not-O(|D|)
// cost contract, and Δ-patching racing live ServeParallel traffic.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/codec.h"
#include "common/cost_meter.h"
#include "common/rng.h"
#include "core/problems.h"
#include "engine/builtins.h"
#include "engine/delta.h"
#include "engine/engine.h"
#include "engine/serve.h"
#include "graph/algos.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "ncsim/ncsim.h"

namespace pitract {
namespace engine {
namespace {

namespace fs = std::filesystem;

std::string UniqueTempDir(const char* tag) {
  static std::atomic<int> counter{0};
  fs::path dir = fs::temp_directory_path() /
                 (std::string("pitract_") + tag + "_" +
                  std::to_string(::getpid()) + "_" +
                  std::to_string(counter.fetch_add(1)));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::unique_ptr<QueryEngine> MakeEngine(PreparedStore::Options options = {}) {
  auto engine = std::make_unique<QueryEngine>(options);
  auto status = RegisterBuiltins(engine.get());
  EXPECT_TRUE(status.ok()) << status.ToString();
  return engine;
}

std::string MemberData(int64_t universe, const std::vector<int64_t>& list) {
  return core::MemberFactorization()
      .pi1(core::MakeMemberInstance(universe, list, 0))
      .value();
}

bool ShadowMember(const std::vector<int64_t>& list, int64_t value) {
  return std::find(list.begin(), list.end(), value) != list.end();
}

// ---------------------------------------------------------------------------
// Randomized store equivalence: a seeded mix of answer / Δ-patch / evict /
// Spill / Load / Clear against a recompute-from-scratch shadow model.
// ---------------------------------------------------------------------------

class IncrementalEquivalenceTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(IncrementalEquivalenceTest, MemberDeltasMatchShadowModel) {
  Rng rng(GetParam());
  const std::string dir = UniqueTempDir("incr_equiv");

  PreparedStore::Options options;
  options.shards = 4;
  // Small enough that long runs evict; large enough to usually hold the
  // evolving entry, so both the patched and recompute paths are exercised.
  options.byte_budget = 1 << 14;
  auto engine = MakeEngine(options);

  const int64_t universe = 1024;
  std::vector<int64_t> shadow;
  for (int i = 0; i < 200; ++i) {
    shadow.push_back(
        static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(universe))));
  }
  std::string data = MemberData(universe, shadow);

  auto check_parity = [&] {
    std::vector<std::string> queries;
    std::vector<bool> expected;
    for (int i = 0; i < 8; ++i) {
      const auto value = static_cast<int64_t>(
          rng.NextBelow(static_cast<uint64_t>(universe)));
      queries.push_back(std::to_string(value));
      expected.push_back(ShadowMember(shadow, value));
    }
    auto batch = engine->AnswerBatch("list-membership", data, queries);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    EXPECT_EQ(batch->answers, expected);
  };

  // 25 operations per seed; with the 10-seed instantiation below the suite
  // runs 250 randomized iterations (the acceptance bar asks for 200+).
  for (int step = 0; step < 25; ++step) {
    switch (rng.NextBelow(8)) {
      case 0:    // plain batch answering
      case 1: {  // (weighted: answering dominates a serving mix)
        check_parity();
        break;
      }
      case 2: {  // Δ-patch: inserts
        DeltaBatch delta;
        const int k = 1 + static_cast<int>(rng.NextBelow(8));
        for (int i = 0; i < k; ++i) {
          DeltaOp op;
          op.kind = DeltaOp::Kind::kListInsert;
          op.a = static_cast<int64_t>(
              rng.NextBelow(static_cast<uint64_t>(universe)));
          delta.ops.push_back(op);
        }
        const auto n_before = static_cast<int64_t>(shadow.size());
        CostMeter meter;
        auto outcome =
            engine->ApplyDelta("list-membership", data, delta, &meter);
        ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
        if (outcome->patched) {
          // CostMeter contract: patch work is O(|Δ| log |D|) — one
          // root-to-leaf traversal per change plus the digest probe —
          // never O(|D|).
          const int64_t per_change =
              ncsim::CeilLog2(n_before < 1 ? 1 : n_before) + 2;
          EXPECT_LE(meter.work(), k * per_change + 4)
              << "patch charged more than O(|Δ| log |D|)";
        }
        for (const DeltaOp& op : delta.ops) shadow.push_back(op.a);
        data = outcome->new_data;
        check_parity();
        break;
      }
      case 3: {  // Δ-patch: deletes (present values; absent must fail)
        if (shadow.empty()) break;
        DeltaBatch delta;
        DeltaOp op;
        op.kind = DeltaOp::Kind::kListDelete;
        op.a = shadow[rng.NextBelow(shadow.size())];
        delta.ops.push_back(op);
        auto outcome = engine->ApplyDelta("list-membership", data, delta);
        ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
        shadow.erase(std::find(shadow.begin(), shadow.end(), op.a));
        data = outcome->new_data;

        // A delete of an absent value is rejected wholesale: neither the
        // data part nor the prepared structure moves.
        DeltaBatch absent;
        DeltaOp bad;
        bad.kind = DeltaOp::Kind::kListDelete;
        bad.a = universe + 17;  // outside every generated value
        absent.ops.push_back(bad);
        auto rejected =
            engine->ApplyDelta("list-membership", data, absent);
        EXPECT_FALSE(rejected.ok());
        check_parity();
        break;
      }
      case 4: {  // persistence round trip, possibly through a "restart"
        ASSERT_TRUE(engine->store().Spill(dir).ok());
        if (rng.NextBool(0.5)) {
          engine = MakeEngine(options);
          ASSERT_TRUE(engine->store().Load(dir).ok());
        }
        check_parity();
        break;
      }
      case 5: {  // Δ-patch: value updates (present a; absent must fail)
        if (shadow.empty()) break;
        DeltaBatch delta;
        DeltaOp op;
        op.kind = DeltaOp::Kind::kValueUpdate;
        op.a = shadow[rng.NextBelow(shadow.size())];
        op.b = static_cast<int64_t>(
            rng.NextBelow(static_cast<uint64_t>(universe)));
        delta.ops.push_back(op);
        CostMeter meter;
        auto outcome =
            engine->ApplyDelta("list-membership", data, delta, &meter);
        ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
        if (outcome->patched) {
          // One update is algebraically delete-a + insert-b: at most two
          // root-to-leaf traversals, never O(|D|).
          const auto n_before = static_cast<int64_t>(shadow.size());
          const int64_t per_change =
              ncsim::CeilLog2(n_before < 1 ? 1 : n_before) + 2;
          EXPECT_LE(meter.work(), 2 * per_change + 4)
              << "update charged more than O(log |D|)";
        }
        if (op.a != op.b) {
          *std::find(shadow.begin(), shadow.end(), op.a) = op.b;
        }
        data = outcome->new_data;

        // An update whose old value is absent is rejected wholesale.
        DeltaBatch bad;
        DeltaOp absent;
        absent.kind = DeltaOp::Kind::kValueUpdate;
        absent.a = universe + 33;  // outside every generated value
        absent.b = 1;
        bad.ops.push_back(absent);
        EXPECT_FALSE(engine->ApplyDelta("list-membership", data, bad).ok());
        check_parity();
        break;
      }
      case 6: {  // coalesced burst: ± ops that net to a single insert
        DeltaBatch delta;
        const auto value = static_cast<int64_t>(
            rng.NextBelow(static_cast<uint64_t>(universe)));
        DeltaOp ins;
        ins.kind = DeltaOp::Kind::kListInsert;
        ins.a = value;
        DeltaOp del;
        del.kind = DeltaOp::Kind::kListDelete;
        del.a = value;
        // insert, insert, delete → net one insert; and a fully canceling
        // pair on an out-of-universe value must vanish before validation.
        delta.ops.push_back(ins);
        delta.ops.push_back(ins);
        delta.ops.push_back(del);
        DeltaOp ghost_ins;
        ghost_ins.kind = DeltaOp::Kind::kListInsert;
        ghost_ins.a = universe + 99;  // out of range — must coalesce away
        DeltaOp ghost_del;
        ghost_del.kind = DeltaOp::Kind::kListDelete;
        ghost_del.a = universe + 99;
        delta.ops.push_back(ghost_ins);
        delta.ops.push_back(ghost_del);
        auto outcome = engine->ApplyDelta("list-membership", data, delta);
        ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
        shadow.push_back(value);
        data = outcome->new_data;
        check_parity();
        break;
      }
      default: {  // total eviction: everything recomputes from scratch
        engine->store().Clear();
        check_parity();
        break;
      }
    }
  }
  fs::remove_all(dir);
}

TEST_P(IncrementalEquivalenceTest, ReachabilityDeltasMatchShadowModel) {
  Rng rng(GetParam() + 500);
  auto engine = MakeEngine();

  const graph::NodeId n = 48;
  auto g = graph::ErdosRenyi(n, 96, /*directed=*/true, &rng);
  std::string data = core::ReachFactorization()
                         .pi1(core::MakeReachInstance(g, 0, 0))
                         .value();

  auto check_parity = [&] {
    std::vector<std::string> queries;
    std::vector<bool> expected;
    for (int i = 0; i < 8; ++i) {
      const auto s = static_cast<graph::NodeId>(
          rng.NextBelow(static_cast<uint64_t>(n)));
      const auto t = static_cast<graph::NodeId>(
          rng.NextBelow(static_cast<uint64_t>(n)));
      queries.push_back(
          codec::EncodeFields({std::to_string(s), std::to_string(t)}));
      expected.push_back(graph::BfsReachable(g, s, t, nullptr));
    }
    auto batch = engine->AnswerBatch("graph-reachability", data, queries);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    EXPECT_EQ(batch->answers, expected);
  };

  check_parity();  // cold Π
  for (int step = 0; step < 12; ++step) {
    // A mixed insert/delete batch, built against a running shadow of the
    // edge set so every delete targets a present edge (a delete of an
    // absent edge is rejected wholesale, covered below).
    DeltaBatch delta;
    const int k = 1 + static_cast<int>(rng.NextBelow(3));
    std::vector<std::pair<graph::NodeId, graph::NodeId>> edges = g.Edges();
    for (int i = 0; i < k; ++i) {
      DeltaOp op;
      if (!edges.empty() && rng.NextBool(0.4)) {
        const auto pick = edges[rng.NextBelow(edges.size())];
        op.kind = DeltaOp::Kind::kEdgeDelete;
        op.a = static_cast<int64_t>(pick.first);
        op.b = static_cast<int64_t>(pick.second);
        // Set semantics: the delete drops the arc, parallel copies and all.
        edges.erase(std::remove(edges.begin(), edges.end(), pick),
                    edges.end());
      } else {
        op.kind = DeltaOp::Kind::kEdgeInsert;
        op.a = static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(n)));
        op.b = static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(n)));
        edges.emplace_back(static_cast<graph::NodeId>(op.a),
                           static_cast<graph::NodeId>(op.b));
      }
      delta.ops.push_back(op);
    }
    auto outcome = engine->ApplyDelta("graph-reachability", data, delta);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_TRUE(outcome->patched) << "entry was resident; expected a patch";
    data = outcome->new_data;
    auto patched_graph = graph::Graph::FromEdges(n, edges, /*directed=*/true);
    ASSERT_TRUE(patched_graph.ok());
    g = std::move(patched_graph).value();
    check_parity();
  }
  // The whole evolving chain ran exactly one Π: every delta — insertions
  // and decremental deletions alike — was patched in place, every
  // post-delta batch hit the re-keyed entry.
  EXPECT_EQ(engine->store().stats().misses, 1);
  EXPECT_EQ(engine->store().stats().patches, 12);

  // A delete of an absent edge is rejected wholesale at the data hook:
  // neither the data part nor the prepared closure moves.
  {
    DeltaBatch absent;
    DeltaOp op;
    op.kind = DeltaOp::Kind::kEdgeDelete;
    op.a = 0;
    op.b = 0;  // self-loops are never generated above
    absent.ops.push_back(op);
    EXPECT_FALSE(engine->ApplyDelta("graph-reachability", data, absent).ok());
  }

  // List-vocabulary ops stay outside the reach data algebra: the data hook
  // refuses them loudly instead of guessing a meaning.
  DeltaBatch removal;
  DeltaOp op;
  op.kind = DeltaOp::Kind::kListDelete;
  removal.ops.push_back(op);
  EXPECT_FALSE(engine->ApplyDelta("graph-reachability", data, removal).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalEquivalenceTest,
                         ::testing::Values(21, 22, 23, 24, 25, 26, 27, 28,
                                           29, 30));

// ---------------------------------------------------------------------------
// The amortization claim, CostMeter-verified end to end: patching charges
// O(|Δ| log |D|) while the recompute it replaces charges Ω(|D|).
// ---------------------------------------------------------------------------

TEST(IncrementalCostTest, PatchWorkIsDeltaBoundedNeverLinearInData) {
  Rng rng(77);
  const int64_t n = 1 << 14;
  const int64_t universe = 4 * n;
  std::vector<int64_t> list;
  for (int64_t i = 0; i < n; ++i) {
    list.push_back(
        static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(universe))));
  }
  std::string data = MemberData(universe, list);

  auto engine = MakeEngine();
  std::vector<std::string> queries{"0"};
  auto cold = engine->AnswerBatch("list-membership", data, queries);
  ASSERT_TRUE(cold.ok());
  const int64_t recompute_work = cold->prepare_cost.work;

  constexpr int kDelta = 4;
  DeltaBatch delta;
  for (int i = 0; i < kDelta; ++i) {
    DeltaOp op;
    op.kind = DeltaOp::Kind::kListInsert;
    op.a = static_cast<int64_t>(
        rng.NextBelow(static_cast<uint64_t>(universe)));
    delta.ops.push_back(op);
  }
  CostMeter meter;
  auto outcome = engine->ApplyDelta("list-membership", data, delta, &meter);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->patched);

  // O(|Δ| log |D|), with explicit constants from the Δ-maintained index.
  EXPECT_LE(meter.work(), kDelta * (ncsim::CeilLog2(n) + 2) + 4);
  // …and therefore asymptotically nowhere near the Ω(|D| log |D|) rebuild.
  EXPECT_LT(meter.work() * 100, recompute_work);

  // The patched entry really serves: answering the post-delta data part is
  // a cache hit, not a second Π.
  auto warm = engine->AnswerBatch("list-membership", outcome->new_data,
                                  queries);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->cache_hit);
  EXPECT_EQ(warm->prepare_runs, 0);
  EXPECT_EQ(engine->store().stats().misses, 1);
}

TEST(IncrementalCostTest, DeletePatchWorkTracksAffectedSetNotGraphSize) {
  // Many small disjoint components: deleting one arc affects exactly one
  // closure row, so the SES-style decremental patch must charge a small
  // constant — while the recompute it replaces pays for the whole graph.
  const graph::NodeId n = 512;
  std::vector<std::pair<graph::NodeId, graph::NodeId>> pairs;
  for (graph::NodeId i = 0; i + 1 < n; i += 2) pairs.emplace_back(i, i + 1);
  auto g = graph::Graph::FromEdges(n, pairs, /*directed=*/true);
  ASSERT_TRUE(g.ok());
  std::string data = core::ReachFactorization()
                         .pi1(core::MakeReachInstance(*g, 0, 0))
                         .value();

  auto engine = MakeEngine();
  std::vector<std::string> queries{codec::EncodeFields({"0", "1"})};
  auto cold = engine->AnswerBatch("graph-reachability", data, queries);
  ASSERT_TRUE(cold.ok());
  EXPECT_TRUE(cold->answers[0]);
  const int64_t recompute_work = cold->prepare_cost.work;

  DeltaBatch delta;
  DeltaOp op;
  op.kind = DeltaOp::Kind::kEdgeDelete;
  op.a = 0;
  op.b = 1;
  delta.ops.push_back(op);
  CostMeter meter;
  auto outcome = engine->ApplyDelta("graph-reachability", data, delta, &meter);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_TRUE(outcome->patched);

  // AFF = {0}: the charge covers one ancestor-word scan plus one row
  // recompute — a |ΔD|/|CHANGED| function, structurally incapable of
  // reaching the Ω(n·m) closure rebuild.
  EXPECT_LT(meter.work() * 50, recompute_work)
      << "decremental patch charged like a rebuild";

  // The patched entry serves the post-delete closure warm: 0 ⇝ 1 is gone,
  // and Π never re-ran.
  auto warm =
      engine->AnswerBatch("graph-reachability", outcome->new_data, queries);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->cache_hit);
  EXPECT_EQ(warm->prepare_runs, 0);
  EXPECT_FALSE(warm->answers[0]);
  EXPECT_EQ(engine->store().stats().misses, 1);
}

// ---------------------------------------------------------------------------
// Decoded views under Δ-patches: a re-keyed entry must answer through a
// view of the *post-patch* payload — a stale pre-patch view would return
// the pre-delta answer while claiming a warm hit.
// ---------------------------------------------------------------------------

TEST(IncrementalViewTest, PatchedMemberEntryNeverServesThePrePatchView) {
  auto engine = MakeEngine();
  const int64_t universe = 256;
  std::string data = MemberData(universe, {1, 5, 9});
  std::vector<std::string> queries{"123"};  // absent pre-delta

  auto cold = engine->AnswerBatch("list-membership", data, queries);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->answers[0]);
  EXPECT_EQ(engine->store().stats().view_builds, 1);

  DeltaBatch delta;
  DeltaOp op;
  op.kind = DeltaOp::Kind::kListInsert;
  op.a = 123;
  delta.ops.push_back(op);
  auto outcome = engine->ApplyDelta("list-membership", data, delta);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->patched);
  // The re-key rebuilt the view from the patched payload.
  EXPECT_EQ(engine->store().stats().view_builds, 2);

  auto warm = engine->AnswerBatch("list-membership", outcome->new_data,
                                  queries);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->cache_hit);      // served from the patched entry...
  EXPECT_EQ(warm->prepare_runs, 0);  // ...with no Π recompute...
  EXPECT_TRUE(warm->answers[0]);     // ...through the post-patch view.
  EXPECT_EQ(engine->store().stats().view_builds, 2);  // memoized, not rebuilt
}

TEST(IncrementalViewTest, PatchedReachEntryServesThePostPatchClosureView) {
  auto engine = MakeEngine();
  auto g = graph::Graph::FromEdges(3, {{0, 1}}, /*directed=*/true);
  ASSERT_TRUE(g.ok());
  std::string data = core::ReachFactorization()
                         .pi1(core::MakeReachInstance(*g, 0, 0))
                         .value();
  std::vector<std::string> queries{codec::EncodeFields({"0", "2"})};

  auto cold = engine->AnswerBatch("graph-reachability", data, queries);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->answers[0]);  // 0 ⇝ 2 does not hold yet

  DeltaBatch delta;
  DeltaOp op;
  op.kind = DeltaOp::Kind::kEdgeInsert;
  op.a = 1;
  op.b = 2;
  delta.ops.push_back(op);
  auto outcome = engine->ApplyDelta("graph-reachability", data, delta);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->patched);

  auto warm = engine->AnswerBatch("graph-reachability", outcome->new_data,
                                  queries);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->cache_hit);
  EXPECT_EQ(warm->prepare_runs, 0);
  EXPECT_TRUE(warm->answers[0]);  // the closure view absorbed 1 -> 2
}

// ---------------------------------------------------------------------------
// Concurrency: ServeParallel traffic racing ApplyDelta on the same entry
// never observes a torn or stale-digest Π. Content addressing is the
// invariant under test: a batch against data version v must answer v's
// answers no matter how many Δ-patches land concurrently.
// ---------------------------------------------------------------------------

TEST(IncrementalConcurrencyTest, ServeTrafficRacingApplyDeltaStaysConsistent) {
  Rng rng(4242);
  const int64_t universe = 512;
  constexpr int kVersions = 6;

  // Precompute the version chain and its ground-truth answers.
  std::vector<std::vector<int64_t>> lists(kVersions);
  for (int i = 0; i < 120; ++i) {
    lists[0].push_back(
        static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(universe))));
  }
  std::vector<DeltaBatch> deltas(kVersions - 1);
  for (int v = 1; v < kVersions; ++v) {
    lists[v] = lists[v - 1];
    for (int i = 0; i < 5; ++i) {
      DeltaOp op;
      op.kind = DeltaOp::Kind::kListInsert;
      op.a = static_cast<int64_t>(
          rng.NextBelow(static_cast<uint64_t>(universe)));
      deltas[static_cast<size_t>(v - 1)].ops.push_back(op);
      lists[v].push_back(op.a);
    }
  }
  std::vector<std::string> version_data(kVersions);
  {
    // The Σ* encodings of every version, derived through the same hook the
    // racing engine will use (a scratch engine keeps digests identical).
    auto scratch = MakeEngine();
    version_data[0] = MemberData(universe, lists[0]);
    for (int v = 1; v < kVersions; ++v) {
      auto outcome = scratch->ApplyDelta("list-membership",
                                         version_data[v - 1],
                                         deltas[static_cast<size_t>(v - 1)]);
      ASSERT_TRUE(outcome.ok());
      version_data[v] = outcome->new_data;
    }
  }
  std::vector<std::string> queries;
  for (int i = 0; i < 12; ++i) {
    queries.push_back(std::to_string(rng.NextBelow(universe)));
  }
  std::vector<std::vector<bool>> expected(kVersions);
  for (int v = 0; v < kVersions; ++v) {
    for (const std::string& q : queries) {
      expected[v].push_back(ShadowMember(lists[v], std::stoll(q)));
    }
  }

  PreparedStore::Options options;
  options.shards = 8;
  auto engine = MakeEngine(options);
  // Warm version 0 so the first ApplyDelta has something to patch.
  ASSERT_TRUE(
      engine->AnswerBatch("list-membership", version_data[0], queries).ok());

  std::atomic<int> mismatches{0};
  std::atomic<int> errors{0};
  std::atomic<bool> done{false};

  // Updater: walks the delta chain over the live store. Patching may fall
  // back (e.g. an in-flight Π on the old version) — correctness must not
  // depend on which path won.
  std::thread updater([&] {
    for (int v = 1; v < kVersions; ++v) {
      auto outcome =
          engine->ApplyDelta("list-membership", version_data[v - 1],
                             deltas[static_cast<size_t>(v - 1)]);
      if (!outcome.ok()) {
        ++errors;
        continue;
      }
      if (outcome->new_data != version_data[v]) ++mismatches;
      std::this_thread::yield();
    }
  });

  // Verifier threads: batches against random pinned versions must answer
  // exactly that version's answers — never a torn or re-keyed Π.
  std::vector<std::thread> verifiers;
  for (int t = 0; t < 4; ++t) {
    verifiers.emplace_back([&, t] {
      Rng thread_rng(1000 + static_cast<uint64_t>(t));
      while (!done.load(std::memory_order_acquire)) {
        const int v = static_cast<int>(thread_rng.NextBelow(kVersions));
        auto batch = engine->AnswerBatch("list-membership",
                                         version_data[static_cast<size_t>(v)],
                                         queries);
        if (!batch.ok()) {
          ++errors;
          continue;
        }
        if (batch->answers != expected[static_cast<size_t>(v)]) ++mismatches;
      }
    });
  }

  // Bulk traffic through the multi-threaded serving driver, same store.
  // Alternate admission paths: even versions go through pre-admitted
  // digest handles (racing the Δ-patch re-keys through the pointer-equal
  // fast path), odd versions through per-batch string keys.
  std::vector<ServeWorkItem> workload;
  for (int v = 0; v < kVersions; ++v) {
    ServeWorkItem item;
    item.problem = "list-membership";
    item.data = version_data[static_cast<size_t>(v)];
    item.queries = queries;
    if (v % 2 == 0) {
      auto handle = engine->Intern("list-membership", item.data);
      ASSERT_TRUE(handle.ok());
      item.handle = std::make_shared<const DataHandle>(std::move(*handle));
    }
    workload.push_back(std::move(item));
  }
  ServeOptions serve_options;
  serve_options.threads = 4;
  serve_options.repeat = 20;
  auto report = ServeParallel(engine.get(), workload, serve_options);

  updater.join();
  done.store(true, std::memory_order_release);
  for (auto& t : verifiers) t.join();

  EXPECT_EQ(report.errors, 0) << report.first_error.ToString();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(mismatches.load(), 0)
      << "a batch observed a torn or stale-digest Π";
  EXPECT_EQ(report.batches, kVersions * serve_options.repeat);
}

// Engine-level face of the PR 5 retry contract: an ApplyDelta racing the
// miss storm's in-flight Π blocks on the shared_future once and patches
// exactly the payload the storm publishes, so the post-delta data part is
// warm without ever recomputing Π (pre-PR-5 this degraded to
// recompute-on-miss with DeltaOutcome::patched == false).
TEST(IncrementalConcurrencyTest, ApplyDeltaWaitsOutInflightPiThenPatches) {
  auto engine = MakeEngine();
  std::atomic<bool> release{false};
  std::atomic<int> computes{0};
  ProblemEntry entry;
  entry.name = "blocking-echo";
  entry.paper_anchor = "test-only";
  entry.has_language = true;
  entry.witness.name = "echo";
  entry.witness.preprocess = [&](const std::string& data,
                                 CostMeter*) -> Result<std::string> {
    ++computes;
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    return "pi:" + data;
  };
  entry.witness.answer = [](const std::string& prepared,
                            const std::string& query,
                            CostMeter*) -> Result<bool> {
    return prepared.find(query) != std::string::npos;
  };
  entry.apply_delta_to_data =
      [](const std::string& data, const DeltaBatch&) -> Result<std::string> {
    return data + "+d";
  };
  entry.prepared_patch = [](std::string* prepared, const DeltaBatch&,
                            CostMeter*) {
    *prepared += "+d";
    return Status::OK();
  };
  ASSERT_TRUE(engine->Register(std::move(entry)).ok());

  const std::vector<std::string> queries = {"pi:base"};
  std::thread storm([&] {
    auto batch = engine->AnswerBatch("blocking-echo", "base", queries);
    EXPECT_TRUE(batch.ok()) << batch.status().ToString();
  });
  while (computes.load() == 0) std::this_thread::yield();

  Result<DeltaOutcome> outcome = Status::Internal("delta did not run");
  std::thread delta([&] {
    outcome = engine->ApplyDelta("blocking-echo", "base", DeltaBatch{});
  });
  // The delta is provably parked on the storm's future before we release.
  while (engine->store().stats().update_retries == 0) {
    std::this_thread::yield();
  }
  release.store(true, std::memory_order_release);
  storm.join();
  delta.join();

  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->patched);
  EXPECT_EQ(outcome->new_data, "base+d");
  const auto stats = engine->store().stats();
  EXPECT_EQ(stats.update_retries, 1);
  EXPECT_EQ(stats.patches, 1);
  EXPECT_EQ(stats.patch_fallbacks, 0);

  // The post-delta data part is warm: Π never re-runs, and the patched
  // payload answers for it.
  auto warm = engine->AnswerBatch("blocking-echo", "base+d",
                                  std::vector<std::string>{"pi:base+d"});
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->cache_hit);
  EXPECT_EQ(warm->prepare_runs, 0);
  EXPECT_TRUE(warm->answers[0]);
  EXPECT_EQ(computes.load(), 1);
}

// ---------------------------------------------------------------------------
// MVCC lineage: a reader holding a DataHandle for a version that deltas
// re-keyed away must either hit its still-retained version or resolve
// forward to the first resident successor — never a spurious Π rebuild,
// never a wrong answer.
// ---------------------------------------------------------------------------

/// Builds a kVersions-long chain of member lists, their Σ* encodings
/// (derived through a scratch engine so digests match the live one), and
/// the per-version ground-truth answers for `queries`.
struct VersionChain {
  std::vector<std::vector<int64_t>> lists;
  std::vector<DeltaBatch> deltas;
  std::vector<std::string> data;
  std::vector<std::string> queries;
  std::vector<std::vector<bool>> expected;
};

VersionChain MakeVersionChain(int versions, uint64_t seed) {
  Rng rng(seed);
  const int64_t universe = 512;
  VersionChain chain;
  chain.lists.resize(static_cast<size_t>(versions));
  for (int i = 0; i < 100; ++i) {
    chain.lists[0].push_back(
        static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(universe))));
  }
  chain.deltas.resize(static_cast<size_t>(versions - 1));
  for (int v = 1; v < versions; ++v) {
    chain.lists[static_cast<size_t>(v)] = chain.lists[static_cast<size_t>(v - 1)];
    for (int i = 0; i < 4; ++i) {
      DeltaOp op;
      op.kind = DeltaOp::Kind::kListInsert;
      op.a = static_cast<int64_t>(
          rng.NextBelow(static_cast<uint64_t>(universe)));
      chain.deltas[static_cast<size_t>(v - 1)].ops.push_back(op);
      chain.lists[static_cast<size_t>(v)].push_back(op.a);
    }
  }
  auto scratch = MakeEngine();
  chain.data.resize(static_cast<size_t>(versions));
  chain.data[0] = MemberData(universe, chain.lists[0]);
  for (int v = 1; v < versions; ++v) {
    auto outcome =
        scratch->ApplyDelta("list-membership", chain.data[static_cast<size_t>(v - 1)],
                            chain.deltas[static_cast<size_t>(v - 1)]);
    EXPECT_TRUE(outcome.ok());
    chain.data[static_cast<size_t>(v)] = outcome->new_data;
  }
  for (int i = 0; i < 10; ++i) {
    chain.queries.push_back(std::to_string(rng.NextBelow(universe)));
  }
  chain.expected.resize(static_cast<size_t>(versions));
  for (int v = 0; v < versions; ++v) {
    for (const std::string& q : chain.queries) {
      chain.expected[static_cast<size_t>(v)].push_back(
          ShadowMember(chain.lists[static_cast<size_t>(v)], std::stoll(q)));
    }
  }
  return chain;
}

TEST(MvccLineageTest, StaleHandleResolvesToFirstResidentSuccessor) {
  constexpr int kVersions = 4;
  VersionChain chain = MakeVersionChain(kVersions, 919);

  PreparedStore::Options options;
  options.shards = 4;
  options.versions = 2;
  auto engine = MakeEngine(options);

  auto handle0 = engine->Intern("list-membership", chain.data[0]);
  ASSERT_TRUE(handle0.ok());
  ASSERT_TRUE(
      engine->AnswerBatch(*handle0, chain.queries).ok());  // warm version 0
  for (int v = 1; v < kVersions; ++v) {
    auto outcome =
        engine->ApplyDelta("list-membership", chain.data[static_cast<size_t>(v - 1)],
                           chain.deltas[static_cast<size_t>(v - 1)]);
    ASSERT_TRUE(outcome.ok());
    ASSERT_TRUE(outcome->patched);
  }
  // Window of 2 over a 4-version chain: v3 (current) and v2 (retained)
  // are resident, v0/v1 were trimmed.
  EXPECT_EQ(engine->store().size(), 2u);

  // The stale v0 handle stays warm: TryAnswerWarm walks the lineage
  // records to the first resident successor (v2) and serves exactly its
  // answers — no Π rebuild, no torn mix of versions.
  BatchResult result;
  auto served = engine->TryAnswerWarm(*handle0, chain.queries,
                                      AnswerOptions{}, &result);
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EXPECT_TRUE(*served);
  EXPECT_TRUE(result.cache_hit);
  EXPECT_EQ(result.prepare_runs, 0);
  EXPECT_EQ(result.answers, chain.expected[2]);
  EXPECT_EQ(engine->store().stats().lineage_resolves, 1);
  EXPECT_EQ(engine->store().stats().misses, 1);

  // A still-resident retained version serves itself, not its successor.
  auto handle2 = engine->Intern("list-membership", chain.data[2]);
  ASSERT_TRUE(handle2.ok());
  BatchResult retained;
  auto warm2 = engine->TryAnswerWarm(*handle2, chain.queries, AnswerOptions{},
                                     &retained);
  ASSERT_TRUE(warm2.ok());
  EXPECT_TRUE(*warm2);
  EXPECT_EQ(retained.answers, chain.expected[2]);
  EXPECT_EQ(engine->store().stats().lineage_resolves, 1);  // unchanged
}

// Tier × MVCC: under byte pressure the retained (superseded) predecessor
// is the first eviction victim, its demotion keeps byte and entry
// accounting exact, it is skipped by cold-frame spilling (a retired
// version must never be promoted back as a servable head), and readers
// still pinned on it resolve forward through the lineage records instead
// of being stranded.
TEST(MvccLineageTest, SupersededVersionEvictsFirstWithExactAccounting) {
  VersionChain chain = MakeVersionChain(2, 1013);
  const std::string filler_data =
      MemberData(512, std::vector<int64_t>{7, 11, 13});

  // Query the delta-inserted elements too, so the two versions provably
  // answer differently and a lineage-resolved reader is distinguishable.
  std::vector<std::string> queries = chain.queries;
  for (const DeltaOp& op : chain.deltas[0].ops) {
    queries.push_back(std::to_string(op.a));
  }
  std::vector<bool> expected0;
  std::vector<bool> expected1;
  for (const std::string& q : queries) {
    expected0.push_back(ShadowMember(chain.lists[0], std::stoll(q)));
    expected1.push_back(ShadowMember(chain.lists[1], std::stoll(q)));
  }
  ASSERT_NE(expected0, expected1);

  // Views off: the byte assertions below are exact payload accounting,
  // and the sweep exercises the eviction tier directly instead of first
  // shedding view bytes in the hot->warm phase.
  auto make_engine = [](size_t byte_budget) {
    PreparedStore::Options options;
    options.shards = 1;
    options.versions = 2;
    options.byte_budget = byte_budget;
    auto engine = std::make_unique<QueryEngine>(options);
    BuiltinOptions builtin_options;
    builtin_options.enable_views = false;
    auto status = RegisterBuiltins(engine.get(), builtin_options);
    EXPECT_TRUE(status.ok()) << status.ToString();
    return engine;
  };

  // Dry run, unbounded: measure the exact residency of every step.
  auto probe = make_engine(0);
  ASSERT_TRUE(
      probe->AnswerBatch("list-membership", chain.data[0], queries)
          .ok());
  const size_t v0_bytes = probe->store().bytes_resident();
  auto probe_delta =
      probe->ApplyDelta("list-membership", chain.data[0], chain.deltas[0]);
  ASSERT_TRUE(probe_delta.ok());
  ASSERT_TRUE(probe_delta->patched);
  const size_t chain_bytes = probe->store().bytes_resident();  // v0 + v1
  ASSERT_GT(chain_bytes, v0_bytes);
  ASSERT_TRUE(
      probe->AnswerBatch("list-membership", filler_data, queries).ok());
  const size_t filler_bytes = probe->store().bytes_resident() - chain_bytes;
  ASSERT_GT(filler_bytes, 0u);
  // Evicting the superseded version alone must clear the filler's deficit.
  ASSERT_LT(filler_bytes, v0_bytes);

  // Budgeted run: exactly enough bytes for the two-version chain.
  const std::string dir = UniqueTempDir("superseded_evict");
  auto engine = make_engine(chain_bytes);
  auto handle0 = engine->Intern("list-membership", chain.data[0]);
  ASSERT_TRUE(handle0.ok());
  auto warm0 = engine->AnswerBatch(*handle0, queries);
  ASSERT_TRUE(warm0.ok());
  EXPECT_EQ(warm0->answers, expected0);
  EXPECT_EQ(engine->store().bytes_resident(), v0_bytes);
  // Arm the spill directory: evictions from here on write cold frames —
  // except for superseded versions, which must never leave one behind.
  ASSERT_TRUE(engine->store().Spill(dir).ok());

  auto outcome =
      engine->ApplyDelta("list-membership", chain.data[0], chain.deltas[0]);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->patched);
  // Version retention is exactly accounted: superseded v0 + patched v1
  // hold byte-for-byte what the unbounded engine holds, and both count.
  EXPECT_EQ(engine->store().bytes_resident(), chain_bytes);
  EXPECT_EQ(engine->store().size(), 2u);

  auto current =
      engine->AnswerBatch("list-membership", chain.data[1], queries);
  ASSERT_TRUE(current.ok());
  EXPECT_TRUE(current->cache_hit);
  EXPECT_EQ(current->answers, expected1);

  // The filler admission overflows the budget: the sweep takes the
  // superseded version first — not the current head, not the newcomer —
  // and the byte ledger moves by exactly (filler in, v0 out).
  ASSERT_TRUE(
      engine->AnswerBatch("list-membership", filler_data, queries).ok());
  EXPECT_EQ(engine->store().stats().evictions, 1);
  EXPECT_EQ(engine->store().size(), 2u);  // v1 + filler
  EXPECT_EQ(engine->store().bytes_resident(),
            chain_bytes - v0_bytes + filler_bytes);
  // No cold frame for the retired version despite the armed directory.
  EXPECT_EQ(engine->store().stats().cold_demotions, 0);

  // The pinned reader is not stranded: the stale handle resolves through
  // the lineage records to the resident successor — warm, no Π re-run.
  const int64_t misses_before = engine->store().stats().misses;
  BatchResult stale;
  auto served = engine->TryAnswerWarm(*handle0, queries, AnswerOptions{},
                                      &stale);
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EXPECT_TRUE(*served);
  EXPECT_TRUE(stale.cache_hit);
  EXPECT_EQ(stale.prepare_runs, 0);
  EXPECT_EQ(stale.answers, expected1);
  EXPECT_EQ(engine->store().stats().lineage_resolves, 1);
  EXPECT_EQ(engine->store().stats().misses, misses_before);

  // The current head still serves itself warm after the sweep.
  auto again =
      engine->AnswerBatch("list-membership", chain.data[1], queries);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->cache_hit);
  EXPECT_EQ(again->answers, expected1);
  fs::remove_all(dir);
}

TEST(IncrementalConcurrencyTest, ReadersRaceDeltaChainAcrossVersions) {
  constexpr int kVersions = 5;
  VersionChain chain = MakeVersionChain(kVersions, 929);

  PreparedStore::Options options;
  options.shards = 8;
  options.versions = 2;
  auto engine = MakeEngine(options);

  std::vector<DataHandle> handles;
  for (int v = 0; v < kVersions; ++v) {
    auto handle =
        engine->Intern("list-membership", chain.data[static_cast<size_t>(v)]);
    ASSERT_TRUE(handle.ok());
    handles.push_back(std::move(*handle));
  }
  ASSERT_TRUE(engine->AnswerBatch(handles[0], chain.queries).ok());

  std::atomic<int> max_published{0};
  std::atomic<int> mismatches{0};
  std::atomic<int> cold_misses{0};
  std::atomic<int> errors{0};
  std::atomic<bool> done{false};

  // Readers pin any already-published version: the answer must be exactly
  // one version's answer vector, at least as new as the pinned one —
  // a patch landing mid-probe may legally forward the reader to a
  // successor, but never to a torn mix or a spurious rebuild.
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(3000 + static_cast<uint64_t>(t));
      while (!done.load(std::memory_order_acquire)) {
        const int v = static_cast<int>(rng.NextBelow(
            static_cast<uint64_t>(max_published.load() + 1)));
        BatchResult result;
        auto served =
            engine->TryAnswerWarm(handles[static_cast<size_t>(v)],
                                  chain.queries, AnswerOptions{}, &result);
        if (!served.ok()) {
          ++errors;
          continue;
        }
        if (!*served) {
          // A pinned version must always be answerable warm: it is either
          // inside the retained window or lineage-resolvable forward.
          ++cold_misses;
          continue;
        }
        bool matched = false;
        for (int j = v; j < kVersions; ++j) {
          if (result.answers == chain.expected[static_cast<size_t>(j)]) {
            matched = true;
            break;
          }
        }
        if (!matched) ++mismatches;
      }
    });
  }

  // The publisher walks the delta chain; with readers on the warm-only
  // path there is no in-flight Π to collide with, so every patch lands.
  for (int v = 1; v < kVersions; ++v) {
    auto outcome =
        engine->ApplyDelta("list-membership", chain.data[static_cast<size_t>(v - 1)],
                           chain.deltas[static_cast<size_t>(v - 1)]);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    ASSERT_TRUE(outcome->patched);
    max_published.store(v);
    std::this_thread::yield();
  }
  // Let the readers hammer the fully-published chain for a moment.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(cold_misses.load(), 0) << "a pinned version went spuriously cold";
  EXPECT_EQ(mismatches.load(), 0) << "a reader observed a torn answer set";
  EXPECT_EQ(engine->store().stats().misses, 1) << "a version rebuilt Π";
  EXPECT_EQ(engine->store().stats().patches, kVersions - 1);
}

}  // namespace
}  // namespace engine
}  // namespace pitract
