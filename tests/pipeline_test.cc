// Coverage for the completion-based serving pipeline (engine/pipeline.h):
// the no-head-of-line-blocking property pinned with a blocking Π witness,
// deadline expiry at dequeue, admission / park-time load shedding, the
// batch-locality sort_probes answer option, and a TSan suite racing
// submitters against preparers against eviction.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cost_meter.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/timer.h"
#include "core/problems.h"
#include "engine/builtins.h"
#include "engine/engine.h"
#include "engine/pipeline.h"
#include "engine/serve.h"

namespace pitract {
namespace engine {
namespace {

std::unique_ptr<QueryEngine> MakeEngine(PreparedStore::Options options = {}) {
  auto engine = std::make_unique<QueryEngine>(options);
  auto status = RegisterBuiltins(engine.get());
  EXPECT_TRUE(status.ok()) << status.ToString();
  return engine;
}

std::string MemberData(int64_t universe, const std::vector<int64_t>& list) {
  return core::MemberFactorization()
      .pi1(core::MakeMemberInstance(universe, list, 0))
      .value();
}

/// A problem whose Π spins until `release` flips: the deterministic witness
/// for "a cold prepare is in flight right now".
struct BlockingPi {
  std::atomic<bool> release{false};
  std::atomic<int> computes{0};
};

void RegisterBlocking(QueryEngine* engine, BlockingPi* pi) {
  ProblemEntry entry;
  entry.name = "blocking-echo";
  entry.paper_anchor = "test-only";
  entry.has_language = true;
  entry.witness.name = "echo";
  entry.witness.preprocess = [pi](const std::string& data,
                                  CostMeter*) -> Result<std::string> {
    pi->computes.fetch_add(1);
    while (!pi->release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    return "pi:" + data;
  };
  entry.witness.answer = [](const std::string& prepared,
                            const std::string& query,
                            CostMeter*) -> Result<bool> {
    return prepared.find(query) != std::string::npos;
  };
  ASSERT_TRUE(engine->Register(std::move(entry)).ok());
}

// ---------------------------------------------------------------------------
// The tentpole property: a cold Π in flight never head-of-line-blocks warm
// traffic. The blocking witness holds Π open for the whole middle of the
// test, so every warm completion observed there is *proof* the workers
// kept draining instead of parking on the shared_future.
// ---------------------------------------------------------------------------

TEST(ServePipelineTest, WarmItemsCompleteWhileColdPiInFlight) {
  auto engine = MakeEngine();
  BlockingPi pi;
  RegisterBlocking(engine.get(), &pi);

  // Pre-warm a list-membership part so its batches are pure snapshot hits.
  const std::string warm_data = MemberData(64, {1, 2, 3});
  const std::vector<std::string> warm_queries = {"1", "2", "63"};
  ASSERT_TRUE(
      engine->AnswerBatch("list-membership", warm_data, warm_queries).ok());

  PipelineOptions options;
  options.threads = 2;
  options.preparers = 1;
  ServePipeline pipeline(engine.get(), options);

  std::atomic<bool> cold_done{false};
  ServeWorkItem cold;
  cold.problem = "blocking-echo";
  cold.data = "base";
  cold.queries = {"pi:base"};
  ASSERT_TRUE(pipeline
                  .Submit(std::move(cold),
                          [&](const ItemOutcome& outcome) {
                            EXPECT_TRUE(outcome.status.ok())
                                << outcome.status.ToString();
                            EXPECT_EQ(outcome.queries, 1);
                            cold_done.store(true, std::memory_order_release);
                          })
                  .ok());
  // Π(base) is provably in flight on the preparer pool from here on.
  while (pi.computes.load() == 0) std::this_thread::yield();

  constexpr int kWarm = 64;
  std::atomic<int> warm_done{0};
  for (int i = 0; i < kWarm; ++i) {
    ServeWorkItem item;
    item.problem = "list-membership";
    item.data = warm_data;
    item.queries = warm_queries;
    ASSERT_TRUE(pipeline
                    .Submit(std::move(item),
                            [&](const ItemOutcome& outcome) {
                              EXPECT_TRUE(outcome.status.ok())
                                  << outcome.status.ToString();
                              EXPECT_GE(outcome.latency_ns, 0);
                              warm_done.fetch_add(1);
                            })
                    .ok());
  }

  // Bounded wall-clock: Π stays held, so warm completions can only happen
  // if no worker is blocked behind it. Pre-pipeline, a worker parked on
  // the in-flight future and this loop timed out.
  const auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (warm_done.load() < kWarm &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::yield();
  }
  EXPECT_EQ(warm_done.load(), kWarm)
      << "warm items head-of-line-blocked behind a cold Π";
  EXPECT_FALSE(cold_done.load(std::memory_order_acquire));
  EXPECT_EQ(pi.computes.load(), 1);

  pi.release.store(true, std::memory_order_release);
  pipeline.Drain();
  EXPECT_TRUE(cold_done.load(std::memory_order_acquire));

  const auto report = pipeline.report();
  EXPECT_EQ(report.errors, 0) << report.first_error.ToString();
  EXPECT_EQ(report.batches, kWarm + 1);
  EXPECT_EQ(report.pi_runs, 1);
  EXPECT_EQ(report.shed, 0);
  EXPECT_EQ(report.deadline_expired, 0);
  EXPECT_GT(report.preparer_busy_ns, 0);
}

// ---------------------------------------------------------------------------
// Deadlines: an item whose deadline passed before dequeue completes with
// DeadlineExceeded and burns no answer work.
// ---------------------------------------------------------------------------

TEST(ServePipelineTest, ExpiredDeadlineCompletesWithDeadlineExceeded) {
  auto engine = MakeEngine();
  PipelineOptions options;
  options.threads = 1;
  options.preparers = 1;
  ServePipeline pipeline(engine.get(), options);

  ServeWorkItem item;
  item.problem = "list-membership";
  item.data = MemberData(16, {1, 2});
  item.queries = {"1"};

  Status got = Status::OK();
  std::atomic<bool> done{false};
  ASSERT_TRUE(pipeline
                  .Submit(std::move(item),
                          [&](const ItemOutcome& outcome) {
                            got = outcome.status;
                            EXPECT_EQ(outcome.queries, 0);
                            done.store(true, std::memory_order_release);
                          },
                          /*client=*/0,
                          /*deadline_ns=*/MonotonicNowNanos() - 1)
                  .ok());
  pipeline.Drain();

  EXPECT_TRUE(done.load(std::memory_order_acquire));
  EXPECT_EQ(got.code(), StatusCode::kDeadlineExceeded) << got.ToString();
  const auto report = pipeline.report();
  EXPECT_EQ(report.deadline_expired, 1);
  EXPECT_EQ(report.batches, 0);
  EXPECT_EQ(report.errors, 0);
}

// ---------------------------------------------------------------------------
// Load shedding, Submit face: past queue_depth the call returns
// Unavailable synchronously and the callback never fires.
// ---------------------------------------------------------------------------

TEST(ServePipelineTest, SubmitShedsWithUnavailableWhenGlobalQueueFull) {
  auto engine = MakeEngine();
  BlockingPi pi;
  RegisterBlocking(engine.get(), &pi);

  PipelineOptions options;
  options.threads = 1;
  options.preparers = 1;
  options.queue_depth = 1;
  ServePipeline pipeline(engine.get(), options);

  // One admitted-but-incomplete item fills the depth-1 queue: it can only
  // complete once Π(base) is released, so the next Submit must shed.
  std::atomic<bool> first_done{false};
  ServeWorkItem first;
  first.problem = "blocking-echo";
  first.data = "base";
  first.queries = {"pi:base"};
  ASSERT_TRUE(pipeline
                  .Submit(std::move(first),
                          [&](const ItemOutcome& outcome) {
                            EXPECT_TRUE(outcome.status.ok());
                            first_done.store(true, std::memory_order_release);
                          })
                  .ok());

  std::atomic<bool> second_callback_ran{false};
  ServeWorkItem second;
  second.problem = "blocking-echo";
  second.data = "other";
  second.queries = {"pi:other"};
  const Status shed = pipeline.Submit(
      std::move(second),
      [&](const ItemOutcome&) { second_callback_ran.store(true); });
  EXPECT_EQ(shed.code(), StatusCode::kUnavailable) << shed.ToString();

  pi.release.store(true, std::memory_order_release);
  pipeline.Drain();
  EXPECT_TRUE(first_done.load(std::memory_order_acquire));
  EXPECT_FALSE(second_callback_ran.load());

  const auto report = pipeline.report();
  EXPECT_EQ(report.shed, 1);
  EXPECT_EQ(report.errors, 0);  // shed items are not errors
  EXPECT_EQ(report.batches, 1);
}

TEST(ServePipelineTest, PerClientDepthShedsOnlyTheGreedyClient) {
  auto engine = MakeEngine();
  BlockingPi pi;
  RegisterBlocking(engine.get(), &pi);
  const std::string warm_data = MemberData(16, {3});
  ASSERT_TRUE(engine
                  ->AnswerBatch("list-membership", warm_data,
                                std::vector<std::string>{"3"})
                  .ok());

  PipelineOptions options;
  options.threads = 1;
  options.preparers = 1;
  options.per_client_depth = 1;
  ServePipeline pipeline(engine.get(), options);

  // Client 1 parks one cold item (incomplete until release) — at its depth.
  ServeWorkItem first;
  first.problem = "blocking-echo";
  first.data = "base";
  first.queries = {"pi:base"};
  ASSERT_TRUE(pipeline.Submit(std::move(first), nullptr, /*client=*/1).ok());

  ServeWorkItem second;
  second.problem = "list-membership";
  second.data = warm_data;
  second.queries = {"3"};
  const Status shed =
      pipeline.Submit(std::move(second), nullptr, /*client=*/1);
  EXPECT_EQ(shed.code(), StatusCode::kUnavailable);

  // A different client is admitted fine.
  std::atomic<bool> other_done{false};
  ServeWorkItem third;
  third.problem = "list-membership";
  third.data = warm_data;
  third.queries = {"3"};
  ASSERT_TRUE(pipeline
                  .Submit(std::move(third),
                          [&](const ItemOutcome& outcome) {
                            EXPECT_TRUE(outcome.status.ok());
                            other_done.store(true, std::memory_order_release);
                          },
                          /*client=*/2)
                  .ok());

  pi.release.store(true, std::memory_order_release);
  pipeline.Drain();
  EXPECT_TRUE(other_done.load(std::memory_order_acquire));
  EXPECT_EQ(pipeline.report().shed, 1);
}

// ---------------------------------------------------------------------------
// Load shedding, workload face: cold items past queue_depth are shed at
// park time (warm items never queue, so depth only gates the cold side).
// ---------------------------------------------------------------------------

TEST(ServePipelineTest, WorkloadColdItemsShedWhenPendingQueueFull) {
  auto engine = MakeEngine();
  BlockingPi pi;
  RegisterBlocking(engine.get(), &pi);

  // A pre-warmed part used as a sequencing witness below: the single
  // worker processes a claimed workload span in order, so a snapshot hit
  // on the *last* index proves the earlier cold indexes already ran.
  const std::string warm_data = MemberData(16, {5});
  ASSERT_TRUE(engine
                  ->AnswerBatch("list-membership", warm_data,
                                std::vector<std::string>{"5"})
                  .ok());
  ASSERT_EQ(engine->store().stats().hits, 0);

  PipelineOptions options;
  options.threads = 1;
  options.preparers = 1;
  options.queue_depth = 1;
  ServePipeline pipeline(engine.get(), options);

  // Occupy the pending queue: one parked cold item whose Π is held open.
  ServeWorkItem holder;
  holder.problem = "blocking-echo";
  holder.data = "base";
  holder.queries = {"pi:base"};
  ASSERT_TRUE(pipeline.Submit(std::move(holder)).ok());
  while (pi.computes.load() == 0) std::this_thread::yield();
  // parked >= 1 stays true until release: Π(base) gates the only drain.

  std::vector<ServeWorkItem> workload(3);
  workload[0].problem = "blocking-echo";
  workload[0].data = "cold-b";
  workload[0].queries = {"pi:cold-b"};
  workload[1].problem = "blocking-echo";
  workload[1].data = "cold-c";
  workload[1].queries = {"pi:cold-c"};
  workload[2].problem = "list-membership";  // the sequencing witness
  workload[2].data = warm_data;
  workload[2].queries = {"5"};
  pipeline.SubmitWorkload(workload, /*repeat=*/1);

  // The witness hit lands strictly after both cold items were shed (same
  // worker, in claim order), so Π(base) provably stayed in flight — and
  // the pending queue at depth — across both shed decisions.
  while (engine->store().stats().hits == 0) std::this_thread::yield();
  pi.release.store(true, std::memory_order_release);
  pipeline.Drain();

  const auto report = pipeline.report();
  EXPECT_EQ(report.shed, 2);         // both workload colds shed at park
  EXPECT_EQ(report.batches, 2);      // the witness and the holder answered
  EXPECT_EQ(report.pi_runs, 1);
  EXPECT_EQ(pi.computes.load(), 1);  // shed items never reached Π
  EXPECT_EQ(report.errors, 0);
}

// ---------------------------------------------------------------------------
// sort_probes: batch-locality scheduling is answer-identical to arrival
// order — the permutation must round-trip exactly.
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Version-race orphan fix: a unit addressing a data part that a Δ-patch
// re-keyed away (the exact state a parked unit wakes up to) must answer
// warm through the store's lineage resolution — not re-park, burn its
// requeues, and fall back to a blocking second Π.
// ---------------------------------------------------------------------------

TEST(ServePipelineTest, ReKeyedPartAnswersThroughLineageNotASecondPi) {
  PreparedStore::Options store_options;
  store_options.versions = 1;  // worst case: the old version is erased
  auto engine = MakeEngine(store_options);
  std::atomic<int> computes{0};
  ProblemEntry entry;
  entry.name = "echo-delta";
  entry.paper_anchor = "test-only";
  entry.has_language = true;
  entry.witness.name = "echo";
  entry.witness.preprocess = [&](const std::string& data,
                                 CostMeter*) -> Result<std::string> {
    computes.fetch_add(1);
    return "pi:" + data;
  };
  entry.witness.answer = [](const std::string& prepared,
                            const std::string& query,
                            CostMeter*) -> Result<bool> {
    return prepared.find(query) != std::string::npos;
  };
  entry.apply_delta_to_data =
      [](const std::string& data, const DeltaBatch&) -> Result<std::string> {
    return data + "+d";
  };
  entry.prepared_patch = [](std::string* prepared, const DeltaBatch&,
                            CostMeter*) {
    *prepared += "+d";
    return Status::OK();
  };
  ASSERT_TRUE(engine->Register(std::move(entry)).ok());

  // Warm "base", then re-key it away: digest("base") now resolves only
  // through the lineage record to the patched "base+d" entry.
  ASSERT_TRUE(engine
                  ->AnswerBatch("echo-delta", "base",
                                std::vector<std::string>{"pi:base"})
                  .ok());
  auto outcome = engine->ApplyDelta("echo-delta", "base", DeltaBatch{});
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->patched);
  ASSERT_EQ(computes.load(), 1);

  PipelineOptions options;
  options.threads = 1;
  options.preparers = 1;
  ServePipeline pipeline(engine.get(), options);
  std::atomic<bool> served{false};
  ServeWorkItem item;
  item.problem = "echo-delta";
  item.data = "base";  // the pre-delta part a parked unit would still hold
  item.queries = {"pi:base+d"};
  ASSERT_TRUE(pipeline
                  .Submit(std::move(item),
                          [&](const ItemOutcome& outcome) {
                            EXPECT_TRUE(outcome.status.ok())
                                << outcome.status.ToString();
                            served.store(true, std::memory_order_release);
                          })
                  .ok());
  pipeline.Drain();
  EXPECT_TRUE(served.load(std::memory_order_acquire));

  const auto report = pipeline.report();
  EXPECT_EQ(report.errors, 0) << report.first_error.ToString();
  EXPECT_EQ(report.batches, 1);
  EXPECT_EQ(report.pi_runs, 0) << "stale unit re-ran Π instead of resolving";
  EXPECT_EQ(computes.load(), 1);
  EXPECT_EQ(engine->store().stats().lineage_resolves, 1);
}

TEST(AnswerOptionsTest, SortProbesMatchesArrivalOrderAnswers) {
  auto engine = MakeEngine();
  Rng rng(99);
  const int64_t universe = 1 << 16;
  std::vector<int64_t> list;
  for (int i = 0; i < 4096; ++i) {
    list.push_back(
        static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(universe))));
  }
  const std::string data = MemberData(universe, list);

  const size_t n = AnswerOptions::kSortProbesMinBatch + 1000;
  std::vector<std::string> queries;
  for (size_t i = 0; i < n; ++i) {
    queries.push_back(std::to_string(
        static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(universe)))));
  }

  auto arrival = engine->AnswerBatch("list-membership", data, queries);
  ASSERT_TRUE(arrival.ok()) << arrival.status().ToString();

  AnswerOptions sorted_options;
  sorted_options.sort_probes = true;
  auto sorted =
      engine->AnswerBatch("list-membership", data, queries, sorted_options);
  ASSERT_TRUE(sorted.ok()) << sorted.status().ToString();

  EXPECT_EQ(sorted->answers, arrival->answers);
  EXPECT_EQ(sorted->mode, arrival->mode);
  EXPECT_EQ(sorted->answers.size(), n);

  // Below the threshold the sort must not engage (arrival order is the
  // contract for small batches) — and answers still agree trivially.
  std::vector<std::string> small(queries.begin(), queries.begin() + 64);
  auto small_arrival = engine->AnswerBatch("list-membership", data, small);
  auto small_sorted =
      engine->AnswerBatch("list-membership", data, small, sorted_options);
  ASSERT_TRUE(small_arrival.ok());
  ASSERT_TRUE(small_sorted.ok());
  EXPECT_EQ(small_sorted->answers, small_arrival->answers);
}

// ---------------------------------------------------------------------------
// TSan suite: submitters racing the bulk-workload cursor, the preparer
// pool, and byte-budget eviction (entries get evicted between publish and
// requeue, exercising the max_requeues fallback) — every admitted item
// must complete exactly once with no data race.
// ---------------------------------------------------------------------------

TEST(ServePipelineStressTest, SubmittersRacePreparersAndEviction) {
  PreparedStore::Options store_options;
  store_options.shards = 4;
  store_options.byte_budget = 4096;  // small: constant eviction pressure
  auto engine = MakeEngine(store_options);

  constexpr int kParts = 8;
  constexpr int kSubmitters = 3;
  constexpr int kItemsPerSubmitter = 48;
  Rng rng(2718);
  std::vector<std::string> parts;
  std::vector<std::string> queries;
  for (int p = 0; p < kParts; ++p) {
    std::vector<int64_t> list;
    for (int i = 0; i < 128; ++i) {
      list.push_back(static_cast<int64_t>(rng.NextBelow(512)));
    }
    parts.push_back(MemberData(512, list));
  }
  for (int q = 0; q < 8; ++q) {
    queries.push_back(std::to_string(rng.NextBelow(512)));
  }

  PipelineOptions options;
  options.threads = 3;
  options.preparers = 2;
  ServePipeline pipeline(engine.get(), options);

  // The bulk face races the Submit face: same pipeline, same store.
  std::vector<ServeWorkItem> workload;
  for (int i = 0; i < 16; ++i) {
    ServeWorkItem item;
    item.problem = "list-membership";
    item.data = parts[static_cast<size_t>(i) % kParts];
    item.queries = queries;
    workload.push_back(std::move(item));
  }
  pipeline.SubmitWorkload(workload, /*repeat=*/4);

  std::atomic<int64_t> completed_ok{0};
  std::atomic<int64_t> completed_err{0};
  std::atomic<int64_t> admitted{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      Rng local(static_cast<uint64_t>(s) * 7919 + 1);
      for (int i = 0; i < kItemsPerSubmitter; ++i) {
        ServeWorkItem item;
        item.problem = "list-membership";
        item.data =
            parts[static_cast<size_t>(local.NextZipf(kParts, /*theta=*/0.99))];
        item.queries = queries;
        const auto status = pipeline.Submit(
            std::move(item), [&](const ItemOutcome& outcome) {
              (outcome.status.ok() ? completed_ok : completed_err)
                  .fetch_add(1);
            });
        ASSERT_TRUE(status.ok()) << status.ToString();  // no depth: no shed
        admitted.fetch_add(1);
      }
    });
  }
  for (auto& t : submitters) t.join();
  pipeline.Drain();

  EXPECT_EQ(completed_err.load(), 0);
  EXPECT_EQ(completed_ok.load(), admitted.load());
  const auto report = pipeline.report();
  EXPECT_EQ(report.errors, 0) << report.first_error.ToString();
  EXPECT_EQ(report.batches,
            admitted.load() + static_cast<int64_t>(workload.size()) * 4);
  EXPECT_EQ(report.shed, 0);
  // Eviction re-runs Π, so pi_runs >= the distinct-part floor — but every
  // run must have been charged through a preparer or the bounded fallback.
  EXPECT_GE(report.pi_runs, kParts);
}

}  // namespace
}  // namespace engine
}  // namespace pitract
