#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "common/codec.h"
#include "common/cost_meter.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/serde.h"
#include "common/status.h"

namespace pitract {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing key 42");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing key 42");
  EXPECT_EQ(s.ToString(), "NotFound: missing key 42");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::Internal("x"), Status::Internal("x"));
  EXPECT_FALSE(Status::Internal("x") == Status::Internal("y"));
  EXPECT_FALSE(Status::Internal("x") == Status::InvalidArgument("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int code = 0; code <= static_cast<int>(StatusCode::kInternal); ++code) {
    EXPECT_NE(StatusCodeToString(static_cast<StatusCode>(code)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(r.value_or(-1), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::OutOfRange("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  PITRACT_ASSIGN_OR_RETURN(int half, Half(x));
  return Half(half);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  auto bad = Quarter(6);  // 6/2 = 3, odd
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// CostMeter
// ---------------------------------------------------------------------------

TEST(CostMeterTest, SerialAddsWorkAndDepth) {
  CostMeter m;
  m.AddSerial(5);
  m.AddSerial(3);
  EXPECT_EQ(m.work(), 8);
  EXPECT_EQ(m.depth(), 8);
}

TEST(CostMeterTest, ParallelAddsSpanOnly) {
  CostMeter m;
  m.AddParallel(/*total_work=*/100, /*span=*/4);
  EXPECT_EQ(m.work(), 100);
  EXPECT_EQ(m.depth(), 4);
}

TEST(CostMeterTest, SequentialCompositionAddsBoth) {
  Cost a{10, 2};
  Cost b{5, 3};
  Cost c = a + b;
  EXPECT_EQ(c.work, 15);
  EXPECT_EQ(c.depth, 5);
}

TEST(CostMeterTest, ResetClearsEverything) {
  CostMeter m;
  m.AddSerial(4);
  m.AddBytesRead(100);
  m.AddBytesWritten(50);
  m.Reset();
  EXPECT_EQ(m.work(), 0);
  EXPECT_EQ(m.depth(), 0);
  EXPECT_EQ(m.bytes_read(), 0);
  EXPECT_EQ(m.bytes_written(), 0);
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicInSeed) {
  Rng a(42), b(42), c(43);
  bool all_equal = true;
  bool any_diff_from_c = false;
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next();
    uint64_t vb = b.Next();
    uint64_t vc = c.Next();
    all_equal &= va == vb;
    any_diff_from_c |= va != vc;
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_from_c);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u) << "all 7 values should occur";
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ZipfIsSkewed) {
  Rng rng(13);
  int64_t low_ranks = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.NextZipf(1000, 0.9) < 10) ++low_ranks;
  }
  // Under uniform sampling P(rank < 10) = 1%; zipf(0.9) concentrates far
  // more mass there.
  EXPECT_GT(low_ranks, kDraws / 20);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(17);
  auto p = rng.Permutation(100);
  std::set<int64_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 99);
}

// ---------------------------------------------------------------------------
// codec
// ---------------------------------------------------------------------------

TEST(CodecTest, EscapeRoundTrip) {
  const std::string nasty = "a#b@c\\d##@@";
  auto back = codec::Unescape(codec::Escape(nasty));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, nasty);
}

TEST(CodecTest, EscapedStringHasNoBareDelimiters) {
  const std::string escaped = codec::Escape("x#y@z");
  for (size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] == '#' || escaped[i] == '@') {
      ASSERT_GT(i, 0u);
      EXPECT_EQ(escaped[i - 1], '\\');
    }
  }
}

TEST(CodecTest, FieldsRoundTrip) {
  std::vector<std::string> fields = {"plain", "with#hash", "with@at",
                                     "back\\slash", ""};
  auto back = codec::DecodeFields(codec::EncodeFields(fields));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, fields);
}

TEST(CodecTest, NestedFieldEncodingsRoundTrip) {
  std::string inner = codec::EncodeFields({"a", "b#c"});
  auto outer = codec::DecodeFields(codec::EncodeFields({inner, "tail"}));
  ASSERT_TRUE(outer.ok());
  ASSERT_EQ(outer->size(), 2u);
  EXPECT_EQ((*outer)[0], inner);
  auto inner_back = codec::DecodeFields((*outer)[0]);
  ASSERT_TRUE(inner_back.ok());
  EXPECT_EQ((*inner_back)[1], "b#c");
}

TEST(CodecTest, IntsRoundTrip) {
  std::vector<int64_t> values = {0, -1, 42, 9223372036854775807LL,
                                 -9223372036854775807LL};
  auto back = codec::DecodeInts(codec::EncodeInts(values));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, values);
}

TEST(CodecTest, EmptyIntsRoundTrip) {
  auto back = codec::DecodeInts(codec::EncodeInts({}));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(CodecTest, MalformedIntsRejected) {
  EXPECT_FALSE(codec::DecodeInts("1,two,3").ok());
  EXPECT_FALSE(codec::DecodeInts("1,,3").ok());
}

TEST(CodecTest, DanglingEscapeRejected) {
  EXPECT_FALSE(codec::Unescape("abc\\").ok());
  EXPECT_FALSE(codec::DecodeFields("abc\\").ok());
}

TEST(CodecTest, DecodeFieldsViewSlicesWithoutCopies) {
  const std::string encoded = codec::EncodeFields({"abc", "", "12,34"});
  auto views = codec::DecodeFieldsView(encoded);
  ASSERT_TRUE(views.has_value());
  ASSERT_EQ(views->size(), 3u);
  EXPECT_EQ((*views)[0], "abc");
  EXPECT_EQ((*views)[1], "");
  EXPECT_EQ((*views)[2], "12,34");
  // Views alias the input buffer: zero per-field copies.
  EXPECT_EQ((*views)[0].data(), encoded.data());
}

TEST(CodecTest, DecodeFieldsViewMatchesDecodeFieldsWhenEscapeFree) {
  for (const std::string encoded : {std::string("a#b#c"), std::string(""),
                                    std::string("#"), std::string("1,2#3")}) {
    auto views = codec::DecodeFieldsView(encoded);
    auto copies = codec::DecodeFields(encoded);
    ASSERT_TRUE(views.has_value()) << encoded;
    ASSERT_TRUE(copies.ok()) << encoded;
    ASSERT_EQ(views->size(), copies->size()) << encoded;
    for (size_t i = 0; i < views->size(); ++i) {
      EXPECT_EQ((*views)[i], (*copies)[i]) << encoded;
    }
  }
}

TEST(CodecTest, DecodeFieldsViewDeclinesEscapedInput) {
  // Any escape sequence means slices would need unescaping: the zero-copy
  // path declines and callers fall back to DecodeFields.
  EXPECT_FALSE(codec::DecodeFieldsView(codec::EncodeFields({"da#ta", "q"}))
                   .has_value());
  EXPECT_FALSE(codec::DecodeFieldsView("abc\\").has_value());
}

TEST(CodecTest, PadPairRoundTrip) {
  auto back = codec::UnpadPair(codec::PadPair("left@x", "right#y"));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->first, "left@x");
  EXPECT_EQ(back->second, "right#y");
}

TEST(CodecTest, PadPairWithEmptyParts) {
  auto back = codec::UnpadPair(codec::PadPair("", ""));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->first, "");
  EXPECT_EQ(back->second, "");
}

TEST(CodecTest, UnpadWithoutPadSymbolFails) {
  EXPECT_FALSE(codec::UnpadPair("no-symbol-here").ok());
}

// Property sweep: random strings survive Escape/Unescape and PadPair.
class CodecPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodecPropertyTest, RandomRoundTrips) {
  Rng rng(GetParam());
  const char alphabet[] = "ab#@\\,01";
  for (int trial = 0; trial < 50; ++trial) {
    std::string left, right;
    for (uint64_t i = rng.NextBelow(20); i > 0; --i) {
      left.push_back(alphabet[rng.NextBelow(sizeof(alphabet) - 1)]);
    }
    for (uint64_t i = rng.NextBelow(20); i > 0; --i) {
      right.push_back(alphabet[rng.NextBelow(sizeof(alphabet) - 1)]);
    }
    auto pair_back = codec::UnpadPair(codec::PadPair(left, right));
    ASSERT_TRUE(pair_back.ok());
    EXPECT_EQ(pair_back->first, left);
    EXPECT_EQ(pair_back->second, right);
    auto fields_back = codec::DecodeFields(codec::EncodeFields({left, right}));
    ASSERT_TRUE(fields_back.ok());
    EXPECT_EQ((*fields_back)[0], left);
    EXPECT_EQ((*fields_back)[1], right);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// serde: length-prefixed binary framing (PreparedStore spill files)
// ---------------------------------------------------------------------------

TEST(SerdeTest, IntegersRoundTripLittleEndian) {
  std::string buffer;
  serde::PutU32(&buffer, 0x31544950u);
  serde::PutU64(&buffer, 0xdeadbeefcafef00dull);
  serde::PutU32(&buffer, 0);
  EXPECT_EQ(buffer.size(), 16u);
  EXPECT_EQ(buffer[0], 'P');  // little-endian: low byte first

  serde::Reader reader(buffer);
  auto a = reader.ReadU32();
  auto b = reader.ReadU64();
  auto c = reader.ReadU32();
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(*a, 0x31544950u);
  EXPECT_EQ(*b, 0xdeadbeefcafef00dull);
  EXPECT_EQ(*c, 0u);
  EXPECT_TRUE(reader.exhausted());
}

TEST(SerdeTest, BytesRoundTripIncludingEmbeddedDelimiters) {
  // serde is the container layer: payloads may contain every byte the
  // Σ*-codec treats as special ('#', '@', '\\', NUL) without escaping.
  const std::string payload("a#b@c\\d\0e", 9);
  std::string buffer;
  serde::PutBytes(&buffer, payload);
  serde::PutBytes(&buffer, "");
  serde::Reader reader(buffer);
  auto first = reader.ReadBytes();
  auto second = reader.ReadBytes();
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(*first, payload);
  EXPECT_EQ(second->size(), 0u);
  EXPECT_TRUE(reader.exhausted());
}

TEST(SerdeTest, TruncatedFramesFailWithoutConsuming) {
  std::string buffer;
  serde::PutU64(&buffer, 1000);  // length prefix promising 1000 bytes
  buffer += "only-a-few";
  serde::Reader reader(buffer);
  auto bytes = reader.ReadBytes();
  EXPECT_FALSE(bytes.ok());
  EXPECT_EQ(bytes.status().code(), StatusCode::kOutOfRange);
  // The failed read left the cursor where it was.
  auto length = reader.ReadU64();
  ASSERT_TRUE(length.ok());
  EXPECT_EQ(*length, 1000u);

  serde::Reader empty("");
  EXPECT_FALSE(empty.ReadU32().ok());
  EXPECT_FALSE(empty.ReadU64().ok());
  EXPECT_FALSE(empty.ReadBytes().ok());
}

// Randomized serde property suite: arbitrary frame sequences must
// round-trip exactly, and *every* truncation or length-prefix corruption
// of a well-formed buffer must fail cleanly — no over-read past the
// buffer, no partially-consumed cursor, no garbage value.

namespace {

/// One randomly drawn frame of a serde buffer.
struct Frame {
  enum class Kind { kU32, kU64, kBytes } kind;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  std::string bytes;
};

std::vector<Frame> RandomFrames(Rng* rng) {
  std::vector<Frame> frames;
  const int count = static_cast<int>(rng->NextBelow(9));
  for (int i = 0; i < count; ++i) {
    Frame frame;
    switch (rng->NextBelow(3)) {
      case 0:
        frame.kind = Frame::Kind::kU32;
        frame.u32 = static_cast<uint32_t>(rng->Next());
        break;
      case 1:
        frame.kind = Frame::Kind::kU64;
        frame.u64 = rng->Next();
        break;
      default: {
        frame.kind = Frame::Kind::kBytes;
        const size_t len = rng->NextBelow(48);
        frame.bytes.reserve(len);
        for (size_t b = 0; b < len; ++b) {
          frame.bytes.push_back(static_cast<char>(rng->NextBelow(256)));
        }
        break;
      }
    }
    frames.push_back(std::move(frame));
  }
  return frames;
}

std::string EncodeFrames(const std::vector<Frame>& frames) {
  std::string buffer;
  for (const Frame& frame : frames) {
    switch (frame.kind) {
      case Frame::Kind::kU32:
        serde::PutU32(&buffer, frame.u32);
        break;
      case Frame::Kind::kU64:
        serde::PutU64(&buffer, frame.u64);
        break;
      case Frame::Kind::kBytes:
        serde::PutBytes(&buffer, frame.bytes);
        break;
    }
  }
  return buffer;
}

/// Decodes `buffer` against the frame schema. Returns how many frames
/// decoded before the first failure (all of them on a healthy buffer);
/// EXPECTs that successes match the originals and that the first failure
/// stops the schema walk cleanly (failed reads must not consume).
size_t DecodeAndCheckPrefix(const std::vector<Frame>& frames,
                            std::string_view buffer) {
  serde::Reader reader(buffer);
  for (size_t i = 0; i < frames.size(); ++i) {
    const Frame& frame = frames[i];
    const size_t before = reader.remaining();
    switch (frame.kind) {
      case Frame::Kind::kU32: {
        auto value = reader.ReadU32();
        if (!value.ok()) {
          EXPECT_EQ(reader.remaining(), before) << "failed read consumed";
          return i;
        }
        EXPECT_EQ(*value, frame.u32);
        break;
      }
      case Frame::Kind::kU64: {
        auto value = reader.ReadU64();
        if (!value.ok()) {
          EXPECT_EQ(reader.remaining(), before) << "failed read consumed";
          return i;
        }
        EXPECT_EQ(*value, frame.u64);
        break;
      }
      case Frame::Kind::kBytes: {
        auto value = reader.ReadBytes();
        if (!value.ok()) {
          EXPECT_EQ(reader.remaining(), before) << "failed read consumed";
          return i;
        }
        EXPECT_EQ(*value, frame.bytes);
        break;
      }
    }
  }
  return frames.size();
}

}  // namespace

class SerdePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerdePropertyTest, ArbitraryFrameSequencesRoundTrip) {
  Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    const std::vector<Frame> frames = RandomFrames(&rng);
    const std::string buffer = EncodeFrames(frames);
    EXPECT_EQ(DecodeAndCheckPrefix(frames, buffer), frames.size());
    serde::Reader reader(buffer);
    // Independent full-drain walk: after the schema, nothing remains.
    for (const Frame& frame : frames) {
      switch (frame.kind) {
        case Frame::Kind::kU32: ASSERT_TRUE(reader.ReadU32().ok()); break;
        case Frame::Kind::kU64: ASSERT_TRUE(reader.ReadU64().ok()); break;
        case Frame::Kind::kBytes: ASSERT_TRUE(reader.ReadBytes().ok()); break;
      }
    }
    EXPECT_TRUE(reader.exhausted());
  }
}

TEST_P(SerdePropertyTest, EverySingleByteTruncationFailsCleanly) {
  Rng rng(GetParam() + 1000);
  for (int round = 0; round < 20; ++round) {
    std::vector<Frame> frames = RandomFrames(&rng);
    if (frames.empty()) continue;
    const std::string buffer = EncodeFrames(frames);
    for (size_t cut = 0; cut < buffer.size(); ++cut) {
      // A truncated buffer decodes some (possibly empty) prefix of the
      // frames, then fails without consuming — never yields a frame that
      // was not fully present, never walks past the end.
      const std::string_view truncated(buffer.data(), cut);
      const size_t decoded = DecodeAndCheckPrefix(frames, truncated);
      EXPECT_LT(decoded, frames.size())
          << "decoded all frames from a truncated buffer (cut=" << cut << ")";
    }
  }
}

TEST_P(SerdePropertyTest, CorruptedLengthPrefixNeverOverReads) {
  Rng rng(GetParam() + 2000);
  for (int round = 0; round < 50; ++round) {
    const size_t payload_len = rng.NextBelow(64);
    std::string payload;
    for (size_t i = 0; i < payload_len; ++i) {
      payload.push_back(static_cast<char>(rng.NextBelow(256)));
    }
    std::string buffer;
    serde::PutBytes(&buffer, payload);
    // Corrupt the u64 length prefix to a value that over-promises —
    // anything strictly larger than the real payload, up to "absurd".
    const uint64_t bogus =
        payload_len + 1 + rng.NextBelow(uint64_t{1} << 62);
    std::string corrupt = buffer;
    for (size_t i = 0; i < 8; ++i) {
      corrupt[i] = static_cast<char>((bogus >> (8 * i)) & 0xff);
    }
    serde::Reader reader(corrupt);
    auto bytes = reader.ReadBytes();
    EXPECT_FALSE(bytes.ok());
    EXPECT_EQ(bytes.status().code(), StatusCode::kOutOfRange);
    // Failing cleanly means the cursor did not move: the (bogus) length
    // is still readable as a plain integer.
    auto length = reader.ReadU64();
    ASSERT_TRUE(length.ok());
    EXPECT_EQ(*length, bogus);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerdePropertyTest,
                         ::testing::Values(11, 12, 13, 14, 15));

// ---------------------------------------------------------------------------
// CostMeter under concurrent charging (the serving layer shares meters)
// ---------------------------------------------------------------------------

TEST(CostMeterTest, ConcurrentChargesDoNotTear) {
  CostMeter meter;
  constexpr int kThreads = 8;
  constexpr int kChargesPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&meter] {
      for (int i = 0; i < kChargesPerThread; ++i) {
        meter.AddSerial(1);
        meter.AddParallel(2, 1);
        meter.AddBytesRead(3);
        meter.AddBytesWritten(4);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(meter.work(), kThreads * kChargesPerThread * 3);   // 1 + 2
  EXPECT_EQ(meter.depth(), kThreads * kChargesPerThread * 2);  // 1 + 1
  EXPECT_EQ(meter.bytes_read(), kThreads * kChargesPerThread * 3);
  EXPECT_EQ(meter.bytes_written(), kThreads * kChargesPerThread * 4);
}

}  // namespace
}  // namespace pitract
