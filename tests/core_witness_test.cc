#include <gtest/gtest.h>

#include "circuit/generators.h"
#include "common/codec.h"
#include "common/rng.h"
#include "core/problems.h"
#include "core/reduction.h"
#include "graph/generators.h"

namespace pitract {
namespace core {
namespace {

std::string RandomMemberInstance(Rng* rng, int64_t universe) {
  std::vector<int64_t> list;
  for (uint64_t i = 1 + rng->NextBelow(12); i > 0; --i) {
    list.push_back(
        static_cast<int64_t>(rng->NextBelow(static_cast<uint64_t>(universe))));
  }
  return MakeMemberInstance(
      universe, list,
      static_cast<int64_t>(rng->NextBelow(static_cast<uint64_t>(universe))));
}

// ---------------------------------------------------------------------------
// Definition 1: each witness implements its language of pairs.
// ---------------------------------------------------------------------------

TEST(WitnessTest, MemberWitnessCorrect) {
  Rng rng(160);
  LanguageOfPairs s(ListMembershipProblem(), MemberFactorization());
  PiWitness w = MemberWitness();
  for (int trial = 0; trial < 50; ++trial) {
    std::string x = RandomMemberInstance(&rng, 20);
    EXPECT_TRUE(VerifyWitnessOnInstance(s, w, x).ok()) << x;
  }
}

TEST(WitnessTest, ConnWitnessCorrect) {
  Rng rng(161);
  LanguageOfPairs s(ConnectivityProblem(), ConnFactorization());
  PiWitness w = ConnWitness();
  for (int trial = 0; trial < 30; ++trial) {
    graph::Graph g = graph::ErdosRenyi(20, 15, false, &rng);
    auto a = static_cast<graph::NodeId>(rng.NextBelow(20));
    auto b = static_cast<graph::NodeId>(rng.NextBelow(20));
    EXPECT_TRUE(VerifyWitnessOnInstance(s, w, MakeConnInstance(g, a, b)).ok());
  }
}

TEST(WitnessTest, BdsWitnessCorrect) {
  Rng rng(162);
  LanguageOfPairs s(BdsProblem(), BdsFactorization());
  PiWitness w = BdsWitness();
  for (int trial = 0; trial < 30; ++trial) {
    graph::Graph g = graph::ErdosRenyi(24, 40, false, &rng);
    auto a = static_cast<graph::NodeId>(rng.NextBelow(24));
    auto b = static_cast<graph::NodeId>(rng.NextBelow(24));
    EXPECT_TRUE(VerifyWitnessOnInstance(s, w, MakeBdsInstance(g, a, b)).ok());
  }
}

TEST(WitnessTest, GvpWitnessCorrect) {
  Rng rng(163);
  LanguageOfPairs s(GateValueProblem(), GvpFactorization());
  PiWitness w = GvpWitness();
  for (int trial = 0; trial < 30; ++trial) {
    circuit::CircuitGenOptions options;
    options.num_inputs = 5;
    options.num_gates = 32;
    auto instance = circuit::RandomCvpInstance(options, &rng);
    auto gate = static_cast<circuit::GateId>(
        rng.NextBelow(static_cast<uint64_t>(instance.circuit.num_gates())));
    EXPECT_TRUE(
        VerifyWitnessOnInstance(s, w, MakeGvpInstance(instance, gate)).ok());
  }
}

TEST(WitnessTest, CvpEmptyDataWitnessCorrectButDeep) {
  Rng rng(164);
  LanguageOfPairs s(CvpProblem(), EmptyDataFactorization());
  PiWitness w = CvpEmptyDataWitness();
  circuit::CircuitGenOptions options;
  options.num_gates = 512;
  options.deep = true;
  for (int trial = 0; trial < 10; ++trial) {
    auto instance = circuit::RandomCvpInstance(options, &rng);
    std::string x = MakeCvpInstanceString(instance);
    EXPECT_TRUE(VerifyWitnessOnInstance(s, w, x).ok());
  }
  // The Theorem 9 point: under Y0 the *query step* carries the whole
  // evaluation — its depth grows with the circuit, unlike every real
  // witness above.
  auto shallow_instance = circuit::RandomCvpInstance(
      {.num_inputs = 8, .num_gates = 64, .deep = true}, &rng);
  auto deep_instance = circuit::RandomCvpInstance(
      {.num_inputs = 8, .num_gates = 4096, .deep = true}, &rng);
  CostMeter shallow_m, deep_m;
  auto pre = w.preprocess("", nullptr);
  ASSERT_TRUE(pre.ok());
  ASSERT_TRUE(
      w.answer(*pre, MakeCvpInstanceString(shallow_instance), &shallow_m).ok());
  ASSERT_TRUE(
      w.answer(*pre, MakeCvpInstanceString(deep_instance), &deep_m).ok());
  EXPECT_GT(deep_m.depth(), 10 * shallow_m.depth());
}

TEST(WitnessTest, BdsWitnessAnswerDepthIsLogarithmic) {
  Rng rng(165);
  PiWitness w = BdsWitness();
  graph::Graph g = graph::ErdosRenyi(1 << 10, 1 << 11, false, &rng);
  auto data = BdsFactorization().pi1(MakeBdsInstance(g, 0, 1));
  ASSERT_TRUE(data.ok());
  auto prepared = w.preprocess(*data, nullptr);
  ASSERT_TRUE(prepared.ok());
  CostMeter m;
  ASSERT_TRUE(w.answer(*prepared, codec::EncodeFields({"5", "9"}), &m).ok());
  EXPECT_EQ(m.depth(), 2 * (10 + 1)) << "two binary searches on |M| = 2^10";
}

// ---------------------------------------------------------------------------
// Lemma 3: transported witnesses answer the source problem.
// ---------------------------------------------------------------------------

TEST(TransportTest, BdsWitnessSolvesConnectivity) {
  Rng rng(166);
  auto transported = Transport(ConnToBdsReduction(), BdsWitness());
  LanguageOfPairs s(ConnectivityProblem(), TrivialFactorization());
  for (int trial = 0; trial < 30; ++trial) {
    graph::Graph g = graph::ErdosRenyi(20, 18, false, &rng);
    auto a = static_cast<graph::NodeId>(rng.NextBelow(20));
    auto b = static_cast<graph::NodeId>(rng.NextBelow(20));
    std::string x = MakeConnInstance(g, a, b);
    EXPECT_TRUE(VerifyWitnessOnInstance(s, transported, x).ok()) << x;
  }
}

TEST(TransportTest, ComposedReductionSolvesMembershipThroughBds) {
  // Member ≤ Conn ≤ BDS (Lemma 2), then Lemma 3 pulls the BDS witness all
  // the way back: list membership answered by a breadth-depth search rank
  // array. This is the Theorem 5 pipeline end to end.
  Rng rng(167);
  auto composed = Compose(MemberToConnReduction(), ConnToBdsReduction());
  auto witness = Transport(composed, BdsWitness());
  LanguageOfPairs s(ListMembershipProblem(), composed.source_factorization);
  for (int trial = 0; trial < 40; ++trial) {
    std::string x = RandomMemberInstance(&rng, 12);
    EXPECT_TRUE(VerifyWitnessOnInstance(s, witness, x).ok()) << x;
  }
}

TEST(TransportTest, TransportFPullsWitnessAcrossFReduction) {
  // GVP-style: answer original CVP pairs through the NAND-rewritten
  // circuit using the generic TransportF plumbing with a CVP witness on
  // the target side.
  Rng rng(168);
  PiWitness nand_side;
  nand_side.name = "evaluate-nand-circuit";
  nand_side.preprocess = [](const std::string& data,
                            CostMeter*) -> Result<std::string> {
    return data;  // keep the circuit
  };
  nand_side.answer = [](const std::string& prepared, const std::string& query,
                        CostMeter* meter) -> Result<bool> {
    // `prepared` is the circuit wrapped as a single data field.
    auto fields = codec::DecodeFields(prepared);
    if (!fields.ok()) return fields.status();
    if (fields->size() != 1) {
      return Status::InvalidArgument("expected a single circuit field");
    }
    auto c = circuit::Circuit::Decode((*fields)[0]);
    if (!c.ok()) return c.status();
    std::vector<char> assignment;
    for (char bit : query) assignment.push_back(bit == '1' ? 1 : 0);
    return c->Evaluate(assignment, meter);
  };
  auto transported = TransportF(CvpToNandFReduction(), nand_side);
  LanguageOfPairs s(CvpProblem(), CvpCircuitDataFactorization());
  for (int trial = 0; trial < 20; ++trial) {
    circuit::CircuitGenOptions options;
    options.num_inputs = 5;
    options.num_gates = 24;
    auto instance = circuit::RandomCvpInstance(options, &rng);
    std::string x = MakeCvpInstanceString(instance);
    EXPECT_TRUE(VerifyWitnessOnInstance(s, transported, x).ok());
  }
}

}  // namespace
}  // namespace core
}  // namespace pitract
