#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/algos.h"
#include "graph/generators.h"
#include "lca/dag_lca.h"
#include "lca/tree_lca.h"
#include "reach/reachability.h"

namespace pitract {
namespace lca {
namespace {

TEST(ComputeDepthsTest, ValidatesShape) {
  EXPECT_FALSE(ComputeDepths({}).ok()) << "empty";
  EXPECT_FALSE(ComputeDepths({-1, -1}).ok()) << "two roots";
  EXPECT_FALSE(ComputeDepths({0, 5}).ok()) << "parent out of range";
  EXPECT_FALSE(ComputeDepths({1, 0}).ok()) << "cycle, no root";
  auto ok = ComputeDepths({-1, 0, 1, 1});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, (std::vector<int64_t>{0, 1, 2, 2}));
}

TEST(NaiveTreeLcaTest, SmallTree) {
  //      0
  //     / \
  //    1   2
  //   / \
  //  3   4
  auto lca = NaiveTreeLca::Build({-1, 0, 0, 1, 1});
  ASSERT_TRUE(lca.ok());
  CostMeter m;
  EXPECT_EQ(*lca->Query(3, 4, &m), 1);
  EXPECT_EQ(*lca->Query(3, 2, &m), 0);
  EXPECT_EQ(*lca->Query(1, 3, &m), 1) << "ancestor of itself";
  EXPECT_EQ(*lca->Query(4, 4, &m), 4);
  EXPECT_FALSE(lca->Query(0, 9, &m).ok());
}

TEST(EulerTourLcaTest, SmallTree) {
  auto lca = EulerTourLca::Build({-1, 0, 0, 1, 1}, nullptr);
  ASSERT_TRUE(lca.ok());
  CostMeter m;
  EXPECT_EQ(*lca->Query(3, 4, &m), 1);
  EXPECT_EQ(*lca->Query(3, 2, &m), 0);
  EXPECT_EQ(*lca->Query(1, 3, &m), 1);
  EXPECT_EQ(*lca->Query(4, 4, &m), 4);
  EXPECT_EQ(lca->tour_length(), 9) << "Euler tour has 2n-1 entries";
}

TEST(EulerTourLcaTest, SingleNode) {
  auto lca = EulerTourLca::Build({-1}, nullptr);
  ASSERT_TRUE(lca.ok());
  EXPECT_EQ(*lca->Query(0, 0, nullptr), 0);
}

TEST(EulerTourLcaTest, RootNotNodeZero) {
  // Root is node 2: 2 -> {0, 1}.
  auto lca = EulerTourLca::Build({2, 2, -1}, nullptr);
  ASSERT_TRUE(lca.ok());
  EXPECT_EQ(*lca->Query(0, 1, nullptr), 2);
}

struct TreeParam {
  uint64_t seed;
  graph::NodeId n;
};

class TreeLcaAgreementTest : public ::testing::TestWithParam<TreeParam> {};

TEST_P(TreeLcaAgreementTest, EulerMatchesNaive) {
  const auto param = GetParam();
  Rng rng(param.seed);
  auto parent = graph::RandomParentArray(param.n, &rng);
  auto naive = NaiveTreeLca::Build(parent);
  auto euler = EulerTourLca::Build(parent, nullptr);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(euler.ok());
  for (int trial = 0; trial < 300; ++trial) {
    auto u = static_cast<graph::NodeId>(
        rng.NextBelow(static_cast<uint64_t>(param.n)));
    auto v = static_cast<graph::NodeId>(
        rng.NextBelow(static_cast<uint64_t>(param.n)));
    CostMeter m;
    EXPECT_EQ(*euler->Query(u, v, &m), *naive->Query(u, v, &m))
        << "u=" << u << " v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Trees, TreeLcaAgreementTest,
                         ::testing::Values(TreeParam{1, 2}, TreeParam{2, 10},
                                           TreeParam{3, 100},
                                           TreeParam{4, 1000},
                                           TreeParam{5, 5000}));

TEST(EulerTourLcaTest, ConstantQueryDepth) {
  Rng rng(70);
  // Deep path-like trees: the naive walk is linear, Euler stays O(1).
  std::vector<graph::NodeId> small_parent(1 << 10), large_parent(1 << 16);
  small_parent[0] = -1;
  large_parent[0] = -1;
  for (size_t i = 1; i < small_parent.size(); ++i) {
    small_parent[i] = static_cast<graph::NodeId>(i - 1);
  }
  for (size_t i = 1; i < large_parent.size(); ++i) {
    large_parent[i] = static_cast<graph::NodeId>(i - 1);
  }
  auto small = EulerTourLca::Build(small_parent, nullptr);
  auto large = EulerTourLca::Build(large_parent, nullptr);
  ASSERT_TRUE(small.ok() && large.ok());
  CostMeter cs, cl;
  ASSERT_TRUE(small->Query(5, 1000, &cs).ok());
  ASSERT_TRUE(large->Query(5, 60000, &cl).ok());
  EXPECT_LE(cl.depth(), cs.depth() + 4);

  auto naive = NaiveTreeLca::Build(large_parent);
  ASSERT_TRUE(naive.ok());
  CostMeter cn;
  ASSERT_TRUE(naive->Query(5, 60000, &cn).ok());
  EXPECT_GT(cn.depth(), 100 * cl.depth()) << "baseline walks the whole path";
}

// ---------------------------------------------------------------------------
// DAG LCA
// ---------------------------------------------------------------------------

TEST(DagLcaTest, DiamondHasDeepestCommonAncestor) {
  //   0 -> 1 -> 3, 0 -> 2 -> 3: LCA(1,2)=0, LCA(3,3)=3, LCA(1,3)=1.
  auto g = graph::Graph::FromEdges(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}}, true);
  ASSERT_TRUE(g.ok());
  auto lca = AllPairsDagLca::Build(*g, nullptr);
  ASSERT_TRUE(lca.ok());
  EXPECT_EQ(*lca->Query(1, 2, nullptr), 0);
  EXPECT_EQ(*lca->Query(3, 3, nullptr), 3);
  EXPECT_EQ(*lca->Query(1, 3, nullptr), 1);
}

TEST(DagLcaTest, NoCommonAncestorIsMinusOne) {
  auto g = graph::Graph::FromEdges(4, {{0, 1}, {2, 3}}, true);
  ASSERT_TRUE(g.ok());
  auto lca = AllPairsDagLca::Build(*g, nullptr);
  ASSERT_TRUE(lca.ok());
  EXPECT_EQ(*lca->Query(1, 3, nullptr), -1);
}

TEST(DagLcaTest, RejectsCyclicInput) {
  auto g = graph::Cycle(4, true);
  EXPECT_FALSE(AllPairsDagLca::Build(g, nullptr).ok());
  EXPECT_FALSE(OnlineDagLca::Build(g).ok());
}

struct DagParam {
  uint64_t seed;
  graph::NodeId n;
  int64_t m;
};

class DagLcaAgreementTest : public ::testing::TestWithParam<DagParam> {};

TEST_P(DagLcaAgreementTest, AllPairsMatchesOnline) {
  const auto param = GetParam();
  Rng rng(param.seed);
  graph::Graph g = graph::RandomDag(param.n, param.m, &rng);
  auto all_pairs = AllPairsDagLca::Build(g, nullptr);
  auto online = OnlineDagLca::Build(g);
  ASSERT_TRUE(all_pairs.ok());
  ASSERT_TRUE(online.ok());
  for (int trial = 0; trial < 150; ++trial) {
    auto u = static_cast<graph::NodeId>(
        rng.NextBelow(static_cast<uint64_t>(param.n)));
    auto v = static_cast<graph::NodeId>(
        rng.NextBelow(static_cast<uint64_t>(param.n)));
    CostMeter m;
    EXPECT_EQ(*all_pairs->Query(u, v, &m), *online->Query(u, v, &m))
        << "u=" << u << " v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Dags, DagLcaAgreementTest,
                         ::testing::Values(DagParam{1, 10, 15},
                                           DagParam{2, 30, 60},
                                           DagParam{3, 50, 200},
                                           DagParam{4, 80, 80}));

TEST(DagLcaTest, ResultIsACommonAncestorOfMaxDepth) {
  // Semantic property: the answer must be an ancestor of both endpoints and
  // no strictly deeper common ancestor may exist.
  Rng rng(71);
  graph::Graph g = graph::RandomDag(40, 100, &rng);
  auto lca = AllPairsDagLca::Build(g, nullptr);
  auto depths = LongestPathDepths(g);
  ASSERT_TRUE(lca.ok() && depths.ok());
  reach::ReachabilityMatrix reach_matrix = reach::ReachabilityMatrix::Build(g);
  for (graph::NodeId u = 0; u < 40; u += 3) {
    for (graph::NodeId v = 0; v < 40; v += 5) {
      graph::NodeId w = *lca->Query(u, v, nullptr);
      int64_t best_depth = -1;
      graph::NodeId expected = -1;
      for (graph::NodeId cand = 0; cand < 40; ++cand) {
        if (reach_matrix.Reachable(cand, u, nullptr) &&
            reach_matrix.Reachable(cand, v, nullptr) &&
            (*depths)[static_cast<size_t>(cand)] > best_depth) {
          best_depth = (*depths)[static_cast<size_t>(cand)];
          expected = cand;
        }
      }
      if (expected == -1) {
        EXPECT_EQ(w, -1);
      } else {
        ASSERT_NE(w, -1);
        EXPECT_TRUE(reach_matrix.Reachable(w, u, nullptr));
        EXPECT_TRUE(reach_matrix.Reachable(w, v, nullptr));
        EXPECT_EQ((*depths)[static_cast<size_t>(w)], best_depth);
      }
    }
  }
}

}  // namespace
}  // namespace lca
}  // namespace pitract
