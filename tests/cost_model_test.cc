// Unit coverage for the witness-selection solver (engine/cost_model.h):
// policy gating, the expected-cost score (build amortization, residency,
// byte pressure, measured-profile blending), the traffic bookkeeping that
// drives re-selection, and the CostDescriptor linear fits — plus two
// engine-level tests proving answer parity across policies and the
// cold-part -> hot-part witness upgrade end to end.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/problems.h"
#include "engine/builtins.h"
#include "engine/cost_model.h"
#include "engine/engine.h"
#include "graph/generators.h"
#include "graph/graph.h"

namespace pitract {
namespace engine {
namespace {

// A witness that answers fast but builds at a flat (size-independent)
// cost, and one that builds free but pays per query — the canonical
// closure-vs-scan tension the solver exists to arbitrate.
CostDescriptor FastAnswerDescriptor() {
  CostDescriptor d;
  d.build_ops_base = 10000.0;
  d.build_ops_per_byte = 0.0;
  d.bytes_base = 0.0;
  d.bytes_per_byte = 0.0;
  d.answer_ops_base = 1.0;
  return d;
}

CostDescriptor CheapBuildDescriptor() {
  CostDescriptor d;
  d.build_ops_base = 0.0;
  d.build_ops_per_byte = 0.0;
  d.bytes_base = 0.0;
  d.bytes_per_byte = 0.0;
  d.answer_ops_base = 10.0;
  return d;
}

TEST(CostModelTest, PrimaryOnlyIgnoresCosts) {
  CostModel model;
  ASSERT_EQ(model.policy(), CostModel::Policy::kPrimaryOnly);
  // Candidate 1 is strictly cheaper on every axis; kPrimaryOnly must still
  // return 0 — the pre-adaptive engine's behavior, bit for bit.
  CostDescriptor expensive = FastAnswerDescriptor();
  CostDescriptor free_lunch;
  free_lunch.build_ops_base = 0.0;
  free_lunch.build_ops_per_byte = 0.0;
  free_lunch.bytes_per_byte = 0.0;
  free_lunch.answer_ops_base = 0.0;
  std::vector<CostModel::Candidate> candidates = {
      {"primary", &expensive, nullptr, false},
      {"better", &free_lunch, nullptr, true},
  };
  EXPECT_EQ(model.Select(candidates, 1000, 42, 0.0), 0);
}

TEST(CostModelTest, ForcedClampsToCandidateRange) {
  CostModel model;
  CostDescriptor a = FastAnswerDescriptor();
  CostDescriptor b = CheapBuildDescriptor();
  std::vector<CostModel::Candidate> candidates = {
      {"a", &a, nullptr, false},
      {"b", &b, nullptr, false},
  };
  model.ForceWitness(5);  // out of range: clamps to the last candidate
  EXPECT_EQ(model.policy(), CostModel::Policy::kForced);
  EXPECT_EQ(model.Select(candidates, 1000, 42, 0.0), 1);
  model.ForceWitness(-3);  // negative: clamps to the primary
  EXPECT_EQ(model.forced_index(), 0);
  EXPECT_EQ(model.Select(candidates, 1000, 42, 0.0), 0);
  model.ForceWitness(1);
  EXPECT_EQ(model.Select(candidates, 1000, 42, 0.0), 1);
}

TEST(CostModelTest, AdaptiveWeighsBuildAgainstExpectedTraffic) {
  CostModel model;
  model.SetPolicy(CostModel::Policy::kAdaptive);
  CostDescriptor closure = FastAnswerDescriptor();
  CostDescriptor scan = CheapBuildDescriptor();
  std::vector<CostModel::Candidate> candidates = {
      {"closure", &closure, nullptr, false},
      {"scan", &scan, nullptr, false},
  };
  // Cold part, modest prior (16 expected queries): amortizing a 10000-op
  // build over 16 queries loses to paying 10 ops per query.
  //   closure: 10000 + 16*1 = 10016   scan: 0 + 16*10 = 160
  EXPECT_EQ(model.Select(candidates, 1000, 7, 0.0), 1);
  // The same part after 5000 recorded queries: the build amortizes.
  //   closure: 10000 + 5000*1 = 15000   scan: 5000*10 = 50000
  model.NoteTraffic(7, 5000);
  EXPECT_EQ(model.Select(candidates, 1000, 7, 0.0), 0);
  // An unrelated part is still judged by its own (cold) traffic.
  EXPECT_EQ(model.Select(candidates, 1000, 8, 0.0), 1);
}

TEST(CostModelTest, ResidencyZeroesBuildCost) {
  CostModel model;
  model.SetPolicy(CostModel::Policy::kAdaptive);
  CostDescriptor closure = FastAnswerDescriptor();
  CostDescriptor scan = CheapBuildDescriptor();
  // A resident Π is sunk cost: with the build term zeroed the fast-answer
  // witness wins even at the cold-part prior (16*1 < 16*10).
  std::vector<CostModel::Candidate> candidates = {
      {"closure", &closure, nullptr, true},
      {"scan", &scan, nullptr, false},
  };
  EXPECT_EQ(model.Select(candidates, 1000, 7, 0.0), 0);
}

TEST(CostModelTest, BytePressurePenalizesByteHungryWitnesses) {
  CostModel model;
  model.SetPolicy(CostModel::Policy::kAdaptive);
  CostDescriptor fat;
  fat.build_ops_base = 0.0;
  fat.build_ops_per_byte = 0.0;
  fat.bytes_base = 0.0;
  fat.bytes_per_byte = 10.0;
  fat.answer_ops_base = 1.0;
  CostDescriptor lean = fat;
  lean.bytes_per_byte = 1.0;
  lean.answer_ops_base = 1.2;
  std::vector<CostModel::Candidate> candidates = {
      {"fat", &fat, nullptr, true},
      {"lean", &lean, nullptr, true},
  };
  // Empty store: answer cost is all that matters -> fat (16 < 19.2).
  EXPECT_EQ(model.Select(candidates, 1000, 7, 0.0), 0);
  // Full store: fat pays 10000*0.25 in footprint, lean only 1000*0.25.
  EXPECT_EQ(model.Select(candidates, 1000, 7, 1.0), 1);
  // Pressure is clamped to [0,1], not extrapolated.
  EXPECT_EQ(model.Select(candidates, 1000, 7, 7.0),
            model.Select(candidates, 1000, 7, 1.0));
}

TEST(CostModelTest, MeasuredProfileBlendsIntoPriors) {
  CostModel model;
  model.SetPolicy(CostModel::Policy::kAdaptive);
  // The registered prior claims near-free answers; measurements say 1000
  // ops per query. The blend pulls the estimate halfway to reality, which
  // is enough to flip the selection to the honestly-priced candidate.
  CostDescriptor lying;
  lying.build_ops_base = 0.0;
  lying.build_ops_per_byte = 0.0;
  lying.bytes_per_byte = 0.0;
  lying.answer_ops_base = 0.01;
  CostDescriptor honest = CheapBuildDescriptor();
  CostProfile measured;
  std::vector<CostModel::Candidate> candidates = {
      {"lying", &lying, &measured, false},
      {"honest", &honest, nullptr, false},
  };
  EXPECT_EQ(model.Select(candidates, 1000, 7, 0.0), 0);
  measured.RecordAnswer(/*queries=*/1000, /*ops=*/1000000);
  // Blended answer estimate: (0.01 + 1000)/2 ≈ 500 ops/query >> 10.
  EXPECT_EQ(model.Select(candidates, 1000, 7, 0.0), 1);

  // Build-side blending uses measured ops-per-input-byte the same way.
  CostDescriptor cheap_claim;
  cheap_claim.build_ops_base = 0.0;
  cheap_claim.build_ops_per_byte = 0.001;
  cheap_claim.bytes_per_byte = 0.0;
  cheap_claim.answer_ops_base = 1.0;
  CostDescriptor steady = cheap_claim;
  steady.build_ops_per_byte = 50.0;
  CostProfile measured_build;
  // 100 ops/byte measured: blend = (0.001 + 100)/2 ≈ 50.0005 > 50.
  measured_build.RecordBuild(/*data_bytes=*/1000, /*prepared_bytes=*/0,
                             /*ops=*/100000);
  std::vector<CostModel::Candidate> builds = {
      {"cheap_claim", &cheap_claim, &measured_build, false},
      {"steady", &steady, nullptr, false},
  };
  EXPECT_EQ(model.Select(builds, 1000, 9, 0.0), 1);
}

TEST(CostModelTest, NoteTrafficFiresOnDoublingBoundariesAboveFloor) {
  CostModel model;
  const uint64_t fp = 17;
  EXPECT_FALSE(model.NoteTraffic(fp, 0));    // no-op
  EXPECT_FALSE(model.NoteTraffic(fp, -4));   // no-op
  EXPECT_FALSE(model.NoteTraffic(fp, 31));   // below the floor
  EXPECT_TRUE(model.NoteTraffic(fp, 1));     // crosses 32
  EXPECT_FALSE(model.NoteTraffic(fp, 31));   // 63: no boundary
  EXPECT_TRUE(model.NoteTraffic(fp, 1));     // crosses 64
  EXPECT_TRUE(model.NoteTraffic(fp, 64));    // crosses 128
  EXPECT_FALSE(model.NoteTraffic(fp, 1));    // 129: between boundaries
  EXPECT_EQ(model.TrafficFor(fp), 129);
  // One large batch on a fresh part fires once even when it jumps several
  // boundaries at a time.
  EXPECT_TRUE(model.NoteTraffic(99, 1000));
  EXPECT_FALSE(model.NoteTraffic(99, 20));
}

TEST(CostModelTest, CarryTrafficMovesPopularityAndChoiceAcrossRekey) {
  CostModel model;
  const uint64_t old_fp = 11;
  const uint64_t new_fp = 22;
  model.NoteTraffic(old_fp, 100);
  model.SetChoice(old_fp, 1);
  model.CarryTraffic(old_fp, new_fp);
  EXPECT_EQ(model.TrafficFor(old_fp), 0);
  EXPECT_EQ(model.TrafficFor(new_fp), 100);
  EXPECT_EQ(model.ChoiceFor(old_fp), -1);
  EXPECT_EQ(model.ChoiceFor(new_fp), 1);
  // Carrying from an untracked fingerprint is a no-op, not a reset.
  model.CarryTraffic(12345, new_fp);
  EXPECT_EQ(model.TrafficFor(new_fp), 100);
  // The carried popularity keeps amortizing the expensive build: the
  // post-delta part selects as a hot part, not a cold one.
  CostModel adaptive;
  adaptive.SetPolicy(CostModel::Policy::kAdaptive);
  adaptive.NoteTraffic(old_fp, 5000);
  adaptive.CarryTraffic(old_fp, new_fp);
  CostDescriptor closure = FastAnswerDescriptor();
  CostDescriptor scan = CheapBuildDescriptor();
  std::vector<CostModel::Candidate> candidates = {
      {"closure", &closure, nullptr, false},
      {"scan", &scan, nullptr, false},
  };
  EXPECT_EQ(adaptive.Select(candidates, 1000, new_fp, 0.0), 0);
}

TEST(CostModelTest, ColdPriorIsCappedBelowInflatedGlobalAverage) {
  CostModel model;
  model.SetPolicy(CostModel::Policy::kAdaptive);
  // One scorching part inflates the model-wide average to 100000 q/part.
  const uint64_t hot_fp = 1;
  model.NoteTraffic(hot_fp, 100000);
  // Candidates cross at E = 100: A costs 2E, B costs 150 + 0.5E.
  CostDescriptor a;
  a.build_ops_base = 0.0;
  a.build_ops_per_byte = 0.0;
  a.bytes_per_byte = 0.0;
  a.answer_ops_base = 2.0;
  CostDescriptor b = a;
  b.build_ops_base = 150.0;
  b.answer_ops_base = 0.5;
  std::vector<CostModel::Candidate> candidates = {
      {"a", &a, nullptr, false},
      {"b", &b, nullptr, false},
  };
  // The hot part itself amortizes B's build instantly.
  EXPECT_EQ(model.Select(candidates, 1000, hot_fp, 0.0), 1);
  // A fresh part must NOT inherit the head's popularity: the ski-rental
  // cap holds its prior at 16 (32 < 158), so it starts on the cheap-build
  // side instead of eating an unamortized build on every cold part.
  EXPECT_EQ(model.Select(candidates, 1000, 777, 0.0), 0);
}

TEST(CostModelTest, CostDescriptorClampsLinearFitsAtZero) {
  // A negative base is a two-point fit of a superlinear build: below the
  // fit's root the model reads zero, never a negative credit.
  CostDescriptor closure;
  closure.build_ops_base = -38000.0;
  closure.build_ops_per_byte = 32.0;
  closure.bytes_base = -100.0;
  closure.bytes_per_byte = 1.0;
  closure.answer_ops_base = -5.0;
  closure.answer_ops_per_byte = 0.01;
  EXPECT_EQ(closure.BuildOps(100), 0.0);       // -38000 + 3200 < 0
  EXPECT_EQ(closure.BuildOps(2000), 26000.0);  // -38000 + 64000
  EXPECT_EQ(closure.Bytes(50), 0.0);
  EXPECT_EQ(closure.Bytes(1100), 1000.0);
  EXPECT_EQ(closure.AnswerOps(100), 0.0);
  EXPECT_EQ(closure.AnswerOps(1000), 5.0);
}

// ---------------------------------------------------------------------------
// Engine-level: the solver's choice must never change an answer, and a
// part that turns hot must graduate from the cheap-build witness to the
// fast-answer witness without a third build or a wrong batch.
// ---------------------------------------------------------------------------

std::string ReachData(int64_t n, int64_t m, uint64_t seed) {
  Rng rng(seed);
  auto g = graph::ErdosRenyi(static_cast<graph::NodeId>(n), m,
                             /*directed=*/true, &rng);
  return core::ReachFactorization()
      .pi1(core::MakeReachInstance(g, 0, 0))
      .value();
}

std::vector<std::string> ReachQueries(int64_t n, int count, Rng* rng) {
  std::vector<std::string> queries;
  queries.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    queries.push_back(
        std::to_string(rng->NextBelow(static_cast<uint64_t>(n))) + "#" +
        std::to_string(rng->NextBelow(static_cast<uint64_t>(n))));
  }
  return queries;
}

TEST(CostModelEngineTest, WitnessParityAcrossPolicies) {
  const std::string data = ReachData(48, 192, 404);
  Rng rng(405);
  const auto queries = ReachQueries(48, 64, &rng);

  auto make_engine = [] {
    auto engine = std::make_unique<QueryEngine>(PreparedStore::Options{});
    auto status = RegisterBuiltins(engine.get());
    EXPECT_TRUE(status.ok()) << status.ToString();
    return engine;
  };

  auto primary = make_engine();  // kPrimaryOnly (default)
  auto adaptive = make_engine();
  adaptive->cost_model().SetPolicy(CostModel::Policy::kAdaptive);
  auto forced_closure = make_engine();
  forced_closure->cost_model().ForceWitness(0);
  auto forced_scan = make_engine();
  forced_scan->cost_model().ForceWitness(1);

  auto baseline = primary->AnswerBatch("graph-reachability", data, queries);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  for (QueryEngine* engine :
       {adaptive.get(), forced_closure.get(), forced_scan.get()}) {
    auto batch = engine->AnswerBatch("graph-reachability", data, queries);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    EXPECT_EQ(batch->answers, baseline->answers);
  }
  // The forced-scan engine really did serve off the alternative witness:
  // parity came from equivalence, not from both picking the same Π.
  EXPECT_TRUE(forced_scan->store().Contains("graph-reachability", "edge-scan",
                                            data));
  EXPECT_FALSE(forced_scan->store().Contains("graph-reachability",
                                             "incremental-closure", data));
  EXPECT_TRUE(forced_closure->store().Contains("graph-reachability",
                                               "incremental-closure", data));
  EXPECT_FALSE(forced_closure->store().Contains("graph-reachability",
                                                "edge-scan", data));
}

TEST(CostModelEngineTest, AdaptiveUpgradesHotPartToFastWitness) {
  // Sized so the closure's two-point fit prices its build well above zero
  // (|D| past the fit root) while modest enough that the scan witness wins
  // the cold-part score: the part must start on the cheap build and earn
  // the closure through traffic alone.
  const std::string data = ReachData(64, 256, 1234);
  ASSERT_GT(data.size(), 1250u);
  ASSERT_LT(data.size(), 1700u);

  auto adaptive = std::make_unique<QueryEngine>(PreparedStore::Options{});
  ASSERT_TRUE(RegisterBuiltins(adaptive.get()).ok());
  adaptive->cost_model().SetPolicy(CostModel::Policy::kAdaptive);
  auto reference = std::make_unique<QueryEngine>(PreparedStore::Options{});
  ASSERT_TRUE(RegisterBuiltins(reference.get()).ok());
  reference->cost_model().ForceWitness(0);  // closure-always oracle

  // The part starts cold on the edge-scan witness.
  Rng rng(4321);
  {
    auto first = adaptive->AnswerBatch("graph-reachability", data,
                                       ReachQueries(64, 8, &rng));
    ASSERT_TRUE(first.ok());
  }
  EXPECT_EQ(adaptive->cost_model().ChoiceFor(
                QueryEngine::PartFingerprint(data)),
            1);
  EXPECT_EQ(adaptive->store().stats().misses, 1);

  // 130 batches x 8 queries drive the part's traffic through the 32, 64,
  // ..., 1024 re-selection boundaries; somewhere along the way the build
  // amortizes and the solver upgrades to the closure.
  Rng rng_adaptive(777);
  Rng rng_reference(777);
  for (int batch = 0; batch < 130; ++batch) {
    const auto queries = ReachQueries(64, 8, &rng_adaptive);
    const auto check = ReachQueries(64, 8, &rng_reference);
    ASSERT_EQ(queries, check);
    auto got = adaptive->AnswerBatch("graph-reachability", data, queries);
    auto want = reference->AnswerBatch("graph-reachability", data, queries);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    // Every batch — before, during, and after the upgrade — matches the
    // closure-always oracle.
    ASSERT_EQ(got->answers, want->answers) << "batch " << batch;
  }

  // The upgrade happened (sticky choice now the primary closure), cost
  // exactly one extra cold build, and never flapped back: scan Π then
  // closure Π, two misses total.
  EXPECT_EQ(adaptive->cost_model().ChoiceFor(
                QueryEngine::PartFingerprint(data)),
            0);
  EXPECT_EQ(adaptive->store().stats().misses, 2);
  EXPECT_EQ(reference->store().stats().misses, 1);
}

}  // namespace
}  // namespace engine
}  // namespace pitract
