#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "storage/generator.h"
#include "topk/threshold.h"

namespace pitract {
namespace topk {
namespace {

storage::Relation MakeScores(int64_t rows, int cols, double zipf,
                             uint64_t seed) {
  Rng rng(seed);
  storage::RelationGenOptions options;
  options.num_rows = rows;
  options.num_columns = cols;
  options.value_range = 10000;
  options.zipf_theta = zipf;
  return storage::GenerateIntRelation(options, &rng);
}

TEST(ThresholdIndexTest, TinyHandComputed) {
  storage::Relation rel{storage::Schema(
      {{"a", storage::ValueType::kInt64}, {"b", storage::ValueType::kInt64}})};
  // Scores (w = 1,1): obj0 = 9, obj1 = 11, obj2 = 5, obj3 = 11.
  ASSERT_TRUE(rel.AppendIntRow({4, 5}).ok());
  ASSERT_TRUE(rel.AppendIntRow({10, 1}).ok());
  ASSERT_TRUE(rel.AppendIntRow({2, 3}).ok());
  ASSERT_TRUE(rel.AppendIntRow({3, 8}).ok());
  auto index = ThresholdIndex::Build(rel, {0, 1}, nullptr);
  ASSERT_TRUE(index.ok());
  auto top2 = index->TopK({1, 1}, 2, nullptr);
  ASSERT_TRUE(top2.ok());
  ASSERT_EQ(top2->objects.size(), 2u);
  // Ties (11, 11) break toward the smaller id.
  EXPECT_EQ(top2->objects[0], (ScoredObject{1, 11}));
  EXPECT_EQ(top2->objects[1], (ScoredObject{3, 11}));
}

TEST(ThresholdIndexTest, WeightsScaleScores) {
  storage::Relation rel{storage::Schema(
      {{"a", storage::ValueType::kInt64}, {"b", storage::ValueType::kInt64}})};
  ASSERT_TRUE(rel.AppendIntRow({10, 0}).ok());
  ASSERT_TRUE(rel.AppendIntRow({0, 10}).ok());
  auto index = ThresholdIndex::Build(rel, {0, 1}, nullptr);
  ASSERT_TRUE(index.ok());
  auto a_heavy = index->TopK({5, 1}, 1, nullptr);
  ASSERT_TRUE(a_heavy.ok());
  EXPECT_EQ(a_heavy->objects[0].object_id, 0);
  auto b_heavy = index->TopK({1, 5}, 1, nullptr);
  ASSERT_TRUE(b_heavy.ok());
  EXPECT_EQ(b_heavy->objects[0].object_id, 1);
}

TEST(ThresholdIndexTest, RejectsBadQueries) {
  auto rel = MakeScores(10, 2, 0.0, 1);
  auto index = ThresholdIndex::Build(rel, {0, 1}, nullptr);
  ASSERT_TRUE(index.ok());
  EXPECT_FALSE(index->TopK({1}, 1, nullptr).ok()) << "weight arity";
  EXPECT_FALSE(index->TopK({1, -1}, 1, nullptr).ok()) << "negative weight";
  EXPECT_FALSE(index->TopK({1, 1}, 0, nullptr).ok()) << "k = 0";
  EXPECT_FALSE(ThresholdIndex::Build(rel, {}, nullptr).ok()) << "no columns";
  EXPECT_FALSE(ThresholdIndex::Build(rel, {7}, nullptr).ok()) << "bad column";
}

TEST(ThresholdIndexTest, KLargerThanNReturnsEverything) {
  auto rel = MakeScores(5, 2, 0.0, 2);
  auto index = ThresholdIndex::Build(rel, {0, 1}, nullptr);
  ASSERT_TRUE(index.ok());
  auto all = index->TopK({1, 1}, 50, nullptr);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->objects.size(), 5u);
  for (size_t i = 1; i < all->objects.size(); ++i) {
    EXPECT_FALSE(all->objects[i].score > all->objects[i - 1].score);
  }
}

/// Top-k answers are unique only up to ties at the k-th boundary: TA may
/// legitimately return a different equal-scored object than the scan.
/// Equivalence therefore means: identical score sequences, distinct ids,
/// and every reported (id, score) pair correct under recomputation.
void ExpectEquivalentTopK(const storage::Relation& rel,
                          const std::vector<int>& columns,
                          const std::vector<int64_t>& weights,
                          const TopKResult& ta, const TopKResult& scan) {
  ASSERT_EQ(ta.objects.size(), scan.objects.size());
  std::set<int64_t> ids;
  for (size_t i = 0; i < ta.objects.size(); ++i) {
    EXPECT_EQ(ta.objects[i].score, scan.objects[i].score) << "position " << i;
    EXPECT_TRUE(ids.insert(ta.objects[i].object_id).second)
        << "duplicate object in answer";
    int64_t recomputed = 0;
    for (size_t attr = 0; attr < columns.size(); ++attr) {
      auto v = rel.GetInt64(ta.objects[i].object_id, columns[attr]);
      ASSERT_TRUE(v.ok());
      recomputed += weights[attr] * *v;
    }
    EXPECT_EQ(recomputed, ta.objects[i].score);
  }
}

struct TopKParam {
  uint64_t seed;
  int64_t rows;
  int cols;
  int k;
  double zipf;
};

class ThresholdAgreementTest : public ::testing::TestWithParam<TopKParam> {};

TEST_P(ThresholdAgreementTest, MatchesScanBaseline) {
  const auto p = GetParam();
  auto rel = MakeScores(p.rows, p.cols, p.zipf, p.seed);
  std::vector<int> columns;
  for (int c = 0; c < p.cols; ++c) columns.push_back(c);
  std::vector<int64_t> weights;
  Rng rng(p.seed * 7);
  for (int c = 0; c < p.cols; ++c) {
    weights.push_back(static_cast<int64_t>(1 + rng.NextBelow(5)));
  }
  auto index = ThresholdIndex::Build(rel, columns, nullptr);
  ASSERT_TRUE(index.ok());
  CostMeter ta_meter, scan_meter;
  auto ta = index->TopK(weights, p.k, &ta_meter);
  auto scan =
      ThresholdIndex::TopKByScan(rel, columns, weights, p.k, &scan_meter);
  ASSERT_TRUE(ta.ok() && scan.ok());
  ExpectEquivalentTopK(rel, columns, weights, *ta, *scan);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, ThresholdAgreementTest,
    ::testing::Values(TopKParam{1, 100, 2, 5, 0.0},
                      TopKParam{2, 500, 3, 10, 0.0},
                      TopKParam{3, 1000, 2, 1, 0.8},
                      TopKParam{4, 1000, 4, 25, 0.9},
                      TopKParam{5, 2000, 3, 7, 0.5},
                      TopKParam{6, 64, 2, 64, 0.0},
                      TopKParam{7, 3000, 2, 3, 1.2}));

TEST(ThresholdIndexTest, EarlyTerminationOnSkewedData) {
  // On heavy-tailed data the threshold fires after a small prefix — the
  // Section 8(5) "find top-k without computing the entire Q(D)" effect.
  auto rel = MakeScores(20000, 2, 1.1, 9);
  auto index = ThresholdIndex::Build(rel, {0, 1}, nullptr);
  ASSERT_TRUE(index.ok());
  auto top10 = index->TopK({1, 1}, 10, nullptr);
  ASSERT_TRUE(top10.ok());
  EXPECT_LT(top10->stop_depth, 20000 / 4)
      << "TA should stop far before exhausting the lists";
  EXPECT_LT(top10->sorted_accesses + top10->random_accesses, 2 * 20000);
}

TEST(ThresholdIndexTest, AccessCostBeatsScanOnSkewedData) {
  auto rel = MakeScores(20000, 2, 1.1, 10);
  auto index = ThresholdIndex::Build(rel, {0, 1}, nullptr);
  ASSERT_TRUE(index.ok());
  CostMeter ta_meter, scan_meter;
  ASSERT_TRUE(index->TopK({2, 3}, 10, &ta_meter).ok());
  ASSERT_TRUE(
      ThresholdIndex::TopKByScan(rel, {0, 1}, {2, 3}, 10, &scan_meter).ok());
  EXPECT_LT(ta_meter.work() * 4, scan_meter.work());
}

TEST(ThresholdIndexTest, WorstCaseStillExact) {
  // Anti-correlated attributes are TA's worst case: it may need deep
  // probing, but must stay exact.
  storage::Relation rel{storage::Schema(
      {{"a", storage::ValueType::kInt64}, {"b", storage::ValueType::kInt64}})};
  const int64_t n = 500;
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(rel.AppendIntRow({i, n - i}).ok());
  }
  auto index = ThresholdIndex::Build(rel, {0, 1}, nullptr);
  ASSERT_TRUE(index.ok());
  auto ta = index->TopK({1, 1}, 5, nullptr);
  auto scan = ThresholdIndex::TopKByScan(rel, {0, 1}, {1, 1}, 5, nullptr);
  ASSERT_TRUE(ta.ok() && scan.ok());
  ExpectEquivalentTopK(rel, {0, 1}, {1, 1}, *ta, *scan);
}

TEST(ThresholdIndexTest, ZeroWeightIgnoresAttribute) {
  auto rel = MakeScores(300, 2, 0.0, 11);
  auto index = ThresholdIndex::Build(rel, {0, 1}, nullptr);
  ASSERT_TRUE(index.ok());
  auto ta = index->TopK({1, 0}, 5, nullptr);
  auto scan = ThresholdIndex::TopKByScan(rel, {0, 1}, {1, 0}, 5, nullptr);
  ASSERT_TRUE(ta.ok() && scan.ok());
  ExpectEquivalentTopK(rel, {0, 1}, {1, 0}, *ta, *scan);
}

}  // namespace
}  // namespace topk
}  // namespace pitract
