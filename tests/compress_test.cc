#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "compress/bisim_compress.h"
#include "compress/reach_compress.h"
#include "graph/algos.h"
#include "graph/generators.h"

namespace pitract {
namespace compress {
namespace {

// ---------------------------------------------------------------------------
// Reachability-preserving compression
// ---------------------------------------------------------------------------

TEST(ReachCompressTest, SccsCollapse) {
  // A 3-cycle followed by a tail compresses the cycle into one class.
  auto g = graph::Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 0}, {2, 3}}, true);
  ASSERT_TRUE(g.ok());
  auto rc = ReachCompressed::Build(*g, nullptr);
  EXPECT_LE(rc.compressed().num_nodes(), 2);
  EXPECT_TRUE(*rc.Reachable(0, 3, nullptr));
  EXPECT_TRUE(*rc.Reachable(1, 0, nullptr));
  EXPECT_FALSE(*rc.Reachable(3, 0, nullptr));
}

TEST(ReachCompressTest, ParallelSiblingsMergeButStayUnreachable) {
  // b and b' both sit between a and c: equal ancestor/descendant sets, so
  // they merge — yet reach(b, b') must remain false.
  auto g = graph::Graph::FromEdges(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}}, true);
  ASSERT_TRUE(g.ok());
  auto rc = ReachCompressed::Build(*g, nullptr);
  EXPECT_EQ(rc.compressed().num_nodes(), 3) << "a, {b, b'}, c";
  EXPECT_FALSE(*rc.Reachable(1, 2, nullptr));
  EXPECT_FALSE(*rc.Reachable(2, 1, nullptr));
  EXPECT_TRUE(*rc.Reachable(1, 3, nullptr));
  EXPECT_TRUE(*rc.Reachable(0, 3, nullptr));
}

TEST(ReachCompressTest, StarCompressesHard) {
  // All leaves of a directed out-star share (anc, desc) signatures.
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
  for (graph::NodeId i = 1; i < 100; ++i) edges.emplace_back(0, i);
  auto g = graph::Graph::FromEdges(100, edges, true);
  ASSERT_TRUE(g.ok());
  auto rc = ReachCompressed::Build(*g, nullptr);
  EXPECT_EQ(rc.compressed().num_nodes(), 2) << "root class + leaf class";
  EXPECT_LT(rc.NodeRatio(), 0.05);
}

TEST(ReachCompressTest, EmptyAndSingleton) {
  auto empty = graph::Graph::FromEdges(0, {}, true);
  ASSERT_TRUE(empty.ok());
  auto rc_empty = ReachCompressed::Build(*empty, nullptr);
  EXPECT_EQ(rc_empty.compressed().num_nodes(), 0);
  auto one = graph::Graph::FromEdges(1, {}, true);
  ASSERT_TRUE(one.ok());
  auto rc_one = ReachCompressed::Build(*one, nullptr);
  EXPECT_TRUE(*rc_one.Reachable(0, 0, nullptr));
}

struct CompressParam {
  uint64_t seed;
  graph::NodeId n;
  int64_t m;
};

class ReachCompressPropertyTest
    : public ::testing::TestWithParam<CompressParam> {};

TEST_P(ReachCompressPropertyTest, PreservesEveryReachabilityAnswer) {
  const auto param = GetParam();
  Rng rng(param.seed);
  graph::Graph g = graph::ErdosRenyi(param.n, param.m, true, &rng);
  CostMeter pre;
  auto rc = ReachCompressed::Build(g, &pre);
  EXPECT_GT(pre.work(), 0);
  EXPECT_LE(rc.compressed().num_nodes(), g.num_nodes());
  // Exhaustive on small graphs: the compression must be *query preserving*.
  for (graph::NodeId u = 0; u < param.n; ++u) {
    for (graph::NodeId v = 0; v < param.n; ++v) {
      auto fast = rc.Reachable(u, v, nullptr);
      ASSERT_TRUE(fast.ok());
      EXPECT_EQ(*fast, graph::BfsReachable(g, u, v, nullptr))
          << "u=" << u << " v=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Graphs, ReachCompressPropertyTest,
    ::testing::Values(CompressParam{1, 20, 10}, CompressParam{2, 20, 40},
                      CompressParam{3, 40, 30}, CompressParam{4, 40, 120},
                      CompressParam{5, 60, 60}, CompressParam{6, 25, 200}));

TEST(ReachCompressTest, LayeredGraphsCompressByRole) {
  // A layered crawl graph (complete bipartite between consecutive layers):
  // every node in a layer has identical ancestor/descendant sets, so the
  // compression collapses each layer to one class — the "many nodes play
  // the same reachability role" effect that Fan et al. exploit on web and
  // social graphs.
  const int kLayers = 8;
  const int kWidth = 32;
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
  for (int layer = 0; layer + 1 < kLayers; ++layer) {
    for (int a = 0; a < kWidth; ++a) {
      for (int b = 0; b < kWidth; ++b) {
        edges.emplace_back(layer * kWidth + a, (layer + 1) * kWidth + b);
      }
    }
  }
  auto g = graph::Graph::FromEdges(kLayers * kWidth, edges, true);
  ASSERT_TRUE(g.ok());
  auto rc = ReachCompressed::Build(*g, nullptr);
  EXPECT_EQ(rc.compressed().num_nodes(), kLayers);
  EXPECT_LT(rc.NodeRatio(), 0.05);
  // Spot-check preserved answers across the layer boundary.
  EXPECT_TRUE(*rc.Reachable(0, kLayers * kWidth - 1, nullptr));
  EXPECT_FALSE(*rc.Reachable(kWidth, 0, nullptr));
  EXPECT_FALSE(*rc.Reachable(0, 1, nullptr)) << "same layer: incomparable";
}

TEST(ReachCompressTest, PowerLawGraphsStayExactEvenWhenIncompressible) {
  Rng rng(100);
  // Orienting a preferential-attachment graph along node ids yields a DAG
  // whose 2-random-hub attachments give nearly distinct signatures — a
  // worst case for this compression. Exactness must still hold.
  graph::Graph undirected = graph::PreferentialAttachment(300, 2, &rng);
  std::vector<std::pair<graph::NodeId, graph::NodeId>> arcs;
  for (auto [u, v] : undirected.Edges()) {
    arcs.emplace_back(std::min(u, v), std::max(u, v));
  }
  auto g = graph::Graph::FromEdges(300, arcs, true);
  ASSERT_TRUE(g.ok());
  auto rc = ReachCompressed::Build(*g, nullptr);
  EXPECT_LE(rc.NodeRatio(), 1.0);
  for (int trial = 0; trial < 300; ++trial) {
    auto u = static_cast<graph::NodeId>(rng.NextBelow(300));
    auto v = static_cast<graph::NodeId>(rng.NextBelow(300));
    EXPECT_EQ(*rc.Reachable(u, v, nullptr),
              graph::BfsReachable(*g, u, v, nullptr));
  }
}

// ---------------------------------------------------------------------------
// Bisimulation compression
// ---------------------------------------------------------------------------

TEST(BisimTest, LabelsSeedThePartition) {
  auto g = graph::Graph::FromEdges(4, {}, true);
  ASSERT_TRUE(g.ok());
  auto bc = BisimCompressed::Build(*g, {7, 7, 8, 8}, nullptr);
  ASSERT_TRUE(bc.ok());
  EXPECT_EQ(bc->num_blocks(), 2);
  EXPECT_EQ(bc->BlockOf(0), bc->BlockOf(1));
  EXPECT_NE(bc->BlockOf(0), bc->BlockOf(2));
}

TEST(BisimTest, SuccessorStructureSplits) {
  // 0 -> 2, 1 -> 3; labels: 0,1 alike; 2 has label A, 3 label B. Then 0 and
  // 1 must split because their successors' blocks differ.
  auto g = graph::Graph::FromEdges(4, {{0, 2}, {1, 3}}, true);
  ASSERT_TRUE(g.ok());
  auto bc = BisimCompressed::Build(*g, {0, 0, 1, 2}, nullptr);
  ASSERT_TRUE(bc.ok());
  EXPECT_NE(bc->BlockOf(0), bc->BlockOf(1));
}

TEST(BisimTest, RejectsLabelArityMismatch) {
  auto g = graph::Graph::FromEdges(3, {}, true);
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(BisimCompressed::Build(*g, {1, 2}, nullptr).ok());
}

class BisimPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BisimPropertyTest, PartitionIsABisimulation) {
  Rng rng(GetParam());
  graph::Graph g = graph::ErdosRenyi(60, 150, true, &rng);
  std::vector<int32_t> labels(60);
  for (auto& l : labels) l = static_cast<int32_t>(rng.NextBelow(3));
  auto bc = BisimCompressed::Build(g, labels, nullptr);
  ASSERT_TRUE(bc.ok());
  // Bisimulation property: same block => same label, and the *sets* of
  // successor blocks coincide.
  for (graph::NodeId u = 0; u < 60; ++u) {
    for (graph::NodeId v = 0; v < 60; ++v) {
      if (bc->BlockOf(u) != bc->BlockOf(v)) continue;
      EXPECT_EQ(labels[static_cast<size_t>(u)], labels[static_cast<size_t>(v)]);
      std::set<graph::NodeId> su, sv;
      for (auto w : g.OutNeighbors(u)) su.insert(bc->BlockOf(w));
      for (auto w : g.OutNeighbors(v)) sv.insert(bc->BlockOf(w));
      EXPECT_EQ(su, sv) << "u=" << u << " v=" << v;
    }
  }
  // Maximality on the quotient: no two distinct blocks could merge.
  const graph::Graph& q = bc->quotient();
  for (graph::NodeId a = 0; a < q.num_nodes(); ++a) {
    for (graph::NodeId b = a + 1; b < q.num_nodes(); ++b) {
      if (bc->BlockLabel(a) != bc->BlockLabel(b)) continue;
      std::set<graph::NodeId> sa(q.OutNeighbors(a).begin(),
                                 q.OutNeighbors(a).end());
      std::set<graph::NodeId> sb(q.OutNeighbors(b).begin(),
                                 q.OutNeighbors(b).end());
      EXPECT_NE(sa, sb) << "blocks " << a << " and " << b
                        << " are bisimilar but were not merged";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BisimPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(BisimTest, HasLabelPathMatchesOriginalGraph) {
  Rng rng(101);
  graph::Graph g = graph::ErdosRenyi(40, 100, true, &rng);
  std::vector<int32_t> labels(40);
  for (auto& l : labels) l = static_cast<int32_t>(rng.NextBelow(3));
  auto bc = BisimCompressed::Build(g, labels, nullptr);
  ASSERT_TRUE(bc.ok());
  // Reference: label-path existence on the original graph.
  auto reference = [&](const std::vector<int32_t>& path) {
    std::vector<bool> current(40);
    for (graph::NodeId v = 0; v < 40; ++v) {
      current[static_cast<size_t>(v)] = labels[static_cast<size_t>(v)] == path[0];
    }
    for (size_t step = 1; step < path.size(); ++step) {
      std::vector<bool> next(40, false);
      for (graph::NodeId v = 0; v < 40; ++v) {
        if (!current[static_cast<size_t>(v)]) continue;
        for (auto w : g.OutNeighbors(v)) {
          if (labels[static_cast<size_t>(w)] == path[step]) {
            next[static_cast<size_t>(w)] = true;
          }
        }
      }
      current = std::move(next);
    }
    for (bool b : current) {
      if (b) return true;
    }
    return false;
  };
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<int32_t> path;
    for (uint64_t len = 1 + rng.NextBelow(4); len > 0; --len) {
      path.push_back(static_cast<int32_t>(rng.NextBelow(3)));
    }
    CostMeter m;
    EXPECT_EQ(bc->HasLabelPath(path, &m), reference(path));
  }
}

TEST(BisimTest, UniformLabelsOnRegularStructureCompress) {
  // A long directed cycle with constant labels is bisimilar to one block.
  graph::Graph g = graph::Cycle(64, true);
  std::vector<int32_t> labels(64, 1);
  auto bc = BisimCompressed::Build(g, labels, nullptr);
  ASSERT_TRUE(bc.ok());
  EXPECT_EQ(bc->num_blocks(), 1);
  EXPECT_LT(bc->NodeRatio(), 0.05);
}

}  // namespace
}  // namespace compress
}  // namespace pitract
