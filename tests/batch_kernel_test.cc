// The batch answer kernel layer (PiWitness::decode_query /
// answer_view_decoded / answer_view_batch): batch-vs-scalar parity across
// every kernel-enabled entry — including a λ-rewritten and two
// reduction-transported ones — over degenerate and large batch sizes, the
// pre-decoded scalar fallback, error parity, warm-store counter hygiene,
// and (under TSan) concurrent kernel batches racing ApplyDelta re-keys.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "circuit/generators.h"
#include "common/codec.h"
#include "common/rng.h"
#include "core/problems.h"
#include "engine/builtins.h"
#include "engine/delta.h"
#include "engine/engine.h"
#include "graph/generators.h"

namespace pitract {
namespace engine {
namespace {

std::unique_ptr<QueryEngine> MakeEngine(const BuiltinOptions& options) {
  auto engine = std::make_unique<QueryEngine>();
  auto status = RegisterBuiltins(engine.get(), options);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return engine;
}

std::unique_ptr<QueryEngine> MakeEngine() {
  return MakeEngine(BuiltinOptions{});
}

struct Case {
  std::string problem;
  std::string data;
  std::vector<std::string> queries;
};

/// Every kernel-enabled entry, with enough queries for the largest batch
/// prefix the tests slice off: the direct sorted-column / graph / bitmap /
/// closure entries, the λ-rewritten predicate dialect, and the
/// reduction-transported members (Transport and a Lemma 2 composition).
std::vector<Case> MakeKernelCases(int num_queries) {
  Rng rng(77);
  std::vector<Case> cases;

  const int64_t universe = 256;
  std::vector<int64_t> list;
  for (int i = 0; i < 128; ++i) {
    list.push_back(
        static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(universe))));
  }
  std::string member_data =
      core::MemberFactorization()
          .pi1(core::MakeMemberInstance(universe, list, 0))
          .value();
  // member-via-bds is excluded: its Lemma 2 composition pads data and
  // query into one string per instance, so one data part never serves a
  // multi-query batch (its kernel transport is still covered by the
  // composed decode chain test below).
  Case member{"list-membership", member_data, {}};
  Case via_conn{"member-via-conn", member_data, {}};
  for (int i = 0; i < num_queries; ++i) {
    std::string e = std::to_string(rng.NextBelow(256));
    member.queries.push_back(e);
    via_conn.queries.push_back(e);
  }
  cases.push_back(std::move(member));
  cases.push_back(std::move(via_conn));

  // λ-rewritten dialect: predicates decode through the rewriter chain.
  Case selection{"predicate-selection",
                 core::SelectionFactorization()
                     .pi1(core::MakeSelectionInstance(universe, list, {0, 1}))
                     .value(),
                 {}};
  for (int i = 0; i < num_queries; ++i) {
    const int64_t a = static_cast<int64_t>(rng.NextBelow(256));
    switch (i % 4) {
      case 0:
        selection.queries.push_back(codec::EncodeInts({0, a}));  // = a
        break;
      case 1:
        selection.queries.push_back(codec::EncodeInts({1, a}));  // <= a
        break;
      case 2:
        selection.queries.push_back(codec::EncodeInts({2, a}));  // >= a
        break;
      default:
        selection.queries.push_back(
            codec::EncodeInts({3, a, a + 9}));  // between
    }
  }
  cases.push_back(std::move(selection));

  auto undirected = graph::ErdosRenyi(64, 96, /*directed=*/false, &rng);
  auto directed = graph::ErdosRenyi(64, 128, /*directed=*/true, &rng);
  Case conn{"connectivity",
            core::ConnFactorization()
                .pi1(core::MakeConnInstance(undirected, 0, 0))
                .value(),
            {}};
  Case bds{"breadth-depth-search",
           core::BdsFactorization()
               .pi1(core::MakeBdsInstance(undirected, 0, 0))
               .value(),
           {}};
  Case reach{"graph-reachability",
             core::ReachFactorization()
                 .pi1(core::MakeReachInstance(directed, 0, 0))
                 .value(),
             {}};
  for (int i = 0; i < num_queries; ++i) {
    std::string q = std::to_string(rng.NextBelow(64)) + "#" +
                    std::to_string(rng.NextBelow(64));
    conn.queries.push_back(q);
    bds.queries.push_back(q);
    reach.queries.push_back(q);
  }
  cases.push_back(std::move(conn));
  cases.push_back(std::move(bds));
  cases.push_back(std::move(reach));

  // GVP bitmap.
  circuit::CircuitGenOptions copts;
  copts.num_inputs = 6;
  copts.num_gates = 40;
  auto instance = circuit::RandomCvpInstance(copts, &rng);
  Case gvp{"cvp-refactorized",
           core::GvpFactorization()
               .pi1(core::MakeGvpInstance(instance, 0))
               .value(),
           {}};
  const auto gates = static_cast<uint64_t>(instance.circuit.num_gates());
  for (int i = 0; i < num_queries; ++i) {
    gvp.queries.push_back(std::to_string(rng.NextBelow(gates)));
  }
  cases.push_back(std::move(gvp));
  return cases;
}

// ---------------------------------------------------------------------------
// Parity: the kernel path, the pre-decoded scalar loop, the scalar view
// loop and the string path all answer identically — across empty, single,
// odd and larger-than-typical batch sizes.
// ---------------------------------------------------------------------------

TEST(BatchKernelTest, KernelScalarAndStringPathsAgreeOnEveryKernelEntry) {
  constexpr int kMaxBatch = 257;
  auto kernel_engine = MakeEngine();
  BuiltinOptions no_kernels;
  no_kernels.enable_batch_kernels = false;
  auto scalar_engine = MakeEngine(no_kernels);
  BuiltinOptions no_views;
  no_views.enable_views = false;
  auto string_engine = MakeEngine(no_views);

  for (const Case& c : MakeKernelCases(kMaxBatch)) {
    auto entry = kernel_engine->Find(c.problem);
    ASSERT_TRUE(entry.ok()) << c.problem;
    EXPECT_TRUE((*entry)->witness.has_batch_kernel())
        << c.problem << " lost its batch kernel";
    auto stripped = scalar_engine->Find(c.problem);
    ASSERT_TRUE(stripped.ok()) << c.problem;
    EXPECT_FALSE((*stripped)->witness.has_batch_kernel()) << c.problem;
    EXPECT_TRUE((*stripped)->witness.has_view()) << c.problem;

    for (size_t batch : {size_t{0}, size_t{1}, size_t{7}, size_t{64},
                         size_t{257}}) {
      const std::vector<std::string> queries(c.queries.begin(),
                                             c.queries.begin() + batch);
      auto kernel =
          kernel_engine->AnswerBatch(c.problem, c.data, queries);
      ASSERT_TRUE(kernel.ok())
          << c.problem << "/" << batch << ": " << kernel.status().ToString();
      EXPECT_EQ(kernel->mode, BatchAnswerMode::kKernel)
          << c.problem << "/" << batch;
      auto scalar = scalar_engine->AnswerBatch(c.problem, c.data, queries);
      ASSERT_TRUE(scalar.ok()) << c.problem << "/" << batch;
      EXPECT_EQ(scalar->mode, BatchAnswerMode::kScalar)
          << c.problem << "/" << batch;
      auto string_batch =
          string_engine->AnswerBatch(c.problem, c.data, queries);
      ASSERT_TRUE(string_batch.ok()) << c.problem << "/" << batch;
      EXPECT_EQ(kernel->answers, scalar->answers)
          << c.problem << "/" << batch;
      EXPECT_EQ(kernel->answers, string_batch->answers)
          << c.problem << "/" << batch;
      // One kernel call charges the same conceptual work as the scalar
      // probes (the batch is parallel in depth, not in work).
      EXPECT_EQ(kernel->answer_cost.work, scalar->answer_cost.work)
          << c.problem << "/" << batch;
      EXPECT_EQ(kernel->answer_cost.work, string_batch->answer_cost.work)
          << c.problem << "/" << batch;
    }
  }
}

TEST(BatchKernelTest, ComposedReductionDecodeChainKeepsTheKernelEngaged) {
  // member-via-bds transports BDS's kernel across the Lemma 2 composition:
  // β unpads, reassembles, renumbers — all folded into decode_query, so
  // even this doubly-derived entry answers through one kernel call. Its
  // padded factorization ties each query to its own data part, so batches
  // here are per-instance.
  auto engine = MakeEngine();
  auto entry = engine->Find("member-via-bds");
  ASSERT_TRUE(entry.ok());
  EXPECT_TRUE((*entry)->witness.has_batch_kernel());

  Rng rng(55);
  std::vector<int64_t> list;
  for (int i = 0; i < 48; ++i) {
    list.push_back(static_cast<int64_t>(rng.NextBelow(128)));
  }
  for (int i = 0; i < 8; ++i) {
    const int64_t e = static_cast<int64_t>(rng.NextBelow(128));
    const std::string x = core::MakeMemberInstance(128, list, e);
    auto expected = core::ListMembershipProblem().contains(x);
    ASSERT_TRUE(expected.ok());
    auto data = (*entry)->factorization.pi1(x);
    auto query = (*entry)->factorization.pi2(x);
    ASSERT_TRUE(data.ok());
    ASSERT_TRUE(query.ok());
    const std::vector<std::string> queries{*query};
    auto batch = engine->AnswerBatch("member-via-bds", *data, queries);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    EXPECT_EQ(batch->mode, BatchAnswerMode::kKernel);
    ASSERT_EQ(batch->answers.size(), 1u);
    EXPECT_EQ(batch->answers[0], *expected) << "element " << e;
  }
}

TEST(BatchKernelTest, EntriesWithoutNumericQueriesFallBackToScalar) {
  auto engine = MakeEngine();
  // Circuit-assignment queries are not numeric: no decode hook, no kernel.
  for (const char* name : {"cvp-nand-eval", "cvp-via-nand"}) {
    auto entry = engine->Find(name);
    ASSERT_TRUE(entry.ok()) << name;
    EXPECT_FALSE((*entry)->witness.has_batch_kernel()) << name;
    EXPECT_FALSE((*entry)->witness.has_decoded_answer()) << name;
  }
  Rng rng(5);
  circuit::CircuitGenOptions copts;
  copts.num_inputs = 5;
  copts.num_gates = 16;
  auto instance = circuit::RandomCvpInstance(copts, &rng);
  std::string data = core::CvpCircuitDataFactorization()
                         .pi1(core::MakeCvpInstanceString(instance))
                         .value();
  std::vector<std::string> queries;
  for (int i = 0; i < 4; ++i) {
    std::string bits;
    for (int b = 0; b < instance.circuit.num_inputs(); ++b) {
      bits.push_back(rng.NextBool() ? '1' : '0');
    }
    queries.push_back(std::move(bits));
  }
  auto batch = engine->AnswerBatch("cvp-nand-eval", data, queries);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->mode, BatchAnswerMode::kScalar);
}

// ---------------------------------------------------------------------------
// The pre-decoded scalar fallback: a witness with decode_query and
// answer_view_decoded but no answer_view_batch still stops re-parsing
// bytes per query.
// ---------------------------------------------------------------------------

TEST(BatchKernelTest, DecodedScalarFallbackRunsWhenNoKernelExists) {
  auto engine = std::make_unique<QueryEngine>();
  ProblemEntry entry;
  entry.name = "member-no-kernel";
  entry.has_language = true;
  entry.problem = core::ListMembershipProblem();
  entry.factorization = core::MemberFactorization();
  entry.witness = core::MemberWitness();
  ASSERT_TRUE(entry.witness.has_batch_kernel());
  entry.witness.answer_view_batch = nullptr;
  ASSERT_TRUE(entry.witness.has_decoded_answer());
  ASSERT_TRUE(engine->Register(std::move(entry)).ok());

  Rng rng(11);
  std::vector<int64_t> list;
  for (int i = 0; i < 64; ++i) {
    list.push_back(static_cast<int64_t>(rng.NextBelow(256)));
  }
  std::string data = core::MemberFactorization()
                         .pi1(core::MakeMemberInstance(256, list, 0))
                         .value();
  std::vector<std::string> queries;
  for (int i = 0; i < 33; ++i) {
    queries.push_back(std::to_string(rng.NextBelow(256)));
  }
  auto batch = engine->AnswerBatch("member-no-kernel", data, queries);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->mode, BatchAnswerMode::kPreDecoded);
  for (size_t i = 0; i < queries.size(); ++i) {
    bool expected = false;
    const int64_t e = std::stoll(queries[i]);
    for (int64_t m : list) expected = expected || m == e;
    EXPECT_EQ(batch->answers[i], expected) << i;
  }
}

// ---------------------------------------------------------------------------
// Error parity: an invalid query fails the whole batch on every path with
// the same status code (first-error-wins).
// ---------------------------------------------------------------------------

TEST(BatchKernelTest, InvalidQueriesFailTheBatchOnEveryPath) {
  auto kernel_engine = MakeEngine();
  BuiltinOptions no_kernels;
  no_kernels.enable_batch_kernels = false;
  auto scalar_engine = MakeEngine(no_kernels);

  Rng rng(21);
  auto g = graph::ErdosRenyi(32, 64, /*directed=*/false, &rng);
  std::string conn_data =
      core::ConnFactorization().pi1(core::MakeConnInstance(g, 0, 0)).value();
  // Out-of-range endpoints (positive and negative) sandwiched between
  // valid queries, and a malformed decode.
  const std::vector<std::vector<std::string>> bad_batches = {
      {"0#1", "5#999999", "2#3"},
      {"0#1", "-7#2"},
      {"0#1", "not-a-pair"},
  };
  for (const auto& queries : bad_batches) {
    auto kernel = kernel_engine->AnswerBatch("connectivity", conn_data,
                                             queries);
    auto scalar = scalar_engine->AnswerBatch("connectivity", conn_data,
                                             queries);
    ASSERT_FALSE(kernel.ok()) << queries.back();
    ASSERT_FALSE(scalar.ok()) << queries.back();
    EXPECT_EQ(kernel.status().code(), scalar.status().code())
        << queries.back();
  }
}

// ---------------------------------------------------------------------------
// Warm kernel batches keep the serving-layer counters clean: lock-free
// snapshot hits, zero key builds, zero misses.
// ---------------------------------------------------------------------------

TEST(BatchKernelTest, WarmKernelBatchesStayLockFreeAndKeyBuildFree) {
  auto engine = MakeEngine();
  Rng rng(31);
  std::vector<int64_t> list;
  for (int i = 0; i < 256; ++i) {
    list.push_back(static_cast<int64_t>(rng.NextBelow(1024)));
  }
  auto handle = engine->Intern(
      "list-membership", core::MemberFactorization()
                             .pi1(core::MakeMemberInstance(1024, list, 0))
                             .value());
  ASSERT_TRUE(handle.ok());
  std::vector<std::string> queries;
  for (int i = 0; i < 128; ++i) {
    queries.push_back(std::to_string(rng.NextBelow(1024)));
  }
  // Cold batch runs Π; everything after is the warm steady state.
  ASSERT_TRUE(engine->AnswerBatch(*handle, queries).ok());
  const auto before = engine->store().stats();
  for (int i = 0; i < 50; ++i) {
    auto batch = engine->AnswerBatch(*handle, queries);
    ASSERT_TRUE(batch.ok());
    EXPECT_EQ(batch->mode, BatchAnswerMode::kKernel);
    EXPECT_TRUE(batch->cache_hit);
    EXPECT_EQ(batch->prepare_runs, 0);
    EXPECT_GT(batch->answer_bytes_read, 0);
  }
  const auto after = engine->store().stats();
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(after.key_builds, before.key_builds);
  EXPECT_EQ(after.locked_hits, 0);
  EXPECT_EQ(after.hits, before.hits + 50);
}

// ---------------------------------------------------------------------------
// Concurrency: kernel batches racing ApplyDelta re-keys (run under TSan in
// CI). Every batch must answer exactly its pinned version — never a torn
// view — and the kernel path must stay engaged throughout.
// ---------------------------------------------------------------------------

TEST(BatchKernelTest, ConcurrentKernelBatchesRacingApplyDeltaStayConsistent) {
  Rng rng(0xbead);
  const int64_t universe = 512;
  constexpr int kVersions = 5;

  std::vector<std::vector<int64_t>> lists(kVersions);
  for (int i = 0; i < 100; ++i) {
    lists[0].push_back(
        static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(universe))));
  }
  std::vector<DeltaBatch> deltas(kVersions - 1);
  for (int v = 1; v < kVersions; ++v) {
    lists[v] = lists[v - 1];
    for (int i = 0; i < 4; ++i) {
      DeltaOp op;
      op.kind = DeltaOp::Kind::kListInsert;
      op.a = static_cast<int64_t>(
          rng.NextBelow(static_cast<uint64_t>(universe)));
      deltas[static_cast<size_t>(v - 1)].ops.push_back(op);
      lists[v].push_back(op.a);
    }
  }
  std::vector<std::string> version_data(kVersions);
  {
    auto scratch = MakeEngine();
    version_data[0] =
        core::MemberFactorization()
            .pi1(core::MakeMemberInstance(universe, lists[0], 0))
            .value();
    for (int v = 1; v < kVersions; ++v) {
      auto outcome = scratch->ApplyDelta("list-membership",
                                         version_data[v - 1],
                                         deltas[static_cast<size_t>(v - 1)]);
      ASSERT_TRUE(outcome.ok());
      version_data[v] = outcome->new_data;
    }
  }
  std::vector<std::string> queries;
  for (int i = 0; i < 16; ++i) {
    queries.push_back(std::to_string(rng.NextBelow(universe)));
  }
  std::vector<std::vector<bool>> expected(kVersions);
  for (int v = 0; v < kVersions; ++v) {
    for (const std::string& q : queries) {
      const int64_t e = std::stoll(q);
      bool found = false;
      for (int64_t m : lists[static_cast<size_t>(v)]) found = found || m == e;
      expected[static_cast<size_t>(v)].push_back(found);
    }
  }

  auto engine = MakeEngine();
  ASSERT_TRUE(
      engine->AnswerBatch("list-membership", version_data[0], queries).ok());

  std::atomic<int> mismatches{0};
  std::atomic<int> scalar_batches{0};
  std::atomic<int> errors{0};
  std::atomic<bool> done{false};

  std::thread updater([&] {
    for (int v = 1; v < kVersions; ++v) {
      auto outcome =
          engine->ApplyDelta("list-membership", version_data[v - 1],
                             deltas[static_cast<size_t>(v - 1)]);
      if (!outcome.ok()) ++errors;
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> verifiers;
  for (int t = 0; t < 4; ++t) {
    verifiers.emplace_back([&, t] {
      Rng thread_rng(500 + static_cast<uint64_t>(t));
      while (!done.load(std::memory_order_acquire)) {
        const int v = static_cast<int>(thread_rng.NextBelow(kVersions));
        auto batch = engine->AnswerBatch("list-membership",
                                         version_data[static_cast<size_t>(v)],
                                         queries);
        if (!batch.ok()) {
          ++errors;
          continue;
        }
        if (batch->answers != expected[static_cast<size_t>(v)]) ++mismatches;
        if (batch->mode != BatchAnswerMode::kKernel) ++scalar_batches;
      }
    });
  }
  updater.join();
  done.store(true, std::memory_order_release);
  for (auto& t : verifiers) t.join();

  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(mismatches.load(), 0)
      << "a kernel batch observed a torn or stale Π-view";
  EXPECT_EQ(scalar_batches.load(), 0)
      << "a racing batch fell off the kernel path";
}

}  // namespace
}  // namespace engine
}  // namespace pitract
