#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/rng.h"
#include "common/serde.h"
#include "core/problems.h"
#include "engine/builtins.h"
#include "engine/engine.h"
#include "engine/prepared_store.h"
#include "engine/serve.h"

namespace pitract {
namespace engine {
namespace {

namespace fs = std::filesystem;

std::string UniqueTempDir(const char* tag) {
  static std::atomic<int> counter{0};
  fs::path dir = fs::temp_directory_path() /
                 (std::string("pitract_") + tag + "_" +
                  std::to_string(::getpid()) + "_" +
                  std::to_string(counter.fetch_add(1)));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::vector<int64_t> RandomList(Rng* rng, int64_t universe, int count) {
  std::vector<int64_t> list;
  for (int i = 0; i < count; ++i) {
    list.push_back(
        static_cast<int64_t>(rng->NextBelow(static_cast<uint64_t>(universe))));
  }
  return list;
}

// ---------------------------------------------------------------------------
// In-flight Π deduplication: a concurrent miss storm runs Π exactly once.
// ---------------------------------------------------------------------------

TEST(PreparedStoreConcurrencyTest, MissStormRunsComputeExactlyOnce) {
  PreparedStore::Options options;
  options.shards = 8;
  PreparedStore store(options);

  constexpr int kThreads = 8;
  std::atomic<int> computes{0};
  std::atomic<int> started{0};
  auto compute = [&computes, &started](CostMeter* meter) -> Result<std::string> {
    ++computes;
    // Hold Π open until every thread has had the chance to miss, so the
    // storm genuinely contends instead of serializing by accident.
    while (started.load() < kThreads) {
      std::this_thread::yield();
    }
    if (meter != nullptr) meter->AddSerial(1000);
    return std::string("prepared-payload");
  };

  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const std::string>> results(kThreads);
  CostMeter meter;  // shared: atomic counters make concurrent charges safe
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ++started;
      auto result = store.GetOrCompute("p", "w", "same-data", compute, &meter);
      ASSERT_TRUE(result.ok());
      results[static_cast<size_t>(t)] = *result;
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(computes.load(), 1);  // Π executed exactly once
  for (const auto& result : results) {
    ASSERT_NE(result, nullptr);
    EXPECT_EQ(*result, "prepared-payload");
  }
  auto stats = store.stats();
  EXPECT_EQ(stats.misses, 1);
  // Every non-winner was served without running Π — either by blocking on
  // the in-flight shared_future or (if it arrived late) by a plain hit.
  EXPECT_EQ(stats.hits, kThreads - 1);
  EXPECT_LE(stats.inflight_waits, kThreads - 1);
  // CostMeter-verified: Π's work was charged once; everyone else paid a
  // single probe op.
  EXPECT_EQ(meter.work(), 1000 + (kThreads - 1));
  EXPECT_EQ(store.size(), 1u);
}

TEST(PreparedStoreConcurrencyTest, FailedComputeIsSharedAndRetriable) {
  PreparedStore store;
  std::atomic<int> computes{0};
  auto failing = [&computes](CostMeter*) -> Result<std::string> {
    ++computes;
    return Status::Internal("Π exploded");
  };
  auto result = store.GetOrCompute("p", "w", "d", failing);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_FALSE(store.Contains("p", "w", "d"));
  // The failure is not cached: the next call recomputes (and may succeed).
  auto ok = store.GetOrCompute(
      "p", "w", "d", [](CostMeter*) -> Result<std::string> {
        return std::string("fine");
      });
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(computes.load(), 1);
}

TEST(PreparedStoreConcurrencyTest, ThrowingComputeDoesNotLeakInflightSlot) {
  PreparedStore store;
  auto throwing = [](CostMeter*) -> Result<std::string> {
    throw std::runtime_error("bad_alloc stand-in");
  };
  auto result = store.GetOrCompute("p", "w", "d", throwing);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  // The unwind released the in-flight slot: the key is retriable, not
  // deadlocked behind a promise nobody will fulfill.
  auto retry = store.GetOrCompute(
      "p", "w", "d",
      [](CostMeter*) -> Result<std::string> { return std::string("fine"); });
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(**retry, "fine");
}

TEST(PreparedStoreConcurrencyTest, DistinctKeysProceedInParallelShards) {
  PreparedStore::Options options;
  options.shards = 8;
  PreparedStore store(options);
  constexpr int kThreads = 8;
  std::atomic<int> computes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, &computes, t] {
      auto result = store.GetOrCompute(
          "p", "w", "data-" + std::to_string(t),
          [&computes](CostMeter*) -> Result<std::string> {
            ++computes;
            return std::string("x");
          });
      ASSERT_TRUE(result.ok());
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(computes.load(), kThreads);
  EXPECT_EQ(store.size(), static_cast<size_t>(kThreads));
  EXPECT_EQ(store.stats().misses, kThreads);
}

// ---------------------------------------------------------------------------
// UpdateData: Δ-patching a resident entry in place.
// ---------------------------------------------------------------------------

TEST(PreparedStoreUpdateTest, PatchReKeysEntryAndFixesAccounting) {
  PreparedStore::Options options;
  options.shards = 4;
  PreparedStore store(options);
  ASSERT_TRUE(store
                  .GetOrCompute("p", "w", "old-data",
                                [](CostMeter*) -> Result<std::string> {
                                  return std::string("payload-v1");
                                })
                  .ok());
  const size_t bytes_before = store.bytes_resident();

  CostMeter meter;
  auto status = store.UpdateData(
      "p", "w", "old-data", "new-data!",
      [](std::string* prepared, CostMeter* m) {
        *prepared += "+delta";
        if (m != nullptr) m->AddSerial(3);
        return Status::OK();
      },
      &meter);
  ASSERT_TRUE(status.ok()) << status.ToString();

  // Re-keyed: the old data part no longer counts as current (it is
  // retained for pinned readers under the default two-version window, so
  // size() still sees it), and the new one serves the patched payload
  // without running Π.
  EXPECT_FALSE(store.Contains("p", "w", "old-data"));
  EXPECT_TRUE(store.Contains("p", "w", "new-data!"));
  EXPECT_EQ(store.size(), 2u);
  bool hit = false;
  auto patched = store.GetOrCompute(
      "p", "w", "new-data!",
      [](CostMeter*) -> Result<std::string> {
        return Status::Internal("Π must not run on a patched entry");
      },
      nullptr, &hit);
  ASSERT_TRUE(patched.ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(**patched, "payload-v1+delta");
  // Both versions stay accounted: the retained v1 plus the patched v2,
  // whose payload (+6) and key (+1) grew past the original.
  EXPECT_EQ(store.bytes_resident(), 2 * bytes_before + 7);
  EXPECT_EQ(meter.work(), 1 + 3);  // digest probe + the patch's charges
  EXPECT_EQ(store.stats().patches, 1);
  EXPECT_EQ(store.stats().patch_fallbacks, 0);
}

TEST(PreparedStoreUpdateTest, RetainsVersionWindowTrimsAndResolvesLineage) {
  PreparedStore::Options options;
  options.shards = 4;
  options.versions = 2;
  PreparedStore store(options);
  ASSERT_TRUE(store
                  .GetOrCompute("p", "w", "d0",
                                [](CostMeter*) -> Result<std::string> {
                                  return std::string("v0");
                                })
                  .ok());
  auto bump = [&](const std::string& from, const std::string& to,
                  const std::string& suffix) {
    return store.UpdateData("p", "w", from, to,
                            [&suffix](std::string* prepared, CostMeter*) {
                              *prepared += suffix;
                              return Status::OK();
                            });
  };

  ASSERT_TRUE(bump("d0", "d1", "+1").ok());
  EXPECT_EQ(store.size(), 2u);  // the v1 head plus the retained v0
  ASSERT_TRUE(bump("d1", "d2", "+2").ok());
  EXPECT_EQ(store.size(), 2u);  // v2 + v1: the window trimmed v0
  EXPECT_EQ(store.stats().evictions, 1);

  // Only the head counts as current; the retained predecessor is
  // digest-addressable but invisible to Contains.
  EXPECT_TRUE(store.Contains("p", "w", "d2"));
  EXPECT_FALSE(store.Contains("p", "w", "d1"));
  EXPECT_FALSE(store.Contains("p", "w", "d0"));

  // A reader pinned on the retained v1 keeps getting exactly v1's Π.
  PreparedStore::Key k1 = store.BuildKeyCounted("p", "w", "d1");
  PreparedStore::PreparedView view;
  ASSERT_TRUE(store.TryGetView(k1, PreparedStore::EntryOptions{}, nullptr,
                               &view));
  EXPECT_EQ(*view.prepared, "v0+1");
  EXPECT_EQ(store.stats().lineage_resolves, 0);

  // A reader pinned on the trimmed v0 resolves forward to the first
  // resident successor (v1) instead of going cold.
  PreparedStore::Key k0 = store.BuildKeyCounted("p", "w", "d0");
  ASSERT_TRUE(store.TryGetView(k0, PreparedStore::EntryOptions{}, nullptr,
                               &view));
  EXPECT_EQ(*view.prepared, "v0+1");
  EXPECT_EQ(store.stats().lineage_resolves, 1);

  // The retained v1 must not accept a second delta: the lineage has one
  // successor per version, never a fork.
  auto forked = bump("d1", "d9", "+X");
  EXPECT_FALSE(forked.ok());
  EXPECT_EQ(store.stats().patch_fallbacks, 1);
  EXPECT_FALSE(store.Contains("p", "w", "d9"));
}

TEST(PreparedStoreUpdateTest, SingleVersionStoreStillForwardsStaleReaders) {
  PreparedStore::Options options;
  options.shards = 4;
  options.versions = 1;  // PR-6 behavior: the old entry is erased outright
  PreparedStore store(options);
  ASSERT_TRUE(store
                  .GetOrCompute("p", "w", "d0",
                                [](CostMeter*) -> Result<std::string> {
                                  return std::string("v0");
                                })
                  .ok());
  ASSERT_TRUE(store
                  .UpdateData("p", "w", "d0", "d1",
                              [](std::string* prepared, CostMeter*) {
                                *prepared += "+1";
                                return Status::OK();
                              })
                  .ok());
  EXPECT_EQ(store.size(), 1u);
  EXPECT_FALSE(store.Contains("p", "w", "d0"));

  // Even without retention the lineage record forwards a stale reader to
  // the successor — the one consistent Π that still exists.
  PreparedStore::Key k0 = store.BuildKeyCounted("p", "w", "d0");
  PreparedStore::PreparedView view;
  ASSERT_TRUE(store.TryGetView(k0, PreparedStore::EntryOptions{}, nullptr,
                               &view));
  EXPECT_EQ(*view.prepared, "v0+1");
  EXPECT_EQ(store.stats().lineage_resolves, 1);
}

TEST(PreparedStoreUpdateTest, MissingEntryAndFailingPatchFallBack) {
  PreparedStore store;
  auto noop = [](std::string*, CostMeter*) { return Status::OK(); };
  auto missing = store.UpdateData("p", "w", "never-inserted", "next", noop);
  EXPECT_EQ(missing.code(), StatusCode::kNotFound);

  ASSERT_TRUE(store
                  .GetOrCompute("p", "w", "d",
                                [](CostMeter*) -> Result<std::string> {
                                  return std::string("v1");
                                })
                  .ok());
  auto failing = store.UpdateData(
      "p", "w", "d", "d2",
      [](std::string* prepared, CostMeter*) {
        *prepared = "half-written garbage";
        return Status::Internal("patch exploded");
      });
  EXPECT_EQ(failing.code(), StatusCode::kInternal);
  // The failed patch worked on a private copy: the resident entry still
  // serves the pre-delta payload under the pre-delta key.
  EXPECT_TRUE(store.Contains("p", "w", "d"));
  EXPECT_FALSE(store.Contains("p", "w", "d2"));
  bool hit = false;
  auto intact = store.GetOrCompute(
      "p", "w", "d",
      [](CostMeter*) -> Result<std::string> { return std::string("nope"); },
      nullptr, &hit);
  ASSERT_TRUE(intact.ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(**intact, "v1");
  EXPECT_EQ(store.stats().patch_fallbacks, 2);
  EXPECT_EQ(store.stats().patches, 0);
}

TEST(PreparedStoreUpdateTest, PatchRespillsUnderTheNewDigest) {
  const std::string dir = UniqueTempDir("patch_respill");
  PreparedStore store;
  ASSERT_TRUE(store
                  .GetOrCompute("p", "w", "v1",
                                [](CostMeter*) -> Result<std::string> {
                                  return std::string("pi-of-v1");
                                })
                  .ok());
  ASSERT_TRUE(store.Spill(dir).ok());
  ASSERT_TRUE(store
                  .UpdateData("p", "w", "v1", "v2",
                              [](std::string* prepared, CostMeter*) {
                                *prepared = "pi-of-v2";
                                return Status::OK();
                              })
                  .ok());
  // A restarted store sees exactly the post-delta world: the patched
  // entry under its new digest, no resurrected pre-delta file.
  PreparedStore restarted;
  auto loaded = restarted.Load(dir);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, 1u);
  EXPECT_TRUE(restarted.Contains("p", "w", "v2"));
  EXPECT_FALSE(restarted.Contains("p", "w", "v1"));
  bool hit = false;
  auto entry = restarted.GetOrCompute(
      "p", "w", "v2",
      [](CostMeter*) -> Result<std::string> { return std::string("nope"); },
      nullptr, &hit);
  ASSERT_TRUE(entry.ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(**entry, "pi-of-v2");
  fs::remove_all(dir);
}

// The miss-storm interleaving: an ApplyDelta racing an in-flight Π for
// the same data part must never re-key the entry out from under the
// waiters blocked on the shared_future. Since PR 5 UpdateData does not
// degrade immediately either: it blocks on the storm's shared_future once
// and retries, so the delta patches exactly what the storm publishes
// (Stats::update_retries counts the wait).
TEST(PreparedStoreUpdateTest, InflightMissStormDeltaWaitsThenPatches) {
  PreparedStore::Options options;
  options.shards = 4;
  PreparedStore store(options);

  constexpr int kWaiters = 4;
  std::atomic<int> arrived{0};
  std::atomic<bool> release{false};
  auto blocking_compute = [&](CostMeter*) -> Result<std::string> {
    ++arrived;
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    return std::string("pi-of-old");
  };

  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const std::string>> results(kWaiters);
  for (int t = 0; t < kWaiters; ++t) {
    threads.emplace_back([&, t] {
      auto result =
          store.GetOrCompute("p", "w", "storm-data", blocking_compute);
      ASSERT_TRUE(result.ok());
      results[static_cast<size_t>(t)] = *result;
    });
  }
  // Wait until the winner is inside Π (the storm is in flight for real).
  while (arrived.load() == 0) std::this_thread::yield();

  std::atomic<bool> update_done{false};
  Status status = Status::Internal("UpdateData did not run");
  std::thread updater([&] {
    status = store.UpdateData("p", "w", "storm-data", "storm-data-v2",
                              [](std::string* prepared, CostMeter*) {
                                EXPECT_EQ(*prepared, "pi-of-old");
                                *prepared = "patched";
                                return Status::OK();
                              });
    update_done.store(true, std::memory_order_release);
  });

  // The delta must block on the storm, not fall back while it is in
  // flight (the pre-PR-5 behavior returned Unavailable here). The retry
  // counter ticks *before* the wait, so polling it proves the updater is
  // parked on the shared_future.
  while (store.stats().update_retries == 0) std::this_thread::yield();
  EXPECT_FALSE(update_done.load(std::memory_order_acquire));
  EXPECT_EQ(store.stats().patch_fallbacks, 0);

  release.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  updater.join();

  // The retry patched what the storm published and re-keyed it.
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(store.stats().update_retries, 1);
  EXPECT_EQ(store.stats().patches, 1);
  EXPECT_EQ(store.stats().patch_fallbacks, 0);
  EXPECT_FALSE(store.Contains("p", "w", "storm-data"));
  EXPECT_TRUE(store.Contains("p", "w", "storm-data-v2"));

  // Every waiter on the shared_future still got the *pre-delta* Π — the
  // re-key replaced the entry, it never mutated the published payload.
  for (const auto& result : results) {
    ASSERT_NE(result, nullptr);
    EXPECT_EQ(*result, "pi-of-old");
  }
}

// When the storm UpdateData waited out *fails* its Π, the retry finds no
// resident entry and the delta degrades to recompute-on-miss (NotFound),
// still counting the retry.
TEST(PreparedStoreUpdateTest, RetryAfterFailedStormFallsBackToNotFound) {
  PreparedStore::Options options;
  options.shards = 4;
  PreparedStore store(options);

  std::atomic<bool> release{false};
  std::atomic<int> arrived{0};
  std::thread loser([&] {
    auto result = store.GetOrCompute(
        "p", "w", "doomed", [&](CostMeter*) -> Result<std::string> {
          ++arrived;
          while (!release.load(std::memory_order_acquire)) {
            std::this_thread::yield();
          }
          return Status::Internal("Π failed");
        });
    EXPECT_FALSE(result.ok());
  });
  while (arrived.load() == 0) std::this_thread::yield();

  std::thread updater([&] {
    auto status = store.UpdateData("p", "w", "doomed", "doomed-v2",
                                   [](std::string* prepared, CostMeter*) {
                                     *prepared = "patched";
                                     return Status::OK();
                                   });
    EXPECT_EQ(status.code(), StatusCode::kNotFound);
  });
  // Only release the (failing) storm once the updater is provably parked
  // on its shared_future, so the retry is deterministic.
  while (store.stats().update_retries == 0) std::this_thread::yield();
  release.store(true, std::memory_order_release);
  loser.join();
  updater.join();

  EXPECT_EQ(store.stats().update_retries, 1);
  EXPECT_EQ(store.stats().patches, 0);
  EXPECT_EQ(store.stats().patch_fallbacks, 1);
  EXPECT_FALSE(store.Contains("p", "w", "doomed"));
  EXPECT_FALSE(store.Contains("p", "w", "doomed-v2"));
}

// ---------------------------------------------------------------------------
// Byte-budgeted eviction.
// ---------------------------------------------------------------------------

TEST(PreparedStoreEvictionTest, ByteBudgetEvictsLruFirst) {
  PreparedStore::Options options;
  options.shards = 4;
  options.byte_budget = 250;
  PreparedStore store(options);
  PreparedStore::EntryOptions entry_options;
  entry_options.size_of = [](const std::string&) -> size_t { return 100; };
  auto compute = [](CostMeter*) -> Result<std::string> {
    return std::string("payload");
  };

  ASSERT_TRUE(
      store.GetOrCompute("p", "w", "a", compute, nullptr, nullptr, entry_options)
          .ok());
  ASSERT_TRUE(
      store.GetOrCompute("p", "w", "b", compute, nullptr, nullptr, entry_options)
          .ok());
  // Touch "a" so "b" becomes the LRU entry.
  bool hit = false;
  ASSERT_TRUE(
      store.GetOrCompute("p", "w", "a", compute, nullptr, &hit, entry_options)
          .ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(store.bytes_resident(), 200u);

  // A third 100-byte entry overflows the 250-byte budget: LRU ("b") goes.
  ASSERT_TRUE(
      store.GetOrCompute("p", "w", "c", compute, nullptr, nullptr, entry_options)
          .ok());
  EXPECT_LE(store.bytes_resident(), 250u);
  EXPECT_FALSE(store.Contains("p", "w", "b"));
  EXPECT_TRUE(store.Contains("p", "w", "a"));
  EXPECT_TRUE(store.Contains("p", "w", "c"));
  EXPECT_EQ(store.stats().evictions, 1);
}

TEST(PreparedStoreEvictionTest, DefaultSizeTracksPayloadAndKeyBytes) {
  PreparedStore::Options options;
  options.byte_budget = 0;  // unbounded; just check the accounting
  PreparedStore store(options);
  ASSERT_TRUE(store
                  .GetOrCompute("p", "w", "d",
                                [](CostMeter*) -> Result<std::string> {
                                  return std::string(100, 'x');
                                })
                  .ok());
  // key "p\x1fw\x1fd" (5) + payload (100) + the fixed per-entry overhead.
  EXPECT_EQ(store.bytes_resident(),
            105u + PreparedStore::kEntryOverheadBytes);
}

TEST(PreparedStoreEvictionTest, EntryCapStillEnforced) {
  PreparedStore store(/*max_entries=*/2);
  auto compute = [](CostMeter*) -> Result<std::string> {
    return std::string("x");
  };
  for (const char* data : {"a", "b", "c", "d"}) {
    ASSERT_TRUE(store.GetOrCompute("p", "w", data, compute).ok());
  }
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.stats().evictions, 2);
  EXPECT_TRUE(store.Contains("p", "w", "d"));
}

// The CLOCK second-chance bit: a hit arms an entry's `referenced` bit, and
// the next eviction sweep consumes it instead of evicting the entry — so
// an entry that was *hit* survives one that was merely *inserted later*,
// which pure recency stamps would get backwards. The hit-rate can only
// improve: hot entries stay resident one sweep longer.
TEST(PreparedStoreEvictionTest, ClockSecondChanceSparesHitEntriesOverNewerColdOnes) {
  PreparedStore store(/*max_entries=*/2);
  std::atomic<int> computes{0};
  auto compute = [&computes](CostMeter*) -> Result<std::string> {
    ++computes;
    return std::string("x");
  };

  ASSERT_TRUE(store.GetOrCompute("p", "w", "a", compute).ok());
  bool hit = false;
  ASSERT_TRUE(store.GetOrCompute("p", "w", "a", compute, nullptr, &hit).ok());
  EXPECT_TRUE(hit);  // arms "a"'s second-chance bit
  ASSERT_TRUE(store.GetOrCompute("p", "w", "b", compute).ok());

  // Over cap: "b" has the newest stamp but no second chance, "a" has an
  // older stamp but was hit. Stamp-only LRU would evict "a"; CLOCK spares
  // it and takes "b".
  ASSERT_TRUE(store.GetOrCompute("p", "w", "c", compute).ok());
  EXPECT_TRUE(store.Contains("p", "w", "a"));
  EXPECT_FALSE(store.Contains("p", "w", "b"));
  EXPECT_TRUE(store.Contains("p", "w", "c"));
  EXPECT_EQ(store.stats().evictions, 1);

  // Hit-rate no worse: the spared entry still answers warm (Π not re-run),
  // and the hit re-arms its bit for the next sweep.
  hit = false;
  ASSERT_TRUE(store.GetOrCompute("p", "w", "a", compute, nullptr, &hit).ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(computes.load(), 3);  // a, b, c — never a recompute of "a"

  // Re-armed: "a" survives the next sweep too ("c" goes, never hit).
  ASSERT_TRUE(store.GetOrCompute("p", "w", "d", compute).ok());
  EXPECT_TRUE(store.Contains("p", "w", "a"));
  EXPECT_FALSE(store.Contains("p", "w", "c"));

  // The bit is one-shot: that sweep consumed "a"'s chance, so without a
  // fresh hit it is back to plain stamp order. Touch "d" into a newer
  // epoch (recency stamps are per-epoch, and "a"'s last hit tied "d"'s
  // insert epoch), and the next sweep takes "a" — its historical hits no
  // longer protect it.
  hit = false;
  ASSERT_TRUE(store.GetOrCompute("p", "w", "d", compute, nullptr, &hit).ok());
  EXPECT_TRUE(hit);
  ASSERT_TRUE(store.GetOrCompute("p", "w", "e", compute).ok());
  EXPECT_FALSE(store.Contains("p", "w", "a"));
  EXPECT_TRUE(store.Contains("p", "w", "d"));
  EXPECT_TRUE(store.Contains("p", "w", "e"));
}

// ---------------------------------------------------------------------------
// Spill / Load persistence.
// ---------------------------------------------------------------------------

TEST(PreparedStorePersistenceTest, SpillLoadRoundTripsBitForBit) {
  const std::string dir = UniqueTempDir("spill");
  PreparedStore store;
  const std::string payload_a = "sorted:1,2,3";
  std::string payload_b(1024, '\x7f');
  payload_b[17] = '\0';  // binary-safe round trip, not text-safe only
  ASSERT_TRUE(store
                  .GetOrCompute("prob-a", "wit", "data-a",
                                [&](CostMeter*) -> Result<std::string> {
                                  return payload_a;
                                })
                  .ok());
  ASSERT_TRUE(store
                  .GetOrCompute("prob-b", "wit", "data-b",
                                [&](CostMeter*) -> Result<std::string> {
                                  return payload_b;
                                })
                  .ok());
  // A non-spillable entry must stay out of the spill set.
  PreparedStore::EntryOptions ephemeral;
  ephemeral.spillable = false;
  ASSERT_TRUE(store
                  .GetOrCompute("prob-c", "wit", "data-c",
                                [](CostMeter*) -> Result<std::string> {
                                  return std::string("transient");
                                },
                                nullptr, nullptr, ephemeral)
                  .ok());
  ASSERT_TRUE(store.Spill(dir).ok());
  EXPECT_EQ(store.stats().spilled, 2);

  PreparedStore restarted;
  auto loaded = restarted.Load(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, 2u);
  EXPECT_TRUE(restarted.Contains("prob-a", "wit", "data-a"));
  EXPECT_TRUE(restarted.Contains("prob-b", "wit", "data-b"));
  EXPECT_FALSE(restarted.Contains("prob-c", "wit", "data-c"));

  // Warm entries serve without recomputing, bit-for-bit.
  std::atomic<int> recomputes{0};
  auto must_not_run = [&recomputes](CostMeter*) -> Result<std::string> {
    ++recomputes;
    return std::string("recomputed");
  };
  bool hit = false;
  auto a = restarted.GetOrCompute("prob-a", "wit", "data-a", must_not_run,
                                  nullptr, &hit);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(**a, payload_a);
  auto b = restarted.GetOrCompute("prob-b", "wit", "data-b", must_not_run,
                                  nullptr, &hit);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(**b, payload_b);
  EXPECT_EQ(recomputes.load(), 0);
  // The non-spillable entry degrades to recompute-on-miss.
  auto c = restarted.GetOrCompute("prob-c", "wit", "data-c", must_not_run,
                                  nullptr, &hit);
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(hit);
  EXPECT_EQ(recomputes.load(), 1);
  fs::remove_all(dir);
}

TEST(PreparedStorePersistenceTest, RespillDropsStaleFilesFromEarlierSpills) {
  const std::string dir = UniqueTempDir("respill");
  auto compute = [](CostMeter*) -> Result<std::string> {
    return std::string("x");
  };
  {
    PreparedStore store;
    ASSERT_TRUE(store.GetOrCompute("p", "w", "old", compute).ok());
    ASSERT_TRUE(store.GetOrCompute("p", "w", "kept", compute).ok());
    ASSERT_TRUE(store.Spill(dir).ok());
  }
  {
    // A later engine generation no longer holds "old" (evicted, say):
    // spilling to the same directory must not leave its file behind for
    // Load to resurrect.
    PreparedStore store;
    ASSERT_TRUE(store.GetOrCompute("p", "w", "kept", compute).ok());
    ASSERT_TRUE(store.Spill(dir).ok());
  }
  PreparedStore restarted;
  auto loaded = restarted.Load(dir);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, 1u);
  EXPECT_TRUE(restarted.Contains("p", "w", "kept"));
  EXPECT_FALSE(restarted.Contains("p", "w", "old"));
  fs::remove_all(dir);
}

// Satellite of the version-race fix: after a Δ-patch re-keys an entry,
// the spill directory must hold exactly the post-delta head, and loading
// that directory back into the *live* store must not clobber the resident
// MVCC lineage (the resident entry carries the superseded/predecessor
// metadata the on-disk frame does not).
TEST(PreparedStorePersistenceTest, LoadAfterRespillSkipsResidentHead) {
  const std::string dir = UniqueTempDir("load_respill");
  PreparedStore store;
  ASSERT_TRUE(store
                  .GetOrCompute("p", "w", "d0",
                                [](CostMeter*) -> Result<std::string> {
                                  return std::string("v0");
                                })
                  .ok());
  ASSERT_TRUE(store.Spill(dir).ok());
  ASSERT_TRUE(store
                  .UpdateData("p", "w", "d0", "d1",
                              [](std::string* prepared, CostMeter*) {
                                prepared->append("+1");
                                return Status::OK();
                              })
                  .ok());
  // The respill rewrote the directory: one file for the new head, the
  // pre-delta file removed.
  size_t pit_files = 0;
  for (const auto& dirent : fs::directory_iterator(dir)) {
    if (dirent.path().extension() == ".pit") ++pit_files;
  }
  EXPECT_EQ(pit_files, 1u);
  // Loading into the live store is a no-op: the head is already resident
  // under the same key, and the resident entry wins.
  auto reloaded = store.Load(dir);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(*reloaded, 0u);
  bool hit = false;
  auto entry = store.GetOrCompute(
      "p", "w", "d1",
      [](CostMeter*) -> Result<std::string> {
        return Status::Internal("must not recompute");
      },
      nullptr, &hit);
  ASSERT_TRUE(entry.ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(**entry, "v0+1");
  // A restart sees only the post-delta head.
  PreparedStore restarted;
  auto loaded = restarted.Load(dir);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, 1u);
  EXPECT_TRUE(restarted.Contains("p", "w", "d1"));
  EXPECT_FALSE(restarted.Contains("p", "w", "d0"));
  fs::remove_all(dir);
}

// The UpdateData-vs-Load race: a loader replaying the spill directory
// while a delta chain re-keys the entry underneath it must never
// resurrect a pre-delta Π over the patched one. Both sides serialize on
// spill_dir_mutex_ (Load's scan+admit vs RespillPatched's write+remove),
// and Load's resident-key check keeps admitted frames from clobbering the
// live head. Run under TSan in CI.
TEST(PreparedStorePersistenceTest, ConcurrentLoadAndRespillKeepPatchedHead) {
  const std::string dir = UniqueTempDir("load_race");
  PreparedStore store;
  ASSERT_TRUE(store
                  .GetOrCompute("p", "w", "d0",
                                [](CostMeter*) -> Result<std::string> {
                                  return std::string("pi");
                                })
                  .ok());
  ASSERT_TRUE(store.Spill(dir).ok());
  constexpr int kVersions = 6;
  std::atomic<bool> done{false};
  std::thread loader([&] {
    while (!done.load(std::memory_order_acquire)) {
      EXPECT_TRUE(store.Load(dir).ok());
    }
    // One final replay after the chain settles: still must not
    // resurrect anything stale.
    EXPECT_TRUE(store.Load(dir).ok());
  });
  std::string data = "d0";
  for (int k = 1; k <= kVersions; ++k) {
    const std::string next = "d" + std::to_string(k);
    ASSERT_TRUE(store
                    .UpdateData("p", "w", data, next,
                                [k](std::string* prepared, CostMeter*) {
                                  prepared->append("+" + std::to_string(k));
                                  return Status::OK();
                                })
                    .ok());
    data = next;
  }
  done.store(true, std::memory_order_release);
  loader.join();
  bool hit = false;
  auto entry = store.GetOrCompute(
      "p", "w", data,
      [](CostMeter*) -> Result<std::string> {
        return Status::Internal("must not recompute");
      },
      nullptr, &hit);
  ASSERT_TRUE(entry.ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(**entry, "pi+1+2+3+4+5+6");
  fs::remove_all(dir);
}

TEST(PreparedStorePersistenceTest, CorruptSpillFilesAreSkipped) {
  const std::string dir = UniqueTempDir("corrupt");
  PreparedStore store;
  ASSERT_TRUE(store
                  .GetOrCompute("p", "w", "d",
                                [](CostMeter*) -> Result<std::string> {
                                  return std::string("good");
                                })
                  .ok());
  ASSERT_TRUE(store.Spill(dir).ok());
  {  // Wrong magic.
    std::ofstream bad(fs::path(dir) / "deadbeefdeadbeef.pit",
                      std::ios::binary);
    bad << "not a spill file";
  }
  {  // Truncated frame.
    std::string framed;
    serde::PutU32(&framed, 0x31544950);
    serde::PutU32(&framed, 1);
    serde::PutU64(&framed, 1 << 30);  // claims 1 GiB of key bytes
    std::ofstream bad(fs::path(dir) / "0123456789abcdef.pit",
                      std::ios::binary);
    bad << framed;
  }
  PreparedStore restarted;
  auto loaded = restarted.Load(dir);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, 1u);  // only the well-formed file
  EXPECT_TRUE(restarted.Contains("p", "w", "d"));
  // Neither bad file is a *corruption* signal: foreign magic and an old
  // frame version are expected after upgrades, so both count as skips.
  auto stats = restarted.stats();
  EXPECT_EQ(stats.load_skipped, 2);
  EXPECT_EQ(stats.load_corrupt, 0);
  fs::remove_all(dir);
}

TEST(PreparedStorePersistenceTest, LoadClassifiesBitRotAsCorrupt) {
  const std::string dir = UniqueTempDir("bitrot");
  PreparedStore store;
  ASSERT_TRUE(store
                  .GetOrCompute("p", "w", "d",
                                [](CostMeter*) -> Result<std::string> {
                                  return std::string("payload-bytes");
                                })
                  .ok());
  ASSERT_TRUE(store.Spill(dir).ok());
  // Flip one bit somewhere in the body of the (only) spilled frame.
  fs::path victim;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) victim = entry.path();
  }
  ASSERT_FALSE(victim.empty());
  std::string framed;
  {
    std::ifstream in(victim, std::ios::binary);
    framed.assign(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>());
  }
  ASSERT_GT(framed.size(), 24u);
  framed[framed.size() / 2] =
      static_cast<char>(static_cast<unsigned char>(framed[framed.size() / 2]) ^
                        0x01);
  {
    std::ofstream out(victim, std::ios::binary | std::ios::trunc);
    out << framed;
  }
  PreparedStore restarted;
  auto loaded = restarted.Load(dir);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, 0u);
  EXPECT_FALSE(restarted.Contains("p", "w", "d"));
  auto stats = restarted.stats();
  EXPECT_EQ(stats.load_corrupt, 1);  // valid header, checksum mismatch
  EXPECT_EQ(stats.load_skipped, 0);
  fs::remove_all(dir);
}

TEST(PreparedStorePersistenceTest, SpillFailuresAreCountedAndBestEffort) {
  const std::string dir = UniqueTempDir("spill_fail");
  PreparedStore store;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(store
                    .GetOrCompute("p", "w", "d" + std::to_string(i),
                                  [i](CostMeter*) -> Result<std::string> {
                                    return "pi" + std::to_string(i);
                                  })
                    .ok());
  }
  {
    failpoint::ScopedFailpoints guard;
    failpoint::Arm("spill.write", failpoint::EveryNth(2));  // 2nd write dies
    auto status = store.Spill(dir);
    // Best effort: the pass visits every entry, counts each failure, and
    // returns the first error instead of aborting at it.
    EXPECT_FALSE(status.ok());
    EXPECT_NE(status.message().find("spill.write"), std::string::npos);
    EXPECT_NE(status.message().find("digest="), std::string::npos);
    auto stats = store.stats();
    EXPECT_EQ(stats.respill_failures, 1);
    EXPECT_EQ(stats.spilled, 2);  // the other two entries still landed
  }
  // With the fault cleared the full spill succeeds and a restart recovers
  // every entry.
  ASSERT_TRUE(store.Spill(dir).ok());
  PreparedStore restarted;
  auto loaded = restarted.Load(dir);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, 3u);
  fs::remove_all(dir);
}

TEST(PreparedStorePersistenceTest, RenameFailpointLeavesNoPublishedFrame) {
  const std::string dir = UniqueTempDir("rename_fail");
  PreparedStore store;
  ASSERT_TRUE(store
                  .GetOrCompute("p", "w", "d",
                                [](CostMeter*) -> Result<std::string> {
                                  return std::string("pi");
                                })
                  .ok());
  {
    failpoint::ScopedFailpoints guard;
    failpoint::Arm("spill.rename", failpoint::Always());
    auto status = store.Spill(dir);
    EXPECT_FALSE(status.ok());
    EXPECT_NE(status.message().find("spill.rename"), std::string::npos);
    EXPECT_EQ(store.stats().respill_failures, 1);
  }
  // Write-tmp-then-rename atomicity: an unpublished spill never becomes a
  // loadable frame.
  PreparedStore restarted;
  auto loaded = restarted.Load(dir);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, 0u);
  fs::remove_all(dir);
}

TEST(PreparedStorePersistenceTest, LoadFromMissingDirectoryFails) {
  PreparedStore store;
  EXPECT_FALSE(store.Load("/nonexistent/pitract/spill/dir").ok());
}

// ---------------------------------------------------------------------------
// Engine-level: miss storm through AnswerBatch, spill→restart→load.
// ---------------------------------------------------------------------------

std::unique_ptr<QueryEngine> MakeEngine(PreparedStore::Options options = {}) {
  auto engine = std::make_unique<QueryEngine>(options);
  auto status = RegisterBuiltins(engine.get());
  EXPECT_TRUE(status.ok()) << status.ToString();
  return engine;
}

TEST(EngineServingTest, ConcurrentBatchStormOnOneDataPartRunsPiOnce) {
  auto engine = MakeEngine();
  Rng rng(1201);
  const int64_t universe = 512;
  std::string data = core::MemberFactorization()
                         .pi1(core::MakeMemberInstance(
                             universe, RandomList(&rng, universe, 300), 0))
                         .value();
  std::vector<std::string> queries;
  for (int i = 0; i < 32; ++i) {
    queries.push_back(std::to_string(rng.NextBelow(universe)));
  }

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int64_t> total_pi_runs{0};
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto batch = engine->AnswerBatch("list-membership", data, queries);
      if (!batch.ok()) {
        ++failures;
        return;
      }
      total_pi_runs += batch->prepare_runs;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // The acceptance bar: ≥8 concurrent batches over one data part, Π ran
  // exactly once (CostMeter/store accounting agrees).
  EXPECT_EQ(total_pi_runs.load(), 1);
  EXPECT_EQ(engine->store().stats().misses, 1);
}

TEST(EngineServingTest, SpillRestartLoadAnswersWithZeroPiRecomputation) {
  const std::string dir = UniqueTempDir("engine_spill");
  Rng rng(1202);
  const int64_t universe = 256;
  std::string data = core::MemberFactorization()
                         .pi1(core::MakeMemberInstance(
                             universe, RandomList(&rng, universe, 120), 0))
                         .value();
  std::vector<std::string> queries;
  for (int i = 0; i < 48; ++i) {
    queries.push_back(std::to_string(rng.NextBelow(universe)));
  }

  std::vector<bool> first_answers;
  {
    auto engine = MakeEngine();
    auto batch = engine->AnswerBatch("list-membership", data, queries);
    ASSERT_TRUE(batch.ok());
    EXPECT_EQ(batch->prepare_runs, 1);
    first_answers = batch->answers;
    ASSERT_TRUE(engine->store().Spill(dir).ok());
  }  // "restart": the first engine and its store are gone

  auto engine = MakeEngine();
  auto loaded = engine->store().Load(dir);
  ASSERT_TRUE(loaded.ok());
  EXPECT_GE(*loaded, 1u);
  auto batch = engine->AnswerBatch("list-membership", data, queries);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->prepare_runs, 0);  // zero Π recomputations post-restart
  EXPECT_TRUE(batch->cache_hit);
  EXPECT_EQ(batch->answers, first_answers);
  EXPECT_EQ(engine->store().stats().misses, 0);
  fs::remove_all(dir);
}

TEST(EngineServingTest, ServeParallelScalesAndDedupsPi) {
  PreparedStore::Options options;
  options.shards = 8;
  auto engine = MakeEngine(options);
  Rng rng(1203);
  constexpr int kParts = 4;
  std::vector<ServeWorkItem> workload;
  for (int part = 0; part < kParts; ++part) {
    ServeWorkItem item;
    item.problem = "list-membership";
    item.data = core::MemberFactorization()
                    .pi1(core::MakeMemberInstance(
                        128, RandomList(&rng, 128, 64), 0))
                    .value();
    for (int i = 0; i < 16; ++i) {
      item.queries.push_back(std::to_string(rng.NextBelow(128)));
    }
    workload.push_back(std::move(item));
  }
  ServeOptions serve_options;
  serve_options.threads = 8;
  serve_options.repeat = 6;
  auto report = ServeParallel(engine.get(), workload, serve_options);
  EXPECT_EQ(report.errors, 0) << report.first_error.ToString();
  EXPECT_EQ(report.batches, kParts * 6);
  EXPECT_EQ(report.queries, kParts * 6 * 16);
  // Π ran once per distinct data part no matter how many threads hammered.
  EXPECT_EQ(report.pi_runs, kParts);
  EXPECT_EQ(engine->store().stats().misses, kParts);
  EXPECT_GT(report.queries_per_second, 0.0);
}

// ---------------------------------------------------------------------------
// Decoded Π-views: memoized next to the payload, built once per entry.
// ---------------------------------------------------------------------------

/// View = a counted string copy of the payload, so tests can both count
/// builds and verify a view's content matches the payload it decodes.
PreparedStore::ViewFn CountingViewFn(std::atomic<int>* builds,
                                     int64_t charge = 0) {
  return [builds, charge](const std::shared_ptr<const std::string>& prepared,
                          CostMeter* meter)
             -> Result<std::shared_ptr<const void>> {
    builds->fetch_add(1);
    if (meter != nullptr && charge > 0) meter->AddSerial(charge);
    return std::shared_ptr<const void>(
        std::make_shared<const std::string>(*prepared));
  };
}

const std::string& ViewString(const PreparedStore::PreparedView& pv) {
  return *static_cast<const std::string*>(pv.view.get());
}

TEST(PreparedStoreViewTest, ViewBuiltExactlyOnceUnderMissStorm) {
  PreparedStore::Options options;
  options.shards = 8;
  PreparedStore store(options);
  constexpr int kThreads = 8;
  std::atomic<int> builds{0};
  std::atomic<int> computes{0};
  std::atomic<int> started{0};
  PreparedStore::EntryOptions entry_options;
  entry_options.make_view = CountingViewFn(&builds, /*charge=*/500);
  auto compute = [&](CostMeter* meter) -> Result<std::string> {
    ++computes;
    while (started.load() < kThreads) std::this_thread::yield();
    if (meter != nullptr) meter->AddSerial(1000);
    return std::string("payload");
  };

  std::vector<std::thread> threads;
  std::vector<PreparedStore::PreparedView> results(kThreads);
  CostMeter meter;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ++started;
      auto result = store.GetOrComputeView("p", "w", "same-data", compute,
                                           &meter, nullptr, entry_options);
      ASSERT_TRUE(result.ok());
      results[static_cast<size_t>(t)] = *result;
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(computes.load(), 1);
  EXPECT_EQ(builds.load(), 1);  // one view build for the whole storm
  EXPECT_EQ(store.stats().view_builds, 1);
  for (const auto& pv : results) {
    ASSERT_NE(pv.view, nullptr);
    EXPECT_EQ(pv.view, results[0].view);  // everyone shares the one view
    EXPECT_EQ(ViewString(pv), "payload");
  }
  // CostMeter-asserted: Π charged once, the view build charged once, every
  // non-winner paid one probe op.
  EXPECT_EQ(meter.work(), 1000 + 500 + (kThreads - 1));
}

TEST(PreparedStoreViewTest, WarmHitServesMemoizedViewWithoutRebuild) {
  PreparedStore store;
  std::atomic<int> builds{0};
  PreparedStore::EntryOptions entry_options;
  entry_options.make_view = CountingViewFn(&builds);
  auto compute = [](CostMeter*) -> Result<std::string> {
    return std::string("v1");
  };
  auto cold = store.GetOrComputeView("p", "w", "d", compute, nullptr, nullptr,
                                     entry_options);
  ASSERT_TRUE(cold.ok());
  bool hit = false;
  auto warm = store.GetOrComputeView("p", "w", "d", compute, nullptr, &hit,
                                     entry_options);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(builds.load(), 1);
  EXPECT_EQ(warm->view, cold->view);
}

TEST(PreparedStoreViewTest, ViewRebuiltLazilyAfterLoad) {
  const std::string dir = UniqueTempDir("view_load");
  std::atomic<int> builds{0};
  PreparedStore::EntryOptions entry_options;
  entry_options.make_view = CountingViewFn(&builds);
  auto compute = [](CostMeter*) -> Result<std::string> {
    return std::string("persisted");
  };
  {
    PreparedStore store;
    ASSERT_TRUE(store
                    .GetOrComputeView("p", "w", "d", compute, nullptr,
                                      nullptr, entry_options)
                    .ok());
    ASSERT_TRUE(store.Spill(dir).ok());
  }
  PreparedStore restarted;
  auto loaded = restarted.Load(dir);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, 1u);
  EXPECT_EQ(restarted.stats().view_builds, 0);  // payload only, no view yet

  bool hit = false;
  auto fail_compute = [](CostMeter*) -> Result<std::string> {
    return Status::Internal("Π must not run on a loaded entry");
  };
  auto warm = restarted.GetOrComputeView("p", "w", "d", fail_compute, nullptr,
                                         &hit, entry_options);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(hit);
  ASSERT_NE(warm->view, nullptr);
  EXPECT_EQ(ViewString(*warm), "persisted");
  EXPECT_EQ(restarted.stats().view_builds, 1);  // rebuilt lazily, once
  auto again = restarted.GetOrComputeView("p", "w", "d", fail_compute,
                                          nullptr, &hit, entry_options);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->view, warm->view);  // memoized thereafter
  EXPECT_EQ(restarted.stats().view_builds, 1);
  fs::remove_all(dir);
}

TEST(PreparedStoreViewTest, EvictionDropsViewAndMissRebuildsIt) {
  PreparedStore::Options options;
  options.max_entries = 1;
  PreparedStore store(options);
  std::atomic<int> builds{0};
  PreparedStore::EntryOptions entry_options;
  entry_options.make_view = CountingViewFn(&builds);
  auto compute_a = [](CostMeter*) -> Result<std::string> {
    return std::string("a");
  };
  auto compute_b = [](CostMeter*) -> Result<std::string> {
    return std::string("b");
  };
  auto first = store.GetOrComputeView("p", "w", "a", compute_a, nullptr,
                                      nullptr, entry_options);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(store
                  .GetOrComputeView("p", "w", "b", compute_b, nullptr,
                                    nullptr, entry_options)
                  .ok());  // evicts "a" (and its view) past the entry cap
  EXPECT_FALSE(store.Contains("p", "w", "a"));
  bool hit = true;
  auto recomputed = store.GetOrComputeView("p", "w", "a", compute_a, nullptr,
                                           &hit, entry_options);
  ASSERT_TRUE(recomputed.ok());
  EXPECT_FALSE(hit);  // a real miss: Π and the view build both re-ran
  EXPECT_EQ(builds.load(), 3);
  ASSERT_NE(recomputed->view, nullptr);
  EXPECT_NE(recomputed->view, first->view);
}

TEST(PreparedStoreViewTest, UpdateDataRebuildsViewFromPatchedPayload) {
  PreparedStore store;
  std::atomic<int> builds{0};
  PreparedStore::EntryOptions entry_options;
  entry_options.make_view = CountingViewFn(&builds);
  auto cold = store.GetOrComputeView(
      "p", "w", "old",
      [](CostMeter*) -> Result<std::string> { return std::string("pi-old"); },
      nullptr, nullptr, entry_options);
  ASSERT_TRUE(cold.ok());
  ASSERT_EQ(ViewString(*cold), "pi-old");

  Status patched = store.UpdateData(
      "p", "w", "old", "new",
      [](std::string* prepared, CostMeter*) -> Status {
        *prepared = "pi-new";
        return Status::OK();
      },
      nullptr, entry_options);
  ASSERT_TRUE(patched.ok());
  EXPECT_EQ(builds.load(), 2);  // the re-key built a fresh post-patch view

  bool hit = false;
  auto warm = store.GetOrComputeView(
      "p", "w", "new",
      [](CostMeter*) -> Result<std::string> {
        return Status::Internal("patched entry must hit");
      },
      nullptr, &hit, entry_options);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(hit);
  ASSERT_NE(warm->view, nullptr);
  // The stale pre-patch view is gone; the served view decodes Π(new data).
  EXPECT_NE(warm->view, cold->view);
  EXPECT_EQ(ViewString(*warm), "pi-new");
  EXPECT_EQ(builds.load(), 2);  // ...and it was memoized, not rebuilt
}

TEST(PreparedStoreViewTest, FailedViewBuildDegradesToStringPathOnce) {
  PreparedStore store;
  std::atomic<int> attempts{0};
  PreparedStore::EntryOptions entry_options;
  entry_options.make_view =
      [&attempts](const std::shared_ptr<const std::string>&, CostMeter*)
      -> Result<std::shared_ptr<const void>> {
    attempts.fetch_add(1);
    return Status::Internal("decoder broken");
  };
  auto cold = store.GetOrComputeView(
      "p", "w", "d",
      [](CostMeter*) -> Result<std::string> { return std::string("ok"); },
      nullptr, nullptr, entry_options);
  ASSERT_TRUE(cold.ok());  // a broken view decoder is not an answer error
  EXPECT_EQ(cold->view, nullptr);
  ASSERT_NE(cold->prepared, nullptr);
  EXPECT_EQ(*cold->prepared, "ok");
  EXPECT_EQ(store.stats().view_builds, 0);
  for (int i = 0; i < 3; ++i) {
    bool hit = false;
    auto warm = store.GetOrComputeView(
        "p", "w", "d",
        [](CostMeter*) -> Result<std::string> {
          return Status::Internal("must hit");
        },
        nullptr, &hit, entry_options);
    ASSERT_TRUE(warm.ok());
    EXPECT_TRUE(hit);
    EXPECT_EQ(warm->view, nullptr);  // still served, still string-path
  }
  // The failure is negative-cached on the entry: one attempt at miss
  // time, zero O(|Π(D)|) retries across the warm hits.
  EXPECT_EQ(attempts.load(), 1);
}

TEST(PreparedStoreViewTest, ResidentViewsCountAgainstTheByteBudget) {
  PreparedStore with_views;
  PreparedStore without_views;
  std::atomic<int> builds{0};
  PreparedStore::EntryOptions view_options;
  view_options.make_view = CountingViewFn(&builds);
  auto compute = [](CostMeter*) -> Result<std::string> {
    return std::string(1000, 'x');
  };
  ASSERT_TRUE(with_views
                  .GetOrComputeView("p", "w", "d", compute, nullptr, nullptr,
                                    view_options)
                  .ok());
  ASSERT_TRUE(without_views
                  .GetOrComputeView("p", "w", "d", compute, nullptr, nullptr,
                                    PreparedStore::EntryOptions{})
                  .ok());
  // The decoded view charges ≈ payload bytes on top of the payload+key
  // estimate, so byte-budgeted eviction sees the real residency.
  EXPECT_EQ(with_views.bytes_resident(),
            without_views.bytes_resident() + 1000);
}

TEST(PreparedStoreViewTest, ConcurrentLazyRebuildsAfterLoadStayConsistent) {
  const std::string dir = UniqueTempDir("view_race");
  std::atomic<int> builds{0};
  PreparedStore::EntryOptions entry_options;
  entry_options.make_view = CountingViewFn(&builds);
  auto compute = [](CostMeter*) -> Result<std::string> {
    return std::string("raced");
  };
  PreparedStore store;
  ASSERT_TRUE(store
                  .GetOrComputeView("p", "w", "d", compute, nullptr, nullptr,
                                    entry_options)
                  .ok());
  ASSERT_TRUE(store.Spill(dir).ok());

  // Loads wipe the memoized view; concurrent warm hitters race to rebuild
  // it while more Loads keep resetting the entry. Everything must stay
  // internally consistent (TSan-checked in CI).
  constexpr int kThreads = 4;
  constexpr int kIters = 25;
  std::atomic<bool> stop{false};
  std::thread loader([&] {
    for (int i = 0; i < kIters; ++i) {
      auto loaded = store.Load(dir);
      ASSERT_TRUE(loaded.ok());
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        auto pv = store.GetOrComputeView("p", "w", "d", compute, nullptr,
                                         nullptr, entry_options);
        ASSERT_TRUE(pv.ok());
        ASSERT_NE(pv->prepared, nullptr);
        EXPECT_EQ(*pv->prepared, "raced");
        if (pv->view != nullptr) {
          EXPECT_EQ(ViewString(*pv), "raced");
        }
      }
    });
  }
  loader.join();
  for (auto& t : readers) t.join();
  EXPECT_GE(builds.load(), 1);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Precomputed keys: warm batches must not rebuild or rehash O(|D|) keys.
// ---------------------------------------------------------------------------

TEST(PreparedStoreKeyTest, PrecomputedKeySkipsKeyBuildsOnWarmHits) {
  PreparedStore store;
  auto key = PreparedStore::InternKey("p", "w", "some-large-data-part");
  auto compute = [](CostMeter*) -> Result<std::string> {
    return std::string("pi");
  };
  ASSERT_TRUE(store
                  .GetOrComputeView(key, compute, nullptr, nullptr,
                                    PreparedStore::EntryOptions{})
                  .ok());
  store.ResetStats();

  for (int i = 0; i < 10; ++i) {
    bool hit = false;
    auto warm = store.GetOrComputeView(key, compute, nullptr, &hit,
                                       PreparedStore::EntryOptions{});
    ASSERT_TRUE(warm.ok());
    EXPECT_TRUE(hit);
  }
  auto stats = store.stats();
  EXPECT_EQ(stats.hits, 10);
  EXPECT_EQ(stats.key_builds, 0);  // zero O(|D|) copies/hashes while warm

  // The string-keyed flavor pays one key build per call, every call.
  bool hit = false;
  ASSERT_TRUE(store
                  .GetOrCompute("p", "w", "some-large-data-part", compute,
                                nullptr, &hit)
                  .ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(store.stats().key_builds, 1);
}

TEST(PreparedStoreKeyTest, IndependentlyInternedKeysStillMatchEntries) {
  PreparedStore store;
  auto compute = [](CostMeter*) -> Result<std::string> {
    return std::string("pi");
  };
  auto first = PreparedStore::InternKey("p", "w", "d");
  auto second = PreparedStore::InternKey("p", "w", "d");  // distinct bytes ptr
  ASSERT_TRUE(store
                  .GetOrComputeView(first, compute, nullptr, nullptr,
                                    PreparedStore::EntryOptions{})
                  .ok());
  bool hit = false;
  auto warm = store.GetOrComputeView(second, compute, nullptr, &hit,
                                     PreparedStore::EntryOptions{});
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(hit);  // deep-compare fallback still matches
}

TEST(PreparedStoreKeyTest, WordAtATimeDigestIsStableAndDiscriminating) {
  // Deterministic across calls.
  EXPECT_EQ(Fnv1a64("abcdefghij"), Fnv1a64("abcdefghij"));
  // Sensitive in every tail-length regime (0..8 trailing bytes after the
  // word loop) and to position swaps inside one word.
  std::vector<std::string> inputs;
  std::string base = "0123456789abcdef";  // two full words
  inputs.push_back("");
  for (size_t len = 1; len <= base.size(); ++len) {
    inputs.push_back(base.substr(0, len));
  }
  inputs.push_back("1023456789abcdef");  // swap inside the first word
  inputs.push_back("0123456798abcdef");  // swap inside the second word
  for (size_t i = 0; i < inputs.size(); ++i) {
    for (size_t j = i + 1; j < inputs.size(); ++j) {
      EXPECT_NE(Fnv1a64(inputs[i]), Fnv1a64(inputs[j]))
          << "collision between '" << inputs[i] << "' and '" << inputs[j]
          << "'";
    }
  }
}

// ---------------------------------------------------------------------------
// Lock-free warm hits: the snapshot read path and its proof counters.
// ---------------------------------------------------------------------------

// The PR 5 acceptance bar, analogous to PR 4's key_builds == 0: a warm
// multi-threaded run serves every hit from the published snapshot — the
// shard mutex is never acquired on the hit path (locked_hits == 0) and Π
// never re-runs (misses == 0).
TEST(PreparedStoreLockFreeTest, WarmServeParallelAcquiresNoShardMutex) {
  auto engine = MakeEngine();
  Rng rng(1801);
  constexpr int kParts = 4;
  constexpr int kQueries = 16;
  std::vector<ServeWorkItem> workload;
  for (int part = 0; part < kParts; ++part) {
    ServeWorkItem item;
    auto handle = engine->Intern(
        "list-membership",
        core::MemberFactorization()
            .pi1(core::MakeMemberInstance(256, RandomList(&rng, 256, 100), 0))
            .value());
    ASSERT_TRUE(handle.ok());
    item.handle =
        std::make_shared<const DataHandle>(std::move(handle).value());
    for (int i = 0; i < kQueries; ++i) {
      item.queries.push_back(std::to_string(rng.NextBelow(256)));
    }
    workload.push_back(std::move(item));
  }

  // Warm pass: pays the misses (and, under racing cold publishes, possibly
  // some locked hits). Everything after ResetStats must be snapshot-only.
  ServeOptions warmup;
  warmup.threads = 2;
  warmup.repeat = 2;
  auto warm = ServeParallel(engine.get(), workload, warmup);
  ASSERT_EQ(warm.errors, 0) << warm.first_error.ToString();
  engine->store().ResetStats();

  ServeOptions options;
  options.threads = 4;
  options.repeat = 8;
  options.batch = 4;
  auto report = ServeParallel(engine.get(), workload, options);
  EXPECT_EQ(report.errors, 0) << report.first_error.ToString();
  EXPECT_EQ(report.pi_runs, 0);
  EXPECT_EQ(report.batches, kParts * 8);
  EXPECT_EQ(report.queries, kParts * 8 * kQueries);
  EXPECT_EQ(report.threads, 4);

  const auto stats = engine->store().stats();
  EXPECT_EQ(stats.hits, kParts * 8);
  EXPECT_EQ(stats.misses, 0);
  EXPECT_EQ(stats.key_builds, 0);    // handles: no O(|D|) key work either
  EXPECT_EQ(stats.locked_hits, 0);   // the lock-free-hit proof
}

// Same proof at the store level, plus per-thread stats aggregation: N
// threads hammering one hot precomputed Key must sum to exactly N*M hits
// across the per-thread slots with zero locked hits.
TEST(PreparedStoreLockFreeTest, HotKeyHammerCountsExactlyAcrossThreadSlots) {
  PreparedStore store;
  const PreparedStore::Key key = PreparedStore::InternKey("p", "w", "hot");
  auto compute = [](CostMeter*) -> Result<std::string> {
    return std::string("payload");
  };
  ASSERT_TRUE(store
                  .GetOrComputeView(key, compute, nullptr, nullptr,
                                    PreparedStore::EntryOptions{})
                  .ok());
  store.ResetStats();

  constexpr int kThreads = 8;
  constexpr int kHitsPerThread = 2000;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kHitsPerThread; ++i) {
        bool hit = false;
        auto result = store.GetOrComputeView(
            key,
            [](CostMeter*) -> Result<std::string> {
              return Status::Internal("Π must not run on a warm hit");
            },
            nullptr, &hit, PreparedStore::EntryOptions{});
        if (!result.ok() || !hit || *result->prepared != "payload") {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  const auto stats = store.stats();
  EXPECT_EQ(stats.hits, int64_t{kThreads} * kHitsPerThread);
  EXPECT_EQ(stats.locked_hits, 0);
  EXPECT_EQ(stats.misses, 0);
  EXPECT_EQ(stats.key_builds, 0);
}

// TSan stress: warm hitters race eviction (byte budget forces victims),
// UpdateData re-key chains, and Load snapshot swaps. Correctness bar: no
// data race (TSan job), every successful read is internally consistent
// (payload matches the version chain), and the byte budget holds at every
// quiescent point.
TEST(PreparedStoreLockFreeTest, HittersRaceEvictionRekeysAndLoads) {
  const std::string dir = UniqueTempDir("race_loads");
  PreparedStore::Options options;
  options.shards = 4;
  options.byte_budget = 4096;
  PreparedStore store(options);

  // A handful of stable keys the hitters hammer...
  constexpr int kKeys = 6;
  std::vector<PreparedStore::Key> keys;
  for (int i = 0; i < kKeys; ++i) {
    keys.push_back(
        PreparedStore::InternKey("p", "w", "data-" + std::to_string(i)));
  }
  // ~700 bytes per entry against a 4096-byte budget: the racing inserts
  // and loads keep eviction genuinely active throughout the stress run.
  auto payload_for = [](int i) {
    return "payload-" + std::to_string(i) + ":" + std::string(640, 'x');
  };
  auto compute_for = [&payload_for](int i) {
    return [payload = payload_for(i)](CostMeter*) -> Result<std::string> {
      return payload;
    };
  };
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(store
                    .GetOrComputeView(keys[static_cast<size_t>(i)],
                                      compute_for(i), nullptr, nullptr,
                                      PreparedStore::EntryOptions{})
                    .ok());
  }
  ASSERT_TRUE(store.Spill(dir).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};

  // ...while hitters verify payload integrity on every probe,
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(9000 + static_cast<uint64_t>(t));
      while (!stop.load(std::memory_order_acquire)) {
        const int i = static_cast<int>(rng.NextBelow(kKeys));
        auto result = store.GetOrComputeView(
            keys[static_cast<size_t>(i)], compute_for(i), nullptr, nullptr,
            PreparedStore::EntryOptions{});
        if (!result.ok() || *result->prepared != payload_for(i)) {
          ++violations;  // any resident payload must be its key's version
        }
      }
    });
  }
  // ...an updater chains re-keys through a churn key (v0 -> v1 -> ...),
  workers.emplace_back([&] {
    int version = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const std::string old_data = "churn-v" + std::to_string(version);
      const std::string new_data = "churn-v" + std::to_string(version + 1);
      auto seeded = store.GetOrComputeView(
          PreparedStore::InternKey("p", "w", old_data),
          [&](CostMeter*) -> Result<std::string> {
            return "churn-payload-v" + std::to_string(version);
          },
          nullptr, nullptr, PreparedStore::EntryOptions{});
      if (!seeded.ok()) {
        ++violations;
        break;
      }
      auto status = store.UpdateData(
          "p", "w", old_data, new_data,
          [&](std::string* prepared, CostMeter*) {
            *prepared = "churn-payload-v" + std::to_string(version + 1);
            return Status::OK();
          });
      if (!status.ok() && status.code() != StatusCode::kNotFound &&
          status.code() != StatusCode::kUnavailable) {
        ++violations;
      }
      ++version;
    }
  });
  // ...and a loader keeps swapping snapshots back in from disk.
  workers.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      auto loaded = store.Load(dir);
      if (!loaded.ok()) ++violations;
      std::this_thread::yield();
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true, std::memory_order_release);
  for (auto& t : workers) t.join();

  EXPECT_EQ(violations.load(), 0);
  // Quiescent byte-budget invariant after the full publish/patch/Load mix.
  EXPECT_LE(store.bytes_resident(), options.byte_budget);
  for (int i = 0; i < kKeys; ++i) {
    auto result =
        store.GetOrComputeView(keys[static_cast<size_t>(i)], compute_for(i),
                               nullptr, nullptr, PreparedStore::EntryOptions{});
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result->prepared, payload_for(i));
  }
  fs::remove_all(dir);
}

// Options::shards == 0 auto-sizes from the core count: a power of two,
// at least 2x hardware_concurrency (and the legacy ctor inherits it).
TEST(PreparedStoreOptionsTest, ZeroShardsAutoSizesFromCoreCount) {
  PreparedStore store{PreparedStore::Options{}};
  const size_t shards = store.options().shards;
  const size_t cores =
      std::max<size_t>(std::thread::hardware_concurrency(), 1);
  EXPECT_GE(shards, 2 * cores);
  EXPECT_EQ(shards & (shards - 1), 0u) << shards << " is not a power of two";
  PreparedStore legacy(/*max_entries=*/8);
  EXPECT_EQ(legacy.options().shards, shards);
  EXPECT_EQ(legacy.options().max_entries, 8u);
}

// ---------------------------------------------------------------------------
// Tiered residency: hot (payload + view) -> warm (payload only, view
// demoted) -> cold (evicted, spilled when a directory is armed).
// ---------------------------------------------------------------------------

// The full ladder in one deterministic sequence: under byte pressure the
// sweep sheds decoded views first (cheapest-expected-loss view first, even
// when that view's entry is the *more* hit one), re-promotes them through
// the lazy rebuild on the next hit, and only evicts a whole entry once
// there are no view bytes left to shed — and then takes the never-hit
// entry, not the hot ones.
TEST(PreparedStoreTieringTest, DemotesViewsByExpectedLossBeforeEvicting) {
  PreparedStore::Options options;
  options.shards = 1;
  options.byte_budget = 900;
  ASSERT_TRUE(options.tiered);  // tiering is the default
  PreparedStore store(options);

  PreparedStore::EntryOptions size_only;
  size_only.size_of = [](const std::string& s) { return s.size(); };

  // "expensive": a view the caller declares very costly to rebuild.
  std::atomic<int> builds_expensive{0};
  PreparedStore::EntryOptions expensive_options = size_only;
  expensive_options.make_view = CountingViewFn(&builds_expensive);
  expensive_options.view_loss_ops = 10000;
  const std::string expensive_payload(200, 'e');
  auto compute_expensive = [&](CostMeter*) -> Result<std::string> {
    return expensive_payload;
  };

  // "cheap": same size, same recency, MORE hits — but a near-free rebuild.
  std::atomic<int> builds_cheap{0};
  PreparedStore::EntryOptions cheap_options = size_only;
  cheap_options.make_view = CountingViewFn(&builds_cheap);
  cheap_options.view_loss_ops = 10;
  const std::string cheap_payload(200, 'c');
  auto compute_cheap = [&](CostMeter*) -> Result<std::string> {
    return cheap_payload;
  };

  auto fail_compute = [](CostMeter*) -> Result<std::string> {
    return Status::Internal("Π must not run on a warm entry");
  };

  // Admit both hot: payload 200 + view 200 = 400 bytes each.
  auto cold_expensive = store.GetOrComputeView(
      "p", "w", "expensive", compute_expensive, nullptr, nullptr,
      expensive_options);
  ASSERT_TRUE(cold_expensive.ok());
  ASSERT_TRUE(store
                  .GetOrComputeView("p", "w", "cheap", compute_cheap, nullptr,
                                    nullptr, cheap_options)
                  .ok());
  EXPECT_EQ(store.bytes_resident(), 800u);

  // Hit both in the same epoch; "cheap" twice as hard.
  bool hit = false;
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(store
                    .GetOrComputeView("p", "w", "expensive", fail_compute,
                                      nullptr, &hit, expensive_options)
                    .ok());
    ASSERT_TRUE(hit);
  }
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(store
                    .GetOrComputeView("p", "w", "cheap", fail_compute, nullptr,
                                      &hit, cheap_options)
                    .ok());
    ASSERT_TRUE(hit);
  }

  // 150 more bytes overflow the 900-byte budget by 50. Tiered Phase A:
  // demote a view rather than evict anything — and the victim is the
  // *cheap-to-rebuild* view despite its entry being hit twice as often.
  PreparedStore::EntryOptions filler_options = size_only;
  auto compute_filler = [](CostMeter*) -> Result<std::string> {
    return std::string(150, 'f');
  };
  ASSERT_TRUE(store
                  .GetOrCompute("p", "w", "filler", compute_filler, nullptr,
                                nullptr, filler_options)
                  .ok());
  EXPECT_EQ(store.stats().view_demotions, 1);
  EXPECT_EQ(store.stats().evictions, 0);
  EXPECT_EQ(store.bytes_resident(), 750u);
  EXPECT_TRUE(store.Contains("p", "w", "expensive"));
  EXPECT_TRUE(store.Contains("p", "w", "cheap"));
  EXPECT_TRUE(store.Contains("p", "w", "filler"));

  // The expensive view was spared: still the memoized pointer, no rebuild.
  auto warm_expensive = store.GetOrComputeView(
      "p", "w", "expensive", fail_compute, nullptr, &hit, expensive_options);
  ASSERT_TRUE(warm_expensive.ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(warm_expensive->view, cold_expensive->view);
  EXPECT_EQ(builds_expensive.load(), 1);

  // The cheap view re-promotes hot through the lazy rebuild — Π never
  // re-runs, the payload was resident the whole time.
  auto repromoted = store.GetOrComputeView("p", "w", "cheap", fail_compute,
                                           nullptr, &hit, cheap_options);
  ASSERT_TRUE(repromoted.ok());
  EXPECT_TRUE(hit);
  ASSERT_NE(repromoted->view, nullptr);
  EXPECT_EQ(ViewString(*repromoted), cheap_payload);
  EXPECT_EQ(builds_cheap.load(), 2);
  // The rebuild pushed the store back over budget; the sweep it triggers
  // demotes the cheap view again (still the cheapest loss) — and still
  // evicts nothing.
  EXPECT_EQ(store.stats().view_demotions, 2);
  EXPECT_EQ(store.stats().evictions, 0);
  EXPECT_EQ(store.bytes_resident(), 750u);

  // 400 more bytes: one view demotion (200) cannot cover the deficit, so
  // the sweep falls through to eviction — and takes the never-hit filler,
  // not the hot pair or the newcomer.
  PreparedStore::EntryOptions big_options = size_only;
  auto compute_big = [](CostMeter*) -> Result<std::string> {
    return std::string(400, 'g');
  };
  ASSERT_TRUE(store
                  .GetOrCompute("p", "w", "big", compute_big, nullptr, nullptr,
                                big_options)
                  .ok());
  EXPECT_EQ(store.stats().view_demotions, 3);
  EXPECT_EQ(store.stats().evictions, 1);
  EXPECT_FALSE(store.Contains("p", "w", "filler"));
  EXPECT_TRUE(store.Contains("p", "w", "expensive"));
  EXPECT_TRUE(store.Contains("p", "w", "cheap"));
  EXPECT_TRUE(store.Contains("p", "w", "big"));
  EXPECT_EQ(store.bytes_resident(), 800u);  // 200 + 200 + 400, all warm

  // Both demoted entries still answer correctly (and re-promote again).
  auto check_expensive = store.GetOrComputeView(
      "p", "w", "expensive", fail_compute, nullptr, &hit, expensive_options);
  ASSERT_TRUE(check_expensive.ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(*check_expensive->prepared, expensive_payload);
  auto check_cheap = store.GetOrComputeView("p", "w", "cheap", fail_compute,
                                            nullptr, &hit, cheap_options);
  ASSERT_TRUE(check_cheap.ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(*check_cheap->prepared, cheap_payload);
}

// Warm -> cold -> warm: with a spill directory armed, an evicted entry's
// payload is written out as a spill frame (cold demotion), and the next
// miss for it promotes the frame back instead of re-running Π.
TEST(PreparedStoreTieringTest, ColdDemotionSpillsVictimAndPromotesOnNextMiss) {
  const std::string dir = UniqueTempDir("cold_demotion");
  PreparedStore::Options options;
  options.shards = 1;
  options.byte_budget = 250;
  PreparedStore store(options);

  PreparedStore::EntryOptions entry_options;
  entry_options.size_of = [](const std::string& s) { return s.size(); };

  std::map<std::string, int> computes;
  auto make_compute = [&computes](const std::string& data) {
    return [&computes, data](CostMeter*) -> Result<std::string> {
      ++computes[data];
      std::string payload = "payload-" + data;
      payload.resize(100, '.');
      return payload;
    };
  };
  auto fail_compute = [](CostMeter*) -> Result<std::string> {
    return Status::Internal("Π must not run: the spill frame covers this");
  };

  ASSERT_TRUE(store
                  .GetOrCompute("p", "w", "a", make_compute("a"), nullptr,
                                nullptr, entry_options)
                  .ok());
  // Spill arms the directory: from here on, evictions write cold frames.
  ASSERT_TRUE(store.Spill(dir).ok());
  ASSERT_TRUE(store
                  .GetOrCompute("p", "w", "b", make_compute("b"), nullptr,
                                nullptr, entry_options)
                  .ok());
  bool hit = false;
  ASSERT_TRUE(store
                  .GetOrCompute("p", "w", "b", fail_compute, nullptr, &hit,
                                entry_options)
                  .ok());
  ASSERT_TRUE(hit);  // arms b's second chance: b survives the sweep
  ASSERT_TRUE(store
                  .GetOrCompute("p", "w", "c", make_compute("c"), nullptr,
                                nullptr, entry_options)
                  .ok());

  // 300 > 250: exactly one of the never-hit entries went cold.
  EXPECT_EQ(store.stats().evictions, 1);
  EXPECT_EQ(store.stats().cold_demotions, 1);
  EXPECT_TRUE(store.Contains("p", "w", "b"));
  const bool a_resident = store.Contains("p", "w", "a");
  const bool c_resident = store.Contains("p", "w", "c");
  ASSERT_NE(a_resident, c_resident);
  const std::string victim = a_resident ? "c" : "a";

  // The re-miss promotes the cold frame: Π does not run, the payload is
  // byte-identical, and the miss is still counted as a miss.
  hit = true;
  auto promoted = store.GetOrCompute("p", "w", victim, fail_compute, nullptr,
                                     &hit, entry_options);
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  EXPECT_FALSE(hit);
  std::string expected = "payload-" + victim;
  expected.resize(100, '.');
  EXPECT_EQ(**promoted, expected);
  EXPECT_EQ(store.stats().cold_promotions, 1);
  EXPECT_EQ(store.stats().misses, 4);
  EXPECT_EQ(computes[victim], 1);

  // The promotion re-overflowed the budget: another (older) entry went
  // cold in its place, and the freshly promoted entry survived.
  EXPECT_EQ(store.stats().evictions, 2);
  EXPECT_EQ(store.stats().cold_demotions, 2);
  EXPECT_TRUE(store.Contains("p", "w", victim));
  hit = false;
  auto warm = store.GetOrCompute("p", "w", victim, fail_compute, nullptr,
                                 &hit, entry_options);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(computes["a"] + computes["b"] + computes["c"], 3);
  fs::remove_all(dir);
}

// The tentpole's lock-freedom criterion, test-asserted: warm hitters
// hammer a fixed set of view-carrying entries while admissions force
// continuous demotion sweeps (hot -> warm) and churn evictions. Every hit
// must be served from the published snapshot — locked_hits stays exactly
// 0 with tiers enabled — and no hitter entry is ever evicted or answers
// wrong. (TSan-exercised in CI.)
TEST(PreparedStoreTieringTest, WarmHittersRaceDemotionSweepsWithoutLockedHits) {
  PreparedStore::Options options;
  options.shards = 4;
  options.byte_budget = 3400;  // 8 hot hitters (3200) + slack < one churn
  PreparedStore store(options);

  constexpr int kHitters = 8;
  constexpr int kChurn = 150;

  PreparedStore::EntryOptions hitter_options;
  hitter_options.size_of = [](const std::string& s) { return s.size(); };
  std::atomic<int> rebuilds{0};
  hitter_options.make_view = CountingViewFn(&rebuilds);
  // Declared Π re-run cost: under pressure the sweep must prefer evicting
  // loss-0 churn entries over any hammered hitter.
  hitter_options.evict_loss_ops = 1e6;

  std::vector<PreparedStore::Key> keys;
  std::vector<std::string> payloads;
  for (int i = 0; i < kHitters; ++i) {
    const std::string data = "hot-" + std::to_string(i);
    std::string payload = "prepared-" + data;
    payload.resize(200, '#');
    payloads.push_back(payload);
    keys.push_back(PreparedStore::InternKey("p", "w", data));
    ASSERT_TRUE(store
                    .GetOrComputeView(
                        keys.back(),
                        [payload](CostMeter*) -> Result<std::string> {
                          return payload;
                        },
                        nullptr, nullptr, hitter_options)
                    .ok());
  }

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> hitters;
  for (int t = 0; t < 4; ++t) {
    hitters.emplace_back([&, t] {
      size_t i = static_cast<size_t>(t);
      while (!done.load(std::memory_order_acquire)) {
        const size_t k = i++ % kHitters;
        bool hit = false;
        auto result = store.GetOrComputeView(
            keys[k],
            [](CostMeter*) -> Result<std::string> {
              return Status::Internal("Π must not run on a warm hitter");
            },
            nullptr, &hit, hitter_options);
        if (!result.ok() || !hit || *result->prepared != payloads[k] ||
            result->view == nullptr ||
            ViewString(*result) != payloads[k]) {
          ++failures;
          return;
        }
      }
    });
  }

  // Churn: every admission overflows the budget and forces a sweep that
  // demotes hitter views (Phase A) or evicts older churn entries. The
  // main thread re-touches every hitter between admissions so each sweep
  // provably sees them referenced — hitter survival must not depend on
  // the background threads winning a scheduling race.
  PreparedStore::EntryOptions churn_options;
  churn_options.size_of = [](const std::string& s) { return s.size(); };
  for (int i = 0; i < kChurn; ++i) {
    for (int k = 0; k < kHitters; ++k) {
      bool hit = false;
      auto touched = store.GetOrComputeView(
          keys[static_cast<size_t>(k)],
          [](CostMeter*) -> Result<std::string> {
            return Status::Internal("Π must not run on a warm hitter");
          },
          nullptr, &hit, hitter_options);
      ASSERT_TRUE(touched.ok());
      ASSERT_TRUE(hit);
    }
    const std::string data = "churn-" + std::to_string(i);
    ASSERT_TRUE(store
                    .GetOrCompute(
                        "p", "w", data,
                        [](CostMeter*) -> Result<std::string> {
                          return std::string(300, 'x');
                        },
                        nullptr, nullptr, churn_options)
                    .ok());
  }
  done.store(true, std::memory_order_release);
  for (auto& t : hitters) t.join();

  EXPECT_EQ(failures.load(), 0);
  const auto stats = store.stats();
  EXPECT_EQ(stats.locked_hits, 0);     // the warm path never took a mutex
  EXPECT_GT(stats.view_demotions, 0);  // sweeps really did demote views
  EXPECT_EQ(stats.misses, kHitters + kChurn);  // no hitter ever recomputed
  for (int i = 0; i < kHitters; ++i) {
    EXPECT_TRUE(store.Contains("p", "w", "hot-" + std::to_string(i)));
  }
}

}  // namespace
}  // namespace engine
}  // namespace pitract
