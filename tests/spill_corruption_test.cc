// Byte-level spill corruption fuzzing: for every builtin witness family, a
// spilled frame is truncated at every offset class and bit-flipped at every
// offset class (every single byte for the list-membership frame), and the
// store must (a) never admit the damaged frame, (b) classify header damage
// as `load_skipped` and post-header damage as `load_corrupt`, and (c) keep
// serving *correct* answers afterwards by degrading to recompute-on-miss.
//
// The frame layout under test (prepared_store.cc, kSpillVersion = 3):
//   [magic u32][version u32][checksum u64][key frame][payload frame][size u64]
// with the checksum covering every byte after itself.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "circuit/generators.h"
#include "common/rng.h"
#include "core/problems.h"
#include "engine/builtins.h"
#include "engine/engine.h"
#include "engine/prepared_store.h"
#include "graph/generators.h"

namespace pitract {
namespace engine {
namespace {

namespace fs = std::filesystem;

std::string UniqueTempDir(const char* tag) {
  static std::atomic<int> counter{0};
  fs::path dir = fs::temp_directory_path() /
                 (std::string("pitract_") + tag + "_" +
                  std::to_string(::getpid()) + "_" +
                  std::to_string(counter.fetch_add(1)));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::unique_ptr<QueryEngine> MakeEngine() {
  auto engine = std::make_unique<QueryEngine>();
  auto status = RegisterBuiltins(engine.get());
  EXPECT_TRUE(status.ok()) << status.ToString();
  return engine;
}

/// One builtin witness with one data part, its probe batch, and the
/// reference answers a pristine engine produces.
struct WitnessCase {
  std::string problem;
  std::string data;
  std::vector<std::string> queries;
  std::vector<bool> expected;
  std::string frame;  // the well-formed spilled frame for this entry
};

std::vector<WitnessCase> BuildWitnessCases() {
  Rng rng(4242);
  std::vector<WitnessCase> cases;

  {
    std::vector<int64_t> list;
    for (int i = 0; i < 48; ++i) {
      list.push_back(static_cast<int64_t>(rng.NextBelow(128)));
    }
    WitnessCase member;
    member.problem = "list-membership";
    member.data = core::MemberFactorization()
                      .pi1(core::MakeMemberInstance(128, list, 0))
                      .value();
    for (int i = 0; i < 16; ++i) {
      member.queries.push_back(std::to_string(rng.NextBelow(128)));
    }
    cases.push_back(std::move(member));
  }

  auto undirected = graph::ErdosRenyi(32, 48, /*directed=*/false, &rng);
  auto directed = graph::ErdosRenyi(32, 64, /*directed=*/true, &rng);
  WitnessCase conn;
  conn.problem = "connectivity";
  conn.data =
      core::ConnFactorization().pi1(core::MakeConnInstance(undirected, 0, 0))
          .value();
  WitnessCase bds;
  bds.problem = "breadth-depth-search";
  bds.data =
      core::BdsFactorization().pi1(core::MakeBdsInstance(undirected, 0, 0))
          .value();
  WitnessCase reach;
  reach.problem = "graph-reachability";
  reach.data =
      core::ReachFactorization().pi1(core::MakeReachInstance(directed, 0, 0))
          .value();
  for (int i = 0; i < 16; ++i) {
    std::string q = std::to_string(rng.NextBelow(32)) + "#" +
                    std::to_string(rng.NextBelow(32));
    conn.queries.push_back(q);
    bds.queries.push_back(q);
    reach.queries.push_back(q);
  }
  cases.push_back(std::move(conn));
  cases.push_back(std::move(bds));
  cases.push_back(std::move(reach));

  {
    Rng crng(7);
    circuit::CircuitGenOptions copts;
    copts.num_inputs = 5;
    copts.num_gates = 16;
    auto instance = circuit::RandomCvpInstance(copts, &crng);
    WitnessCase gvp;
    gvp.problem = "cvp-refactorized";
    gvp.data = core::GvpFactorization()
                   .pi1(core::MakeGvpInstance(instance, 0))
                   .value();
    for (circuit::GateId g = 0; g < instance.circuit.num_gates(); ++g) {
      gvp.queries.push_back(std::to_string(g));
    }
    cases.push_back(std::move(gvp));
    // cvp-nand-eval is registered spillable=false (its Π keeps the circuit
    // verbatim), so it never writes a frame and has nothing to fuzz here.
  }

  // Reference answers + the well-formed frame, one spill per case so each
  // directory holds exactly that case's file.
  for (WitnessCase& c : cases) {
    auto engine = MakeEngine();
    auto batch = engine->AnswerBatch(c.problem, c.data, c.queries);
    EXPECT_TRUE(batch.ok()) << c.problem << ": " << batch.status().ToString();
    if (!batch.ok()) continue;
    c.expected = batch->answers;
    const std::string dir = UniqueTempDir("frame");
    EXPECT_TRUE(engine->store().Spill(dir).ok()) << c.problem;
    int files = 0;
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      ++files;
      std::ifstream in(entry.path(), std::ios::binary);
      c.frame.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    }
    EXPECT_EQ(files, 1) << c.problem << " spilled " << files << " files";
    fs::remove_all(dir);
  }
  return cases;
}

/// Frame geometry: byte offsets of each damage class within `frame`.
/// [0,4) magic, [4,8) version, [8,16) checksum, [16,24) key length,
/// [24, 24+key_len) key bytes, then the payload frame and the trailing
/// size u64.
struct FrameOffsets {
  size_t magic = 0;
  size_t version = 4;
  size_t checksum = 8;
  size_t key_length = 16;
  size_t key_bytes = 24;
  size_t payload_length = 0;
  size_t payload_bytes = 0;
  size_t trailing_size = 0;
};

FrameOffsets OffsetsOf(const std::string& frame) {
  FrameOffsets offsets;
  uint64_t key_len = 0;
  for (int i = 0; i < 8; ++i) {
    key_len |= static_cast<uint64_t>(
                   static_cast<unsigned char>(frame[16 + i]))
               << (8 * i);
  }
  offsets.payload_length = 24 + key_len;
  offsets.payload_bytes = offsets.payload_length + 8;
  offsets.trailing_size = frame.size() - 8;
  return offsets;
}

void WriteFrame(const std::string& dir, const std::string& bytes) {
  // The store only considers its own extension (.pit) during a Load scan.
  std::ofstream out(fs::path(dir) / "spill_entry.pit",
                    std::ios::binary | std::ios::trunc);
  out << bytes;
}

/// Loads `bytes` as the only frame in a fresh store and asserts it was
/// never admitted, with the damage classified as `expect_corrupt` says.
void ExpectRejected(const std::string& bytes, bool expect_corrupt,
                    const std::string& trace) {
  SCOPED_TRACE(trace);
  const std::string dir = UniqueTempDir("fuzz");
  WriteFrame(dir, bytes);
  PreparedStore store;
  auto loaded = store.Load(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, 0u);  // never admitted
  EXPECT_EQ(store.size(), 0u);
  auto stats = store.stats();
  if (expect_corrupt) {
    EXPECT_EQ(stats.load_corrupt, 1);
    EXPECT_EQ(stats.load_skipped, 0);
  } else {
    EXPECT_EQ(stats.load_skipped, 1);
    EXPECT_EQ(stats.load_corrupt, 0);
  }
  fs::remove_all(dir);
}

TEST(SpillCorruptionTest, TruncationAtEveryOffsetClassIsRejected) {
  for (const WitnessCase& c : BuildWitnessCases()) {
    ASSERT_FALSE(c.frame.empty()) << c.problem;
    const FrameOffsets offsets = OffsetsOf(c.frame);
    // Every header length, every class boundary, and a sweep through the
    // body (stride keeps big payload frames bounded).
    std::vector<size_t> lengths;
    for (size_t len = 0; len < std::min<size_t>(c.frame.size(), 32); ++len) {
      lengths.push_back(len);
    }
    for (size_t len : {offsets.key_bytes, offsets.payload_length,
                       offsets.payload_bytes, offsets.trailing_size,
                       c.frame.size() - 1}) {
      if (len < c.frame.size()) lengths.push_back(len);
    }
    const size_t stride = std::max<size_t>(1, c.frame.size() / 64);
    for (size_t len = 32; len < c.frame.size(); len += stride) {
      lengths.push_back(len);
    }
    for (size_t len : lengths) {
      // A truncation inside magic+version reads as a foreign file:
      // skipped. Once both header words survive, the frame is *ours* and
      // torn — every further truncation is corruption.
      ExpectRejected(c.frame.substr(0, len), /*expect_corrupt=*/len >= 8,
                     c.problem + " truncated to " + std::to_string(len));
    }
  }
}

TEST(SpillCorruptionTest, BitFlipAtEveryOffsetClassIsRejected) {
  for (const WitnessCase& c : BuildWitnessCases()) {
    ASSERT_FALSE(c.frame.empty()) << c.problem;
    const FrameOffsets offsets = OffsetsOf(c.frame);
    std::vector<size_t> flip_offsets = {
        offsets.magic,          offsets.version,     offsets.checksum,
        offsets.checksum + 7,   offsets.key_length,  offsets.key_bytes,
        offsets.payload_length, offsets.payload_bytes,
        (offsets.payload_bytes + offsets.trailing_size) / 2,
        offsets.trailing_size,  c.frame.size() - 1};
    for (size_t offset : flip_offsets) {
      ASSERT_LT(offset, c.frame.size()) << c.problem;
      for (int bit : {0, 7}) {
        std::string flipped = c.frame;
        flipped[offset] = static_cast<char>(
            static_cast<unsigned char>(flipped[offset]) ^ (1u << bit));
        // Magic/version damage reads as a foreign file: skipped. Any flip
        // from the checksum on breaks the integrity check: corrupt.
        ExpectRejected(flipped, /*expect_corrupt=*/offset >= 8,
                       c.problem + " bit " + std::to_string(bit) +
                           " flipped at offset " + std::to_string(offset));
      }
    }
  }
}

TEST(SpillCorruptionTest, EveryByteFlipOfTheMemberFrameIsRejected) {
  const std::vector<WitnessCase> cases = BuildWitnessCases();
  const WitnessCase& member = cases.front();
  ASSERT_EQ(member.problem, "list-membership");
  ASSERT_FALSE(member.frame.empty());
  for (size_t offset = 0; offset < member.frame.size(); ++offset) {
    std::string flipped = member.frame;
    flipped[offset] = static_cast<char>(
        static_cast<unsigned char>(flipped[offset]) ^
        (1u << (offset % 8)));
    ExpectRejected(flipped, /*expect_corrupt=*/offset >= 8,
                   "member frame flipped at offset " + std::to_string(offset));
  }
}

TEST(SpillCorruptionTest, CorruptFramesDegradeToRecomputeWithCorrectAnswers) {
  for (const WitnessCase& c : BuildWitnessCases()) {
    ASSERT_FALSE(c.frame.empty()) << c.problem;
    const FrameOffsets offsets = OffsetsOf(c.frame);
    for (size_t offset :
         {offsets.magic, offsets.checksum, offsets.key_bytes,
          offsets.payload_bytes, offsets.trailing_size}) {
      SCOPED_TRACE(c.problem + " flipped at offset " +
                   std::to_string(offset));
      std::string flipped = c.frame;
      flipped[offset] = static_cast<char>(
          static_cast<unsigned char>(flipped[offset]) ^ 0x10);
      const std::string dir = UniqueTempDir("degrade");
      WriteFrame(dir, flipped);
      auto engine = MakeEngine();
      auto loaded = engine->store().Load(dir);
      ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
      EXPECT_EQ(*loaded, 0u);
      // The damaged frame is gone; the first query batch recomputes Π and
      // answers byte-for-byte what the pristine engine answered.
      auto batch = engine->AnswerBatch(c.problem, c.data, c.queries);
      ASSERT_TRUE(batch.ok()) << batch.status().ToString();
      EXPECT_EQ(batch->prepare_runs, 1);  // recompute-on-miss, not a load
      ASSERT_EQ(batch->answers.size(), c.expected.size());
      for (size_t i = 0; i < c.expected.size(); ++i) {
        EXPECT_EQ(batch->answers[i], c.expected[i]) << "query " << i;
      }
      fs::remove_all(dir);
    }
  }
}

}  // namespace
}  // namespace engine
}  // namespace pitract
