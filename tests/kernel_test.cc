#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "kernel/vertex_cover.h"

namespace pitract {
namespace kernel {
namespace {

/// Exhaustive reference: try every vertex subset of size <= k (n <= ~20).
bool BruteForceVc(const graph::Graph& g, int k) {
  auto edges = g.Edges();
  const graph::NodeId n = g.num_nodes();
  // Iterate subsets via combinations with pruning on popcount.
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    if (__builtin_popcountll(mask) > k) continue;
    bool covers = true;
    for (const auto& [u, v] : edges) {
      if (((mask >> u) & 1) == 0 && ((mask >> v) & 1) == 0) {
        covers = false;
        break;
      }
    }
    if (covers) return true;
  }
  return false;
}

TEST(BussKernelTest, TriangleNeedsTwo) {
  auto g = graph::Graph::FromEdges(3, {{0, 1}, {1, 2}, {0, 2}}, false);
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(*HasVertexCoverKernelized(*g, 1, nullptr));
  EXPECT_TRUE(*HasVertexCoverKernelized(*g, 2, nullptr));
}

TEST(BussKernelTest, StarIsCoveredByCenter) {
  graph::Graph g = graph::Star(50, false);
  CostMeter m;
  auto kernel = BussKernelize(g, 1, &m);
  ASSERT_TRUE(kernel.ok());
  // Degree-49 center > k=1, so the rule forces it and decides the instance.
  ASSERT_TRUE(kernel->decided.has_value());
  EXPECT_TRUE(*kernel->decided);
  EXPECT_EQ(kernel->forced, 1);
}

TEST(BussKernelTest, EmptyGraphIsCoveredByNothing) {
  auto g = graph::Graph::FromEdges(5, {}, false);
  ASSERT_TRUE(g.ok());
  auto kernel = BussKernelize(*g, 0, nullptr);
  ASSERT_TRUE(kernel.ok());
  ASSERT_TRUE(kernel->decided.has_value());
  EXPECT_TRUE(*kernel->decided);
}

TEST(BussKernelTest, SelfLoopForcesVertex) {
  auto g = graph::Graph::FromEdges(3, {{0, 0}, {1, 2}}, false);
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(*HasVertexCoverKernelized(*g, 1, nullptr))
      << "loop takes the whole budget, edge (1,2) remains";
  EXPECT_TRUE(*HasVertexCoverKernelized(*g, 2, nullptr));
}

TEST(BussKernelTest, KernelRespectsSizeBound) {
  Rng rng(130);
  graph::Graph g = graph::ErdosRenyi(200, 300, false, &rng);
  for (int k = 2; k <= 10; k += 2) {
    auto kernel = BussKernelize(g, k, nullptr);
    ASSERT_TRUE(kernel.ok());
    if (kernel->decided.has_value()) continue;
    EXPECT_LE(static_cast<int64_t>(kernel->edges.size()),
              static_cast<int64_t>(kernel->remaining_k) * kernel->remaining_k);
    EXPECT_LE(kernel->num_kernel_nodes,
              kernel->remaining_k * kernel->remaining_k + kernel->remaining_k);
  }
}

TEST(BussKernelTest, RejectsDirectedGraphs) {
  graph::Graph g = graph::Path(3, /*directed=*/true);
  EXPECT_FALSE(BussKernelize(g, 2, nullptr).ok());
  EXPECT_FALSE(HasVertexCoverDirect(g, 2, nullptr).ok());
}

TEST(BussKernelTest, NegativeKRejected) {
  graph::Graph g = graph::Path(3, false);
  EXPECT_FALSE(BussKernelize(g, -1, nullptr).ok());
}

struct VcParam {
  uint64_t seed;
  graph::NodeId n;
  int64_t m;
  int k;
};

class VertexCoverPropertyTest : public ::testing::TestWithParam<VcParam> {};

TEST_P(VertexCoverPropertyTest, KernelizedMatchesDirectAndBruteForce) {
  const auto param = GetParam();
  Rng rng(param.seed);
  graph::Graph g = graph::ErdosRenyi(param.n, param.m, false, &rng);
  auto kernelized = HasVertexCoverKernelized(g, param.k, nullptr);
  auto direct = HasVertexCoverDirect(g, param.k, nullptr);
  ASSERT_TRUE(kernelized.ok() && direct.ok());
  EXPECT_EQ(*kernelized, *direct);
  EXPECT_EQ(*kernelized, BruteForceVc(g, param.k));
}

INSTANTIATE_TEST_SUITE_P(
    Graphs, VertexCoverPropertyTest,
    ::testing::Values(VcParam{1, 12, 15, 3}, VcParam{2, 12, 15, 5},
                      VcParam{3, 15, 20, 4}, VcParam{4, 15, 30, 6},
                      VcParam{5, 18, 20, 5}, VcParam{6, 18, 36, 8},
                      VcParam{7, 10, 45, 4}, VcParam{8, 10, 45, 7},
                      VcParam{9, 16, 8, 2}, VcParam{10, 20, 25, 6}));

TEST(BussKernelTest, AnswerCostIndependentOfGraphSizeAfterKernel) {
  // The Section 4(9) claim: with K fixed, after O(|E|) preprocessing the
  // decision costs O(1) — i.e. independent of |G|.
  Rng rng(131);
  const int k = 6;
  graph::Graph small = graph::ErdosRenyi(200, 100, false, &rng);
  graph::Graph large = graph::ErdosRenyi(20000, 10000, false, &rng);
  auto ks = BussKernelize(small, k, nullptr);
  auto kl = BussKernelize(large, k, nullptr);
  ASSERT_TRUE(ks.ok() && kl.ok());
  auto answer_cost = [&](const BussKernel& kernel) {
    CostMeter m;
    if (!kernel.decided.has_value()) {
      VertexCoverSearch(kernel.edges, kernel.remaining_k, &m);
    }
    return m.work() + 1;
  };
  // Both kernels are bounded by f(k), so costs are within a constant band.
  EXPECT_LT(answer_cost(*kl), 100 * answer_cost(*ks) + 1000);
}

}  // namespace
}  // namespace kernel
}  // namespace pitract
