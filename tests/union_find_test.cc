#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/algos.h"
#include "graph/generators.h"
#include "incremental/union_find.h"

namespace pitract {
namespace incremental {
namespace {

TEST(UnionFindTest, StartsFullySeparated) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_components(), 5);
  CostMeter m;
  EXPECT_FALSE(*uf.Connected(0, 1, &m));
  EXPECT_TRUE(*uf.Connected(3, 3, &m));
}

TEST(UnionFindTest, UnionMergesAndReportsChange) {
  UnionFind uf(4);
  CostMeter m;
  EXPECT_TRUE(*uf.Union(0, 1, &m));
  EXPECT_TRUE(*uf.Union(2, 3, &m));
  EXPECT_FALSE(*uf.Connected(0, 2, &m));
  EXPECT_TRUE(*uf.Union(1, 2, &m));
  EXPECT_TRUE(*uf.Connected(0, 3, &m));
  EXPECT_EQ(uf.num_components(), 1);
  EXPECT_FALSE(*uf.Union(0, 3, &m)) << "no-op union reports no change";
}

TEST(UnionFindTest, RejectsOutOfRange) {
  UnionFind uf(3);
  EXPECT_FALSE(uf.Union(0, 3, nullptr).ok());
  EXPECT_FALSE(uf.Connected(-1, 0, nullptr).ok());
  EXPECT_FALSE(uf.Find(99, nullptr).ok());
}

TEST(UnionFindTest, FindReturnsCanonicalRepresentative) {
  UnionFind uf(6);
  ASSERT_TRUE(uf.Union(0, 1, nullptr).ok());
  ASSERT_TRUE(uf.Union(1, 2, nullptr).ok());
  auto r0 = uf.Find(0, nullptr);
  auto r2 = uf.Find(2, nullptr);
  ASSERT_TRUE(r0.ok() && r2.ok());
  EXPECT_EQ(*r0, *r2);
  auto r5 = uf.Find(5, nullptr);
  EXPECT_NE(*r0, *r5);
}

TEST(UnionFindTest, PathCompressionShortensLaterQueries) {
  // Build a long chain, query the far end twice: the second find must be
  // much cheaper — the bounded incremental flavor of the structure.
  const int64_t n = 4096;
  UnionFind uf(n);
  for (int64_t i = 0; i + 1 < n; ++i) {
    ASSERT_TRUE(uf.Union(i, i + 1, nullptr).ok());
  }
  CostMeter first, second;
  ASSERT_TRUE(uf.Find(n - 1, &first).ok());
  ASSERT_TRUE(uf.Find(n - 1, &second).ok());
  EXPECT_LE(second.work(), 2);
  EXPECT_LE(first.work(), 64) << "union-by-rank keeps trees shallow";
}

class UnionFindPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UnionFindPropertyTest, AgreesWithBfsConnectivity) {
  Rng rng(GetParam());
  const graph::NodeId n = 80;
  UnionFind uf(n);
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
  for (int step = 0; step < 120; ++step) {
    auto a = static_cast<graph::NodeId>(rng.NextBelow(n));
    auto b = static_cast<graph::NodeId>(rng.NextBelow(n));
    ASSERT_TRUE(uf.Union(a, b, nullptr).ok());
    edges.emplace_back(a, b);
    if (step % 20 == 19) {
      auto g = graph::Graph::FromEdges(n, edges, /*directed=*/false);
      ASSERT_TRUE(g.ok());
      auto comp = graph::ConnectedComponents(*g);
      EXPECT_EQ(uf.num_components(), comp.num_components);
      for (int probe = 0; probe < 40; ++probe) {
        auto u = static_cast<graph::NodeId>(rng.NextBelow(n));
        auto v = static_cast<graph::NodeId>(rng.NextBelow(n));
        EXPECT_EQ(*uf.Connected(u, v, nullptr),
                  comp.component[static_cast<size_t>(u)] ==
                      comp.component[static_cast<size_t>(v)]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnionFindPropertyTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(UnionFindTest, IncrementalMaintenanceOfConnWitness) {
  // The Section 1 incremental-preprocessing story for connectivity: an
  // edge insertion updates the preprocessed structure in near-O(1) rather
  // than re-running the O(n + m) component pass.
  const int64_t n = 1 << 14;
  UnionFind uf(n);
  Rng rng(5);
  for (int64_t i = 0; i < n / 2; ++i) {
    ASSERT_TRUE(
        uf.Union(static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(n))),
                 static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(n))),
                 nullptr)
            .ok());
  }
  CostMeter delta;
  ASSERT_TRUE(uf.Union(1, 2, &delta).ok());
  EXPECT_LT(delta.work(), 128) << "far below the O(n + m) recompute";
}

}  // namespace
}  // namespace incremental
}  // namespace pitract
