// Quickstart: the Example 1 story end to end, driven through the engine.
//
// Answers point-selection queries by (a) the naive linear-scan baseline and
// (b) the Π-tractable route — PTIME B+-tree preprocessing followed by
// O(log |D|) probes — via the engine's prepare-once/answer-many batch API,
// and prints both the measured cost-model numbers and the paper's PB-scale
// arithmetic ("1.9 days vs seconds"). A second batch against the same data
// shows the engine's prepared-data cache: Π never runs twice.
//
// Run:  ./build/quickstart [num_rows]

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "common/cost_meter.h"
#include "common/timer.h"
#include "engine/builtins.h"
#include "engine/engine.h"

namespace {

using pitract::CostMeter;
using pitract::Timer;

void PrintPaperArithmetic() {
  // The paper's own model: a 1 PB relation scanned at 6 GB/s versus
  // O(log |D|) page probes.
  const double petabyte = 1e15;
  const double scan_seconds = petabyte / 6e9;
  std::printf("Paper model: scanning 1 PB at 6 GB/s = %.0f s (%.1f hours, %.1f days)\n",
              scan_seconds, scan_seconds / 3600, scan_seconds / 86400);
  std::printf("             a B+-tree probe touches ~log(|D|) pages: seconds, not days\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  const int64_t num_rows = argc > 1 ? std::atoll(argv[1]) : (1 << 20);
  if (num_rows <= 0) {
    std::fprintf(stderr, "usage: quickstart [num_rows > 0]\n");
    return 2;
  }
  const uint64_t kSeed = 42;
  std::printf("== pitract quickstart: point selection with preprocessing ==\n\n");
  PrintPaperArithmetic();

  auto& engine = pitract::engine::DefaultEngine();

  // 1. The baseline: the registered case answered from the raw data.
  auto baseline_case = engine.MakeCase("point-selection");
  if (!baseline_case.ok() || !(*baseline_case)->Generate(num_rows, kSeed).ok()) {
    std::fprintf(stderr, "case setup failed\n");
    return 1;
  }
  const int num_queries = (*baseline_case)->num_queries();
  CostMeter scan_cost;
  Timer scan_timer;
  for (int qi = 0; qi < num_queries; ++qi) {
    if (!(*baseline_case)->AnswerBaseline(qi, &scan_cost).ok()) return 1;
  }
  const double scan_ms = scan_timer.ElapsedMillis();

  // 2+3. The Π-tractable route through the engine: one call prepares the
  // B+-tree (PTIME, one-time) and answers the whole batch of probes.
  Timer batch_timer;
  auto batch = engine.AnswerTypedBatch("point-selection", num_rows, kSeed);
  const double batch_ms = batch_timer.ElapsedMillis();
  if (!batch.ok()) {
    std::fprintf(stderr, "engine batch failed: %s\n",
                 batch.status().ToString().c_str());
    return 1;
  }
  std::printf("D: %" PRId64 " rows; engine batch of %d queries\n\n", num_rows,
              num_queries);

  std::printf("%d queries, no preprocessing (linear scan):\n", num_queries);
  std::printf("  cost-model work  = %" PRId64 " ops\n", scan_cost.work());
  std::printf("  bytes touched    = %.1f MB, wall time = %.2f ms\n\n",
              static_cast<double>(scan_cost.bytes_read()) / 1e6, scan_ms);

  std::printf("%d queries through the engine (Pi once, then B+-tree probes):\n",
              num_queries);
  std::printf("  Pi(D) work       = %" PRId64 " ops (ran %" PRId64 " time)\n",
              batch->prepare_cost.work, batch->prepare_runs);
  std::printf("  answering work   = %" PRId64 " ops, wall time = %.3f ms\n\n",
              batch->answer_cost.work, batch_ms);

  // 4. Ask again: the engine's typed cache already holds Pi(D).
  auto again = engine.AnswerTypedBatch("point-selection", num_rows, kSeed);
  if (!again.ok()) return 1;
  std::printf("same data, second batch: Pi ran %" PRId64
              " times (cache hit: %s) — prepare once, answer many\n\n",
              again->prepare_runs, again->cache_hit ? "yes" : "no");

  const double speedup =
      static_cast<double>(scan_cost.work()) /
      static_cast<double>(batch->answer_cost.work ? batch->answer_cost.work
                                                  : 1);
  std::printf("per-query work speedup after preprocessing: %.0fx — the class "
              "Q1 is Pi-tractable (Definition 1).\n",
              speedup);
  return 0;
}
