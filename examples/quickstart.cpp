// Quickstart: the Example 1 story end to end.
//
// Builds a relation, answers point-selection queries by (a) the naive
// linear scan and (b) the Π-tractable route — PTIME B+-tree preprocessing
// followed by O(log |D|) probes — and prints both the measured cost-model
// numbers and the paper's PB-scale arithmetic ("1.9 days vs seconds").
//
// Run:  ./build/examples/quickstart [num_rows]

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "common/rng.h"
#include "common/timer.h"
#include "index/bptree.h"
#include "ncsim/ncsim.h"
#include "storage/generator.h"

namespace {

using pitract::CostMeter;
using pitract::Rng;
using pitract::Timer;

void PrintPaperArithmetic() {
  // The paper's own model: a 1 PB relation scanned at 6 GB/s versus
  // O(log |D|) page probes.
  const double petabyte = 1e15;
  const double scan_seconds = petabyte / 6e9;
  std::printf("Paper model: scanning 1 PB at 6 GB/s = %.0f s (%.1f hours, %.1f days)\n",
              scan_seconds, scan_seconds / 3600, scan_seconds / 86400);
  std::printf("             a B+-tree probe touches ~log(|D|) pages: seconds, not days\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  int64_t num_rows = argc > 1 ? std::atoll(argv[1]) : (1 << 20);
  std::printf("== pitract quickstart: point selection with preprocessing ==\n\n");
  PrintPaperArithmetic();

  // 1. Generate the database D.
  Rng rng(42);
  pitract::storage::RelationGenOptions options;
  options.num_rows = num_rows;
  options.num_columns = 1;
  options.value_range = 2 * num_rows;
  pitract::storage::Relation relation =
      pitract::storage::GenerateIntRelation(options, &rng);
  std::printf("D: %" PRId64 " rows (%.1f MB)\n", relation.num_rows(),
              static_cast<double>(relation.EstimateBytes()) / 1e6);

  // 2. Preprocess: Π(D) = a B+-tree on column c0 (PTIME, one-time).
  auto column = relation.Int64Column(0);
  std::vector<std::pair<int64_t, int64_t>> entries;
  for (size_t row = 0; row < column->size(); ++row) {
    entries.emplace_back((*column)[row], static_cast<int64_t>(row));
  }
  std::sort(entries.begin(), entries.end());
  pitract::index::BPlusTree tree;
  Timer preprocess_timer;
  if (auto s = tree.BulkLoad(entries); !s.ok()) {
    std::fprintf(stderr, "bulk load failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("Pi(D): B+-tree of height %d built in %.1f ms (one-time, off-line)\n\n",
              tree.Stats().height, preprocess_timer.ElapsedMillis());

  // 3. Answer the same queries both ways.
  const int kQueries = 64;
  CostMeter scan_cost, index_cost;
  Timer scan_timer;
  for (int qi = 0; qi < kQueries; ++qi) {
    int64_t needle = static_cast<int64_t>(
        rng.NextBelow(static_cast<uint64_t>(2 * num_rows)));
    auto hit = relation.ScanPointExists(0, needle, &scan_cost);
    if (!hit.ok()) return 1;
  }
  double scan_ms = scan_timer.ElapsedMillis();

  Rng rng2(42 + 1);  // same query stream
  Timer index_timer;
  for (int qi = 0; qi < kQueries; ++qi) {
    int64_t needle = static_cast<int64_t>(
        rng2.NextBelow(static_cast<uint64_t>(2 * num_rows)));
    tree.PointExists(needle, &index_cost);
  }
  double index_ms = index_timer.ElapsedMillis();

  std::printf("%d queries, no preprocessing (linear scan):\n", kQueries);
  std::printf("  cost-model work  = %" PRId64 " ops, depth = %" PRId64 "\n",
              scan_cost.work(), scan_cost.depth());
  std::printf("  bytes touched    = %.1f MB, wall time = %.2f ms\n\n",
              static_cast<double>(scan_cost.bytes_read()) / 1e6, scan_ms);

  std::printf("%d queries after Pi(D) (B+-tree probes):\n", kQueries);
  std::printf("  cost-model work  = %" PRId64 " ops, depth = %" PRId64 "\n",
              index_cost.work(), index_cost.depth());
  std::printf("  bytes touched    = %.3f MB, wall time = %.3f ms\n\n",
              static_cast<double>(index_cost.bytes_read()) / 1e6, index_ms);

  double speedup = static_cast<double>(scan_cost.work()) /
                   static_cast<double>(index_cost.work() ? index_cost.work() : 1);
  std::printf("work speedup after preprocessing: %.0fx — the class Q1 is "
              "Pi-tractable (Definition 1).\n",
              speedup);
  return 0;
}
