// Product ranking: CSV ingestion + top-k with early termination.
//
// The Section 8(5) scenario on an external dataset: load a product catalog
// from CSV, preprocess per-attribute sorted lists (PTIME), then serve
// weighted top-k ranking queries with Fagin's Threshold Algorithm —
// touching only a prefix of the lists instead of scanning the catalog.
//
// Run:  ./build/examples/product_ranking [num_products]

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "common/rng.h"
#include "storage/csv.h"
#include "storage/generator.h"
#include "topk/threshold.h"

int main(int argc, char** argv) {
  using pitract::CostMeter;
  const int64_t num_products = argc > 1 ? std::atoll(argv[1]) : 100000;

  std::printf("== pitract: top-k product ranking with early termination ==\n\n");

  // Synthesize a catalog, round-trip it through CSV to show the ingestion
  // path a downstream user would take with real data.
  pitract::Rng rng(21);
  pitract::storage::RelationGenOptions options;
  options.num_rows = num_products;
  options.num_columns = 3;  // popularity, rating, freshness
  options.value_range = 100000;
  options.zipf_theta = 1.1;  // sales popularity is heavy-tailed
  pitract::storage::Relation catalog =
      pitract::storage::GenerateIntRelation(options, &rng);
  std::string csv_blob = pitract::storage::csv::Write(catalog);
  auto loaded = pitract::storage::csv::Read(csv_blob);
  if (!loaded.ok()) {
    std::fprintf(stderr, "CSV round trip failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("catalog: %" PRId64 " products via CSV (%.1f MB serialized)\n\n",
              loaded->num_rows(), static_cast<double>(csv_blob.size()) / 1e6);

  // Preprocess: per-attribute descending lists.
  CostMeter preprocess_cost;
  auto index =
      pitract::topk::ThresholdIndex::Build(*loaded, {0, 1, 2}, &preprocess_cost);
  if (!index.ok()) {
    std::fprintf(stderr, "index build failed\n");
    return 1;
  }
  std::printf("Pi(D): 3 sorted lists, %" PRId64 " ops (one-time)\n\n",
              preprocess_cost.work());

  // Serve ranking queries under different weightings.
  struct Scenario {
    const char* name;
    std::vector<int64_t> weights;
  };
  const Scenario scenarios[] = {
      {"bestsellers      (popularity-heavy)", {5, 1, 1}},
      {"critics' choice  (rating-heavy)", {1, 5, 1}},
      {"new & notable    (freshness-heavy)", {1, 1, 5}},
  };
  for (const auto& scenario : scenarios) {
    CostMeter ta_cost, scan_cost;
    auto ta = index->TopK(scenario.weights, 10, &ta_cost);
    auto scan = pitract::topk::ThresholdIndex::TopKByScan(
        *loaded, {0, 1, 2}, scenario.weights, 10, &scan_cost);
    if (!ta.ok() || !scan.ok()) return 1;
    for (size_t i = 0; i < ta->objects.size(); ++i) {
      if (ta->objects[i].score != scan->objects[i].score) {
        std::fprintf(stderr, "MISMATCH in %s\n", scenario.name);
        return 1;
      }
    }
    std::printf("%s\n", scenario.name);
    std::printf("  top product id=%" PRId64 " score=%" PRId64
                " | stopped at depth %" PRId64 "/%" PRId64 "\n",
                ta->objects.front().object_id, ta->objects.front().score,
                ta->stop_depth, loaded->num_rows());
    std::printf("  TA work %" PRId64 " ops vs scan %" PRId64
                " ops (%.0fx), answers identical\n",
                ta_cost.work(), scan_cost.work(),
                static_cast<double>(scan_cost.work()) /
                    static_cast<double>(ta_cost.work() ? ta_cost.work() : 1));
  }
  std::printf("\n-> top-k with early termination: exact answers without\n"
              "   computing the entire Q(D) (paper, Section 8(5)).\n");
  return 0;
}
