// Making CVP tractable: factorizations, reductions and transported
// witnesses — the Sections 5–7 machinery driven end to end.
//
// 1. Shows the Theorem 9 separation empirically: under Υ0 (data = ε)
//    preprocessing cannot help and each CVP query pays the full circuit
//    depth; under the data-carrying re-factorization the answers are O(1)
//    after one PTIME evaluation pass.
// 2. Runs the verified reduction chain Member ≤ Conn ≤ BDS through the
//    Lemma 2 composition and answers list-membership queries with the BDS
//    witness pulled back by Lemma 3 — the Theorem 5 pipeline.
//
// Run:  ./build/examples/circuit_audit [num_gates]

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "circuit/generators.h"
#include "common/rng.h"
#include "core/problems.h"
#include "core/reduction.h"

int main(int argc, char** argv) {
  using pitract::CostMeter;
  namespace core = pitract::core;
  const int32_t num_gates = argc > 1 ? std::atoi(argv[1]) : 20000;

  std::printf("== pitract: making CVP tractable via re-factorization ==\n\n");

  pitract::Rng rng(13);
  pitract::circuit::CircuitGenOptions options;
  options.num_inputs = 16;
  options.num_gates = num_gates;
  options.deep = true;
  auto instance = pitract::circuit::RandomCvpInstance(options, &rng);
  std::printf("circuit: %d gates, depth %" PRId64 " (deliberately sequential)\n\n",
              instance.circuit.num_gates(), instance.circuit.Depth());

  // --- Theorem 9 side: factorization Y0 exposes nothing for preprocessing.
  core::PiWitness y0 = core::CvpEmptyDataWitness();
  auto prepared_nothing = y0.preprocess("", nullptr);
  if (!prepared_nothing.ok()) return 1;
  CostMeter y0_cost;
  const int kQueries = 32;
  for (int qi = 0; qi < kQueries; ++qi) {
    auto answer = y0.answer(*prepared_nothing,
                            core::MakeCvpInstanceString(instance), &y0_cost);
    if (!answer.ok()) return 1;
  }
  std::printf("Y0 factorization (pi1 = epsilon): %d queries cost depth %" PRId64
              "\n  -> every query re-evaluates the circuit; preprocessing "
              "cannot help (Theorem 9)\n\n",
              kQueries, y0_cost.depth());

  // --- Corollary 6 side: the data-carrying factorization of GVP.
  core::PiWitness gvp = core::GvpWitness();
  auto gvp_data = core::GvpFactorization().pi1(
      core::MakeGvpInstance(instance, instance.circuit.output()));
  if (!gvp_data.ok()) return 1;
  CostMeter preprocess_cost;
  auto prepared = gvp.preprocess(*gvp_data, &preprocess_cost);
  if (!prepared.ok()) return 1;
  CostMeter gvp_cost;
  for (int qi = 0; qi < kQueries; ++qi) {
    auto gate = static_cast<pitract::circuit::GateId>(
        rng.NextBelow(static_cast<uint64_t>(instance.circuit.num_gates())));
    auto answer =
        gvp.answer(*prepared, std::to_string(gate), &gvp_cost);
    if (!answer.ok()) return 1;
  }
  std::printf("re-factorized (data = circuit+inputs): one PTIME pass "
              "(work %" PRId64 "), then %d queries cost depth %" PRId64 "\n"
              "  -> O(1) per query; CVP made Pi-tractable (Corollary 6)\n\n",
              preprocess_cost.work(), kQueries, gvp_cost.depth());

  // --- The Theorem 5 pipeline: Member <= Conn <= BDS, composed & transported.
  std::printf("Lemma 2/3 pipeline: list membership answered by a BDS oracle\n");
  auto composed =
      core::Compose(core::MemberToConnReduction(), core::ConnToBdsReduction());
  auto witness = core::Transport(composed, core::BdsWitness());
  std::vector<int64_t> watchlist;
  for (int i = 0; i < 200; ++i) {
    watchlist.push_back(static_cast<int64_t>(rng.NextBelow(500)));
  }
  int correct = 0;
  core::DecisionProblem member = core::ListMembershipProblem();
  for (int trial = 0; trial < 100; ++trial) {
    int64_t probe = static_cast<int64_t>(rng.NextBelow(500));
    std::string x = core::MakeMemberInstance(500, watchlist, probe);
    auto data = composed.source_factorization.pi1(x);
    auto query = composed.source_factorization.pi2(x);
    if (!data.ok() || !query.ok()) return 1;
    auto prepared_bds = witness.preprocess(*data, nullptr);
    if (!prepared_bds.ok()) return 1;
    auto fast = witness.answer(*prepared_bds, *query, nullptr);
    auto reference = member.contains(x);
    if (!fast.ok() || !reference.ok()) return 1;
    if (*fast == *reference) ++correct;
  }
  std::printf("  100/100 membership queries routed through BDS: %d correct\n",
              correct);
  std::printf("  (reduction: list -> star graph -> renumbered BDS instance; "
              "witness: visit-order ranks)\n");
  return correct == 100 ? 0 : 1;
}
