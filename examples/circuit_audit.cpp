// Making CVP tractable: factorizations, reductions and transported
// witnesses — the Sections 5–7 machinery driven end to end through the
// engine registry.
//
// 1. Shows the Theorem 9 separation empirically: under Υ0 (data = ε)
//    preprocessing cannot help and each CVP query pays the full circuit
//    depth; under the data-carrying re-factorization the answers are O(1)
//    after one PTIME evaluation pass.
// 2. Runs the verified reduction chain Member ≤ Conn ≤ BDS and answers
//    list-membership queries with the BDS witness pulled back by Lemma 3 —
//    looked up from the registry as "member-via-bds", with the
//    PreparedStore guaranteeing Π runs once for the whole batch.
//
// Run:  ./build/circuit_audit [num_gates]

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "circuit/generators.h"
#include "common/rng.h"
#include "core/problems.h"
#include "engine/builtins.h"
#include "engine/engine.h"

int main(int argc, char** argv) {
  namespace core = pitract::core;
  namespace engine = pitract::engine;
  const int32_t num_gates = argc > 1 ? std::atoi(argv[1]) : 20000;

  std::printf("== pitract: making CVP tractable via re-factorization ==\n\n");

  auto& eng = engine::DefaultEngine();

  pitract::Rng rng(13);
  pitract::circuit::CircuitGenOptions options;
  options.num_inputs = 16;
  options.num_gates = num_gates;
  options.deep = true;
  auto instance = pitract::circuit::RandomCvpInstance(options, &rng);
  std::printf("circuit: %d gates, depth %" PRId64 " (deliberately sequential)\n\n",
              instance.circuit.num_gates(), instance.circuit.Depth());

  // --- Theorem 9 side: factorization Y0 exposes nothing for preprocessing.
  const int kQueries = 32;
  std::vector<std::string> cvp_queries(
      kQueries, core::MakeCvpInstanceString(instance));
  auto y0_batch = eng.AnswerBatch("cvp-empty-data", "", cvp_queries);
  if (!y0_batch.ok()) {
    std::fprintf(stderr, "cvp-empty-data batch failed: %s\n",
                 y0_batch.status().ToString().c_str());
    return 1;
  }
  std::printf("Y0 factorization (pi1 = epsilon): %d queries cost depth %" PRId64
              "\n  -> every query re-evaluates the circuit; preprocessing "
              "cannot help (Theorem 9)\n\n",
              kQueries, y0_batch->answer_cost.depth);

  // --- Corollary 6 side: the data-carrying factorization of GVP.
  auto gvp_entry = eng.Find("cvp-refactorized");
  if (!gvp_entry.ok()) return 1;
  auto gvp_data = (*gvp_entry)->factorization.pi1(
      core::MakeGvpInstance(instance, instance.circuit.output()));
  if (!gvp_data.ok()) return 1;
  std::vector<std::string> gate_queries;
  for (int qi = 0; qi < kQueries; ++qi) {
    gate_queries.push_back(std::to_string(
        rng.NextBelow(static_cast<uint64_t>(instance.circuit.num_gates()))));
  }
  auto gvp_batch = eng.AnswerBatch("cvp-refactorized", *gvp_data, gate_queries);
  if (!gvp_batch.ok()) return 1;
  std::printf("re-factorized (data = circuit+inputs): one PTIME pass "
              "(work %" PRId64 "), then %d queries cost depth %" PRId64 "\n"
              "  -> O(1) per query; CVP made Pi-tractable (Corollary 6)\n",
              gvp_batch->prepare_cost.work, kQueries,
              gvp_batch->answer_cost.depth);
  // A second batch against the same circuit never re-runs Pi: the
  // PreparedStore serves the gate-value bitmap.
  auto gvp_again = eng.AnswerBatch("cvp-refactorized", *gvp_data, gate_queries);
  if (!gvp_again.ok()) return 1;
  std::printf("  second batch: prepare work %" PRId64
              " (PreparedStore hit: %s)\n\n",
              gvp_again->prepare_cost.work,
              gvp_again->cache_hit ? "yes" : "no");

  // --- The Theorem 5 pipeline, both registry entries.
  //
  // "member-via-conn" keeps the plain Y_member factorization, so one data
  // part serves the whole probe batch: Pi (star graph + component labels)
  // runs once. "member-via-bds" composes through Lemma 2, whose padding
  // puts sigma(x) = pi1(x)@pi2(x) on *both* sides — the data part carries
  // the query, so it is exercised per instance via AnswerInstance.
  std::printf("Lemma 2/3 pipeline: list membership via transported witnesses\n");
  std::vector<int64_t> watchlist;
  for (int i = 0; i < 200; ++i) {
    watchlist.push_back(static_cast<int64_t>(rng.NextBelow(500)));
  }
  std::string member_data =
      core::MemberFactorization()
          .pi1(core::MakeMemberInstance(500, watchlist, 0))
          .value();
  std::vector<std::string> probes;
  for (int trial = 0; trial < 100; ++trial) {
    probes.push_back(std::to_string(rng.NextBelow(500)));
  }
  auto member_batch = eng.AnswerBatch("member-via-conn", member_data, probes);
  if (!member_batch.ok()) {
    std::fprintf(stderr, "member-via-conn batch failed: %s\n",
                 member_batch.status().ToString().c_str());
    return 1;
  }
  // Cross-check every answer against the reference semantics, and run the
  // full composed chain (through BDS) on each restored instance.
  core::DecisionProblem member = core::ListMembershipProblem();
  int correct = 0;
  int bds_correct = 0;
  for (size_t qi = 0; qi < probes.size(); ++qi) {
    std::string x = core::MakeMemberInstance(500, watchlist,
                                             std::atoll(probes[qi].c_str()));
    auto reference = member.contains(x);
    if (reference.ok() && *reference == member_batch->answers[qi]) ++correct;
    auto via_bds = eng.AnswerInstance("member-via-bds", x);
    if (via_bds.ok() && reference.ok() && *via_bds == *reference) {
      ++bds_correct;
    }
  }
  std::printf("  member-via-conn batch: %d/100 correct, Pi ran %" PRId64
              " time(s) for all 100 probes\n",
              correct, member_batch->prepare_runs);
  std::printf("  member-via-bds (Lemma 2 padded composition, per instance): "
              "%d/100 correct\n",
              bds_correct);
  std::printf("  (reduction: list -> star graph -> renumbered BDS instance; "
              "witnesses transported by the\n   registry from 'connectivity' "
              "and 'breadth-depth-search' — looked up, not re-plumbed)\n");
  return correct == 100 && bds_correct == 100 ? 0 : 1;
}
