// Social-network reachability with query-preserving compression.
//
// The Section 4(5) scenario (after Fan et al. [16]): a skewed follower
// graph is compressed by reachability equivalence, then "can influence
// reach from u to v?" queries are answered exactly on the compressed
// structure. The example reports the compression ratio, validates answers
// against per-query BFS, and contrasts the two cost profiles; it also runs
// the bisimulation quotient used for pattern queries.
//
// Run:  ./build/examples/social_network [num_users]

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include <filesystem>

#include "common/rng.h"
#include "common/timer.h"
#include "compress/bisim_compress.h"
#include "compress/reach_compress.h"
#include "core/problems.h"
#include "engine/builtins.h"
#include "engine/engine.h"
#include "engine/serve.h"
#include "graph/algos.h"
#include "graph/generators.h"

int main(int argc, char** argv) {
  using pitract::CostMeter;
  const pitract::graph::NodeId num_users =
      argc > 1 ? static_cast<pitract::graph::NodeId>(std::atoi(argv[1])) : 3000;
  if (num_users <= 0) {
    std::fprintf(stderr, "usage: social_network [num_users > 0]\n");
    return 2;
  }

  std::printf("== pitract: influence reachability on a social graph ==\n\n");

  // Preferential-attachment "follows" graph, oriented old -> new (a
  // citation-style DAG with hubs), plus some mutual-follow back-edges that
  // create SCCs.
  pitract::Rng rng(7);
  pitract::graph::Graph undirected =
      pitract::graph::PreferentialAttachment(num_users, 3, &rng);
  std::vector<std::pair<pitract::graph::NodeId, pitract::graph::NodeId>> arcs;
  for (auto [u, v] : undirected.Edges()) {
    auto lo = std::min(u, v);
    auto hi = std::max(u, v);
    arcs.emplace_back(lo, hi);
    if (rng.NextBool(0.15)) arcs.emplace_back(hi, lo);  // mutual follow
  }
  auto graph_or = pitract::graph::Graph::FromEdges(num_users, arcs, true);
  if (!graph_or.ok()) {
    std::fprintf(stderr, "graph build failed\n");
    return 1;
  }
  const pitract::graph::Graph& g = *graph_or;
  std::printf("G: %d users, %" PRId64 " follow arcs (%.2f MB)\n\n",
              g.num_nodes(), g.num_edges(),
              static_cast<double>(g.EstimateBytes()) / 1e6);

  // Preprocess: query-preserving compression.
  CostMeter preprocess_cost;
  pitract::Timer build_timer;
  auto compressed =
      pitract::compress::ReachCompressed::Build(g, &preprocess_cost);
  std::printf("Pi(D): reachability-equivalence compression in %.1f ms\n",
              build_timer.ElapsedMillis());
  std::printf("  |Dc| = %d classes for %d users  (node ratio %.3f)\n\n",
              compressed.compressed().num_nodes(), g.num_nodes(),
              compressed.NodeRatio());

  // Answer a query batch on Dc and cross-check against BFS on D.
  const int kQueries = 200;
  CostMeter compressed_cost, bfs_cost;
  int64_t positive = 0;
  for (int qi = 0; qi < kQueries; ++qi) {
    auto u = static_cast<pitract::graph::NodeId>(
        rng.NextBelow(static_cast<uint64_t>(num_users)));
    auto v = static_cast<pitract::graph::NodeId>(
        rng.NextBelow(static_cast<uint64_t>(num_users)));
    auto fast = compressed.Reachable(u, v, &compressed_cost);
    bool slow = pitract::graph::BfsReachable(g, u, v, &bfs_cost);
    if (!fast.ok() || *fast != slow) {
      std::fprintf(stderr, "MISMATCH at (%d, %d)!\n", u, v);
      return 1;
    }
    if (slow) ++positive;
  }
  std::printf("%d queries (%.0f%% positive), answers identical on D and Dc\n",
              kQueries, 100.0 * static_cast<double>(positive) / kQueries);
  std::printf("  per-query BFS on D:   work = %" PRId64 " ops total\n",
              bfs_cost.work());
  std::printf("  probes on Dc:         work = %" PRId64 " ops total (%.0fx less)\n\n",
              compressed_cost.work(),
              static_cast<double>(bfs_cost.work()) /
                  static_cast<double>(
                      compressed_cost.work() ? compressed_cost.work() : 1));

  // Mutual-reachability ("same community") queries through the engine: the
  // undirected friendship graph is the data part of L_conn; one batch call
  // preprocesses component labels once and answers every probe in O(1).
  {
    auto& engine = pitract::engine::DefaultEngine();
    std::string conn_data =
        pitract::core::ConnFactorization()
            .pi1(pitract::core::MakeConnInstance(undirected, 0, 0))
            .value();
    std::vector<std::string> probes;
    for (int qi = 0; qi < 200; ++qi) {
      auto u = rng.NextBelow(static_cast<uint64_t>(num_users));
      auto v = rng.NextBelow(static_cast<uint64_t>(num_users));
      probes.push_back(std::to_string(u) + "#" + std::to_string(v));
    }
    auto batch = engine.AnswerBatch("connectivity", conn_data, probes);
    if (!batch.ok()) {
      std::fprintf(stderr, "connectivity batch failed: %s\n",
                   batch.status().ToString().c_str());
      return 1;
    }
    int64_t connected = 0;
    for (bool answer : batch->answers) connected += answer ? 1 : 0;
    std::printf("200 same-community probes via the engine: Pi ran %" PRId64
                " time (component labels),\n  answering work %" PRId64
                " ops total; %" PRId64 "/200 pairs connected\n\n",
                batch->prepare_runs, batch->answer_cost.work, connected);

    // The same probes as *concurrent traffic*: four worker threads replay
    // the batch 16 times through the serving layer. The sharded store
    // dedups in-flight Pi, so preprocessing still runs zero extra times
    // (the warm entry from the batch above serves everyone).
    pitract::engine::ServeWorkItem item;
    item.problem = "connectivity";
    item.data = conn_data;
    item.queries = probes;
    pitract::engine::ServeOptions serve_options;
    serve_options.threads = 4;
    serve_options.repeat = 16;
    auto report = pitract::engine::ServeParallel(
        &engine, std::span<const pitract::engine::ServeWorkItem>(&item, 1),
        serve_options);
    if (report.errors != 0) {
      std::fprintf(stderr, "concurrent serving failed: %s\n",
                   report.first_error.ToString().c_str());
      return 1;
    }
    std::printf("concurrent serving (4 threads x 16 passes): %" PRId64
                " queries at %.0f q/s,\n  Pi re-ran %" PRId64
                " times (in-flight dedup + warm store)\n\n",
                report.queries, report.queries_per_second, report.pi_runs);

    // Nightly-restart drill: spill the warm Pi(D) structures, rehydrate a
    // fresh engine from disk, and answer the same batch with zero
    // recomputation — the store survives the process.
    const std::filesystem::path spill_dir =
        std::filesystem::temp_directory_path() / "pitract_social_spill";
    if (engine.store().Spill(spill_dir.string()).ok()) {
      pitract::engine::QueryEngine restarted;
      if (pitract::engine::RegisterBuiltins(&restarted).ok() &&
          restarted.store().Load(spill_dir.string()).ok()) {
        auto warm = restarted.AnswerBatch("connectivity", conn_data, probes);
        if (warm.ok()) {
          std::printf("after spill -> restart -> load: Pi ran %" PRId64
                      " times (warm cache survived the restart)\n\n",
                      warm->prepare_runs);
        }
      }
      std::filesystem::remove_all(spill_dir);
    }
  }

  // Bisimulation quotient for pattern queries: label users by activity tier.
  std::vector<int32_t> labels(static_cast<size_t>(num_users));
  for (auto& l : labels) l = static_cast<int32_t>(rng.NextBelow(4));
  auto bisim = pitract::compress::BisimCompressed::Build(g, labels, nullptr);
  if (!bisim.ok()) {
    std::fprintf(stderr, "bisimulation failed\n");
    return 1;
  }
  std::printf("Bisimulation quotient for pattern queries: %d blocks (ratio %.3f)\n",
              bisim->num_blocks(), bisim->NodeRatio());
  CostMeter pattern_cost;
  bool has_path = bisim->HasLabelPath({0, 1, 2}, &pattern_cost);
  std::printf("  pattern tier0->tier1->tier2 path exists: %s "
              "(answered on the quotient alone, %" PRId64 " ops)\n",
              has_path ? "yes" : "no", pattern_cost.work());
  return 0;
}
