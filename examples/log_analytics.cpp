// Log analytics with materialized views and bounded incremental maintenance.
//
// The Section 4(6)/(7) scenario: an append-only event log is preprocessed
// into (a) a view catalog (count + partitioned range views) so dashboards
// never scan the base relation, and (b) a Δ-maintained index whose upkeep
// cost tracks |ΔD|, not |D|. Every view answer is cross-checked against a
// base-relation scan.
//
// Run:  ./build/examples/log_analytics [num_events]

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "common/rng.h"
#include "core/problems.h"
#include "engine/builtins.h"
#include "engine/engine.h"
#include "incremental/delta_index.h"
#include "storage/generator.h"
#include "views/views.h"

int main(int argc, char** argv) {
  using pitract::CostMeter;
  const int64_t num_events = argc > 1 ? std::atoll(argv[1]) : 200000;
  if (num_events <= 0) {
    std::fprintf(stderr, "usage: log_analytics [num_events > 0]\n");
    return 2;
  }

  std::printf("== pitract: log analytics over views ==\n\n");

  pitract::Rng rng(11);
  pitract::storage::Relation log =
      pitract::storage::GenerateLogRelation(num_events, /*num_levels=*/4,
                                            /*num_codes=*/64, &rng);
  std::printf("D: %" PRId64 " log events (ts, level, code), %.1f MB\n\n",
              log.num_rows(), static_cast<double>(log.EstimateBytes()) / 1e6);

  // Preprocess: materialize the views (PTIME, one-time).
  pitract::views::ViewCatalog catalog;
  CostMeter view_cost;
  if (!catalog.AddCountView(log, "code", &view_cost).ok() ||
      !catalog.AddCountView(log, "level", &view_cost).ok() ||
      !catalog.AddRangeView(log, "level", "ts", &view_cost).ok()) {
    std::fprintf(stderr, "view materialization failed\n");
    return 1;
  }
  std::printf("V(D): 3 views, %.2f MB (%.1f%% of D), built with %" PRId64
              " ops\n\n",
              static_cast<double>(catalog.EstimateBytes()) / 1e6,
              100.0 * static_cast<double>(catalog.EstimateBytes()) /
                  static_cast<double>(log.EstimateBytes()),
              view_cost.work());

  // Dashboard queries answered from views only, validated against scans.
  CostMeter views_cost, scan_cost;
  for (int trial = 0; trial < 100; ++trial) {
    pitract::views::ViewQuery q;
    if (rng.NextBool()) {
      q.kind = pitract::views::ViewQuery::Kind::kCountByKey;
      q.key_column = rng.NextBool() ? "code" : "level";
      q.key = static_cast<int64_t>(rng.NextBelow(64));
    } else {
      q.kind = pitract::views::ViewQuery::Kind::kExistsInRange;
      q.key_column = "level";
      q.range_column = "ts";
      q.key = static_cast<int64_t>(rng.NextBelow(4));
      q.lo = static_cast<int64_t>(rng.NextBelow(
          static_cast<uint64_t>(3 * num_events)));
      q.hi = q.lo + 5000;
    }
    auto fast = catalog.Answer(q, &views_cost);
    auto slow = pitract::views::ViewCatalog::AnswerByScan(log, q, &scan_cost);
    if (!fast.ok() || !slow.ok() || *fast != *slow) {
      std::fprintf(stderr, "view/scan mismatch!\n");
      return 1;
    }
  }
  std::printf("100 dashboard queries:\n");
  std::printf("  from views: %" PRId64 " ops  |  from scans: %" PRId64
              " ops  (%.0fx)\n\n",
              views_cost.work(), scan_cost.work(),
              static_cast<double>(scan_cost.work()) /
                  static_cast<double>(views_cost.work() ? views_cost.work() : 1));

  // Ad-hoc predicate dashboards through the engine: the λ-rewriting class
  // L_sel (remark under Definition 1). The code column becomes the data
  // part once; every dashboard refresh is a batch of normalized-predicate
  // probes against the engine's PreparedStore — Π (the sort) never re-runs.
  {
    auto& engine = pitract::engine::DefaultEngine();
    auto codes = log.Int64Column(2);
    std::vector<int64_t> code_list(codes->begin(), codes->end());
    std::string data =
        pitract::core::SelectionFactorization()
            .pi1(pitract::core::MakeSelectionInstance(64, code_list, {0, 0}))
            .value();
    std::vector<std::string> predicates;
    for (int i = 0; i < 40; ++i) {
      switch (rng.NextBelow(4)) {
        case 0:
          predicates.push_back("0," + std::to_string(rng.NextBelow(96)));
          break;  // = a
        case 1:
          predicates.push_back("1," + std::to_string(rng.NextBelow(96)));
          break;  // <= a
        case 2:
          predicates.push_back("2," + std::to_string(rng.NextBelow(96)));
          break;  // >= a
        default: {
          int64_t lo = static_cast<int64_t>(rng.NextBelow(96));
          predicates.push_back("3," + std::to_string(lo) + "," +
                               std::to_string(lo + 4));
        }
      }
    }
    auto first = engine.AnswerBatch("predicate-selection", data, predicates);
    auto refresh = engine.AnswerBatch("predicate-selection", data, predicates);
    if (!first.ok() || !refresh.ok()) {
      std::fprintf(stderr, "predicate dashboard failed\n");
      return 1;
    }
    std::printf("40 predicate probes via the engine (lambda-rewritten to "
                "intervals):\n");
    std::printf("  first batch:  Pi work %" PRId64 " (sort once), answering "
                "work %" PRId64 "\n",
                first->prepare_cost.work, first->answer_cost.work);
    std::printf("  refresh:      Pi work %" PRId64 " (PreparedStore hit: %s), "
                "same %zu answers\n\n",
                refresh->prepare_cost.work,
                refresh->cache_hit ? "yes" : "no", refresh->answers.size());
  }

  // Incremental maintenance: stream Δ-batches into the code index.
  auto code_column = log.Int64Column(2);
  std::vector<std::pair<int64_t, int64_t>> entries;
  for (size_t row = 0; row < code_column->size(); ++row) {
    entries.emplace_back((*code_column)[row], static_cast<int64_t>(row));
  }
  auto index = pitract::incremental::DeltaMaintainedIndex::Build(entries, nullptr);
  if (!index.ok()) {
    std::fprintf(stderr, "index build failed\n");
    return 1;
  }
  CostMeter delta_cost, rebuild_cost;
  int64_t next_row = log.num_rows();
  for (int batch = 0; batch < 10; ++batch) {
    std::vector<pitract::incremental::Delta> deltas;
    for (int i = 0; i < 100; ++i) {
      pitract::incremental::Delta d;
      d.op = pitract::incremental::Delta::Op::kInsert;
      d.key = static_cast<int64_t>(rng.NextBelow(64));
      d.row_id = next_row++;
      deltas.push_back(d);
    }
    if (!index->ApplyDelta(deltas, &delta_cost).ok()) return 1;
    // What a from-scratch preprocessing of D ⊕ ΔD would have cost:
    rebuild_cost.AddSerial(index->size() * 18);  // n log n at n ≈ |D|
  }
  std::printf("10 delta-batches of 100 inserts each:\n");
  std::printf("  incremental maintenance: %" PRId64 " ops (grows with |dD|)\n",
              delta_cost.work());
  std::printf("  rebuild-from-scratch:    %" PRId64 " ops (grows with |D|)\n",
              rebuild_cost.work());
  std::printf("  -> bounded incremental preprocessing, Section 4(7)\n");
  return 0;
}
