// X2 — the Section 1 economics: "this one-time cost can often be ignored"
// because the indices serve a multitude of queries.
//
// For each registered query class this harness measures the PTIME
// preprocessing work and the per-query work with and without the
// preprocessed structure, then reports the break-even query count
//
//     q* = preprocess_work / (baseline_per_query - prepared_per_query)
//
// — how many queries amortize the one-time cost. Expected shape: q* is
// modest (often < a few hundred) and *shrinks* relative to the data as n
// grows, which is exactly why preprocessing wins on big data.

#include <cstdio>
#include <string>
#include <vector>

#include "engine/builtins.h"
#include "engine/engine.h"

int main(int argc, char** argv) {
  std::printf(
      "X2 | Amortization of the one-time preprocessing cost (Section 1).\n"
      "     q* = preprocessing work / per-query work saved.\n\n");
  // One JSON line per (case, n), appended in the BENCH_*.json trajectory
  // convention bench_f2_landscape established.
  const char* json_path = argc > 1 ? argv[1] : "BENCH_x2_amortization.json";
  std::FILE* json = std::fopen(json_path, "a");
  if (json == nullptr) {
    std::fprintf(stderr, "warning: cannot open %s for append; JSON lines "
                 "skipped\n", json_path);
  }
  size_t json_lines = 0;
  const std::vector<int64_t> sizes = {1 << 10, 1 << 13, 1 << 16};
  std::printf("%-26s %10s %14s %14s %14s %10s\n", "query class", "n",
              "preprocess", "baseline/q", "prepared/q", "q*");
  std::printf(
      "--------------------------------------------------------------------"
      "--------------------\n");
  auto& engine = pitract::engine::DefaultEngine();
  for (const std::string& name : engine.Names()) {
    auto case_or = engine.MakeCase(name);
    if (!case_or.ok()) continue;  // Σ*-only entry: no deployed form to sweep
    auto& query_class = *case_or;
    for (int64_t n : sizes) {
      if (query_class->name() == "graph-reachability" && n > (1 << 13)) {
        continue;  // closure matrix memory at 2^16 nodes exceeds the demo box
      }
      if ((query_class->name() == "compressed-reachability" ||
           query_class->name() == "cvp-refactorized") &&
          n > (1 << 13)) {
        continue;
      }
      if (!query_class->Generate(n, /*seed=*/1).ok()) continue;
      pitract::CostMeter pre;
      if (!query_class->Preprocess(&pre).ok()) continue;
      double baseline_total = 0;
      double prepared_total = 0;
      const int queries = query_class->num_queries();
      bool ok = true;
      for (int qi = 0; qi < queries && ok; ++qi) {
        pitract::CostMeter base_m, prep_m;
        ok = query_class->AnswerBaseline(qi, &base_m).ok() &&
             query_class->AnswerPrepared(qi, &prep_m).ok();
        baseline_total += static_cast<double>(base_m.work());
        prepared_total += static_cast<double>(prep_m.work());
      }
      if (!ok || queries == 0) continue;
      const double baseline_per_query = baseline_total / queries;
      const double prepared_per_query = prepared_total / queries;
      const double saved = baseline_per_query - prepared_per_query;
      const long long breakeven =
          saved > 0 ? static_cast<long long>(
                          static_cast<double>(pre.work()) / saved + 1)
                    : -1;
      std::printf("%-26s %10lld %14lld %14.0f %14.1f %10s\n",
                  query_class->name().c_str(),
                  static_cast<long long>(n),
                  static_cast<long long>(pre.work()), baseline_per_query,
                  prepared_per_query,
                  breakeven >= 0 ? std::to_string(breakeven).c_str() : "n/a");
      if (json != nullptr) {
        std::fprintf(json,
                     "{\"bench\":\"x2_amortization\",\"case\":\"%s\","
                     "\"n\":%lld,\"preprocess_work\":%lld,"
                     "\"baseline_per_query\":%.3f,\"prepared_per_query\":%.3f,"
                     "\"breakeven_queries\":%lld}\n",
                     query_class->name().c_str(), static_cast<long long>(n),
                     static_cast<long long>(pre.work()), baseline_per_query,
                     prepared_per_query, breakeven);
        ++json_lines;
      }
    }
  }
  if (json != nullptr) {
    std::fclose(json);
    std::printf("\n(appended %zu JSON lines to %s)\n", json_lines, json_path);
  }
  std::printf(
      "\nReading: once a workload issues more than q* queries against the\n"
      "same data, preprocessing is strictly cheaper — and q* grows far\n"
      "slower than n, so on big data the one-time cost vanishes.\n");
  return 0;
}
