// F2 — Figure 2: the class landscape NC ⊆ ΠT⁰Q ⊆ P (= ΠTP = ΠTQ).
//
// The paper's figure relates ΠT⁰Q, ΠTP and ΠTQ. This harness regenerates
// it *empirically*: every typed query class in the engine registry is swept
// over doubling data sizes, its preprocessing work is fitted to a
// polynomial degree and its per-query depth curve classified as polylog or
// not. Classes land in ΠT⁰Q exactly when PTIME preprocessing yields polylog
// answering — and the printed verdicts reproduce the figure's containments:
//  * every case's *baseline* (no preprocessing) is PTIME — all rows live in P;
//  * the preprocessed answerers are polylog — those factorizations are in ΠT⁰Q;
//  * cvp-refactorized demonstrates ΠTQ: P-complete CVP enters via
//    re-factorization (Corollary 6), while its Υ0 baseline column stays
//    polynomial (Theorem 9's separation).
//
// Besides the table, one JSON line per (case, n) is appended to
// BENCH_f2_landscape.json (or argv[1]) so trajectories accumulate across
// runs.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/classifier.h"
#include "engine/builtins.h"
#include "engine/engine.h"

namespace {

void EmitJsonLine(std::FILE* out, const pitract::core::Classification& row,
                  const pitract::core::SweepPoint& point,
                  long long classify_wall_ns) {
  std::fprintf(out,
               "{\"bench\":\"f2_landscape\",\"case\":\"%s\","
               "\"anchor\":\"%s\",\"n\":%lld,\"preprocess_work\":%lld,"
               "\"prepared_depth\":%.3f,\"baseline_depth\":%.3f,"
               "\"preprocess_degree\":%.3f,\"prepared_slope\":%.3f,"
               "\"baseline_slope\":%.3f,\"pi_tractable\":%s,"
               "\"classify_wall_ns\":%lld}\n",
               row.name.c_str(), row.paper_anchor.c_str(),
               static_cast<long long>(point.n),
               static_cast<long long>(point.preprocess_work),
               point.prepared_depth, point.baseline_depth,
               row.preprocess_degree, row.prepared_slope, row.baseline_slope,
               row.pi_tractable ? "true" : "false", classify_wall_ns);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "F2 | Figure 2 landscape, regenerated empirically through the engine "
      "registry.\n"
      "     pre-deg:   log-log slope of preprocessing work vs n (PTIME degree)\n"
      "     ans-slope: log-log slope of per-query depth after preprocessing\n"
      "                (polylog curves flatten below %.2f)\n"
      "     base-slope: the same for the no-preprocessing baseline\n\n",
      pitract::core::kPolylogSlopeThreshold);

  const std::vector<int64_t> sizes = {1 << 8, 1 << 9, 1 << 10, 1 << 11,
                                      1 << 12};
  auto& engine = pitract::engine::DefaultEngine();
  std::vector<pitract::core::Classification> rows;
  std::vector<long long> row_wall_ns;  // steady_clock ns per Classify sweep
  for (const std::string& name : engine.Names()) {
    auto entry = engine.Find(name);
    if (!entry.ok() || !(*entry)->make_case) continue;  // Σ*-only entries
    auto query_class = engine.MakeCase(name);
    if (!query_class.ok()) {
      std::fprintf(stderr, "case construction for %s failed: %s\n",
                   name.c_str(), query_class.status().ToString().c_str());
      return 1;
    }
    pitract_bench::WallTimer timer;
    auto result =
        pitract::core::Classify(query_class->get(), sizes, /*seed=*/1);
    const long long wall_ns = timer.ElapsedNs();
    if (!result.ok()) {
      std::fprintf(stderr, "classification of %s failed: %s\n", name.c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    rows.push_back(*result);
    row_wall_ns.push_back(wall_ns);
  }
  std::printf("%s\n", pitract::core::LandscapeReport(rows).c_str());

  // One JSON line per (case, n): append so BENCH_*.json trajectories
  // accumulate across runs.
  const char* json_path = argc > 1 ? argv[1] : "BENCH_f2_landscape.json";
  std::FILE* json = std::fopen(json_path, "a");
  if (json == nullptr) {
    std::fprintf(stderr, "warning: cannot open %s for append; JSON lines go "
                 "to stdout only\n", json_path);
  }
  size_t lines = 0;
  for (size_t ri = 0; ri < rows.size(); ++ri) {
    const auto& row = rows[ri];
    for (const auto& point : row.points) {
      EmitJsonLine(stdout, row, point, row_wall_ns[ri]);
      if (json != nullptr) EmitJsonLine(json, row, point, row_wall_ns[ri]);
      ++lines;
    }
  }
  if (json != nullptr) {
    std::fclose(json);
    std::printf("\n(appended %zu JSON lines to %s)\n", lines, json_path);
  }

  // The Figure 2 containment, checked.
  int in_pit0q = 0;
  for (const auto& row : rows) {
    if (row.pi_tractable) ++in_pit0q;
  }
  std::printf("%d/%zu registered classes are Pi-tractable under their\n"
              "factorization; every baseline column is PTIME (all rows in P),\n"
              "matching NC <= PiT0Q <= P = PiTP = PiTQ.\n",
              in_pit0q, rows.size());
  return 0;
}
