// F2 — Figure 2: the class landscape NC ⊆ ΠT⁰Q ⊆ P (= ΠTP = ΠTQ).
//
// The paper's figure relates ΠT⁰Q, ΠTP and ΠTQ. This harness regenerates
// it *empirically*: every registered query class is swept over doubling
// data sizes, its preprocessing work is fitted to a polynomial degree and
// its per-query depth curve classified as polylog or not. Classes land in
// ΠT⁰Q exactly when PTIME preprocessing yields polylog answering — and the
// printed verdicts reproduce the figure's containments:
//  * every case's *baseline* (no preprocessing) is PTIME — all rows live in P;
//  * the preprocessed answerers are polylog — those factorizations are in ΠT⁰Q;
//  * cvp-refactorized demonstrates ΠTQ: P-complete CVP enters via
//    re-factorization (Corollary 6), while its Υ0 baseline column stays
//    polynomial (Theorem 9's separation).

#include <cstdio>

#include "core/classifier.h"
#include "core/query_class.h"

int main() {
  std::printf(
      "F2 | Figure 2 landscape, regenerated empirically.\n"
      "     pre-deg:   log-log slope of preprocessing work vs n (PTIME degree)\n"
      "     ans-slope: log-log slope of per-query depth after preprocessing\n"
      "                (polylog curves flatten below %.2f)\n"
      "     base-slope: the same for the no-preprocessing baseline\n\n",
      pitract::core::kPolylogSlopeThreshold);

  const std::vector<int64_t> sizes = {1 << 8, 1 << 9, 1 << 10, 1 << 11,
                                      1 << 12};
  auto cases = pitract::core::MakeAllCases();
  std::vector<pitract::core::Classification> rows;
  for (auto& query_class : cases) {
    auto result = pitract::core::Classify(query_class.get(), sizes, /*seed=*/1);
    if (!result.ok()) {
      std::fprintf(stderr, "classification of %s failed: %s\n",
                   query_class->name().c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    rows.push_back(*result);
  }
  std::printf("%s\n", pitract::core::LandscapeReport(rows).c_str());

  // The Figure 2 containment, checked.
  int in_pit0q = 0;
  for (const auto& row : rows) {
    if (row.pi_tractable) ++in_pit0q;
  }
  std::printf("%d/%zu registered classes are Pi-tractable under their\n"
              "factorization; every baseline column is PTIME (all rows in P),\n"
              "matching NC <= PiT0Q <= P = PiTP = PiTQ.\n",
              in_pit0q, rows.size());
  return 0;
}
