// X3b — the serving layer under concurrent traffic.
//
// Two measurements, both driven through engine::ServeParallel:
//
//  1. Cold-store scaling ("x3_concurrency" rows): a workload of query
//     batches over K distinct data parts at increasing thread counts,
//     starting from a cold store each time — the full serving profile,
//     miss storm (and its in-flight dedup) included. pi_runs must stay
//     pinned at K no matter how many threads collide.
//
//  2. Warm-hit contention ("x3_contention" rows): the store is warmed
//     first, then N threads hammer pre-admitted DataHandles — either one
//     hot handle ("hot") or a zipf mix over all K ("zipf"). Since PR 5 a
//     warm hit takes zero locks and touches zero shared mutable cache
//     lines (RCU snapshot probe + relaxed recency stamp + per-thread
//     stats), so warm queries/sec should grow with threads on multi-core
//     hardware; locked_hits is printed and must stay 0.
//
// One JSON line per (mode, threads[, distribution]) is appended to
// BENCH_x3_concurrency.json (or argv[1]); every row records
// hardware_concurrency so single-core container runs are distinguishable
// from real multi-core runs.
//
// Usage: bench_x3_concurrency [json_path] [tiny] [thread counts...]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/problems.h"
#include "engine/builtins.h"
#include "engine/engine.h"
#include "engine/serve.h"

namespace {

using pitract::Rng;
namespace core = pitract::core;
namespace engine = pitract::engine;

struct Config {
  int data_parts = 16;
  int list_length = 2048;
  int queries_per_batch = 64;
  int repeat = 32;            // cold-store passes per measurement
  int contention_items = 256; // work items per warm-contention workload
  int contention_repeat = 64; // passes over that workload
  std::vector<int> thread_counts = {1, 2, 4, 8, 16};
};

std::string MakeMemberData(Rng* rng, int list_length) {
  std::vector<int64_t> list;
  for (int i = 0; i < list_length; ++i) {
    list.push_back(static_cast<int64_t>(rng->NextBelow(2 * list_length)));
  }
  return core::MemberFactorization()
      .pi1(core::MakeMemberInstance(2 * list_length, list, 0))
      .value();
}

std::vector<std::string> MakeQueries(Rng* rng, int count, int universe) {
  std::vector<std::string> queries;
  for (int i = 0; i < count; ++i) {
    queries.push_back(
        std::to_string(rng->NextBelow(static_cast<uint64_t>(universe))));
  }
  return queries;
}

std::vector<engine::ServeWorkItem> MakeColdWorkload(const Config& config) {
  Rng rng(42);
  std::vector<engine::ServeWorkItem> workload;
  for (int part = 0; part < config.data_parts; ++part) {
    engine::ServeWorkItem item;
    item.problem = "list-membership";
    item.data = MakeMemberData(&rng, config.list_length);
    item.queries =
        MakeQueries(&rng, config.queries_per_batch, 2 * config.list_length);
    workload.push_back(std::move(item));
  }
  return workload;
}

int RunColdScaling(const Config& config, std::FILE* json, unsigned hw,
                   size_t* json_lines) {
  std::printf(
      "[cold] queries/sec vs threads over %d data parts x %d queries/batch\n"
      "       (x%d passes, fresh engine per row). pi_runs must stay %d:\n"
      "       the store dedups in-flight Π.\n\n",
      config.data_parts, config.queries_per_batch, config.repeat,
      config.data_parts);
  std::printf("%8s %12s %12s %10s %12s %12s\n", "threads", "batches",
              "queries", "pi_runs", "seconds", "queries/s");
  std::printf(
      "----------------------------------------------------------------------"
      "\n");

  const auto workload = MakeColdWorkload(config);
  for (int threads : config.thread_counts) {
    // Fresh engine per thread count: every measurement starts from a cold
    // store, so it includes the miss storm (and its dedup) plus the warm
    // steady state — the full serving profile.
    engine::QueryEngine eng{engine::PreparedStore::Options{}};
    auto status = engine::RegisterBuiltins(&eng);
    if (!status.ok()) {
      std::fprintf(stderr, "RegisterBuiltins failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    engine::ServeOptions options;
    options.threads = threads;
    options.repeat = config.repeat;
    auto report = engine::ServeParallel(&eng, workload, options);
    if (report.errors != 0) {
      std::fprintf(stderr, "serving errors: %lld (first: %s)\n",
                   static_cast<long long>(report.errors),
                   report.first_error.ToString().c_str());
      return 1;
    }
    if (report.pi_runs != config.data_parts) {
      std::fprintf(stderr,
                   "FAIL: pi_runs=%lld, want %d (in-flight dedup broken?)\n",
                   static_cast<long long>(report.pi_runs), config.data_parts);
      return 1;
    }
    std::printf("%8d %12lld %12lld %10lld %12.4f %12.0f\n", threads,
                static_cast<long long>(report.batches),
                static_cast<long long>(report.queries),
                static_cast<long long>(report.pi_runs), report.wall_seconds,
                report.queries_per_second);
    if (json != nullptr) {
      std::fprintf(json,
                   "{\"bench\":\"x3_concurrency\",\"threads\":%d,"
                   "\"data_parts\":%d,\"batches\":%lld,\"queries\":%lld,"
                   "\"pi_runs\":%lld,\"cache_hits\":%lld,\"seconds\":%.6f,"
                   "\"wall_ns\":%.0f,\"ns_per_query\":%.1f,"
                   "\"queries_per_second\":%.1f,"
                   "\"hardware_concurrency\":%u}\n",
                   threads, config.data_parts,
                   static_cast<long long>(report.batches),
                   static_cast<long long>(report.queries),
                   static_cast<long long>(report.pi_runs),
                   static_cast<long long>(report.cache_hits),
                   report.wall_seconds, report.wall_seconds * 1e9,
                   report.queries > 0
                       ? report.wall_seconds * 1e9 /
                             static_cast<double>(report.queries)
                       : 0.0,
                   report.queries_per_second, hw);
      ++(*json_lines);
    }
  }
  return 0;
}

int RunWarmContention(const Config& config, std::FILE* json, unsigned hw,
                      size_t* json_lines) {
  std::printf(
      "\n[warm] hit-path contention: %d work items x%d passes over\n"
      "       pre-admitted handles; \"hot\" hammers one handle, \"zipf\"\n"
      "       a zipf(0.99) mix over %d. locked_hits must stay 0 — the\n"
      "       lock-free-hit proof under maximal line sharing.\n\n",
      config.contention_items, config.contention_repeat, config.data_parts);
  std::printf("%8s %6s %12s %12s %12s %12s\n", "threads", "dist", "queries",
              "seconds", "queries/s", "locked_hits");
  std::printf(
      "----------------------------------------------------------------------"
      "\n");

  // One engine for the whole section: Π runs once per data part during
  // warm-up, then every measured pass is pure warm hits.
  engine::QueryEngine eng{engine::PreparedStore::Options{}};
  auto status = engine::RegisterBuiltins(&eng);
  if (!status.ok()) {
    std::fprintf(stderr, "RegisterBuiltins failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  Rng rng(271828);
  std::vector<std::shared_ptr<const engine::DataHandle>> handles;
  for (int part = 0; part < config.data_parts; ++part) {
    auto handle =
        eng.Intern("list-membership", MakeMemberData(&rng, config.list_length));
    if (!handle.ok()) {
      std::fprintf(stderr, "Intern failed: %s\n",
                   handle.status().ToString().c_str());
      return 1;
    }
    handles.push_back(std::make_shared<const engine::DataHandle>(
        std::move(handle).value()));
  }
  const auto queries =
      MakeQueries(&rng, config.queries_per_batch, 2 * config.list_length);

  for (const char* distribution : {"hot", "zipf"}) {
    std::vector<engine::ServeWorkItem> workload;
    for (int i = 0; i < config.contention_items; ++i) {
      engine::ServeWorkItem item;
      const size_t pick =
          std::strcmp(distribution, "hot") == 0
              ? 0
              : static_cast<size_t>(
                    rng.NextZipf(handles.size(), /*theta=*/0.99));
      item.handle = handles[pick];
      item.queries = queries;
      workload.push_back(std::move(item));
    }
    // Warm every handle this workload touches (and the rest) once, so the
    // measured passes never run Π or take the miss path.
    engine::ServeOptions warmup;
    warmup.threads = 1;
    warmup.repeat = 1;
    std::vector<engine::ServeWorkItem> all;
    for (const auto& handle : handles) {
      engine::ServeWorkItem item;
      item.handle = handle;
      item.queries = queries;
      all.push_back(std::move(item));
    }
    auto warm = engine::ServeParallel(&eng, all, warmup);
    if (warm.errors != 0) {
      std::fprintf(stderr, "warm-up errors: %s\n",
                   warm.first_error.ToString().c_str());
      return 1;
    }

    for (int threads : config.thread_counts) {
      eng.store().ResetStats();
      engine::ServeOptions options;
      options.threads = threads;
      options.repeat = config.contention_repeat;
      auto report = engine::ServeParallel(&eng, workload, options);
      if (report.errors != 0) {
        std::fprintf(stderr, "serving errors: %s\n",
                     report.first_error.ToString().c_str());
        return 1;
      }
      const auto stats = eng.store().stats();
      if (report.pi_runs != 0 || stats.misses != 0) {
        std::fprintf(stderr,
                     "FAIL: warm run recomputed Π (pi_runs=%lld misses=%lld)\n",
                     static_cast<long long>(report.pi_runs),
                     static_cast<long long>(stats.misses));
        return 1;
      }
      if (stats.locked_hits != 0) {
        std::fprintf(stderr,
                     "FAIL: locked_hits=%lld, want 0 (warm hits took the "
                     "shard mutex — snapshot probe broken?)\n",
                     static_cast<long long>(stats.locked_hits));
        return 1;
      }
      std::printf("%8d %6s %12lld %12.4f %12.0f %12lld\n", threads,
                  distribution, static_cast<long long>(report.queries),
                  report.wall_seconds, report.queries_per_second,
                  static_cast<long long>(stats.locked_hits));
      if (json != nullptr) {
        std::fprintf(json,
                     "{\"bench\":\"x3_contention\",\"distribution\":\"%s\","
                     "\"threads\":%d,\"data_parts\":%d,\"batches\":%lld,"
                     "\"queries\":%lld,\"locked_hits\":%lld,"
                     "\"key_builds\":%lld,\"seconds\":%.6f,\"wall_ns\":%.0f,"
                     "\"ns_per_query\":%.1f,\"queries_per_second\":%.1f,"
                     "\"hardware_concurrency\":%u}\n",
                     distribution, threads, config.data_parts,
                     static_cast<long long>(report.batches),
                     static_cast<long long>(report.queries),
                     static_cast<long long>(stats.locked_hits),
                     static_cast<long long>(stats.key_builds),
                     report.wall_seconds, report.wall_seconds * 1e9,
                     report.queries > 0
                         ? report.wall_seconds * 1e9 /
                               static_cast<double>(report.queries)
                         : 0.0,
                     report.queries_per_second, hw);
        ++(*json_lines);
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  const char* json_path = "BENCH_x3_concurrency.json";
  std::vector<int> requested_threads;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "tiny") == 0) {
      // CI smoke: small enough for a single runner, same code paths.
      config.data_parts = 4;
      config.list_length = 256;
      config.queries_per_batch = 16;
      config.repeat = 4;
      config.contention_items = 32;
      config.contention_repeat = 8;
      config.thread_counts = {1, 2};
    } else if (argv[i][0] >= '0' && argv[i][0] <= '9') {
      requested_threads.push_back(std::atoi(argv[i]));
    } else {
      json_path = argv[i];
    }
  }
  if (!requested_threads.empty()) config.thread_counts = requested_threads;

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf(
      "X3b | The engine as a concurrent serving layer.\n"
      "hardware_concurrency: %u\n\n", hw);

  std::FILE* json = std::fopen(json_path, "a");
  if (json == nullptr) {
    std::fprintf(stderr, "warning: cannot open %s for append; JSON lines "
                 "skipped\n", json_path);
  }

  size_t json_lines = 0;
  int rc = RunColdScaling(config, json, hw, &json_lines);
  if (rc == 0) rc = RunWarmContention(config, json, hw, &json_lines);
  if (json != nullptr) {
    std::fclose(json);
    if (rc == 0) {
      std::printf("\n(appended %zu JSON lines to %s)\n", json_lines,
                  json_path);
    }
  }
  if (rc != 0) return rc;
  std::printf(
      "\nReading: Π executed exactly once per data part at every thread\n"
      "count, and warm hits never took a lock. Past the miss storm the\n"
      "stream is pure NC answering over published snapshots, so\n"
      "throughput scales with threads until the hardware runs out.\n");
  return 0;
}
