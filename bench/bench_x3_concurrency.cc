// X3b — the serving layer under concurrent traffic.
//
// Two measurements, both driven through engine::ServeParallel:
//
//  1. Cold-store scaling ("x3_concurrency" rows): a workload of query
//     batches over K distinct data parts at increasing thread counts,
//     starting from a cold store each time — the full serving profile,
//     miss storm (and its in-flight dedup) included. pi_runs must stay
//     pinned at K no matter how many threads collide.
//
//  2. Warm-hit contention ("x3_contention" rows): the store is warmed
//     first, then N threads hammer pre-admitted DataHandles — either one
//     hot handle ("hot") or a zipf mix over all K ("zipf"). Since PR 5 a
//     warm hit takes zero locks and touches zero shared mutable cache
//     lines (RCU snapshot probe + relaxed recency stamp + per-thread
//     stats), so warm queries/sec should grow with threads on multi-core
//     hardware; locked_hits is printed and must stay 0.
//
//  3. Open-loop tail latency ("x3_openloop" rows, `openloop` argument):
//     a single submitter thread feeds ServePipeline::Submit with Poisson
//     arrivals at a configured rate — arrivals do NOT wait for
//     completions, so queueing delay is measured instead of hidden (the
//     coordinated-omission trap of closed-loop drivers). Three traffic
//     shapes: "warm" (pure pre-admitted handles, zipf-mixed), "cold_storm"
//     (same, plus a mid-run burst of never-seen data parts, each a full Π
//     on arrival), and "mixed" (a fresh cold part every ~32 arrivals).
//     Rows report p50/p99/p999 completion latency overall and for the
//     warm subset — the pipeline's no-head-of-line-blocking claim is the
//     warm p99 under cold_storm staying near the warm-only p99 at the
//     same rate (target: within 2x; printed in the readout).
//
//  4. Fault-rate degradation ("x3_faults" rows, `faults` argument): the
//     mixed open-loop traffic re-run with the "store.pi_build" failpoint
//     armed at preparer failure rate f in {0, 0.01, 0.1} — each cold Π
//     build fails with probability f and rides the pipeline's
//     retry/quarantine policy. Rows record warm p99 plus the
//     errors/shed/quarantined/pi_failures/pi_retries counters, so the
//     degradation curve (how much tail latency and goodput a flaky Π
//     costs) lands in the JSON artifact.
//
// One JSON line per (mode, threads[, distribution]) is appended to
// BENCH_x3_concurrency.json (or argv[1]); every row records
// hardware_concurrency so single-core container runs are distinguishable
// from real multi-core runs.
//
// Usage: bench_x3_concurrency [json_path] [tiny] [openloop|faults] [numbers...]
//        (numbers are thread counts, or arrival rates with `openloop`/`faults`)

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/rng.h"
#include "core/problems.h"
#include "engine/builtins.h"
#include "engine/engine.h"
#include "engine/pipeline.h"
#include "engine/serve.h"

namespace {

using pitract::Rng;
namespace core = pitract::core;
namespace engine = pitract::engine;

struct Config {
  int data_parts = 16;
  int list_length = 2048;
  int queries_per_batch = 64;
  int repeat = 32;            // cold-store passes per measurement
  int contention_items = 256; // work items per warm-contention workload
  int contention_repeat = 64; // passes over that workload
  std::vector<int> thread_counts = {1, 2, 4, 8, 16};
  // Open-loop section (the `openloop` argument).
  std::vector<int> openloop_rates = {2000, 8000};  // arrivals/second
  int openloop_arrivals = 4000;  // arrivals per (traffic, rate) row
  int openloop_cold_parts = 64;  // fresh parts the cold storm injects
  int openloop_threads = 2;      // answer workers (fixed for comparability)
  int openloop_preparers = 2;    // Π preparers
};

std::string MakeMemberData(Rng* rng, int list_length) {
  std::vector<int64_t> list;
  for (int i = 0; i < list_length; ++i) {
    list.push_back(static_cast<int64_t>(rng->NextBelow(2 * list_length)));
  }
  return core::MemberFactorization()
      .pi1(core::MakeMemberInstance(2 * list_length, list, 0))
      .value();
}

std::vector<std::string> MakeQueries(Rng* rng, int count, int universe) {
  std::vector<std::string> queries;
  for (int i = 0; i < count; ++i) {
    queries.push_back(
        std::to_string(rng->NextBelow(static_cast<uint64_t>(universe))));
  }
  return queries;
}

std::vector<engine::ServeWorkItem> MakeColdWorkload(const Config& config) {
  Rng rng(42);
  std::vector<engine::ServeWorkItem> workload;
  for (int part = 0; part < config.data_parts; ++part) {
    engine::ServeWorkItem item;
    item.problem = "list-membership";
    item.data = MakeMemberData(&rng, config.list_length);
    item.queries =
        MakeQueries(&rng, config.queries_per_batch, 2 * config.list_length);
    workload.push_back(std::move(item));
  }
  return workload;
}

int RunColdScaling(const Config& config, std::FILE* json, unsigned hw,
                   size_t* json_lines) {
  std::printf(
      "[cold] queries/sec vs threads over %d data parts x %d queries/batch\n"
      "       (x%d passes, fresh engine per row). pi_runs must stay %d:\n"
      "       the store dedups in-flight Π.\n\n",
      config.data_parts, config.queries_per_batch, config.repeat,
      config.data_parts);
  std::printf("%8s %12s %12s %10s %12s %12s\n", "threads", "batches",
              "queries", "pi_runs", "seconds", "queries/s");
  std::printf(
      "----------------------------------------------------------------------"
      "\n");

  const auto workload = MakeColdWorkload(config);
  for (int threads : config.thread_counts) {
    // Fresh engine per thread count: every measurement starts from a cold
    // store, so it includes the miss storm (and its dedup) plus the warm
    // steady state — the full serving profile.
    engine::QueryEngine eng{engine::PreparedStore::Options{}};
    auto status = engine::RegisterBuiltins(&eng);
    if (!status.ok()) {
      std::fprintf(stderr, "RegisterBuiltins failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    engine::ServeOptions options;
    options.threads = threads;
    options.repeat = config.repeat;
    auto report = engine::ServeParallel(&eng, workload, options);
    if (report.errors != 0) {
      std::fprintf(stderr, "serving errors: %lld (first: %s)\n",
                   static_cast<long long>(report.errors),
                   report.first_error.ToString().c_str());
      return 1;
    }
    if (report.pi_runs != config.data_parts) {
      std::fprintf(stderr,
                   "FAIL: pi_runs=%lld, want %d (in-flight dedup broken?)\n",
                   static_cast<long long>(report.pi_runs), config.data_parts);
      return 1;
    }
    std::printf("%8d %12lld %12lld %10lld %12.4f %12.0f\n", threads,
                static_cast<long long>(report.batches),
                static_cast<long long>(report.queries),
                static_cast<long long>(report.pi_runs), report.wall_seconds,
                report.queries_per_second);
    if (json != nullptr) {
      // Row identity + derived rates stay inline; every counter comes from
      // the one ServeReport::ToJson() blob instead of a hand-picked subset.
      std::fprintf(json,
                   "{\"bench\":\"x3_concurrency\",\"threads\":%d,"
                   "\"data_parts\":%d,\"wall_ns\":%.0f,\"ns_per_query\":%.1f,"
                   "\"hardware_concurrency\":%u,\"report\":%s}\n",
                   threads, config.data_parts, report.wall_seconds * 1e9,
                   report.queries > 0
                       ? report.wall_seconds * 1e9 /
                             static_cast<double>(report.queries)
                       : 0.0,
                   hw, report.ToJson().c_str());
      ++(*json_lines);
    }
  }
  return 0;
}

int RunWarmContention(const Config& config, std::FILE* json, unsigned hw,
                      size_t* json_lines) {
  std::printf(
      "\n[warm] hit-path contention: %d work items x%d passes over\n"
      "       pre-admitted handles; \"hot\" hammers one handle, \"zipf\"\n"
      "       a zipf(0.99) mix over %d. locked_hits must stay 0 — the\n"
      "       lock-free-hit proof under maximal line sharing.\n\n",
      config.contention_items, config.contention_repeat, config.data_parts);
  std::printf("%8s %6s %12s %12s %12s %12s\n", "threads", "dist", "queries",
              "seconds", "queries/s", "locked_hits");
  std::printf(
      "----------------------------------------------------------------------"
      "\n");

  // One engine for the whole section: Π runs once per data part during
  // warm-up, then every measured pass is pure warm hits.
  engine::QueryEngine eng{engine::PreparedStore::Options{}};
  auto status = engine::RegisterBuiltins(&eng);
  if (!status.ok()) {
    std::fprintf(stderr, "RegisterBuiltins failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  Rng rng(271828);
  std::vector<std::shared_ptr<const engine::DataHandle>> handles;
  for (int part = 0; part < config.data_parts; ++part) {
    auto handle =
        eng.Intern("list-membership", MakeMemberData(&rng, config.list_length));
    if (!handle.ok()) {
      std::fprintf(stderr, "Intern failed: %s\n",
                   handle.status().ToString().c_str());
      return 1;
    }
    handles.push_back(std::make_shared<const engine::DataHandle>(
        std::move(handle).value()));
  }
  const auto queries =
      MakeQueries(&rng, config.queries_per_batch, 2 * config.list_length);

  for (const char* distribution : {"hot", "zipf"}) {
    std::vector<engine::ServeWorkItem> workload;
    for (int i = 0; i < config.contention_items; ++i) {
      engine::ServeWorkItem item;
      const size_t pick =
          std::strcmp(distribution, "hot") == 0
              ? 0
              : static_cast<size_t>(
                    rng.NextZipf(handles.size(), /*theta=*/0.99));
      item.handle = handles[pick];
      item.queries = queries;
      workload.push_back(std::move(item));
    }
    // Warm every handle this workload touches (and the rest) once, so the
    // measured passes never run Π or take the miss path.
    engine::ServeOptions warmup;
    warmup.threads = 1;
    warmup.repeat = 1;
    std::vector<engine::ServeWorkItem> all;
    for (const auto& handle : handles) {
      engine::ServeWorkItem item;
      item.handle = handle;
      item.queries = queries;
      all.push_back(std::move(item));
    }
    auto warm = engine::ServeParallel(&eng, all, warmup);
    if (warm.errors != 0) {
      std::fprintf(stderr, "warm-up errors: %s\n",
                   warm.first_error.ToString().c_str());
      return 1;
    }

    for (int threads : config.thread_counts) {
      eng.store().ResetStats();
      engine::ServeOptions options;
      options.threads = threads;
      options.repeat = config.contention_repeat;
      auto report = engine::ServeParallel(&eng, workload, options);
      if (report.errors != 0) {
        std::fprintf(stderr, "serving errors: %s\n",
                     report.first_error.ToString().c_str());
        return 1;
      }
      const auto stats = eng.store().stats();
      if (report.pi_runs != 0 || stats.misses != 0) {
        std::fprintf(stderr,
                     "FAIL: warm run recomputed Π (pi_runs=%lld misses=%lld)\n",
                     static_cast<long long>(report.pi_runs),
                     static_cast<long long>(stats.misses));
        return 1;
      }
      if (stats.locked_hits != 0) {
        std::fprintf(stderr,
                     "FAIL: locked_hits=%lld, want 0 (warm hits took the "
                     "shard mutex — snapshot probe broken?)\n",
                     static_cast<long long>(stats.locked_hits));
        return 1;
      }
      std::printf("%8d %6s %12lld %12.4f %12.0f %12lld\n", threads,
                  distribution, static_cast<long long>(report.queries),
                  report.wall_seconds, report.queries_per_second,
                  static_cast<long long>(stats.locked_hits));
      if (json != nullptr) {
        // Serving-side counters via ServeReport::ToJson(), store-side (the
        // locked_hits/key_builds proof) via Stats::ToJson() — two embedded
        // blobs, no hand-formatted counter subset.
        std::fprintf(json,
                     "{\"bench\":\"x3_contention\",\"distribution\":\"%s\","
                     "\"threads\":%d,\"data_parts\":%d,\"wall_ns\":%.0f,"
                     "\"ns_per_query\":%.1f,\"hardware_concurrency\":%u,"
                     "\"report\":%s,\"store\":%s}\n",
                     distribution, threads, config.data_parts,
                     report.wall_seconds * 1e9,
                     report.queries > 0
                         ? report.wall_seconds * 1e9 /
                               static_cast<double>(report.queries)
                         : 0.0,
                     hw, report.ToJson().c_str(), stats.ToJson().c_str());
        ++(*json_lines);
      }
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Open-loop load generation.
// ---------------------------------------------------------------------------

/// q-th quantile of an ascending-sorted latency vector (nearest-rank on
/// the (n-1)-scaled index), or -1 when empty.
int64_t PercentileSorted(const std::vector<int64_t>& sorted, double q) {
  if (sorted.empty()) return -1;
  const auto idx = static_cast<size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

int RunOpenLoop(const Config& config, std::FILE* json, unsigned hw,
                size_t* json_lines) {
  std::printf(
      "\n[open] open-loop tail latency: Poisson arrivals into\n"
      "       ServePipeline::Submit (%d answer workers, %d preparers),\n"
      "       %d arrivals per row. \"cold_storm\" injects %d never-seen\n"
      "       parts mid-run; the pipeline claim is that the *warm* p99\n"
      "       barely moves while the storm's Π runs ride the preparers.\n\n",
      config.openloop_threads, config.openloop_preparers,
      config.openloop_arrivals, config.openloop_cold_parts);
  std::printf("%11s %8s %9s %10s %10s %10s %10s %6s %8s\n", "traffic",
              "rate/s", "arrivals", "p50_us", "p99_us", "p999_us",
              "warmp99_us", "shed", "pi_runs");
  std::printf(
      "----------------------------------------------------------------------"
      "--------\n");

  // Warm-subset p99 per rate, kept across traffic shapes for the readout.
  std::vector<double> warm_only_p99(config.openloop_rates.size(), -1);
  std::vector<double> storm_warm_p99(config.openloop_rates.size(), -1);

  for (const char* traffic : {"warm", "cold_storm", "mixed"}) {
    for (size_t ri = 0; ri < config.openloop_rates.size(); ++ri) {
      const int rate = config.openloop_rates[ri];
      const int n = config.openloop_arrivals;

      // Fresh engine per row so the storm's parts are genuinely cold.
      engine::QueryEngine eng{engine::PreparedStore::Options{}};
      auto status = engine::RegisterBuiltins(&eng);
      if (!status.ok()) {
        std::fprintf(stderr, "RegisterBuiltins failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      Rng rng(0x0be2 + static_cast<uint64_t>(rate) * 31 +
              static_cast<uint64_t>(traffic[0]));

      // Pre-admit and warm the steady-state parts.
      std::vector<std::shared_ptr<const engine::DataHandle>> handles;
      for (int part = 0; part < config.data_parts; ++part) {
        auto handle = eng.Intern("list-membership",
                                 MakeMemberData(&rng, config.list_length));
        if (!handle.ok()) {
          std::fprintf(stderr, "Intern failed: %s\n",
                       handle.status().ToString().c_str());
          return 1;
        }
        handles.push_back(std::make_shared<const engine::DataHandle>(
            std::move(handle).value()));
      }
      const auto queries =
          MakeQueries(&rng, config.queries_per_batch, 2 * config.list_length);
      for (const auto& handle : handles) {
        auto warm = eng.AnswerBatch(*handle, queries);
        if (!warm.ok()) {
          std::fprintf(stderr, "warm-up failed: %s\n",
                       warm.status().ToString().c_str());
          return 1;
        }
      }

      // Arrival plan: cold_slot[i] >= 0 marks arrival i as a never-seen
      // part (index into cold_parts). Pregenerated so data synthesis never
      // perturbs the arrival process.
      std::vector<int> cold_slot(static_cast<size_t>(n), -1);
      std::vector<std::string> cold_parts;
      if (std::strcmp(traffic, "cold_storm") == 0) {
        const int storm = std::min(config.openloop_cold_parts, n / 4);
        const int start = n / 2 - storm / 2;
        for (int i = 0; i < storm; ++i) {
          cold_slot[static_cast<size_t>(start + i)] =
              static_cast<int>(cold_parts.size());
          cold_parts.push_back(MakeMemberData(&rng, config.list_length));
        }
      } else if (std::strcmp(traffic, "mixed") == 0) {
        for (int i = 0; i < n; ++i) {
          if (rng.NextBelow(32) == 0) {
            cold_slot[static_cast<size_t>(i)] =
                static_cast<int>(cold_parts.size());
            cold_parts.push_back(MakeMemberData(&rng, config.list_length));
          }
        }
      }

      engine::PipelineOptions popts;
      popts.threads = config.openloop_threads;
      popts.preparers = config.openloop_preparers;
      engine::ServePipeline pipeline(&eng, popts);

      // Per-arrival completion slots, disjoint per item; Drain()'s join
      // makes the writes visible before the percentile pass reads them.
      std::vector<int64_t> latency(static_cast<size_t>(n), -1);
      std::vector<uint8_t> answered(static_cast<size_t>(n), 0);

      // Poisson process: exponential gaps at `rate`, absolute sleep
      // targets so scheduler jitter shifts arrivals instead of thinning
      // them. Arrivals never wait for completions — open loop.
      auto next = std::chrono::steady_clock::now();
      for (int i = 0; i < n; ++i) {
        const double u = std::min(rng.NextDouble(), 0.999999999);
        const double gap_seconds = -std::log(1.0 - u) / rate;
        next += std::chrono::nanoseconds(
            static_cast<int64_t>(gap_seconds * 1e9));
        std::this_thread::sleep_until(next);

        engine::ServeWorkItem item;
        const int cold = cold_slot[static_cast<size_t>(i)];
        if (cold >= 0) {
          item.problem = "list-membership";
          item.data = cold_parts[static_cast<size_t>(cold)];
        } else {
          item.handle = handles[static_cast<size_t>(
              rng.NextZipf(handles.size(), /*theta=*/0.99))];
        }
        item.queries = queries;
        int64_t* lat = &latency[static_cast<size_t>(i)];
        uint8_t* okp = &answered[static_cast<size_t>(i)];
        auto admit = pipeline.Submit(
            std::move(item), [lat, okp](const engine::ItemOutcome& outcome) {
              *lat = outcome.latency_ns;
              *okp = outcome.status.ok() ? 1 : 0;
            });
        if (!admit.ok()) {
          std::fprintf(stderr, "Submit refused: %s\n",
                       admit.ToString().c_str());
          return 1;  // no queue_depth configured: admission never sheds
        }
      }
      pipeline.Drain();
      auto report = pipeline.report();
      if (report.errors != 0) {
        std::fprintf(stderr, "open-loop errors: %lld (first: %s)\n",
                     static_cast<long long>(report.errors),
                     report.first_error.ToString().c_str());
        return 1;
      }

      std::vector<int64_t> all;
      std::vector<int64_t> warm;
      all.reserve(static_cast<size_t>(n));
      warm.reserve(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) {
        if (answered[static_cast<size_t>(i)] == 0) continue;
        all.push_back(latency[static_cast<size_t>(i)]);
        if (cold_slot[static_cast<size_t>(i)] < 0) {
          warm.push_back(latency[static_cast<size_t>(i)]);
        }
      }
      std::sort(all.begin(), all.end());
      std::sort(warm.begin(), warm.end());
      const int64_t p50 = PercentileSorted(all, 0.50);
      const int64_t p99 = PercentileSorted(all, 0.99);
      const int64_t p999 = PercentileSorted(all, 0.999);
      const int64_t warm_p50 = PercentileSorted(warm, 0.50);
      const int64_t warm_p99 = PercentileSorted(warm, 0.99);
      const int64_t warm_p999 = PercentileSorted(warm, 0.999);
      if (std::strcmp(traffic, "warm") == 0) {
        warm_only_p99[ri] = static_cast<double>(warm_p99);
      } else if (std::strcmp(traffic, "cold_storm") == 0) {
        storm_warm_p99[ri] = static_cast<double>(warm_p99);
      }

      std::printf("%11s %8d %9d %10.1f %10.1f %10.1f %10.1f %6lld %8lld\n",
                  traffic, rate, n, static_cast<double>(p50) / 1e3,
                  static_cast<double>(p99) / 1e3,
                  static_cast<double>(p999) / 1e3,
                  static_cast<double>(warm_p99) / 1e3,
                  static_cast<long long>(report.shed),
                  static_cast<long long>(report.pi_runs));
      if (json != nullptr) {
        std::fprintf(
            json,
            "{\"bench\":\"x3_openloop\",\"traffic\":\"%s\",\"rate\":%d,"
            "\"arrivals\":%d,\"answered\":%zu,\"queries_per_item\":%d,"
            "\"data_parts\":%d,\"cold_arrivals\":%zu,"
            "\"threads\":%d,\"preparers\":%d,"
            "\"p50_ns\":%lld,\"p99_ns\":%lld,\"p999_ns\":%lld,"
            "\"warm_p50_ns\":%lld,\"warm_p99_ns\":%lld,"
            "\"warm_p999_ns\":%lld,"
            "\"shed\":%lld,\"deadline_expired\":%lld,"
            "\"queue_depth_max\":%lld,\"preparer_busy_ns\":%lld,"
            "\"pi_runs\":%lld,\"hardware_concurrency\":%u}\n",
            traffic, rate, n, all.size(), config.queries_per_batch,
            config.data_parts, cold_parts.size(), report.threads,
            report.preparers, static_cast<long long>(p50),
            static_cast<long long>(p99), static_cast<long long>(p999),
            static_cast<long long>(warm_p50),
            static_cast<long long>(warm_p99),
            static_cast<long long>(warm_p999),
            static_cast<long long>(report.shed),
            static_cast<long long>(report.deadline_expired),
            static_cast<long long>(report.queue_depth_max),
            static_cast<long long>(report.preparer_busy_ns),
            static_cast<long long>(report.pi_runs), hw);
        ++(*json_lines);
      }
    }
  }

  // The acceptance readout: warm p99 under the cold storm vs warm-only
  // p99 at the same arrival rate. Advisory (the CI artifact carries the
  // raw rows) — timing-threshold hard-failures flake on shared runners.
  std::printf("\n[open] warm-p99 storm/baseline ratio (target <= 2x):\n");
  for (size_t ri = 0; ri < config.openloop_rates.size(); ++ri) {
    if (warm_only_p99[ri] <= 0 || storm_warm_p99[ri] <= 0) continue;
    const double ratio = storm_warm_p99[ri] / warm_only_p99[ri];
    std::printf("       rate %6d: %.1fus vs %.1fus -> %.2fx%s\n",
                config.openloop_rates[ri], storm_warm_p99[ri] / 1e3,
                warm_only_p99[ri] / 1e3, ratio,
                ratio <= 2.0 ? "" : "  (WARNING: over 2x target)");
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Fault-rate degradation: mixed open-loop traffic with a flaky Π.
// ---------------------------------------------------------------------------

int RunFaults(const Config& config, std::FILE* json, unsigned hw,
              size_t* json_lines) {
  const double fault_rates[] = {0.0, 0.01, 0.1};
  std::printf(
      "\n[faults] open-loop mixed traffic with \"store.pi_build\" armed at\n"
      "         failure rate f: each cold Π build fails with probability f\n"
      "         and rides the preparer retry (+ quarantine) policy. The\n"
      "         degradation claim: warm p99 holds while failures convert\n"
      "         to fast errors, never to stalls or wrong answers.\n\n");
  std::printf("%8s %8s %9s %10s %10s %7s %7s %9s %8s %8s\n", "f", "rate/s",
              "arrivals", "p99_us", "warmp99_us", "errors", "quar",
              "pi_fails", "retries", "pi_runs");
  std::printf(
      "----------------------------------------------------------------------"
      "--------\n");

  for (double f : fault_rates) {
    for (size_t ri = 0; ri < config.openloop_rates.size(); ++ri) {
      const int rate = config.openloop_rates[ri];
      const int n = config.openloop_arrivals;

      engine::QueryEngine eng{engine::PreparedStore::Options{}};
      auto status = engine::RegisterBuiltins(&eng);
      if (!status.ok()) {
        std::fprintf(stderr, "RegisterBuiltins failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      Rng rng(0xfa17 + static_cast<uint64_t>(rate) * 31 +
              static_cast<uint64_t>(f * 1000));

      std::vector<std::shared_ptr<const engine::DataHandle>> handles;
      for (int part = 0; part < config.data_parts; ++part) {
        auto handle = eng.Intern("list-membership",
                                 MakeMemberData(&rng, config.list_length));
        if (!handle.ok()) {
          std::fprintf(stderr, "Intern failed: %s\n",
                       handle.status().ToString().c_str());
          return 1;
        }
        handles.push_back(std::make_shared<const engine::DataHandle>(
            std::move(handle).value()));
      }
      const auto queries =
          MakeQueries(&rng, config.queries_per_batch, 2 * config.list_length);
      for (const auto& handle : handles) {
        auto warm = eng.AnswerBatch(*handle, queries);
        if (!warm.ok()) {
          std::fprintf(stderr, "warm-up failed: %s\n",
                       warm.status().ToString().c_str());
          return 1;
        }
      }

      // Mixed plan: a fresh cold part every ~32 arrivals keeps Π builds
      // (the faultable edge) flowing through the whole run.
      std::vector<int> cold_slot(static_cast<size_t>(n), -1);
      std::vector<std::string> cold_parts;
      for (int i = 0; i < n; ++i) {
        if (rng.NextBelow(32) == 0) {
          cold_slot[static_cast<size_t>(i)] =
              static_cast<int>(cold_parts.size());
          cold_parts.push_back(MakeMemberData(&rng, config.list_length));
        }
      }

      engine::PipelineOptions popts;
      popts.threads = config.openloop_threads;
      popts.preparers = config.openloop_preparers;
      popts.pi_retry_backoff_ns = 50'000;  // keep rows fast at f = 0.1

      std::vector<int64_t> latency(static_cast<size_t>(n), -1);
      std::vector<uint8_t> answered(static_cast<size_t>(n), 0);
      long long report_errors = 0;
      long long quarantined = 0;
      long long pi_failures = 0;
      long long pi_retries = 0;
      long long pi_runs = 0;
      long long shed = 0;

      {
        // Armed only around the measured run (warm-up already done), and
        // seeded from the row config so a rerun replays the same faults.
        pitract::failpoint::ScopedFailpoints guard;
        if (f > 0.0) {
          pitract::failpoint::Arm(
              "store.pi_build",
              pitract::failpoint::WithProbability(
                  f, 0x5eed + static_cast<uint64_t>(rate) +
                         static_cast<uint64_t>(f * 1000)));
        }
        engine::ServePipeline pipeline(&eng, popts);
        auto next = std::chrono::steady_clock::now();
        for (int i = 0; i < n; ++i) {
          const double u = std::min(rng.NextDouble(), 0.999999999);
          const double gap_seconds = -std::log(1.0 - u) / rate;
          next += std::chrono::nanoseconds(
              static_cast<int64_t>(gap_seconds * 1e9));
          std::this_thread::sleep_until(next);

          engine::ServeWorkItem item;
          const int cold = cold_slot[static_cast<size_t>(i)];
          if (cold >= 0) {
            item.problem = "list-membership";
            item.data = cold_parts[static_cast<size_t>(cold)];
          } else {
            item.handle = handles[static_cast<size_t>(
                rng.NextZipf(handles.size(), /*theta=*/0.99))];
          }
          item.queries = queries;
          int64_t* lat = &latency[static_cast<size_t>(i)];
          uint8_t* okp = &answered[static_cast<size_t>(i)];
          auto admit = pipeline.Submit(
              std::move(item),
              [lat, okp](const engine::ItemOutcome& outcome) {
                *lat = outcome.latency_ns;
                *okp = outcome.status.ok() ? 1 : 0;
              });
          if (!admit.ok()) {
            std::fprintf(stderr, "Submit refused: %s\n",
                         admit.ToString().c_str());
            return 1;
          }
        }
        pipeline.Drain();
        auto report = pipeline.report();
        // Errors are the *measurement* here, not a harness failure: at
        // f > 0 some cold items terminally fail or quarantine by design.
        report_errors = report.errors;
        quarantined = report.quarantined;
        pi_failures = report.pi_failures;
        pi_retries = report.pi_retries;
        pi_runs = report.pi_runs;
        shed = report.shed;
        if (f == 0.0 && report.errors != 0) {
          std::fprintf(stderr, "fault-free row saw errors: %s\n",
                       report.first_error.ToString().c_str());
          return 1;
        }
      }

      std::vector<int64_t> all;
      std::vector<int64_t> warm;
      for (int i = 0; i < n; ++i) {
        if (answered[static_cast<size_t>(i)] == 0) continue;
        all.push_back(latency[static_cast<size_t>(i)]);
        if (cold_slot[static_cast<size_t>(i)] < 0) {
          warm.push_back(latency[static_cast<size_t>(i)]);
        }
      }
      std::sort(all.begin(), all.end());
      std::sort(warm.begin(), warm.end());
      const int64_t p50 = PercentileSorted(all, 0.50);
      const int64_t p99 = PercentileSorted(all, 0.99);
      const int64_t p999 = PercentileSorted(all, 0.999);
      const int64_t warm_p99 = PercentileSorted(warm, 0.99);

      std::printf(
          "%8.2f %8d %9d %10.1f %10.1f %7lld %7lld %9lld %8lld %8lld\n", f,
          rate, n, static_cast<double>(p99) / 1e3,
          static_cast<double>(warm_p99) / 1e3, report_errors, quarantined,
          pi_failures, pi_retries, pi_runs);
      if (json != nullptr) {
        std::fprintf(
            json,
            "{\"bench\":\"x3_faults\",\"fault_rate\":%.3f,\"rate\":%d,"
            "\"arrivals\":%d,\"answered\":%zu,\"cold_arrivals\":%zu,"
            "\"threads\":%d,\"preparers\":%d,"
            "\"p50_ns\":%lld,\"p99_ns\":%lld,\"p999_ns\":%lld,"
            "\"warm_p99_ns\":%lld,\"errors\":%lld,\"shed\":%lld,"
            "\"quarantined\":%lld,\"pi_failures\":%lld,\"pi_retries\":%lld,"
            "\"pi_runs\":%lld,\"hardware_concurrency\":%u}\n",
            f, rate, n, all.size(), cold_parts.size(),
            config.openloop_threads, config.openloop_preparers,
            static_cast<long long>(p50), static_cast<long long>(p99),
            static_cast<long long>(p999), static_cast<long long>(warm_p99),
            report_errors, shed, quarantined, pi_failures, pi_retries,
            pi_runs, hw);
        ++(*json_lines);
      }
    }
  }
  std::printf(
      "\n[faults] Reading: a flaky Π costs retries (and at f=0.1 a few\n"
      "         terminal failures + quarantined items), but the warm tail\n"
      "         holds — failures degrade to fast errors on the cold\n"
      "         subset, never to head-of-line stalls on warm traffic.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  const char* json_path = "BENCH_x3_concurrency.json";
  bool openloop = false;
  bool faults = false;
  std::vector<int> requested_numbers;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "tiny") == 0) {
      // CI smoke: small enough for a single runner, same code paths.
      config.data_parts = 4;
      config.list_length = 256;
      config.queries_per_batch = 16;
      config.repeat = 4;
      config.contention_items = 32;
      config.contention_repeat = 8;
      config.thread_counts = {1, 2};
      config.openloop_rates = {500, 2000};
      config.openloop_arrivals = 600;
      config.openloop_cold_parts = 16;
    } else if (std::strcmp(argv[i], "openloop") == 0) {
      openloop = true;  // run only the open-loop section
    } else if (std::strcmp(argv[i], "faults") == 0) {
      faults = true;  // run only the fault-degradation section
    } else if (argv[i][0] >= '0' && argv[i][0] <= '9') {
      requested_numbers.push_back(std::atoi(argv[i]));
    } else {
      json_path = argv[i];
    }
  }
  if (!requested_numbers.empty()) {
    // Plain numbers are thread counts for the closed-loop sections, or
    // arrival rates when `openloop` or `faults` is requested.
    (openloop || faults ? config.openloop_rates : config.thread_counts) =
        requested_numbers;
  }

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf(
      "X3b | The engine as a concurrent serving layer.\n"
      "hardware_concurrency: %u\n\n", hw);

  std::FILE* json = std::fopen(json_path, "a");
  if (json == nullptr) {
    std::fprintf(stderr, "warning: cannot open %s for append; JSON lines "
                 "skipped\n", json_path);
  }

  size_t json_lines = 0;
  int rc = 0;
  if (faults) {
    rc = RunFaults(config, json, hw, &json_lines);
  } else if (openloop) {
    rc = RunOpenLoop(config, json, hw, &json_lines);
  } else {
    rc = RunColdScaling(config, json, hw, &json_lines);
    if (rc == 0) rc = RunWarmContention(config, json, hw, &json_lines);
  }
  if (json != nullptr) {
    std::fclose(json);
    if (rc == 0) {
      std::printf("\n(appended %zu JSON lines to %s)\n", json_lines,
                  json_path);
    }
  }
  if (rc != 0) return rc;
  if (faults) return 0;  // RunFaults prints its own reading
  if (openloop) {
    std::printf(
        "\nReading: open-loop latency includes queueing delay, so the tail\n"
        "is what a caller actually waits. The completion pipeline keeps the\n"
        "cold storm's Π runs on the preparer pool: warm items keep flowing\n"
        "through the lock-free snapshot path, so their p99 under the storm\n"
        "should sit within ~2x of the warm-only baseline at the same rate.\n");
    return 0;
  }
  std::printf(
      "\nReading: Π executed exactly once per data part at every thread\n"
      "count, and warm hits never took a lock. Past the miss storm the\n"
      "stream is pure NC answering over published snapshots, so\n"
      "throughput scales with threads until the hardware runs out.\n");
  return 0;
}
