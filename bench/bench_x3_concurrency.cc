// X3b — the serving layer under concurrent traffic.
//
// The paper's contract is "preprocess D once with Π, then answer a heavy
// stream of queries fast". This harness measures that stream: a workload of
// query batches over K distinct data parts is driven through
// engine::ServeParallel at increasing thread counts, against the sharded,
// in-flight-deduplicating PreparedStore. Expected shape: queries/sec grows
// with threads (up to the hardware), while pi_runs stays pinned at K — Π
// executes once per distinct data part no matter how many threads collide
// on a cold store.
//
// One JSON line per thread count is appended to BENCH_x3_concurrency.json
// (or argv[1]) so throughput trajectories accumulate across runs.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/problems.h"
#include "engine/builtins.h"
#include "engine/engine.h"
#include "engine/serve.h"

namespace {

using pitract::Rng;
namespace core = pitract::core;
namespace engine = pitract::engine;

constexpr int kDataParts = 16;
constexpr int kListLength = 2048;
constexpr int kQueriesPerBatch = 64;
constexpr int kRepeat = 32;  // passes over the workload per measurement

std::vector<engine::ServeWorkItem> MakeWorkload() {
  Rng rng(42);
  std::vector<engine::ServeWorkItem> workload;
  for (int part = 0; part < kDataParts; ++part) {
    engine::ServeWorkItem item;
    item.problem = "list-membership";
    std::vector<int64_t> list;
    for (int i = 0; i < kListLength; ++i) {
      list.push_back(static_cast<int64_t>(rng.NextBelow(2 * kListLength)));
    }
    item.data = core::MemberFactorization()
                    .pi1(core::MakeMemberInstance(2 * kListLength, list, 0))
                    .value();
    for (int i = 0; i < kQueriesPerBatch; ++i) {
      item.queries.push_back(
          std::to_string(rng.NextBelow(2 * kListLength)));
    }
    workload.push_back(std::move(item));
  }
  return workload;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "X3b | The engine as a concurrent serving layer: queries/sec vs\n"
      "      threads over %d data parts x %d queries/batch (x%d passes).\n"
      "      pi_runs must stay %d: the sharded store dedups in-flight Π.\n\n",
      kDataParts, kQueriesPerBatch, kRepeat, kDataParts);

  const char* json_path = argc > 1 ? argv[1] : "BENCH_x3_concurrency.json";
  std::FILE* json = std::fopen(json_path, "a");
  if (json == nullptr) {
    std::fprintf(stderr, "warning: cannot open %s for append; JSON lines "
                 "skipped\n", json_path);
  }

  const auto workload = MakeWorkload();
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware_concurrency: %u\n\n", hw);
  std::printf("%8s %12s %12s %10s %12s %12s\n", "threads", "batches",
              "queries", "pi_runs", "seconds", "queries/s");
  std::printf(
      "----------------------------------------------------------------------"
      "\n");

  size_t json_lines = 0;
  for (int threads : {1, 2, 4, 8, 16}) {
    // Fresh engine per thread count: every measurement starts from a cold
    // store, so it includes the miss storm (and its dedup) plus the warm
    // steady state — the full serving profile.
    engine::PreparedStore::Options store_options;
    store_options.shards = 16;
    engine::QueryEngine eng(store_options);
    auto status = engine::RegisterBuiltins(&eng);
    if (!status.ok()) {
      std::fprintf(stderr, "RegisterBuiltins failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    engine::ServeOptions options;
    options.threads = threads;
    options.repeat = kRepeat;
    auto report = engine::ServeParallel(&eng, workload, options);
    if (report.errors != 0) {
      std::fprintf(stderr, "serving errors: %lld (first: %s)\n",
                   static_cast<long long>(report.errors),
                   report.first_error.ToString().c_str());
      return 1;
    }
    if (report.pi_runs != kDataParts) {
      std::fprintf(stderr,
                   "FAIL: pi_runs=%lld, want %d (in-flight dedup broken?)\n",
                   static_cast<long long>(report.pi_runs), kDataParts);
      return 1;
    }
    std::printf("%8d %12lld %12lld %10lld %12.4f %12.0f\n", threads,
                static_cast<long long>(report.batches),
                static_cast<long long>(report.queries),
                static_cast<long long>(report.pi_runs), report.wall_seconds,
                report.queries_per_second);
    if (json != nullptr) {
      std::fprintf(json,
                   "{\"bench\":\"x3_concurrency\",\"threads\":%d,"
                   "\"data_parts\":%d,\"batches\":%lld,\"queries\":%lld,"
                   "\"pi_runs\":%lld,\"cache_hits\":%lld,\"seconds\":%.6f,"
                   "\"wall_ns\":%.0f,\"ns_per_query\":%.1f,"
                   "\"queries_per_second\":%.1f,"
                   "\"hardware_concurrency\":%u}\n",
                   threads, kDataParts,
                   static_cast<long long>(report.batches),
                   static_cast<long long>(report.queries),
                   static_cast<long long>(report.pi_runs),
                   static_cast<long long>(report.cache_hits),
                   report.wall_seconds, report.wall_seconds * 1e9,
                   report.queries > 0
                       ? report.wall_seconds * 1e9 /
                             static_cast<double>(report.queries)
                       : 0.0,
                   report.queries_per_second, hw);
      ++json_lines;
    }
  }
  if (json != nullptr) {
    std::fclose(json);
    std::printf("\n(appended %zu JSON lines to %s)\n", json_lines, json_path);
  }
  std::printf(
      "\nReading: Π executed exactly once per data part at every thread\n"
      "count; past the miss storm the stream is pure NC answering, so\n"
      "throughput scales with threads until the hardware runs out.\n");
  return 0;
}
