// F1 — Figure 1: two factorizations of L_BDS.
//
// Paper claim (the figure's two branches): Υ_BDS = (π₁ = G, π₂ = (u,v))
// preprocesses G only and answers in logarithmic time — Π-tractable; Υ′
// puts everything in the query part, preprocesses nothing, and answering
// stays PTIME — not Π-tractable. Expected shape: identical instances,
// wildly different per-query costs, equal answers.

#include "bds/bds.h"
#include "bench_util.h"
#include "common/rng.h"
#include "core/problems.h"
#include "graph/generators.h"

namespace {

using pitract::CostMeter;
using pitract::Rng;
namespace graph = pitract::graph;

graph::Graph MakeGraph(int64_t n) {
  Rng rng(42);
  return graph::ErdosRenyi(static_cast<graph::NodeId>(n), 3 * n,
                           /*directed=*/false, &rng);
}

void BM_UpsilonBds_PreprocessGraph(benchmark::State& state) {
  // Figure 1 left branch: Π(G) = visit order; answering = binary searches.
  auto g = MakeGraph(state.range(0));
  auto oracle = pitract::bds::BdsOracle::Build(g, nullptr);
  oracle.set_charge_binary_search(true);
  Rng rng(7);
  CostMeter meter;
  for (auto _ : state) {
    auto u = static_cast<graph::NodeId>(
        rng.NextBelow(static_cast<uint64_t>(g.num_nodes())));
    auto v = static_cast<graph::NodeId>(
        rng.NextBelow(static_cast<uint64_t>(g.num_nodes())));
    benchmark::DoNotOptimize(oracle.VisitedBefore(u, v, &meter));
  }
  state.counters["model_depth_per_query"] =
      static_cast<double>(meter.depth()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_UpsilonBds_PreprocessGraph)
    ->RangeMultiplier(4)
    ->Range(1 << 10, 1 << 16);

void BM_UpsilonPrime_PreprocessNothing(benchmark::State& state) {
  // Figure 1 right branch: the whole instance is query; every query pays
  // the full search.
  auto g = MakeGraph(state.range(0));
  Rng rng(7);
  CostMeter meter;
  for (auto _ : state) {
    auto u = static_cast<graph::NodeId>(
        rng.NextBelow(static_cast<uint64_t>(g.num_nodes())));
    auto v = static_cast<graph::NodeId>(
        rng.NextBelow(static_cast<uint64_t>(g.num_nodes())));
    benchmark::DoNotOptimize(
        pitract::bds::BdsVisitedBeforeOnline(g, u, v, &meter));
  }
  state.counters["model_depth_per_query"] =
      static_cast<double>(meter.depth()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_UpsilonPrime_PreprocessNothing)
    ->RangeMultiplier(4)
    ->Range(1 << 10, 1 << 16);

}  // namespace

PITRACT_BENCH_MAIN(
    "F1 | Figure 1: the same BDS decision language under two factorizations.\n"
    "     Y_BDS (preprocess G): logarithmic-time answering -> Pi-tractable.\n"
    "     Y' (preprocess nothing): PTIME answering -> not Pi-tractable.")
