// E12 — Sections 5–6: the reduction machinery at work.
//
// Paper claim: ≤NC_fa reductions are cheap (NC) transformations; they are
// transitive (Lemma 2) and compatible with ΠTP (Lemma 3), so a problem is
// made Π-tractable by reducing it to BDS and preprocessing there (Theorem
// 5). Measured here: the cost of α/β maps, the composed Member→Conn→BDS
// pipeline, and answering through the transported witness vs. solving the
// source problem from scratch per query.

#include "bench_util.h"
#include "common/rng.h"
#include "core/problems.h"
#include "core/reduction.h"
#include "engine/builtins.h"
#include "engine/engine.h"

namespace {

using pitract::CostMeter;
using pitract::Rng;
namespace core = pitract::core;

std::string MakeInstance(int64_t universe, Rng* rng) {
  std::vector<int64_t> list;
  for (int64_t i = 0; i < universe / 2; ++i) {
    list.push_back(
        static_cast<int64_t>(rng->NextBelow(static_cast<uint64_t>(universe))));
  }
  return core::MakeMemberInstance(
      universe, list,
      static_cast<int64_t>(rng->NextBelow(static_cast<uint64_t>(universe))));
}

void BM_AlphaMap_MemberToConn(benchmark::State& state) {
  Rng rng(42);
  auto r = core::MemberToConnReduction();
  std::string x = MakeInstance(state.range(0), &rng);
  auto data = r.source_factorization.pi1(x);
  if (!data.ok()) {
    state.SkipWithError("pi1 failed");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.alpha(*data));
  }
}
BENCHMARK(BM_AlphaMap_MemberToConn)->RangeMultiplier(4)->Range(1 << 8, 1 << 14);

void BM_ComposedReduction_BothMaps(benchmark::State& state) {
  Rng rng(42);
  auto composed =
      core::Compose(core::MemberToConnReduction(), core::ConnToBdsReduction());
  std::string x = MakeInstance(state.range(0), &rng);
  auto data = composed.source_factorization.pi1(x);
  auto query = composed.source_factorization.pi2(x);
  if (!data.ok() || !query.ok()) {
    state.SkipWithError("factorization failed");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(composed.alpha(*data));
    benchmark::DoNotOptimize(composed.beta(*query));
  }
}
BENCHMARK(BM_ComposedReduction_BothMaps)
    ->RangeMultiplier(4)
    ->Range(1 << 8, 1 << 14);

void BM_TransportedWitness_QueryPath(benchmark::State& state) {
  // After Lemma 3 transport, the per-query path is: β (NC map) + rank
  // probe. The transported witness is *looked up* in the engine registry
  // ("member-via-bds"), not re-plumbed by hand; preprocessing runs once
  // outside the loop.
  Rng rng(42);
  auto entry = pitract::engine::DefaultEngine().Find("member-via-bds");
  if (!entry.ok()) {
    state.SkipWithError("member-via-bds not registered");
    return;
  }
  const auto& factorization = (*entry)->factorization;
  const auto& witness = (*entry)->witness;
  std::string x = MakeInstance(state.range(0), &rng);
  auto data = factorization.pi1(x);
  auto query = factorization.pi2(x);
  if (!data.ok() || !query.ok()) {
    state.SkipWithError("factorization failed");
    return;
  }
  auto prepared = witness.preprocess(*data, nullptr);
  if (!prepared.ok()) {
    state.SkipWithError("preprocess failed");
    return;
  }
  CostMeter meter;
  for (auto _ : state) {
    benchmark::DoNotOptimize(witness.answer(*prepared, *query, &meter));
  }
  state.counters["model_depth_per_query"] =
      static_cast<double>(meter.depth()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_TransportedWitness_QueryPath)
    ->RangeMultiplier(4)
    ->Range(1 << 8, 1 << 14);

void BM_EngineBatch_PreparedStoreAmortization(benchmark::State& state) {
  // The full engine path: every iteration answers a 32-query batch through
  // QueryEngine::AnswerBatch. The first batch pays Π; every later batch
  // hits the PreparedStore, so steady-state time is pure answering — the
  // prepare-once/answer-many contract measured end to end.
  Rng rng(42);
  pitract::engine::QueryEngine engine;
  if (!pitract::engine::RegisterBuiltins(&engine).ok()) {
    state.SkipWithError("RegisterBuiltins failed");
    return;
  }
  // "member-via-conn" keeps the plain Y_member factorization, so one data
  // part serves every batch (the Lemma 2 padded composition would put the
  // query inside the data part and defeat the cache).
  auto entry = engine.Find("member-via-conn");
  if (!entry.ok()) {
    state.SkipWithError("member-via-conn not registered");
    return;
  }
  std::string x = MakeInstance(state.range(0), &rng);
  auto data = (*entry)->factorization.pi1(x);
  if (!data.ok()) {
    state.SkipWithError("pi1 failed");
    return;
  }
  std::vector<std::string> queries;
  for (int i = 0; i < 32; ++i) {
    queries.push_back(std::to_string(
        rng.NextBelow(static_cast<uint64_t>(state.range(0)))));
  }
  int64_t pi_runs = 0;
  for (auto _ : state) {
    auto batch = engine.AnswerBatch("member-via-conn", *data, queries);
    if (!batch.ok()) {
      state.SkipWithError("AnswerBatch failed");
      return;
    }
    pi_runs += batch->prepare_runs;
    benchmark::DoNotOptimize(batch->answers);
  }
  state.counters["pi_runs_total"] = static_cast<double>(pi_runs);
  state.counters["store_hit_rate"] =
      static_cast<double>(state.iterations() - pi_runs) /
      static_cast<double>(state.iterations() ? state.iterations() : 1);
}
BENCHMARK(BM_EngineBatch_PreparedStoreAmortization)
    ->RangeMultiplier(4)
    ->Range(1 << 8, 1 << 14);

void BM_SourceProblem_FromScratchPerQuery(benchmark::State& state) {
  // Baseline: decide membership by scanning the instance every time.
  Rng rng(42);
  auto member = core::ListMembershipProblem();
  std::string x = MakeInstance(state.range(0), &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(member.contains(x));
  }
}
BENCHMARK(BM_SourceProblem_FromScratchPerQuery)
    ->RangeMultiplier(4)
    ->Range(1 << 8, 1 << 14);

}  // namespace

PITRACT_BENCH_MAIN_JSON(
    "e12_reductions",
    "E12 | Sections 5-6: reductions. Expected shape: alpha/beta maps are\n"
    "      near-linear one-shot transforms; the transported witness answers\n"
    "      queries in polylog depth while the from-scratch baseline re-reads\n"
    "      the instance per query.")
