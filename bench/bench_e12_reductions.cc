// E12 — Sections 5–6: the reduction machinery at work.
//
// Paper claim: ≤NC_fa reductions are cheap (NC) transformations; they are
// transitive (Lemma 2) and compatible with ΠTP (Lemma 3), so a problem is
// made Π-tractable by reducing it to BDS and preprocessing there (Theorem
// 5). Measured here: the cost of α/β maps, the composed Member→Conn→BDS
// pipeline, and answering through the transported witness vs. solving the
// source problem from scratch per query.

#include "bench_util.h"
#include "common/rng.h"
#include "core/problems.h"
#include "core/reduction.h"

namespace {

using pitract::CostMeter;
using pitract::Rng;
namespace core = pitract::core;

std::string MakeInstance(int64_t universe, Rng* rng) {
  std::vector<int64_t> list;
  for (int64_t i = 0; i < universe / 2; ++i) {
    list.push_back(
        static_cast<int64_t>(rng->NextBelow(static_cast<uint64_t>(universe))));
  }
  return core::MakeMemberInstance(
      universe, list,
      static_cast<int64_t>(rng->NextBelow(static_cast<uint64_t>(universe))));
}

void BM_AlphaMap_MemberToConn(benchmark::State& state) {
  Rng rng(42);
  auto r = core::MemberToConnReduction();
  std::string x = MakeInstance(state.range(0), &rng);
  auto data = r.source_factorization.pi1(x);
  if (!data.ok()) {
    state.SkipWithError("pi1 failed");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.alpha(*data));
  }
}
BENCHMARK(BM_AlphaMap_MemberToConn)->RangeMultiplier(4)->Range(1 << 8, 1 << 14);

void BM_ComposedReduction_BothMaps(benchmark::State& state) {
  Rng rng(42);
  auto composed =
      core::Compose(core::MemberToConnReduction(), core::ConnToBdsReduction());
  std::string x = MakeInstance(state.range(0), &rng);
  auto data = composed.source_factorization.pi1(x);
  auto query = composed.source_factorization.pi2(x);
  if (!data.ok() || !query.ok()) {
    state.SkipWithError("factorization failed");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(composed.alpha(*data));
    benchmark::DoNotOptimize(composed.beta(*query));
  }
}
BENCHMARK(BM_ComposedReduction_BothMaps)
    ->RangeMultiplier(4)
    ->Range(1 << 8, 1 << 14);

void BM_TransportedWitness_QueryPath(benchmark::State& state) {
  // After Lemma 3 transport, the per-query path is: β (NC map) + rank
  // probe. Preprocessing runs once outside the loop.
  Rng rng(42);
  auto composed =
      core::Compose(core::MemberToConnReduction(), core::ConnToBdsReduction());
  auto witness = core::Transport(composed, core::BdsWitness());
  std::string x = MakeInstance(state.range(0), &rng);
  auto data = composed.source_factorization.pi1(x);
  auto query = composed.source_factorization.pi2(x);
  if (!data.ok() || !query.ok()) {
    state.SkipWithError("factorization failed");
    return;
  }
  auto prepared = witness.preprocess(*data, nullptr);
  if (!prepared.ok()) {
    state.SkipWithError("preprocess failed");
    return;
  }
  CostMeter meter;
  for (auto _ : state) {
    benchmark::DoNotOptimize(witness.answer(*prepared, *query, &meter));
  }
  state.counters["model_depth_per_query"] =
      static_cast<double>(meter.depth()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_TransportedWitness_QueryPath)
    ->RangeMultiplier(4)
    ->Range(1 << 8, 1 << 14);

void BM_SourceProblem_FromScratchPerQuery(benchmark::State& state) {
  // Baseline: decide membership by scanning the instance every time.
  Rng rng(42);
  auto member = core::ListMembershipProblem();
  std::string x = MakeInstance(state.range(0), &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(member.contains(x));
  }
}
BENCHMARK(BM_SourceProblem_FromScratchPerQuery)
    ->RangeMultiplier(4)
    ->Range(1 << 8, 1 << 14);

}  // namespace

PITRACT_BENCH_MAIN(
    "E12 | Sections 5-6: reductions. Expected shape: alpha/beta maps are\n"
    "      near-linear one-shot transforms; the transported witness answers\n"
    "      queries in polylog depth while the from-scratch baseline re-reads\n"
    "      the instance per query.")
