// X6 — cost-model-driven witness selection, end to end.
//
// graph-reachability registers two Π-witnesses for the same language
// (engine/builtins.cc): the incremental transitive closure — expensive
// build, O(1) probes — and the edge-scan twin — near-free build, BFS per
// query. Neither extreme is right for a whole serving mix: the closure
// wastes its build on parts that are barely queried, the scan wastes BFS
// on parts that are hammered. This harness measures the aggregate
// wall-clock ns/query (builds *included* — that is the point) of three
// policies over identical workloads:
//
//   * adaptive  — CostModel::Policy::kAdaptive: per-part selection from
//     the static descriptors blended with measured CostProfiles, with
//     power-of-two traffic triggers re-selecting parts that turn hot;
//   * cheap     — edge-scan forced for every part (ForceWitness(1));
//   * expensive — closure forced for every part (ForceWitness(0)).
//
// Rows cover two data sizes × two traffic shapes. Under zipf(0.99) the
// optimal witness genuinely differs per part — the traffic head amortizes
// a closure build, the tail never does — so the adaptive policy must beat
// *both* extremes outright. Under uniform traffic every part sees the
// same (low) volume, the per-part optimum is one witness everywhere, and
// the best any policy can do is match the better extreme — the adaptive
// row checks it converges there instead of paying for unamortized builds.
// That is this PR's acceptance line, and the `dominates` field in every
// acceptance JSON row makes it diffable. One JSON line per (row, policy)
// plus one acceptance line per row is appended to BENCH_x6_adaptive.json
// (or argv[1]); each policy row embeds the full PreparedStore::Stats
// blob, so witness flips are visible as extra misses and `locked_hits`
// (which must stay 0 — tiers are on by default — and is test-asserted in
// engine_test) is in the artifact. A trailing "tiny" argument shrinks
// every size so CI can smoke the emitters.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/problems.h"
#include "engine/builtins.h"
#include "engine/cost_model.h"
#include "engine/engine.h"
#include "graph/generators.h"

namespace {

using pitract::Rng;
using pitract::engine::CostModel;
using pitract::engine::QueryEngine;
using pitract::engine::RegisterBuiltins;

constexpr char kProblem[] = "graph-reachability";
constexpr int kQueriesPerBatch = 8;

struct Part {
  std::string data;
  int64_t n = 0;  // node count (query endpoints draw from [0, n))
};

/// One pre-generated batch event: every policy replays the identical
/// (part, queries) sequence, so the only difference between runs is the
/// witness each policy builds and answers through.
struct Event {
  int part = 0;
  std::vector<std::string> queries;
};

struct RowConfig {
  const char* scale;
  int64_t n;        // nodes per part (4n directed edges)
  int parts;        // pool size
  int zipf_events;  // batch events for the zipf(0.99) row
  int uniform_events_per_part;  // uniform row: events = parts * this
};

std::vector<Part> MakePool(const RowConfig& cfg, Rng* rng) {
  std::vector<Part> pool;
  pool.reserve(static_cast<size_t>(cfg.parts));
  for (int i = 0; i < cfg.parts; ++i) {
    auto g = pitract::graph::ErdosRenyi(
        static_cast<pitract::graph::NodeId>(cfg.n), 4 * cfg.n,
        /*directed=*/true, rng);
    Part p;
    p.n = cfg.n;
    p.data = pitract::core::ReachFactorization()
                 .pi1(pitract::core::MakeReachInstance(g, 0, 0))
                 .value();
    pool.push_back(std::move(p));
  }
  return pool;
}

std::vector<Event> MakeEvents(const std::vector<Part>& pool, int num_events,
                              bool zipf, Rng* rng) {
  // Shuffle the zipf rank -> part mapping so the traffic head is an
  // arbitrary subset of the pool, exactly as a serving mix would see it.
  std::vector<int64_t> rank_to_part =
      rng->Permutation(static_cast<int64_t>(pool.size()));
  std::vector<Event> events;
  events.reserve(static_cast<size_t>(num_events));
  for (int e = 0; e < num_events; ++e) {
    Event ev;
    ev.part = static_cast<int>(
        zipf ? rank_to_part[rng->NextZipf(pool.size(), /*theta=*/0.99)]
             : rng->NextBelow(pool.size()));
    const auto n = static_cast<uint64_t>(pool[ev.part].n);
    ev.queries.reserve(kQueriesPerBatch);
    for (int q = 0; q < kQueriesPerBatch; ++q) {
      ev.queries.push_back(std::to_string(rng->NextBelow(n)) + "#" +
                           std::to_string(rng->NextBelow(n)));
    }
    events.push_back(std::move(ev));
  }
  return events;
}

struct PolicyResult {
  double wall_ns = 0;
  long long queries = 0;
  std::string store_json;
  long long locked_hits = 0;
  long long pi_runs = 0;
  bool ok = false;
};

PolicyResult RunPolicy(const char* policy, const std::vector<Part>& pool,
                       const std::vector<Event>& events) {
  QueryEngine engine;
  PolicyResult result;
  if (!RegisterBuiltins(&engine).ok()) return result;
  if (std::strcmp(policy, "adaptive") == 0) {
    engine.cost_model().SetPolicy(CostModel::Policy::kAdaptive);
  } else if (std::strcmp(policy, "cheap") == 0) {
    engine.cost_model().ForceWitness(1);  // edge-scan alternative
  } else {
    engine.cost_model().ForceWitness(0);  // closure primary
  }
  pitract_bench::WallTimer timer;
  for (const Event& ev : events) {
    auto answered =
        engine.AnswerBatch(kProblem, pool[ev.part].data, ev.queries);
    if (!answered.ok()) {
      std::fprintf(stderr, "x6 %s: AnswerBatch failed: %s\n", policy,
                   answered.status().ToString().c_str());
      return result;
    }
    result.queries += static_cast<long long>(ev.queries.size());
  }
  result.wall_ns = static_cast<double>(timer.ElapsedNs());
  const auto stats = engine.store().stats();
  result.store_json = stats.ToJson();
  result.locked_hits = static_cast<long long>(stats.locked_hits);
  result.pi_runs = static_cast<long long>(stats.misses);
  result.ok = true;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "X6: adaptive witness selection vs static extremes.\n"
      "graph-reachability pools at two data sizes under zipf(0.99) and\n"
      "uniform batch traffic; aggregate wall ns/query *including builds*.\n"
      "The adaptive cost model must meet or beat both cheap-always\n"
      "(edge-scan) and expensive-always (closure) on every row.\n\n");

  std::string json_path = "BENCH_x6_adaptive.json";
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "tiny") == 0) {
      tiny = true;
    } else if (argv[i][0] != '-') {
      json_path = argv[i];
    }
  }
  std::FILE* json = std::fopen(json_path.c_str(), "a");
  if (json == nullptr) {
    std::fprintf(stderr, "warning: cannot open %s; JSON lines skipped\n",
                 json_path.c_str());
  }

  const std::vector<RowConfig> rows =
      tiny ? std::vector<RowConfig>{{"tiny", 64, 16, 400, 2}}
           : std::vector<RowConfig>{{"small", 64, 96, 2400, 3},
                                    {"large", 256, 96, 4800, 3}};

  int failures = 0;
  int dominated_rows = 0;
  int total_rows = 0;
  std::printf("%-8s %-9s %-10s %12s %10s %8s %8s\n", "scale", "traffic",
              "policy", "ns/query", "queries", "pi_runs", "locked");
  std::printf(
      "----------------------------------------------------------------------"
      "\n");
  for (const RowConfig& cfg : rows) {
    Rng pool_rng(0x60001 + static_cast<uint64_t>(cfg.n));
    const auto pool = MakePool(cfg, &pool_rng);
    for (const bool zipf : {true, false}) {
      const char* traffic = zipf ? "zipf0.99" : "uniform";
      const int num_events =
          zipf ? cfg.zipf_events : cfg.parts * cfg.uniform_events_per_part;
      Rng event_rng(0x60002 + static_cast<uint64_t>(cfg.n) + (zipf ? 1 : 0));
      const auto events = MakeEvents(pool, num_events, zipf, &event_rng);

      double ns_per_query[3] = {0, 0, 0};
      const char* policies[3] = {"adaptive", "cheap", "expensive"};
      bool row_ok = true;
      // Best of five fresh-engine runs per policy, *interleaved* so
      // process warm-up (page cache, allocator arenas) is spread across
      // policies instead of taxing whichever ran first. Each run rebuilds
      // every witness from cold, so the repeat only damps noise.
      PolicyResult best[3];
      for (int rep = 0; rep < 5; ++rep) {
        for (int p = 0; p < 3; ++p) {
          auto result = RunPolicy(policies[p], pool, events);
          if (result.ok &&
              (!best[p].ok || result.wall_ns < best[p].wall_ns)) {
            best[p] = std::move(result);
          }
        }
      }
      for (int p = 0; p < 3; ++p) {
        PolicyResult& result = best[p];
        if (!result.ok || result.queries == 0) {
          ++failures;
          row_ok = false;
          continue;
        }
        ns_per_query[p] =
            result.wall_ns / static_cast<double>(result.queries);
        std::printf("%-8s %-9s %-10s %12.1f %10lld %8lld %8lld\n", cfg.scale,
                    traffic, policies[p], ns_per_query[p], result.queries,
                    result.pi_runs, result.locked_hits);
        if (result.locked_hits != 0) {
          std::fprintf(stderr,
                       "x6 %s/%s/%s: locked_hits = %lld (warm path must stay "
                       "lock-free with tiers enabled)\n",
                       cfg.scale, traffic, policies[p], result.locked_hits);
          ++failures;
        }
        if (json != nullptr) {
          std::fprintf(json,
                       "{\"bench\":\"x6_adaptive\",\"scale\":\"%s\","
                       "\"distribution\":\"%s\",\"policy\":\"%s\","
                       "\"parts\":%d,\"nodes\":%lld,"
                       "\"batches\":%d,\"queries\":%lld,\"wall_ns\":%.0f,"
                       "\"ns_per_query\":%.1f,\"store\":%s}\n",
                       cfg.scale, traffic, policies[p], cfg.parts,
                       static_cast<long long>(cfg.n), num_events,
                       result.queries, result.wall_ns, ns_per_query[p],
                       result.store_json.c_str());
        }
      }
      if (!row_ok) continue;
      // Acceptance: adaptive meets or beats both static extremes. The
      // tolerance absorbs timer noise on rows where adaptive converges to
      // the same witness mix as one extreme (uniform traffic below the
      // reselect floor: both engines do identical work and should measure
      // equal, so any gap is scheduler jitter on the cold builds).
      const double tolerance = 1.05;
      const bool dominates =
          ns_per_query[0] <= ns_per_query[1] * tolerance &&
          ns_per_query[0] <= ns_per_query[2] * tolerance;
      ++total_rows;
      if (dominates) ++dominated_rows;
      std::printf("%-8s %-9s acceptance: adaptive %.1f vs cheap %.1f / "
                  "expensive %.1f -> %s\n",
                  cfg.scale, traffic, ns_per_query[0], ns_per_query[1],
                  ns_per_query[2], dominates ? "DOMINATES" : "DOMINATED");
      if (json != nullptr) {
        std::fprintf(json,
                     "{\"bench\":\"x6_adaptive\",\"row\":\"acceptance\","
                     "\"scale\":\"%s\",\"distribution\":\"%s\","
                     "\"adaptive_ns_per_query\":%.1f,"
                     "\"cheap_ns_per_query\":%.1f,"
                     "\"expensive_ns_per_query\":%.1f,\"dominates\":%s}\n",
                     cfg.scale, traffic, ns_per_query[0], ns_per_query[1],
                     ns_per_query[2], dominates ? "true" : "false");
      }
    }
  }
  if (json != nullptr) std::fclose(json);
  std::printf("\nx6: %d/%d rows dominated, %d failures; JSON -> %s\n",
              dominated_rows, total_rows, failures, json_path.c_str());
  // Timing dominance is reported in the artifact rather than enforced as
  // an exit code (CI smoke runs on noisy shared runners); hard failures —
  // errors, a locked warm hit — do fail the process.
  return failures == 0 ? 0 : 1;
}
