// X4 — incremental maintenance of the serving layer's Π(D) (Section 1's
// "compute ΔD' such that processing D ⊕ ΔD equals D' ⊕ ΔD'").
//
// For each Δ-maintainable builtin this harness prepares Π(D) once through
// the engine, applies delta batches with QueryEngine::ApplyDelta, and
// contrasts the CostMeter-charged patch work against what a full Π
// recompute of the post-delta data part would have cost. Expected shape:
//
//   * list-membership — patch work grows with |ΔD| (· log |D|), recompute
//     work grows with |D| log |D| regardless of how small the delta is;
//   * graph-reachability — per-edge patch work tracks |CHANGED| (the
//     newly reachable pairs, Ramalingam–Reps' bound), recompute work
//     tracks the full closure rebuild.
//
// One JSON line per measurement is appended to BENCH_x4_incremental.json
// (or argv[1]) in the f2_landscape trajectory convention. A trailing
// "tiny" argument shrinks every size so CI can smoke the emitters.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/codec.h"
#include "common/cost_meter.h"
#include "common/rng.h"
#include "core/problems.h"
#include "engine/builtins.h"
#include "engine/delta.h"
#include "engine/engine.h"
#include "graph/generators.h"
#include "incremental/incremental_tc.h"

namespace {

using pitract::CostMeter;
using pitract::Rng;
using pitract::engine::DeltaBatch;
using pitract::engine::DeltaOp;
using pitract::engine::QueryEngine;
using pitract::engine::RegisterBuiltins;

/// Charged Π cost of a cold prepare for (problem, data): what the serving
/// layer would pay if the delta had invalidated the entry instead of
/// patching it. `wall_ns` (optional) receives the steady_clock ns of the
/// cold batch itself (registration excluded).
long long RecomputeWork(const std::string& problem, const std::string& data,
                        const std::string& query,
                        long long* wall_ns = nullptr) {
  QueryEngine engine;
  if (!RegisterBuiltins(&engine).ok()) return -1;
  std::vector<std::string> queries{query};
  pitract_bench::WallTimer timer;
  auto batch = engine.AnswerBatch(problem, data, queries);
  if (wall_ns != nullptr) *wall_ns = timer.ElapsedNs();
  if (!batch.ok()) return -1;
  return static_cast<long long>(batch->prepare_cost.work);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "X4 | Incremental Π(D) maintenance in the serving layer (Section 1).\n"
      "     Patch work is a function of |ΔD| / |CHANGED|; recompute work is\n"
      "     a function of |D|.\n\n");
  const char* json_path = "BENCH_x4_incremental.json";
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "tiny") == 0) {
      tiny = true;
    } else {
      json_path = argv[i];
    }
  }
  std::FILE* json = std::fopen(json_path, "a");
  if (json == nullptr) {
    std::fprintf(stderr,
                 "warning: cannot open %s for append; JSON lines skipped\n",
                 json_path);
  }
  size_t json_lines = 0;
  int failures = 0;

  // --- list-membership: patch vs recompute against |ΔD| -------------------
  const std::vector<int64_t> member_sizes =
      tiny ? std::vector<int64_t>{1 << 7}
           : std::vector<int64_t>{1 << 10, 1 << 13, 1 << 16};
  const std::vector<int> member_deltas =
      tiny ? std::vector<int>{1, 4} : std::vector<int>{1, 8, 64, 512};
  std::printf("%-20s %10s %8s %14s %14s\n", "case", "n", "|ΔD|",
              "patch_work", "recompute");
  std::printf(
      "----------------------------------------------------------------------"
      "\n");
  for (int64_t n : member_sizes) {
    Rng rng(0x9e01 + static_cast<uint64_t>(n));
    const int64_t universe = 4 * n;
    std::vector<int64_t> list;
    list.reserve(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      list.push_back(static_cast<int64_t>(
          rng.NextBelow(static_cast<uint64_t>(universe))));
    }
    std::string data =
        pitract::core::MemberFactorization()
            .pi1(pitract::core::MakeMemberInstance(universe, list, 0))
            .value();
    for (int delta_size : member_deltas) {
      QueryEngine engine;
      if (!RegisterBuiltins(&engine).ok()) return 1;
      std::vector<std::string> queries{"0"};
      auto warm = engine.AnswerBatch("list-membership", data, queries);
      if (!warm.ok()) {
        ++failures;
        continue;
      }
      DeltaBatch delta;
      for (int i = 0; i < delta_size; ++i) {
        DeltaOp op;
        op.kind = DeltaOp::Kind::kListInsert;
        op.a = static_cast<int64_t>(
            rng.NextBelow(static_cast<uint64_t>(universe)));
        delta.ops.push_back(op);
      }
      CostMeter patch_meter;
      pitract_bench::WallTimer patch_timer;
      auto outcome =
          engine.ApplyDelta("list-membership", data, delta, &patch_meter);
      const long long patch_wall_ns = patch_timer.ElapsedNs();
      if (!outcome.ok() || !outcome->patched) {
        ++failures;
        continue;
      }
      const long long patch_work = static_cast<long long>(patch_meter.work());
      long long recompute_wall_ns = -1;
      const long long recompute = RecomputeWork(
          "list-membership", outcome->new_data, "0", &recompute_wall_ns);
      std::printf("%-20s %10lld %8d %14lld %14lld\n", "list-membership",
                  static_cast<long long>(n), delta_size, patch_work,
                  recompute);
      if (json != nullptr) {
        std::fprintf(json,
                     "{\"bench\":\"x4_incremental\",\"case\":\"list-"
                     "membership\",\"n\":%lld,\"delta\":%d,"
                     "\"patch_work\":%lld,\"recompute_work\":%lld,"
                     "\"patch_wall_ns\":%lld,\"recompute_wall_ns\":%lld}\n",
                     static_cast<long long>(n), delta_size, patch_work,
                     recompute, patch_wall_ns, recompute_wall_ns);
        ++json_lines;
      }
    }
  }

  // --- graph-reachability: per-edge patch work vs |CHANGED| ----------------
  const std::vector<int> reach_sizes =
      tiny ? std::vector<int>{32} : std::vector<int>{128, 256, 512};
  const int reach_ops = tiny ? 3 : 12;
  std::printf("\n%-20s %10s %8s %10s %14s %14s\n", "case", "n", "op",
              "|CHANGED|", "patch_work", "recompute");
  std::printf(
      "----------------------------------------------------------------------"
      "----------\n");
  for (int n : reach_sizes) {
    Rng rng(0x9e02 + static_cast<uint64_t>(n));
    auto g = pitract::graph::ErdosRenyi(n, 2 * n, /*directed=*/true, &rng);
    std::string data = pitract::core::ReachFactorization()
                           .pi1(pitract::core::MakeReachInstance(g, 0, 0))
                           .value();
    QueryEngine engine;
    if (!RegisterBuiltins(&engine).ok()) return 1;
    std::vector<std::string> queries{pitract::codec::EncodeFields({"0", "0"})};
    auto warm = engine.AnswerBatch("graph-reachability", data, queries);
    if (!warm.ok()) {
      std::fprintf(stderr, "prepare failed: %s\n",
                   warm.status().ToString().c_str());
      ++failures;
      continue;
    }
    // Shadow closure: reports |CHANGED| for each inserted edge without
    // disturbing the engine-side measurement.
    auto shadow =
        pitract::incremental::IncrementalTransitiveClosure::Build(g, nullptr);
    for (int op_index = 0; op_index < reach_ops; ++op_index) {
      DeltaOp op;
      op.kind = DeltaOp::Kind::kEdgeInsert;
      op.a = static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(n)));
      op.b = static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(n)));
      DeltaBatch delta;
      delta.ops.push_back(op);
      CostMeter patch_meter;
      pitract_bench::WallTimer patch_timer;
      auto outcome =
          engine.ApplyDelta("graph-reachability", data, delta, &patch_meter);
      const long long patch_wall_ns = patch_timer.ElapsedNs();
      if (!outcome.ok() || !outcome->patched) {
        ++failures;
        continue;
      }
      auto changed = shadow.InsertEdge(static_cast<pitract::graph::NodeId>(op.a),
                                       static_cast<pitract::graph::NodeId>(op.b),
                                       nullptr);
      const long long changed_pairs = changed.ok() ? *changed : -1;
      const long long patch_work = static_cast<long long>(patch_meter.work());
      long long recompute_wall_ns = -1;
      const long long recompute =
          RecomputeWork("graph-reachability", outcome->new_data, queries[0],
                        &recompute_wall_ns);
      std::printf("%-20s %10d %8d %10lld %14lld %14lld\n",
                  "graph-reachability", n, op_index, changed_pairs,
                  patch_work, recompute);
      if (json != nullptr) {
        std::fprintf(json,
                     "{\"bench\":\"x4_incremental\",\"case\":\"graph-"
                     "reachability\",\"n\":%d,\"op\":%d,\"changed\":%lld,"
                     "\"patch_work\":%lld,\"recompute_work\":%lld,"
                     "\"patch_wall_ns\":%lld,\"recompute_wall_ns\":%lld}\n",
                     n, op_index, changed_pairs, patch_work, recompute,
                     patch_wall_ns, recompute_wall_ns);
        ++json_lines;
      }
      data = outcome->new_data;  // keep patching the evolving data part
    }
  }

  // --- mixed insert/delete/query streaming ---------------------------------
  // The serving-loop shape after the delta algebra grew deletes: edges
  // arrive and retract while queries keep landing on the evolving Π(D).
  // Each step patches in place (insert or SES-bounded delete), answers a
  // query against the patched entry, and contrasts the charged patch work
  // with a cold recompute of the post-delta part.
  const std::vector<int> stream_sizes =
      tiny ? std::vector<int>{32} : std::vector<int>{128, 256};
  const int stream_steps = tiny ? 6 : 24;
  std::printf("\n%-20s %10s %6s %8s %14s %14s\n", "case", "n", "step", "op",
              "patch_work", "recompute");
  std::printf(
      "----------------------------------------------------------------------"
      "----\n");
  for (int n : stream_sizes) {
    Rng rng(0x9e03 + static_cast<uint64_t>(n));
    auto g = pitract::graph::ErdosRenyi(n, 2 * n, /*directed=*/true, &rng);
    std::vector<std::pair<pitract::graph::NodeId, pitract::graph::NodeId>>
        edges = g.Edges();
    std::string data = pitract::core::ReachFactorization()
                           .pi1(pitract::core::MakeReachInstance(g, 0, 0))
                           .value();
    QueryEngine engine;
    if (!RegisterBuiltins(&engine).ok()) return 1;
    std::vector<std::string> seed{pitract::codec::EncodeFields({"0", "0"})};
    if (!engine.AnswerBatch("graph-reachability", data, seed).ok()) {
      ++failures;
      continue;
    }
    for (int step = 0; step < stream_steps; ++step) {
      DeltaOp op;
      // ~40% retractions; step 1 always retracts so even the tiny CI run
      // exercises the decremental path.
      const bool do_delete =
          !edges.empty() && (step == 1 || rng.NextBelow(10) < 4);
      if (do_delete) {
        const size_t pick = static_cast<size_t>(
            rng.NextBelow(static_cast<uint64_t>(edges.size())));
        op.kind = DeltaOp::Kind::kEdgeDelete;
        op.a = edges[pick].first;
        op.b = edges[pick].second;
        edges.erase(edges.begin() + static_cast<ptrdiff_t>(pick));
      } else {
        op.kind = DeltaOp::Kind::kEdgeInsert;
        op.a = static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(n)));
        op.b = static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(n)));
        const auto arc =
            std::make_pair(static_cast<pitract::graph::NodeId>(op.a),
                           static_cast<pitract::graph::NodeId>(op.b));
        if (std::find(edges.begin(), edges.end(), arc) == edges.end()) {
          edges.push_back(arc);
        }
      }
      DeltaBatch delta;
      delta.ops.push_back(op);
      CostMeter patch_meter;
      pitract_bench::WallTimer patch_timer;
      auto outcome =
          engine.ApplyDelta("graph-reachability", data, delta, &patch_meter);
      const long long patch_wall_ns = patch_timer.ElapsedNs();
      if (!outcome.ok() || !outcome->patched) {
        ++failures;
        continue;
      }
      data = outcome->new_data;
      // A query against the just-patched entry: warm by construction, so
      // its wall time is the pure answer path, never a Π rebuild.
      std::vector<std::string> query{pitract::codec::EncodeFields(
          {std::to_string(rng.NextBelow(static_cast<uint64_t>(n))),
           std::to_string(rng.NextBelow(static_cast<uint64_t>(n)))})};
      pitract_bench::WallTimer query_timer;
      auto answered = engine.AnswerBatch("graph-reachability", data, query);
      const long long query_wall_ns = query_timer.ElapsedNs();
      if (!answered.ok()) {
        ++failures;
        continue;
      }
      const long long patch_work = static_cast<long long>(patch_meter.work());
      long long recompute_wall_ns = -1;
      const long long recompute = RecomputeWork("graph-reachability", data,
                                                query[0], &recompute_wall_ns);
      const char* op_name = do_delete ? "delete" : "insert";
      std::printf("%-20s %10d %6d %8s %14lld %14lld\n", "mixed-stream", n,
                  step, op_name, patch_work, recompute);
      if (json != nullptr) {
        std::fprintf(json,
                     "{\"bench\":\"x4_incremental\",\"case\":\"mixed-"
                     "stream\",\"n\":%d,\"step\":%d,\"op\":\"%s\","
                     "\"patch_work\":%lld,\"recompute_work\":%lld,"
                     "\"patch_wall_ns\":%lld,\"recompute_wall_ns\":%lld,"
                     "\"query_wall_ns\":%lld}\n",
                     n, step, op_name, patch_work, recompute, patch_wall_ns,
                     recompute_wall_ns, query_wall_ns);
        ++json_lines;
      }
    }
  }

  if (json != nullptr) {
    std::fclose(json);
    std::printf("\n(appended %zu JSON lines to %s)\n", json_lines, json_path);
  }
  std::printf(
      "\nReading: patch_work columns move with |ΔD|/|CHANGED| and stay flat\n"
      "in n; recompute columns move with n. That gap is the amortization\n"
      "the serving layer keeps when data changes in place.\n");
  return failures == 0 ? 0 : 1;
}
