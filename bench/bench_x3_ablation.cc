// X3 — ablations for the design choices DESIGN.md calls out.
//
// (a) B+-tree fanout: node geometry trades probe depth against per-node
//     binary-search width; the cost model should show a shallow optimum
//     (wall time) while model depth decreases monotonically with fanout.
// (b) Build path: sorted bulk-load vs. repeated root-to-leaf inserts — the
//     classic reason preprocessing pipelines sort first.
// (c) BDS oracle accounting: the paper's O(log |M|) binary-search bound vs.
//     the O(1) inverted rank array actually stored — the implementation
//     strictly dominates the paper's stated cost.

#include <algorithm>
#include <vector>

#include "bds/bds.h"
#include "bench_util.h"
#include "common/rng.h"
#include "graph/generators.h"
#include "index/bptree.h"

namespace {

using pitract::CostMeter;
using pitract::Rng;

std::vector<std::pair<int64_t, int64_t>> MakeEntries(int64_t n) {
  Rng rng(42);
  std::vector<std::pair<int64_t, int64_t>> entries;
  for (int64_t i = 0; i < n; ++i) {
    entries.emplace_back(
        static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(4 * n))), i);
  }
  return entries;
}

void BM_FanoutSweep_Probe(benchmark::State& state) {
  const int fanout = static_cast<int>(state.range(0));
  const int64_t n = 1 << 18;
  auto entries = MakeEntries(n);
  std::sort(entries.begin(), entries.end());
  pitract::index::BPlusTreeOptions options;
  options.max_leaf_entries = fanout;
  options.max_internal_children = fanout;
  pitract::index::BPlusTree tree(options);
  if (!tree.BulkLoad(entries).ok()) {
    state.SkipWithError("bulk load failed");
    return;
  }
  Rng rng(7);
  CostMeter meter;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.PointExists(
        static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(4 * n))),
        &meter));
  }
  state.counters["model_depth_per_query"] =
      static_cast<double>(meter.depth()) /
      static_cast<double>(state.iterations());
  state.counters["tree_height"] = tree.Stats().height;
}
BENCHMARK(BM_FanoutSweep_Probe)->RangeMultiplier(2)->Range(4, 512);

void BM_Build_BulkLoad(benchmark::State& state) {
  auto entries = MakeEntries(state.range(0));
  std::sort(entries.begin(), entries.end());
  for (auto _ : state) {
    pitract::index::BPlusTree tree;
    benchmark::DoNotOptimize(tree.BulkLoad(entries));
  }
}
BENCHMARK(BM_Build_BulkLoad)->RangeMultiplier(4)->Range(1 << 12, 1 << 18);

void BM_Build_RepeatedInsert(benchmark::State& state) {
  auto entries = MakeEntries(state.range(0));
  for (auto _ : state) {
    pitract::index::BPlusTree tree;
    for (const auto& [key, payload] : entries) {
      tree.Insert(key, payload);
    }
    benchmark::DoNotOptimize(tree.size());
  }
}
BENCHMARK(BM_Build_RepeatedInsert)->RangeMultiplier(4)->Range(1 << 12, 1 << 18);

void BM_BdsOracle_RankArray(benchmark::State& state) {
  Rng rng(42);
  auto g = pitract::graph::ErdosRenyi(
      static_cast<pitract::graph::NodeId>(state.range(0)), 3 * state.range(0),
      false, &rng);
  auto oracle = pitract::bds::BdsOracle::Build(g, nullptr);
  CostMeter meter;
  for (auto _ : state) {
    auto u = static_cast<pitract::graph::NodeId>(
        rng.NextBelow(static_cast<uint64_t>(g.num_nodes())));
    auto v = static_cast<pitract::graph::NodeId>(
        rng.NextBelow(static_cast<uint64_t>(g.num_nodes())));
    benchmark::DoNotOptimize(oracle.VisitedBefore(u, v, &meter));
  }
  state.counters["model_depth_per_query"] =
      static_cast<double>(meter.depth()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_BdsOracle_RankArray)->RangeMultiplier(16)->Range(1 << 10, 1 << 16);

void BM_BdsOracle_BinarySearchAccounting(benchmark::State& state) {
  Rng rng(42);
  auto g = pitract::graph::ErdosRenyi(
      static_cast<pitract::graph::NodeId>(state.range(0)), 3 * state.range(0),
      false, &rng);
  auto oracle = pitract::bds::BdsOracle::Build(g, nullptr);
  oracle.set_charge_binary_search(true);
  CostMeter meter;
  for (auto _ : state) {
    auto u = static_cast<pitract::graph::NodeId>(
        rng.NextBelow(static_cast<uint64_t>(g.num_nodes())));
    auto v = static_cast<pitract::graph::NodeId>(
        rng.NextBelow(static_cast<uint64_t>(g.num_nodes())));
    benchmark::DoNotOptimize(oracle.VisitedBefore(u, v, &meter));
  }
  state.counters["model_depth_per_query"] =
      static_cast<double>(meter.depth()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_BdsOracle_BinarySearchAccounting)
    ->RangeMultiplier(16)
    ->Range(1 << 10, 1 << 16);

}  // namespace

PITRACT_BENCH_MAIN(
    "X3 | Design ablations: B+-tree fanout (depth vs node width),\n"
    "     bulk-load vs repeated insert (why preprocessing sorts first),\n"
    "     and BDS oracle rank-array O(1) vs the paper's O(log|M|) bound.")
