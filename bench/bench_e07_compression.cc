// E07 — Section 4(5): query-preserving compression.
//
// Paper claim: compress D into a smaller Dc that preserves the answers for
// the query class (reachability here, after Fan et al. [16]); queries then
// run on Dc without decompression. Expected shape: node ratio < 1 (far
// smaller on skewed graphs), query cost drops accordingly, answers remain
// exact (the tests assert exactness; this bench reports ratio and speed).

#include "bench_util.h"
#include "common/rng.h"
#include "compress/bisim_compress.h"
#include "compress/reach_compress.h"
#include "graph/algos.h"
#include "graph/generators.h"

namespace {

using pitract::CostMeter;
using pitract::Rng;
namespace graph = pitract::graph;

graph::Graph SkewedDigraph(int64_t n) {
  Rng rng(42);
  graph::Graph undirected =
      graph::PreferentialAttachment(static_cast<graph::NodeId>(n), 2, &rng);
  std::vector<std::pair<graph::NodeId, graph::NodeId>> arcs;
  for (auto [u, v] : undirected.Edges()) {
    arcs.emplace_back(std::min(u, v), std::max(u, v));
  }
  return std::move(
             graph::Graph::FromEdges(static_cast<graph::NodeId>(n), arcs, true))
      .value();
}

/// Crawl-style layered graph: nodes of a layer share a handful of outgoing
/// "link patterns" into the next layer — the duplicated-role structure that
/// makes reachability-equivalence compression effective on real web/social
/// graphs.
graph::Graph LayeredRoleGraph(int64_t n) {
  Rng rng(42);
  const int width = 32;
  const auto layers = static_cast<int>(n / width);
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
  for (int layer = 0; layer + 1 < layers; ++layer) {
    // Four link patterns per layer; each node adopts one.
    std::vector<std::vector<graph::NodeId>> patterns(4);
    for (auto& pattern : patterns) {
      for (int b = 0; b < width; ++b) {
        if (rng.NextBool(0.3)) {
          pattern.push_back(
              static_cast<graph::NodeId>((layer + 1) * width + b));
        }
      }
    }
    for (int a = 0; a < width; ++a) {
      const auto& pattern = patterns[rng.NextBelow(4)];
      for (graph::NodeId target : pattern) {
        edges.emplace_back(static_cast<graph::NodeId>(layer * width + a),
                           target);
      }
    }
  }
  return std::move(graph::Graph::FromEdges(
                       static_cast<graph::NodeId>(layers * width), edges, true))
      .value();
}

void BM_BfsOnOriginal(benchmark::State& state) {
  auto g = SkewedDigraph(state.range(0));
  Rng rng(7);
  CostMeter meter;
  for (auto _ : state) {
    auto u = static_cast<graph::NodeId>(
        rng.NextBelow(static_cast<uint64_t>(g.num_nodes())));
    auto v = static_cast<graph::NodeId>(
        rng.NextBelow(static_cast<uint64_t>(g.num_nodes())));
    benchmark::DoNotOptimize(graph::BfsReachable(g, u, v, &meter));
  }
  state.counters["model_work_per_query"] =
      static_cast<double>(meter.work()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_BfsOnOriginal)->RangeMultiplier(2)->Range(1 << 8, 1 << 11);

void BM_QueryOnCompressed(benchmark::State& state) {
  auto g = SkewedDigraph(state.range(0));
  auto rc = pitract::compress::ReachCompressed::Build(g, nullptr);
  Rng rng(7);
  CostMeter meter;
  for (auto _ : state) {
    auto u = static_cast<graph::NodeId>(
        rng.NextBelow(static_cast<uint64_t>(g.num_nodes())));
    auto v = static_cast<graph::NodeId>(
        rng.NextBelow(static_cast<uint64_t>(g.num_nodes())));
    benchmark::DoNotOptimize(rc.Reachable(u, v, &meter));
  }
  state.counters["model_work_per_query"] =
      static_cast<double>(meter.work()) /
      static_cast<double>(state.iterations());
  state.counters["node_ratio"] = rc.NodeRatio();
  state.counters["compressed_nodes"] =
      static_cast<double>(rc.compressed().num_nodes());
}
BENCHMARK(BM_QueryOnCompressed)->RangeMultiplier(2)->Range(1 << 8, 1 << 11);

void BM_QueryOnCompressed_LayeredRoles(benchmark::State& state) {
  auto g = LayeredRoleGraph(state.range(0));
  auto rc = pitract::compress::ReachCompressed::Build(g, nullptr);
  Rng rng(7);
  CostMeter meter;
  for (auto _ : state) {
    auto u = static_cast<graph::NodeId>(
        rng.NextBelow(static_cast<uint64_t>(g.num_nodes())));
    auto v = static_cast<graph::NodeId>(
        rng.NextBelow(static_cast<uint64_t>(g.num_nodes())));
    benchmark::DoNotOptimize(rc.Reachable(u, v, &meter));
  }
  state.counters["model_work_per_query"] =
      static_cast<double>(meter.work()) /
      static_cast<double>(state.iterations());
  state.counters["node_ratio"] = rc.NodeRatio();
  state.counters["compressed_nodes"] =
      static_cast<double>(rc.compressed().num_nodes());
}
BENCHMARK(BM_QueryOnCompressed_LayeredRoles)
    ->RangeMultiplier(2)
    ->Range(1 << 8, 1 << 11);

void BM_Preprocess_Compress(benchmark::State& state) {
  auto g = SkewedDigraph(state.range(0));
  for (auto _ : state) {
    CostMeter meter;
    auto rc = pitract::compress::ReachCompressed::Build(g, &meter);
    benchmark::DoNotOptimize(rc.NodeRatio());
  }
}
BENCHMARK(BM_Preprocess_Compress)->RangeMultiplier(2)->Range(1 << 8, 1 << 11);

void BM_BisimQuotient(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  Rng rng(42);
  graph::Graph g = graph::ErdosRenyi(n, 2 * n, true, &rng);
  std::vector<int32_t> labels(static_cast<size_t>(n));
  for (auto& l : labels) l = static_cast<int32_t>(rng.NextBelow(3));
  double ratio = 1.0;
  for (auto _ : state) {
    auto bc = pitract::compress::BisimCompressed::Build(g, labels, nullptr);
    if (!bc.ok()) {
      state.SkipWithError("bisim failed");
      return;
    }
    ratio = bc->NodeRatio();
    benchmark::DoNotOptimize(bc->num_blocks());
  }
  state.counters["node_ratio"] = ratio;
}
BENCHMARK(BM_BisimQuotient)->RangeMultiplier(2)->Range(1 << 8, 1 << 11);

}  // namespace

PITRACT_BENCH_MAIN(
    "E07 | Section 4(5): query-preserving compression. Expected shape:\n"
    "      node_ratio < 1 (strongly so on skewed graphs); queries on Dc are\n"
    "      orders of magnitude cheaper than per-query BFS on D, with\n"
    "      identical answers.")
