// X1 — Section 8(5) extension: top-k with early termination.
//
// Paper pointer: "top-k query answering with early termination [14] may be
// made Π-tractable, which finds top-k answers in Q(D) without computing
// the entire Q(D)". After PTIME preprocessing (per-attribute sorted
// lists), Fagin's Threshold Algorithm answers exactly while touching a
// data-skew-dependent prefix. Expected shape: scan work ~ n always; TA
// work sublinear on skewed data, reverting toward linear on adversarial
// (anti-correlated) data — but always exact.

#include "bench_util.h"
#include "common/rng.h"
#include "storage/generator.h"
#include "topk/threshold.h"

namespace {

using pitract::CostMeter;
using pitract::Rng;
namespace topk = pitract::topk;

pitract::storage::Relation MakeScores(int64_t n, double zipf) {
  Rng rng(42);
  pitract::storage::RelationGenOptions options;
  options.num_rows = n;
  options.num_columns = 2;
  options.value_range = 100000;
  options.zipf_theta = zipf;
  return pitract::storage::GenerateIntRelation(options, &rng);
}

void BM_ScanTopK(benchmark::State& state) {
  auto rel = MakeScores(state.range(0), 1.1);
  CostMeter meter;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        topk::ThresholdIndex::TopKByScan(rel, {0, 1}, {2, 3}, 10, &meter));
  }
  state.counters["model_work_per_query"] =
      static_cast<double>(meter.work()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_ScanTopK)->RangeMultiplier(4)->Range(1 << 12, 1 << 18);

void BM_ThresholdAlgorithm_Skewed(benchmark::State& state) {
  auto rel = MakeScores(state.range(0), 1.1);
  auto index = topk::ThresholdIndex::Build(rel, {0, 1}, nullptr);
  if (!index.ok()) {
    state.SkipWithError("build failed");
    return;
  }
  CostMeter meter;
  int64_t depth = 0;
  for (auto _ : state) {
    auto result = index->TopK({2, 3}, 10, &meter);
    if (result.ok()) depth = result->stop_depth;
    benchmark::DoNotOptimize(result);
  }
  state.counters["model_work_per_query"] =
      static_cast<double>(meter.work()) /
      static_cast<double>(state.iterations());
  state.counters["stop_depth"] = static_cast<double>(depth);
}
BENCHMARK(BM_ThresholdAlgorithm_Skewed)
    ->RangeMultiplier(4)
    ->Range(1 << 12, 1 << 18);

void BM_ThresholdAlgorithm_Uniform(benchmark::State& state) {
  auto rel = MakeScores(state.range(0), 0.0);
  auto index = topk::ThresholdIndex::Build(rel, {0, 1}, nullptr);
  if (!index.ok()) {
    state.SkipWithError("build failed");
    return;
  }
  CostMeter meter;
  int64_t depth = 0;
  for (auto _ : state) {
    auto result = index->TopK({2, 3}, 10, &meter);
    if (result.ok()) depth = result->stop_depth;
    benchmark::DoNotOptimize(result);
  }
  state.counters["model_work_per_query"] =
      static_cast<double>(meter.work()) /
      static_cast<double>(state.iterations());
  state.counters["stop_depth"] = static_cast<double>(depth);
}
BENCHMARK(BM_ThresholdAlgorithm_Uniform)
    ->RangeMultiplier(4)
    ->Range(1 << 12, 1 << 18);

void BM_KSweep(benchmark::State& state) {
  auto rel = MakeScores(1 << 16, 1.1);
  auto index = topk::ThresholdIndex::Build(rel, {0, 1}, nullptr);
  if (!index.ok()) {
    state.SkipWithError("build failed");
    return;
  }
  const int k = static_cast<int>(state.range(0));
  CostMeter meter;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index->TopK({1, 1}, k, &meter));
  }
  state.counters["model_work_per_query"] =
      static_cast<double>(meter.work()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_KSweep)->RangeMultiplier(4)->Range(1, 1 << 10);

}  // namespace

PITRACT_BENCH_MAIN(
    "X1 | Section 8(5) extension: top-k with early termination (Fagin's TA,\n"
    "     the paper's [14]). Expected shape: scan ~ n; TA sublinear on\n"
    "     skewed data (stop_depth << n), degrading gracefully on uniform\n"
    "     data; cost grows mildly with k.")
