// E08 — Section 4(6): query answering using views.
//
// Paper claim: materialize V(D) in PTIME; if Q(D) can be computed from
// V(D) alone (usually much smaller than D), querying big D is feasible.
// Expected shape: view probes are flat in |D|; base scans grow linearly;
// |V(D)| << |D| for the aggregate views.

#include "bench_util.h"
#include "common/rng.h"
#include "storage/generator.h"
#include "views/views.h"

namespace {

using pitract::CostMeter;
using pitract::Rng;
namespace views = pitract::views;

pitract::storage::Relation MakeLog(int64_t n) {
  Rng rng(42);
  return pitract::storage::GenerateLogRelation(n, 4, 64, &rng);
}

views::ViewQuery RandomQuery(Rng* rng, int64_t n) {
  views::ViewQuery q;
  if (rng->NextBool()) {
    q.kind = views::ViewQuery::Kind::kCountByKey;
    q.key_column = "code";
    q.key = static_cast<int64_t>(rng->NextBelow(64));
  } else {
    q.kind = views::ViewQuery::Kind::kExistsInRange;
    q.key_column = "code";
    q.range_column = "ts";
    q.key = static_cast<int64_t>(rng->NextBelow(64));
    q.lo = static_cast<int64_t>(rng->NextBelow(static_cast<uint64_t>(3 * n)));
    q.hi = q.lo + 2000;
  }
  return q;
}

void BM_AnswerFromViews(benchmark::State& state) {
  const int64_t n = state.range(0);
  auto log = MakeLog(n);
  views::ViewCatalog catalog;
  if (!catalog.AddCountView(log, "code", nullptr).ok() ||
      !catalog.AddRangeView(log, "code", "ts", nullptr).ok()) {
    state.SkipWithError("materialization failed");
    return;
  }
  Rng rng(7);
  CostMeter meter;
  for (auto _ : state) {
    auto q = RandomQuery(&rng, n);
    benchmark::DoNotOptimize(catalog.Answer(q, &meter));
  }
  state.counters["model_work_per_query"] =
      static_cast<double>(meter.work()) /
      static_cast<double>(state.iterations());
  state.counters["view_bytes"] = static_cast<double>(catalog.EstimateBytes());
  state.counters["base_bytes"] = static_cast<double>(log.EstimateBytes());
}
BENCHMARK(BM_AnswerFromViews)->RangeMultiplier(4)->Range(1 << 14, 1 << 20);

void BM_AnswerByScan(benchmark::State& state) {
  const int64_t n = state.range(0);
  auto log = MakeLog(n);
  Rng rng(7);
  CostMeter meter;
  for (auto _ : state) {
    auto q = RandomQuery(&rng, n);
    benchmark::DoNotOptimize(views::ViewCatalog::AnswerByScan(log, q, &meter));
  }
  state.counters["model_work_per_query"] =
      static_cast<double>(meter.work()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_AnswerByScan)->RangeMultiplier(4)->Range(1 << 14, 1 << 20);

void BM_Preprocess_Materialize(benchmark::State& state) {
  auto log = MakeLog(state.range(0));
  for (auto _ : state) {
    views::ViewCatalog catalog;
    CostMeter meter;
    benchmark::DoNotOptimize(catalog.AddCountView(log, "code", &meter));
    benchmark::DoNotOptimize(catalog.AddRangeView(log, "code", "ts", &meter));
  }
}
BENCHMARK(BM_Preprocess_Materialize)->RangeMultiplier(16)->Range(1 << 14, 1 << 20);

}  // namespace

PITRACT_BENCH_MAIN(
    "E08 | Section 4(6): answering using views. Expected shape: view probes\n"
    "      flat in |D|, scans ~ |D|; aggregate views are ~1000x smaller than D.")
