// E10 — Section 4(8) & Theorem 9: CVP under two factorizations.
//
// Paper claim: under Υ0 (data part = ε) preprocessing cannot help — Π(ε) is
// a constant — so query answering carries the full P-complete evaluation;
// under a data-carrying re-factorization, one PTIME pass makes every probe
// O(1) (the ΠT⁰Q ⊊ P separation made visible). Expected shape: Υ0 query
// depth grows linearly with circuit size; re-factorized probes stay flat.

#include "bench_util.h"
#include "circuit/generators.h"
#include "common/rng.h"
#include "core/problems.h"
#include "engine/builtins.h"
#include "engine/engine.h"

namespace {

using pitract::CostMeter;
using pitract::Rng;
namespace circuit = pitract::circuit;
namespace core = pitract::core;

circuit::CvpInstance MakeDeepInstance(int64_t gates) {
  Rng rng(42);
  circuit::CircuitGenOptions options;
  options.num_inputs = 16;
  options.num_gates = static_cast<int32_t>(gates);
  options.deep = true;
  return circuit::RandomCvpInstance(options, &rng);
}

void BM_Y0_EvaluatePerQuery(benchmark::State& state) {
  auto instance = MakeDeepInstance(state.range(0));
  auto entry = pitract::engine::DefaultEngine().Find("cvp-empty-data");
  if (!entry.ok()) {
    state.SkipWithError("cvp-empty-data not registered");
    return;
  }
  const auto& witness = (*entry)->witness;
  auto prepared = witness.preprocess("", nullptr);
  if (!prepared.ok()) {
    state.SkipWithError("preprocess failed");
    return;
  }
  const std::string query = core::MakeCvpInstanceString(instance);
  CostMeter meter;
  for (auto _ : state) {
    benchmark::DoNotOptimize(witness.answer(*prepared, query, &meter));
  }
  state.counters["model_depth_per_query"] =
      static_cast<double>(meter.depth()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_Y0_EvaluatePerQuery)->RangeMultiplier(4)->Range(1 << 10, 1 << 16);

void BM_Refactorized_GateProbe(benchmark::State& state) {
  auto instance = MakeDeepInstance(state.range(0));
  auto entry = pitract::engine::DefaultEngine().Find("cvp-refactorized");
  if (!entry.ok()) {
    state.SkipWithError("cvp-refactorized not registered");
    return;
  }
  const auto& witness = (*entry)->witness;
  auto data = (*entry)->factorization.pi1(
      core::MakeGvpInstance(instance, instance.circuit.output()));
  if (!data.ok()) {
    state.SkipWithError("factorization failed");
    return;
  }
  auto prepared = witness.preprocess(*data, nullptr);
  if (!prepared.ok()) {
    state.SkipWithError("preprocess failed");
    return;
  }
  Rng rng(7);
  CostMeter meter;
  for (auto _ : state) {
    auto gate = static_cast<circuit::GateId>(
        rng.NextBelow(static_cast<uint64_t>(instance.circuit.num_gates())));
    benchmark::DoNotOptimize(
        witness.answer(*prepared, std::to_string(gate), &meter));
  }
  state.counters["model_depth_per_query"] =
      static_cast<double>(meter.depth()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_Refactorized_GateProbe)->RangeMultiplier(4)->Range(1 << 10, 1 << 16);

void BM_Preprocess_EvaluateAll(benchmark::State& state) {
  auto instance = MakeDeepInstance(state.range(0));
  for (auto _ : state) {
    CostMeter meter;
    benchmark::DoNotOptimize(
        instance.circuit.EvaluateAll(instance.assignment, &meter));
  }
}
BENCHMARK(BM_Preprocess_EvaluateAll)->RangeMultiplier(4)->Range(1 << 10, 1 << 16);

void BM_ShallowCircuit_IsAlreadyNC(benchmark::State& state) {
  // Contrast: an NC-style shallow circuit evaluates in polylog depth even
  // without preprocessing — NC ⊆ ΠT⁰Q needs no help.
  Rng rng(42);
  circuit::CircuitGenOptions options;
  options.num_inputs = 16;
  options.num_gates = static_cast<int32_t>(state.range(0));
  options.deep = false;
  auto instance = circuit::RandomCvpInstance(options, &rng);
  CostMeter meter;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        instance.circuit.Evaluate(instance.assignment, &meter));
  }
  state.counters["model_depth_per_query"] =
      static_cast<double>(meter.depth()) /
      static_cast<double>(state.iterations());
  state.counters["circuit_depth"] =
      static_cast<double>(instance.circuit.Depth());
}
BENCHMARK(BM_ShallowCircuit_IsAlreadyNC)
    ->RangeMultiplier(4)
    ->Range(1 << 10, 1 << 16);

}  // namespace

PITRACT_BENCH_MAIN_JSON(
    "e10_cvp_separation",
    "E10 | Theorem 9 separation: CVP under Y0 (preprocess nothing) pays the\n"
    "      whole evaluation per query (depth ~ gates); the re-factorized\n"
    "      class answers O(1) after one PTIME pass. Shallow (NC) circuits\n"
    "      are cheap either way.")
