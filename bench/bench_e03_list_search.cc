// E03 — Section 4(2): searching in an unordered list.
//
// Paper claim: sort M once in O(|M| log |M|) as preprocessing; then every
// membership query answers by binary search in O(log |M|). Expected shape:
// scan grows linearly, binary search stays logarithmic.

#include "bench_util.h"
#include "common/rng.h"
#include "engine/builtins.h"
#include "engine/engine.h"
#include "index/sorted_column.h"
#include "storage/generator.h"

namespace {

using pitract::CostMeter;
using pitract::Rng;

std::vector<int64_t> MakeList(int64_t n) {
  Rng rng(42);
  return pitract::storage::GenerateList(n, 2 * n, &rng);
}

void BM_LinearScan(benchmark::State& state) {
  const int64_t n = state.range(0);
  auto list = MakeList(n);
  Rng rng(7);
  CostMeter meter;
  for (auto _ : state) {
    int64_t needle =
        static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(2 * n)));
    bool found = false;
    int64_t touched = 0;
    for (int64_t v : list) {
      ++touched;
      if (v == needle) {
        found = true;
        break;
      }
    }
    meter.AddSerial(touched);
    benchmark::DoNotOptimize(found);
  }
  state.counters["model_work_per_query"] =
      static_cast<double>(meter.work()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_LinearScan)->RangeMultiplier(4)->Range(1 << 14, 1 << 22);

void BM_BinarySearch(benchmark::State& state) {
  const int64_t n = state.range(0);
  auto list = MakeList(n);
  auto sorted = pitract::index::SortedColumn::Build(
      {list.data(), list.size()}, nullptr);
  Rng rng(7);
  CostMeter meter;
  for (auto _ : state) {
    int64_t needle =
        static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(2 * n)));
    benchmark::DoNotOptimize(sorted.Contains(needle, &meter));
  }
  state.counters["model_work_per_query"] =
      static_cast<double>(meter.work()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_BinarySearch)->RangeMultiplier(4)->Range(1 << 14, 1 << 22);

void BM_Preprocess_Sort(benchmark::State& state) {
  const int64_t n = state.range(0);
  auto list = MakeList(n);
  for (auto _ : state) {
    CostMeter meter;
    auto sorted = pitract::index::SortedColumn::Build(
        {list.data(), list.size()}, &meter);
    benchmark::DoNotOptimize(sorted.size());
  }
}
BENCHMARK(BM_Preprocess_Sort)->RangeMultiplier(16)->Range(1 << 14, 1 << 22);

void BM_EngineTypedBatch(benchmark::State& state) {
  // The same workload driven through the engine's typed path: each
  // iteration answers the registered list-membership case's whole query
  // batch via QueryEngine::AnswerTypedBatch. The typed cache makes every
  // iteration after the first prepare-free (pi_runs_total stays 1).
  pitract::engine::QueryEngine engine;
  if (!pitract::engine::RegisterBuiltins(&engine).ok()) {
    state.SkipWithError("RegisterBuiltins failed");
    return;
  }
  int64_t pi_runs = 0;
  int64_t queries = 0;
  for (auto _ : state) {
    auto batch = engine.AnswerTypedBatch("list-membership", state.range(0),
                                         /*seed=*/1);
    if (!batch.ok()) {
      state.SkipWithError("AnswerTypedBatch failed");
      return;
    }
    pi_runs += batch->prepare_runs;
    queries += static_cast<int64_t>(batch->answers.size());
    benchmark::DoNotOptimize(batch->answers);
  }
  state.counters["pi_runs_total"] = static_cast<double>(pi_runs);
  state.counters["queries_answered"] = static_cast<double>(queries);
}
BENCHMARK(BM_EngineTypedBatch)->RangeMultiplier(16)->Range(1 << 14, 1 << 22);

}  // namespace

PITRACT_BENCH_MAIN_JSON(
    "e03_list_search",
    "E03 | Section 4(2): list membership. Expected shape: scan ~ n,\n"
    "      binary search ~ log n after an O(n log n) one-time sort.")
