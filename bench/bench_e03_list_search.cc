// E03 — Section 4(2): searching in an unordered list.
//
// Paper claim: sort M once in O(|M| log |M|) as preprocessing; then every
// membership query answers by binary search in O(log |M|). Expected shape:
// scan grows linearly, binary search stays logarithmic.

#include "bench_util.h"
#include "common/rng.h"
#include "index/sorted_column.h"
#include "storage/generator.h"

namespace {

using pitract::CostMeter;
using pitract::Rng;

std::vector<int64_t> MakeList(int64_t n) {
  Rng rng(42);
  return pitract::storage::GenerateList(n, 2 * n, &rng);
}

void BM_LinearScan(benchmark::State& state) {
  const int64_t n = state.range(0);
  auto list = MakeList(n);
  Rng rng(7);
  CostMeter meter;
  for (auto _ : state) {
    int64_t needle =
        static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(2 * n)));
    bool found = false;
    int64_t touched = 0;
    for (int64_t v : list) {
      ++touched;
      if (v == needle) {
        found = true;
        break;
      }
    }
    meter.AddSerial(touched);
    benchmark::DoNotOptimize(found);
  }
  state.counters["model_work_per_query"] =
      static_cast<double>(meter.work()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_LinearScan)->RangeMultiplier(4)->Range(1 << 14, 1 << 22);

void BM_BinarySearch(benchmark::State& state) {
  const int64_t n = state.range(0);
  auto list = MakeList(n);
  auto sorted = pitract::index::SortedColumn::Build(
      {list.data(), list.size()}, nullptr);
  Rng rng(7);
  CostMeter meter;
  for (auto _ : state) {
    int64_t needle =
        static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(2 * n)));
    benchmark::DoNotOptimize(sorted.Contains(needle, &meter));
  }
  state.counters["model_work_per_query"] =
      static_cast<double>(meter.work()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_BinarySearch)->RangeMultiplier(4)->Range(1 << 14, 1 << 22);

void BM_Preprocess_Sort(benchmark::State& state) {
  const int64_t n = state.range(0);
  auto list = MakeList(n);
  for (auto _ : state) {
    CostMeter meter;
    auto sorted = pitract::index::SortedColumn::Build(
        {list.data(), list.size()}, &meter);
    benchmark::DoNotOptimize(sorted.size());
  }
}
BENCHMARK(BM_Preprocess_Sort)->RangeMultiplier(16)->Range(1 << 14, 1 << 22);

}  // namespace

PITRACT_BENCH_MAIN(
    "E03 | Section 4(2): list membership. Expected shape: scan ~ n,\n"
    "      binary search ~ log n after an O(n log n) one-time sort.")
