// E04 — Section 4(3): minimum range queries (Fischer–Heun [18]).
//
// Paper claim: preprocess A[1..n] with an O(n)-bit auxiliary structure such
// that all RMQ(i, j) answer in O(1). Expected shape: naive query cost grows
// with the span; sparse-table and block (Fischer–Heun) queries are flat,
// and the block structure's preprocessing undercuts the O(n log n) table.

#include "bench_util.h"
#include "common/rng.h"
#include "rmq/rmq.h"

namespace {

using pitract::CostMeter;
using pitract::Rng;
namespace rmq = pitract::rmq;

std::vector<int64_t> MakeArray(int64_t n) {
  Rng rng(42);
  std::vector<int64_t> values(static_cast<size_t>(n));
  for (auto& v : values) v = static_cast<int64_t>(rng.NextBelow(1 << 20));
  return values;
}

void BM_NaiveQuery(benchmark::State& state) {
  const int64_t n = state.range(0);
  rmq::NaiveRmq naive(MakeArray(n));
  Rng rng(7);
  CostMeter meter;
  for (auto _ : state) {
    int64_t i = static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(n)));
    int64_t j = static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(n)));
    if (i > j) std::swap(i, j);
    benchmark::DoNotOptimize(naive.Query(i, j, &meter));
  }
  state.counters["model_work_per_query"] =
      static_cast<double>(meter.work()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_NaiveQuery)->RangeMultiplier(4)->Range(1 << 12, 1 << 20);

void BM_SparseTableQuery(benchmark::State& state) {
  const int64_t n = state.range(0);
  auto table = rmq::SparseTableRmq::Build(MakeArray(n), nullptr);
  Rng rng(7);
  CostMeter meter;
  for (auto _ : state) {
    int64_t i = static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(n)));
    int64_t j = static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(n)));
    if (i > j) std::swap(i, j);
    benchmark::DoNotOptimize(table.Query(i, j, &meter));
  }
  state.counters["model_work_per_query"] =
      static_cast<double>(meter.work()) /
      static_cast<double>(state.iterations());
  state.counters["table_bytes"] = static_cast<double>(table.EstimateBytes());
}
BENCHMARK(BM_SparseTableQuery)->RangeMultiplier(4)->Range(1 << 12, 1 << 20);

void BM_BlockRmqQuery(benchmark::State& state) {
  const int64_t n = state.range(0);
  auto block = rmq::BlockRmq::Build(MakeArray(n), nullptr);
  Rng rng(7);
  CostMeter meter;
  for (auto _ : state) {
    int64_t i = static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(n)));
    int64_t j = static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(n)));
    if (i > j) std::swap(i, j);
    benchmark::DoNotOptimize(block.Query(i, j, &meter));
  }
  state.counters["model_work_per_query"] =
      static_cast<double>(meter.work()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_BlockRmqQuery)->RangeMultiplier(4)->Range(1 << 12, 1 << 20);

void BM_Preprocess_SparseTable(benchmark::State& state) {
  auto values = MakeArray(state.range(0));
  for (auto _ : state) {
    CostMeter meter;
    benchmark::DoNotOptimize(rmq::SparseTableRmq::Build(values, &meter));
  }
}
BENCHMARK(BM_Preprocess_SparseTable)->RangeMultiplier(16)->Range(1 << 12, 1 << 20);

void BM_Preprocess_BlockRmq(benchmark::State& state) {
  auto values = MakeArray(state.range(0));
  for (auto _ : state) {
    CostMeter meter;
    benchmark::DoNotOptimize(rmq::BlockRmq::Build(values, &meter));
  }
}
BENCHMARK(BM_Preprocess_BlockRmq)->RangeMultiplier(16)->Range(1 << 12, 1 << 20);

}  // namespace

PITRACT_BENCH_MAIN(
    "E04 | Section 4(3): range-minimum queries. Expected shape: naive ~ span,\n"
    "      sparse/block probes O(1); Fischer-Heun preprocessing ~ n beats the\n"
    "      O(n log n) sparse table.")
