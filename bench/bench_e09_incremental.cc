// E09 — Section 4(7): (bounded) incremental evaluation.
//
// Paper claim: after evaluating once as preprocessing, maintain answers
// under ΔD with cost a function of |CHANGED| = |ΔD| + |ΔO|, independent of
// |D| (Ramalingam–Reps [35]). Expected shape: Δ-maintenance cost tracks the
// batch size across data scales; rebuild cost grows with |D|; incremental
// TC insert work tracks the number of newly reachable pairs.

#include "bench_util.h"
#include "common/rng.h"
#include "graph/generators.h"
#include "incremental/delta_index.h"
#include "incremental/incremental_tc.h"

namespace {

using pitract::CostMeter;
using pitract::Rng;
namespace incremental = pitract::incremental;

std::vector<std::pair<int64_t, int64_t>> MakeEntries(int64_t n) {
  Rng rng(42);
  std::vector<std::pair<int64_t, int64_t>> entries;
  entries.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    entries.emplace_back(
        static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(4 * n))), i);
  }
  return entries;
}

std::vector<incremental::Delta> MakeBatch(Rng* rng, int64_t key_range,
                                          int64_t base_row, int count) {
  std::vector<incremental::Delta> batch;
  for (int i = 0; i < count; ++i) {
    incremental::Delta d;
    d.op = incremental::Delta::Op::kInsert;
    d.key = static_cast<int64_t>(
        rng->NextBelow(static_cast<uint64_t>(key_range)));
    d.row_id = base_row + i;
    batch.push_back(d);
  }
  return batch;
}

void BM_ApplyDelta(benchmark::State& state) {
  const int64_t n = state.range(0);
  auto index = incremental::DeltaMaintainedIndex::Build(MakeEntries(n), nullptr);
  if (!index.ok()) {
    state.SkipWithError("build failed");
    return;
  }
  Rng rng(7);
  int64_t next_row = n;
  CostMeter meter;
  for (auto _ : state) {
    auto batch = MakeBatch(&rng, 4 * n, next_row, 64);
    next_row += 64;
    if (!index->ApplyDelta(batch, &meter).ok()) {
      state.SkipWithError("delta failed");
      return;
    }
  }
  state.counters["model_work_per_batch"] =
      static_cast<double>(meter.work()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_ApplyDelta)->RangeMultiplier(4)->Range(1 << 12, 1 << 20);

void BM_RebuildWith(benchmark::State& state) {
  const int64_t n = state.range(0);
  auto index = incremental::DeltaMaintainedIndex::Build(MakeEntries(n), nullptr);
  if (!index.ok()) {
    state.SkipWithError("build failed");
    return;
  }
  Rng rng(7);
  int64_t next_row = n;
  CostMeter meter;
  for (auto _ : state) {
    auto batch = MakeBatch(&rng, 4 * n, next_row, 64);
    next_row += 64;
    if (!index->RebuildWith(batch, &meter).ok()) {
      state.SkipWithError("rebuild failed");
      return;
    }
  }
  state.counters["model_work_per_batch"] =
      static_cast<double>(meter.work()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_RebuildWith)->RangeMultiplier(4)->Range(1 << 12, 1 << 18);

void BM_IncrementalTcInsert(benchmark::State& state) {
  const auto n = static_cast<pitract::graph::NodeId>(state.range(0));
  Rng rng(42);
  // Start from a sparse DAG-ish base so inserts have varied impact.
  incremental::IncrementalTransitiveClosure tc(n);
  for (int64_t i = 0; i + 1 < n; i += 2) {
    (void)tc.InsertEdge(static_cast<pitract::graph::NodeId>(i),
                        static_cast<pitract::graph::NodeId>(i + 1), nullptr);
  }
  int64_t total_changed = 0;
  int64_t total_work = 0;
  for (auto _ : state) {
    auto u = static_cast<pitract::graph::NodeId>(
        rng.NextBelow(static_cast<uint64_t>(n)));
    auto v = static_cast<pitract::graph::NodeId>(
        rng.NextBelow(static_cast<uint64_t>(n)));
    auto changed = tc.InsertEdge(u, v, nullptr);
    if (changed.ok()) {
      total_changed += *changed;
      total_work += tc.last_insert_work();
    }
  }
  state.counters["changed_pairs_per_insert"] =
      static_cast<double>(total_changed) /
      static_cast<double>(state.iterations());
  state.counters["work_per_insert"] =
      static_cast<double>(total_work) /
      static_cast<double>(state.iterations());
  state.counters["work_per_changed_pair"] =
      total_changed > 0
          ? static_cast<double>(total_work) / static_cast<double>(total_changed)
          : 0.0;
}
BENCHMARK(BM_IncrementalTcInsert)->RangeMultiplier(2)->Range(1 << 7, 1 << 10);

}  // namespace

PITRACT_BENCH_MAIN(
    "E09 | Section 4(7): bounded incremental evaluation. Expected shape:\n"
    "      delta cost ~ |dD| log|D| (near-flat across |D|), rebuild ~ |D|;\n"
    "      TC insert work per changed pair stays bounded.")
