#ifndef PITRACT_BENCH_BENCH_UTIL_H_
#define PITRACT_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

/// Every experiment binary prints the paper claim it regenerates before the
/// measured series, so bench_output.txt reads as paper-vs-measured.
#define PITRACT_BENCH_MAIN(header)                     \
  int main(int argc, char** argv) {                    \
    std::printf("%s\n", header);                       \
    ::benchmark::Initialize(&argc, argv);              \
    if (::benchmark::ReportUnrecognizedArguments(argc, \
                                                 argv)) \
      return 1;                                        \
    ::benchmark::RunSpecifiedBenchmarks();             \
    ::benchmark::Shutdown();                           \
    return 0;                                          \
  }

namespace pitract_bench {

/// steady_clock stopwatch for the hand-rolled BENCH_*.json emitters: every
/// JSON line records wall-clock ns alongside the charged CostMeter work,
/// so perf PRs leave a real latency trajectory, not just charged units.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void Reset() { start_ = std::chrono::steady_clock::now(); }
  long long ElapsedNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Console output plus one JSON line per benchmark run appended to
/// BENCH_<bench_id>.json — the same accumulate-across-runs trajectory
/// convention bench_f2_landscape established, so perf regressions diff.
class JsonLinesTeeReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonLinesTeeReporter(std::string bench_id, std::string path)
      : bench_id_(std::move(bench_id)), json_(std::fopen(path.c_str(), "a")) {
    if (json_ == nullptr) {
      std::fprintf(stderr,
                   "warning: cannot open %s for append; JSON lines skipped\n",
                   path.c_str());
    }
  }
  ~JsonLinesTeeReporter() override {
    if (json_ != nullptr) std::fclose(json_);
  }

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    if (json_ == nullptr) return;
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      // Normalized wall-clock ns next to the unit-dependent real_time, so
      // trajectories compare across benches regardless of time_unit.
      double to_ns = 1.0;
      switch (run.time_unit) {
        case benchmark::kNanosecond:  to_ns = 1.0;  break;
        case benchmark::kMicrosecond: to_ns = 1e3;  break;
        case benchmark::kMillisecond: to_ns = 1e6;  break;
        case benchmark::kSecond:      to_ns = 1e9;  break;
      }
      std::fprintf(json_,
                   "{\"bench\":\"%s\",\"name\":\"%s\",\"iterations\":%lld,"
                   "\"real_time\":%.3f,\"cpu_time\":%.3f,\"time_unit\":\"%s\","
                   "\"wall_ns\":%.1f",
                   bench_id_.c_str(), run.benchmark_name().c_str(),
                   static_cast<long long>(run.iterations),
                   run.GetAdjustedRealTime(), run.GetAdjustedCPUTime(),
                   benchmark::GetTimeUnitString(run.time_unit),
                   run.GetAdjustedRealTime() * to_ns);
      for (const auto& [name, counter] : run.counters) {
        std::fprintf(json_, ",\"%s\":%.3f", name.c_str(),
                     static_cast<double>(counter.value));
      }
      std::fprintf(json_, "}\n");
    }
    std::fflush(json_);
  }

 private:
  std::string bench_id_;
  std::FILE* json_;
};

}  // namespace pitract_bench

/// PITRACT_BENCH_MAIN plus the JSON-lines trajectory: runs append to
/// BENCH_<bench_id>.json (or argv[1] when given a path before gbench
/// flags).
#define PITRACT_BENCH_MAIN_JSON(bench_id, header)                     \
  int main(int argc, char** argv) {                                   \
    std::printf("%s\n", header);                                      \
    std::string json_path = std::string("BENCH_") + bench_id + ".json"; \
    if (argc > 1 && argv[1][0] != '-') {                              \
      json_path = argv[1];                                            \
      for (int i = 1; i + 1 < argc; ++i) argv[i] = argv[i + 1];       \
      --argc;                                                         \
    }                                                                 \
    ::benchmark::Initialize(&argc, argv);                             \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv))         \
      return 1;                                                       \
    ::pitract_bench::JsonLinesTeeReporter reporter(bench_id,          \
                                                   json_path);        \
    ::benchmark::RunSpecifiedBenchmarks(&reporter);                   \
    ::benchmark::Shutdown();                                          \
    return 0;                                                         \
  }

#endif  // PITRACT_BENCH_BENCH_UTIL_H_
