#ifndef PITRACT_BENCH_BENCH_UTIL_H_
#define PITRACT_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>

/// Every experiment binary prints the paper claim it regenerates before the
/// measured series, so bench_output.txt reads as paper-vs-measured.
#define PITRACT_BENCH_MAIN(header)                     \
  int main(int argc, char** argv) {                    \
    std::printf("%s\n", header);                       \
    ::benchmark::Initialize(&argc, argv);              \
    if (::benchmark::ReportUnrecognizedArguments(argc, \
                                                 argv)) \
      return 1;                                        \
    ::benchmark::RunSpecifiedBenchmarks();             \
    ::benchmark::Shutdown();                           \
    return 0;                                          \
  }

#endif  // PITRACT_BENCH_BENCH_UTIL_H_
