// E06 — Examples 2/5 & Section 6: breadth-depth search.
//
// Paper claim: BDS is P-complete, yet after Π(G) = one full search (PTIME),
// "whether ⟨M, (u,v)⟩ ∈ S' can be decided by binary searches on M, in
// O(log |M|) time". Expected shape: the online baseline re-runs the search
// per query (~ n + m); oracle queries stay logarithmic/flat.

#include "bds/bds.h"
#include "bench_util.h"
#include "common/rng.h"
#include "graph/generators.h"

namespace {

using pitract::CostMeter;
using pitract::Rng;
namespace graph = pitract::graph;
namespace bds = pitract::bds;

graph::Graph MakeGraph(int64_t n) {
  Rng rng(42);
  return graph::ErdosRenyi(static_cast<graph::NodeId>(n), 3 * n,
                           /*directed=*/false, &rng);
}

void BM_OnlinePerQuery(benchmark::State& state) {
  auto g = MakeGraph(state.range(0));
  Rng rng(7);
  CostMeter meter;
  for (auto _ : state) {
    auto u = static_cast<graph::NodeId>(
        rng.NextBelow(static_cast<uint64_t>(g.num_nodes())));
    auto v = static_cast<graph::NodeId>(
        rng.NextBelow(static_cast<uint64_t>(g.num_nodes())));
    benchmark::DoNotOptimize(bds::BdsVisitedBeforeOnline(g, u, v, &meter));
  }
  state.counters["model_work_per_query"] =
      static_cast<double>(meter.work()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_OnlinePerQuery)->RangeMultiplier(4)->Range(1 << 10, 1 << 16);

void BM_OracleQuery(benchmark::State& state) {
  auto g = MakeGraph(state.range(0));
  auto oracle = bds::BdsOracle::Build(g, nullptr);
  oracle.set_charge_binary_search(true);
  Rng rng(7);
  CostMeter meter;
  for (auto _ : state) {
    auto u = static_cast<graph::NodeId>(
        rng.NextBelow(static_cast<uint64_t>(g.num_nodes())));
    auto v = static_cast<graph::NodeId>(
        rng.NextBelow(static_cast<uint64_t>(g.num_nodes())));
    benchmark::DoNotOptimize(oracle.VisitedBefore(u, v, &meter));
  }
  state.counters["model_work_per_query"] =
      static_cast<double>(meter.work()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_OracleQuery)->RangeMultiplier(4)->Range(1 << 10, 1 << 16);

void BM_Preprocess_FullSearch(benchmark::State& state) {
  auto g = MakeGraph(state.range(0));
  for (auto _ : state) {
    CostMeter meter;
    benchmark::DoNotOptimize(bds::BdsOracle::Build(g, &meter));
  }
}
BENCHMARK(BM_Preprocess_FullSearch)->RangeMultiplier(4)->Range(1 << 10, 1 << 16);

}  // namespace

PITRACT_BENCH_MAIN(
    "E06 | Examples 2/5: BDS (P-complete). Expected shape: per-query online\n"
    "      search ~ (n + m); after one PTIME search, queries are O(log n).")
