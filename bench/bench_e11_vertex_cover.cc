// E11 — Section 4(9): Vertex Cover with Buss kernelization.
//
// Paper claim: VC is NP-complete, but with K fixed, Buss' kernelization
// preprocesses instances in O(|E|) so deciding costs time depending on K
// alone — "when K is fixed, VC is in ΠTP". Expected shape: direct search
// cost grows with |G|; kernel+search cost is flat in |G| for fixed K and
// explodes only in K.

#include "bench_util.h"
#include "common/rng.h"
#include "graph/generators.h"
#include "kernel/vertex_cover.h"

namespace {

using pitract::CostMeter;
using pitract::Rng;
namespace graph = pitract::graph;
namespace kernel = pitract::kernel;

constexpr int kFixedK = 8;

graph::Graph MakeGraph(int64_t n) {
  Rng rng(42);
  return graph::ErdosRenyi(static_cast<graph::NodeId>(n), n / 2,
                           /*directed=*/false, &rng);
}

void BM_DirectSearch(benchmark::State& state) {
  auto g = MakeGraph(state.range(0));
  CostMeter meter;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel::HasVertexCoverDirect(g, kFixedK, &meter));
  }
  state.counters["model_work_per_decision"] =
      static_cast<double>(meter.work()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_DirectSearch)->RangeMultiplier(2)->Range(1 << 8, 1 << 12);

void BM_KernelizeThenSearch(benchmark::State& state) {
  auto g = MakeGraph(state.range(0));
  CostMeter meter;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kernel::HasVertexCoverKernelized(g, kFixedK, &meter));
  }
  state.counters["model_work_per_decision"] =
      static_cast<double>(meter.work()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_KernelizeThenSearch)->RangeMultiplier(2)->Range(1 << 8, 1 << 12);

void BM_SearchOnKernelOnly(benchmark::State& state) {
  // The post-preprocessing cost the paper calls "O(1)": the kernel search
  // with |G| out of the picture.
  auto g = MakeGraph(state.range(0));
  auto kern = kernel::BussKernelize(g, kFixedK, nullptr);
  if (!kern.ok()) {
    state.SkipWithError("kernelization failed");
    return;
  }
  CostMeter meter;
  for (auto _ : state) {
    if (kern->decided.has_value()) {
      benchmark::DoNotOptimize(*kern->decided);
    } else {
      benchmark::DoNotOptimize(
          kernel::VertexCoverSearch(kern->edges, kern->remaining_k, &meter));
    }
  }
  state.counters["kernel_edges"] = static_cast<double>(kern->edges.size());
  state.counters["model_work_per_decision"] =
      static_cast<double>(meter.work()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_SearchOnKernelOnly)->RangeMultiplier(2)->Range(1 << 8, 1 << 12);

void BM_KSweepOnFixedGraph(benchmark::State& state) {
  auto g = MakeGraph(1 << 10);
  const int k = static_cast<int>(state.range(0));
  CostMeter meter;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel::HasVertexCoverKernelized(g, k, &meter));
  }
  state.counters["model_work_per_decision"] =
      static_cast<double>(meter.work()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_KSweepOnFixedGraph)->DenseRange(2, 12, 2);

}  // namespace

PITRACT_BENCH_MAIN(
    "E11 | Section 4(9): VC with Buss kernelization. Expected shape: direct\n"
    "      search grows with |G|; kernel+search is flat in |G| at fixed K=8\n"
    "      (kernel size depends on K alone) and grows only with K.")
