// X5 — warm answer-path latency: wall-clock ns/query vs |D|.
//
// The paper's bound makes a warm query O(polylog |D|) in *charged* cost,
// but a serving layer only earns it in wall-clock terms if nothing on the
// warm path re-touches the whole data part. This harness measures exactly
// that, per view-enabled builtin, on a warm PreparedStore:
//
//   * path=view   — the decoded Π-view layer (PiWitness::deserialize /
//     answer_view, memoized per store entry): expected *flat* ns/query
//     as |D| doubles;
//   * path=string — the same witnesses with views stripped
//     (BuiltinOptions::enable_views = false), so every query re-decodes
//     the Σ*-encoded Π(D): expected ns/query growing linearly in |D|;
//   * metric=admission — per-batch overhead of the string-keyed
//     AnswerBatch (O(|D|) key copy + hash per batch) against the
//     digest-handle AnswerBatch (QueryEngine::Intern pays it once); the
//     handle loop must leave PreparedStore::Stats::key_builds untouched,
//     checked here and enforced again in engine_test.
//   * metric=batch — the vectorised kernel layer (answer_view_batch, one
//     pre-decoded span per batch) against the same engine with batch hooks
//     stripped (BuiltinOptions::enable_batch_kernels = false, i.e. the
//     per-query answer_view loop), across batch sizes; rows report
//     queries/sec/core and bytes/query so the remaining distance to the
//     hardware's random-access floor is visible.
//   * metric=sorted — batch-local access-locality scheduling
//     (AnswerOptions::sort_probes): big kernel batches answered in probe-
//     address order vs arrival order on the same warm handle.
//
// One JSON line per measurement is appended to BENCH_x5_answer_latency.json
// (or argv[1]) in the f2_landscape trajectory convention. Every row carries
// `batch` (queries per AnswerBatch call) and `hardware_concurrency`
// (matching the x3 row convention) so cross-runner numbers are
// interpretable. A trailing "tiny" argument shrinks every size so CI can
// smoke the emitters.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "circuit/generators.h"
#include "common/rng.h"
#include "core/problems.h"
#include "engine/builtins.h"
#include "engine/engine.h"
#include "graph/generators.h"

namespace {

using pitract::Rng;
namespace core = pitract::core;
namespace engine = pitract::engine;

constexpr int kQueriesPerBatch = 64;

struct Workload {
  std::string data;
  std::vector<std::string> queries;  // warm-path queries
};

Workload MakeMemberWorkload(int64_t n, Rng* rng,
                            int num_queries = kQueriesPerBatch) {
  const int64_t universe = 4 * n;
  std::vector<int64_t> list;
  list.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    list.push_back(static_cast<int64_t>(
        rng->NextBelow(static_cast<uint64_t>(universe))));
  }
  Workload w;
  w.data = core::MemberFactorization()
               .pi1(core::MakeMemberInstance(universe, list, 0))
               .value();
  for (int i = 0; i < num_queries; ++i) {
    w.queries.push_back(std::to_string(
        rng->NextBelow(static_cast<uint64_t>(universe))));
  }
  return w;
}

Workload MakeGraphWorkload(int64_t n, Rng* rng, bool bds,
                           int num_queries = kQueriesPerBatch) {
  auto g = pitract::graph::ErdosRenyi(static_cast<pitract::graph::NodeId>(n),
                                      2 * n, /*directed=*/false, rng);
  Workload w;
  w.data = bds ? core::BdsFactorization()
                     .pi1(core::MakeBdsInstance(g, 0, 0))
                     .value()
               : core::ConnFactorization()
                     .pi1(core::MakeConnInstance(g, 0, 0))
                     .value();
  for (int i = 0; i < num_queries; ++i) {
    const auto u = rng->NextBelow(static_cast<uint64_t>(n));
    const auto v = rng->NextBelow(static_cast<uint64_t>(n));
    w.queries.push_back(std::to_string(u) + "#" + std::to_string(v));
  }
  return w;
}

Workload MakeGvpWorkload(int64_t n, Rng* rng, int num_queries) {
  pitract::circuit::CircuitGenOptions copts;
  copts.num_inputs = 16;
  copts.num_gates = static_cast<int32_t>(n);
  auto instance = pitract::circuit::RandomCvpInstance(copts, rng);
  Workload w;
  w.data = core::GvpFactorization()
               .pi1(core::MakeGvpInstance(instance, 0))
               .value();
  const auto gates = static_cast<uint64_t>(instance.circuit.num_gates());
  for (int i = 0; i < num_queries; ++i) {
    w.queries.push_back(std::to_string(rng->NextBelow(gates)));
  }
  return w;
}

Workload MakeReachWorkload(int64_t n, Rng* rng, int num_queries) {
  auto g = pitract::graph::ErdosRenyi(static_cast<pitract::graph::NodeId>(n),
                                      2 * n, /*directed=*/true, rng);
  Workload w;
  w.data = core::ReachFactorization()
               .pi1(core::MakeReachInstance(g, 0, 0))
               .value();
  for (int i = 0; i < num_queries; ++i) {
    const auto u = rng->NextBelow(static_cast<uint64_t>(n));
    const auto v = rng->NextBelow(static_cast<uint64_t>(n));
    w.queries.push_back(std::to_string(u) + "#" + std::to_string(v));
  }
  return w;
}

struct LatencyPoint {
  double ns_per_query = -1;
  double answer_work_per_query = -1;
  double bytes_per_query = -1;
  long long batches = 0;
  long long kernel_batches = 0;
};

/// Warm-store steady state: answer the same batch until `min_ns` elapsed
/// (at least twice), so fast paths average over many batches while the
/// slow string path at large |D| still terminates.
LatencyPoint MeasureWarm(engine::QueryEngine* eng,
                         const engine::DataHandle& handle,
                         const std::vector<std::string>& queries,
                         long long min_ns, long long max_batches,
                         const engine::AnswerOptions& options = {}) {
  LatencyPoint point;
  long long answered = 0;
  long long answer_work = 0;
  long long answer_bytes = 0;
  pitract_bench::WallTimer timer;
  while ((timer.ElapsedNs() < min_ns || point.batches < 2) &&
         point.batches < max_batches) {
    auto batch = eng->AnswerBatch(handle, queries, options);
    if (!batch.ok()) {
      std::fprintf(stderr, "warm batch failed: %s\n",
                   batch.status().ToString().c_str());
      return point;
    }
    ++point.batches;
    if (batch->mode == engine::BatchAnswerMode::kKernel) {
      ++point.kernel_batches;
    }
    answered += static_cast<long long>(batch->answers.size());
    answer_work += batch->answer_cost.work;
    answer_bytes += batch->answer_bytes_read;
  }
  const long long total_ns = timer.ElapsedNs();
  if (answered > 0) {
    point.ns_per_query = static_cast<double>(total_ns) / answered;
    point.answer_work_per_query =
        static_cast<double>(answer_work) / answered;
    point.bytes_per_query = static_cast<double>(answer_bytes) / answered;
  }
  return point;
}

/// Per-batch admission overhead on a warm store: single-query batches, so
/// the key build dominates the string-keyed flavor at large |D|.
double MeasureAdmissionNsPerBatch(engine::QueryEngine* eng,
                                  const std::string& problem,
                                  const std::string& data,
                                  const engine::DataHandle* handle,
                                  const std::vector<std::string>& queries,
                                  long long min_ns, long long max_batches) {
  std::vector<std::string> one{queries.front()};
  long long batches = 0;
  pitract_bench::WallTimer timer;
  while ((timer.ElapsedNs() < min_ns || batches < 2) &&
         batches < max_batches) {
    auto batch = handle != nullptr ? eng->AnswerBatch(*handle, one)
                                   : eng->AnswerBatch(problem, data, one);
    if (!batch.ok()) return -1;
    ++batches;
  }
  return static_cast<double>(timer.ElapsedNs()) /
         static_cast<double>(batches);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "X5 | Warm answer-path latency: wall-clock ns/query vs |D| on a warm\n"
      "     store. path=view answers through memoized decoded Π-views and\n"
      "     must stay flat in |D|; path=string re-decodes Π(D) per query\n"
      "     and grows with |D|. metric=admission contrasts per-batch\n"
      "     O(|D|) key hashing (string keys) with digest handles (zero).\n\n");
  const char* json_path = "BENCH_x5_answer_latency.json";
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "tiny") == 0) {
      tiny = true;
    } else {
      json_path = argv[i];
    }
  }
  std::FILE* json = std::fopen(json_path, "a");
  if (json == nullptr) {
    std::fprintf(stderr,
                 "warning: cannot open %s for append; JSON lines skipped\n",
                 json_path);
  }
  const int hardware_concurrency =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  const long long min_ns = tiny ? 2'000'000 : 50'000'000;
  const long long max_batches = tiny ? 8 : 4096;
  const std::vector<int64_t> sizes =
      tiny ? std::vector<int64_t>{1 << 7}
           : std::vector<int64_t>{1 << 10, 1 << 13, 1 << 16};
  const char* kCases[] = {"list-membership", "connectivity",
                          "breadth-depth-search"};

  size_t json_lines = 0;
  int failures = 0;
  std::printf("%-22s %8s %14s %14s %9s\n", "case", "n", "view ns/q",
              "string ns/q", "speedup");
  std::printf(
      "----------------------------------------------------------------------"
      "\n");
  for (const char* case_name : kCases) {
    for (int64_t n : sizes) {
      Rng rng(0x9e05 + static_cast<uint64_t>(n));
      Workload w;
      if (std::strcmp(case_name, "list-membership") == 0) {
        w = MakeMemberWorkload(n, &rng);
      } else {
        w = MakeGraphWorkload(
            n, &rng,
            std::strcmp(case_name, "breadth-depth-search") == 0);
      }

      // Two engines over identical data: decoded views on vs stripped.
      engine::QueryEngine view_eng;
      engine::QueryEngine string_eng;
      engine::BuiltinOptions no_views;
      no_views.enable_views = false;
      if (!engine::RegisterBuiltins(&view_eng).ok() ||
          !engine::RegisterBuiltins(&string_eng, no_views).ok()) {
        return 1;
      }
      auto view_handle = view_eng.Intern(case_name, w.data);
      auto string_handle = string_eng.Intern(case_name, w.data);
      if (!view_handle.ok() || !string_handle.ok()) {
        ++failures;
        continue;
      }
      // Warm both stores: one miss each, Π runs once per engine.
      if (!view_eng.AnswerBatch(*view_handle, w.queries).ok() ||
          !string_eng.AnswerBatch(*string_handle, w.queries).ok()) {
        ++failures;
        continue;
      }

      const auto key_builds_before = view_eng.store().stats().key_builds;
      LatencyPoint view_point =
          MeasureWarm(&view_eng, *view_handle, w.queries, min_ns,
                      max_batches);
      if (view_eng.store().stats().key_builds != key_builds_before) {
        std::fprintf(stderr,
                     "FAIL: warm handle batches built O(|D|) keys\n");
        ++failures;
      }
      LatencyPoint string_point =
          MeasureWarm(&string_eng, *string_handle, w.queries, min_ns,
                      max_batches);
      const double speedup =
          view_point.ns_per_query > 0
              ? string_point.ns_per_query / view_point.ns_per_query
              : -1;
      std::printf("%-22s %8lld %14.1f %14.1f %8.1fx\n", case_name,
                  static_cast<long long>(n), view_point.ns_per_query,
                  string_point.ns_per_query, speedup);
      if (json != nullptr) {
        std::fprintf(json,
                     "{\"bench\":\"x5_answer_latency\",\"case\":\"%s\","
                     "\"n\":%lld,\"path\":\"view\",\"batch\":%d,"
                     "\"batches\":%lld,\"ns_per_query\":%.1f,"
                     "\"answer_work_per_query\":%.1f,"
                     "\"hardware_concurrency\":%d}\n",
                     case_name, static_cast<long long>(n), kQueriesPerBatch,
                     view_point.batches, view_point.ns_per_query,
                     view_point.answer_work_per_query, hardware_concurrency);
        std::fprintf(json,
                     "{\"bench\":\"x5_answer_latency\",\"case\":\"%s\","
                     "\"n\":%lld,\"path\":\"string\",\"batch\":%d,"
                     "\"batches\":%lld,\"ns_per_query\":%.1f,"
                     "\"answer_work_per_query\":%.1f,"
                     "\"hardware_concurrency\":%d}\n",
                     case_name, static_cast<long long>(n), kQueriesPerBatch,
                     string_point.batches, string_point.ns_per_query,
                     string_point.answer_work_per_query,
                     hardware_concurrency);
        json_lines += 2;
      }

      // Admission: digest-handle batches vs per-batch string keys, both on
      // the warm view engine (the comparison isolates the key build).
      const double handle_ns = MeasureAdmissionNsPerBatch(
          &view_eng, case_name, w.data, &*view_handle, w.queries,
          min_ns / 4, max_batches);
      const double string_ns = MeasureAdmissionNsPerBatch(
          &view_eng, case_name, w.data, nullptr, w.queries, min_ns / 4,
          max_batches);
      if (json != nullptr && handle_ns > 0 && string_ns > 0) {
        std::fprintf(json,
                     "{\"bench\":\"x5_answer_latency\",\"case\":\"%s\","
                     "\"n\":%lld,\"metric\":\"admission\",\"batch\":1,"
                     "\"handle_ns_per_batch\":%.1f,"
                     "\"string_key_ns_per_batch\":%.1f,"
                     "\"hardware_concurrency\":%d}\n",
                     case_name, static_cast<long long>(n), handle_ns,
                     string_ns, hardware_concurrency);
        ++json_lines;
      }
    }
  }

  // --- metric=batch: the vectorised kernel layer vs the scalar view loop.
  //
  // Same warm-store steady state, but sweeping the batch size: the kernel
  // engine answers each AnswerBatch call with one answer_view_batch kernel
  // (queries pre-decoded once per batch), the scalar engine has the batch
  // hooks stripped and loops the per-query answer_view. Kernel batches must
  // stay lock-free and key-build-free like every other warm handle batch.
  const std::vector<int> batch_sizes =
      tiny ? std::vector<int>{8, 64} : std::vector<int>{16, 64, 256, 1024};
  const int max_batch = *std::max_element(batch_sizes.begin(),
                                          batch_sizes.end());
  struct BatchCase {
    const char* name;
    int64_t n;
  };
  // The reach closure is O(n^2) bits, so its |D| stays modest; the rest
  // use the large size where per-query overhead dominates visibly.
  const int64_t big = tiny ? (1 << 7) : (1 << 16);
  const std::vector<BatchCase> batch_cases = {
      {"list-membership", big},
      {"cvp-refactorized", big},
      {"connectivity", big},
      {"breadth-depth-search", big},
      {"graph-reachability", tiny ? (1 << 6) : (1 << 10)},
  };

  std::printf("\n%-22s %8s %6s %12s %12s %8s %11s %7s\n", "case", "n",
              "batch", "kernel ns/q", "scalar ns/q", "speedup", "Mq/s/core",
              "B/query");
  std::printf(
      "----------------------------------------------------------------------"
      "----------\n");
  for (const BatchCase& bc : batch_cases) {
    Rng rng(0xba7c4 + static_cast<uint64_t>(bc.n));
    Workload w;
    if (std::strcmp(bc.name, "list-membership") == 0) {
      w = MakeMemberWorkload(bc.n, &rng, max_batch);
    } else if (std::strcmp(bc.name, "cvp-refactorized") == 0) {
      w = MakeGvpWorkload(bc.n, &rng, max_batch);
    } else if (std::strcmp(bc.name, "graph-reachability") == 0) {
      w = MakeReachWorkload(bc.n, &rng, max_batch);
    } else {
      w = MakeGraphWorkload(
          bc.n, &rng, std::strcmp(bc.name, "breadth-depth-search") == 0,
          max_batch);
    }

    engine::QueryEngine kernel_eng;
    engine::QueryEngine scalar_eng;
    engine::BuiltinOptions no_kernels;
    no_kernels.enable_batch_kernels = false;
    if (!engine::RegisterBuiltins(&kernel_eng).ok() ||
        !engine::RegisterBuiltins(&scalar_eng, no_kernels).ok()) {
      return 1;
    }
    auto kernel_handle = kernel_eng.Intern(bc.name, w.data);
    auto scalar_handle = scalar_eng.Intern(bc.name, w.data);
    if (!kernel_handle.ok() || !scalar_handle.ok()) {
      ++failures;
      continue;
    }
    if (!kernel_eng.AnswerBatch(*kernel_handle, w.queries).ok() ||
        !scalar_eng.AnswerBatch(*scalar_handle, w.queries).ok()) {
      ++failures;
      continue;
    }

    for (int batch_size : batch_sizes) {
      const std::vector<std::string> queries(
          w.queries.begin(), w.queries.begin() + batch_size);
      const auto stats_before = kernel_eng.store().stats();
      LatencyPoint kernel_point = MeasureWarm(
          &kernel_eng, *kernel_handle, queries, min_ns, max_batches);
      const auto stats_after = kernel_eng.store().stats();
      if (stats_after.key_builds != stats_before.key_builds ||
          stats_after.locked_hits != stats_before.locked_hits) {
        std::fprintf(stderr,
                     "FAIL: warm kernel batches built keys or took locks\n");
        ++failures;
      }
      if (kernel_point.kernel_batches != kernel_point.batches) {
        std::fprintf(stderr,
                     "FAIL: %s answered %lld of %lld warm batches without "
                     "the kernel\n",
                     bc.name, kernel_point.batches - kernel_point.kernel_batches,
                     kernel_point.batches);
        ++failures;
      }
      LatencyPoint scalar_point = MeasureWarm(
          &scalar_eng, *scalar_handle, queries, min_ns, max_batches);
      const double speedup =
          kernel_point.ns_per_query > 0
              ? scalar_point.ns_per_query / kernel_point.ns_per_query
              : -1;
      const double kernel_qps_per_core =
          kernel_point.ns_per_query > 0 ? 1e9 / kernel_point.ns_per_query
                                        : -1;
      std::printf("%-22s %8lld %6d %12.1f %12.1f %7.1fx %11.1f %7.1f\n",
                  bc.name, static_cast<long long>(bc.n), batch_size,
                  kernel_point.ns_per_query, scalar_point.ns_per_query,
                  speedup, kernel_qps_per_core / 1e6,
                  kernel_point.bytes_per_query);
      if (json != nullptr) {
        std::fprintf(json,
                     "{\"bench\":\"x5_answer_latency\",\"case\":\"%s\","
                     "\"n\":%lld,\"metric\":\"batch\",\"batch\":%d,"
                     "\"path\":\"kernel\",\"batches\":%lld,"
                     "\"ns_per_query\":%.1f,\"qps_per_core\":%.0f,"
                     "\"bytes_per_query\":%.1f,"
                     "\"answer_work_per_query\":%.1f,"
                     "\"hardware_concurrency\":%d,"
                     "\"store\":%s}\n",
                     bc.name, static_cast<long long>(bc.n), batch_size,
                     kernel_point.batches, kernel_point.ns_per_query,
                     kernel_qps_per_core, kernel_point.bytes_per_query,
                     kernel_point.answer_work_per_query,
                     hardware_concurrency,
                     // The whole store-counter blob (the key_builds /
                     // locked_hits lock-free proof included) in one
                     // Stats::ToJson() object instead of picked fields.
                     stats_after.ToJson().c_str());
        const double scalar_qps_per_core =
            scalar_point.ns_per_query > 0 ? 1e9 / scalar_point.ns_per_query
                                          : -1;
        std::fprintf(json,
                     "{\"bench\":\"x5_answer_latency\",\"case\":\"%s\","
                     "\"n\":%lld,\"metric\":\"batch\",\"batch\":%d,"
                     "\"path\":\"view-scalar\",\"batches\":%lld,"
                     "\"ns_per_query\":%.1f,\"qps_per_core\":%.0f,"
                     "\"bytes_per_query\":%.1f,"
                     "\"answer_work_per_query\":%.1f,"
                     "\"hardware_concurrency\":%d}\n",
                     bc.name, static_cast<long long>(bc.n), batch_size,
                     scalar_point.batches, scalar_point.ns_per_query,
                     scalar_qps_per_core, scalar_point.bytes_per_query,
                     scalar_point.answer_work_per_query,
                     hardware_concurrency);
        json_lines += 2;
      }
    }
  }

  // --- metric=sorted: batch-local access-locality scheduling.
  //
  // AnswerOptions::sort_probes sorts a large batch's decoded queries by
  // probe address before the kernel call and unpermutes the answers after:
  // random gathers over a big view become near-sequential sweeps. Only
  // batches >= kSortProbesMinBatch engage the sort (below it, the sort
  // costs more than the locality buys), so this section sweeps from the
  // threshold up, arrival-order vs sorted on the same warm handle.
  const auto min_sorted =
      static_cast<int>(engine::AnswerOptions::kSortProbesMinBatch);
  const std::vector<int> sorted_batches =
      tiny ? std::vector<int>{min_sorted}
           : std::vector<int>{min_sorted, 4 * min_sorted};
  const int max_sorted = *std::max_element(sorted_batches.begin(),
                                           sorted_batches.end());
  const std::vector<BatchCase> sorted_cases = {
      {"list-membership", big},
      {"connectivity", big},
      {"breadth-depth-search", big},
  };

  std::printf("\n%-22s %8s %6s %12s %12s %8s\n", "case", "n", "batch",
              "arrival ns/q", "sorted ns/q", "speedup");
  std::printf(
      "----------------------------------------------------------------------"
      "\n");
  for (const BatchCase& sc : sorted_cases) {
    Rng rng(0x50e7ed + static_cast<uint64_t>(sc.n));
    Workload w;
    if (std::strcmp(sc.name, "list-membership") == 0) {
      w = MakeMemberWorkload(sc.n, &rng, max_sorted);
    } else {
      w = MakeGraphWorkload(
          sc.n, &rng, std::strcmp(sc.name, "breadth-depth-search") == 0,
          max_sorted);
    }
    engine::QueryEngine eng;
    if (!engine::RegisterBuiltins(&eng).ok()) return 1;
    auto handle = eng.Intern(sc.name, w.data);
    if (!handle.ok() || !eng.AnswerBatch(*handle, w.queries).ok()) {
      ++failures;
      continue;
    }

    for (int batch_size : sorted_batches) {
      const std::vector<std::string> queries(
          w.queries.begin(), w.queries.begin() + batch_size);
      LatencyPoint arrival_point =
          MeasureWarm(&eng, *handle, queries, min_ns, max_batches);
      engine::AnswerOptions sort_options;
      sort_options.sort_probes = true;
      LatencyPoint sorted_point = MeasureWarm(
          &eng, *handle, queries, min_ns, max_batches, sort_options);
      if (sorted_point.kernel_batches != sorted_point.batches) {
        std::fprintf(stderr,
                     "FAIL: %s sorted batches fell off the kernel path\n",
                     sc.name);
        ++failures;
      }
      const double speedup =
          sorted_point.ns_per_query > 0
              ? arrival_point.ns_per_query / sorted_point.ns_per_query
              : -1;
      std::printf("%-22s %8lld %6d %12.1f %12.1f %7.2fx\n", sc.name,
                  static_cast<long long>(sc.n), batch_size,
                  arrival_point.ns_per_query, sorted_point.ns_per_query,
                  speedup);
      if (json != nullptr) {
        std::fprintf(json,
                     "{\"bench\":\"x5_answer_latency\",\"case\":\"%s\","
                     "\"n\":%lld,\"metric\":\"sorted\",\"batch\":%d,"
                     "\"order\":\"arrival\",\"batches\":%lld,"
                     "\"ns_per_query\":%.1f,\"bytes_per_query\":%.1f,"
                     "\"hardware_concurrency\":%d}\n",
                     sc.name, static_cast<long long>(sc.n), batch_size,
                     arrival_point.batches, arrival_point.ns_per_query,
                     arrival_point.bytes_per_query, hardware_concurrency);
        std::fprintf(json,
                     "{\"bench\":\"x5_answer_latency\",\"case\":\"%s\","
                     "\"n\":%lld,\"metric\":\"sorted\",\"batch\":%d,"
                     "\"order\":\"sorted\",\"batches\":%lld,"
                     "\"ns_per_query\":%.1f,\"bytes_per_query\":%.1f,"
                     "\"hardware_concurrency\":%d}\n",
                     sc.name, static_cast<long long>(sc.n), batch_size,
                     sorted_point.batches, sorted_point.ns_per_query,
                     sorted_point.bytes_per_query, hardware_concurrency);
        json_lines += 2;
      }
    }
  }

  if (json != nullptr) {
    std::fclose(json);
    std::printf("\n(appended %zu JSON lines to %s)\n", json_lines, json_path);
  }
  std::printf(
      "\nReading: view ns/query stays flat as |D| doubles (the decoded-view\n"
      "layer probes a memoized typed structure); string ns/query tracks |D|\n"
      "(every warm query re-decodes the whole Π(D) payload). The admission\n"
      "lines show the per-batch O(|D|) key hash the digest handles delete.\n"
      "The batch table shows the vectorised kernels amortizing dispatch,\n"
      "parsing and metering to once per batch: kernel ns/query should beat\n"
      "the scalar view loop from batch >= 64, with bytes/query exposing the\n"
      "remaining gap to the memory's random-access floor. The sorted table\n"
      "shows probe-address ordering turning those random gathers into\n"
      "near-sequential ones once the batch is big enough to amortize the\n"
      "sort.\n");
  return failures == 0 ? 0 : 1;
}
