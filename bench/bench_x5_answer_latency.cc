// X5 — warm answer-path latency: wall-clock ns/query vs |D|.
//
// The paper's bound makes a warm query O(polylog |D|) in *charged* cost,
// but a serving layer only earns it in wall-clock terms if nothing on the
// warm path re-touches the whole data part. This harness measures exactly
// that, per view-enabled builtin, on a warm PreparedStore:
//
//   * path=view   — the decoded Π-view layer (PiWitness::deserialize /
//     answer_view, memoized per store entry): expected *flat* ns/query
//     as |D| doubles;
//   * path=string — the same witnesses with views stripped
//     (BuiltinOptions::enable_views = false), so every query re-decodes
//     the Σ*-encoded Π(D): expected ns/query growing linearly in |D|;
//   * metric=admission — per-batch overhead of the string-keyed
//     AnswerBatch (O(|D|) key copy + hash per batch) against the
//     digest-handle AnswerBatch (QueryEngine::Intern pays it once); the
//     handle loop must leave PreparedStore::Stats::key_builds untouched,
//     checked here and enforced again in engine_test.
//
// One JSON line per measurement is appended to BENCH_x5_answer_latency.json
// (or argv[1]) in the f2_landscape trajectory convention. A trailing
// "tiny" argument shrinks every size so CI can smoke the emitters.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/problems.h"
#include "engine/builtins.h"
#include "engine/engine.h"
#include "graph/generators.h"

namespace {

using pitract::Rng;
namespace core = pitract::core;
namespace engine = pitract::engine;

constexpr int kQueriesPerBatch = 64;

struct Workload {
  std::string data;
  std::vector<std::string> queries;  // kQueriesPerBatch warm-path queries
};

Workload MakeMemberWorkload(int64_t n, Rng* rng) {
  const int64_t universe = 4 * n;
  std::vector<int64_t> list;
  list.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    list.push_back(static_cast<int64_t>(
        rng->NextBelow(static_cast<uint64_t>(universe))));
  }
  Workload w;
  w.data = core::MemberFactorization()
               .pi1(core::MakeMemberInstance(universe, list, 0))
               .value();
  for (int i = 0; i < kQueriesPerBatch; ++i) {
    w.queries.push_back(std::to_string(
        rng->NextBelow(static_cast<uint64_t>(universe))));
  }
  return w;
}

Workload MakeGraphWorkload(int64_t n, Rng* rng, bool bds) {
  auto g = pitract::graph::ErdosRenyi(static_cast<pitract::graph::NodeId>(n),
                                      2 * n, /*directed=*/false, rng);
  Workload w;
  w.data = bds ? core::BdsFactorization()
                     .pi1(core::MakeBdsInstance(g, 0, 0))
                     .value()
               : core::ConnFactorization()
                     .pi1(core::MakeConnInstance(g, 0, 0))
                     .value();
  for (int i = 0; i < kQueriesPerBatch; ++i) {
    const auto u = rng->NextBelow(static_cast<uint64_t>(n));
    const auto v = rng->NextBelow(static_cast<uint64_t>(n));
    w.queries.push_back(std::to_string(u) + "#" + std::to_string(v));
  }
  return w;
}

struct LatencyPoint {
  double ns_per_query = -1;
  double answer_work_per_query = -1;
  long long batches = 0;
};

/// Warm-store steady state: answer the same batch until `min_ns` elapsed
/// (at least twice), so fast paths average over many batches while the
/// slow string path at large |D| still terminates.
LatencyPoint MeasureWarm(engine::QueryEngine* eng,
                         const engine::DataHandle& handle,
                         const std::vector<std::string>& queries,
                         long long min_ns, long long max_batches) {
  LatencyPoint point;
  long long answered = 0;
  long long answer_work = 0;
  pitract_bench::WallTimer timer;
  while ((timer.ElapsedNs() < min_ns || point.batches < 2) &&
         point.batches < max_batches) {
    auto batch = eng->AnswerBatch(handle, queries);
    if (!batch.ok()) {
      std::fprintf(stderr, "warm batch failed: %s\n",
                   batch.status().ToString().c_str());
      return point;
    }
    ++point.batches;
    answered += static_cast<long long>(batch->answers.size());
    answer_work += batch->answer_cost.work;
  }
  const long long total_ns = timer.ElapsedNs();
  if (answered > 0) {
    point.ns_per_query = static_cast<double>(total_ns) / answered;
    point.answer_work_per_query =
        static_cast<double>(answer_work) / answered;
  }
  return point;
}

/// Per-batch admission overhead on a warm store: single-query batches, so
/// the key build dominates the string-keyed flavor at large |D|.
double MeasureAdmissionNsPerBatch(engine::QueryEngine* eng,
                                  const std::string& problem,
                                  const std::string& data,
                                  const engine::DataHandle* handle,
                                  const std::vector<std::string>& queries,
                                  long long min_ns, long long max_batches) {
  std::vector<std::string> one{queries.front()};
  long long batches = 0;
  pitract_bench::WallTimer timer;
  while ((timer.ElapsedNs() < min_ns || batches < 2) &&
         batches < max_batches) {
    auto batch = handle != nullptr ? eng->AnswerBatch(*handle, one)
                                   : eng->AnswerBatch(problem, data, one);
    if (!batch.ok()) return -1;
    ++batches;
  }
  return static_cast<double>(timer.ElapsedNs()) /
         static_cast<double>(batches);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "X5 | Warm answer-path latency: wall-clock ns/query vs |D| on a warm\n"
      "     store. path=view answers through memoized decoded Π-views and\n"
      "     must stay flat in |D|; path=string re-decodes Π(D) per query\n"
      "     and grows with |D|. metric=admission contrasts per-batch\n"
      "     O(|D|) key hashing (string keys) with digest handles (zero).\n\n");
  const char* json_path = "BENCH_x5_answer_latency.json";
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "tiny") == 0) {
      tiny = true;
    } else {
      json_path = argv[i];
    }
  }
  std::FILE* json = std::fopen(json_path, "a");
  if (json == nullptr) {
    std::fprintf(stderr,
                 "warning: cannot open %s for append; JSON lines skipped\n",
                 json_path);
  }
  const long long min_ns = tiny ? 2'000'000 : 50'000'000;
  const long long max_batches = tiny ? 8 : 4096;
  const std::vector<int64_t> sizes =
      tiny ? std::vector<int64_t>{1 << 7}
           : std::vector<int64_t>{1 << 10, 1 << 13, 1 << 16};
  const char* kCases[] = {"list-membership", "connectivity",
                          "breadth-depth-search"};

  size_t json_lines = 0;
  int failures = 0;
  std::printf("%-22s %8s %14s %14s %9s\n", "case", "n", "view ns/q",
              "string ns/q", "speedup");
  std::printf(
      "----------------------------------------------------------------------"
      "\n");
  for (const char* case_name : kCases) {
    for (int64_t n : sizes) {
      Rng rng(0x9e05 + static_cast<uint64_t>(n));
      Workload w;
      if (std::strcmp(case_name, "list-membership") == 0) {
        w = MakeMemberWorkload(n, &rng);
      } else {
        w = MakeGraphWorkload(
            n, &rng,
            std::strcmp(case_name, "breadth-depth-search") == 0);
      }

      // Two engines over identical data: decoded views on vs stripped.
      engine::QueryEngine view_eng;
      engine::QueryEngine string_eng;
      engine::BuiltinOptions no_views;
      no_views.enable_views = false;
      if (!engine::RegisterBuiltins(&view_eng).ok() ||
          !engine::RegisterBuiltins(&string_eng, no_views).ok()) {
        return 1;
      }
      auto view_handle = view_eng.Intern(case_name, w.data);
      auto string_handle = string_eng.Intern(case_name, w.data);
      if (!view_handle.ok() || !string_handle.ok()) {
        ++failures;
        continue;
      }
      // Warm both stores: one miss each, Π runs once per engine.
      if (!view_eng.AnswerBatch(*view_handle, w.queries).ok() ||
          !string_eng.AnswerBatch(*string_handle, w.queries).ok()) {
        ++failures;
        continue;
      }

      const auto key_builds_before = view_eng.store().stats().key_builds;
      LatencyPoint view_point =
          MeasureWarm(&view_eng, *view_handle, w.queries, min_ns,
                      max_batches);
      if (view_eng.store().stats().key_builds != key_builds_before) {
        std::fprintf(stderr,
                     "FAIL: warm handle batches built O(|D|) keys\n");
        ++failures;
      }
      LatencyPoint string_point =
          MeasureWarm(&string_eng, *string_handle, w.queries, min_ns,
                      max_batches);
      const double speedup =
          view_point.ns_per_query > 0
              ? string_point.ns_per_query / view_point.ns_per_query
              : -1;
      std::printf("%-22s %8lld %14.1f %14.1f %8.1fx\n", case_name,
                  static_cast<long long>(n), view_point.ns_per_query,
                  string_point.ns_per_query, speedup);
      if (json != nullptr) {
        std::fprintf(json,
                     "{\"bench\":\"x5_answer_latency\",\"case\":\"%s\","
                     "\"n\":%lld,\"path\":\"view\",\"batches\":%lld,"
                     "\"ns_per_query\":%.1f,\"answer_work_per_query\":%.1f}"
                     "\n",
                     case_name, static_cast<long long>(n), view_point.batches,
                     view_point.ns_per_query,
                     view_point.answer_work_per_query);
        std::fprintf(json,
                     "{\"bench\":\"x5_answer_latency\",\"case\":\"%s\","
                     "\"n\":%lld,\"path\":\"string\",\"batches\":%lld,"
                     "\"ns_per_query\":%.1f,\"answer_work_per_query\":%.1f}"
                     "\n",
                     case_name, static_cast<long long>(n),
                     string_point.batches, string_point.ns_per_query,
                     string_point.answer_work_per_query);
        json_lines += 2;
      }

      // Admission: digest-handle batches vs per-batch string keys, both on
      // the warm view engine (the comparison isolates the key build).
      const double handle_ns = MeasureAdmissionNsPerBatch(
          &view_eng, case_name, w.data, &*view_handle, w.queries,
          min_ns / 4, max_batches);
      const double string_ns = MeasureAdmissionNsPerBatch(
          &view_eng, case_name, w.data, nullptr, w.queries, min_ns / 4,
          max_batches);
      if (json != nullptr && handle_ns > 0 && string_ns > 0) {
        std::fprintf(json,
                     "{\"bench\":\"x5_answer_latency\",\"case\":\"%s\","
                     "\"n\":%lld,\"metric\":\"admission\","
                     "\"handle_ns_per_batch\":%.1f,"
                     "\"string_key_ns_per_batch\":%.1f}\n",
                     case_name, static_cast<long long>(n), handle_ns,
                     string_ns);
        ++json_lines;
      }
    }
  }

  if (json != nullptr) {
    std::fclose(json);
    std::printf("\n(appended %zu JSON lines to %s)\n", json_lines, json_path);
  }
  std::printf(
      "\nReading: view ns/query stays flat as |D| doubles (the decoded-view\n"
      "layer probes a memoized typed structure); string ns/query tracks |D|\n"
      "(every warm query re-decodes the whole Π(D) payload). The admission\n"
      "lines show the per-batch O(|D|) key hash the digest handles delete.\n");
  return failures == 0 ? 0 : 1;
}
