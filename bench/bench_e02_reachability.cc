// E02 — Example 3: graph reachability (GAP).
//
// Paper claim: "we may precompute a matrix that records the reachability
// between all pairs of nodes in G, and then answer all queries on G in
// O(1) time". Expected shape: per-query BFS grows with n + m; matrix
// probes are flat; the PTIME preprocessing pays off across a query batch.

#include "bench_util.h"
#include "common/rng.h"
#include "graph/algos.h"
#include "graph/generators.h"
#include "reach/reachability.h"

namespace {

using pitract::CostMeter;
using pitract::Rng;
namespace graph = pitract::graph;

graph::Graph MakeGraph(int64_t n) {
  Rng rng(42);
  return graph::ErdosRenyi(static_cast<graph::NodeId>(n), 4 * n,
                           /*directed=*/true, &rng);
}

void BM_BfsPerQuery(benchmark::State& state) {
  auto g = MakeGraph(state.range(0));
  Rng rng(7);
  CostMeter meter;
  for (auto _ : state) {
    auto u = static_cast<graph::NodeId>(
        rng.NextBelow(static_cast<uint64_t>(g.num_nodes())));
    auto v = static_cast<graph::NodeId>(
        rng.NextBelow(static_cast<uint64_t>(g.num_nodes())));
    benchmark::DoNotOptimize(graph::BfsReachable(g, u, v, &meter));
  }
  state.counters["model_work_per_query"] =
      static_cast<double>(meter.work()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_BfsPerQuery)->RangeMultiplier(2)->Range(1 << 7, 1 << 11);

void BM_MatrixProbe(benchmark::State& state) {
  auto g = MakeGraph(state.range(0));
  auto matrix = pitract::reach::ReachabilityMatrix::Build(g);
  Rng rng(7);
  CostMeter meter;
  for (auto _ : state) {
    auto u = static_cast<graph::NodeId>(
        rng.NextBelow(static_cast<uint64_t>(g.num_nodes())));
    auto v = static_cast<graph::NodeId>(
        rng.NextBelow(static_cast<uint64_t>(g.num_nodes())));
    benchmark::DoNotOptimize(matrix.Reachable(u, v, &meter));
  }
  state.counters["model_work_per_query"] =
      static_cast<double>(meter.work()) /
      static_cast<double>(state.iterations());
  state.counters["matrix_bytes"] =
      static_cast<double>(matrix.EstimateBytes());
}
BENCHMARK(BM_MatrixProbe)->RangeMultiplier(2)->Range(1 << 7, 1 << 11);

void BM_Preprocess_Closure(benchmark::State& state) {
  auto g = MakeGraph(state.range(0));
  for (auto _ : state) {
    auto matrix = pitract::reach::ReachabilityMatrix::Build(g);
    benchmark::DoNotOptimize(matrix.NumReachablePairs());
  }
}
BENCHMARK(BM_Preprocess_Closure)->RangeMultiplier(4)->Range(1 << 7, 1 << 11);

}  // namespace

PITRACT_BENCH_MAIN(
    "E02 | Example 3: reachability queries. Expected shape: BFS per query\n"
    "      grows ~ (n + m); matrix probes are O(1) after PTIME closure.")
