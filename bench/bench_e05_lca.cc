// E05 — Section 4(4): lowest common ancestors (Bender et al. [5]).
//
// Paper claim: trees/DAGs can be preprocessed (Euler tour + RMQ for trees,
// all-pairs tables for DAGs, the latter in O(|G|^3)) so that LCA(u, v)
// answers in O(1). Expected shape: naive upward walks grow with depth;
// preprocessed probes are flat.

#include "bench_util.h"
#include "common/rng.h"
#include "graph/generators.h"
#include "lca/dag_lca.h"
#include "lca/tree_lca.h"

namespace {

using pitract::CostMeter;
using pitract::Rng;
namespace graph = pitract::graph;
namespace lca = pitract::lca;

std::vector<graph::NodeId> DeepTree(int64_t n) {
  Rng rng(42);
  std::vector<graph::NodeId> parent(static_cast<size_t>(n), -1);
  for (int64_t i = 1; i < n; ++i) {
    parent[static_cast<size_t>(i)] =
        rng.NextBool(0.9)
            ? static_cast<graph::NodeId>(i - 1)
            : static_cast<graph::NodeId>(rng.NextBelow(static_cast<uint64_t>(i)));
  }
  return parent;
}

void BM_TreeNaiveWalk(benchmark::State& state) {
  const int64_t n = state.range(0);
  auto naive = lca::NaiveTreeLca::Build(DeepTree(n));
  Rng rng(7);
  CostMeter meter;
  for (auto _ : state) {
    auto u = static_cast<graph::NodeId>(rng.NextBelow(static_cast<uint64_t>(n)));
    auto v = static_cast<graph::NodeId>(rng.NextBelow(static_cast<uint64_t>(n)));
    benchmark::DoNotOptimize(naive->Query(u, v, &meter));
  }
  state.counters["model_work_per_query"] =
      static_cast<double>(meter.work()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_TreeNaiveWalk)->RangeMultiplier(4)->Range(1 << 10, 1 << 18);

void BM_TreeEulerRmq(benchmark::State& state) {
  const int64_t n = state.range(0);
  auto euler = lca::EulerTourLca::Build(DeepTree(n), nullptr);
  Rng rng(7);
  CostMeter meter;
  for (auto _ : state) {
    auto u = static_cast<graph::NodeId>(rng.NextBelow(static_cast<uint64_t>(n)));
    auto v = static_cast<graph::NodeId>(rng.NextBelow(static_cast<uint64_t>(n)));
    benchmark::DoNotOptimize(euler->Query(u, v, &meter));
  }
  state.counters["model_work_per_query"] =
      static_cast<double>(meter.work()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_TreeEulerRmq)->RangeMultiplier(4)->Range(1 << 10, 1 << 18);

void BM_DagOnline(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  Rng rng(42);
  graph::Graph g = graph::RandomDag(n, 3 * n, &rng);
  auto online = lca::OnlineDagLca::Build(g);
  CostMeter meter;
  for (auto _ : state) {
    auto u = static_cast<graph::NodeId>(rng.NextBelow(static_cast<uint64_t>(n)));
    auto v = static_cast<graph::NodeId>(rng.NextBelow(static_cast<uint64_t>(n)));
    benchmark::DoNotOptimize(online->Query(u, v, &meter));
  }
  state.counters["model_work_per_query"] =
      static_cast<double>(meter.work()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_DagOnline)->RangeMultiplier(2)->Range(1 << 6, 1 << 9);

void BM_DagAllPairsProbe(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  Rng rng(42);
  graph::Graph g = graph::RandomDag(n, 3 * n, &rng);
  auto all_pairs = lca::AllPairsDagLca::Build(g, nullptr);
  CostMeter meter;
  for (auto _ : state) {
    auto u = static_cast<graph::NodeId>(rng.NextBelow(static_cast<uint64_t>(n)));
    auto v = static_cast<graph::NodeId>(rng.NextBelow(static_cast<uint64_t>(n)));
    benchmark::DoNotOptimize(all_pairs->Query(u, v, &meter));
  }
  state.counters["model_work_per_query"] =
      static_cast<double>(meter.work()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_DagAllPairsProbe)->RangeMultiplier(2)->Range(1 << 6, 1 << 9);

void BM_Preprocess_DagAllPairs(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  Rng rng(42);
  graph::Graph g = graph::RandomDag(n, 3 * n, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lca::AllPairsDagLca::Build(g, nullptr));
  }
}
BENCHMARK(BM_Preprocess_DagAllPairs)->RangeMultiplier(2)->Range(1 << 6, 1 << 9);

}  // namespace

PITRACT_BENCH_MAIN(
    "E05 | Section 4(4): LCA. Expected shape: naive tree walks ~ depth,\n"
    "      Euler-tour+RMQ probes O(1); DAG all-pairs preprocessing is heavy\n"
    "      PTIME but buys O(1) probes.")
