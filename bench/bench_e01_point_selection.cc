// E01 — Example 1 / Section 4(1): point selection.
//
// Paper claim: a naive evaluation scans D (1 PB at 6 GB/s = 1.9 days);
// after building a B+-tree in PTIME, every point query answers in
// O(log |D|) ("seconds"). Expected shape: scan cost grows linearly in n,
// probe cost stays flat (log n); the gap widens without bound.

#include <algorithm>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "index/bptree.h"
#include "storage/generator.h"

namespace {

using pitract::CostMeter;
using pitract::Rng;

pitract::storage::Relation MakeRelation(int64_t n) {
  Rng rng(42);
  pitract::storage::RelationGenOptions options;
  options.num_rows = n;
  options.num_columns = 1;
  options.value_range = 2 * n;
  return pitract::storage::GenerateIntRelation(options, &rng);
}

void BM_LinearScan(benchmark::State& state) {
  const int64_t n = state.range(0);
  auto relation = MakeRelation(n);
  Rng rng(7);
  CostMeter meter;
  for (auto _ : state) {
    int64_t needle =
        static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(2 * n)));
    auto hit = relation.ScanPointExists(0, needle, &meter);
    benchmark::DoNotOptimize(hit);
  }
  state.counters["model_work_per_query"] = static_cast<double>(meter.work()) /
                                           static_cast<double>(state.iterations());
  state.counters["bytes_per_query"] = static_cast<double>(meter.bytes_read()) /
                                      static_cast<double>(state.iterations());
}
BENCHMARK(BM_LinearScan)->RangeMultiplier(4)->Range(1 << 14, 1 << 22);

void BM_BPlusTreeProbe(benchmark::State& state) {
  const int64_t n = state.range(0);
  auto relation = MakeRelation(n);
  auto column = relation.Int64Column(0);
  std::vector<std::pair<int64_t, int64_t>> entries;
  for (size_t row = 0; row < column->size(); ++row) {
    entries.emplace_back((*column)[row], static_cast<int64_t>(row));
  }
  std::sort(entries.begin(), entries.end());
  pitract::index::BPlusTree tree;
  if (!tree.BulkLoad(entries).ok()) {
    state.SkipWithError("bulk load failed");
    return;
  }
  Rng rng(7);
  CostMeter meter;
  for (auto _ : state) {
    int64_t needle =
        static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(2 * n)));
    bool hit = tree.PointExists(needle, &meter);
    benchmark::DoNotOptimize(hit);
  }
  state.counters["model_work_per_query"] = static_cast<double>(meter.work()) /
                                           static_cast<double>(state.iterations());
  state.counters["bytes_per_query"] = static_cast<double>(meter.bytes_read()) /
                                      static_cast<double>(state.iterations());
  state.counters["tree_height"] = tree.Stats().height;
}
BENCHMARK(BM_BPlusTreeProbe)->RangeMultiplier(4)->Range(1 << 14, 1 << 22);

void BM_Preprocess_BulkLoad(benchmark::State& state) {
  const int64_t n = state.range(0);
  auto relation = MakeRelation(n);
  auto column = relation.Int64Column(0);
  std::vector<std::pair<int64_t, int64_t>> entries;
  for (size_t row = 0; row < column->size(); ++row) {
    entries.emplace_back((*column)[row], static_cast<int64_t>(row));
  }
  std::sort(entries.begin(), entries.end());
  for (auto _ : state) {
    pitract::index::BPlusTree tree;
    benchmark::DoNotOptimize(tree.BulkLoad(entries));
  }
}
BENCHMARK(BM_Preprocess_BulkLoad)->RangeMultiplier(16)->Range(1 << 14, 1 << 22);

}  // namespace

PITRACT_BENCH_MAIN(
    "E01 | Example 1: point selection. Expected shape: scan work ~ n,\n"
    "      B+-tree probe work ~ log n. Paper model: 1 PB / 6 GB/s = 166666 s\n"
    "      (1.9 days) per scan vs seconds with the index.")
