#include "rmq/rmq.h"

#include <algorithm>
#include <cassert>

#include "ncsim/ncsim.h"

namespace pitract {
namespace rmq {

namespace {

Status CheckRange(int64_t i, int64_t j, int64_t n) {
  if (i < 0 || j >= n || i > j) {
    return Status::OutOfRange("bad RMQ range [" + std::to_string(i) + ", " +
                              std::to_string(j) + "] for n=" +
                              std::to_string(n));
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// NaiveRmq
// ---------------------------------------------------------------------------

Result<int64_t> NaiveRmq::Query(int64_t i, int64_t j, CostMeter* meter) const {
  PITRACT_RETURN_IF_ERROR(CheckRange(i, j, size()));
  int64_t best = i;
  for (int64_t k = i + 1; k <= j; ++k) {
    if (values_[static_cast<size_t>(k)] < values_[static_cast<size_t>(best)]) {
      best = k;
    }
  }
  if (meter != nullptr) {
    meter->AddSerial(j - i + 1);
    meter->AddBytesRead((j - i + 1) * static_cast<int64_t>(sizeof(int64_t)));
  }
  return best;
}

// ---------------------------------------------------------------------------
// SparseTableRmq
// ---------------------------------------------------------------------------

SparseTableRmq SparseTableRmq::Build(std::vector<int64_t> values,
                                     CostMeter* meter) {
  SparseTableRmq rmq;
  rmq.values_ = std::move(values);
  const int64_t n = rmq.size();
  rmq.floor_log2_.assign(static_cast<size_t>(n) + 1, 0);
  for (int64_t len = 2; len <= n; ++len) {
    rmq.floor_log2_[static_cast<size_t>(len)] =
        rmq.floor_log2_[static_cast<size_t>(len / 2)] + 1;
  }
  if (n == 0) return rmq;

  rmq.table_.emplace_back(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) rmq.table_[0][static_cast<size_t>(i)] = i;
  int64_t total_cells = n;
  for (int k = 1; (int64_t{1} << k) <= n; ++k) {
    const int64_t len = int64_t{1} << k;
    const int64_t half = len >> 1;
    const int64_t rows = n - len + 1;
    std::vector<int64_t> row(static_cast<size_t>(rows));
    for (int64_t i = 0; i < rows; ++i) {
      int64_t a = rmq.table_[static_cast<size_t>(k - 1)][static_cast<size_t>(i)];
      int64_t b = rmq.table_[static_cast<size_t>(k - 1)]
                            [static_cast<size_t>(i + half)];
      // Leftmost tie-break: keep `a` unless `b` is strictly smaller.
      row[static_cast<size_t>(i)] =
          rmq.values_[static_cast<size_t>(b)] <
                  rmq.values_[static_cast<size_t>(a)]
              ? b
              : a;
    }
    total_cells += rows;
    rmq.table_.push_back(std::move(row));
  }
  if (meter != nullptr) {
    meter->AddSerial(total_cells);
    meter->AddBytesWritten(total_cells *
                           static_cast<int64_t>(sizeof(int64_t)));
  }
  return rmq;
}

Result<int64_t> SparseTableRmq::Query(int64_t i, int64_t j,
                                      CostMeter* meter) const {
  PITRACT_RETURN_IF_ERROR(CheckRange(i, j, size()));
  const int64_t len = j - i + 1;
  const int k = floor_log2_[static_cast<size_t>(len)];
  const int64_t a = table_[static_cast<size_t>(k)][static_cast<size_t>(i)];
  const int64_t b = table_[static_cast<size_t>(k)]
                          [static_cast<size_t>(j - (int64_t{1} << k) + 1)];
  if (meter != nullptr) {
    meter->AddSerial(4);
    meter->AddBytesRead(4 * static_cast<int64_t>(sizeof(int64_t)));
  }
  return values_[static_cast<size_t>(b)] < values_[static_cast<size_t>(a)] ? b
                                                                           : a;
}

int64_t SparseTableRmq::EstimateBytes() const {
  int64_t cells = 0;
  for (const auto& row : table_) cells += static_cast<int64_t>(row.size());
  return cells * static_cast<int64_t>(sizeof(int64_t));
}

// ---------------------------------------------------------------------------
// BlockRmq (Fischer–Heun)
// ---------------------------------------------------------------------------

uint32_t BlockRmq::Signature(const std::vector<int64_t>& values, int64_t lo,
                             int64_t hi) {
  // Simulate the Cartesian-tree stack; emit 1 per push, 0 per pop. Equal
  // push/pop words <=> equal tree shapes <=> identical range-argmin
  // structure (Fischer–Heun).
  uint32_t sig = 0;
  int bit = 0;
  std::vector<int64_t> stack;
  for (int64_t k = lo; k < hi; ++k) {
    while (!stack.empty() && stack.back() > values[static_cast<size_t>(k)]) {
      stack.pop_back();
      ++bit;  // append 0
    }
    stack.push_back(values[static_cast<size_t>(k)]);
    sig |= uint32_t{1} << bit;
    ++bit;
  }
  return sig;
}

BlockRmq BlockRmq::Build(std::vector<int64_t> values, CostMeter* meter) {
  BlockRmq rmq;
  rmq.values_ = std::move(values);
  const int64_t n = rmq.size();
  int b = static_cast<int>(ncsim::CeilLog2(n < 2 ? 2 : n) / 4);
  if (b < 1) b = 1;
  if (b > 12) b = 12;  // Signatures must fit the 32-bit key.
  rmq.block_size_ = b;
  rmq.num_blocks_ = n == 0 ? 0 : (n + b - 1) / b;

  int64_t work = n;
  std::vector<int64_t> block_min_values;
  block_min_values.reserve(static_cast<size_t>(rmq.num_blocks_));
  rmq.block_min_index_.reserve(static_cast<size_t>(rmq.num_blocks_));
  rmq.block_signature_.reserve(static_cast<size_t>(rmq.num_blocks_));

  for (int64_t blk = 0; blk < rmq.num_blocks_; ++blk) {
    const int64_t lo = blk * b;
    const int64_t hi = std::min<int64_t>(lo + b, n);
    const int len = static_cast<int>(hi - lo);
    const uint32_t key =
        (Signature(rmq.values_, lo, hi) << 5) | static_cast<uint32_t>(len);
    rmq.block_signature_.push_back(key);
    auto [it, inserted] = rmq.in_block_tables_.try_emplace(key);
    if (inserted) {
      // Materialize the len x len argmin table from this representative.
      auto& table = it->second;
      table.assign(static_cast<size_t>(len) * static_cast<size_t>(len), 0);
      for (int qi = 0; qi < len; ++qi) {
        int best = qi;
        for (int qj = qi; qj < len; ++qj) {
          if (rmq.values_[static_cast<size_t>(lo + qj)] <
              rmq.values_[static_cast<size_t>(lo + best)]) {
            best = qj;
          }
          table[static_cast<size_t>(qi * len + qj)] =
              static_cast<int8_t>(best);
        }
      }
      work += len * len;
    }
    // Block minimum for the spanning sparse table.
    int64_t best = lo;
    for (int64_t k = lo + 1; k < hi; ++k) {
      if (rmq.values_[static_cast<size_t>(k)] <
          rmq.values_[static_cast<size_t>(best)]) {
        best = k;
      }
    }
    block_min_values.push_back(rmq.values_[static_cast<size_t>(best)]);
    rmq.block_min_index_.push_back(best);
  }

  rmq.block_mins_ = SparseTableRmq::Build(std::move(block_min_values), nullptr);
  work += rmq.num_blocks_ *
          (ncsim::CeilLog2(rmq.num_blocks_ < 1 ? 1 : rmq.num_blocks_) + 1);
  if (meter != nullptr) {
    meter->AddSerial(work);
    meter->AddBytesWritten(work);
  }
  return rmq;
}

Result<int64_t> BlockRmq::InBlockQuery(int64_t block, int64_t i, int64_t j,
                                       CostMeter* meter) const {
  const int64_t lo = block * block_size_;
  const int64_t hi = std::min<int64_t>(lo + block_size_, size());
  const int len = static_cast<int>(hi - lo);
  const auto it = in_block_tables_.find(block_signature_[static_cast<size_t>(block)]);
  if (it == in_block_tables_.end()) {
    return Status::Internal("missing in-block table");
  }
  if (meter != nullptr) meter->AddSerial(2);
  return lo + it->second[static_cast<size_t>(i * len + j)];
}

Result<int64_t> BlockRmq::Query(int64_t i, int64_t j, CostMeter* meter) const {
  PITRACT_RETURN_IF_ERROR(CheckRange(i, j, size()));
  const int64_t bi = i / block_size_;
  const int64_t bj = j / block_size_;
  if (bi == bj) {
    return InBlockQuery(bi, i % block_size_, j % block_size_, meter);
  }
  // Suffix of bi.
  const int64_t bi_hi = std::min<int64_t>((bi + 1) * block_size_, size());
  PITRACT_ASSIGN_OR_RETURN(
      int64_t best,
      InBlockQuery(bi, i % block_size_, (bi_hi - 1) % block_size_, meter));
  // Whole blocks strictly between.
  if (bi + 1 <= bj - 1) {
    PITRACT_ASSIGN_OR_RETURN(int64_t min_block,
                             block_mins_.Query(bi + 1, bj - 1, meter));
    const int64_t mid = block_min_index_[static_cast<size_t>(min_block)];
    if (values_[static_cast<size_t>(mid)] < values_[static_cast<size_t>(best)]) {
      best = mid;
    }
  }
  // Prefix of bj.
  PITRACT_ASSIGN_OR_RETURN(int64_t tail,
                           InBlockQuery(bj, 0, j % block_size_, meter));
  if (values_[static_cast<size_t>(tail)] < values_[static_cast<size_t>(best)]) {
    best = tail;
  }
  if (meter != nullptr) meter->AddSerial(4);
  return best;
}

}  // namespace rmq
}  // namespace pitract
