#ifndef PITRACT_RMQ_RMQ_H_
#define PITRACT_RMQ_RMQ_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/cost_meter.h"
#include "common/result.h"

namespace pitract {
namespace rmq {

/// Range-minimum queries on a static array (Section 4(3), citing
/// Fischer–Heun [18]): RMQ_A(i, j) = position of the (leftmost) minimum of
/// A[i..j], inclusive. Three implementations with one contract:
///
///   * NaiveRmq      — no preprocessing, O(j - i) per query (the baseline);
///   * SparseTableRmq— O(n log n) preprocessing, O(1) per query;
///   * BlockRmq      — Fischer–Heun block decomposition: O(n) preprocessing
///                     (Cartesian-tree signatures for in-block tables +
///                     sparse table over block minima), O(1) per query.
///
/// All three break ties to the left, so results are comparable bit-for-bit.

class NaiveRmq {
 public:
  explicit NaiveRmq(std::vector<int64_t> values)
      : values_(std::move(values)) {}

  /// O(j - i + 1) scan. Fails on an empty/invalid range.
  Result<int64_t> Query(int64_t i, int64_t j, CostMeter* meter) const;

  int64_t size() const { return static_cast<int64_t>(values_.size()); }

 private:
  std::vector<int64_t> values_;
};

class SparseTableRmq {
 public:
  /// O(n log n) table build; preprocessing cost charged to `meter`.
  static SparseTableRmq Build(std::vector<int64_t> values, CostMeter* meter);

  /// O(1): two overlapping power-of-two windows.
  Result<int64_t> Query(int64_t i, int64_t j, CostMeter* meter) const;

  int64_t size() const { return static_cast<int64_t>(values_.size()); }
  int64_t EstimateBytes() const;

 private:
  /// table_[k][i] = index of min in values_[i, i + 2^k).
  std::vector<int64_t> values_;
  std::vector<std::vector<int64_t>> table_;
  std::vector<int> floor_log2_;  // floor(log2(len)) lookup, len in [1, n]
};

class BlockRmq {
 public:
  /// Fischer–Heun build: O(n) work (plus signature-table memoization).
  static BlockRmq Build(std::vector<int64_t> values, CostMeter* meter);

  /// O(1): suffix + spanning blocks + prefix.
  Result<int64_t> Query(int64_t i, int64_t j, CostMeter* meter) const;

  int64_t size() const { return static_cast<int64_t>(values_.size()); }
  int block_size() const { return block_size_; }
  /// Number of distinct Cartesian-tree signatures materialized (<= 4^b).
  int64_t num_signatures() const {
    return static_cast<int64_t>(in_block_tables_.size());
  }

 private:
  /// Cartesian-tree signature of values[lo, hi): the 2b-bit push/pop word.
  static uint32_t Signature(const std::vector<int64_t>& values, int64_t lo,
                            int64_t hi);

  Result<int64_t> InBlockQuery(int64_t block, int64_t i, int64_t j,
                               CostMeter* meter) const;

  std::vector<int64_t> values_;
  int block_size_ = 1;
  int64_t num_blocks_ = 0;
  /// Per block: signature id into in_block_tables_.
  std::vector<uint32_t> block_signature_;
  /// signature -> flattened b*b table of in-block argmin offsets.
  std::unordered_map<uint32_t, std::vector<int8_t>> in_block_tables_;
  /// Sparse table over (block-min value, block-min index).
  SparseTableRmq block_mins_ = SparseTableRmq::Build({}, nullptr);
  std::vector<int64_t> block_min_index_;  // block -> global argmin index
};

}  // namespace rmq
}  // namespace pitract

#endif  // PITRACT_RMQ_RMQ_H_
