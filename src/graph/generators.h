#ifndef PITRACT_GRAPH_GENERATORS_H_
#define PITRACT_GRAPH_GENERATORS_H_

#include <cstdint>

#include "common/rng.h"
#include "graph/graph.h"

namespace pitract {
namespace graph {

/// Synthetic graph workloads (deterministic in the Rng seed).
///
/// These stand in for the social-network and web graphs of the compression
/// literature the paper cites (see DESIGN.md §2): Erdős–Rényi for uniform
/// structure, preferential attachment for the heavy-tailed degree skew that
/// makes query-preserving compression effective.

/// G(n, m): m arcs drawn uniformly (dedup'd; m is an upper bound on the
/// realized arc count).
Graph ErdosRenyi(NodeId n, int64_t m, bool directed, Rng* rng);

/// Random DAG: m arcs u -> v with u < v under a random relabeling.
Graph RandomDag(NodeId n, int64_t m, Rng* rng);

/// Uniform random recursive tree on n nodes (node i attaches to a uniform
/// parent < i), undirected unless `directed_down`.
Graph RandomTree(NodeId n, Rng* rng, bool directed_down = false);

/// Rooted random tree as a parent array (parent[0] == -1).
std::vector<NodeId> RandomParentArray(NodeId n, Rng* rng);

/// Preferential-attachment (Barabási–Albert style) undirected graph: each
/// new node attaches to `edges_per_node` existing nodes with probability
/// proportional to degree.
Graph PreferentialAttachment(NodeId n, int edges_per_node, Rng* rng);

/// Simple deterministic shapes used by unit tests.
Graph Path(NodeId n, bool directed);
Graph Cycle(NodeId n, bool directed);
Graph Star(NodeId n, bool directed);

}  // namespace graph
}  // namespace pitract

#endif  // PITRACT_GRAPH_GENERATORS_H_
