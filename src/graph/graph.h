#ifndef PITRACT_GRAPH_GRAPH_H_
#define PITRACT_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace pitract {
namespace graph {

/// Node identifier. Graphs in this repository are bounded by memory, not by
/// the 2^31 id space.
using NodeId = int32_t;

/// An immutable graph in CSR (compressed sparse row) form.
///
/// Directed graphs store out-edges; undirected graphs store each edge in
/// both directions (num_edges() still counts each undirected edge once).
/// Adjacency lists are sorted, which downstream algorithms (notably the
/// breadth-depth search of Example 2, which visits neighbours "in the order
/// induced by the vertex numbering") rely on.
class Graph {
 public:
  Graph() = default;

  /// Builds a graph from an edge list. Node ids must be in [0, num_nodes).
  /// With `dedup` (the default) parallel edges are collapsed; self-loops are
  /// always kept.
  static Result<Graph> FromEdges(NodeId num_nodes,
                                 const std::vector<std::pair<NodeId, NodeId>>& edges,
                                 bool directed, bool dedup = true);

  NodeId num_nodes() const { return num_nodes_; }
  int64_t num_edges() const { return num_edges_; }
  bool directed() const { return directed_; }

  /// Sorted out-neighbourhood of `u`.
  std::span<const NodeId> OutNeighbors(NodeId u) const {
    return {adj_.data() + offsets_[static_cast<size_t>(u)],
            static_cast<size_t>(offsets_[static_cast<size_t>(u) + 1] -
                                offsets_[static_cast<size_t>(u)])};
  }

  int64_t OutDegree(NodeId u) const {
    return offsets_[static_cast<size_t>(u) + 1] -
           offsets_[static_cast<size_t>(u)];
  }

  /// Edge test via binary search in the sorted adjacency list: O(log deg).
  bool HasEdge(NodeId u, NodeId v) const;

  /// The reverse digraph (in-edges become out-edges). Identity for
  /// undirected graphs.
  Graph Reversed() const;

  /// All edges as stored (directed: each arc once; undirected: u <= v once).
  std::vector<std::pair<NodeId, NodeId>> Edges() const;

  /// Approximate memory footprint (the |D| of graph data).
  int64_t EstimateBytes() const {
    return static_cast<int64_t>(offsets_.size() * sizeof(int64_t) +
                                adj_.size() * sizeof(NodeId));
  }

  /// Σ*-encoding "n#directed#src,dst,src,dst,..." per Section 3.
  std::string Encode() const;
  static Result<Graph> Decode(std::string_view encoded);

 private:
  NodeId num_nodes_ = 0;
  int64_t num_edges_ = 0;
  bool directed_ = true;
  std::vector<int64_t> offsets_;  // size num_nodes_ + 1
  std::vector<NodeId> adj_;
};

}  // namespace graph
}  // namespace pitract

#endif  // PITRACT_GRAPH_GRAPH_H_
