#include "graph/algos.h"

#include <algorithm>
#include <deque>

namespace pitract {
namespace graph {

std::vector<int64_t> BfsDistances(const Graph& g, NodeId source,
                                  CostMeter* meter) {
  std::vector<int64_t> dist(static_cast<size_t>(g.num_nodes()), -1);
  std::deque<NodeId> queue;
  dist[static_cast<size_t>(source)] = 0;
  queue.push_back(source);
  int64_t work = 0;
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    ++work;
    for (NodeId v : g.OutNeighbors(u)) {
      ++work;
      if (dist[static_cast<size_t>(v)] < 0) {
        dist[static_cast<size_t>(v)] = dist[static_cast<size_t>(u)] + 1;
        queue.push_back(v);
      }
    }
  }
  if (meter != nullptr) {
    meter->AddSerial(work);
    meter->AddBytesRead(work * static_cast<int64_t>(sizeof(NodeId)));
  }
  return dist;
}

bool BfsReachable(const Graph& g, NodeId source, NodeId target,
                  CostMeter* meter) {
  if (source == target) {
    if (meter != nullptr) meter->AddSerial(1);
    return true;
  }
  std::vector<bool> seen(static_cast<size_t>(g.num_nodes()), false);
  std::deque<NodeId> queue;
  seen[static_cast<size_t>(source)] = true;
  queue.push_back(source);
  int64_t work = 0;
  bool found = false;
  while (!queue.empty() && !found) {
    NodeId u = queue.front();
    queue.pop_front();
    ++work;
    for (NodeId v : g.OutNeighbors(u)) {
      ++work;
      if (v == target) {
        found = true;
        break;
      }
      if (!seen[static_cast<size_t>(v)]) {
        seen[static_cast<size_t>(v)] = true;
        queue.push_back(v);
      }
    }
  }
  if (meter != nullptr) {
    meter->AddSerial(work);
    meter->AddBytesRead(work * static_cast<int64_t>(sizeof(NodeId)));
  }
  return found;
}

std::vector<NodeId> DfsPreorder(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<NodeId> preorder;
  preorder.reserve(static_cast<size_t>(n));
  std::vector<bool> visited(static_cast<size_t>(n), false);
  // Each stack frame tracks the next neighbour index to explore.
  std::vector<std::pair<NodeId, size_t>> stack;
  for (NodeId start = 0; start < n; ++start) {
    if (visited[static_cast<size_t>(start)]) continue;
    visited[static_cast<size_t>(start)] = true;
    preorder.push_back(start);
    stack.emplace_back(start, 0);
    while (!stack.empty()) {
      auto& [u, next] = stack.back();
      auto nbrs = g.OutNeighbors(u);
      if (next >= nbrs.size()) {
        stack.pop_back();
        continue;
      }
      NodeId v = nbrs[next++];
      if (!visited[static_cast<size_t>(v)]) {
        visited[static_cast<size_t>(v)] = true;
        preorder.push_back(v);
        stack.emplace_back(v, 0);
      }
    }
  }
  return preorder;
}

SccResult StronglyConnectedComponents(const Graph& g) {
  const NodeId n = g.num_nodes();
  SccResult result;
  result.component.assign(static_cast<size_t>(n), -1);

  std::vector<NodeId> index(static_cast<size_t>(n), -1);
  std::vector<NodeId> lowlink(static_cast<size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<size_t>(n), false);
  std::vector<NodeId> tarjan_stack;
  NodeId next_index = 0;

  struct Frame {
    NodeId node;
    size_t next_neighbor;
  };
  std::vector<Frame> call_stack;

  for (NodeId root = 0; root < n; ++root) {
    if (index[static_cast<size_t>(root)] != -1) continue;
    call_stack.push_back({root, 0});
    index[static_cast<size_t>(root)] = next_index;
    lowlink[static_cast<size_t>(root)] = next_index;
    ++next_index;
    tarjan_stack.push_back(root);
    on_stack[static_cast<size_t>(root)] = true;

    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      NodeId u = frame.node;
      auto nbrs = g.OutNeighbors(u);
      if (frame.next_neighbor < nbrs.size()) {
        NodeId v = nbrs[frame.next_neighbor++];
        if (index[static_cast<size_t>(v)] == -1) {
          index[static_cast<size_t>(v)] = next_index;
          lowlink[static_cast<size_t>(v)] = next_index;
          ++next_index;
          tarjan_stack.push_back(v);
          on_stack[static_cast<size_t>(v)] = true;
          call_stack.push_back({v, 0});
        } else if (on_stack[static_cast<size_t>(v)]) {
          lowlink[static_cast<size_t>(u)] = std::min(
              lowlink[static_cast<size_t>(u)], index[static_cast<size_t>(v)]);
        }
        continue;
      }
      // u is finished.
      if (lowlink[static_cast<size_t>(u)] == index[static_cast<size_t>(u)]) {
        // u roots a component; pop it.
        for (;;) {
          NodeId w = tarjan_stack.back();
          tarjan_stack.pop_back();
          on_stack[static_cast<size_t>(w)] = false;
          result.component[static_cast<size_t>(w)] = result.num_components;
          if (w == u) break;
        }
        ++result.num_components;
      }
      call_stack.pop_back();
      if (!call_stack.empty()) {
        NodeId parent = call_stack.back().node;
        lowlink[static_cast<size_t>(parent)] =
            std::min(lowlink[static_cast<size_t>(parent)],
                     lowlink[static_cast<size_t>(u)]);
      }
    }
  }
  return result;
}

Graph Condense(const Graph& g, const SccResult& scc) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    NodeId cu = scc.component[static_cast<size_t>(u)];
    for (NodeId v : g.OutNeighbors(u)) {
      NodeId cv = scc.component[static_cast<size_t>(v)];
      if (cu != cv) edges.emplace_back(cu, cv);
    }
  }
  auto result = Graph::FromEdges(scc.num_components, edges, /*directed=*/true,
                                 /*dedup=*/true);
  // Component ids are valid by construction; FromEdges cannot fail here.
  return std::move(result).value();
}

TopoResult TopologicalSort(const Graph& g) {
  const NodeId n = g.num_nodes();
  TopoResult result;
  std::vector<int64_t> indegree(static_cast<size_t>(n), 0);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : g.OutNeighbors(u)) {
      ++indegree[static_cast<size_t>(v)];
    }
  }
  // Min-id-first Kahn: deterministic order for tests.
  std::vector<NodeId> ready;
  for (NodeId u = 0; u < n; ++u) {
    if (indegree[static_cast<size_t>(u)] == 0) ready.push_back(u);
  }
  // Process as a sorted queue (ready is sorted; insertions keep rough order
  // via heap semantics — use make_heap on > for min-heap).
  auto cmp = [](NodeId a, NodeId b) { return a > b; };
  std::make_heap(ready.begin(), ready.end(), cmp);
  result.order.reserve(static_cast<size_t>(n));
  while (!ready.empty()) {
    std::pop_heap(ready.begin(), ready.end(), cmp);
    NodeId u = ready.back();
    ready.pop_back();
    result.order.push_back(u);
    for (NodeId v : g.OutNeighbors(u)) {
      if (--indegree[static_cast<size_t>(v)] == 0) {
        ready.push_back(v);
        std::push_heap(ready.begin(), ready.end(), cmp);
      }
    }
  }
  result.is_dag = static_cast<NodeId>(result.order.size()) == n;
  if (!result.is_dag) result.order.clear();
  return result;
}

ComponentsResult ConnectedComponents(const Graph& g) {
  const NodeId n = g.num_nodes();
  ComponentsResult result;
  result.component.assign(static_cast<size_t>(n), -1);
  std::deque<NodeId> queue;
  for (NodeId start = 0; start < n; ++start) {
    if (result.component[static_cast<size_t>(start)] != -1) continue;
    NodeId comp = result.num_components++;
    result.component[static_cast<size_t>(start)] = comp;
    queue.push_back(start);
    while (!queue.empty()) {
      NodeId u = queue.front();
      queue.pop_front();
      for (NodeId v : g.OutNeighbors(u)) {
        if (result.component[static_cast<size_t>(v)] == -1) {
          result.component[static_cast<size_t>(v)] = comp;
          queue.push_back(v);
        }
      }
    }
  }
  return result;
}

}  // namespace graph
}  // namespace pitract
