#include "graph/graph.h"

#include <algorithm>

#include "common/codec.h"

namespace pitract {
namespace graph {

Result<Graph> Graph::FromEdges(
    NodeId num_nodes, const std::vector<std::pair<NodeId, NodeId>>& edges,
    bool directed, bool dedup) {
  for (const auto& [u, v] : edges) {
    if (u < 0 || u >= num_nodes || v < 0 || v >= num_nodes) {
      return Status::InvalidArgument(
          "edge (" + std::to_string(u) + ", " + std::to_string(v) +
          ") out of range for n=" + std::to_string(num_nodes));
    }
  }
  Graph g;
  g.num_nodes_ = num_nodes;
  g.directed_ = directed;

  // Materialize arcs (both directions for undirected graphs).
  std::vector<std::pair<NodeId, NodeId>> arcs;
  arcs.reserve(edges.size() * (directed ? 1 : 2));
  for (const auto& [u, v] : edges) {
    arcs.emplace_back(u, v);
    if (!directed && u != v) arcs.emplace_back(v, u);
  }
  std::sort(arcs.begin(), arcs.end());
  if (dedup) {
    arcs.erase(std::unique(arcs.begin(), arcs.end()), arcs.end());
  }

  g.offsets_.assign(static_cast<size_t>(num_nodes) + 1, 0);
  for (const auto& [u, v] : arcs) {
    (void)v;
    ++g.offsets_[static_cast<size_t>(u) + 1];
  }
  for (size_t i = 1; i < g.offsets_.size(); ++i) {
    g.offsets_[i] += g.offsets_[i - 1];
  }
  g.adj_.reserve(arcs.size());
  for (const auto& [u, v] : arcs) {
    (void)u;
    g.adj_.push_back(v);
  }
  if (directed) {
    g.num_edges_ = static_cast<int64_t>(arcs.size());
  } else {
    // Count undirected edges once: self-loops appear once in `arcs`,
    // ordinary edges twice.
    int64_t self_loops = 0;
    for (const auto& [u, v] : arcs) {
      if (u == v) ++self_loops;
    }
    g.num_edges_ = (static_cast<int64_t>(arcs.size()) - self_loops) / 2 +
                   self_loops;
  }
  return g;
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  auto nbrs = OutNeighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

Graph Graph::Reversed() const {
  if (!directed_) return *this;
  Graph g;
  g.num_nodes_ = num_nodes_;
  g.directed_ = true;
  g.num_edges_ = 0;
  g.offsets_.assign(static_cast<size_t>(num_nodes_) + 1, 0);
  for (NodeId u = 0; u < num_nodes_; ++u) {
    for (NodeId v : OutNeighbors(u)) {
      ++g.offsets_[static_cast<size_t>(v) + 1];
    }
  }
  for (size_t i = 1; i < g.offsets_.size(); ++i) {
    g.offsets_[i] += g.offsets_[i - 1];
  }
  g.adj_.resize(adj_.size());
  std::vector<int64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (NodeId u = 0; u < num_nodes_; ++u) {
    for (NodeId v : OutNeighbors(u)) {
      g.adj_[static_cast<size_t>(cursor[static_cast<size_t>(v)]++)] = u;
    }
  }
  g.num_edges_ = static_cast<int64_t>(g.adj_.size());
  // Adjacency lists built by the counting pass are sorted because source
  // nodes are visited in increasing order.
  return g;
}

std::vector<std::pair<NodeId, NodeId>> Graph::Edges() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  for (NodeId u = 0; u < num_nodes_; ++u) {
    for (NodeId v : OutNeighbors(u)) {
      if (directed_ || u <= v) out.emplace_back(u, v);
    }
  }
  return out;
}

std::string Graph::Encode() const {
  std::vector<int64_t> flat;
  auto edges = Edges();
  flat.reserve(edges.size() * 2);
  for (const auto& [u, v] : edges) {
    flat.push_back(u);
    flat.push_back(v);
  }
  return codec::EncodeFields({std::to_string(num_nodes_),
                              directed_ ? "d" : "u",
                              codec::EncodeInts(flat)});
}

Result<Graph> Graph::Decode(std::string_view encoded) {
  auto fields = codec::DecodeFields(encoded);
  if (!fields.ok()) return fields.status();
  if (fields->size() != 3) {
    return Status::InvalidArgument("graph encoding needs 3 fields");
  }
  auto n_field = codec::DecodeInts((*fields)[0]);
  if (!n_field.ok()) return n_field.status();
  if (n_field->size() != 1) {
    return Status::InvalidArgument("bad node count");
  }
  bool directed;
  if ((*fields)[1] == "d") {
    directed = true;
  } else if ((*fields)[1] == "u") {
    directed = false;
  } else {
    return Status::InvalidArgument("bad directedness tag: " + (*fields)[1]);
  }
  auto flat = codec::DecodeInts((*fields)[2]);
  if (!flat.ok()) return flat.status();
  if (flat->size() % 2 != 0) {
    return Status::InvalidArgument("odd edge-endpoint count");
  }
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(flat->size() / 2);
  for (size_t i = 0; i < flat->size(); i += 2) {
    edges.emplace_back(static_cast<NodeId>((*flat)[i]),
                       static_cast<NodeId>((*flat)[i + 1]));
  }
  return FromEdges(static_cast<NodeId>((*n_field)[0]), edges, directed);
}

}  // namespace graph
}  // namespace pitract
