#include "graph/generators.h"

#include <algorithm>
#include <cassert>

namespace pitract {
namespace graph {

namespace {
Graph MustBuild(NodeId n, const std::vector<std::pair<NodeId, NodeId>>& edges,
                bool directed) {
  auto g = Graph::FromEdges(n, edges, directed);
  assert(g.ok());
  return std::move(g).value();
}
}  // namespace

Graph ErdosRenyi(NodeId n, int64_t m, bool directed, Rng* rng) {
  assert(n > 0);
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<size_t>(m));
  for (int64_t i = 0; i < m; ++i) {
    NodeId u = static_cast<NodeId>(rng->NextBelow(static_cast<uint64_t>(n)));
    NodeId v = static_cast<NodeId>(rng->NextBelow(static_cast<uint64_t>(n)));
    if (u == v) continue;
    edges.emplace_back(u, v);
  }
  return MustBuild(n, edges, directed);
}

Graph RandomDag(NodeId n, int64_t m, Rng* rng) {
  assert(n > 1);
  // Random topological relabeling keeps id order uninformative.
  std::vector<int64_t> label = rng->Permutation(n);
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<size_t>(m));
  for (int64_t i = 0; i < m; ++i) {
    NodeId a = static_cast<NodeId>(rng->NextBelow(static_cast<uint64_t>(n)));
    NodeId b = static_cast<NodeId>(rng->NextBelow(static_cast<uint64_t>(n)));
    if (a == b) continue;
    // Orient along the hidden topological order.
    NodeId u = a;
    NodeId v = b;
    if (label[static_cast<size_t>(a)] > label[static_cast<size_t>(b)]) {
      std::swap(u, v);
    }
    edges.emplace_back(u, v);
  }
  return MustBuild(n, edges, /*directed=*/true);
}

std::vector<NodeId> RandomParentArray(NodeId n, Rng* rng) {
  assert(n > 0);
  std::vector<NodeId> parent(static_cast<size_t>(n), -1);
  for (NodeId i = 1; i < n; ++i) {
    parent[static_cast<size_t>(i)] =
        static_cast<NodeId>(rng->NextBelow(static_cast<uint64_t>(i)));
  }
  return parent;
}

Graph RandomTree(NodeId n, Rng* rng, bool directed_down) {
  auto parent = RandomParentArray(n, rng);
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<size_t>(n) - 1);
  for (NodeId i = 1; i < n; ++i) {
    edges.emplace_back(parent[static_cast<size_t>(i)], i);
  }
  return MustBuild(n, edges, directed_down);
}

Graph PreferentialAttachment(NodeId n, int edges_per_node, Rng* rng) {
  assert(n > 1 && edges_per_node >= 1);
  std::vector<std::pair<NodeId, NodeId>> edges;
  // `endpoints` holds each edge endpoint once; sampling uniformly from it is
  // sampling proportional to degree.
  std::vector<NodeId> endpoints;
  edges.emplace_back(0, 1);
  endpoints.push_back(0);
  endpoints.push_back(1);
  for (NodeId u = 2; u < n; ++u) {
    for (int e = 0; e < edges_per_node; ++e) {
      NodeId target =
          endpoints[static_cast<size_t>(rng->NextBelow(endpoints.size()))];
      if (target == u) continue;
      edges.emplace_back(u, target);
      endpoints.push_back(u);
      endpoints.push_back(target);
    }
  }
  return MustBuild(n, edges, /*directed=*/false);
}

Graph Path(NodeId n, bool directed) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return MustBuild(n, edges, directed);
}

Graph Cycle(NodeId n, bool directed) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  if (n > 1) edges.emplace_back(n - 1, 0);
  return MustBuild(n, edges, directed);
}

Graph Star(NodeId n, bool directed) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId i = 1; i < n; ++i) edges.emplace_back(0, i);
  return MustBuild(n, edges, directed);
}

}  // namespace graph
}  // namespace pitract
