#ifndef PITRACT_GRAPH_ALGOS_H_
#define PITRACT_GRAPH_ALGOS_H_

#include <cstdint>
#include <vector>

#include "common/cost_meter.h"
#include "graph/graph.h"

namespace pitract {
namespace graph {

/// Breadth-first search from `source`. Returns dist[] with -1 for
/// unreachable nodes. Charges the meter one unit per scanned arc plus one
/// per visited node (the "linear scan of the data" baseline of Example 3).
std::vector<int64_t> BfsDistances(const Graph& g, NodeId source,
                                  CostMeter* meter = nullptr);

/// Is there a path source -> target? Early-exits but charges actual work.
bool BfsReachable(const Graph& g, NodeId source, NodeId target,
                  CostMeter* meter = nullptr);

/// Iterative DFS preorder over the whole graph (restarts at the smallest
/// unvisited node; children visited in sorted id order).
std::vector<NodeId> DfsPreorder(const Graph& g);

/// Strongly connected components by Tarjan's algorithm (iterative — safe on
/// deep graphs). Returns comp[], components numbered in *reverse
/// topological* order of the condensation (comp id of u <= comp id of v
/// whenever v -> u is an edge of the condensation).
struct SccResult {
  std::vector<NodeId> component;  // node -> component id
  NodeId num_components = 0;
};
SccResult StronglyConnectedComponents(const Graph& g);

/// The condensation DAG of `g`: one node per SCC, deduplicated edges.
/// Component ids follow StronglyConnectedComponents.
Graph Condense(const Graph& g, const SccResult& scc);

/// Kahn topological sort. Fails (returns empty + ok=false) on cycles.
struct TopoResult {
  bool is_dag = false;
  std::vector<NodeId> order;  // topological order when is_dag
};
TopoResult TopologicalSort(const Graph& g);

/// Connected components of an undirected graph.
struct ComponentsResult {
  std::vector<NodeId> component;  // node -> component id
  NodeId num_components = 0;
};
ComponentsResult ConnectedComponents(const Graph& g);

}  // namespace graph
}  // namespace pitract

#endif  // PITRACT_GRAPH_ALGOS_H_
