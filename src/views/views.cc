#include "views/views.h"

#include <algorithm>

namespace pitract {
namespace views {

// ---------------------------------------------------------------------------
// CountView
// ---------------------------------------------------------------------------

Result<CountView> CountView::Materialize(const storage::Relation& base,
                                         const std::string& key_column,
                                         CostMeter* meter) {
  int col = base.schema().FindColumn(key_column);
  if (col < 0) {
    return Status::InvalidArgument("no column named " + key_column);
  }
  auto keys = base.Int64Column(col);
  if (!keys.ok()) return keys.status();
  CountView view;
  view.key_column_ = key_column;
  for (int64_t k : *keys) ++view.counts_[k];
  if (meter != nullptr) {
    meter->AddSerial(base.num_rows());
    meter->AddBytesRead(base.num_rows() *
                        static_cast<int64_t>(sizeof(int64_t)));
    meter->AddBytesWritten(view.EstimateBytes());
  }
  return view;
}

int64_t CountView::Count(int64_t key, CostMeter* meter) const {
  if (meter != nullptr) {
    meter->AddSerial(1);
    meter->AddBytesRead(16);
  }
  auto it = counts_.find(key);
  return it == counts_.end() ? 0 : it->second;
}

// ---------------------------------------------------------------------------
// PartitionedRangeView
// ---------------------------------------------------------------------------

Result<PartitionedRangeView> PartitionedRangeView::Materialize(
    const storage::Relation& base, const std::string& key_column,
    const std::string& range_column, CostMeter* meter) {
  int key_col = base.schema().FindColumn(key_column);
  int range_col = base.schema().FindColumn(range_column);
  if (key_col < 0 || range_col < 0) {
    return Status::InvalidArgument("missing view column");
  }
  auto keys = base.Int64Column(key_col);
  if (!keys.ok()) return keys.status();
  auto values = base.Int64Column(range_col);
  if (!values.ok()) return values.status();

  std::unordered_map<int64_t, std::vector<int64_t>> buckets;
  for (int64_t row = 0; row < base.num_rows(); ++row) {
    buckets[(*keys)[static_cast<size_t>(row)]].push_back(
        (*values)[static_cast<size_t>(row)]);
  }
  PartitionedRangeView view;
  view.key_column_ = key_column;
  view.range_column_ = range_column;
  int64_t sort_work = 0;
  for (auto& [key, bucket] : buckets) {
    CostMeter sub;
    view.partitions_.emplace(
        key, index::SortedColumn::Build(
                 std::span<const int64_t>(bucket.data(), bucket.size()),
                 &sub));
    sort_work += sub.work();
  }
  if (meter != nullptr) {
    meter->AddSerial(base.num_rows() + sort_work);
    meter->AddBytesRead(2 * base.num_rows() *
                        static_cast<int64_t>(sizeof(int64_t)));
    meter->AddBytesWritten(view.EstimateBytes());
  }
  return view;
}

bool PartitionedRangeView::ExistsInRange(int64_t key, int64_t lo, int64_t hi,
                                         CostMeter* meter) const {
  if (meter != nullptr) meter->AddSerial(1);
  auto it = partitions_.find(key);
  if (it == partitions_.end()) return false;
  return it->second.ContainsInRange(lo, hi, meter);
}

int64_t PartitionedRangeView::EstimateBytes() const {
  int64_t bytes = 0;
  for (const auto& [key, partition] : partitions_) {
    (void)key;
    bytes += partition.size() * static_cast<int64_t>(sizeof(int64_t)) + 16;
  }
  return bytes;
}

// ---------------------------------------------------------------------------
// ViewCatalog
// ---------------------------------------------------------------------------

Status ViewCatalog::AddCountView(const storage::Relation& base,
                                 const std::string& key_column,
                                 CostMeter* meter) {
  auto view = CountView::Materialize(base, key_column, meter);
  if (!view.ok()) return view.status();
  count_views_.push_back(std::move(view).value());
  return Status::OK();
}

Status ViewCatalog::AddRangeView(const storage::Relation& base,
                                 const std::string& key_column,
                                 const std::string& range_column,
                                 CostMeter* meter) {
  auto view =
      PartitionedRangeView::Materialize(base, key_column, range_column, meter);
  if (!view.ok()) return view.status();
  range_views_.push_back(std::move(view).value());
  return Status::OK();
}

Result<int64_t> ViewCatalog::Answer(const ViewQuery& query,
                                    CostMeter* meter) const {
  switch (query.kind) {
    case ViewQuery::Kind::kCountByKey:
      for (const auto& view : count_views_) {
        if (view.key_column() == query.key_column) {
          return view.Count(query.key, meter);
        }
      }
      return Status::FailedPrecondition(
          "no count view materialized over column " + query.key_column);
    case ViewQuery::Kind::kExistsInRange:
      for (const auto& view : range_views_) {
        if (view.key_column() == query.key_column &&
            view.range_column() == query.range_column) {
          return view.ExistsInRange(query.key, query.lo, query.hi, meter) ? 1
                                                                          : 0;
        }
      }
      return Status::FailedPrecondition(
          "no range view materialized over (" + query.key_column + ", " +
          query.range_column + ")");
  }
  return Status::Internal("unhandled query kind");
}

Result<int64_t> ViewCatalog::AnswerByScan(const storage::Relation& base,
                                          const ViewQuery& query,
                                          CostMeter* meter) {
  int key_col = base.schema().FindColumn(query.key_column);
  if (key_col < 0) {
    return Status::InvalidArgument("no column named " + query.key_column);
  }
  auto keys = base.Int64Column(key_col);
  if (!keys.ok()) return keys.status();
  switch (query.kind) {
    case ViewQuery::Kind::kCountByKey: {
      int64_t count = 0;
      for (int64_t k : *keys) {
        if (k == query.key) ++count;
      }
      if (meter != nullptr) {
        meter->AddSerial(base.num_rows());
        meter->AddBytesRead(base.num_rows() *
                            static_cast<int64_t>(sizeof(int64_t)));
      }
      return count;
    }
    case ViewQuery::Kind::kExistsInRange: {
      int range_col = base.schema().FindColumn(query.range_column);
      if (range_col < 0) {
        return Status::InvalidArgument("no column named " +
                                       query.range_column);
      }
      auto values = base.Int64Column(range_col);
      if (!values.ok()) return values.status();
      int64_t scanned = 0;
      bool found = false;
      for (int64_t row = 0; row < base.num_rows(); ++row) {
        ++scanned;
        if ((*keys)[static_cast<size_t>(row)] == query.key &&
            (*values)[static_cast<size_t>(row)] >= query.lo &&
            (*values)[static_cast<size_t>(row)] <= query.hi) {
          found = true;
          break;
        }
      }
      if (meter != nullptr) {
        meter->AddSerial(scanned);
        meter->AddBytesRead(2 * scanned *
                            static_cast<int64_t>(sizeof(int64_t)));
      }
      return found ? 1 : 0;
    }
  }
  return Status::Internal("unhandled query kind");
}

int64_t ViewCatalog::EstimateBytes() const {
  int64_t bytes = 0;
  for (const auto& view : count_views_) bytes += view.EstimateBytes();
  for (const auto& view : range_views_) bytes += view.EstimateBytes();
  return bytes;
}

}  // namespace views
}  // namespace pitract
