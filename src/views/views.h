#ifndef PITRACT_VIEWS_VIEWS_H_
#define PITRACT_VIEWS_VIEWS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/cost_meter.h"
#include "common/result.h"
#include "index/sorted_column.h"
#include "storage/relation.h"

namespace pitract {
namespace views {

/// Query answering using views (Section 4(6), after [23, 30]): materialize
/// a set V of views over a relation D in PTIME (preprocessing), then answer
/// queries by *rewriting them over V(D) only* — the base relation is never
/// touched at query time. A query that no view covers is rejected, which is
/// the executable form of the "Q can be answered using V" precondition.

/// The query fragment the catalog can serve.
struct ViewQuery {
  enum class Kind {
    /// COUNT of rows with key_column == key.
    kCountByKey,
    /// Does any row with key_column == key have range_column in [lo, hi]?
    kExistsInRange,
  };
  Kind kind = Kind::kCountByKey;
  std::string key_column;
  int64_t key = 0;
  std::string range_column;
  int64_t lo = 0;
  int64_t hi = 0;
};

/// A materialized group-by-count view: key column -> row count.
class CountView {
 public:
  static Result<CountView> Materialize(const storage::Relation& base,
                                       const std::string& key_column,
                                       CostMeter* meter);

  /// O(1) expected.
  int64_t Count(int64_t key, CostMeter* meter) const;

  const std::string& key_column() const { return key_column_; }
  int64_t EstimateBytes() const {
    return static_cast<int64_t>(counts_.size()) * 16;
  }

 private:
  std::string key_column_;
  std::unordered_map<int64_t, int64_t> counts_;
};

/// A materialized partitioned-sorted view: for each key, the sorted values
/// of a second column — answers key-constrained range predicates in
/// O(log n) without the base relation.
class PartitionedRangeView {
 public:
  static Result<PartitionedRangeView> Materialize(
      const storage::Relation& base, const std::string& key_column,
      const std::string& range_column, CostMeter* meter);

  /// O(log partition) probe.
  bool ExistsInRange(int64_t key, int64_t lo, int64_t hi,
                     CostMeter* meter) const;

  const std::string& key_column() const { return key_column_; }
  const std::string& range_column() const { return range_column_; }
  int64_t EstimateBytes() const;

 private:
  std::string key_column_;
  std::string range_column_;
  std::unordered_map<int64_t, index::SortedColumn> partitions_;
};

/// The view catalog: owns materialized views and performs query rewriting.
/// Answer() fails with FailedPrecondition when no view covers the query —
/// never silently falling back to the base relation.
class ViewCatalog {
 public:
  /// Materializes both view kinds for the given column pairs.
  Status AddCountView(const storage::Relation& base,
                      const std::string& key_column, CostMeter* meter);
  Status AddRangeView(const storage::Relation& base,
                      const std::string& key_column,
                      const std::string& range_column, CostMeter* meter);

  /// Rewrites and answers `query` using views only.
  Result<int64_t> Answer(const ViewQuery& query, CostMeter* meter) const;

  /// The same query answered by scanning `base` (the no-views baseline).
  static Result<int64_t> AnswerByScan(const storage::Relation& base,
                                      const ViewQuery& query,
                                      CostMeter* meter);

  int64_t EstimateBytes() const;

 private:
  std::vector<CountView> count_views_;
  std::vector<PartitionedRangeView> range_views_;
};

}  // namespace views
}  // namespace pitract

#endif  // PITRACT_VIEWS_VIEWS_H_
