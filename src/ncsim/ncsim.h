#ifndef PITRACT_NCSIM_NCSIM_H_
#define PITRACT_NCSIM_NCSIM_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/cost_meter.h"

namespace pitract {
namespace ncsim {

/// ncsim — a deterministic PRAM cost-model executor.
///
/// The paper defines online query answering to be feasible on big data when
/// it is in NC: O(log^k n) time on a PRAM with n^O(1) processors. Rather
/// than emulating processors, ncsim executes fork/join programs sequentially
/// while charging them in the work/depth model (Blelloch; Brent's theorem
/// links depth to PRAM time). A computation whose measured *depth* grows
/// polylogarithmically in the input size is an NC computation in the sense
/// used by the paper; one whose depth grows polynomially is not.
///
/// Accounting rules (EREW-style fork/join tree):
///  * sequential unit op:            work += 1,  depth += 1
///  * ParallelFor over n bodies:     work += Σ work_i + n,
///                                   depth += max depth_i + ceil(log2 n) + 1
///  * ParallelReduce over n leaves:  additionally (n-1) combines of unit
///                                   work arranged in a ceil(log2 n)-deep tree
///
/// The "+ ceil(log2 n) + 1" term charges the fork/join spawn tree, so even a
/// constant-work body costs Θ(log n) depth — the honest PRAM price the
/// paper's O(log |D|) bounds already absorb.

/// ceil(log2(n)) for n >= 1; 0 for n <= 1.
int64_t CeilLog2(int64_t n);

/// Contract note: the ParallelFor/Map/Reduce/Any/Scan primitives require a
/// non-null meter — they exist to account cost, and call sites always own
/// one. Query-layer entry points (index probes, oracles, witnesses) accept
/// nullptr and skip charging; ChargeBinarySearch below follows that
/// convention.

/// Executes body(i, &sub_meter) for i in [0, n), charging `meter` with the
/// parallel composition of the sub-costs.
template <typename Body>
void ParallelFor(CostMeter* meter, int64_t n, Body&& body) {
  if (n <= 0) return;
  int64_t total_work = 0;
  int64_t max_depth = 0;
  for (int64_t i = 0; i < n; ++i) {
    CostMeter sub;
    body(i, &sub);
    total_work += sub.work();
    if (sub.depth() > max_depth) max_depth = sub.depth();
    meter->AddBytesRead(sub.bytes_read());
    meter->AddBytesWritten(sub.bytes_written());
  }
  meter->AddParallel(total_work + n, max_depth + CeilLog2(n) + 1);
}

/// Parallel map: out[i] = map(i, &sub_meter) for i in [0, n).
template <typename T, typename Map>
std::vector<T> ParallelMap(CostMeter* meter, int64_t n, Map&& map) {
  std::vector<T> out;
  out.reserve(static_cast<size_t>(n));
  if (n <= 0) return out;
  int64_t total_work = 0;
  int64_t max_depth = 0;
  for (int64_t i = 0; i < n; ++i) {
    CostMeter sub;
    out.push_back(map(i, &sub));
    total_work += sub.work();
    if (sub.depth() > max_depth) max_depth = sub.depth();
    meter->AddBytesRead(sub.bytes_read());
    meter->AddBytesWritten(sub.bytes_written());
  }
  meter->AddParallel(total_work + n, max_depth + CeilLog2(n) + 1);
  return out;
}

/// Parallel reduction: combine(map(0), map(1), ..., map(n-1)) over a binary
/// combining tree. `combine` is charged one unit of work per application and
/// the tree contributes ceil(log2 n) depth.
template <typename T, typename Map, typename Combine>
T ParallelReduce(CostMeter* meter, int64_t n, T identity, Map&& map,
                 Combine&& combine) {
  if (n <= 0) {
    return identity;
  }
  int64_t total_work = 0;
  int64_t max_depth = 0;
  T acc = identity;
  for (int64_t i = 0; i < n; ++i) {
    CostMeter sub;
    T leaf = map(i, &sub);
    acc = combine(std::move(acc), std::move(leaf));
    total_work += sub.work();
    if (sub.depth() > max_depth) max_depth = sub.depth();
    meter->AddBytesRead(sub.bytes_read());
    meter->AddBytesWritten(sub.bytes_written());
  }
  const int64_t lg = CeilLog2(n);
  meter->AddParallel(total_work + n + (n - 1), max_depth + 2 * lg + 1);
  return acc;
}

/// Parallel logical-OR over n predicate evaluations — the workhorse of
/// Boolean query answering ("does any tuple match?"). Short-circuits the
/// *execution* for speed but charges the full parallel cost, because a PRAM
/// evaluates all leaves simultaneously.
template <typename Pred>
bool ParallelAny(CostMeter* meter, int64_t n, Pred&& pred) {
  if (n <= 0) return false;
  int64_t total_work = 0;
  int64_t max_depth = 0;
  bool found = false;
  for (int64_t i = 0; i < n; ++i) {
    CostMeter sub;
    if (pred(i, &sub)) found = true;
    total_work += sub.work();
    if (sub.depth() > max_depth) max_depth = sub.depth();
  }
  const int64_t lg = CeilLog2(n);
  meter->AddParallel(total_work + n + (n - 1), max_depth + 2 * lg + 1);
  return found;
}

/// Work-efficient exclusive prefix "sum" under an associative `op`.
/// Charges the standard two-sweep cost: work 2n, depth 2 ceil(log2 n) + 2.
template <typename T, typename Op>
std::vector<T> ParallelScanExclusive(CostMeter* meter,
                                     const std::vector<T>& in, T identity,
                                     Op&& op) {
  std::vector<T> out(in.size());
  T acc = identity;
  for (size_t i = 0; i < in.size(); ++i) {
    out[i] = acc;
    acc = op(acc, in[i]);
  }
  const int64_t n = static_cast<int64_t>(in.size());
  if (n > 0) {
    meter->AddParallel(2 * n, 2 * CeilLog2(n) + 2);
  }
  return out;
}

/// Charges a textbook parallel binary search over a sorted range of size n:
/// depth O(log n) (and the same work on a single processor). No-op on a
/// null meter, like every other charging hook.
inline void ChargeBinarySearch(CostMeter* meter, int64_t n) {
  if (meter == nullptr) return;
  meter->AddSerial(CeilLog2(n < 1 ? 1 : n) + 1);
}

}  // namespace ncsim
}  // namespace pitract

#endif  // PITRACT_NCSIM_NCSIM_H_
