#include "ncsim/ncsim.h"

namespace pitract {
namespace ncsim {

int64_t CeilLog2(int64_t n) {
  if (n <= 1) return 0;
  int64_t lg = 0;
  int64_t v = n - 1;
  while (v > 0) {
    v >>= 1;
    ++lg;
  }
  return lg;
}

}  // namespace ncsim
}  // namespace pitract
