#include "lca/dag_lca.h"

#include <algorithm>
#include <deque>

#include "graph/algos.h"

namespace pitract {
namespace lca {

Result<std::vector<int64_t>> LongestPathDepths(const graph::Graph& g) {
  graph::TopoResult topo = graph::TopologicalSort(g);
  if (!topo.is_dag) {
    return Status::InvalidArgument("graph is not acyclic");
  }
  std::vector<int64_t> depth(static_cast<size_t>(g.num_nodes()), 0);
  for (graph::NodeId u : topo.order) {
    for (graph::NodeId v : g.OutNeighbors(u)) {
      depth[static_cast<size_t>(v)] = std::max(
          depth[static_cast<size_t>(v)], depth[static_cast<size_t>(u)] + 1);
    }
  }
  return depth;
}

// ---------------------------------------------------------------------------
// AllPairsDagLca
// ---------------------------------------------------------------------------

Result<AllPairsDagLca> AllPairsDagLca::Build(const graph::Graph& g,
                                             CostMeter* meter) {
  auto depth = LongestPathDepths(g);
  if (!depth.ok()) return depth.status();
  const graph::NodeId n = g.num_nodes();

  // anc[v] = bitset of (reflexive) ancestors of v = nodes reaching v,
  // computed as the forward closure of the reverse graph.
  graph::Graph rev = g.Reversed();
  CostMeter closure_meter;
  reach::ReachabilityMatrix to_anc =
      reach::ReachabilityMatrix::Build(rev, &closure_meter);
  std::vector<reach::Bitset> anc(static_cast<size_t>(n),
                                 reach::Bitset(n));
  for (graph::NodeId v = 0; v < n; ++v) {
    for (graph::NodeId w = 0; w < n; ++w) {
      if (to_anc.Reachable(v, w, nullptr)) {
        anc[static_cast<size_t>(v)].Set(w);
      }
    }
  }

  AllPairsDagLca lca;
  lca.num_nodes_ = n;
  lca.lca_.assign(static_cast<size_t>(n) * static_cast<size_t>(n), -1);
  int64_t work = closure_meter.work() + static_cast<int64_t>(n) * n;
  // For each pair, scan the intersection of ancestor sets for the deepest
  // common ancestor (smallest id wins ties).
  for (graph::NodeId u = 0; u < n; ++u) {
    for (graph::NodeId v = u; v < n; ++v) {
      graph::NodeId best = -1;
      int64_t best_depth = -1;
      for (graph::NodeId w = 0; w < n; ++w) {
        if (anc[static_cast<size_t>(u)].Test(w) &&
            anc[static_cast<size_t>(v)].Test(w) &&
            (*depth)[static_cast<size_t>(w)] > best_depth) {
          best = w;
          best_depth = (*depth)[static_cast<size_t>(w)];
        }
      }
      lca.lca_[static_cast<size_t>(u) * static_cast<size_t>(n) +
               static_cast<size_t>(v)] = best;
      lca.lca_[static_cast<size_t>(v) * static_cast<size_t>(n) +
               static_cast<size_t>(u)] = best;
      work += n;
    }
  }
  if (meter != nullptr) {
    meter->AddSerial(work);
    meter->AddBytesWritten(static_cast<int64_t>(lca.lca_.size()) *
                           static_cast<int64_t>(sizeof(graph::NodeId)));
  }
  return lca;
}

Result<graph::NodeId> AllPairsDagLca::Query(graph::NodeId u, graph::NodeId v,
                                            CostMeter* meter) const {
  if (u < 0 || u >= num_nodes_ || v < 0 || v >= num_nodes_) {
    return Status::OutOfRange("node id out of range");
  }
  if (meter != nullptr) {
    meter->AddSerial(1);
    meter->AddBytesRead(static_cast<int64_t>(sizeof(graph::NodeId)));
  }
  return lca_[static_cast<size_t>(u) * static_cast<size_t>(num_nodes_) +
              static_cast<size_t>(v)];
}

// ---------------------------------------------------------------------------
// OnlineDagLca
// ---------------------------------------------------------------------------

Result<OnlineDagLca> OnlineDagLca::Build(const graph::Graph& g) {
  auto depth = LongestPathDepths(g);
  if (!depth.ok()) return depth.status();
  OnlineDagLca lca;
  lca.reversed_ = g.Reversed();
  lca.depth_ = std::move(depth).value();
  return lca;
}

Result<graph::NodeId> OnlineDagLca::Query(graph::NodeId u, graph::NodeId v,
                                          CostMeter* meter) const {
  const graph::NodeId n = num_nodes();
  if (u < 0 || u >= n || v < 0 || v >= n) {
    return Status::OutOfRange("node id out of range");
  }
  // Reverse-BFS ancestor sets (reflexive), charged per touched arc.
  auto ancestors = [&](graph::NodeId s) {
    std::vector<bool> seen(static_cast<size_t>(n), false);
    std::deque<graph::NodeId> queue;
    seen[static_cast<size_t>(s)] = true;
    queue.push_back(s);
    int64_t work = 0;
    while (!queue.empty()) {
      graph::NodeId x = queue.front();
      queue.pop_front();
      ++work;
      for (graph::NodeId y : reversed_.OutNeighbors(x)) {
        ++work;
        if (!seen[static_cast<size_t>(y)]) {
          seen[static_cast<size_t>(y)] = true;
          queue.push_back(y);
        }
      }
    }
    if (meter != nullptr) meter->AddSerial(work);
    return seen;
  };
  std::vector<bool> anc_u = ancestors(u);
  std::vector<bool> anc_v = ancestors(v);
  graph::NodeId best = -1;
  int64_t best_depth = -1;
  for (graph::NodeId w = 0; w < n; ++w) {
    if (anc_u[static_cast<size_t>(w)] && anc_v[static_cast<size_t>(w)] &&
        depth_[static_cast<size_t>(w)] > best_depth) {
      best = w;
      best_depth = depth_[static_cast<size_t>(w)];
    }
  }
  if (meter != nullptr) meter->AddSerial(n);
  return best;
}

}  // namespace lca
}  // namespace pitract
