#include "lca/tree_lca.h"

#include <algorithm>

namespace pitract {
namespace lca {

Result<std::vector<int64_t>> ComputeDepths(
    const std::vector<graph::NodeId>& parent) {
  const auto n = static_cast<graph::NodeId>(parent.size());
  if (n == 0) return Status::InvalidArgument("empty parent array");
  int roots = 0;
  for (graph::NodeId v = 0; v < n; ++v) {
    graph::NodeId p = parent[static_cast<size_t>(v)];
    if (p == -1) {
      ++roots;
    } else if (p < 0 || p >= n) {
      return Status::InvalidArgument("parent out of range at node " +
                                     std::to_string(v));
    }
  }
  if (roots != 1) {
    return Status::InvalidArgument("expected exactly 1 root, found " +
                                   std::to_string(roots));
  }
  std::vector<int64_t> depth(static_cast<size_t>(n), -1);
  for (graph::NodeId v = 0; v < n; ++v) {
    if (depth[static_cast<size_t>(v)] >= 0) continue;
    // Walk to the first node with a known depth (or the root), then unwind.
    std::vector<graph::NodeId> chain;
    graph::NodeId cur = v;
    while (cur != -1 && depth[static_cast<size_t>(cur)] < 0) {
      chain.push_back(cur);
      if (static_cast<int64_t>(chain.size()) > n) {
        return Status::InvalidArgument("cycle detected in parent array");
      }
      cur = parent[static_cast<size_t>(cur)];
    }
    int64_t base = cur == -1 ? -1 : depth[static_cast<size_t>(cur)];
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      depth[static_cast<size_t>(*it)] = ++base;
    }
  }
  return depth;
}

// ---------------------------------------------------------------------------
// NaiveTreeLca
// ---------------------------------------------------------------------------

Result<NaiveTreeLca> NaiveTreeLca::Build(std::vector<graph::NodeId> parent) {
  auto depth = ComputeDepths(parent);
  if (!depth.ok()) return depth.status();
  NaiveTreeLca lca;
  lca.parent_ = std::move(parent);
  lca.depth_ = std::move(depth).value();
  return lca;
}

Result<graph::NodeId> NaiveTreeLca::Query(graph::NodeId u, graph::NodeId v,
                                          CostMeter* meter) const {
  const auto n = num_nodes();
  if (u < 0 || u >= n || v < 0 || v >= n) {
    return Status::OutOfRange("node id out of range");
  }
  int64_t steps = 0;
  while (depth_[static_cast<size_t>(u)] > depth_[static_cast<size_t>(v)]) {
    u = parent_[static_cast<size_t>(u)];
    ++steps;
  }
  while (depth_[static_cast<size_t>(v)] > depth_[static_cast<size_t>(u)]) {
    v = parent_[static_cast<size_t>(v)];
    ++steps;
  }
  while (u != v) {
    u = parent_[static_cast<size_t>(u)];
    v = parent_[static_cast<size_t>(v)];
    steps += 2;
  }
  if (meter != nullptr) {
    meter->AddSerial(steps + 1);
    meter->AddBytesRead((steps + 1) * static_cast<int64_t>(sizeof(graph::NodeId)));
  }
  return u;
}

// ---------------------------------------------------------------------------
// EulerTourLca
// ---------------------------------------------------------------------------

Result<EulerTourLca> EulerTourLca::Build(std::vector<graph::NodeId> parent,
                                         CostMeter* meter) {
  auto depth = ComputeDepths(parent);
  if (!depth.ok()) return depth.status();
  const auto n = static_cast<graph::NodeId>(parent.size());

  // Children lists in ascending order (CSR-style, counting sort by parent).
  std::vector<int64_t> child_offset(static_cast<size_t>(n) + 1, 0);
  graph::NodeId root = -1;
  for (graph::NodeId v = 0; v < n; ++v) {
    graph::NodeId p = parent[static_cast<size_t>(v)];
    if (p == -1) {
      root = v;
    } else {
      ++child_offset[static_cast<size_t>(p) + 1];
    }
  }
  for (size_t i = 1; i < child_offset.size(); ++i) {
    child_offset[i] += child_offset[i - 1];
  }
  std::vector<graph::NodeId> children(static_cast<size_t>(n) - 1);
  {
    std::vector<int64_t> cursor(child_offset.begin(), child_offset.end() - 1);
    for (graph::NodeId v = 0; v < n; ++v) {
      graph::NodeId p = parent[static_cast<size_t>(v)];
      if (p != -1) {
        children[static_cast<size_t>(cursor[static_cast<size_t>(p)]++)] = v;
      }
    }
  }

  EulerTourLca lca;
  lca.num_nodes_ = n;
  lca.first_.assign(static_cast<size_t>(n), -1);
  std::vector<int64_t> tour_depths;
  lca.euler_.reserve(2 * static_cast<size_t>(n));
  tour_depths.reserve(2 * static_cast<size_t>(n));

  // Iterative Euler tour: emit a node on entry and after each child returns.
  struct Frame {
    graph::NodeId node;
    int64_t next_child;
  };
  std::vector<Frame> stack;
  stack.push_back({root, child_offset[static_cast<size_t>(root)]});
  lca.first_[static_cast<size_t>(root)] = 0;
  lca.euler_.push_back(root);
  tour_depths.push_back((*depth)[static_cast<size_t>(root)]);
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_child <
        child_offset[static_cast<size_t>(frame.node) + 1]) {
      graph::NodeId child = children[static_cast<size_t>(frame.next_child++)];
      lca.first_[static_cast<size_t>(child)] =
          static_cast<int64_t>(lca.euler_.size());
      lca.euler_.push_back(child);
      tour_depths.push_back((*depth)[static_cast<size_t>(child)]);
      stack.push_back({child, child_offset[static_cast<size_t>(child)]});
    } else {
      stack.pop_back();
      if (!stack.empty()) {
        lca.euler_.push_back(stack.back().node);
        tour_depths.push_back((*depth)[static_cast<size_t>(stack.back().node)]);
      }
    }
  }

  CostMeter rmq_meter;
  lca.depth_rmq_ = rmq::BlockRmq::Build(std::move(tour_depths), &rmq_meter);
  if (meter != nullptr) {
    meter->AddSerial(2 * n);
    meter->AddSequential(rmq_meter.cost());
    meter->AddBytesWritten(rmq_meter.bytes_written() +
                           2 * n * static_cast<int64_t>(sizeof(graph::NodeId)));
  }
  return lca;
}

Result<graph::NodeId> EulerTourLca::Query(graph::NodeId u, graph::NodeId v,
                                          CostMeter* meter) const {
  if (u < 0 || u >= num_nodes_ || v < 0 || v >= num_nodes_) {
    return Status::OutOfRange("node id out of range");
  }
  int64_t l = first_[static_cast<size_t>(u)];
  int64_t r = first_[static_cast<size_t>(v)];
  if (l > r) std::swap(l, r);
  PITRACT_ASSIGN_OR_RETURN(int64_t pos, depth_rmq_.Query(l, r, meter));
  if (meter != nullptr) meter->AddSerial(2);
  return euler_[static_cast<size_t>(pos)];
}

}  // namespace lca
}  // namespace pitract
