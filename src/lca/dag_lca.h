#ifndef PITRACT_LCA_DAG_LCA_H_
#define PITRACT_LCA_DAG_LCA_H_

#include <cstdint>
#include <vector>

#include "common/cost_meter.h"
#include "common/result.h"
#include "graph/graph.h"
#include "reach/reachability.h"

namespace pitract {
namespace lca {

/// Lowest common ancestors in DAGs (Section 4(4)): "G can be preprocessed by
/// computing LCA for all pairs of nodes in O(|G|^3) time; then LCA(u, v) can
/// be found in O(1) time" (Bender et al. [5]).
///
/// A DAG node may have several LCAs; following the all-pairs representative
/// convention we return the common ancestor of *maximum depth* (depth =
/// longest path from any source), breaking ties toward the smallest node id.
/// Ancestry is reflexive (u is an ancestor of u). Queries with no common
/// ancestor answer -1.
class AllPairsDagLca {
 public:
  /// Preprocesses the DAG (fails on cyclic input); PTIME cost to `meter`.
  static Result<AllPairsDagLca> Build(const graph::Graph& g, CostMeter* meter);

  /// O(1) matrix lookup.
  Result<graph::NodeId> Query(graph::NodeId u, graph::NodeId v,
                              CostMeter* meter) const;

  graph::NodeId num_nodes() const { return num_nodes_; }
  int64_t EstimateBytes() const {
    return static_cast<int64_t>(lca_.size()) *
           static_cast<int64_t>(sizeof(graph::NodeId));
  }

 private:
  graph::NodeId num_nodes_ = 0;
  std::vector<graph::NodeId> lca_;  // row-major n x n
};

/// No-preprocessing baseline: per query, intersect the ancestor sets found
/// by two reverse-BFS traversals and take the deepest — O(n + m) per query.
class OnlineDagLca {
 public:
  static Result<OnlineDagLca> Build(const graph::Graph& g);

  Result<graph::NodeId> Query(graph::NodeId u, graph::NodeId v,
                              CostMeter* meter) const;

  graph::NodeId num_nodes() const { return reversed_.num_nodes(); }
  const std::vector<int64_t>& depths() const { return depth_; }

 private:
  graph::Graph reversed_;
  std::vector<int64_t> depth_;  // longest-path depth from sources
};

/// Longest-path depth from any in-degree-0 node, or an error on cycles.
Result<std::vector<int64_t>> LongestPathDepths(const graph::Graph& g);

}  // namespace lca
}  // namespace pitract

#endif  // PITRACT_LCA_DAG_LCA_H_
