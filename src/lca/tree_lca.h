#ifndef PITRACT_LCA_TREE_LCA_H_
#define PITRACT_LCA_TREE_LCA_H_

#include <cstdint>
#include <vector>

#include "common/cost_meter.h"
#include "common/result.h"
#include "graph/graph.h"
#include "rmq/rmq.h"

namespace pitract {
namespace lca {

/// Lowest common ancestors in rooted trees (Section 4(4), citing Bender et
/// al. [5]). A tree is given as a parent array with parent[root] == -1.
/// There is no ordering requirement on ids; Build validates that the array
/// describes one rooted tree (single root, no cycles).

/// Baseline without preprocessing: equalize depths, then walk both nodes up
/// — O(depth) per query.
class NaiveTreeLca {
 public:
  static Result<NaiveTreeLca> Build(std::vector<graph::NodeId> parent);

  Result<graph::NodeId> Query(graph::NodeId u, graph::NodeId v,
                              CostMeter* meter) const;

  graph::NodeId num_nodes() const {
    return static_cast<graph::NodeId>(parent_.size());
  }
  const std::vector<int64_t>& depths() const { return depth_; }

 private:
  std::vector<graph::NodeId> parent_;
  std::vector<int64_t> depth_;
};

/// Preprocessed oracle: Euler tour + range-minimum over tour depths, using
/// the Fischer–Heun BlockRmq — O(n) preprocessing, O(1) per query.
class EulerTourLca {
 public:
  static Result<EulerTourLca> Build(std::vector<graph::NodeId> parent,
                                    CostMeter* meter);

  /// O(1): RMQ over the depth array between first occurrences.
  Result<graph::NodeId> Query(graph::NodeId u, graph::NodeId v,
                              CostMeter* meter) const;

  graph::NodeId num_nodes() const { return num_nodes_; }
  int64_t tour_length() const { return static_cast<int64_t>(euler_.size()); }

 private:
  graph::NodeId num_nodes_ = 0;
  std::vector<graph::NodeId> euler_;   // 2n - 1 tour entries
  std::vector<int64_t> first_;         // node -> first tour position
  rmq::BlockRmq depth_rmq_ = rmq::BlockRmq::Build({}, nullptr);
};

/// Validates a parent array (exactly one root, no cycles) and returns
/// per-node depths. Shared by both implementations.
Result<std::vector<int64_t>> ComputeDepths(
    const std::vector<graph::NodeId>& parent);

}  // namespace lca
}  // namespace pitract

#endif  // PITRACT_LCA_TREE_LCA_H_
