#include "bds/bds.h"

#include <algorithm>

#include "ncsim/ncsim.h"

namespace pitract {
namespace bds {

namespace {

/// Shared search core. Marks nodes in BDS order, invoking visit(node) for
/// each; stops early when visit() returns false. Returns arcs+nodes touched.
template <typename Visit>
int64_t RunBds(const graph::Graph& g,
               const std::vector<graph::NodeId>& numbering, Visit&& visit) {
  const graph::NodeId n = g.num_nodes();
  const bool identity = numbering.empty();

  // number_of[v]: the vertex number; by_number[k]: node with number k.
  std::vector<graph::NodeId> by_number;
  if (!identity) {
    by_number.assign(static_cast<size_t>(n), 0);
    for (graph::NodeId v = 0; v < n; ++v) {
      by_number[static_cast<size_t>(numbering[static_cast<size_t>(v)])] = v;
    }
  }
  auto number_of = [&](graph::NodeId v) {
    return identity ? v : numbering[static_cast<size_t>(v)];
  };
  auto node_with_number = [&](graph::NodeId k) {
    return identity ? k : by_number[static_cast<size_t>(k)];
  };

  std::vector<bool> visited(static_cast<size_t>(n), false);
  std::vector<graph::NodeId> stack;
  std::vector<graph::NodeId> nbrs_sorted;
  int64_t work = 0;

  for (graph::NodeId start_num = 0; start_num < n; ++start_num) {
    graph::NodeId start = node_with_number(start_num);
    ++work;
    if (visited[static_cast<size_t>(start)]) continue;
    visited[static_cast<size_t>(start)] = true;
    if (!visit(start)) return work;
    stack.push_back(start);
    while (!stack.empty()) {
      graph::NodeId u = stack.back();
      stack.pop_back();
      ++work;
      // Gather unvisited neighbours in numbering order.
      auto nbrs = g.OutNeighbors(u);
      nbrs_sorted.assign(nbrs.begin(), nbrs.end());
      work += static_cast<int64_t>(nbrs_sorted.size());
      if (!identity) {
        std::sort(nbrs_sorted.begin(), nbrs_sorted.end(),
                  [&](graph::NodeId a, graph::NodeId b) {
                    return number_of(a) < number_of(b);
                  });
      }
      // Visit (mark) in increasing numbering order...
      size_t first_new = stack.size();
      for (graph::NodeId v : nbrs_sorted) {
        if (visited[static_cast<size_t>(v)]) continue;
        visited[static_cast<size_t>(v)] = true;
        if (!visit(v)) return work;
        stack.push_back(v);
      }
      // ...then reverse the newly pushed run so the smallest-numbered
      // neighbour sits on top of the stack ("pushed in reverse order").
      std::reverse(stack.begin() + static_cast<long>(first_new), stack.end());
    }
  }
  return work;
}

}  // namespace

std::vector<graph::NodeId> BdsVisitOrder(
    const graph::Graph& g, const std::vector<graph::NodeId>& numbering,
    CostMeter* meter) {
  std::vector<graph::NodeId> order;
  order.reserve(static_cast<size_t>(g.num_nodes()));
  int64_t work = RunBds(g, numbering, [&](graph::NodeId v) {
    order.push_back(v);
    return true;
  });
  if (meter != nullptr) {
    meter->AddSerial(work);
    meter->AddBytesRead(work * static_cast<int64_t>(sizeof(graph::NodeId)));
    meter->AddBytesWritten(g.num_nodes() *
                           static_cast<int64_t>(sizeof(graph::NodeId)));
  }
  return order;
}

std::vector<graph::NodeId> BdsVisitOrder(const graph::Graph& g,
                                         CostMeter* meter) {
  return BdsVisitOrder(g, {}, meter);
}

Result<bool> BdsVisitedBeforeOnline(const graph::Graph& g, graph::NodeId u,
                                    graph::NodeId v, CostMeter* meter) {
  const graph::NodeId n = g.num_nodes();
  if (u < 0 || u >= n || v < 0 || v >= n) {
    return Status::OutOfRange("node id out of range");
  }
  if (u == v) {
    if (meter != nullptr) meter->AddSerial(1);
    return false;
  }
  bool u_first = false;
  int64_t work = RunBds(g, {}, [&](graph::NodeId w) {
    if (w == u) {
      u_first = true;
      return false;
    }
    if (w == v) {
      u_first = false;
      return false;
    }
    return true;
  });
  if (meter != nullptr) {
    meter->AddSerial(work);
    meter->AddBytesRead(work * static_cast<int64_t>(sizeof(graph::NodeId)));
  }
  return u_first;
}

BdsOracle BdsOracle::Build(const graph::Graph& g,
                           const std::vector<graph::NodeId>& numbering,
                           CostMeter* meter) {
  BdsOracle oracle;
  oracle.order_ = BdsVisitOrder(g, numbering, meter);
  oracle.rank_.assign(oracle.order_.size(), 0);
  for (size_t pos = 0; pos < oracle.order_.size(); ++pos) {
    oracle.rank_[static_cast<size_t>(oracle.order_[pos])] =
        static_cast<int64_t>(pos);
  }
  if (meter != nullptr) {
    meter->AddSerial(static_cast<int64_t>(oracle.order_.size()));
  }
  return oracle;
}

BdsOracle BdsOracle::Build(const graph::Graph& g, CostMeter* meter) {
  return Build(g, {}, meter);
}

Result<bool> BdsOracle::VisitedBefore(graph::NodeId u, graph::NodeId v,
                                      CostMeter* meter) const {
  const auto n = num_nodes();
  if (u < 0 || u >= n || v < 0 || v >= n) {
    return Status::OutOfRange("node id out of range");
  }
  if (meter != nullptr) {
    if (charge_binary_search_) {
      ncsim::ChargeBinarySearch(meter, n);
      ncsim::ChargeBinarySearch(meter, n);
    } else {
      meter->AddSerial(2);
      meter->AddBytesRead(2 * static_cast<int64_t>(sizeof(int64_t)));
    }
  }
  return rank_[static_cast<size_t>(u)] < rank_[static_cast<size_t>(v)];
}

}  // namespace bds
}  // namespace pitract
