#ifndef PITRACT_BDS_BDS_H_
#define PITRACT_BDS_BDS_H_

#include <cstdint>
#include <vector>

#include "common/cost_meter.h"
#include "common/result.h"
#include "graph/graph.h"

namespace pitract {
namespace bds {

/// Breadth-Depth Search (Example 2; P-complete per Greenlaw–Hoover–Ruzzo,
/// the paper's [21]).
///
/// Semantics, following the paper's description: the search starts at the
/// smallest-numbered unvisited node s; it visits (marks) all of s's
/// unvisited neighbours in numbering order, pushing them onto a stack in
/// *reverse* numbering order (so the smallest-numbered neighbour ends on
/// top); it then continues with the node popped from the top of the stack,
/// which plays the role of s. When the stack empties with unvisited nodes
/// remaining, the search restarts at the smallest unvisited node. The BDS
/// decision problem asks: is u visited before v?
///
/// The vertex numbering is the node id order unless an explicit permutation
/// is supplied (`numbering[node] = its number`).

/// Runs the full search and returns the visit order M — the paper's
/// preprocessing function Π(G) of Example 5. O(n + m) work, charged to
/// `meter`.
std::vector<graph::NodeId> BdsVisitOrder(const graph::Graph& g,
                                         const std::vector<graph::NodeId>& numbering,
                                         CostMeter* meter);

/// Identity-numbering convenience overload.
std::vector<graph::NodeId> BdsVisitOrder(const graph::Graph& g,
                                         CostMeter* meter);

/// The no-preprocessing baseline: run the search only until the earlier of
/// u, v is marked (still Θ(n + m) in the worst case — BDS is inherently
/// sequential, which is exactly why the paper preprocesses it).
Result<bool> BdsVisitedBeforeOnline(const graph::Graph& g, graph::NodeId u,
                                    graph::NodeId v, CostMeter* meter);

/// Preprocessed oracle over the visit order M (Example 5): after Π(G) = M,
/// "whether ⟨M, (u, v)⟩ ∈ S' can be decided by binary searches on M, in
/// O(log |M|) time". We store the rank array (the inverted list), so a
/// query is two O(1) probes; `charge_binary_search` mode bills the paper's
/// O(log |M|) cost instead, for faithful cost-model experiments.
class BdsOracle {
 public:
  /// Preprocesses g under the given (or identity) numbering.
  static BdsOracle Build(const graph::Graph& g,
                         const std::vector<graph::NodeId>& numbering,
                         CostMeter* meter);
  static BdsOracle Build(const graph::Graph& g, CostMeter* meter);

  /// Was u visited strictly before v?
  Result<bool> VisitedBefore(graph::NodeId u, graph::NodeId v,
                             CostMeter* meter) const;

  const std::vector<graph::NodeId>& visit_order() const { return order_; }
  graph::NodeId num_nodes() const {
    return static_cast<graph::NodeId>(order_.size());
  }

  /// When true, queries charge O(log |M|) (the paper's binary-search bound)
  /// instead of the O(1) rank-array probe cost.
  void set_charge_binary_search(bool on) { charge_binary_search_ = on; }

 private:
  std::vector<graph::NodeId> order_;  // M: position -> node
  std::vector<int64_t> rank_;         // node -> position in M
  bool charge_binary_search_ = false;
};

}  // namespace bds
}  // namespace pitract

#endif  // PITRACT_BDS_BDS_H_
