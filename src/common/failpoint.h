#ifndef PITRACT_COMMON_FAILPOINT_H_
#define PITRACT_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pitract {

/// Deterministic fault injection for the engine's failure edges.
///
/// A *site* is a named branch compiled into production code at a point
/// where the surrounding logic already claims to survive a failure — a
/// spill write, a Π build, a patch hook. Tests (and the chaos harness)
/// *arm* sites with a policy; armed sites then report "fail here" to the
/// call site, which takes its real degradation path with a synthetic
/// error. Nothing is simulated: the code that runs is exactly the code a
/// torn file or a throwing Π would exercise in production.
///
/// Cost when disarmed: the whole subsystem sits behind one process-wide
/// atomic flag, so every `PITRACT_FAILPOINT(...)` in a hot path costs a
/// single relaxed load and a never-taken branch until the first Arm()
/// call of the process — a no-op branch in any build, no macros or
/// compile-time configuration required.
///
/// Thread safety: Arm/Disarm/Evaluate may race freely; evaluation of an
/// armed site serializes on one mutex (acceptable — sites only evaluate
/// under fault-injection runs). Policies draw from a seeded pitract::Rng,
/// so a schedule is reproducible from its seed alone.
namespace failpoint {

/// Per-site firing policy.
struct Policy {
  enum class Kind {
    kNever,        // armed but inert (useful to count evaluations)
    kAlways,       // every evaluation fires
    kOnce,         // the first evaluation fires, the rest pass
    kEveryNth,     // evaluations n, 2n, 3n, ... fire
    kProbability,  // each evaluation fires with probability p (seeded)
  };
  Kind kind = Kind::kNever;
  uint64_t n = 0;    // kEveryNth period (>= 1)
  double p = 0.0;    // kProbability chance in [0, 1]
  uint64_t seed = 0; // kProbability RNG seed
};

Policy Never();
Policy Always();
Policy Once();
Policy EveryNth(uint64_t n);
Policy WithProbability(double p, uint64_t seed);

/// True iff any site is armed. The one relaxed load every disabled
/// evaluation pays; see the PITRACT_FAILPOINT macro below.
bool Enabled();

/// Installs (or replaces) `site`'s policy and flips the global switch on.
void Arm(std::string_view site, const Policy& policy);
/// Removes one site; the global switch turns off with the last site.
void Disarm(std::string_view site);
/// Removes every site and turns the global switch off.
void DisarmAll();

/// Full policy evaluation for an armed site. Call through the
/// PITRACT_FAILPOINT macro so disarmed processes never reach this.
bool ShouldFail(std::string_view site);

/// Observed activity of one site since it was armed.
struct SiteStats {
  int64_t evaluations = 0;  // times the armed site was reached
  int64_t fires = 0;        // times it reported "fail here"
};
SiteStats StatsFor(std::string_view site);
std::vector<std::string> ArmedSites();

/// RAII guard for tests: disarms every site (and re-disables the global
/// switch) on scope exit, so one test's schedule never leaks into the
/// next.
class ScopedFailpoints {
 public:
  ScopedFailpoints() = default;
  ScopedFailpoints(const ScopedFailpoints&) = delete;
  ScopedFailpoints& operator=(const ScopedFailpoints&) = delete;
  ~ScopedFailpoints() { DisarmAll(); }
};

namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal

inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

}  // namespace failpoint
}  // namespace pitract

/// The call-site form: `if (PITRACT_FAILPOINT("spill.write")) { ...fail }`.
/// Disarmed: one relaxed load, branch not taken. Armed: full policy
/// evaluation under the registry mutex.
#define PITRACT_FAILPOINT(site)          \
  (::pitract::failpoint::Enabled() &&    \
   ::pitract::failpoint::ShouldFail(site))

#endif  // PITRACT_COMMON_FAILPOINT_H_
