#ifndef PITRACT_COMMON_RNG_H_
#define PITRACT_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace pitract {

/// Deterministic, seedable pseudo-random generator (xoshiro256** with a
/// splitmix64-seeded state). All workload generators in the repository draw
/// from this type so that every test and benchmark is reproducible from its
/// seed alone.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw with success probability p.
  bool NextBool(double p = 0.5);

  /// Zipf-distributed rank in [0, n) with exponent `theta` (theta=0 is
  /// uniform; larger is more skewed). Uses the Gray et al. rejection-free
  /// inverse-CDF approximation common in database benchmarking (YCSB-style).
  uint64_t NextZipf(uint64_t n, double theta);

  /// Fisher–Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBelow(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// A uniformly random permutation of [0, n).
  std::vector<int64_t> Permutation(int64_t n);

 private:
  uint64_t state_[4];
  // Cached zipf normalization (recomputed when (n, theta) changes).
  uint64_t zipf_n_ = 0;
  double zipf_theta_ = -1.0;
  double zipf_zetan_ = 0.0;
};

}  // namespace pitract

#endif  // PITRACT_COMMON_RNG_H_
