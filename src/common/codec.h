#ifndef PITRACT_COMMON_CODEC_H_
#define PITRACT_COMMON_CODEC_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace pitract {

/// Σ*-string codec.
///
/// Section 3 of the paper encodes databases D and queries Q as strings over a
/// finite alphabet Σ "with necessary delimiters". The core factorization and
/// reduction machinery (src/core) is defined over such strings, so this codec
/// provides the delimiting/escaping conventions used throughout:
///
///  * '#' separates fields (the paper's own delimiter in `D#Q`),
///  * '@' is the Lemma 2 padding symbol ("a special symbol that is not used
///    anywhere else") — guaranteed unused because payload occurrences are
///    escaped,
///  * '\\' escapes itself and both delimiters.
namespace codec {

/// Escapes '\\', '#' and '@' in `raw` so the result is delimiter-free.
std::string Escape(std::string_view raw);

/// Inverse of Escape. Fails on dangling escapes.
Result<std::string> Unescape(std::string_view escaped);

/// Joins fields with '#', escaping each. Round-trips via DecodeFields.
std::string EncodeFields(const std::vector<std::string>& fields);

/// Splits a '#'-joined encoding back into unescaped fields.
Result<std::vector<std::string>> DecodeFields(std::string_view encoded);

/// Zero-copy fast path of DecodeFields for the common escape-free case:
/// splits on '#' into string_view slices of `encoded` with no per-field
/// copies. Returns std::nullopt whenever `encoded` contains an escape
/// character (callers fall back to the copying DecodeFields). The views
/// alias `encoded` and are valid only while its storage lives.
std::optional<std::vector<std::string_view>> DecodeFieldsView(
    std::string_view encoded);

/// Compact textual encoding of an int64 sequence ("3,1,4,..." after Escape).
std::string EncodeInts(const std::vector<int64_t>& values);

/// Inverse of EncodeInts. Fails on malformed numerals.
Result<std::vector<int64_t>> DecodeInts(std::string_view encoded);

/// DecodeFieldsView-style span decoder for the hot int-list payloads:
/// parses `encoded` straight into `*out` (cleared first, capacity kept), so
/// repeated decodes reuse one buffer and no Result<vector> temporary is
/// materialized. On failure `*out` is left cleared. DecodeInts delegates
/// here; prefer this overload on answer paths that decode per query.
Status DecodeIntsInto(std::string_view encoded, std::vector<int64_t>* out);

/// DecodeFields + an arity check, the instance-decoding preamble shared by
/// every Σ*-level problem and hook ("`what` expects n fields, got m").
Result<std::vector<std::string>> DecodeFieldsExactly(std::string_view encoded,
                                                     size_t n,
                                                     std::string_view what);

/// Decodes a field that must hold exactly one int64.
Result<int64_t> DecodeSingleInt(std::string_view field);

/// Lemma 2 padding: σ(x) = π₁(x) @ π₂(x). Escapes both parts, joins on '@'.
std::string PadPair(std::string_view first, std::string_view second);

/// Splits a PadPair encoding on its single unescaped '@'.
Result<std::pair<std::string, std::string>> UnpadPair(std::string_view padded);

}  // namespace codec
}  // namespace pitract

#endif  // PITRACT_COMMON_CODEC_H_
