#ifndef PITRACT_COMMON_STATUS_H_
#define PITRACT_COMMON_STATUS_H_

#include <string>
#include <string_view>

namespace pitract {

/// Canonical error space for all fallible pitract operations.
///
/// The library follows the database-engine convention (RocksDB/Arrow style):
/// no exceptions cross an API boundary; fallible operations return a Status
/// (or a Result<T>, see result.h) that callers must inspect.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kAlreadyExists = 5,
  kUnimplemented = 6,
  kInternal = 7,
  /// Transient contention (e.g. the serving layer refusing to re-key an
  /// entry while a Π run for it is in flight) or load shedding (an
  /// admission queue at its configured depth): safe to retry or degrade.
  kUnavailable = 8,
  /// The item's deadline passed before it could be answered; the serving
  /// pipeline completes such items without burning answer work on them.
  kDeadlineExceeded = 9,
};

/// Human-readable name of a StatusCode ("OK", "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to copy when OK (no message allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace pitract

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if it is not OK. The database-engine early-return idiom.
#define PITRACT_RETURN_IF_ERROR(expr)                \
  do {                                               \
    ::pitract::Status _pitract_status = (expr);      \
    if (!_pitract_status.ok()) return _pitract_status; \
  } while (false)

#endif  // PITRACT_COMMON_STATUS_H_
