#include "common/codec.h"

#include <charconv>

namespace pitract {
namespace codec {

std::string Escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    if (c == '\\' || c == '#' || c == '@') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

Result<std::string> Unescape(std::string_view escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (size_t i = 0; i < escaped.size(); ++i) {
    char c = escaped[i];
    if (c == '\\') {
      if (i + 1 >= escaped.size()) {
        return Status::InvalidArgument("dangling escape at end of input");
      }
      out.push_back(escaped[++i]);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string EncodeFields(const std::vector<std::string>& fields) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out.push_back('#');
    out += Escape(fields[i]);
  }
  return out;
}

Result<std::vector<std::string>> DecodeFields(std::string_view encoded) {
  std::vector<std::string> fields;
  std::string current;
  for (size_t i = 0; i < encoded.size(); ++i) {
    char c = encoded[i];
    if (c == '\\') {
      if (i + 1 >= encoded.size()) {
        return Status::InvalidArgument("dangling escape in field encoding");
      }
      current.push_back(encoded[++i]);
    } else if (c == '#') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

std::optional<std::vector<std::string_view>> DecodeFieldsView(
    std::string_view encoded) {
  if (encoded.find('\\') != std::string_view::npos) return std::nullopt;
  std::vector<std::string_view> fields;
  size_t pos = 0;
  while (true) {
    size_t hash = encoded.find('#', pos);
    if (hash == std::string_view::npos) {
      fields.push_back(encoded.substr(pos));
      return fields;
    }
    fields.push_back(encoded.substr(pos, hash - pos));
    pos = hash + 1;
  }
}

std::string EncodeInts(const std::vector<int64_t>& values) {
  std::string out;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += std::to_string(values[i]);
  }
  return out;
}

Result<std::vector<int64_t>> DecodeInts(std::string_view encoded) {
  std::vector<int64_t> values;
  PITRACT_RETURN_IF_ERROR(DecodeIntsInto(encoded, &values));
  return values;
}

Status DecodeIntsInto(std::string_view encoded, std::vector<int64_t>* out) {
  out->clear();
  if (encoded.empty()) return Status::OK();
  size_t pos = 0;
  while (pos <= encoded.size()) {
    size_t comma = encoded.find(',', pos);
    std::string_view token = encoded.substr(
        pos, comma == std::string_view::npos ? std::string_view::npos
                                             : comma - pos);
    int64_t value = 0;
    auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      out->clear();
      return Status::InvalidArgument("malformed integer token: '" +
                                     std::string(token) + "'");
    }
    out->push_back(value);
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  return Status::OK();
}

std::string PadPair(std::string_view first, std::string_view second) {
  std::string out = Escape(first);
  out.push_back('@');
  out += Escape(second);
  return out;
}

Result<std::pair<std::string, std::string>> UnpadPair(
    std::string_view padded) {
  // Find the single unescaped '@'.
  size_t at = std::string_view::npos;
  for (size_t i = 0; i < padded.size(); ++i) {
    if (padded[i] == '\\') {
      ++i;  // Skip the escaped character.
    } else if (padded[i] == '@') {
      at = i;
      break;
    }
  }
  if (at == std::string_view::npos) {
    return Status::InvalidArgument("no padding symbol '@' found");
  }
  auto first = Unescape(padded.substr(0, at));
  if (!first.ok()) return first.status();
  auto second = Unescape(padded.substr(at + 1));
  if (!second.ok()) return second.status();
  return std::make_pair(std::move(first).value(), std::move(second).value());
}

Result<std::vector<std::string>> DecodeFieldsExactly(std::string_view encoded,
                                                     size_t n,
                                                     std::string_view what) {
  auto fields = DecodeFields(encoded);
  if (!fields.ok()) return fields.status();
  if (fields->size() != n) {
    return Status::InvalidArgument(std::string(what) + " expects " +
                                   std::to_string(n) + " fields, got " +
                                   std::to_string(fields->size()));
  }
  return fields;
}

Result<int64_t> DecodeSingleInt(std::string_view field) {
  auto ints = DecodeInts(field);
  if (!ints.ok()) return ints.status();
  if (ints->size() != 1) {
    return Status::InvalidArgument("expected one integer, got " +
                                   std::to_string(ints->size()));
  }
  return (*ints)[0];
}

}  // namespace codec
}  // namespace pitract
