#ifndef PITRACT_COMMON_COST_METER_H_
#define PITRACT_COMMON_COST_METER_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace pitract {

/// Abstract cost of a computation in the work/depth (a.k.a. work/span) model.
///
/// `work`  — total number of unit operations over all processors; the
///           sequential-time proxy (PTIME bounds are stated on work).
/// `depth` — length of the critical path; the PRAM-time proxy. The paper's
///           "NC" claim for online query answering is, operationally,
///           "depth is O(log^k |D|)" — which the ncsim executor measures.
struct Cost {
  int64_t work = 0;
  int64_t depth = 0;

  Cost() = default;
  Cost(int64_t w, int64_t d) : work(w), depth(d) {}

  /// Sequential composition: work and depth both add.
  Cost& operator+=(const Cost& other) {
    work += other.work;
    depth += other.depth;
    return *this;
  }
  friend Cost operator+(Cost a, const Cost& b) { return a += b; }

  friend bool operator==(const Cost& a, const Cost& b) {
    return a.work == b.work && a.depth == b.depth;
  }

  std::string ToString() const;
};

/// Accumulates Cost for one computation, plus byte-level I/O counters that
/// the storage layer charges (scanned vs. touched bytes make Example 1's
/// "1.9 days vs. seconds" arithmetic reproducible).
///
/// Counters are lock-free atomics so one meter may be charged from several
/// threads (the engine's concurrent serving paths share meters for store
/// hit/miss accounting) without torn counts. Relaxed ordering suffices:
/// each counter is an independent monotone sum, and readers that need a
/// point-in-time view take it after joining the charging threads.
class CostMeter {
 public:
  CostMeter() = default;
  CostMeter(const CostMeter&) = delete;
  CostMeter& operator=(const CostMeter&) = delete;

  /// Charges `ops` sequential unit operations (work += ops, depth += ops).
  void AddSerial(int64_t ops) {
    work_.fetch_add(ops, std::memory_order_relaxed);
    depth_.fetch_add(ops, std::memory_order_relaxed);
  }

  /// Charges a parallel block that performed `total_work` operations with
  /// critical path `span` (work += total_work, depth += span).
  void AddParallel(int64_t total_work, int64_t span) {
    work_.fetch_add(total_work, std::memory_order_relaxed);
    depth_.fetch_add(span, std::memory_order_relaxed);
  }

  /// Merges a sub-computation that ran *sequentially after* prior charges.
  void AddSequential(const Cost& sub) {
    work_.fetch_add(sub.work, std::memory_order_relaxed);
    depth_.fetch_add(sub.depth, std::memory_order_relaxed);
  }

  /// Byte-level counters (storage-layer accounting).
  void AddBytesRead(int64_t n) {
    bytes_read_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddBytesWritten(int64_t n) {
    bytes_written_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Folds another meter's counters into this one (all four, sequential
  /// composition). The serving layer gives each worker thread its own
  /// meter and merges them after the join, so per-query charging never
  /// contends on one shared meter's cache lines.
  void MergeFrom(const CostMeter& other) {
    work_.fetch_add(other.work(), std::memory_order_relaxed);
    depth_.fetch_add(other.depth(), std::memory_order_relaxed);
    bytes_read_.fetch_add(other.bytes_read(), std::memory_order_relaxed);
    bytes_written_.fetch_add(other.bytes_written(),
                             std::memory_order_relaxed);
  }

  Cost cost() const { return Cost(work(), depth()); }
  int64_t work() const { return work_.load(std::memory_order_relaxed); }
  int64_t depth() const { return depth_.load(std::memory_order_relaxed); }
  int64_t bytes_read() const {
    return bytes_read_.load(std::memory_order_relaxed);
  }
  int64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }

  void Reset() {
    work_.store(0, std::memory_order_relaxed);
    depth_.store(0, std::memory_order_relaxed);
    bytes_read_.store(0, std::memory_order_relaxed);
    bytes_written_.store(0, std::memory_order_relaxed);
  }

  std::string ToString() const;

 private:
  std::atomic<int64_t> work_{0};
  std::atomic<int64_t> depth_{0};
  std::atomic<int64_t> bytes_read_{0};
  std::atomic<int64_t> bytes_written_{0};
};

}  // namespace pitract

#endif  // PITRACT_COMMON_COST_METER_H_
