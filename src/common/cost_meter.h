#ifndef PITRACT_COMMON_COST_METER_H_
#define PITRACT_COMMON_COST_METER_H_

#include <cstdint>
#include <string>

namespace pitract {

/// Abstract cost of a computation in the work/depth (a.k.a. work/span) model.
///
/// `work`  — total number of unit operations over all processors; the
///           sequential-time proxy (PTIME bounds are stated on work).
/// `depth` — length of the critical path; the PRAM-time proxy. The paper's
///           "NC" claim for online query answering is, operationally,
///           "depth is O(log^k |D|)" — which the ncsim executor measures.
struct Cost {
  int64_t work = 0;
  int64_t depth = 0;

  Cost() = default;
  Cost(int64_t w, int64_t d) : work(w), depth(d) {}

  /// Sequential composition: work and depth both add.
  Cost& operator+=(const Cost& other) {
    work += other.work;
    depth += other.depth;
    return *this;
  }
  friend Cost operator+(Cost a, const Cost& b) { return a += b; }

  friend bool operator==(const Cost& a, const Cost& b) {
    return a.work == b.work && a.depth == b.depth;
  }

  std::string ToString() const;
};

/// Accumulates Cost for one computation, plus byte-level I/O counters that
/// the storage layer charges (scanned vs. touched bytes make Example 1's
/// "1.9 days vs. seconds" arithmetic reproducible).
class CostMeter {
 public:
  CostMeter() = default;

  /// Charges `ops` sequential unit operations (work += ops, depth += ops).
  void AddSerial(int64_t ops) {
    cost_.work += ops;
    cost_.depth += ops;
  }

  /// Charges a parallel block that performed `total_work` operations with
  /// critical path `span` (work += total_work, depth += span).
  void AddParallel(int64_t total_work, int64_t span) {
    cost_.work += total_work;
    cost_.depth += span;
  }

  /// Merges a sub-computation that ran *sequentially after* prior charges.
  void AddSequential(const Cost& sub) { cost_ += sub; }

  /// Byte-level counters (storage-layer accounting).
  void AddBytesRead(int64_t n) { bytes_read_ += n; }
  void AddBytesWritten(int64_t n) { bytes_written_ += n; }

  const Cost& cost() const { return cost_; }
  int64_t work() const { return cost_.work; }
  int64_t depth() const { return cost_.depth; }
  int64_t bytes_read() const { return bytes_read_; }
  int64_t bytes_written() const { return bytes_written_; }

  void Reset() {
    cost_ = Cost();
    bytes_read_ = 0;
    bytes_written_ = 0;
  }

  std::string ToString() const;

 private:
  Cost cost_;
  int64_t bytes_read_ = 0;
  int64_t bytes_written_ = 0;
};

}  // namespace pitract

#endif  // PITRACT_COMMON_COST_METER_H_
