#ifndef PITRACT_COMMON_RESULT_H_
#define PITRACT_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace pitract {

/// A value-or-error type: either holds a T (and an OK status) or a non-OK
/// Status. Mirrors arrow::Result / absl::StatusOr.
///
/// Usage:
///   Result<int> r = Parse(s);
///   if (!r.ok()) return r.status();
///   Use(*r);
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value (implicit by design, mirroring
  /// absl::StatusOr, so `return value;` works in functions returning
  /// Result<T>).
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  /// Constructs a Result holding an error. `status` must not be OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Value accessors. Must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the held value, or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

}  // namespace pitract

/// Assigns the value of a Result expression to `lhs`, or early-returns its
/// status. `lhs` may include a declaration, e.g.
///   PITRACT_ASSIGN_OR_RETURN(auto tree, BuildTree(g));
#define PITRACT_ASSIGN_OR_RETURN(lhs, rexpr)                     \
  PITRACT_ASSIGN_OR_RETURN_IMPL_(                                \
      PITRACT_RESULT_CONCAT_(_pitract_result, __LINE__), lhs, rexpr)

#define PITRACT_RESULT_CONCAT_INNER_(x, y) x##y
#define PITRACT_RESULT_CONCAT_(x, y) PITRACT_RESULT_CONCAT_INNER_(x, y)
#define PITRACT_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                   \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

#endif  // PITRACT_COMMON_RESULT_H_
