#include "common/cost_meter.h"

#include <sstream>

namespace pitract {

std::string Cost::ToString() const {
  std::ostringstream os;
  os << "{work=" << work << ", depth=" << depth << "}";
  return os.str();
}

std::string CostMeter::ToString() const {
  std::ostringstream os;
  os << "{work=" << work() << ", depth=" << depth()
     << ", bytes_read=" << bytes_read() << ", bytes_written=" << bytes_written()
     << "}";
  return os.str();
}

}  // namespace pitract
