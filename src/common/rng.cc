#include "common/rng.h"

#include <cassert>
#include <cmath>
#include <numeric>

namespace pitract {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  assert(bound > 0);
  // Debiased modulo via rejection on the top chunk.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(span == 0 ? Next() : NextBelow(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

uint64_t Rng::NextZipf(uint64_t n, double theta) {
  assert(n > 0);
  if (theta <= 0.0) return NextBelow(n);
  if (zipf_n_ != n || zipf_theta_ != theta) {
    zipf_n_ = n;
    zipf_theta_ = theta;
    zipf_zetan_ = 0.0;
    for (uint64_t i = 1; i <= n; ++i) {
      zipf_zetan_ += 1.0 / std::pow(static_cast<double>(i), theta);
    }
  }
  const double alpha = 1.0 / (1.0 - theta);
  const double zeta2 = 1.0 + std::pow(0.5, theta);
  const double eta =
      (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
      (1.0 - zeta2 / zipf_zetan_);
  const double u = NextDouble();
  const double uz = u * zipf_zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta)) return 1;
  uint64_t rank = static_cast<uint64_t>(
      static_cast<double>(n) * std::pow(eta * u - eta + 1.0, alpha));
  if (rank >= n) rank = n - 1;
  return rank;
}

std::vector<int64_t> Rng::Permutation(int64_t n) {
  std::vector<int64_t> p(static_cast<size_t>(n));
  std::iota(p.begin(), p.end(), int64_t{0});
  Shuffle(&p);
  return p;
}

}  // namespace pitract
