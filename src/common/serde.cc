#include "common/serde.h"

#include <limits>

#include "common/failpoint.h"

namespace pitract {
namespace serde {

namespace {

template <typename T>
void PutLittleEndian(std::string* out, T value) {
  for (size_t i = 0; i < sizeof(T); ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

}  // namespace

void PutU32(std::string* out, uint32_t value) { PutLittleEndian(out, value); }
void PutU64(std::string* out, uint64_t value) { PutLittleEndian(out, value); }

void PutBytes(std::string* out, std::string_view bytes) {
  PutU64(out, static_cast<uint64_t>(bytes.size()));
  out->append(bytes);
}

uint64_t Checksum64(std::string_view bytes) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  // Final avalanche: FNV-1a's low bits are weak for short inputs; the
  // xor-shift fold spreads every input bit into the stored word.
  hash ^= hash >> 33;
  hash *= 0xff51afd7ed558ccdull;
  hash ^= hash >> 29;
  return hash;
}

Result<uint32_t> Reader::ReadU32() {
  if (remaining() < sizeof(uint32_t)) {
    return Status::OutOfRange("serde: truncated u32");
  }
  uint32_t value = 0;
  for (size_t i = 0; i < sizeof(uint32_t); ++i) {
    value |= static_cast<uint32_t>(
                 static_cast<unsigned char>(buffer_[pos_ + i]))
             << (8 * i);
  }
  pos_ += sizeof(uint32_t);
  return value;
}

Result<uint64_t> Reader::ReadU64() {
  if (remaining() < sizeof(uint64_t)) {
    return Status::OutOfRange("serde: truncated u64");
  }
  uint64_t value = 0;
  for (size_t i = 0; i < sizeof(uint64_t); ++i) {
    value |= static_cast<uint64_t>(
                 static_cast<unsigned char>(buffer_[pos_ + i]))
             << (8 * i);
  }
  pos_ += sizeof(uint64_t);
  return value;
}

Result<std::string> Reader::ReadBytes() {
  // Fault-injection edge for every serde consumer (spill frame decode):
  // fires as if the length-prefixed frame were torn mid-read.
  if (PITRACT_FAILPOINT("serde.read_bytes")) {
    return Status::OutOfRange("serde: failpoint serde.read_bytes fired");
  }
  const size_t mark = pos_;
  auto length = ReadU64();
  if (!length.ok()) return length.status();
  if (*length > remaining()) {
    pos_ = mark;  // leave the reader where it was: fail without consuming
    return Status::OutOfRange("serde: byte string longer than buffer");
  }
  std::string bytes(buffer_.substr(pos_, static_cast<size_t>(*length)));
  pos_ += static_cast<size_t>(*length);
  return bytes;
}

}  // namespace serde
}  // namespace pitract
