#ifndef PITRACT_COMMON_TIMER_H_
#define PITRACT_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace pitract {

/// Monotonic wall-clock stopwatch for coarse timings in examples and
/// experiment harnesses (benchmarks proper use google-benchmark's timing).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }
  double ElapsedMicros() const {
    return static_cast<double>(ElapsedNanos()) / 1e3;
  }
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) / 1e9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Current steady-clock reading in nanoseconds: the time base for serving
/// deadlines. Only differences (and comparisons against deadlines built
/// with DeadlineAfterNanos) are meaningful; the epoch is unspecified.
inline int64_t MonotonicNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Absolute deadline `relative_nanos` from now on the monotonic clock.
/// relative_nanos <= 0 means "no deadline" and maps to 0 (the sentinel
/// DeadlineExpired treats as never-expiring).
inline int64_t DeadlineAfterNanos(int64_t relative_nanos) {
  return relative_nanos > 0 ? MonotonicNowNanos() + relative_nanos : 0;
}

/// True iff `deadline_nanos` (an absolute monotonic reading, 0 = none)
/// has passed at `now_nanos`.
inline bool DeadlineExpired(int64_t deadline_nanos, int64_t now_nanos) {
  return deadline_nanos != 0 && now_nanos > deadline_nanos;
}

}  // namespace pitract

#endif  // PITRACT_COMMON_TIMER_H_
