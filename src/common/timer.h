#ifndef PITRACT_COMMON_TIMER_H_
#define PITRACT_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace pitract {

/// Monotonic wall-clock stopwatch for coarse timings in examples and
/// experiment harnesses (benchmarks proper use google-benchmark's timing).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }
  double ElapsedMicros() const {
    return static_cast<double>(ElapsedNanos()) / 1e3;
  }
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) / 1e9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pitract

#endif  // PITRACT_COMMON_TIMER_H_
