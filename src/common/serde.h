#ifndef PITRACT_COMMON_SERDE_H_
#define PITRACT_COMMON_SERDE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace pitract {

/// Length-prefixed binary framing for persisted engine state.
///
/// The Σ*-level codec (common/codec.h) delimits *payload* strings with
/// escapable text separators; serde is the complementary *container* layer:
/// fixed-width little-endian integers and u64-length-prefixed byte strings,
/// so arbitrary binary payloads (including codec-encoded Π(D) structures)
/// frame without escaping. PreparedStore spill files are built from these
/// primitives.
namespace serde {

/// Appends a little-endian fixed-width integer to `out`.
void PutU32(std::string* out, uint32_t value);
void PutU64(std::string* out, uint64_t value);

/// Appends `bytes` prefixed with its u64 length.
void PutBytes(std::string* out, std::string_view bytes);

/// 64-bit payload checksum (canonical byte-at-a-time FNV-1a with a final
/// avalanche fold). Deliberately independent of the word-folded
/// engine::Fnv1a64 content digest: spill frames carry this over their
/// framed body so a flipped bit that still *parses* as valid frames is
/// rejected instead of served. Detects any single-bit flip and any
/// truncation/extension of the covered bytes.
uint64_t Checksum64(std::string_view bytes);

/// Sequential reader over a serde-framed buffer. Every read either advances
/// past a well-formed frame or fails without consuming input, so corrupt or
/// truncated spill files degrade to a clean error, never to garbage state.
class Reader {
 public:
  explicit Reader(std::string_view buffer) : buffer_(buffer) {}

  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  /// Reads a u64-length-prefixed byte string (copies out of the buffer).
  Result<std::string> ReadBytes();

  /// Bytes not yet consumed.
  size_t remaining() const { return buffer_.size() - pos_; }
  /// Bytes already consumed (the current read offset) — lets a caller
  /// checksum "everything after the header" without re-parsing it.
  size_t consumed() const { return pos_; }
  bool exhausted() const { return pos_ == buffer_.size(); }

 private:
  std::string_view buffer_;
  size_t pos_ = 0;
};

}  // namespace serde
}  // namespace pitract

#endif  // PITRACT_COMMON_SERDE_H_
