#include "common/failpoint.h"

#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/rng.h"

namespace pitract {
namespace failpoint {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

namespace {

/// One armed site: policy, counters, and (for kProbability) its own
/// seeded stream, so two sites armed with the same seed draw identical,
/// reproducible sequences independently of evaluation interleaving at
/// *other* sites.
struct Site {
  Policy policy;
  int64_t evaluations = 0;
  int64_t fires = 0;
  std::unique_ptr<Rng> rng;  // kProbability only
};

struct Registry {
  std::mutex mutex;
  std::unordered_map<std::string, Site> sites;
};

/// Leaked singleton: failpoints may be evaluated from detached serving
/// threads during process teardown, so the registry must outlive every
/// static destructor.
Registry& TheRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

}  // namespace

Policy Never() { return Policy{}; }

Policy Always() {
  Policy policy;
  policy.kind = Policy::Kind::kAlways;
  return policy;
}

Policy Once() {
  Policy policy;
  policy.kind = Policy::Kind::kOnce;
  return policy;
}

Policy EveryNth(uint64_t n) {
  Policy policy;
  policy.kind = Policy::Kind::kEveryNth;
  policy.n = n == 0 ? 1 : n;
  return policy;
}

Policy WithProbability(double p, uint64_t seed) {
  Policy policy;
  policy.kind = Policy::Kind::kProbability;
  policy.p = p;
  policy.seed = seed;
  return policy;
}

void Arm(std::string_view site, const Policy& policy) {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  Site& slot = registry.sites[std::string(site)];
  slot.policy = policy;
  slot.evaluations = 0;
  slot.fires = 0;
  slot.rng = policy.kind == Policy::Kind::kProbability
                 ? std::make_unique<Rng>(policy.seed)
                 : nullptr;
  internal::g_enabled.store(true, std::memory_order_relaxed);
}

void Disarm(std::string_view site) {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.sites.erase(std::string(site));
  if (registry.sites.empty()) {
    internal::g_enabled.store(false, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.sites.clear();
  internal::g_enabled.store(false, std::memory_order_relaxed);
}

bool ShouldFail(std::string_view site) {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto it = registry.sites.find(std::string(site));
  if (it == registry.sites.end()) return false;
  Site& slot = it->second;
  ++slot.evaluations;
  bool fire = false;
  switch (slot.policy.kind) {
    case Policy::Kind::kNever:
      break;
    case Policy::Kind::kAlways:
      fire = true;
      break;
    case Policy::Kind::kOnce:
      fire = slot.fires == 0;
      break;
    case Policy::Kind::kEveryNth:
      fire = static_cast<uint64_t>(slot.evaluations) % slot.policy.n == 0;
      break;
    case Policy::Kind::kProbability:
      fire = slot.rng != nullptr && slot.rng->NextBool(slot.policy.p);
      break;
  }
  if (fire) ++slot.fires;
  return fire;
}

SiteStats StatsFor(std::string_view site) {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto it = registry.sites.find(std::string(site));
  if (it == registry.sites.end()) return SiteStats{};
  return SiteStats{it->second.evaluations, it->second.fires};
}

std::vector<std::string> ArmedSites() {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::vector<std::string> names;
  names.reserve(registry.sites.size());
  for (const auto& [name, site] : registry.sites) names.push_back(name);
  return names;
}

}  // namespace failpoint
}  // namespace pitract
