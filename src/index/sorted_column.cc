#include "index/sorted_column.h"

#include <algorithm>

#include "ncsim/ncsim.h"

namespace pitract {
namespace index {

SortedColumn SortedColumn::Build(std::span<const int64_t> values,
                                 CostMeter* meter) {
  SortedColumn col;
  col.sorted_.assign(values.begin(), values.end());
  std::sort(col.sorted_.begin(), col.sorted_.end());
  if (meter != nullptr) {
    const int64_t n = static_cast<int64_t>(values.size());
    const int64_t lg = ncsim::CeilLog2(n < 1 ? 1 : n);
    meter->AddSerial(n * (lg + 1));  // O(n log n) comparison sort.
    meter->AddBytesRead(n * static_cast<int64_t>(sizeof(int64_t)));
    meter->AddBytesWritten(n * static_cast<int64_t>(sizeof(int64_t)));
  }
  return col;
}

bool SortedColumn::Contains(int64_t value, CostMeter* meter) const {
  ncsim::ChargeBinarySearch(meter, size());
  return std::binary_search(sorted_.begin(), sorted_.end(), value);
}

bool SortedColumn::ContainsInRange(int64_t lo, int64_t hi,
                                   CostMeter* meter) const {
  if (lo > hi) return false;
  ncsim::ChargeBinarySearch(meter, size());
  auto it = std::lower_bound(sorted_.begin(), sorted_.end(), lo);
  return it != sorted_.end() && *it <= hi;
}

int64_t SortedColumn::CountInRange(int64_t lo, int64_t hi,
                                   CostMeter* meter) const {
  if (lo > hi) return 0;
  ncsim::ChargeBinarySearch(meter, size());
  ncsim::ChargeBinarySearch(meter, size());
  auto first = std::lower_bound(sorted_.begin(), sorted_.end(), lo);
  auto last = std::upper_bound(sorted_.begin(), sorted_.end(), hi);
  return static_cast<int64_t>(last - first);
}

}  // namespace index
}  // namespace pitract
