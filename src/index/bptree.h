#ifndef PITRACT_INDEX_BPTREE_H_
#define PITRACT_INDEX_BPTREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/cost_meter.h"
#include "common/status.h"

namespace pitract {
namespace index {

/// Tuning knobs for the B+-tree node geometry.
struct BPlusTreeOptions {
  /// Maximum number of (key, payload) entries per leaf. Must be >= 4.
  int max_leaf_entries = 64;
  /// Maximum number of children per internal node. Must be >= 4.
  int max_internal_children = 64;
};

/// Summary counters exposed for tests and experiment harnesses.
struct BPlusTreeStats {
  int height = 0;  // 1 for a lone leaf.
  int64_t num_entries = 0;
  int64_t num_leaves = 0;
  int64_t num_internal = 0;
};

/// A classic in-memory B+-tree over (int64 key → int64 payload) entries with
/// duplicate keys allowed — the preprocessing structure of Example 1 ("build
/// a B+-tree on the values of the A column, then answer any point-selection
/// query in O(log |D|)").
///
/// Supported operations: Insert, Delete (with borrow/merge rebalancing),
/// sorted BulkLoad, point/range existence probes, leaf-chained iteration,
/// and a Validate() that checks every structural invariant (used heavily by
/// the property tests).
///
/// Cost accounting: each probe charges its CostMeter ~log2(fanout) unit ops
/// per visited node plus the node bytes touched, so measured depth is
/// Θ(height · log fanout) = Θ(log n).
class BPlusTree {
 public:
  explicit BPlusTree(BPlusTreeOptions options = {});
  ~BPlusTree();

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&&) noexcept;
  BPlusTree& operator=(BPlusTree&&) noexcept;

  /// Inserts one entry (duplicates allowed).
  void Insert(int64_t key, int64_t payload);

  /// Removes one entry matching (key, payload). Returns NotFound if absent.
  Status Delete(int64_t key, int64_t payload);

  /// Replaces the tree contents from entries sorted by key (stable on
  /// payloads). Fails if `sorted_entries` is not sorted.
  Status BulkLoad(const std::vector<std::pair<int64_t, int64_t>>& sorted_entries);

  /// Is there any entry with exactly this key? O(log n), charged to meter.
  bool PointExists(int64_t key, CostMeter* meter) const;

  /// Is there any entry with lo <= key <= hi? O(log n), charged to meter.
  bool RangeExists(int64_t lo, int64_t hi, CostMeter* meter) const;

  /// Number of entries with lo <= key <= hi (walks the leaf chain across the
  /// range; O(log n + answer) charged to meter).
  int64_t RangeCount(int64_t lo, int64_t hi, CostMeter* meter) const;

  /// Payloads of all entries with key == `key`, in insertion-sorted order.
  std::vector<int64_t> Lookup(int64_t key, CostMeter* meter) const;

  int64_t size() const { return num_entries_; }
  bool empty() const { return num_entries_ == 0; }
  BPlusTreeStats Stats() const;

  /// Checks every invariant (key order, occupancy, uniform depth, separator
  /// correctness, leaf-chain consistency). Returns the first violation.
  Status Validate() const;

  /// Forward iterator over entries in key order.
  class Iterator {
   public:
    bool Valid() const { return leaf_ != nullptr; }
    int64_t key() const;
    int64_t payload() const;
    void Next();

   private:
    friend class BPlusTree;
    const void* leaf_ = nullptr;  // Leaf node, type-erased in the header.
    int pos_ = 0;
  };

  /// Iterator at the first entry with key >= `key` (invalid if none).
  Iterator SeekFirst(int64_t key) const;
  /// Iterator at the smallest entry (invalid if empty).
  Iterator Begin() const;

 private:
  struct Node;

  Node* root() const { return root_.get(); }
  const Node* FindLeaf(int64_t key, CostMeter* meter) const;

  // Insert helpers.
  struct SplitResult;
  bool InsertRec(Node* node, int64_t key, int64_t payload, SplitResult* split);

  // Delete helpers.
  bool DeleteRec(Node* node, int64_t key, int64_t payload, bool* underflow);
  void FixChildUnderflow(Node* parent, int child_idx);

  Status ValidateRec(const Node* node, int depth, int expected_depth,
                     int64_t lower, bool has_lower, int64_t upper,
                     bool has_upper) const;

  BPlusTreeOptions options_;
  std::unique_ptr<Node> root_;
  int height_ = 1;
  int64_t num_entries_ = 0;
};

}  // namespace index
}  // namespace pitract

#endif  // PITRACT_INDEX_BPTREE_H_
