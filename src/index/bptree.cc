#include "index/bptree.h"

#include <algorithm>
#include <cassert>

#include "ncsim/ncsim.h"

namespace pitract {
namespace index {

namespace {
constexpr int64_t kEntryBytes = 16;  // key + payload.
}  // namespace

/// One tree node. Internal nodes hold `children.size() - 1` separators with
/// the invariant  entries(children[i]) <= keys[i] <= entries(children[i+1])
/// (separators need not themselves occur as entry keys, which lets Delete
/// skip separator rewrites). Leaves hold parallel keys/payloads arrays and
/// are chained through `next`.
struct BPlusTree::Node {
  explicit Node(bool leaf) : is_leaf(leaf) {}

  bool is_leaf;
  std::vector<int64_t> keys;
  std::vector<int64_t> payloads;                 // leaf only
  std::vector<std::unique_ptr<Node>> children;   // internal only
  Node* next = nullptr;                          // leaf chain

  int entry_count() const { return static_cast<int>(keys.size()); }
  int child_count() const { return static_cast<int>(children.size()); }
};

struct BPlusTree::SplitResult {
  int64_t separator = 0;
  std::unique_ptr<Node> right;
};

BPlusTree::BPlusTree(BPlusTreeOptions options) : options_(options) {
  assert(options_.max_leaf_entries >= 4);
  assert(options_.max_internal_children >= 4);
  root_ = std::make_unique<Node>(/*leaf=*/true);
}

BPlusTree::~BPlusTree() {
  if (!root_) return;
  // Destroy iteratively: deep trees must not overflow the call stack.
  std::vector<std::unique_ptr<Node>> pending;
  pending.push_back(std::move(root_));
  while (!pending.empty()) {
    std::unique_ptr<Node> node = std::move(pending.back());
    pending.pop_back();
    for (auto& child : node->children) pending.push_back(std::move(child));
  }
}

// ---------------------------------------------------------------------------
// Search
// ---------------------------------------------------------------------------

namespace {

/// Index of the child to descend into when looking for the *first* entry
/// with key >= `key`: the leftmost child whose upper separator is >= key.
int DescendLowerBound(const std::vector<int64_t>& separators, int64_t key) {
  return static_cast<int>(
      std::lower_bound(separators.begin(), separators.end(), key) -
      separators.begin());
}

/// Index of the child to receive an inserted `key`: the rightmost child
/// whose range admits it (keeps equal keys clustered to the right).
int DescendUpperBound(const std::vector<int64_t>& separators, int64_t key) {
  return static_cast<int>(
      std::upper_bound(separators.begin(), separators.end(), key) -
      separators.begin());
}

void ChargeNodeProbe(CostMeter* meter, int node_size) {
  if (meter == nullptr) return;
  meter->AddSerial(ncsim::CeilLog2(node_size < 1 ? 1 : node_size) + 1);
  meter->AddBytesRead(static_cast<int64_t>(node_size) * kEntryBytes);
}

}  // namespace

BPlusTree::BPlusTree(BPlusTree&&) noexcept = default;
BPlusTree& BPlusTree::operator=(BPlusTree&&) noexcept = default;

BPlusTree::Iterator BPlusTree::SeekFirst(int64_t key) const {
  const Node* node = root();
  while (!node->is_leaf) {
    int idx = DescendLowerBound(node->keys, key);
    node = node->children[static_cast<size_t>(idx)].get();
  }
  int pos = static_cast<int>(
      std::lower_bound(node->keys.begin(), node->keys.end(), key) -
      node->keys.begin());
  if (pos == node->entry_count()) {
    // All entries in this leaf are < key; the next leaf (if any) starts with
    // an entry >= key by the separator invariant.
    node = node->next;
    pos = 0;
  }
  Iterator it;
  if (node != nullptr && node->entry_count() > 0) {
    it.leaf_ = node;
    it.pos_ = pos;
  }
  return it;
}

BPlusTree::Iterator BPlusTree::Begin() const {
  const Node* node = root();
  while (!node->is_leaf) node = node->children.front().get();
  Iterator it;
  if (node->entry_count() > 0) {
    it.leaf_ = node;
    it.pos_ = 0;
  }
  return it;
}

int64_t BPlusTree::Iterator::key() const {
  const auto* leaf = static_cast<const BPlusTree::Node*>(leaf_);
  return leaf->keys[static_cast<size_t>(pos_)];
}

int64_t BPlusTree::Iterator::payload() const {
  const auto* leaf = static_cast<const BPlusTree::Node*>(leaf_);
  return leaf->payloads[static_cast<size_t>(pos_)];
}

void BPlusTree::Iterator::Next() {
  const auto* leaf = static_cast<const BPlusTree::Node*>(leaf_);
  if (++pos_ >= leaf->entry_count()) {
    leaf_ = leaf->next;
    pos_ = 0;
  }
}

const BPlusTree::Node* BPlusTree::FindLeaf(int64_t key,
                                           CostMeter* meter) const {
  const Node* node = root();
  while (!node->is_leaf) {
    ChargeNodeProbe(meter, node->entry_count());
    int idx = DescendLowerBound(node->keys, key);
    node = node->children[static_cast<size_t>(idx)].get();
  }
  ChargeNodeProbe(meter, node->entry_count());
  return node;
}

bool BPlusTree::PointExists(int64_t key, CostMeter* meter) const {
  const Node* leaf = FindLeaf(key, meter);
  auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  if (it != leaf->keys.end() && *it == key) return true;
  // One-hop case: equal keys may start in the successor leaf.
  if (it == leaf->keys.end() && leaf->next != nullptr) {
    ChargeNodeProbe(meter, leaf->next->entry_count());
    return !leaf->next->keys.empty() && leaf->next->keys.front() == key;
  }
  return false;
}

bool BPlusTree::RangeExists(int64_t lo, int64_t hi, CostMeter* meter) const {
  if (lo > hi) return false;
  const Node* leaf = FindLeaf(lo, meter);
  auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), lo);
  if (it == leaf->keys.end()) {
    leaf = leaf->next;
    if (leaf == nullptr) return false;
    ChargeNodeProbe(meter, leaf->entry_count());
    it = leaf->keys.begin();
    if (it == leaf->keys.end()) return false;
  }
  return *it <= hi;
}

int64_t BPlusTree::RangeCount(int64_t lo, int64_t hi, CostMeter* meter) const {
  if (lo > hi) return 0;
  Iterator it = SeekFirst(lo);
  // Charge the descent once.
  FindLeaf(lo, meter);
  int64_t count = 0;
  while (it.Valid() && it.key() <= hi) {
    ++count;
    if (meter != nullptr) {
      meter->AddSerial(1);
      meter->AddBytesRead(kEntryBytes);
    }
    it.Next();
  }
  return count;
}

std::vector<int64_t> BPlusTree::Lookup(int64_t key, CostMeter* meter) const {
  std::vector<int64_t> out;
  Iterator it = SeekFirst(key);
  FindLeaf(key, meter);
  while (it.Valid() && it.key() == key) {
    out.push_back(it.payload());
    if (meter != nullptr) meter->AddSerial(1);
    it.Next();
  }
  return out;
}

// ---------------------------------------------------------------------------
// Insert
// ---------------------------------------------------------------------------

void BPlusTree::Insert(int64_t key, int64_t payload) {
  SplitResult split;
  if (InsertRec(root_.get(), key, payload, &split)) {
    auto new_root = std::make_unique<Node>(/*leaf=*/false);
    new_root->keys.push_back(split.separator);
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split.right));
    root_ = std::move(new_root);
    ++height_;
  }
  ++num_entries_;
}

bool BPlusTree::InsertRec(Node* node, int64_t key, int64_t payload,
                          SplitResult* split) {
  if (node->is_leaf) {
    auto it = std::upper_bound(node->keys.begin(), node->keys.end(), key);
    size_t pos = static_cast<size_t>(it - node->keys.begin());
    node->keys.insert(it, key);
    node->payloads.insert(node->payloads.begin() + static_cast<long>(pos),
                          payload);
    if (node->entry_count() <= options_.max_leaf_entries) return false;
    // Split the leaf: right half moves to a new node.
    int total = node->entry_count();
    int keep = total / 2;
    auto right = std::make_unique<Node>(/*leaf=*/true);
    right->keys.assign(node->keys.begin() + keep, node->keys.end());
    right->payloads.assign(node->payloads.begin() + keep,
                           node->payloads.end());
    node->keys.resize(static_cast<size_t>(keep));
    node->payloads.resize(static_cast<size_t>(keep));
    right->next = node->next;
    node->next = right.get();
    split->separator = right->keys.front();
    split->right = std::move(right);
    return true;
  }

  int idx = DescendUpperBound(node->keys, key);
  SplitResult child_split;
  if (!InsertRec(node->children[static_cast<size_t>(idx)].get(), key, payload,
                 &child_split)) {
    return false;
  }
  node->keys.insert(node->keys.begin() + idx, child_split.separator);
  node->children.insert(node->children.begin() + idx + 1,
                        std::move(child_split.right));
  if (node->child_count() <= options_.max_internal_children) return false;
  // Split the internal node, promoting the middle separator.
  int child_total = node->child_count();
  int keep_children = child_total / 2;  // left keeps children [0, keep).
  auto right = std::make_unique<Node>(/*leaf=*/false);
  split->separator = node->keys[static_cast<size_t>(keep_children - 1)];
  right->keys.assign(node->keys.begin() + keep_children, node->keys.end());
  for (int i = keep_children; i < child_total; ++i) {
    right->children.push_back(std::move(node->children[static_cast<size_t>(i)]));
  }
  node->keys.resize(static_cast<size_t>(keep_children - 1));
  node->children.resize(static_cast<size_t>(keep_children));
  split->right = std::move(right);
  return true;
}

// ---------------------------------------------------------------------------
// Delete
// ---------------------------------------------------------------------------

Status BPlusTree::Delete(int64_t key, int64_t payload) {
  bool underflow = false;
  if (!DeleteRec(root_.get(), key, payload, &underflow)) {
    return Status::NotFound("no entry (" + std::to_string(key) + ", " +
                            std::to_string(payload) + ")");
  }
  --num_entries_;
  // Collapse a single-child internal root.
  while (!root_->is_leaf && root_->child_count() == 1) {
    std::unique_ptr<Node> only = std::move(root_->children.front());
    root_ = std::move(only);
    --height_;
  }
  return Status::OK();
}

bool BPlusTree::DeleteRec(Node* node, int64_t key, int64_t payload,
                          bool* underflow) {
  if (node->is_leaf) {
    auto lo = std::lower_bound(node->keys.begin(), node->keys.end(), key);
    for (auto it = lo; it != node->keys.end() && *it == key; ++it) {
      size_t pos = static_cast<size_t>(it - node->keys.begin());
      if (node->payloads[pos] == payload) {
        node->keys.erase(it);
        node->payloads.erase(node->payloads.begin() + static_cast<long>(pos));
        *underflow = node->entry_count() < options_.max_leaf_entries / 2;
        return true;
      }
    }
    return false;
  }

  // The pair may live in any child whose key range admits `key`; with
  // duplicates that is the DescendLowerBound child and any run of subsequent
  // children guarded by separators == key.
  int idx = DescendLowerBound(node->keys, key);
  for (int i = idx; i < node->child_count(); ++i) {
    if (i > idx && node->keys[static_cast<size_t>(i - 1)] > key) break;
    bool child_underflow = false;
    if (DeleteRec(node->children[static_cast<size_t>(i)].get(), key, payload,
                  &child_underflow)) {
      if (child_underflow) FixChildUnderflow(node, i);
      *underflow =
          node->child_count() < (options_.max_internal_children + 1) / 2;
      return true;
    }
  }
  return false;
}

void BPlusTree::FixChildUnderflow(Node* parent, int child_idx) {
  Node* child = parent->children[static_cast<size_t>(child_idx)].get();
  Node* left = child_idx > 0
                   ? parent->children[static_cast<size_t>(child_idx - 1)].get()
                   : nullptr;
  Node* right = child_idx + 1 < parent->child_count()
                    ? parent->children[static_cast<size_t>(child_idx + 1)].get()
                    : nullptr;

  if (child->is_leaf) {
    const int min_entries = options_.max_leaf_entries / 2;
    if (left != nullptr && left->entry_count() > min_entries) {
      // Borrow the left sibling's last entry.
      child->keys.insert(child->keys.begin(), left->keys.back());
      child->payloads.insert(child->payloads.begin(), left->payloads.back());
      left->keys.pop_back();
      left->payloads.pop_back();
      parent->keys[static_cast<size_t>(child_idx - 1)] = child->keys.front();
      return;
    }
    if (right != nullptr && right->entry_count() > min_entries) {
      // Borrow the right sibling's first entry.
      child->keys.push_back(right->keys.front());
      child->payloads.push_back(right->payloads.front());
      right->keys.erase(right->keys.begin());
      right->payloads.erase(right->payloads.begin());
      parent->keys[static_cast<size_t>(child_idx)] = right->keys.front();
      return;
    }
    // Merge with a sibling.
    int left_idx = left != nullptr ? child_idx - 1 : child_idx;
    Node* a = parent->children[static_cast<size_t>(left_idx)].get();
    Node* b = parent->children[static_cast<size_t>(left_idx + 1)].get();
    a->keys.insert(a->keys.end(), b->keys.begin(), b->keys.end());
    a->payloads.insert(a->payloads.end(), b->payloads.begin(),
                       b->payloads.end());
    a->next = b->next;
    parent->keys.erase(parent->keys.begin() + left_idx);
    parent->children.erase(parent->children.begin() + left_idx + 1);
    return;
  }

  const int min_children = (options_.max_internal_children + 1) / 2;
  if (left != nullptr && left->child_count() > min_children) {
    // Rotate right through the parent separator.
    child->keys.insert(child->keys.begin(),
                       parent->keys[static_cast<size_t>(child_idx - 1)]);
    parent->keys[static_cast<size_t>(child_idx - 1)] = left->keys.back();
    left->keys.pop_back();
    child->children.insert(child->children.begin(),
                           std::move(left->children.back()));
    left->children.pop_back();
    return;
  }
  if (right != nullptr && right->child_count() > min_children) {
    // Rotate left through the parent separator.
    child->keys.push_back(parent->keys[static_cast<size_t>(child_idx)]);
    parent->keys[static_cast<size_t>(child_idx)] = right->keys.front();
    right->keys.erase(right->keys.begin());
    child->children.push_back(std::move(right->children.front()));
    right->children.erase(right->children.begin());
    return;
  }
  // Merge internal nodes around the separating key.
  int left_idx = left != nullptr ? child_idx - 1 : child_idx;
  Node* a = parent->children[static_cast<size_t>(left_idx)].get();
  Node* b = parent->children[static_cast<size_t>(left_idx + 1)].get();
  a->keys.push_back(parent->keys[static_cast<size_t>(left_idx)]);
  a->keys.insert(a->keys.end(), b->keys.begin(), b->keys.end());
  for (auto& grandchild : b->children) {
    a->children.push_back(std::move(grandchild));
  }
  parent->keys.erase(parent->keys.begin() + left_idx);
  parent->children.erase(parent->children.begin() + left_idx + 1);
}

// ---------------------------------------------------------------------------
// Bulk load
// ---------------------------------------------------------------------------

Status BPlusTree::BulkLoad(
    const std::vector<std::pair<int64_t, int64_t>>& sorted_entries) {
  for (size_t i = 1; i < sorted_entries.size(); ++i) {
    if (sorted_entries[i - 1].first > sorted_entries[i].first) {
      return Status::InvalidArgument("BulkLoad input not sorted at index " +
                                     std::to_string(i));
    }
  }
  const int64_t n = static_cast<int64_t>(sorted_entries.size());
  num_entries_ = n;
  if (n == 0) {
    root_ = std::make_unique<Node>(/*leaf=*/true);
    height_ = 1;
    return Status::OK();
  }

  // Build the leaf level with even occupancy (each leaf gets floor or ceil
  // of n / num_leaves entries, which respects the half-full minimum).
  struct Built {
    std::unique_ptr<Node> node;
    int64_t min_key;
  };
  std::vector<Built> level;
  const int64_t leaves =
      (n + options_.max_leaf_entries - 1) / options_.max_leaf_entries;
  int64_t taken = 0;
  Node* prev_leaf = nullptr;
  for (int64_t i = 0; i < leaves; ++i) {
    int64_t count = n / leaves + (i < n % leaves ? 1 : 0);
    auto leaf = std::make_unique<Node>(/*leaf=*/true);
    leaf->keys.reserve(static_cast<size_t>(count));
    leaf->payloads.reserve(static_cast<size_t>(count));
    for (int64_t j = 0; j < count; ++j) {
      leaf->keys.push_back(sorted_entries[static_cast<size_t>(taken + j)].first);
      leaf->payloads.push_back(
          sorted_entries[static_cast<size_t>(taken + j)].second);
    }
    taken += count;
    if (prev_leaf != nullptr) prev_leaf->next = leaf.get();
    prev_leaf = leaf.get();
    level.push_back({std::move(leaf), prev_leaf->keys.front()});
  }

  // Stack internal levels until a single root remains.
  height_ = 1;
  while (level.size() > 1) {
    std::vector<Built> next_level;
    const int64_t groups =
        (static_cast<int64_t>(level.size()) + options_.max_internal_children -
         1) /
        options_.max_internal_children;
    int64_t used = 0;
    const int64_t total = static_cast<int64_t>(level.size());
    for (int64_t g = 0; g < groups; ++g) {
      int64_t count = total / groups + (g < total % groups ? 1 : 0);
      auto node = std::make_unique<Node>(/*leaf=*/false);
      int64_t min_key = level[static_cast<size_t>(used)].min_key;
      for (int64_t j = 0; j < count; ++j) {
        auto& built = level[static_cast<size_t>(used + j)];
        if (j > 0) node->keys.push_back(built.min_key);
        node->children.push_back(std::move(built.node));
      }
      used += count;
      next_level.push_back({std::move(node), min_key});
    }
    level = std::move(next_level);
    ++height_;
  }
  root_ = std::move(level.front().node);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Stats & validation
// ---------------------------------------------------------------------------

BPlusTreeStats BPlusTree::Stats() const {
  BPlusTreeStats stats;
  stats.height = height_;
  stats.num_entries = num_entries_;
  std::vector<const Node*> stack = {root()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (node->is_leaf) {
      ++stats.num_leaves;
    } else {
      ++stats.num_internal;
      for (const auto& child : node->children) stack.push_back(child.get());
    }
  }
  return stats;
}

Status BPlusTree::Validate() const {
  PITRACT_RETURN_IF_ERROR(
      ValidateRec(root(), 0, height_ - 1, 0, false, 0, false));
  // Leaf chain must enumerate exactly num_entries_ keys in sorted order.
  Iterator it = Begin();
  int64_t count = 0;
  bool first = true;
  int64_t prev = 0;
  while (it.Valid()) {
    if (!first && it.key() < prev) {
      return Status::Internal("leaf chain out of order");
    }
    prev = it.key();
    first = false;
    ++count;
    it.Next();
  }
  if (count != num_entries_) {
    return Status::Internal("leaf chain has " + std::to_string(count) +
                            " entries, expected " +
                            std::to_string(num_entries_));
  }
  return Status::OK();
}

Status BPlusTree::ValidateRec(const Node* node, int depth, int expected_depth,
                              int64_t lower, bool has_lower, int64_t upper,
                              bool has_upper) const {
  const bool is_root = depth == 0;
  if (node->is_leaf) {
    if (depth != expected_depth) {
      return Status::Internal("leaf at depth " + std::to_string(depth) +
                              ", expected " + std::to_string(expected_depth));
    }
    if (node->keys.size() != node->payloads.size()) {
      return Status::Internal("leaf keys/payloads size mismatch");
    }
    if (!is_root && node->entry_count() < options_.max_leaf_entries / 2) {
      return Status::Internal("leaf under-occupied: " +
                              std::to_string(node->entry_count()));
    }
    if (node->entry_count() > options_.max_leaf_entries) {
      return Status::Internal("leaf over-occupied");
    }
    for (size_t i = 0; i < node->keys.size(); ++i) {
      if (i > 0 && node->keys[i - 1] > node->keys[i]) {
        return Status::Internal("leaf keys out of order");
      }
      if (has_lower && node->keys[i] < lower) {
        return Status::Internal("leaf key below separator bound");
      }
      if (has_upper && node->keys[i] > upper) {
        return Status::Internal("leaf key above separator bound");
      }
    }
    return Status::OK();
  }

  if (!is_root && node->child_count() < (options_.max_internal_children + 1) / 2) {
    return Status::Internal("internal node under-occupied: " +
                            std::to_string(node->child_count()));
  }
  if (is_root && node->child_count() < 2) {
    return Status::Internal("internal root with fewer than 2 children");
  }
  if (node->child_count() > options_.max_internal_children) {
    return Status::Internal("internal node over-occupied");
  }
  if (node->entry_count() != node->child_count() - 1) {
    return Status::Internal("separator/child count mismatch");
  }
  for (size_t i = 1; i < node->keys.size(); ++i) {
    if (node->keys[i - 1] > node->keys[i]) {
      return Status::Internal("separators out of order");
    }
  }
  for (int i = 0; i < node->child_count(); ++i) {
    int64_t child_lower = lower;
    bool child_has_lower = has_lower;
    int64_t child_upper = upper;
    bool child_has_upper = has_upper;
    if (i > 0) {
      child_lower = node->keys[static_cast<size_t>(i - 1)];
      child_has_lower = true;
    }
    if (i < node->entry_count()) {
      child_upper = node->keys[static_cast<size_t>(i)];
      child_has_upper = true;
    }
    PITRACT_RETURN_IF_ERROR(ValidateRec(
        node->children[static_cast<size_t>(i)].get(), depth + 1,
        expected_depth, child_lower, child_has_lower, child_upper,
        child_has_upper));
  }
  return Status::OK();
}

}  // namespace index
}  // namespace pitract
