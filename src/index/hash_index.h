#ifndef PITRACT_INDEX_HASH_INDEX_H_
#define PITRACT_INDEX_HASH_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/cost_meter.h"

namespace pitract {
namespace index {

/// Open-addressing (linear probing) hash multiset of int64 keys with
/// multiplicity counts. Complements the B+-tree as an O(1)-expected probe
/// structure for point-selection preprocessing (Example 1 works with any
/// index that answers membership in polylog time; hashing answers it in
/// expected O(1)).
class HashIndex {
 public:
  explicit HashIndex(int64_t expected_keys = 16);

  /// Adds one occurrence of `key`.
  void Insert(int64_t key);

  /// Removes one occurrence; returns false if the key is absent.
  bool Erase(int64_t key);

  /// Does the set contain `key`? Charges expected-O(1) probe cost.
  bool Contains(int64_t key, CostMeter* meter) const;

  /// Number of occurrences of `key`.
  int64_t Count(int64_t key, CostMeter* meter) const;

  int64_t size() const { return num_entries_; }
  int64_t num_distinct() const { return num_slots_used_; }
  int64_t capacity() const { return static_cast<int64_t>(slots_.size()); }

 private:
  struct Slot {
    int64_t key = 0;
    int64_t count = 0;  // 0 = empty, -1 = tombstone.
  };

  static uint64_t Mix(int64_t key);
  int64_t FindSlot(int64_t key, CostMeter* meter) const;
  void Grow();

  std::vector<Slot> slots_;
  int64_t num_entries_ = 0;
  int64_t num_slots_used_ = 0;  // distinct live keys
  int64_t num_tombstones_ = 0;
};

}  // namespace index
}  // namespace pitract

#endif  // PITRACT_INDEX_HASH_INDEX_H_
