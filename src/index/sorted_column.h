#ifndef PITRACT_INDEX_SORTED_COLUMN_H_
#define PITRACT_INDEX_SORTED_COLUMN_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/cost_meter.h"

namespace pitract {
namespace index {

/// A sorted copy of a column with binary-search probes — the preprocessing
/// structure of Section 4(2) ("sort M in O(|M| log |M|), then decide
/// membership via binary search in O(log |M|)").
class SortedColumn {
 public:
  SortedColumn() = default;

  /// Builds the structure by sorting a copy of `values`; charges the meter
  /// the O(n log n) comparison work of the sort (preprocessing cost Π).
  static SortedColumn Build(std::span<const int64_t> values, CostMeter* meter);

  /// Binary-search membership probe: O(log n), charged to the meter.
  bool Contains(int64_t value, CostMeter* meter) const;

  /// Any element in [lo, hi]? O(log n), charged to the meter.
  bool ContainsInRange(int64_t lo, int64_t hi, CostMeter* meter) const;

  /// Number of elements in [lo, hi]. O(log n).
  int64_t CountInRange(int64_t lo, int64_t hi, CostMeter* meter) const;

  int64_t size() const { return static_cast<int64_t>(sorted_.size()); }
  const std::vector<int64_t>& values() const { return sorted_; }

 private:
  std::vector<int64_t> sorted_;
};

}  // namespace index
}  // namespace pitract

#endif  // PITRACT_INDEX_SORTED_COLUMN_H_
