#include "index/hash_index.h"

#include <cassert>

namespace pitract {
namespace index {

namespace {
int64_t NextPowerOfTwo(int64_t n) {
  int64_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

HashIndex::HashIndex(int64_t expected_keys) {
  int64_t cap = NextPowerOfTwo(expected_keys * 2);
  if (cap < 16) cap = 16;
  slots_.resize(static_cast<size_t>(cap));
}

uint64_t HashIndex::Mix(int64_t key) {
  // splitmix64 finalizer — strong enough for adversarial-free workloads.
  uint64_t z = static_cast<uint64_t>(key) + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

int64_t HashIndex::FindSlot(int64_t key, CostMeter* meter) const {
  const uint64_t mask = slots_.size() - 1;
  uint64_t idx = Mix(key) & mask;
  int64_t first_tombstone = -1;
  for (;;) {
    if (meter != nullptr) {
      meter->AddSerial(1);
      meter->AddBytesRead(static_cast<int64_t>(sizeof(Slot)));
    }
    const Slot& slot = slots_[idx];
    if (slot.count == 0) {
      // Empty: key absent; report insertion point (prefer a tombstone).
      return first_tombstone >= 0 ? first_tombstone
                                  : static_cast<int64_t>(idx);
    }
    if (slot.count == -1) {
      if (first_tombstone < 0) first_tombstone = static_cast<int64_t>(idx);
    } else if (slot.key == key) {
      return static_cast<int64_t>(idx);
    }
    idx = (idx + 1) & mask;
  }
}

void HashIndex::Insert(int64_t key) {
  if ((num_slots_used_ + num_tombstones_ + 1) * 10 >
      static_cast<int64_t>(slots_.size()) * 7) {
    Grow();
  }
  int64_t idx = FindSlot(key, nullptr);
  Slot& slot = slots_[static_cast<size_t>(idx)];
  if (slot.count > 0 && slot.key == key) {
    ++slot.count;
  } else {
    if (slot.count == -1) --num_tombstones_;
    slot.key = key;
    slot.count = 1;
    ++num_slots_used_;
  }
  ++num_entries_;
}

bool HashIndex::Erase(int64_t key) {
  int64_t idx = FindSlot(key, nullptr);
  Slot& slot = slots_[static_cast<size_t>(idx)];
  if (slot.count <= 0 || slot.key != key) return false;
  --slot.count;
  --num_entries_;
  if (slot.count == 0) {
    slot.count = -1;  // tombstone
    --num_slots_used_;
    ++num_tombstones_;
  }
  return true;
}

bool HashIndex::Contains(int64_t key, CostMeter* meter) const {
  int64_t idx = FindSlot(key, meter);
  const Slot& slot = slots_[static_cast<size_t>(idx)];
  return slot.count > 0 && slot.key == key;
}

int64_t HashIndex::Count(int64_t key, CostMeter* meter) const {
  int64_t idx = FindSlot(key, meter);
  const Slot& slot = slots_[static_cast<size_t>(idx)];
  return (slot.count > 0 && slot.key == key) ? slot.count : 0;
}

void HashIndex::Grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  num_tombstones_ = 0;
  const uint64_t mask = slots_.size() - 1;
  for (const Slot& slot : old) {
    if (slot.count <= 0) continue;
    uint64_t idx = Mix(slot.key) & mask;
    while (slots_[idx].count != 0) idx = (idx + 1) & mask;
    slots_[idx] = slot;
  }
}

}  // namespace index
}  // namespace pitract
