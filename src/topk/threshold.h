#ifndef PITRACT_TOPK_THRESHOLD_H_
#define PITRACT_TOPK_THRESHOLD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/cost_meter.h"
#include "common/result.h"
#include "storage/relation.h"

namespace pitract {
namespace topk {

/// Top-k query answering with early termination — the Section 8(5) open
/// direction ("under certain conditions, top-k query answering with early
/// termination [14] may be made Π-tractable"), prototyped with Fagin's
/// Threshold Algorithm (Fagin–Lotem–Naor, the paper's [14]).
///
/// Preprocessing Π(D): one descending sorted list per scored attribute
/// (PTIME). Online: TA performs lock-step sorted access over the lists,
/// random access to complete each seen object, and stops as soon as the
/// k-th best score reaches the threshold τ = f(last values seen under
/// sorted access). On skewed data this touches a small prefix of each list
/// — sublinear in |D| — while remaining exact for monotone aggregates.

/// One result object.
struct ScoredObject {
  int64_t object_id = 0;
  int64_t score = 0;

  friend bool operator==(const ScoredObject& a, const ScoredObject& b) {
    return a.object_id == b.object_id && a.score == b.score;
  }
};

/// Answer plus the access counters Fagin's analysis is stated in.
struct TopKResult {
  /// Descending by score; ties broken toward smaller object id.
  std::vector<ScoredObject> objects;
  int64_t sorted_accesses = 0;
  int64_t random_accesses = 0;
  /// Depth reached in the sorted lists before the threshold fired.
  int64_t stop_depth = 0;
};

/// The preprocessed structure: per-attribute descending lists + columns
/// for random access.
class ThresholdIndex {
 public:
  /// Builds sorted lists over the given int64 columns of `relation`.
  /// Charges the O(m · n log n) preprocessing to `meter`.
  static Result<ThresholdIndex> Build(const storage::Relation& relation,
                                      const std::vector<int>& columns,
                                      CostMeter* meter);

  /// Exact top-k under score(o) = Σ_i weights[i] · column_i(o).
  /// Weights must be non-negative (monotonicity is what makes the
  /// threshold sound). k must be >= 1.
  Result<TopKResult> TopK(const std::vector<int64_t>& weights, int k,
                          CostMeter* meter) const;

  int num_attributes() const { return static_cast<int>(lists_.size()); }
  int64_t num_objects() const { return num_objects_; }

  /// Baseline without preprocessing: scan all rows, aggregate, select.
  static Result<TopKResult> TopKByScan(const storage::Relation& relation,
                                       const std::vector<int>& columns,
                                       const std::vector<int64_t>& weights,
                                       int k, CostMeter* meter);

 private:
  struct SortedList {
    // Descending by value; (value, object_id).
    std::vector<std::pair<int64_t, int64_t>> entries;
  };

  int64_t num_objects_ = 0;
  std::vector<SortedList> lists_;                 // one per attribute
  std::vector<std::vector<int64_t>> columns_;     // random access: attr -> row
};

}  // namespace topk
}  // namespace pitract

#endif  // PITRACT_TOPK_THRESHOLD_H_
