#include "topk/threshold.h"

#include <algorithm>
#include <queue>

#include "ncsim/ncsim.h"

namespace pitract {
namespace topk {

namespace {

/// "a is strictly better than b": higher score, then smaller object id.
bool Better(const ScoredObject& a, const ScoredObject& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.object_id < b.object_id;
}

/// Min-heap of the current best k (top() = the worst of the best).
struct WorstOnTop {
  bool operator()(const ScoredObject& a, const ScoredObject& b) const {
    return Better(a, b);
  }
};

Status CheckQuery(size_t num_attributes, const std::vector<int64_t>& weights,
                  int k) {
  if (weights.size() != num_attributes) {
    return Status::InvalidArgument("expected " +
                                   std::to_string(num_attributes) +
                                   " weights, got " +
                                   std::to_string(weights.size()));
  }
  for (int64_t w : weights) {
    if (w < 0) {
      return Status::InvalidArgument(
          "threshold algorithm requires a monotone aggregate: "
          "weights must be non-negative");
    }
  }
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  return Status::OK();
}

std::vector<ScoredObject> DrainHeap(
    std::priority_queue<ScoredObject, std::vector<ScoredObject>, WorstOnTop>*
        heap) {
  std::vector<ScoredObject> out;
  out.resize(heap->size());
  for (size_t i = heap->size(); i > 0; --i) {
    out[i - 1] = heap->top();
    heap->pop();
  }
  // Heap drains worst-first; reversing gives best-first.
  return out;
}

}  // namespace

Result<ThresholdIndex> ThresholdIndex::Build(const storage::Relation& relation,
                                             const std::vector<int>& columns,
                                             CostMeter* meter) {
  if (columns.empty()) {
    return Status::InvalidArgument("need at least one scored column");
  }
  ThresholdIndex index;
  index.num_objects_ = relation.num_rows();
  for (int col : columns) {
    auto values = relation.Int64Column(col);
    if (!values.ok()) return values.status();
    SortedList list;
    list.entries.reserve(values->size());
    for (size_t row = 0; row < values->size(); ++row) {
      list.entries.emplace_back((*values)[row], static_cast<int64_t>(row));
    }
    // Descending by value; ascending id among equals for determinism.
    std::sort(list.entries.begin(), list.entries.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
    index.columns_.emplace_back(values->begin(), values->end());
    index.lists_.push_back(std::move(list));
  }
  if (meter != nullptr) {
    const int64_t n = relation.num_rows();
    const int64_t m = static_cast<int64_t>(columns.size());
    meter->AddSerial(m * n * (ncsim::CeilLog2(n < 1 ? 1 : n) + 1));
    meter->AddBytesWritten(2 * m * n * 8);
  }
  return index;
}

Result<TopKResult> ThresholdIndex::TopK(const std::vector<int64_t>& weights,
                                        int k, CostMeter* meter) const {
  PITRACT_RETURN_IF_ERROR(CheckQuery(lists_.size(), weights, k));
  TopKResult result;
  const int64_t n = num_objects_;
  const size_t m = lists_.size();
  if (n == 0) return result;

  std::vector<bool> seen(static_cast<size_t>(n), false);
  std::priority_queue<ScoredObject, std::vector<ScoredObject>, WorstOnTop>
      heap;
  const int64_t heap_log =
      ncsim::CeilLog2(static_cast<int64_t>(k) + 1) + 1;

  auto full_score = [&](int64_t object) {
    int64_t score = 0;
    for (size_t attr = 0; attr < m; ++attr) {
      score += weights[attr] *
               columns_[attr][static_cast<size_t>(object)];
    }
    return score;
  };

  for (int64_t depth = 0; depth < n; ++depth) {
    // Sorted access on every list at this depth.
    int64_t threshold = 0;
    for (size_t attr = 0; attr < m; ++attr) {
      const auto& [value, object] =
          lists_[attr].entries[static_cast<size_t>(depth)];
      ++result.sorted_accesses;
      if (meter != nullptr) {
        meter->AddSerial(1);
        meter->AddBytesRead(16);
      }
      threshold += weights[attr] * value;
      if (seen[static_cast<size_t>(object)]) continue;
      seen[static_cast<size_t>(object)] = true;
      // Random access completes the object's remaining attributes.
      result.random_accesses += static_cast<int64_t>(m) - 1;
      if (meter != nullptr) {
        meter->AddSerial(static_cast<int64_t>(m) - 1);
        meter->AddBytesRead((static_cast<int64_t>(m) - 1) * 8);
        meter->AddSerial(heap_log);
      }
      ScoredObject candidate{object, full_score(object)};
      if (static_cast<int>(heap.size()) < k) {
        heap.push(candidate);
      } else if (Better(candidate, heap.top())) {
        heap.pop();
        heap.push(candidate);
      }
    }
    result.stop_depth = depth + 1;
    // Threshold test: nothing unseen can beat the current k-th best.
    if (static_cast<int>(heap.size()) == k && heap.top().score >= threshold) {
      break;
    }
  }

  result.objects = DrainHeap(&heap);
  return result;
}

Result<TopKResult> ThresholdIndex::TopKByScan(
    const storage::Relation& relation, const std::vector<int>& columns,
    const std::vector<int64_t>& weights, int k, CostMeter* meter) {
  PITRACT_RETURN_IF_ERROR(CheckQuery(columns.size(), weights, k));
  std::vector<std::span<const int64_t>> cols;
  for (int col : columns) {
    auto values = relation.Int64Column(col);
    if (!values.ok()) return values.status();
    cols.push_back(*values);
  }
  TopKResult result;
  std::priority_queue<ScoredObject, std::vector<ScoredObject>, WorstOnTop>
      heap;
  const int64_t heap_log =
      ncsim::CeilLog2(static_cast<int64_t>(k) + 1) + 1;
  for (int64_t row = 0; row < relation.num_rows(); ++row) {
    int64_t score = 0;
    for (size_t attr = 0; attr < cols.size(); ++attr) {
      score += weights[attr] * cols[attr][static_cast<size_t>(row)];
    }
    if (meter != nullptr) {
      meter->AddSerial(static_cast<int64_t>(cols.size()) + heap_log);
      meter->AddBytesRead(static_cast<int64_t>(cols.size()) * 8);
    }
    ScoredObject candidate{row, score};
    if (static_cast<int>(heap.size()) < k) {
      heap.push(candidate);
    } else if (Better(candidate, heap.top())) {
      heap.pop();
      heap.push(candidate);
    }
  }
  result.sorted_accesses = relation.num_rows() *
                           static_cast<int64_t>(columns.size());
  result.stop_depth = relation.num_rows();
  result.objects = DrainHeap(&heap);
  return result;
}

}  // namespace topk
}  // namespace pitract
