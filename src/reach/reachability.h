#ifndef PITRACT_REACH_REACHABILITY_H_
#define PITRACT_REACH_REACHABILITY_H_

#include <cstdint>
#include <vector>

#include "common/cost_meter.h"
#include "graph/algos.h"
#include "graph/graph.h"

namespace pitract {
namespace reach {

/// Dense bitset over node ids (64 nodes per word).
class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(int64_t bits)
      : bits_(bits), words_(static_cast<size_t>((bits + 63) / 64), 0) {}

  void Set(int64_t i) {
    words_[static_cast<size_t>(i >> 6)] |= uint64_t{1} << (i & 63);
  }
  void Clear(int64_t i) {
    words_[static_cast<size_t>(i >> 6)] &= ~(uint64_t{1} << (i & 63));
  }
  bool Test(int64_t i) const {
    return (words_[static_cast<size_t>(i >> 6)] >> (i & 63)) & 1;
  }
  /// Raw word storage (little-endian bit order), for hashing/signatures.
  const std::vector<uint64_t>& words() const { return words_; }
  /// Overwrites word `w` wholesale — the rehydration path of persisted
  /// closures (incremental::IncrementalTransitiveClosure::Deserialize).
  void SetWord(int64_t w, uint64_t value) {
    words_[static_cast<size_t>(w)] = value;
  }
  /// this |= other; returns true if any bit changed.
  bool UnionWith(const Bitset& other) {
    bool changed = false;
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t before = words_[w];
      words_[w] |= other.words_[w];
      changed |= words_[w] != before;
    }
    return changed;
  }
  int64_t Count() const;
  int64_t num_bits() const { return bits_; }
  int64_t num_words() const { return static_cast<int64_t>(words_.size()); }

  friend bool operator==(const Bitset& a, const Bitset& b) {
    return a.bits_ == b.bits_ && a.words_ == b.words_;
  }

 private:
  int64_t bits_ = 0;
  std::vector<uint64_t> words_;
};

/// The Example 3 preprocessing: "precompute a matrix that records the
/// reachability between all pairs of nodes in G, then answer all queries on
/// G in O(1) time".
///
/// Build cost is PTIME — O(n · (n + m)) via one BFS per node over the SCC
/// condensation (bit-parallel union along reverse-topological order) — and
/// each query is a single bit probe.
class ReachabilityMatrix {
 public:
  /// Preprocesses `g`; charges the PTIME preprocessing cost to `meter`.
  static ReachabilityMatrix Build(const graph::Graph& g,
                                  CostMeter* meter = nullptr);

  /// O(1): is there a path from u to v (u reaches itself by convention)?
  bool Reachable(graph::NodeId u, graph::NodeId v, CostMeter* meter) const;

  /// Total number of reachable ordered pairs (incl. reflexive pairs); the
  /// |CHANGED| unit of the incremental experiments counts against this.
  int64_t NumReachablePairs() const;

  int64_t EstimateBytes() const {
    return num_nodes_ == 0
               ? 0
               : static_cast<int64_t>(closure_.size()) *
                     closure_.front().num_words() * 8;
  }

  graph::NodeId num_nodes() const { return num_nodes_; }

 private:
  graph::NodeId num_nodes_ = 0;
  // closure_[c] = bitset over *component* ids reachable from component c.
  std::vector<Bitset> closure_;
  std::vector<graph::NodeId> component_;  // node -> component id
};

}  // namespace reach
}  // namespace pitract

#endif  // PITRACT_REACH_REACHABILITY_H_
