#include "reach/reachability.h"

#include <bit>

namespace pitract {
namespace reach {

int64_t Bitset::Count() const {
  int64_t count = 0;
  for (uint64_t w : words_) count += std::popcount(w);
  return count;
}

ReachabilityMatrix ReachabilityMatrix::Build(const graph::Graph& g,
                                             CostMeter* meter) {
  ReachabilityMatrix m;
  m.num_nodes_ = g.num_nodes();
  if (g.num_nodes() == 0) return m;

  // 1. Contract SCCs: reachability is invariant under condensation.
  graph::SccResult scc = graph::StronglyConnectedComponents(g);
  m.component_ = scc.component;
  graph::Graph dag = graph::Condense(g, scc);
  const graph::NodeId k = scc.num_components;

  // 2. Tarjan numbers components in reverse topological order, so component
  //    0 has no outgoing condensation edges. Sweep ids ascending: every
  //    successor's closure is already complete (bit-parallel DP).
  m.closure_.assign(static_cast<size_t>(k), Bitset(k));
  int64_t work = 0;
  for (graph::NodeId c = 0; c < k; ++c) {
    Bitset& row = m.closure_[static_cast<size_t>(c)];
    row.Set(c);
    ++work;
    for (graph::NodeId succ : dag.OutNeighbors(c)) {
      row.UnionWith(m.closure_[static_cast<size_t>(succ)]);
      work += row.num_words();
    }
  }
  if (meter != nullptr) {
    // SCC + condensation are O(n + m); the DP dominates.
    meter->AddSerial(work + g.num_nodes() + g.num_edges());
    meter->AddBytesWritten(static_cast<int64_t>(k) * ((k + 63) / 64) * 8);
  }
  return m;
}

bool ReachabilityMatrix::Reachable(graph::NodeId u, graph::NodeId v,
                                   CostMeter* meter) const {
  if (meter != nullptr) {
    meter->AddSerial(1);
    meter->AddBytesRead(8);
  }
  const graph::NodeId cu = component_[static_cast<size_t>(u)];
  const graph::NodeId cv = component_[static_cast<size_t>(v)];
  return closure_[static_cast<size_t>(cu)].Test(cv);
}

int64_t ReachabilityMatrix::NumReachablePairs() const {
  // Count pairs at node granularity: component sizes matter.
  std::vector<int64_t> comp_size(closure_.size(), 0);
  for (graph::NodeId c : component_) ++comp_size[static_cast<size_t>(c)];
  int64_t pairs = 0;
  for (size_t c = 0; c < closure_.size(); ++c) {
    int64_t reachable_nodes = 0;
    for (size_t d = 0; d < closure_.size(); ++d) {
      if (closure_[c].Test(static_cast<int64_t>(d))) {
        reachable_nodes += comp_size[d];
      }
    }
    pairs += comp_size[c] * reachable_nodes;
  }
  return pairs;
}

}  // namespace reach
}  // namespace pitract
