#include "circuit/transforms.h"

namespace pitract {
namespace circuit {

Result<Circuit> ToNandOnly(const Circuit& c) {
  PITRACT_RETURN_IF_ERROR(c.Validate());
  Circuit out;
  // Map original gate id -> id in the rewritten circuit.
  std::vector<GateId> mapped(static_cast<size_t>(c.num_gates()), -1);
  for (GateId id = 0; id < c.num_gates(); ++id) {
    const Gate& g = c.gate(id);
    GateId a = g.lhs >= 0 ? mapped[static_cast<size_t>(g.lhs)] : -1;
    GateId b = g.rhs >= 0 ? mapped[static_cast<size_t>(g.rhs)] : -1;
    GateId m = -1;
    switch (g.type) {
      case GateType::kInput:
        m = out.AddInput();
        break;
      case GateType::kConstFalse:
        m = out.AddConst(false);
        break;
      case GateType::kConstTrue:
        m = out.AddConst(true);
        break;
      case GateType::kNot:
        // ¬a = NAND(a, a)
        m = out.AddNand(a, a);
        break;
      case GateType::kAnd: {
        // a ∧ b = ¬NAND(a, b)
        GateId nand = out.AddNand(a, b);
        m = out.AddNand(nand, nand);
        break;
      }
      case GateType::kOr: {
        // a ∨ b = NAND(¬a, ¬b)
        GateId na = out.AddNand(a, a);
        GateId nb = out.AddNand(b, b);
        m = out.AddNand(na, nb);
        break;
      }
      case GateType::kNand:
        m = out.AddNand(a, b);
        break;
    }
    mapped[static_cast<size_t>(id)] = m;
  }
  out.set_output(mapped[static_cast<size_t>(c.output())]);
  return out;
}

Result<Circuit> ToMonotoneDoubleRail(const Circuit& c) {
  PITRACT_RETURN_IF_ERROR(c.Validate());
  Circuit out;
  // Double-rail inputs first: original input ordinal i becomes out-inputs
  // 2i (positive rail) and 2i+1 (negative rail).
  std::vector<GateId> input_pos(static_cast<size_t>(c.num_inputs()));
  std::vector<GateId> input_neg(static_cast<size_t>(c.num_inputs()));
  for (int32_t i = 0; i < c.num_inputs(); ++i) {
    input_pos[static_cast<size_t>(i)] = out.AddInput();
    input_neg[static_cast<size_t>(i)] = out.AddInput();
  }
  // pos/neg rails per original gate.
  std::vector<GateId> pos(static_cast<size_t>(c.num_gates()), -1);
  std::vector<GateId> neg(static_cast<size_t>(c.num_gates()), -1);
  for (GateId id = 0; id < c.num_gates(); ++id) {
    const Gate& g = c.gate(id);
    const size_t i = static_cast<size_t>(id);
    switch (g.type) {
      case GateType::kInput:
        pos[i] = input_pos[static_cast<size_t>(g.input_ordinal)];
        neg[i] = input_neg[static_cast<size_t>(g.input_ordinal)];
        break;
      case GateType::kConstFalse:
        pos[i] = out.AddConst(false);
        neg[i] = out.AddConst(true);
        break;
      case GateType::kConstTrue:
        pos[i] = out.AddConst(true);
        neg[i] = out.AddConst(false);
        break;
      case GateType::kNot:
        // de Morgan rail swap — no negation gate needed.
        pos[i] = neg[static_cast<size_t>(g.lhs)];
        neg[i] = pos[static_cast<size_t>(g.lhs)];
        break;
      case GateType::kAnd:
        pos[i] = out.AddAnd(pos[static_cast<size_t>(g.lhs)],
                            pos[static_cast<size_t>(g.rhs)]);
        neg[i] = out.AddOr(neg[static_cast<size_t>(g.lhs)],
                           neg[static_cast<size_t>(g.rhs)]);
        break;
      case GateType::kOr:
        pos[i] = out.AddOr(pos[static_cast<size_t>(g.lhs)],
                           pos[static_cast<size_t>(g.rhs)]);
        neg[i] = out.AddAnd(neg[static_cast<size_t>(g.lhs)],
                            neg[static_cast<size_t>(g.rhs)]);
        break;
      case GateType::kNand:
        pos[i] = out.AddOr(neg[static_cast<size_t>(g.lhs)],
                           neg[static_cast<size_t>(g.rhs)]);
        neg[i] = out.AddAnd(pos[static_cast<size_t>(g.lhs)],
                            pos[static_cast<size_t>(g.rhs)]);
        break;
    }
  }
  out.set_output(pos[static_cast<size_t>(c.output())]);
  return out;
}

std::vector<char> DoubleRailAssignment(const std::vector<char>& assignment) {
  std::vector<char> doubled;
  doubled.reserve(assignment.size() * 2);
  for (char bit : assignment) {
    doubled.push_back(bit ? 1 : 0);
    doubled.push_back(bit ? 0 : 1);
  }
  return doubled;
}

}  // namespace circuit
}  // namespace pitract
