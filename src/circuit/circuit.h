#ifndef PITRACT_CIRCUIT_CIRCUIT_H_
#define PITRACT_CIRCUIT_CIRCUIT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/cost_meter.h"
#include "common/result.h"

namespace pitract {
namespace circuit {

/// Gate identifier (index into the circuit's gate sequence).
using GateId = int32_t;

enum class GateType {
  kInput = 0,   // leaf: reads assignment[input_ordinal]
  kConstFalse,  // leaf constants
  kConstTrue,
  kNot,   // 1 input
  kAnd,   // 2 inputs
  kOr,    // 2 inputs
  kNand,  // 2 inputs
};

std::string GateTypeName(GateType type);

/// One gate of a Boolean circuit.
struct Gate {
  GateType type = GateType::kConstFalse;
  /// Operand gate ids; all must be < this gate's own id (the standard
  /// topologically-sorted tuple encoding ᾱ of [21], which the paper's CVP
  /// statement assumes).
  GateId lhs = -1;
  GateId rhs = -1;
  /// For kInput gates: index into the assignment vector.
  int32_t input_ordinal = -1;
};

/// A Boolean circuit α: a DAG of gates in topological id order with one
/// designated output (Section 4(8)). The Circuit Value Problem instance is
/// (ᾱ, x₁..xₙ, y): does output y evaluate to true on the given inputs?
class Circuit {
 public:
  Circuit() = default;

  /// Gate constructors return the new gate's id.
  GateId AddInput();
  GateId AddConst(bool value);
  GateId AddNot(GateId a);
  GateId AddBinary(GateType type, GateId a, GateId b);
  GateId AddAnd(GateId a, GateId b) { return AddBinary(GateType::kAnd, a, b); }
  GateId AddOr(GateId a, GateId b) { return AddBinary(GateType::kOr, a, b); }
  GateId AddNand(GateId a, GateId b) {
    return AddBinary(GateType::kNand, a, b);
  }

  void set_output(GateId y) { output_ = y; }
  GateId output() const { return output_; }

  int32_t num_gates() const { return static_cast<int32_t>(gates_.size()); }
  int32_t num_inputs() const { return num_inputs_; }
  const Gate& gate(GateId id) const { return gates_[static_cast<size_t>(id)]; }

  /// Structural checks: operand ids precede gate ids, arities match types,
  /// the output is a valid gate.
  Status Validate() const;

  /// Are all gates in {input, const, and, or} (no negation)?
  bool IsMonotone() const;
  /// Are all non-leaf gates NAND?
  bool IsNandOnly() const;

  /// Evaluates every gate under `assignment` (size must equal
  /// num_inputs()). Work Θ(#gates); depth charged as the circuit's *level
  /// depth* — a circuit evaluates in parallel time proportional to its
  /// depth, which is what separates NC-like shallow circuits from the
  /// P-complete general case.
  Result<std::vector<char>> EvaluateAll(const std::vector<char>& assignment,
                                        CostMeter* meter) const;

  /// Value of the designated output.
  Result<bool> Evaluate(const std::vector<char>& assignment,
                        CostMeter* meter) const;

  /// Level depth: 1 + max over paths of gate count (leaves are level 0).
  int64_t Depth() const;

  /// Σ*-encoding of ᾱ (gate tuples + output id). Round-trips via Decode.
  std::string Encode() const;
  static Result<Circuit> Decode(std::string_view encoded);

 private:
  std::vector<Gate> gates_;
  int32_t num_inputs_ = 0;
  GateId output_ = -1;
};

/// A full CVP instance: circuit, input assignment, designated output (the
/// circuit's output gate). The decision question is Q(instance) = value.
struct CvpInstance {
  Circuit circuit;
  std::vector<char> assignment;

  std::string Encode() const;
  static Result<CvpInstance> Decode(std::string_view encoded);
};

}  // namespace circuit
}  // namespace pitract

#endif  // PITRACT_CIRCUIT_CIRCUIT_H_
