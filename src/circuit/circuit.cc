#include "circuit/circuit.h"

#include <algorithm>

#include "common/codec.h"

namespace pitract {
namespace circuit {

std::string GateTypeName(GateType type) {
  switch (type) {
    case GateType::kInput:
      return "input";
    case GateType::kConstFalse:
      return "const0";
    case GateType::kConstTrue:
      return "const1";
    case GateType::kNot:
      return "not";
    case GateType::kAnd:
      return "and";
    case GateType::kOr:
      return "or";
    case GateType::kNand:
      return "nand";
  }
  return "unknown";
}

GateId Circuit::AddInput() {
  Gate g;
  g.type = GateType::kInput;
  g.input_ordinal = num_inputs_++;
  gates_.push_back(g);
  return static_cast<GateId>(gates_.size() - 1);
}

GateId Circuit::AddConst(bool value) {
  Gate g;
  g.type = value ? GateType::kConstTrue : GateType::kConstFalse;
  gates_.push_back(g);
  return static_cast<GateId>(gates_.size() - 1);
}

GateId Circuit::AddNot(GateId a) {
  Gate g;
  g.type = GateType::kNot;
  g.lhs = a;
  gates_.push_back(g);
  return static_cast<GateId>(gates_.size() - 1);
}

GateId Circuit::AddBinary(GateType type, GateId a, GateId b) {
  Gate g;
  g.type = type;
  g.lhs = a;
  g.rhs = b;
  gates_.push_back(g);
  return static_cast<GateId>(gates_.size() - 1);
}

Status Circuit::Validate() const {
  for (GateId id = 0; id < num_gates(); ++id) {
    const Gate& g = gates_[static_cast<size_t>(id)];
    auto check_operand = [&](GateId op) {
      return op >= 0 && op < id;
    };
    switch (g.type) {
      case GateType::kInput:
        if (g.input_ordinal < 0 || g.input_ordinal >= num_inputs_) {
          return Status::Internal("bad input ordinal at gate " +
                                  std::to_string(id));
        }
        break;
      case GateType::kConstFalse:
      case GateType::kConstTrue:
        break;
      case GateType::kNot:
        if (!check_operand(g.lhs)) {
          return Status::Internal("bad NOT operand at gate " +
                                  std::to_string(id));
        }
        break;
      case GateType::kAnd:
      case GateType::kOr:
      case GateType::kNand:
        if (!check_operand(g.lhs) || !check_operand(g.rhs)) {
          return Status::Internal("bad binary operand at gate " +
                                  std::to_string(id));
        }
        break;
    }
  }
  if (output_ < 0 || output_ >= num_gates()) {
    return Status::Internal("output gate unset or out of range");
  }
  return Status::OK();
}

bool Circuit::IsMonotone() const {
  return std::none_of(gates_.begin(), gates_.end(), [](const Gate& g) {
    return g.type == GateType::kNot || g.type == GateType::kNand;
  });
}

bool Circuit::IsNandOnly() const {
  return std::all_of(gates_.begin(), gates_.end(), [](const Gate& g) {
    return g.type == GateType::kInput || g.type == GateType::kConstFalse ||
           g.type == GateType::kConstTrue || g.type == GateType::kNand;
  });
}

Result<std::vector<char>> Circuit::EvaluateAll(
    const std::vector<char>& assignment, CostMeter* meter) const {
  if (static_cast<int32_t>(assignment.size()) != num_inputs_) {
    return Status::InvalidArgument(
        "assignment size " + std::to_string(assignment.size()) +
        " != num_inputs " + std::to_string(num_inputs_));
  }
  PITRACT_RETURN_IF_ERROR(Validate());
  std::vector<char> value(gates_.size(), 0);
  std::vector<int64_t> level(gates_.size(), 0);
  int64_t max_level = 0;
  for (GateId id = 0; id < num_gates(); ++id) {
    const Gate& g = gates_[static_cast<size_t>(id)];
    const size_t i = static_cast<size_t>(id);
    switch (g.type) {
      case GateType::kInput:
        value[i] = assignment[static_cast<size_t>(g.input_ordinal)];
        break;
      case GateType::kConstFalse:
        value[i] = 0;
        break;
      case GateType::kConstTrue:
        value[i] = 1;
        break;
      case GateType::kNot:
        value[i] = value[static_cast<size_t>(g.lhs)] ? 0 : 1;
        level[i] = level[static_cast<size_t>(g.lhs)] + 1;
        break;
      case GateType::kAnd:
        value[i] = (value[static_cast<size_t>(g.lhs)] &&
                    value[static_cast<size_t>(g.rhs)])
                       ? 1
                       : 0;
        level[i] = std::max(level[static_cast<size_t>(g.lhs)],
                            level[static_cast<size_t>(g.rhs)]) +
                   1;
        break;
      case GateType::kOr:
        value[i] = (value[static_cast<size_t>(g.lhs)] ||
                    value[static_cast<size_t>(g.rhs)])
                       ? 1
                       : 0;
        level[i] = std::max(level[static_cast<size_t>(g.lhs)],
                            level[static_cast<size_t>(g.rhs)]) +
                   1;
        break;
      case GateType::kNand:
        value[i] = (value[static_cast<size_t>(g.lhs)] &&
                    value[static_cast<size_t>(g.rhs)])
                       ? 0
                       : 1;
        level[i] = std::max(level[static_cast<size_t>(g.lhs)],
                            level[static_cast<size_t>(g.rhs)]) +
                   1;
        break;
    }
    max_level = std::max(max_level, level[i]);
  }
  if (meter != nullptr) {
    // Parallel circuit evaluation: work = #gates, span = level depth.
    meter->AddParallel(num_gates(), max_level + 1);
    meter->AddBytesRead(num_gates() * static_cast<int64_t>(sizeof(Gate)));
  }
  return value;
}

Result<bool> Circuit::Evaluate(const std::vector<char>& assignment,
                               CostMeter* meter) const {
  auto values = EvaluateAll(assignment, meter);
  if (!values.ok()) return values.status();
  return (*values)[static_cast<size_t>(output_)] != 0;
}

int64_t Circuit::Depth() const {
  std::vector<int64_t> level(gates_.size(), 0);
  int64_t max_level = 0;
  for (GateId id = 0; id < num_gates(); ++id) {
    const Gate& g = gates_[static_cast<size_t>(id)];
    const size_t i = static_cast<size_t>(id);
    switch (g.type) {
      case GateType::kNot:
        level[i] = level[static_cast<size_t>(g.lhs)] + 1;
        break;
      case GateType::kAnd:
      case GateType::kOr:
      case GateType::kNand:
        level[i] = std::max(level[static_cast<size_t>(g.lhs)],
                            level[static_cast<size_t>(g.rhs)]) +
                   1;
        break;
      default:
        break;
    }
    max_level = std::max(max_level, level[i]);
  }
  return max_level;
}

std::string Circuit::Encode() const {
  // Flat tuple sequence: type, lhs, rhs, ordinal per gate.
  std::vector<int64_t> flat;
  flat.reserve(gates_.size() * 4 + 2);
  for (const Gate& g : gates_) {
    flat.push_back(static_cast<int64_t>(g.type));
    flat.push_back(g.lhs);
    flat.push_back(g.rhs);
    flat.push_back(g.input_ordinal);
  }
  return codec::EncodeFields(
      {std::to_string(output_), codec::EncodeInts(flat)});
}

Result<Circuit> Circuit::Decode(std::string_view encoded) {
  auto fields = codec::DecodeFields(encoded);
  if (!fields.ok()) return fields.status();
  if (fields->size() != 2) {
    return Status::InvalidArgument("circuit encoding needs 2 fields");
  }
  auto output_field = codec::DecodeInts((*fields)[0]);
  if (!output_field.ok()) return output_field.status();
  if (output_field->size() != 1) {
    return Status::InvalidArgument("bad output field");
  }
  auto flat = codec::DecodeInts((*fields)[1]);
  if (!flat.ok()) return flat.status();
  if (flat->size() % 4 != 0) {
    return Status::InvalidArgument("gate tuple stream not a multiple of 4");
  }
  Circuit c;
  for (size_t i = 0; i < flat->size(); i += 4) {
    Gate g;
    int64_t type = (*flat)[i];
    if (type < 0 || type > static_cast<int64_t>(GateType::kNand)) {
      return Status::InvalidArgument("bad gate type " + std::to_string(type));
    }
    g.type = static_cast<GateType>(type);
    g.lhs = static_cast<GateId>((*flat)[i + 1]);
    g.rhs = static_cast<GateId>((*flat)[i + 2]);
    g.input_ordinal = static_cast<int32_t>((*flat)[i + 3]);
    if (g.type == GateType::kInput) {
      c.num_inputs_ = std::max(c.num_inputs_, g.input_ordinal + 1);
    }
    c.gates_.push_back(g);
  }
  c.output_ = static_cast<GateId>((*output_field)[0]);
  PITRACT_RETURN_IF_ERROR(c.Validate());
  return c;
}

std::string CvpInstance::Encode() const {
  std::string bits(assignment.size(), '0');
  for (size_t i = 0; i < assignment.size(); ++i) {
    if (assignment[i]) bits[i] = '1';
  }
  return codec::EncodeFields({circuit.Encode(), bits});
}

Result<CvpInstance> CvpInstance::Decode(std::string_view encoded) {
  auto fields = codec::DecodeFields(encoded);
  if (!fields.ok()) return fields.status();
  if (fields->size() != 2) {
    return Status::InvalidArgument("CVP instance needs 2 fields");
  }
  auto c = Circuit::Decode((*fields)[0]);
  if (!c.ok()) return c.status();
  CvpInstance instance;
  instance.circuit = std::move(c).value();
  for (char bit : (*fields)[1]) {
    if (bit != '0' && bit != '1') {
      return Status::InvalidArgument("bad assignment bit");
    }
    instance.assignment.push_back(bit == '1' ? 1 : 0);
  }
  if (static_cast<int32_t>(instance.assignment.size()) !=
      instance.circuit.num_inputs()) {
    return Status::InvalidArgument("assignment/input arity mismatch");
  }
  return instance;
}

}  // namespace circuit
}  // namespace pitract
