#ifndef PITRACT_CIRCUIT_TRANSFORMS_H_
#define PITRACT_CIRCUIT_TRANSFORMS_H_

#include "circuit/circuit.h"
#include "common/result.h"

namespace pitract {
namespace circuit {

/// Local-replacement circuit transformations. These are the textbook NC
/// (constant-depth, gate-local) reductions between CVP variants that
/// Section 5's reduction machinery is exercised with: each gate is rewritten
/// independently of all others, so the transformation is computable in
/// constant parallel time with one processor per gate.

/// Rewrites every AND/OR/NOT gate into NAND gates (CVP ≤ NANDCVP).
/// The result computes the same function on the same inputs.
Result<Circuit> ToNandOnly(const Circuit& c);

/// Double-rail monotonization (CVP ≤ MCVP): produces a circuit over
/// 2·num_inputs inputs — input i of the original becomes the pair
/// (2i: xᵢ, 2i+1: ¬xᵢ) — containing only AND/OR gates, whose output equals
/// the original output when the doubled assignment is consistent.
Result<Circuit> ToMonotoneDoubleRail(const Circuit& c);

/// Expands an assignment x to its double-rail form (x₀, ¬x₀, x₁, ¬x₁, ...).
std::vector<char> DoubleRailAssignment(const std::vector<char>& assignment);

}  // namespace circuit
}  // namespace pitract

#endif  // PITRACT_CIRCUIT_TRANSFORMS_H_
