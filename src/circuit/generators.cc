#include "circuit/generators.h"

#include <algorithm>
#include <cassert>

namespace pitract {
namespace circuit {

Circuit RandomCircuit(const CircuitGenOptions& options, Rng* rng) {
  assert(options.num_inputs >= 1 && options.num_gates >= 1);
  Circuit c;
  for (int32_t i = 0; i < options.num_inputs; ++i) c.AddInput();
  for (int32_t g = 0; g < options.num_gates; ++g) {
    const GateId hi = c.num_gates();  // operands from [lo, hi)
    GateId lo = 0;
    if (options.deep) {
      lo = std::max<GateId>(0, hi - options.locality_window);
    }
    auto pick = [&]() {
      return static_cast<GateId>(
          lo + static_cast<GateId>(rng->NextBelow(
                   static_cast<uint64_t>(hi - lo))));
    };
    if (rng->NextBool(options.not_probability)) {
      c.AddNot(pick());
    } else if (rng->NextBool(0.5)) {
      c.AddAnd(pick(), pick());
    } else {
      c.AddOr(pick(), pick());
    }
  }
  c.set_output(c.num_gates() - 1);
  return c;
}

CvpInstance RandomCvpInstance(const CircuitGenOptions& options, Rng* rng) {
  CvpInstance instance;
  instance.circuit = RandomCircuit(options, rng);
  instance.assignment.resize(static_cast<size_t>(options.num_inputs));
  for (auto& bit : instance.assignment) bit = rng->NextBool() ? 1 : 0;
  return instance;
}

Circuit ChainCircuit(int32_t n, Rng* rng) {
  assert(n >= 1);
  Circuit c;
  GateId x = c.AddInput();
  GateId y = c.AddInput();
  GateId prev = c.AddOr(x, y);
  for (int32_t i = 1; i < n; ++i) {
    GateId other = rng->NextBool() ? x : y;
    prev = rng->NextBool() ? c.AddAnd(prev, other) : c.AddOr(prev, other);
    if (rng->NextBool(0.25)) prev = c.AddNot(prev);
  }
  c.set_output(prev);
  return c;
}

}  // namespace circuit
}  // namespace pitract
