#ifndef PITRACT_CIRCUIT_GENERATORS_H_
#define PITRACT_CIRCUIT_GENERATORS_H_

#include "circuit/circuit.h"
#include "common/rng.h"

namespace pitract {
namespace circuit {

/// Random CVP workloads (deterministic in the Rng seed).
struct CircuitGenOptions {
  int32_t num_inputs = 8;
  int32_t num_gates = 64;  // non-input gates
  /// Probability of a NOT gate (otherwise AND/OR evenly split).
  double not_probability = 0.2;
  /// When true, operands are drawn from the most recent `locality_window`
  /// gates, producing deep, sequential-looking circuits; when false they
  /// are drawn uniformly, producing shallow circuits.
  bool deep = false;
  int32_t locality_window = 4;
};

/// Random circuit per the options; the output is the last gate.
Circuit RandomCircuit(const CircuitGenOptions& options, Rng* rng);

/// Random CVP instance: random circuit + uniform assignment.
CvpInstance RandomCvpInstance(const CircuitGenOptions& options, Rng* rng);

/// A deliberately deep "chain" circuit of n alternating gates — the
/// worst case for parallel evaluation (depth = n).
Circuit ChainCircuit(int32_t n, Rng* rng);

}  // namespace circuit
}  // namespace pitract

#endif  // PITRACT_CIRCUIT_GENERATORS_H_
