#ifndef PITRACT_INCREMENTAL_UNION_FIND_H_
#define PITRACT_INCREMENTAL_UNION_FIND_H_

#include <cstdint>
#include <vector>

#include "common/cost_meter.h"
#include "common/result.h"

namespace pitract {
namespace incremental {

/// Incremental maintenance of the connectivity preprocessing (Section 1's
/// incremental-preprocessing requirement, applied to the ConnWitness of
/// src/core): a disjoint-set forest with union by rank and path
/// compression. After the initial PTIME pass, each edge insertion costs
/// amortized near-O(1) — a bounded incremental update in the
/// Ramalingam–Reps sense (the work depends on the change, not on |D|) —
/// and connectivity queries remain O(alpha(n)).
class UnionFind {
 public:
  explicit UnionFind(int64_t n);

  /// Merges the sets of a and b. Returns true if they were separate
  /// (|CHANGED| > 0), false for a no-op insertion.
  Result<bool> Union(int64_t a, int64_t b, CostMeter* meter);

  /// Are a and b in the same set?
  Result<bool> Connected(int64_t a, int64_t b, CostMeter* meter) const;

  /// Canonical representative (with path compression).
  Result<int64_t> Find(int64_t a, CostMeter* meter) const;

  int64_t num_elements() const { return static_cast<int64_t>(parent_.size()); }
  int64_t num_components() const { return num_components_; }

 private:
  Status CheckIndex(int64_t a) const;
  int64_t FindRoot(int64_t a, CostMeter* meter) const;

  // Mutable: path compression rewrites parents during const queries — the
  // classic "logically const" accelerator structure.
  mutable std::vector<int64_t> parent_;
  std::vector<int32_t> rank_;
  int64_t num_components_ = 0;
};

}  // namespace incremental
}  // namespace pitract

#endif  // PITRACT_INCREMENTAL_UNION_FIND_H_
