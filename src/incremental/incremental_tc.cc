#include "incremental/incremental_tc.h"

#include <algorithm>
#include <limits>

#include "common/serde.h"

namespace pitract {
namespace incremental {

namespace {

/// Words per closure row for an n-node graph.
int64_t WordsPerRow(int64_t n) { return (n + 63) / 64; }

/// Serialize format tag: deliberately above any representable node count
/// (NodeId is 32-bit), so a v1 image — whose first u64 was n itself —
/// can never alias a v2 header.
constexpr uint64_t kFormatTagV2 = 0xFFFFFFFF00000002ull;

}  // namespace

IncrementalTransitiveClosure::IncrementalTransitiveClosure(graph::NodeId n)
    : n_(n),
      desc_(static_cast<size_t>(n), reach::Bitset(n)),
      anc_(static_cast<size_t>(n), reach::Bitset(n)),
      out_(static_cast<size_t>(n)) {
  for (graph::NodeId v = 0; v < n; ++v) {
    desc_[static_cast<size_t>(v)].Set(v);
    anc_[static_cast<size_t>(v)].Set(v);
  }
}

IncrementalTransitiveClosure IncrementalTransitiveClosure::Build(
    const graph::Graph& g, CostMeter* meter) {
  IncrementalTransitiveClosure tc(g.num_nodes());
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    for (graph::NodeId v : g.OutNeighbors(u)) {
      auto changed = tc.InsertEdge(u, v, meter);
      (void)changed;
    }
  }
  return tc;
}

Result<int64_t> IncrementalTransitiveClosure::InsertEdge(graph::NodeId u,
                                                         graph::NodeId v,
                                                         CostMeter* meter) {
  if (u < 0 || u >= n_ || v < 0 || v >= n_) {
    return Status::OutOfRange("node id out of range");
  }
  last_insert_work_ = 1;
  // Record the edge first: even an already-reachable insert must land in
  // the edge set, or a later DeleteEdge would reconstruct the wrong graph.
  auto& adj = out_[static_cast<size_t>(u)];
  const auto pos = std::lower_bound(adj.begin(), adj.end(), v);
  if (pos == adj.end() || *pos != v) adj.insert(pos, v);
  if (desc_[static_cast<size_t>(u)].Test(v)) {
    // Already reachable: a bounded incremental algorithm does O(1) work.
    if (meter != nullptr) meter->AddSerial(1);
    return 0;
  }
  // For every x ⇝ u whose descendant set misses something in desc(v),
  // merge desc(v) into desc(x); symmetrically for ancestor rows. Work is
  // proportional to the rows actually touched — the affected region.
  int64_t changed_pairs = 0;
  const reach::Bitset& dv = desc_[static_cast<size_t>(v)];
  const auto& anc_words = anc_[static_cast<size_t>(u)].words();
  for (size_t w = 0; w < anc_words.size(); ++w) {
    const uint64_t word = anc_words[w];
    ++last_insert_work_;
    if (word == 0) continue;  // skip unaffected id ranges wholesale
    for (int bit = 0; bit < 64; ++bit) {
      if (((word >> bit) & 1) == 0) continue;
      const auto x = static_cast<graph::NodeId>(w * 64 + bit);
      reach::Bitset& dx = desc_[static_cast<size_t>(x)];
      const int64_t before = dx.Count();
      const bool changed = dx.UnionWith(dv);
      last_insert_work_ += dx.num_words();
      if (!changed) continue;
      changed_pairs += dx.Count() - before;
      // Maintain ancestor rows for each node v's subtree made reachable.
      for (graph::NodeId y = 0; y < n_; ++y) {
        if (dv.Test(y) && !anc_[static_cast<size_t>(y)].Test(x)) {
          anc_[static_cast<size_t>(y)].Set(x);
          ++last_insert_work_;
        }
      }
    }
  }
  if (meter != nullptr) {
    meter->AddSerial(last_insert_work_);
    meter->AddBytesWritten(changed_pairs / 8 + 1);
  }
  return changed_pairs;
}

Result<int64_t> IncrementalTransitiveClosure::DeleteEdge(graph::NodeId u,
                                                         graph::NodeId v,
                                                         CostMeter* meter) {
  if (u < 0 || u >= n_ || v < 0 || v >= n_) {
    return Status::OutOfRange("node id out of range");
  }
  last_delete_work_ = 1;
  auto& adj = out_[static_cast<size_t>(u)];
  const auto pos = std::lower_bound(adj.begin(), adj.end(), v);
  if (pos == adj.end() || *pos != v) {
    return Status::NotFound("edge not present");
  }
  adj.erase(pos);
  // SES affected set: every pair (x, y) that can die routes through
  // (u, v), so x ⇝ u and v ∈ desc(x) pre-delete. Rows outside AFF are
  // already final; only AFF rows are recomputed.
  std::vector<graph::NodeId> aff;
  const auto& anc_words = anc_[static_cast<size_t>(u)].words();
  for (size_t w = 0; w < anc_words.size(); ++w) {
    const uint64_t word = anc_words[w];
    ++last_delete_work_;
    if (word == 0) continue;  // skip unaffected id ranges wholesale
    for (int bit = 0; bit < 64; ++bit) {
      if (((word >> bit) & 1) == 0) continue;
      const auto x = static_cast<graph::NodeId>(w * 64 + bit);
      if (desc_[static_cast<size_t>(x)].Test(v)) aff.push_back(x);
    }
  }
  // Snapshot the old rows (for the ancestor repair diff) and reseed each
  // affected row at its reflexive bottom element.
  std::vector<reach::Bitset> old_rows;
  old_rows.reserve(aff.size());
  for (graph::NodeId x : aff) {
    reach::Bitset& dx = desc_[static_cast<size_t>(x)];
    old_rows.push_back(dx);
    last_delete_work_ += dx.num_words();
    dx = reach::Bitset(n_);
    dx.Set(x);
  }
  // Least-fixpoint sweep over AFF: desc(x) = {x} ∪ ⋃_{w ∈ out(x)} desc(w),
  // with non-affected rows as the exact boundary. Monotone from below, so
  // it converges to the true post-delete closure restricted to AFF.
  bool changed = true;
  while (changed) {
    changed = false;
    for (graph::NodeId x : aff) {
      reach::Bitset& dx = desc_[static_cast<size_t>(x)];
      for (graph::NodeId w : out_[static_cast<size_t>(x)]) {
        ++last_delete_work_;
        if (dx.UnionWith(desc_[static_cast<size_t>(w)])) changed = true;
        last_delete_work_ += dx.num_words();
      }
    }
  }
  // Ancestor repair: clear exactly the bits that left each affected row.
  int64_t removed_pairs = 0;
  for (size_t i = 0; i < aff.size(); ++i) {
    const graph::NodeId x = aff[i];
    const auto& old_words = old_rows[i].words();
    const auto& new_words = desc_[static_cast<size_t>(x)].words();
    for (size_t w = 0; w < old_words.size(); ++w) {
      ++last_delete_work_;
      uint64_t gone = old_words[w] & ~new_words[w];
      if (gone == 0) continue;
      for (int bit = 0; bit < 64; ++bit) {
        if (((gone >> bit) & 1) == 0) continue;
        const auto y = static_cast<graph::NodeId>(w * 64 + bit);
        anc_[static_cast<size_t>(y)].Clear(x);
        ++removed_pairs;
        ++last_delete_work_;
      }
    }
  }
  if (meter != nullptr) {
    meter->AddSerial(last_delete_work_);
    meter->AddBytesWritten(removed_pairs / 8 + 1);
  }
  return removed_pairs;
}

Result<bool> IncrementalTransitiveClosure::Reachable(graph::NodeId u,
                                                     graph::NodeId v,
                                                     CostMeter* meter) const {
  if (u < 0 || u >= n_ || v < 0 || v >= n_) {
    return Status::OutOfRange("node id out of range");
  }
  if (meter != nullptr) {
    meter->AddSerial(1);
    meter->AddBytesRead(8);
  }
  return desc_[static_cast<size_t>(u)].Test(v);
}

int64_t IncrementalTransitiveClosure::NumEdges() const {
  int64_t m = 0;
  for (const auto& adj : out_) m += static_cast<int64_t>(adj.size());
  return m;
}

std::string IncrementalTransitiveClosure::Serialize() const {
  std::string out;
  const int64_t wpr = WordsPerRow(n_);
  const int64_t m = NumEdges();
  out.reserve(static_cast<size_t>(24 + 2 * n_ * wpr * 8 + 8 * m));
  serde::PutU64(&out, kFormatTagV2);
  serde::PutU64(&out, static_cast<uint64_t>(n_));
  serde::PutU64(&out, static_cast<uint64_t>(m));
  for (const auto* rows : {&desc_, &anc_}) {
    for (const reach::Bitset& row : *rows) {
      for (uint64_t word : row.words()) serde::PutU64(&out, word);
    }
  }
  for (graph::NodeId u = 0; u < n_; ++u) {
    for (graph::NodeId v : out_[static_cast<size_t>(u)]) {
      serde::PutU64(&out, (static_cast<uint64_t>(u) << 32) |
                              static_cast<uint64_t>(static_cast<uint32_t>(v)));
    }
  }
  return out;
}

Result<IncrementalTransitiveClosure>
IncrementalTransitiveClosure::Deserialize(std::string_view bytes) {
  serde::Reader reader(bytes);
  PITRACT_ASSIGN_OR_RETURN(uint64_t tag, reader.ReadU64());
  if (tag != kFormatTagV2) {
    return Status::InvalidArgument(
        "closure image: unsupported format (pre-edge-list image?)");
  }
  PITRACT_ASSIGN_OR_RETURN(uint64_t n_raw, reader.ReadU64());
  if (n_raw > static_cast<uint64_t>(std::numeric_limits<graph::NodeId>::max())) {
    return Status::InvalidArgument("closure image: node count overflows");
  }
  const auto n = static_cast<graph::NodeId>(n_raw);
  const int64_t wpr = WordsPerRow(n);
  PITRACT_ASSIGN_OR_RETURN(uint64_t m_raw, reader.ReadU64());
  if (m_raw > static_cast<uint64_t>(n) * static_cast<uint64_t>(n)) {
    return Status::InvalidArgument("closure image: edge count overflows");
  }
  const auto m = static_cast<int64_t>(m_raw);
  if (reader.remaining() != static_cast<size_t>(2 * n * wpr * 8 + 8 * m)) {
    return Status::InvalidArgument("closure image: truncated or oversized");
  }
  IncrementalTransitiveClosure tc(n);
  for (auto* rows : {&tc.desc_, &tc.anc_}) {
    for (reach::Bitset& row : *rows) {
      for (int64_t w = 0; w < wpr; ++w) {
        PITRACT_ASSIGN_OR_RETURN(uint64_t word, reader.ReadU64());
        row.SetWord(w, word);
      }
    }
  }
  // Edges are written strictly increasing as (u << 32) | v keys, which
  // both validates sorted/unique adjacency and lets them stream straight
  // into the per-node lists.
  uint64_t prev_key = 0;
  bool have_prev = false;
  for (int64_t e = 0; e < m; ++e) {
    PITRACT_ASSIGN_OR_RETURN(uint64_t key, reader.ReadU64());
    if (have_prev && key <= prev_key) {
      return Status::InvalidArgument("closure image: edge list not sorted");
    }
    prev_key = key;
    have_prev = true;
    const auto u = static_cast<int64_t>(key >> 32);
    const auto v = static_cast<int64_t>(key & 0xFFFFFFFFull);
    if (u >= n || v >= n) {
      return Status::InvalidArgument("closure image: edge endpoint overflows");
    }
    tc.out_[static_cast<size_t>(u)].push_back(static_cast<graph::NodeId>(v));
  }
  // A closure row must at least contain its own node (Build/ctor set the
  // reflexive bit), so an all-zero diagonal is a corrupt image, not data.
  for (graph::NodeId v = 0; v < n; ++v) {
    if (!tc.desc_[static_cast<size_t>(v)].Test(v) ||
        !tc.anc_[static_cast<size_t>(v)].Test(v)) {
      return Status::InvalidArgument("closure image: missing reflexive bit");
    }
  }
  return tc;
}

Result<bool> IncrementalTransitiveClosure::ReachableInSerialized(
    std::string_view bytes, int64_t u, int64_t v) {
  serde::Reader reader(bytes);
  PITRACT_ASSIGN_OR_RETURN(uint64_t tag, reader.ReadU64());
  if (tag != kFormatTagV2) {
    return Status::InvalidArgument(
        "closure image: unsupported format (pre-edge-list image?)");
  }
  PITRACT_ASSIGN_OR_RETURN(uint64_t n_raw, reader.ReadU64());
  // Bound n (and m) before any size arithmetic: adversarial counts would
  // both overflow the expected-size product and defeat the u/v range
  // checks, turning the offset probe below into an out-of-bounds read.
  if (n_raw > static_cast<uint64_t>(std::numeric_limits<graph::NodeId>::max())) {
    return Status::InvalidArgument("closure image: node count overflows");
  }
  const auto n = static_cast<int64_t>(n_raw);
  const int64_t wpr = WordsPerRow(n);  // n <= 2^31: products fit in int64
  PITRACT_ASSIGN_OR_RETURN(uint64_t m_raw, reader.ReadU64());
  if (m_raw > static_cast<uint64_t>(n) * static_cast<uint64_t>(n)) {
    return Status::InvalidArgument("closure image: edge count overflows");
  }
  const auto m = static_cast<int64_t>(m_raw);
  if (bytes.size() != static_cast<size_t>(24 + 2 * n * wpr * 8 + 8 * m)) {
    return Status::InvalidArgument("closure image: truncated or oversized");
  }
  if (u < 0 || u >= n || v < 0 || v >= n) {
    return Status::OutOfRange("node id out of range");
  }
  const size_t offset =
      static_cast<size_t>(24 + (u * wpr + (v >> 6)) * 8);
  uint64_t word = 0;
  for (size_t i = 0; i < 8; ++i) {
    word |= static_cast<uint64_t>(
                static_cast<unsigned char>(bytes[offset + i]))
            << (8 * i);
  }
  return ((word >> (v & 63)) & 1) != 0;
}

int64_t IncrementalTransitiveClosure::NumReachablePairs() const {
  int64_t pairs = 0;
  for (const auto& row : desc_) pairs += row.Count();
  return pairs;
}

}  // namespace incremental
}  // namespace pitract
