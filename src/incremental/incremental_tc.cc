#include "incremental/incremental_tc.h"

namespace pitract {
namespace incremental {

IncrementalTransitiveClosure::IncrementalTransitiveClosure(graph::NodeId n)
    : n_(n),
      desc_(static_cast<size_t>(n), reach::Bitset(n)),
      anc_(static_cast<size_t>(n), reach::Bitset(n)) {
  for (graph::NodeId v = 0; v < n; ++v) {
    desc_[static_cast<size_t>(v)].Set(v);
    anc_[static_cast<size_t>(v)].Set(v);
  }
}

IncrementalTransitiveClosure IncrementalTransitiveClosure::Build(
    const graph::Graph& g, CostMeter* meter) {
  IncrementalTransitiveClosure tc(g.num_nodes());
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    for (graph::NodeId v : g.OutNeighbors(u)) {
      auto changed = tc.InsertEdge(u, v, meter);
      (void)changed;
    }
  }
  return tc;
}

Result<int64_t> IncrementalTransitiveClosure::InsertEdge(graph::NodeId u,
                                                         graph::NodeId v,
                                                         CostMeter* meter) {
  if (u < 0 || u >= n_ || v < 0 || v >= n_) {
    return Status::OutOfRange("node id out of range");
  }
  last_insert_work_ = 1;
  if (desc_[static_cast<size_t>(u)].Test(v)) {
    // Already reachable: a bounded incremental algorithm does O(1) work.
    if (meter != nullptr) meter->AddSerial(1);
    return 0;
  }
  // For every x ⇝ u whose descendant set misses something in desc(v),
  // merge desc(v) into desc(x); symmetrically for ancestor rows. Work is
  // proportional to the rows actually touched — the affected region.
  int64_t changed_pairs = 0;
  const reach::Bitset& dv = desc_[static_cast<size_t>(v)];
  const auto& anc_words = anc_[static_cast<size_t>(u)].words();
  for (size_t w = 0; w < anc_words.size(); ++w) {
    const uint64_t word = anc_words[w];
    ++last_insert_work_;
    if (word == 0) continue;  // skip unaffected id ranges wholesale
    for (int bit = 0; bit < 64; ++bit) {
      if (((word >> bit) & 1) == 0) continue;
      const auto x = static_cast<graph::NodeId>(w * 64 + bit);
      reach::Bitset& dx = desc_[static_cast<size_t>(x)];
      const int64_t before = dx.Count();
      const bool changed = dx.UnionWith(dv);
      last_insert_work_ += dx.num_words();
      if (!changed) continue;
      changed_pairs += dx.Count() - before;
      // Maintain ancestor rows for each node v's subtree made reachable.
      for (graph::NodeId y = 0; y < n_; ++y) {
        if (dv.Test(y) && !anc_[static_cast<size_t>(y)].Test(x)) {
          anc_[static_cast<size_t>(y)].Set(x);
          ++last_insert_work_;
        }
      }
    }
  }
  if (meter != nullptr) {
    meter->AddSerial(last_insert_work_);
    meter->AddBytesWritten(changed_pairs / 8 + 1);
  }
  return changed_pairs;
}

Result<bool> IncrementalTransitiveClosure::Reachable(graph::NodeId u,
                                                     graph::NodeId v,
                                                     CostMeter* meter) const {
  if (u < 0 || u >= n_ || v < 0 || v >= n_) {
    return Status::OutOfRange("node id out of range");
  }
  if (meter != nullptr) {
    meter->AddSerial(1);
    meter->AddBytesRead(8);
  }
  return desc_[static_cast<size_t>(u)].Test(v);
}

int64_t IncrementalTransitiveClosure::NumReachablePairs() const {
  int64_t pairs = 0;
  for (const auto& row : desc_) pairs += row.Count();
  return pairs;
}

}  // namespace incremental
}  // namespace pitract
