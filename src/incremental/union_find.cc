#include "incremental/union_find.h"

#include <numeric>

namespace pitract {
namespace incremental {

UnionFind::UnionFind(int64_t n)
    : parent_(static_cast<size_t>(n)),
      rank_(static_cast<size_t>(n), 0),
      num_components_(n) {
  std::iota(parent_.begin(), parent_.end(), int64_t{0});
}

Status UnionFind::CheckIndex(int64_t a) const {
  if (a < 0 || a >= num_elements()) {
    return Status::OutOfRange("element " + std::to_string(a) +
                              " outside [0, " +
                              std::to_string(num_elements()) + ")");
  }
  return Status::OK();
}

int64_t UnionFind::FindRoot(int64_t a, CostMeter* meter) const {
  int64_t root = a;
  int64_t steps = 0;
  while (parent_[static_cast<size_t>(root)] != root) {
    root = parent_[static_cast<size_t>(root)];
    ++steps;
  }
  // Path compression.
  int64_t cur = a;
  while (parent_[static_cast<size_t>(cur)] != root) {
    int64_t next = parent_[static_cast<size_t>(cur)];
    parent_[static_cast<size_t>(cur)] = root;
    cur = next;
  }
  if (meter != nullptr) meter->AddSerial(steps + 1);
  return root;
}

Result<bool> UnionFind::Union(int64_t a, int64_t b, CostMeter* meter) {
  PITRACT_RETURN_IF_ERROR(CheckIndex(a));
  PITRACT_RETURN_IF_ERROR(CheckIndex(b));
  int64_t ra = FindRoot(a, meter);
  int64_t rb = FindRoot(b, meter);
  if (ra == rb) return false;
  if (rank_[static_cast<size_t>(ra)] < rank_[static_cast<size_t>(rb)]) {
    std::swap(ra, rb);
  }
  parent_[static_cast<size_t>(rb)] = ra;
  if (rank_[static_cast<size_t>(ra)] == rank_[static_cast<size_t>(rb)]) {
    ++rank_[static_cast<size_t>(ra)];
  }
  --num_components_;
  if (meter != nullptr) meter->AddSerial(1);
  return true;
}

Result<bool> UnionFind::Connected(int64_t a, int64_t b,
                                  CostMeter* meter) const {
  PITRACT_RETURN_IF_ERROR(CheckIndex(a));
  PITRACT_RETURN_IF_ERROR(CheckIndex(b));
  return FindRoot(a, meter) == FindRoot(b, meter);
}

Result<int64_t> UnionFind::Find(int64_t a, CostMeter* meter) const {
  PITRACT_RETURN_IF_ERROR(CheckIndex(a));
  return FindRoot(a, meter);
}

}  // namespace incremental
}  // namespace pitract
