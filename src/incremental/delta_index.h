#ifndef PITRACT_INCREMENTAL_DELTA_INDEX_H_
#define PITRACT_INCREMENTAL_DELTA_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/cost_meter.h"
#include "common/result.h"
#include "index/bptree.h"

namespace pitract {
namespace incremental {

/// A single change to an indexed column.
struct Delta {
  enum class Op { kInsert, kDelete };
  Op op = Op::kInsert;
  int64_t key = 0;
  int64_t row_id = 0;
};

/// Incremental preprocessing maintenance (Section 1's "compute ΔD' such
/// that processing D ⊕ ΔD equals D' ⊕ ΔD'"): the preprocessed structure is
/// a B+-tree over a column; applying a Δ-batch costs O(|ΔD| log |D|) —
/// a function of the change size, never of |D| — versus rebuilding the
/// whole index from scratch.
class DeltaMaintainedIndex {
 public:
  /// Initial preprocessing: bulk-build from (key, row_id) pairs.
  static Result<DeltaMaintainedIndex> Build(
      std::vector<std::pair<int64_t, int64_t>> entries, CostMeter* meter);

  /// Applies a batch of changes incrementally; cost O(|batch| log n).
  Status ApplyDelta(const std::vector<Delta>& batch, CostMeter* meter);

  /// Rebuild-from-scratch alternative (the cost the paper's incremental
  /// strategy avoids). Charged O(n log n).
  Status RebuildWith(const std::vector<Delta>& batch, CostMeter* meter);

  /// Point probe against the maintained index.
  bool PointExists(int64_t key, CostMeter* meter) const;

  int64_t size() const { return tree_.size(); }
  Status Validate() const { return tree_.Validate(); }

  /// Current keys in sorted order — the logical column the maintained
  /// index represents. The engine's Δ-patch hook re-encodes this as the
  /// post-delta Π(D) payload (re-encoding is harness bookkeeping, outside
  /// the charged O(|Δ| log |D|) maintenance cost).
  std::vector<int64_t> SortedKeys() const;

 private:
  /// Current logical contents, kept for RebuildWith.
  std::vector<std::pair<int64_t, int64_t>> entries_;
  index::BPlusTree tree_;
};

}  // namespace incremental
}  // namespace pitract

#endif  // PITRACT_INCREMENTAL_DELTA_INDEX_H_
