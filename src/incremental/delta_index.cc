#include "incremental/delta_index.h"

#include <algorithm>

#include "ncsim/ncsim.h"

namespace pitract {
namespace incremental {

Result<DeltaMaintainedIndex> DeltaMaintainedIndex::Build(
    std::vector<std::pair<int64_t, int64_t>> entries, CostMeter* meter) {
  DeltaMaintainedIndex index;
  index.entries_ = std::move(entries);
  std::vector<std::pair<int64_t, int64_t>> sorted = index.entries_;
  std::sort(sorted.begin(), sorted.end());
  PITRACT_RETURN_IF_ERROR(index.tree_.BulkLoad(sorted));
  if (meter != nullptr) {
    const auto n = static_cast<int64_t>(sorted.size());
    meter->AddSerial(n * (ncsim::CeilLog2(n < 1 ? 1 : n) + 1));
    meter->AddBytesWritten(n * 16);
  }
  return index;
}

Status DeltaMaintainedIndex::ApplyDelta(const std::vector<Delta>& batch,
                                        CostMeter* meter) {
  const int64_t n = tree_.size() < 1 ? 1 : tree_.size();
  for (const Delta& d : batch) {
    if (d.op == Delta::Op::kInsert) {
      tree_.Insert(d.key, d.row_id);
      entries_.emplace_back(d.key, d.row_id);
    } else {
      PITRACT_RETURN_IF_ERROR(tree_.Delete(d.key, d.row_id));
      auto it = std::find(entries_.begin(), entries_.end(),
                          std::make_pair(d.key, d.row_id));
      if (it != entries_.end()) {
        *it = entries_.back();
        entries_.pop_back();
      }
    }
    if (meter != nullptr) {
      // One root-to-leaf traversal per change.
      meter->AddSerial(ncsim::CeilLog2(n) + 1);
      meter->AddBytesWritten(16);
    }
  }
  return Status::OK();
}

Status DeltaMaintainedIndex::RebuildWith(const std::vector<Delta>& batch,
                                         CostMeter* meter) {
  for (const Delta& d : batch) {
    if (d.op == Delta::Op::kInsert) {
      entries_.emplace_back(d.key, d.row_id);
    } else {
      auto it = std::find(entries_.begin(), entries_.end(),
                          std::make_pair(d.key, d.row_id));
      if (it == entries_.end()) {
        return Status::NotFound("delete of absent entry");
      }
      *it = entries_.back();
      entries_.pop_back();
    }
  }
  std::vector<std::pair<int64_t, int64_t>> sorted = entries_;
  std::sort(sorted.begin(), sorted.end());
  index::BPlusTree fresh;
  PITRACT_RETURN_IF_ERROR(fresh.BulkLoad(sorted));
  tree_ = std::move(fresh);
  if (meter != nullptr) {
    const auto n = static_cast<int64_t>(sorted.size());
    meter->AddSerial(n * (ncsim::CeilLog2(n < 1 ? 1 : n) + 1));
    meter->AddBytesWritten(n * 16);
  }
  return Status::OK();
}

bool DeltaMaintainedIndex::PointExists(int64_t key, CostMeter* meter) const {
  return tree_.PointExists(key, meter);
}

std::vector<int64_t> DeltaMaintainedIndex::SortedKeys() const {
  std::vector<int64_t> keys;
  keys.reserve(entries_.size());
  for (const auto& [key, row_id] : entries_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace incremental
}  // namespace pitract
