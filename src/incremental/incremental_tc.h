#ifndef PITRACT_INCREMENTAL_INCREMENTAL_TC_H_
#define PITRACT_INCREMENTAL_INCREMENTAL_TC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/cost_meter.h"
#include "common/result.h"
#include "graph/graph.h"
#include "reach/reachability.h"

namespace pitract {
namespace incremental {

/// Bounded incremental transitive closure under edge insertions *and*
/// deletions (Section 4(7) and the incremental-preprocessing discussion of
/// Section 1, after Ramalingam–Reps [35] and Italiano's incremental TC).
///
/// The closure bit-matrix is maintained in place alongside the edge set
/// (sorted adjacency, set semantics — parallel edges collapse, matching
/// graph::Graph::FromEdges dedup). Inserting (u, v) updates only rows of
/// nodes x with x ⇝ u that actually gain descendants. Deleting (u, v)
/// recomputes only the SES affected set AFF = {x : x ⇝ u ∧ v ∈ desc(x)} —
/// every reachable pair that can die routes through the deleted edge, so
/// rows outside AFF are final — via a least-fixpoint sweep seeded from the
/// untouched boundary rows, then clears exactly the removed ancestor bits.
/// Both costs are functions of the affected region / |CHANGED|, *not* of
/// |D|; the per-operation counters expose exactly the quantities
/// Ramalingam–Reps analyse, so benchmarks can plot cost against |CHANGED|.
class IncrementalTransitiveClosure {
 public:
  /// Initializes the closure of `g` from scratch (the paper's "evaluate
  /// once as preprocessing" step).
  static IncrementalTransitiveClosure Build(const graph::Graph& g,
                                            CostMeter* meter);

  /// Starts from n isolated nodes.
  explicit IncrementalTransitiveClosure(graph::NodeId n);

  /// Inserts an edge and incrementally maintains the closure.
  /// Returns the number of newly reachable pairs (|CHANGED| for this op).
  /// Re-inserting a present edge is a charged O(1) no-op (set semantics).
  Result<int64_t> InsertEdge(graph::NodeId u, graph::NodeId v,
                             CostMeter* meter);

  /// Deletes an edge and decrementally maintains the closure (SES-style
  /// affected-set recompute; see the class comment). Returns the number of
  /// reachable pairs removed (|CHANGED| for this op). NotFound if the edge
  /// is not present.
  Result<int64_t> DeleteEdge(graph::NodeId u, graph::NodeId v,
                             CostMeter* meter);

  /// O(1) closure probe (reflexive).
  Result<bool> Reachable(graph::NodeId u, graph::NodeId v,
                         CostMeter* meter) const;

  /// Uncharged, unchecked closure probe for batch kernels that have
  /// already range-validated the whole batch and charge the meter once.
  bool ReachableUnchecked(graph::NodeId u, graph::NodeId v) const {
    return desc_[static_cast<size_t>(u)].Test(v);
  }

  graph::NodeId num_nodes() const { return n_; }
  int64_t NumReachablePairs() const;
  /// Edges currently maintained (set semantics).
  int64_t NumEdges() const;

  /// Work spent by the last InsertEdge / DeleteEdge (unit ops), for
  /// boundedness plots.
  int64_t last_insert_work() const { return last_insert_work_; }
  int64_t last_delete_work() const { return last_delete_work_; }

  /// Binary image of the maintained closure, fit for a PreparedStore
  /// payload: u64 format tag, u64 n, u64 m, then the n descendant rows and
  /// the n ancestor rows — each row (n+63)/64 little-endian u64 words —
  /// then the m edges packed one u64 each ((u << 32) | v, strictly
  /// increasing). The edge list is what makes deletions maintainable after
  /// a round trip; the rows stay fixed-width, so a probe of bit (u, v) is
  /// plain offset arithmetic — see ReachableInSerialized.
  std::string Serialize() const;
  /// Inverse of Serialize; rejects truncated, size-inconsistent, or
  /// pre-edge-list (v1) images.
  static Result<IncrementalTransitiveClosure> Deserialize(
      std::string_view bytes);
  /// O(1) probe of a Serialize image without rehydrating it: the online
  /// answer step of the engine's incremental-closure witness.
  static Result<bool> ReachableInSerialized(std::string_view bytes,
                                            int64_t u, int64_t v);

 private:
  graph::NodeId n_ = 0;
  std::vector<reach::Bitset> desc_;  // desc_[u]: nodes reachable from u
  std::vector<reach::Bitset> anc_;   // anc_[v]: nodes reaching v
  /// Sorted out-neighbor lists: the maintained edge set. Required by the
  /// decremental side (the fixpoint recompute re-derives affected rows
  /// from surviving edges) and carried through Serialize for it.
  std::vector<std::vector<graph::NodeId>> out_;
  int64_t last_insert_work_ = 0;
  int64_t last_delete_work_ = 0;
};

}  // namespace incremental
}  // namespace pitract

#endif  // PITRACT_INCREMENTAL_INCREMENTAL_TC_H_
