#include "kernel/vertex_cover.h"

#include <algorithm>
#include <map>

namespace pitract {
namespace kernel {

Result<BussKernel> BussKernelize(const graph::Graph& g, int k,
                                 CostMeter* meter) {
  if (g.directed()) {
    return Status::InvalidArgument("vertex cover is defined on undirected graphs");
  }
  if (k < 0) {
    return Status::InvalidArgument("k must be >= 0");
  }
  BussKernel kernel;
  kernel.remaining_k = k;

  // Mutable adjacency (undirected edges stored once per endpoint).
  const graph::NodeId n = g.num_nodes();
  std::vector<std::vector<graph::NodeId>> adj(static_cast<size_t>(n));
  std::vector<int64_t> degree(static_cast<size_t>(n), 0);
  int64_t work = 0;
  for (graph::NodeId u = 0; u < n; ++u) {
    for (graph::NodeId v : g.OutNeighbors(u)) {
      if (u == v) continue;  // a self-loop forces u; treat below
      adj[static_cast<size_t>(u)].push_back(v);
      ++degree[static_cast<size_t>(u)];
      ++work;
    }
  }
  std::vector<bool> removed(static_cast<size_t>(n), false);

  auto remove_vertex = [&](graph::NodeId u) {
    removed[static_cast<size_t>(u)] = true;
    for (graph::NodeId v : adj[static_cast<size_t>(u)]) {
      if (!removed[static_cast<size_t>(v)]) {
        --degree[static_cast<size_t>(v)];
      }
      ++work;
    }
    degree[static_cast<size_t>(u)] = 0;
  };

  // Self-loops force their vertex into the cover.
  for (graph::NodeId u = 0; u < n; ++u) {
    if (g.HasEdge(u, u)) {
      if (kernel.remaining_k == 0) {
        kernel.decided = false;
        if (meter != nullptr) meter->AddSerial(work);
        return kernel;
      }
      remove_vertex(u);
      --kernel.remaining_k;
      ++kernel.forced;
    }
  }

  // High-degree rule to fixpoint.
  bool progress = true;
  while (progress) {
    progress = false;
    for (graph::NodeId u = 0; u < n; ++u) {
      ++work;
      if (removed[static_cast<size_t>(u)]) continue;
      if (degree[static_cast<size_t>(u)] > kernel.remaining_k) {
        if (kernel.remaining_k == 0) {
          kernel.decided = false;
          if (meter != nullptr) meter->AddSerial(work);
          return kernel;
        }
        remove_vertex(u);
        --kernel.remaining_k;
        ++kernel.forced;
        progress = true;
      }
    }
  }

  // Collect surviving edges; apply the edge-count bound.
  std::vector<std::pair<graph::NodeId, graph::NodeId>> survivors;
  for (graph::NodeId u = 0; u < n; ++u) {
    if (removed[static_cast<size_t>(u)]) continue;
    for (graph::NodeId v : adj[static_cast<size_t>(u)]) {
      ++work;
      if (v <= u || removed[static_cast<size_t>(v)]) continue;
      survivors.emplace_back(u, v);
    }
  }
  const int64_t bound = static_cast<int64_t>(kernel.remaining_k) *
                        static_cast<int64_t>(kernel.remaining_k);
  if (static_cast<int64_t>(survivors.size()) > bound) {
    kernel.decided = false;
    if (meter != nullptr) meter->AddSerial(work);
    return kernel;
  }
  if (survivors.empty()) {
    kernel.decided = true;
    if (meter != nullptr) meter->AddSerial(work);
    return kernel;
  }

  // Remap surviving vertices to a compact id space.
  std::map<graph::NodeId, graph::NodeId> remap;
  for (const auto& [u, v] : survivors) {
    remap.try_emplace(u, 0);
    remap.try_emplace(v, 0);
  }
  graph::NodeId next = 0;
  for (auto& [orig, packed] : remap) {
    (void)orig;
    packed = next++;
  }
  kernel.num_kernel_nodes = next;
  kernel.edges.reserve(survivors.size());
  for (const auto& [u, v] : survivors) {
    kernel.edges.emplace_back(remap[u], remap[v]);
    ++work;
  }
  if (meter != nullptr) {
    meter->AddSerial(work);
    meter->AddBytesWritten(static_cast<int64_t>(kernel.edges.size()) * 8);
  }
  return kernel;
}

namespace {

bool SearchRec(std::vector<std::pair<graph::NodeId, graph::NodeId>> edges,
               int k, int64_t* work) {
  ++*work;
  if (edges.empty()) return true;
  if (k == 0) return false;
  auto [u, v] = edges.front();
  // Branch: u in the cover, or v in the cover.
  for (graph::NodeId pick : {u, v}) {
    std::vector<std::pair<graph::NodeId, graph::NodeId>> rest;
    rest.reserve(edges.size());
    for (const auto& e : edges) {
      ++*work;
      if (e.first != pick && e.second != pick) rest.push_back(e);
    }
    if (SearchRec(std::move(rest), k - 1, work)) return true;
  }
  return false;
}

}  // namespace

bool VertexCoverSearch(
    const std::vector<std::pair<graph::NodeId, graph::NodeId>>& edges, int k,
    CostMeter* meter) {
  int64_t work = 0;
  bool answer = SearchRec(edges, k, &work);
  if (meter != nullptr) meter->AddSerial(work);
  return answer;
}

Result<bool> HasVertexCoverKernelized(const graph::Graph& g, int k,
                                      CostMeter* meter) {
  PITRACT_ASSIGN_OR_RETURN(BussKernel kernel, BussKernelize(g, k, meter));
  if (kernel.decided.has_value()) return *kernel.decided;
  return VertexCoverSearch(kernel.edges, kernel.remaining_k, meter);
}

Result<bool> HasVertexCoverDirect(const graph::Graph& g, int k,
                                  CostMeter* meter) {
  if (g.directed()) {
    return Status::InvalidArgument("vertex cover is defined on undirected graphs");
  }
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    for (graph::NodeId v : g.OutNeighbors(u)) {
      if (u == v) {
        edges.emplace_back(u, v);  // self-loop: only u itself covers it
      } else if (u < v) {
        edges.emplace_back(u, v);
      }
    }
  }
  if (meter != nullptr) meter->AddSerial(static_cast<int64_t>(edges.size()));
  return VertexCoverSearch(edges, k, meter);
}

}  // namespace kernel
}  // namespace pitract
