#ifndef PITRACT_KERNEL_VERTEX_COVER_H_
#define PITRACT_KERNEL_VERTEX_COVER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/cost_meter.h"
#include "common/result.h"
#include "graph/graph.h"

namespace pitract {
namespace kernel {

/// Vertex Cover with Buss kernelization (Section 4(9)): VC is NP-complete,
/// but for fixed K its instances "can be preprocessed by Buss'
/// kernelization in O(|E|) time, such that ... it is in O(1) time to decide
/// whether there exists a vertex cover of size K or less" — O(1) meaning
/// independent of |G|, as the kernel size depends on K alone.

/// Result of Buss kernelization.
struct BussKernel {
  /// When set, the rules alone decided the instance.
  std::optional<bool> decided;
  /// Otherwise: the reduced instance. Kernel has <= k*k edges and
  /// <= k*k + k non-isolated vertices.
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
  graph::NodeId num_kernel_nodes = 0;
  int remaining_k = 0;
  /// Vertices forced into the cover by the high-degree rule.
  int forced = 0;
};

/// Applies Buss' rules to (g, k): (1) a vertex of degree > k must be in
/// every size-<=k cover — take it, decrement k; (2) drop isolated vertices;
/// (3) if more than k*k' edges remain, reject. O(|E|) work charged to meter.
Result<BussKernel> BussKernelize(const graph::Graph& g, int k,
                                 CostMeter* meter);

/// Bounded search tree decision on an edge list: is there a cover of size
/// <= k? O(2^k · |E|) — on a kernel, independent of the original |G|.
bool VertexCoverSearch(
    const std::vector<std::pair<graph::NodeId, graph::NodeId>>& edges, int k,
    CostMeter* meter);

/// Full pipeline: kernelize, then search the kernel.
Result<bool> HasVertexCoverKernelized(const graph::Graph& g, int k,
                                      CostMeter* meter);

/// Baseline without kernelization: bounded search tree on the whole graph
/// (cost scales with |G|).
Result<bool> HasVertexCoverDirect(const graph::Graph& g, int k,
                                  CostMeter* meter);

}  // namespace kernel
}  // namespace pitract

#endif  // PITRACT_KERNEL_VERTEX_COVER_H_
