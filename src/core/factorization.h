#ifndef PITRACT_CORE_FACTORIZATION_H_
#define PITRACT_CORE_FACTORIZATION_H_

#include <functional>
#include <string>

#include "common/result.h"

namespace pitract {
namespace core {

/// The paper's Section 3 objects, executable at the Σ*-string level.
///
/// An *instance* of a decision problem is a string x ∈ Σ* (see
/// common/codec.h for the delimiter conventions). A *factorization*
/// Υ = (π₁, π₂, ρ) splits instances into a data part D = π₁(x) and a query
/// part Q = π₂(x), with ρ restoring x = ρ(π₁(x), π₂(x)). All three
/// functions are NC-computable in the paper; here they are required to be
/// cheap per-symbol transformations (every concrete factorization in
/// src/core is a field split or a relabeling).
struct Factorization {
  /// Display name ("Υ_BDS", "Υ_triv", "Υ0", ...).
  std::string name;
  /// π₁: instance -> data part.
  std::function<Result<std::string>(const std::string& x)> pi1;
  /// π₂: instance -> query part.
  std::function<Result<std::string>(const std::string& x)> pi2;
  /// ρ: (data, query) -> instance.
  std::function<Result<std::string>(const std::string& data,
                                    const std::string& query)>
      rho;
};

/// The trivial factorization of Example/Theorem 5's hardness direction:
/// π₁(x) = π₂(x) = x and ρ(x, x) = x. (ρ fails if the halves disagree.)
Factorization TrivialFactorization();

/// The Section 7 separation factorization Υ0: π₁(x) = ε, π₂(x) = x —
/// nothing is exposed for preprocessing.
Factorization EmptyDataFactorization();

/// The dual Υ0′ of Proposition 10: π₁(x) = x, π₂(x) = ε.
Factorization EmptyQueryFactorization();

/// A general "split on the last `query_fields` #-fields" factorization:
/// π₁ keeps the leading fields (data), π₂ the trailing ones (query).
Factorization FieldSplitFactorization(std::string name, int query_fields);

/// Checks the factorization law ρ(π₁(x), π₂(x)) == x on one instance.
Status VerifyFactorization(const Factorization& f, const std::string& x);

}  // namespace core
}  // namespace pitract

#endif  // PITRACT_CORE_FACTORIZATION_H_
