#include <algorithm>
#include <optional>

#include "bds/bds.h"
#include "circuit/generators.h"
#include "common/codec.h"
#include "common/rng.h"
#include "compress/reach_compress.h"
#include "core/problems.h"
#include "core/query_class.h"
#include "graph/algos.h"
#include "graph/generators.h"
#include "index/bptree.h"
#include "index/sorted_column.h"
#include "kernel/vertex_cover.h"
#include "lca/tree_lca.h"
#include "ncsim/ncsim.h"
#include "reach/reachability.h"
#include "rmq/rmq.h"
#include "storage/generator.h"

namespace pitract {
namespace core {
namespace {

constexpr int kQueriesPerCase = 48;

// ---------------------------------------------------------------------------
// Example 1 / Section 4(1): point selection, B+-tree vs. linear scan.
// ---------------------------------------------------------------------------
class PointSelectionCase : public QueryClassCase {
 public:
  std::string name() const override { return "point-selection"; }
  std::string paper_anchor() const override { return "Example 1, S4(1)"; }

  Status Generate(int64_t n, uint64_t seed) override {
    Rng rng(seed);
    storage::RelationGenOptions options;
    options.num_rows = n;
    options.num_columns = 1;
    options.value_range = 2 * n;
    relation_ = storage::GenerateIntRelation(options, &rng);
    queries_.clear();
    for (int i = 0; i < kQueriesPerCase; ++i) {
      // ~half hits, ~half misses.
      if (i % 2 == 0) {
        auto col = relation_.Int64Column(0);
        queries_.push_back(
            (*col)[static_cast<size_t>(rng.NextBelow(static_cast<uint64_t>(n)))]);
      } else {
        queries_.push_back(static_cast<int64_t>(
            rng.NextBelow(static_cast<uint64_t>(2 * n))));
      }
    }
    tree_.reset();
    return Status::OK();
  }

  Status Preprocess(CostMeter* meter) override {
    auto col = relation_.Int64Column(0);
    if (!col.ok()) return col.status();
    std::vector<std::pair<int64_t, int64_t>> entries;
    entries.reserve(col->size());
    for (size_t row = 0; row < col->size(); ++row) {
      entries.emplace_back((*col)[row], static_cast<int64_t>(row));
    }
    std::sort(entries.begin(), entries.end());
    tree_ = std::make_unique<index::BPlusTree>();
    PITRACT_RETURN_IF_ERROR(tree_->BulkLoad(entries));
    if (meter != nullptr) {
      const auto n = static_cast<int64_t>(entries.size());
      meter->AddSerial(n * (ncsim::CeilLog2(n < 1 ? 1 : n) + 1));
      meter->AddBytesWritten(n * 16);
    }
    return Status::OK();
  }

  Result<bool> AnswerPrepared(int qi, CostMeter* meter) const override {
    if (tree_ == nullptr) return Status::FailedPrecondition("not preprocessed");
    return tree_->PointExists(queries_[static_cast<size_t>(qi)], meter);
  }

  Result<bool> AnswerBaseline(int qi, CostMeter* meter) const override {
    return relation_.ScanPointExists(0, queries_[static_cast<size_t>(qi)],
                                     meter);
  }

  int num_queries() const override {
    return static_cast<int>(queries_.size());
  }

 private:
  storage::Relation relation_;
  std::vector<int64_t> queries_;
  std::unique_ptr<index::BPlusTree> tree_;
};

// ---------------------------------------------------------------------------
// Section 4(1): range selection.
// ---------------------------------------------------------------------------
class RangeSelectionCase : public QueryClassCase {
 public:
  std::string name() const override { return "range-selection"; }
  std::string paper_anchor() const override { return "S4(1)"; }

  Status Generate(int64_t n, uint64_t seed) override {
    Rng rng(seed);
    storage::RelationGenOptions options;
    options.num_rows = n;
    options.num_columns = 1;
    options.value_range = 8 * n;  // sparse: many empty ranges
    relation_ = storage::GenerateIntRelation(options, &rng);
    queries_.clear();
    for (int i = 0; i < kQueriesPerCase; ++i) {
      int64_t lo =
          static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(8 * n)));
      queries_.emplace_back(lo, lo + static_cast<int64_t>(rng.NextBelow(4)));
    }
    tree_.reset();
    return Status::OK();
  }

  Status Preprocess(CostMeter* meter) override {
    auto col = relation_.Int64Column(0);
    if (!col.ok()) return col.status();
    std::vector<std::pair<int64_t, int64_t>> entries;
    entries.reserve(col->size());
    for (size_t row = 0; row < col->size(); ++row) {
      entries.emplace_back((*col)[row], static_cast<int64_t>(row));
    }
    std::sort(entries.begin(), entries.end());
    tree_ = std::make_unique<index::BPlusTree>();
    PITRACT_RETURN_IF_ERROR(tree_->BulkLoad(entries));
    if (meter != nullptr) {
      const auto n = static_cast<int64_t>(entries.size());
      meter->AddSerial(n * (ncsim::CeilLog2(n < 1 ? 1 : n) + 1));
    }
    return Status::OK();
  }

  Result<bool> AnswerPrepared(int qi, CostMeter* meter) const override {
    if (tree_ == nullptr) return Status::FailedPrecondition("not preprocessed");
    const auto& [lo, hi] = queries_[static_cast<size_t>(qi)];
    return tree_->RangeExists(lo, hi, meter);
  }

  Result<bool> AnswerBaseline(int qi, CostMeter* meter) const override {
    const auto& [lo, hi] = queries_[static_cast<size_t>(qi)];
    return relation_.ScanRangeExists(0, lo, hi, meter);
  }

  int num_queries() const override {
    return static_cast<int>(queries_.size());
  }

 private:
  storage::Relation relation_;
  std::vector<std::pair<int64_t, int64_t>> queries_;
  std::unique_ptr<index::BPlusTree> tree_;
};

// ---------------------------------------------------------------------------
// Section 4(2): searching in a list.
// ---------------------------------------------------------------------------
class ListMembershipCase : public QueryClassCase {
 public:
  std::string name() const override { return "list-membership"; }
  std::string paper_anchor() const override { return "S4(2)"; }

  Status Generate(int64_t n, uint64_t seed) override {
    Rng rng(seed);
    universe_ = 2 * n;
    list_ = storage::GenerateList(n, 2 * n, &rng);
    queries_.clear();
    for (int i = 0; i < kQueriesPerCase; ++i) {
      if (i % 2 == 0) {
        queries_.push_back(
            list_[static_cast<size_t>(rng.NextBelow(list_.size()))]);
      } else {
        queries_.push_back(
            static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(2 * n))));
      }
    }
    sorted_.reset();
    return Status::OK();
  }

  Status Preprocess(CostMeter* meter) override {
    sorted_ = index::SortedColumn::Build(
        std::span<const int64_t>(list_.data(), list_.size()), meter);
    return Status::OK();
  }

  Result<bool> AnswerPrepared(int qi, CostMeter* meter) const override {
    if (!sorted_.has_value()) {
      return Status::FailedPrecondition("not preprocessed");
    }
    return sorted_->Contains(queries_[static_cast<size_t>(qi)], meter);
  }

  Result<bool> AnswerBaseline(int qi, CostMeter* meter) const override {
    const int64_t target = queries_[static_cast<size_t>(qi)];
    int64_t scanned = 0;
    bool found = false;
    for (int64_t v : list_) {
      ++scanned;
      if (v == target) {
        found = true;
        break;
      }
    }
    if (meter != nullptr) {
      meter->AddSerial(scanned);
      meter->AddBytesRead(scanned * 8);
    }
    return found;
  }

  int num_queries() const override {
    return static_cast<int>(queries_.size());
  }

  Result<std::string> SigmaDataPart() const override {
    return MemberFactorization().pi1(MakeMemberInstance(universe_, list_, 0));
  }
  Result<std::string> SigmaQuery(int qi) const override {
    return std::to_string(queries_[static_cast<size_t>(qi)]);
  }

 private:
  int64_t universe_ = 0;
  std::vector<int64_t> list_;
  std::vector<int64_t> queries_;
  std::optional<index::SortedColumn> sorted_;
};

// ---------------------------------------------------------------------------
// Example 3: reachability, TC matrix vs. per-query BFS.
// ---------------------------------------------------------------------------
class ReachabilityCase : public QueryClassCase {
 public:
  std::string name() const override { return "graph-reachability"; }
  std::string paper_anchor() const override { return "Example 3 (GAP)"; }

  Status Generate(int64_t n, uint64_t seed) override {
    Rng rng(seed);
    g_ = graph::ErdosRenyi(static_cast<graph::NodeId>(n), 4 * n,
                           /*directed=*/true, &rng);
    queries_.clear();
    for (int i = 0; i < kQueriesPerCase; ++i) {
      queries_.emplace_back(
          static_cast<graph::NodeId>(rng.NextBelow(static_cast<uint64_t>(n))),
          static_cast<graph::NodeId>(rng.NextBelow(static_cast<uint64_t>(n))));
    }
    matrix_.reset();
    return Status::OK();
  }

  Status Preprocess(CostMeter* meter) override {
    matrix_ = reach::ReachabilityMatrix::Build(g_, meter);
    return Status::OK();
  }

  Result<bool> AnswerPrepared(int qi, CostMeter* meter) const override {
    if (!matrix_.has_value()) {
      return Status::FailedPrecondition("not preprocessed");
    }
    const auto& [s, t] = queries_[static_cast<size_t>(qi)];
    return matrix_->Reachable(s, t, meter);
  }

  Result<bool> AnswerBaseline(int qi, CostMeter* meter) const override {
    const auto& [s, t] = queries_[static_cast<size_t>(qi)];
    return graph::BfsReachable(g_, s, t, meter);
  }

  int num_queries() const override {
    return static_cast<int>(queries_.size());
  }

  Result<std::string> SigmaDataPart() const override {
    return ReachFactorization().pi1(MakeReachInstance(g_, 0, 0));
  }
  Result<std::string> SigmaQuery(int qi) const override {
    const auto& [s, t] = queries_[static_cast<size_t>(qi)];
    return codec::EncodeFields({std::to_string(s), std::to_string(t)});
  }

 private:
  graph::Graph g_;
  std::vector<std::pair<graph::NodeId, graph::NodeId>> queries_;
  std::optional<reach::ReachabilityMatrix> matrix_;
};

// ---------------------------------------------------------------------------
// Section 4(3): RMQ threshold decision ("is min(A[i..j]) <= c?").
// ---------------------------------------------------------------------------
class RmqThresholdCase : public QueryClassCase {
 public:
  std::string name() const override { return "range-minimum"; }
  std::string paper_anchor() const override { return "S4(3) [18]"; }

  Status Generate(int64_t n, uint64_t seed) override {
    Rng rng(seed);
    values_.resize(static_cast<size_t>(n));
    for (auto& v : values_) {
      v = static_cast<int64_t>(rng.NextBelow(1 << 20));
    }
    queries_.clear();
    for (int i = 0; i < kQueriesPerCase; ++i) {
      int64_t a = static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(n)));
      int64_t b = static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(n)));
      if (a > b) std::swap(a, b);
      queries_.push_back({a, b, static_cast<int64_t>(rng.NextBelow(1 << 20))});
    }
    block_rmq_.reset();
    return Status::OK();
  }

  Status Preprocess(CostMeter* meter) override {
    block_rmq_ = rmq::BlockRmq::Build(values_, meter);
    return Status::OK();
  }

  Result<bool> AnswerPrepared(int qi, CostMeter* meter) const override {
    if (!block_rmq_.has_value()) {
      return Status::FailedPrecondition("not preprocessed");
    }
    const auto& q = queries_[static_cast<size_t>(qi)];
    PITRACT_ASSIGN_OR_RETURN(int64_t pos, block_rmq_->Query(q.lo, q.hi, meter));
    return values_[static_cast<size_t>(pos)] <= q.threshold;
  }

  Result<bool> AnswerBaseline(int qi, CostMeter* meter) const override {
    const auto& q = queries_[static_cast<size_t>(qi)];
    rmq::NaiveRmq naive(values_);
    PITRACT_ASSIGN_OR_RETURN(int64_t pos, naive.Query(q.lo, q.hi, meter));
    return values_[static_cast<size_t>(pos)] <= q.threshold;
  }

  int num_queries() const override {
    return static_cast<int>(queries_.size());
  }

 private:
  struct RmqQuery {
    int64_t lo;
    int64_t hi;
    int64_t threshold;
  };
  std::vector<int64_t> values_;
  std::vector<RmqQuery> queries_;
  std::optional<rmq::BlockRmq> block_rmq_;
};

// ---------------------------------------------------------------------------
// Section 4(4): tree LCA decision ("is LCA(u, v) = w?") on a deep tree.
// ---------------------------------------------------------------------------
class TreeLcaCase : public QueryClassCase {
 public:
  std::string name() const override { return "tree-lca"; }
  std::string paper_anchor() const override { return "S4(4) [5]"; }

  Status Generate(int64_t n, uint64_t seed) override {
    Rng rng(seed);
    // Mostly-path tree: depth Θ(n), so the naive upward walk is Θ(n) and
    // the contrast with the O(1) Euler-tour oracle is visible.
    parent_.assign(static_cast<size_t>(n), -1);
    for (int64_t i = 1; i < n; ++i) {
      parent_[static_cast<size_t>(i)] =
          rng.NextBool(0.9)
              ? static_cast<graph::NodeId>(i - 1)
              : static_cast<graph::NodeId>(rng.NextBelow(static_cast<uint64_t>(i)));
    }
    auto naive = lca::NaiveTreeLca::Build(parent_);
    if (!naive.ok()) return naive.status();
    naive_ = std::move(naive).value();
    queries_.clear();
    for (int i = 0; i < kQueriesPerCase; ++i) {
      auto u = static_cast<graph::NodeId>(rng.NextBelow(static_cast<uint64_t>(n)));
      auto v = static_cast<graph::NodeId>(rng.NextBelow(static_cast<uint64_t>(n)));
      auto w = naive_->Query(u, v, nullptr);
      if (!w.ok()) return w.status();
      // Half the queries ask the true LCA, half a perturbed node.
      graph::NodeId claim = *w;
      if (i % 2 == 1) {
        claim = static_cast<graph::NodeId>(rng.NextBelow(static_cast<uint64_t>(n)));
      }
      queries_.push_back({u, v, claim});
    }
    euler_.reset();
    return Status::OK();
  }

  Status Preprocess(CostMeter* meter) override {
    auto built = lca::EulerTourLca::Build(parent_, meter);
    if (!built.ok()) return built.status();
    euler_ = std::move(built).value();
    return Status::OK();
  }

  Result<bool> AnswerPrepared(int qi, CostMeter* meter) const override {
    if (!euler_.has_value()) {
      return Status::FailedPrecondition("not preprocessed");
    }
    const auto& q = queries_[static_cast<size_t>(qi)];
    PITRACT_ASSIGN_OR_RETURN(graph::NodeId w, euler_->Query(q.u, q.v, meter));
    return w == q.claim;
  }

  Result<bool> AnswerBaseline(int qi, CostMeter* meter) const override {
    const auto& q = queries_[static_cast<size_t>(qi)];
    PITRACT_ASSIGN_OR_RETURN(graph::NodeId w, naive_->Query(q.u, q.v, meter));
    return w == q.claim;
  }

  int num_queries() const override {
    return static_cast<int>(queries_.size());
  }

 private:
  struct LcaQuery {
    graph::NodeId u;
    graph::NodeId v;
    graph::NodeId claim;
  };
  std::vector<graph::NodeId> parent_;
  std::optional<lca::NaiveTreeLca> naive_;
  std::optional<lca::EulerTourLca> euler_;
  std::vector<LcaQuery> queries_;
};

// ---------------------------------------------------------------------------
// Examples 2/5: BDS order queries.
// ---------------------------------------------------------------------------
class BdsCase : public QueryClassCase {
 public:
  std::string name() const override { return "breadth-depth-search"; }
  std::string paper_anchor() const override { return "Examples 2/5, S6"; }

  Status Generate(int64_t n, uint64_t seed) override {
    Rng rng(seed);
    g_ = graph::ErdosRenyi(static_cast<graph::NodeId>(n), 3 * n,
                           /*directed=*/false, &rng);
    queries_.clear();
    for (int i = 0; i < kQueriesPerCase; ++i) {
      queries_.emplace_back(
          static_cast<graph::NodeId>(rng.NextBelow(static_cast<uint64_t>(n))),
          static_cast<graph::NodeId>(rng.NextBelow(static_cast<uint64_t>(n))));
    }
    oracle_.reset();
    return Status::OK();
  }

  Status Preprocess(CostMeter* meter) override {
    oracle_ = bds::BdsOracle::Build(g_, meter);
    oracle_->set_charge_binary_search(true);  // the paper's O(log |M|) mode
    return Status::OK();
  }

  Result<bool> AnswerPrepared(int qi, CostMeter* meter) const override {
    if (!oracle_.has_value()) {
      return Status::FailedPrecondition("not preprocessed");
    }
    const auto& [u, v] = queries_[static_cast<size_t>(qi)];
    return oracle_->VisitedBefore(u, v, meter);
  }

  Result<bool> AnswerBaseline(int qi, CostMeter* meter) const override {
    const auto& [u, v] = queries_[static_cast<size_t>(qi)];
    return bds::BdsVisitedBeforeOnline(g_, u, v, meter);
  }

  int num_queries() const override {
    return static_cast<int>(queries_.size());
  }

  Result<std::string> SigmaDataPart() const override {
    return BdsFactorization().pi1(MakeBdsInstance(g_, 0, 0));
  }
  Result<std::string> SigmaQuery(int qi) const override {
    const auto& [u, v] = queries_[static_cast<size_t>(qi)];
    return codec::EncodeFields({std::to_string(u), std::to_string(v)});
  }

 private:
  graph::Graph g_;
  std::vector<std::pair<graph::NodeId, graph::NodeId>> queries_;
  std::optional<bds::BdsOracle> oracle_;
};

// ---------------------------------------------------------------------------
// Section 4(8) + Theorem 9: CVP under the two factorizations.
// ---------------------------------------------------------------------------
class GateValueCase : public QueryClassCase {
 public:
  std::string name() const override { return "cvp-refactorized"; }
  std::string paper_anchor() const override { return "S4(8), S6"; }

  Status Generate(int64_t n, uint64_t seed) override {
    Rng rng(seed);
    circuit::CircuitGenOptions options;
    options.num_inputs = 8;
    options.num_gates = static_cast<int32_t>(n);
    options.deep = true;  // depth Θ(n): sequential evaluation is unavoidable
    instance_ = circuit::RandomCvpInstance(options, &rng);
    queries_.clear();
    for (int i = 0; i < kQueriesPerCase; ++i) {
      queries_.push_back(static_cast<circuit::GateId>(
          rng.NextBelow(static_cast<uint64_t>(instance_.circuit.num_gates()))));
    }
    values_.reset();
    return Status::OK();
  }

  Status Preprocess(CostMeter* meter) override {
    auto values = instance_.circuit.EvaluateAll(instance_.assignment, meter);
    if (!values.ok()) return values.status();
    values_ = std::move(values).value();
    return Status::OK();
  }

  Result<bool> AnswerPrepared(int qi, CostMeter* meter) const override {
    if (!values_.has_value()) {
      return Status::FailedPrecondition("not preprocessed");
    }
    if (meter != nullptr) {
      meter->AddSerial(1);
      meter->AddBytesRead(1);
    }
    return (*values_)[static_cast<size_t>(queries_[static_cast<size_t>(qi)])] !=
           0;
  }

  Result<bool> AnswerBaseline(int qi, CostMeter* meter) const override {
    // Y0-style: evaluate the whole circuit for every query.
    auto values = instance_.circuit.EvaluateAll(instance_.assignment, meter);
    if (!values.ok()) return values.status();
    return (*values)[static_cast<size_t>(queries_[static_cast<size_t>(qi)])] !=
           0;
  }

  int num_queries() const override {
    return static_cast<int>(queries_.size());
  }

  Result<std::string> SigmaDataPart() const override {
    return GvpFactorization().pi1(MakeGvpInstance(instance_, 0));
  }
  Result<std::string> SigmaQuery(int qi) const override {
    return std::to_string(queries_[static_cast<size_t>(qi)]);
  }

 private:
  circuit::CvpInstance instance_;
  std::vector<circuit::GateId> queries_;
  std::optional<std::vector<char>> values_;
};

// ---------------------------------------------------------------------------
// Section 4(5): compressed reachability.
// ---------------------------------------------------------------------------
class CompressedReachCase : public QueryClassCase {
 public:
  std::string name() const override { return "compressed-reachability"; }
  std::string paper_anchor() const override { return "S4(5) [16]"; }

  Status Generate(int64_t n, uint64_t seed) override {
    Rng rng(seed);
    g_ = graph::ErdosRenyi(static_cast<graph::NodeId>(n), 2 * n,
                           /*directed=*/true, &rng);
    queries_.clear();
    for (int i = 0; i < kQueriesPerCase; ++i) {
      queries_.emplace_back(
          static_cast<graph::NodeId>(rng.NextBelow(static_cast<uint64_t>(n))),
          static_cast<graph::NodeId>(rng.NextBelow(static_cast<uint64_t>(n))));
    }
    compressed_.reset();
    return Status::OK();
  }

  Status Preprocess(CostMeter* meter) override {
    compressed_ = compress::ReachCompressed::Build(g_, meter);
    return Status::OK();
  }

  Result<bool> AnswerPrepared(int qi, CostMeter* meter) const override {
    if (!compressed_.has_value()) {
      return Status::FailedPrecondition("not preprocessed");
    }
    const auto& [s, t] = queries_[static_cast<size_t>(qi)];
    return compressed_->Reachable(s, t, meter);
  }

  Result<bool> AnswerBaseline(int qi, CostMeter* meter) const override {
    const auto& [s, t] = queries_[static_cast<size_t>(qi)];
    return graph::BfsReachable(g_, s, t, meter);
  }

  int num_queries() const override {
    return static_cast<int>(queries_.size());
  }

 private:
  graph::Graph g_;
  std::vector<std::pair<graph::NodeId, graph::NodeId>> queries_;
  std::optional<compress::ReachCompressed> compressed_;
};

// ---------------------------------------------------------------------------
// Section 4(9): vertex cover with fixed K, kernelized vs. direct.
// ---------------------------------------------------------------------------
class VertexCoverCase : public QueryClassCase {
 public:
  std::string name() const override { return "vertex-cover-k"; }
  std::string paper_anchor() const override { return "S4(9) [19,20]"; }

  Status Generate(int64_t n, uint64_t seed) override {
    Rng rng(seed);
    // Sparse graph plus a small planted cover keeps instances nontrivial.
    g_ = graph::ErdosRenyi(static_cast<graph::NodeId>(n), n / 2,
                           /*directed=*/false, &rng);
    kernel_.reset();
    return Status::OK();
  }

  Status Preprocess(CostMeter* meter) override {
    auto kernel = kernel::BussKernelize(g_, kK, meter);
    if (!kernel.ok()) return kernel.status();
    kernel_ = std::move(kernel).value();
    return Status::OK();
  }

  Result<bool> AnswerPrepared(int /*qi*/, CostMeter* meter) const override {
    if (!kernel_.has_value()) {
      return Status::FailedPrecondition("not preprocessed");
    }
    if (kernel_->decided.has_value()) {
      if (meter != nullptr) meter->AddSerial(1);
      return *kernel_->decided;
    }
    return kernel::VertexCoverSearch(kernel_->edges, kernel_->remaining_k,
                                     meter);
  }

  Result<bool> AnswerBaseline(int /*qi*/, CostMeter* meter) const override {
    return kernel::HasVertexCoverDirect(g_, kK, meter);
  }

  int num_queries() const override { return 1; }

 private:
  static constexpr int kK = 8;
  graph::Graph g_;
  std::optional<kernel::BussKernel> kernel_;
};

struct CaseFactory {
  const char* name;
  std::unique_ptr<QueryClassCase> (*make)();
};

template <typename Case>
std::unique_ptr<QueryClassCase> Make() {
  return std::make_unique<Case>();
}

// Names must match each case's name() — core_cases_test covers the set.
constexpr CaseFactory kCaseFactories[] = {
    {"point-selection", Make<PointSelectionCase>},
    {"range-selection", Make<RangeSelectionCase>},
    {"list-membership", Make<ListMembershipCase>},
    {"graph-reachability", Make<ReachabilityCase>},
    {"range-minimum", Make<RmqThresholdCase>},
    {"tree-lca", Make<TreeLcaCase>},
    {"breadth-depth-search", Make<BdsCase>},
    {"cvp-refactorized", Make<GateValueCase>},
    {"compressed-reachability", Make<CompressedReachCase>},
    {"vertex-cover-k", Make<VertexCoverCase>},
};

}  // namespace

std::vector<std::unique_ptr<QueryClassCase>> MakeAllCases() {
  std::vector<std::unique_ptr<QueryClassCase>> cases;
  for (const auto& factory : kCaseFactories) {
    cases.push_back(factory.make());
  }
  return cases;
}

std::unique_ptr<QueryClassCase> MakeCaseByName(std::string_view name) {
  for (const auto& factory : kCaseFactories) {
    if (name == factory.name) return factory.make();
  }
  return nullptr;
}

}  // namespace core
}  // namespace pitract
