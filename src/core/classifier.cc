#include "core/classifier.h"

#include <cmath>
#include <sstream>

namespace pitract {
namespace core {

double LogLogSlope(const std::vector<std::pair<double, double>>& xy) {
  if (xy.size() < 2) return 0.0;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  double n = 0;
  for (const auto& [x, y] : xy) {
    if (x <= 0) continue;
    const double lx = std::log(x);
    const double ly = std::log(y < 1 ? 1 : y);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    n += 1;
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0) return 0.0;
  return (n * sxy - sx * sy) / denom;
}

Result<Classification> Classify(QueryClassCase* query_class,
                                const std::vector<int64_t>& sizes,
                                uint64_t seed) {
  Classification c;
  c.name = query_class->name();
  c.paper_anchor = query_class->paper_anchor();
  for (int64_t n : sizes) {
    PITRACT_RETURN_IF_ERROR(query_class->Generate(n, seed));
    CostMeter pre;
    PITRACT_RETURN_IF_ERROR(query_class->Preprocess(&pre));
    SweepPoint point;
    point.n = n;
    point.preprocess_work = pre.work();
    double prepared_total = 0;
    double baseline_total = 0;
    const int queries = query_class->num_queries();
    for (int qi = 0; qi < queries; ++qi) {
      CostMeter prepared_meter;
      auto a = query_class->AnswerPrepared(qi, &prepared_meter);
      if (!a.ok()) return a.status();
      CostMeter baseline_meter;
      auto b = query_class->AnswerBaseline(qi, &baseline_meter);
      if (!b.ok()) return b.status();
      if (*a != *b) {
        return Status::Internal(
            c.name + ": prepared and baseline answers disagree at n=" +
            std::to_string(n) + " qi=" + std::to_string(qi));
      }
      prepared_total += static_cast<double>(prepared_meter.depth());
      baseline_total += static_cast<double>(baseline_meter.depth());
    }
    point.prepared_depth = prepared_total / queries;
    point.baseline_depth = baseline_total / queries;
    c.points.push_back(point);
  }

  std::vector<std::pair<double, double>> pre_xy;
  std::vector<std::pair<double, double>> prep_xy;
  std::vector<std::pair<double, double>> base_xy;
  for (const auto& p : c.points) {
    pre_xy.emplace_back(static_cast<double>(p.n),
                        static_cast<double>(p.preprocess_work));
    prep_xy.emplace_back(static_cast<double>(p.n), p.prepared_depth);
    base_xy.emplace_back(static_cast<double>(p.n), p.baseline_depth);
  }
  c.preprocess_degree = LogLogSlope(pre_xy);
  c.prepared_slope = LogLogSlope(prep_xy);
  c.baseline_slope = LogLogSlope(base_xy);
  c.prepared_polylog = c.prepared_slope < kPolylogSlopeThreshold;
  c.baseline_polylog = c.baseline_slope < kPolylogSlopeThreshold;
  // "PTIME" preprocessing: any fixed polynomial degree qualifies; flag only
  // blatantly super-polynomial growth (degree > 6 would mean the fit broke).
  c.pi_tractable = c.prepared_polylog && c.preprocess_degree < 6.0;
  return c;
}

std::string LandscapeReport(const std::vector<Classification>& rows) {
  std::ostringstream os;
  os << "Figure 2 landscape (empirical): NC <= PiT0Q <= P\n";
  os << "----------------------------------------------------------------------------------------------\n";
  char line[256];
  std::snprintf(line, sizeof(line), "%-26s %-18s %10s %10s %10s  %s\n",
                "query class", "paper", "pre-deg", "ans-slope", "base-slope",
                "verdict");
  os << line;
  os << "----------------------------------------------------------------------------------------------\n";
  for (const auto& c : rows) {
    std::snprintf(line, sizeof(line), "%-26s %-18s %10.2f %10.3f %10.3f  %s\n",
                  c.name.c_str(), c.paper_anchor.c_str(), c.preprocess_degree,
                  c.prepared_slope, c.baseline_slope,
                  c.pi_tractable
                      ? "in PiT0Q (polylog after PTIME preprocessing)"
                      : "NOT PiT0Q under this factorization");
    os << line;
  }
  return os.str();
}

}  // namespace core
}  // namespace pitract
