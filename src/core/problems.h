#ifndef PITRACT_CORE_PROBLEMS_H_
#define PITRACT_CORE_PROBLEMS_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "circuit/circuit.h"
#include "core/language.h"
#include "core/reduction.h"
#include "graph/graph.h"

namespace pitract {
namespace core {

/// Concrete Σ*-level decision problems, their canonical factorizations,
/// Π-tractability witnesses, and the reduction chain of Sections 5–6.
///
/// Instance encodings (fields joined per common/codec.h):
///   L_member : [U, M, e]          — does e appear in list M (values < U)?
///   L_conn   : [G, s, t]          — are s, t connected in undirected G?
///   L_bds    : [G, u, v]          — is u visited before v in the BDS of G?
///   L_cvp    : [circuit, bits]    — does the circuit output true on bits?
///   L_gvp    : [circuit, bits, g] — does gate g evaluate to true? (the
///                                   "gate value" generalization of CVP whose
///                                   data-carrying factorization makes CVP
///                                   Π-tractable, mirroring Example 5)

// --- problems -------------------------------------------------------------

DecisionProblem ListMembershipProblem();
DecisionProblem ConnectivityProblem();
DecisionProblem BdsProblem();
DecisionProblem CvpProblem();
DecisionProblem GateValueProblem();
/// L_reach: instances [G, s, t] — does directed G have a path s ⇝ t
/// (reflexively)? The Σ*-level twin of the Example 3 typed case.
DecisionProblem ReachabilityProblem();

// --- query decoding --------------------------------------------------------

/// Parses the ubiquitous "a#b" two-int query shape through the zero-copy
/// codec::DecodeFieldsView fast path (numeric queries are escape-free), so
/// the hot answer lambdas never copy query fields; escaped encodings fall
/// back to the copying DecodeFields. `what` names the query in errors.
Result<std::pair<int64_t, int64_t>> DecodeIntPairQuery(std::string_view query,
                                                       std::string_view what);

// --- instance builders ----------------------------------------------------

std::string MakeMemberInstance(int64_t universe,
                               const std::vector<int64_t>& list, int64_t e);
std::string MakeConnInstance(const graph::Graph& g, graph::NodeId s,
                             graph::NodeId t);
std::string MakeBdsInstance(const graph::Graph& g, graph::NodeId u,
                            graph::NodeId v);
std::string MakeReachInstance(const graph::Graph& g, graph::NodeId s,
                              graph::NodeId t);
std::string MakeCvpInstanceString(const circuit::CvpInstance& instance);
std::string MakeGvpInstance(const circuit::CvpInstance& instance,
                            circuit::GateId gate);

// --- canonical factorizations ----------------------------------------------

/// Υ_member: data = (U, M), query = e.
Factorization MemberFactorization();
/// Υ_conn: data = G, query = (s, t).
Factorization ConnFactorization();
/// Υ_BDS of Example 4: data = G, query = (u, v).
Factorization BdsFactorization();
/// Υ_reach: data = G, query = (s, t).
Factorization ReachFactorization();
/// data = circuit, query = assignment (used by the CVP F-reductions).
Factorization CvpCircuitDataFactorization();
/// Υ for GVP: data = (circuit, bits), query = gate id.
Factorization GvpFactorization();

// --- Π-tractability witnesses (Definition 1) --------------------------------

/// Sort M once; binary-search membership (Section 4(2)).
PiWitness MemberWitness();
/// Precompute connected components; O(1) label comparison.
PiWitness ConnWitness();
/// Example 5: Π(G) = the BDS visit order M; answer via searches on M.
PiWitness BdsWitness();
/// Evaluate all gates once; O(1) gate-value probe (Section 4(8)).
PiWitness GvpWitness();
/// The Section 7 non-witness: under Υ0 the data part is ε, so Π has
/// nothing to preprocess and `answer` must evaluate the whole circuit per
/// query — correct, but with depth Θ(circuit depth), i.e. *not* NC for deep
/// circuits. Theorem 9's separation, executable.
PiWitness CvpEmptyDataWitness();

// --- the reduction chain of Sections 5–6 -----------------------------------

/// L_member ≤NC_fa L_conn with honestly split parts: α maps the list to a
/// star graph (data only), β maps the element to a node pair (query only).
NcFactorReduction MemberToConnReduction();

/// L_conn ≤NC_fa L_bds in the shape of Theorem 5's hardness proof: the
/// source side uses the *trivial* factorization (π₁ = π₂ = identity), and
/// α/β renumber the graph so the source node is 0 and a fresh isolated
/// witness node is 1 — connectivity(s, t) iff t is BDS-visited before the
/// witness node.
NcFactorReduction ConnToBdsReduction();

// --- the λ-rewriting setting (remark under Definition 1) --------------------

/// L_sel: instances [U, M, predicate] — does any m ∈ M satisfy the
/// predicate? Predicates are one comma-encoded field "op,a(,b)" with
/// op ∈ {0: =a, 1: <=a, 2: >=a, 3: between a b}.
DecisionProblem PredicateSelectionProblem();
std::string MakeSelectionInstance(int64_t universe,
                                  const std::vector<int64_t>& list,
                                  const std::vector<int64_t>& predicate);
/// data = (U, M), query = predicate.
Factorization SelectionFactorization();
/// λ: normalizes every predicate to a closed interval "lo,hi".
QueryRewriter IntervalNormalizingRewriter();
/// Base witness over rewritten queries: sorted list + binary searches for
/// interval emptiness. Compose with the rewriter via ApplyRewriting to get
/// the revised-Definition-1 witness for L_sel.
PiWitness IntervalWitness();

// --- F-reductions (Section 7) ------------------------------------------------

/// CVP ≤NC_F NAND-CVP: gate-local rewrite on the data part only.
FReduction CvpToNandFReduction();
/// CVP ≤NC_F monotone CVP: double-rail rewrite; β doubles the assignment.
FReduction CvpToMonotoneFReduction();

}  // namespace core
}  // namespace pitract

#endif  // PITRACT_CORE_PROBLEMS_H_
