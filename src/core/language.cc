#include "core/language.h"

namespace pitract {
namespace core {

Status VerifyWitnessOnInstance(const LanguageOfPairs& s, const PiWitness& w,
                               const std::string& x) {
  auto expected = s.problem().contains(x);
  if (!expected.ok()) return expected.status();
  auto data = s.factorization().pi1(x);
  if (!data.ok()) return data.status();
  auto query = s.factorization().pi2(x);
  if (!query.ok()) return query.status();
  CostMeter meter;
  auto prepared = w.preprocess(*data, &meter);
  if (!prepared.ok()) return prepared.status();
  auto actual = w.answer(*prepared, *query, &meter);
  if (!actual.ok()) return actual.status();
  if (*actual != *expected) {
    return Status::Internal("witness disagrees with reference semantics on '" +
                            x + "'");
  }
  return Status::OK();
}

PiWitness ApplyRewriting(const QueryRewriter& rewriter,
                         const PiWitness& base) {
  PiWitness w;
  w.name = base.name + " with " + rewriter.name;
  w.preprocess = base.preprocess;
  auto lambda = rewriter.lambda;
  auto answer = base.answer;
  w.answer = [lambda, answer](const std::string& prepared,
                              const std::string& query, CostMeter* meter) {
    auto rewritten = lambda(query);
    if (!rewritten.ok()) return Result<bool>(rewritten.status());
    return answer(prepared, *rewritten, meter);
  };
  // The decoded view is a property of Π(D) alone, so it survives query
  // rewriting unchanged; only the view answerer maps through λ.
  if (base.has_view()) {
    w.deserialize = base.deserialize;
    auto answer_view = base.answer_view;
    w.answer_view = [lambda, answer_view](const void* view,
                                          const std::string& query,
                                          CostMeter* meter) {
      auto rewritten = lambda(query);
      if (!rewritten.ok()) return Result<bool>(rewritten.status());
      return answer_view(view, *rewritten, meter);
    };
  }
  // The batch layer composes on the decode hook alone: pre-decoding maps
  // the query through λ once per batch, after which the base kernel and
  // decoded-scalar answerers apply verbatim (they only see numeric forms).
  if (base.decode_query) {
    auto base_decode = base.decode_query;
    w.decode_query = [lambda, base_decode](const std::string& query,
                                           DecodedQuery* out,
                                           std::vector<int64_t>* scratch) {
      auto rewritten = lambda(query);
      if (!rewritten.ok()) return rewritten.status();
      return base_decode(*rewritten, out, scratch);
    };
    w.answer_view_decoded = base.answer_view_decoded;
    w.answer_view_batch = base.answer_view_batch;
  }
  return w;
}

}  // namespace core
}  // namespace pitract
