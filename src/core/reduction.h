#ifndef PITRACT_CORE_REDUCTION_H_
#define PITRACT_CORE_REDUCTION_H_

#include <functional>
#include <string>

#include "core/language.h"

namespace pitract {
namespace core {

/// An NC-factor reduction L1 ≤NC_fa L2 (Definition 4): factorizations Υ1 of
/// L1 and Υ2 of L2 plus NC maps α (data part) and β (query part) with
///   ⟨D, Q⟩ ∈ S(L1, Υ1)  ⟺  ⟨α(D), β(Q)⟩ ∈ S(L2, Υ2).
struct NcFactorReduction {
  std::string name;
  Factorization source_factorization;  // Υ1
  Factorization target_factorization;  // Υ2
  std::function<Result<std::string>(const std::string& data)> alpha;
  std::function<Result<std::string>(const std::string& query)> beta;
};

/// An F-reduction S1 ≤NC_F S2 (Definition 7): maps on fixed languages of
/// pairs, *no* re-factorization involved.
struct FReduction {
  std::string name;
  std::function<Result<std::string>(const std::string& data)> alpha;
  std::function<Result<std::string>(const std::string& query)> beta;
};

/// Lemma 2, executable: composes L1 ≤NC_fa L2 and L2 ≤NC_fa L3 into
/// L1 ≤NC_fa L3 via the proof's padding construction — the composed
/// reduction re-factorizes L1 with σ(x) = π₁(x) @ π₂(x) on *both* sides
/// (the '@' is the reserved padding symbol of common/codec.h), so that the
/// composed α/β can reassemble the intermediate L2 instance from either
/// part alone.
NcFactorReduction Compose(const NcFactorReduction& r12,
                          const NcFactorReduction& r23);

/// F-reduction transitivity (first half of Lemma 8): plain composition.
FReduction ComposeF(const FReduction& r12, const FReduction& r23);

/// Lemma 3, executable: transports a Π-tractability witness for
/// S(L2, Υ2) backwards across L1 ≤NC_fa L2, yielding the witness for L1
/// with Π′ = Π ∘ α and S″-membership (D′, Q) ↦ answer(D′, β(Q)). The same
/// construction proves the ΠT⁰Q-compatibility half of Lemma 8 when applied
/// to an F-reduction.
PiWitness Transport(const NcFactorReduction& r, const PiWitness& w2);
PiWitness TransportF(const FReduction& r, const PiWitness& w2);

/// Definition 4 check on one instance x of L1 (sound by Proposition 1):
///   l1.contains(x) must equal S(L2,Υ2).Contains(α(π₁(x)), β(π₂(x))).
Status VerifyReductionOnInstance(const DecisionProblem& l1,
                                 const NcFactorReduction& r,
                                 const DecisionProblem& l2,
                                 const std::string& x);

/// Definition 7 check for F-reductions on a source pair.
Status VerifyFReductionOnPair(const LanguageOfPairs& s1, const FReduction& r,
                              const LanguageOfPairs& s2,
                              const std::string& data,
                              const std::string& query);

}  // namespace core
}  // namespace pitract

#endif  // PITRACT_CORE_REDUCTION_H_
