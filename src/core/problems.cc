#include "core/problems.h"

#include <algorithm>
#include <limits>
#include <memory>

#include "bds/bds.h"
#include "circuit/transforms.h"
#include "common/codec.h"
#include "graph/algos.h"
#include "ncsim/ncsim.h"

namespace pitract {
namespace core {

namespace {

/// Decodes a single int64 field.
Result<int64_t> DecodeInt(const std::string& field) {
  return codec::DecodeSingleInt(field);
}

Result<std::vector<std::string>> DecodeExactly(const std::string& x,
                                               size_t n,
                                               const std::string& what) {
  return codec::DecodeFieldsExactly(x, n, what);
}

/// Shared deserialize hook for the int-list-shaped Π payloads (sorted
/// column, component labels, BDS ranks): one typed vector, decoded once
/// per store entry instead of once per query.
Result<PiViewPtr> DeserializeIntListView(
    const std::shared_ptr<const std::string>& prepared, CostMeter*) {
  auto view = std::make_shared<std::vector<int64_t>>();
  PITRACT_RETURN_IF_ERROR(codec::DecodeIntsInto(*prepared, view.get()));
  return PiViewPtr(std::move(view));
}

const std::vector<int64_t>& IntListViewOf(const void* view) {
  return *static_cast<const std::vector<int64_t>*>(view);
}

Result<std::pair<int64_t, int64_t>> DecodeIntPair(std::string_view first,
                                                  std::string_view second) {
  auto a = codec::DecodeSingleInt(first);
  if (!a.ok()) return a.status();
  auto b = codec::DecodeSingleInt(second);
  if (!b.ok()) return b.status();
  return std::make_pair(*a, *b);
}

}  // namespace

Result<std::pair<int64_t, int64_t>> DecodeIntPairQuery(std::string_view query,
                                                       std::string_view what) {
  if (auto views = codec::DecodeFieldsView(query)) {
    // Escape-free common case: two string_view slices, zero copies.
    if (views->size() != 2) {
      return Status::InvalidArgument(std::string(what) +
                                     " expects 2 fields, got " +
                                     std::to_string(views->size()));
    }
    return DecodeIntPair((*views)[0], (*views)[1]);
  }
  auto fields = codec::DecodeFieldsExactly(query, 2, what);
  if (!fields.ok()) return fields.status();
  return DecodeIntPair((*fields)[0], (*fields)[1]);
}

// ---------------------------------------------------------------------------
// Problems (reference semantics)
// ---------------------------------------------------------------------------

DecisionProblem ListMembershipProblem() {
  DecisionProblem p;
  p.name = "L_member";
  p.contains = [](const std::string& x) -> Result<bool> {
    auto fields = DecodeExactly(x, 3, "L_member");
    if (!fields.ok()) return fields.status();
    auto list = codec::DecodeInts((*fields)[1]);
    if (!list.ok()) return list.status();
    auto e = DecodeInt((*fields)[2]);
    if (!e.ok()) return e.status();
    return std::find(list->begin(), list->end(), *e) != list->end();
  };
  return p;
}

DecisionProblem ConnectivityProblem() {
  DecisionProblem p;
  p.name = "L_conn";
  p.contains = [](const std::string& x) -> Result<bool> {
    auto fields = DecodeExactly(x, 3, "L_conn");
    if (!fields.ok()) return fields.status();
    auto g = graph::Graph::Decode((*fields)[0]);
    if (!g.ok()) return g.status();
    auto s = DecodeInt((*fields)[1]);
    if (!s.ok()) return s.status();
    auto t = DecodeInt((*fields)[2]);
    if (!t.ok()) return t.status();
    if (*s < 0 || *s >= g->num_nodes() || *t < 0 || *t >= g->num_nodes()) {
      return Status::OutOfRange("endpoint out of range");
    }
    return graph::BfsReachable(*g, static_cast<graph::NodeId>(*s),
                               static_cast<graph::NodeId>(*t), nullptr);
  };
  return p;
}

DecisionProblem BdsProblem() {
  DecisionProblem p;
  p.name = "L_bds";
  p.contains = [](const std::string& x) -> Result<bool> {
    auto fields = DecodeExactly(x, 3, "L_bds");
    if (!fields.ok()) return fields.status();
    auto g = graph::Graph::Decode((*fields)[0]);
    if (!g.ok()) return g.status();
    auto u = DecodeInt((*fields)[1]);
    if (!u.ok()) return u.status();
    auto v = DecodeInt((*fields)[2]);
    if (!v.ok()) return v.status();
    return bds::BdsVisitedBeforeOnline(*g, static_cast<graph::NodeId>(*u),
                                       static_cast<graph::NodeId>(*v),
                                       nullptr);
  };
  return p;
}

DecisionProblem ReachabilityProblem() {
  DecisionProblem p;
  p.name = "L_reach";
  p.contains = [](const std::string& x) -> Result<bool> {
    auto fields = DecodeExactly(x, 3, "L_reach");
    if (!fields.ok()) return fields.status();
    auto g = graph::Graph::Decode((*fields)[0]);
    if (!g.ok()) return g.status();
    auto s = DecodeInt((*fields)[1]);
    if (!s.ok()) return s.status();
    auto t = DecodeInt((*fields)[2]);
    if (!t.ok()) return t.status();
    if (*s < 0 || *s >= g->num_nodes() || *t < 0 || *t >= g->num_nodes()) {
      return Status::OutOfRange("endpoint out of range");
    }
    return graph::BfsReachable(*g, static_cast<graph::NodeId>(*s),
                               static_cast<graph::NodeId>(*t), nullptr);
  };
  return p;
}

DecisionProblem CvpProblem() {
  DecisionProblem p;
  p.name = "L_cvp";
  p.contains = [](const std::string& x) -> Result<bool> {
    auto instance = circuit::CvpInstance::Decode(x);
    if (!instance.ok()) return instance.status();
    return instance->circuit.Evaluate(instance->assignment, nullptr);
  };
  return p;
}

DecisionProblem GateValueProblem() {
  DecisionProblem p;
  p.name = "L_gvp";
  p.contains = [](const std::string& x) -> Result<bool> {
    auto fields = DecodeExactly(x, 3, "L_gvp");
    if (!fields.ok()) return fields.status();
    auto instance = circuit::CvpInstance::Decode(
        codec::EncodeFields({(*fields)[0], (*fields)[1]}));
    if (!instance.ok()) return instance.status();
    auto gate = DecodeInt((*fields)[2]);
    if (!gate.ok()) return gate.status();
    if (*gate < 0 || *gate >= instance->circuit.num_gates()) {
      return Status::OutOfRange("gate id out of range");
    }
    auto values = instance->circuit.EvaluateAll(instance->assignment, nullptr);
    if (!values.ok()) return values.status();
    return (*values)[static_cast<size_t>(*gate)] != 0;
  };
  return p;
}

// ---------------------------------------------------------------------------
// Instance builders
// ---------------------------------------------------------------------------

std::string MakeMemberInstance(int64_t universe,
                               const std::vector<int64_t>& list, int64_t e) {
  return codec::EncodeFields({std::to_string(universe),
                              codec::EncodeInts(list), std::to_string(e)});
}

std::string MakeConnInstance(const graph::Graph& g, graph::NodeId s,
                             graph::NodeId t) {
  return codec::EncodeFields(
      {g.Encode(), std::to_string(s), std::to_string(t)});
}

std::string MakeBdsInstance(const graph::Graph& g, graph::NodeId u,
                            graph::NodeId v) {
  return codec::EncodeFields(
      {g.Encode(), std::to_string(u), std::to_string(v)});
}

std::string MakeReachInstance(const graph::Graph& g, graph::NodeId s,
                              graph::NodeId t) {
  return codec::EncodeFields(
      {g.Encode(), std::to_string(s), std::to_string(t)});
}

std::string MakeCvpInstanceString(const circuit::CvpInstance& instance) {
  return instance.Encode();
}

std::string MakeGvpInstance(const circuit::CvpInstance& instance,
                            circuit::GateId gate) {
  auto fields = codec::DecodeFields(instance.Encode());
  // CvpInstance::Encode always yields [circuit, bits].
  return codec::EncodeFields(
      {(*fields)[0], (*fields)[1], std::to_string(gate)});
}

// ---------------------------------------------------------------------------
// Factorizations
// ---------------------------------------------------------------------------

Factorization MemberFactorization() {
  return FieldSplitFactorization("Y_member", /*query_fields=*/1);
}
Factorization ConnFactorization() {
  return FieldSplitFactorization("Y_conn", /*query_fields=*/2);
}
Factorization BdsFactorization() {
  return FieldSplitFactorization("Y_BDS", /*query_fields=*/2);
}
Factorization ReachFactorization() {
  return FieldSplitFactorization("Y_reach", /*query_fields=*/2);
}
Factorization CvpCircuitDataFactorization() {
  return FieldSplitFactorization("Y_cvp_circ", /*query_fields=*/1);
}
Factorization GvpFactorization() {
  return FieldSplitFactorization("Y_gvp", /*query_fields=*/1);
}

// ---------------------------------------------------------------------------
// Witnesses
// ---------------------------------------------------------------------------

PiWitness MemberWitness() {
  PiWitness w;
  w.name = "sort+binary-search";
  w.preprocess = [](const std::string& data,
                    CostMeter* meter) -> Result<std::string> {
    auto fields = DecodeExactly(data, 2, "member data");
    if (!fields.ok()) return fields.status();
    auto list = codec::DecodeInts((*fields)[1]);
    if (!list.ok()) return list.status();
    std::sort(list->begin(), list->end());
    if (meter != nullptr) {
      const auto n = static_cast<int64_t>(list->size());
      meter->AddSerial(n * (ncsim::CeilLog2(n < 1 ? 1 : n) + 1));
    }
    return codec::EncodeInts(*list);
  };
  w.answer = [](const std::string& prepared, const std::string& query,
                CostMeter* meter) -> Result<bool> {
    auto sorted = codec::DecodeInts(prepared);
    if (!sorted.ok()) return sorted.status();
    auto e = DecodeInt(query);
    if (!e.ok()) return e.status();
    ncsim::ChargeBinarySearch(meter, static_cast<int64_t>(sorted->size()));
    return std::binary_search(sorted->begin(), sorted->end(), *e);
  };
  // Decoded view: the sorted column as a typed vector — a warm query is
  // one binary search, no O(|Π(D)|) re-decode.
  w.deserialize = DeserializeIntListView;
  w.answer_view = [](const void* view, const std::string& query,
                     CostMeter* meter) -> Result<bool> {
    const std::vector<int64_t>& sorted = IntListViewOf(view);
    auto e = DecodeInt(query);
    if (!e.ok()) return e.status();
    ncsim::ChargeBinarySearch(meter, static_cast<int64_t>(sorted.size()));
    return std::binary_search(sorted.begin(), sorted.end(), *e);
  };
  return w;
}

PiWitness ConnWitness() {
  PiWitness w;
  w.name = "component-labels";
  w.preprocess = [](const std::string& data,
                    CostMeter* meter) -> Result<std::string> {
    auto fields = DecodeExactly(data, 1, "conn data");
    if (!fields.ok()) return fields.status();
    auto g = graph::Graph::Decode((*fields)[0]);
    if (!g.ok()) return g.status();
    auto comp = graph::ConnectedComponents(*g);
    if (meter != nullptr) meter->AddSerial(g->num_nodes() + g->num_edges());
    std::vector<int64_t> labels(comp.component.begin(), comp.component.end());
    return codec::EncodeInts(labels);
  };
  w.answer = [](const std::string& prepared, const std::string& query,
                CostMeter* meter) -> Result<bool> {
    auto labels = codec::DecodeInts(prepared);
    if (!labels.ok()) return labels.status();
    auto q = DecodeIntPairQuery(query, "conn query");
    if (!q.ok()) return q.status();
    const auto [s, t] = *q;
    if (s < 0 || s >= static_cast<int64_t>(labels->size()) || t < 0 ||
        t >= static_cast<int64_t>(labels->size())) {
      return Status::OutOfRange("endpoint out of range");
    }
    if (meter != nullptr) meter->AddSerial(2);
    return (*labels)[static_cast<size_t>(s)] ==
           (*labels)[static_cast<size_t>(t)];
  };
  // Decoded view: the component-label array — a warm query is two O(1)
  // label probes.
  w.deserialize = DeserializeIntListView;
  w.answer_view = [](const void* view, const std::string& query,
                     CostMeter* meter) -> Result<bool> {
    const std::vector<int64_t>& labels = IntListViewOf(view);
    auto q = DecodeIntPairQuery(query, "conn query");
    if (!q.ok()) return q.status();
    const auto [s, t] = *q;
    if (s < 0 || s >= static_cast<int64_t>(labels.size()) || t < 0 ||
        t >= static_cast<int64_t>(labels.size())) {
      return Status::OutOfRange("endpoint out of range");
    }
    if (meter != nullptr) meter->AddSerial(2);
    return labels[static_cast<size_t>(s)] == labels[static_cast<size_t>(t)];
  };
  return w;
}

PiWitness BdsWitness() {
  PiWitness w;
  w.name = "BDS-order (Example 5)";
  w.preprocess = [](const std::string& data,
                    CostMeter* meter) -> Result<std::string> {
    auto fields = DecodeExactly(data, 1, "bds data");
    if (!fields.ok()) return fields.status();
    auto g = graph::Graph::Decode((*fields)[0]);
    if (!g.ok()) return g.status();
    // Π(G): run the breadth-depth search once; store the rank of each node
    // in the visit order M (the inverted list).
    auto order = bds::BdsVisitOrder(*g, meter);
    std::vector<int64_t> rank(order.size(), 0);
    for (size_t pos = 0; pos < order.size(); ++pos) {
      rank[static_cast<size_t>(order[pos])] = static_cast<int64_t>(pos);
    }
    return codec::EncodeInts(rank);
  };
  w.answer = [](const std::string& prepared, const std::string& query,
                CostMeter* meter) -> Result<bool> {
    auto rank = codec::DecodeInts(prepared);
    if (!rank.ok()) return rank.status();
    auto q = DecodeIntPairQuery(query, "bds query");
    if (!q.ok()) return q.status();
    const auto [u, v] = *q;
    if (u < 0 || u >= static_cast<int64_t>(rank->size()) || v < 0 ||
        v >= static_cast<int64_t>(rank->size())) {
      return Status::OutOfRange("node id out of range");
    }
    // The paper's bound: two binary searches on M, O(log |M|).
    ncsim::ChargeBinarySearch(meter, static_cast<int64_t>(rank->size()));
    ncsim::ChargeBinarySearch(meter, static_cast<int64_t>(rank->size()));
    return (*rank)[static_cast<size_t>(u)] < (*rank)[static_cast<size_t>(v)];
  };
  // Decoded view: the rank array of Example 5's visit order M — a warm
  // query is the same two charged searches without re-decoding M.
  w.deserialize = DeserializeIntListView;
  w.answer_view = [](const void* view, const std::string& query,
                     CostMeter* meter) -> Result<bool> {
    const std::vector<int64_t>& rank = IntListViewOf(view);
    auto q = DecodeIntPairQuery(query, "bds query");
    if (!q.ok()) return q.status();
    const auto [u, v] = *q;
    if (u < 0 || u >= static_cast<int64_t>(rank.size()) || v < 0 ||
        v >= static_cast<int64_t>(rank.size())) {
      return Status::OutOfRange("node id out of range");
    }
    ncsim::ChargeBinarySearch(meter, static_cast<int64_t>(rank.size()));
    ncsim::ChargeBinarySearch(meter, static_cast<int64_t>(rank.size()));
    return rank[static_cast<size_t>(u)] < rank[static_cast<size_t>(v)];
  };
  return w;
}

PiWitness GvpWitness() {
  PiWitness w;
  w.name = "evaluate-all-gates";
  w.preprocess = [](const std::string& data,
                    CostMeter* meter) -> Result<std::string> {
    auto instance = circuit::CvpInstance::Decode(data);
    if (!instance.ok()) return instance.status();
    auto values = instance->circuit.EvaluateAll(instance->assignment, meter);
    if (!values.ok()) return values.status();
    std::string bitmap(values->size(), '0');
    for (size_t i = 0; i < values->size(); ++i) {
      if ((*values)[i]) bitmap[i] = '1';
    }
    return bitmap;
  };
  w.answer = [](const std::string& prepared, const std::string& query,
                CostMeter* meter) -> Result<bool> {
    auto gate = DecodeInt(query);
    if (!gate.ok()) return gate.status();
    if (*gate < 0 || *gate >= static_cast<int64_t>(prepared.size())) {
      return Status::OutOfRange("gate id out of range");
    }
    if (meter != nullptr) {
      meter->AddSerial(1);
      meter->AddBytesRead(1);
    }
    return prepared[static_cast<size_t>(*gate)] == '1';
  };
  // The bitmap is already its own O(1)-probe structure, so the "view" is
  // the payload itself: an aliasing shared_ptr, zero bytes copied. GVP
  // rides the same warm path as the rest without doubling its residency.
  w.deserialize = [](const std::shared_ptr<const std::string>& prepared,
                     CostMeter*) -> Result<PiViewPtr> {
    return PiViewPtr(prepared, static_cast<const void*>(prepared.get()));
  };
  w.answer_view = [](const void* view, const std::string& query,
                     CostMeter* meter) -> Result<bool> {
    const std::string& bitmap = *static_cast<const std::string*>(view);
    auto gate = DecodeInt(query);
    if (!gate.ok()) return gate.status();
    if (*gate < 0 || *gate >= static_cast<int64_t>(bitmap.size())) {
      return Status::OutOfRange("gate id out of range");
    }
    if (meter != nullptr) {
      meter->AddSerial(1);
      meter->AddBytesRead(1);
    }
    return bitmap[static_cast<size_t>(*gate)] == '1';
  };
  return w;
}

PiWitness CvpEmptyDataWitness() {
  PiWitness w;
  w.name = "Y0: preprocess nothing, evaluate per query";
  w.preprocess = [](const std::string& data,
                    CostMeter* meter) -> Result<std::string> {
    if (!data.empty()) {
      return Status::InvalidArgument("Y0 data part must be empty");
    }
    // Π(ε) is a constant function — there is nothing to preprocess, which
    // is precisely why this factorization cannot make CVP Π-tractable
    // (Theorem 9).
    if (meter != nullptr) meter->AddSerial(1);
    return std::string();
  };
  w.answer = [](const std::string& prepared, const std::string& query,
                CostMeter* meter) -> Result<bool> {
    if (!prepared.empty()) {
      return Status::InvalidArgument("Y0 preprocessed part must be empty");
    }
    auto instance = circuit::CvpInstance::Decode(query);
    if (!instance.ok()) return instance.status();
    return instance->circuit.Evaluate(instance->assignment, meter);
  };
  return w;
}

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

NcFactorReduction MemberToConnReduction() {
  NcFactorReduction r;
  r.name = "member<=conn";
  r.source_factorization = MemberFactorization();
  r.target_factorization = ConnFactorization();
  // α: (U, M) -> star graph with root 0 and value nodes 1..U; value m is
  // attached iff m ∈ M. A per-element (NC) map.
  r.alpha = [](const std::string& data) -> Result<std::string> {
    auto fields = DecodeExactly(data, 2, "member data");
    if (!fields.ok()) return fields.status();
    auto universe = DecodeInt((*fields)[0]);
    if (!universe.ok()) return universe.status();
    auto list = codec::DecodeInts((*fields)[1]);
    if (!list.ok()) return list.status();
    std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
    edges.reserve(list->size());
    for (int64_t m : *list) {
      if (m < 0 || m >= *universe) {
        return Status::OutOfRange("list element outside universe");
      }
      edges.emplace_back(0, static_cast<graph::NodeId>(1 + m));
    }
    auto g = graph::Graph::FromEdges(
        static_cast<graph::NodeId>(*universe + 1), edges,
        /*directed=*/false);
    if (!g.ok()) return g.status();
    return codec::EncodeFields({g->Encode()});
  };
  // β: e -> (0, 1 + e), touching only the query part.
  r.beta = [](const std::string& query) -> Result<std::string> {
    auto e = DecodeInt(query);
    if (!e.ok()) return e.status();
    if (*e < 0) return Status::OutOfRange("negative element");
    return codec::EncodeFields({"0", std::to_string(1 + *e)});
  };
  return r;
}

namespace {

/// The ConnToBds renumbering: s -> 0, the fresh isolated witness node is 1,
/// every other original node i -> i + 2 if i < s else i + 1.
graph::NodeId RenumberForBds(graph::NodeId i, graph::NodeId s) {
  if (i == s) return 0;
  return i < s ? i + 2 : i + 1;
}

}  // namespace

NcFactorReduction ConnToBdsReduction() {
  NcFactorReduction r;
  r.name = "conn<=bds";
  r.source_factorization = TrivialFactorization();
  r.target_factorization = BdsFactorization();
  // α sees the whole CONN instance (trivial factorization — the shape of
  // Theorem 5's hardness construction) and emits the renumbered graph plus
  // the isolated witness node.
  r.alpha = [](const std::string& x) -> Result<std::string> {
    auto fields = DecodeExactly(x, 3, "conn instance");
    if (!fields.ok()) return fields.status();
    auto g = graph::Graph::Decode((*fields)[0]);
    if (!g.ok()) return g.status();
    auto s = DecodeInt((*fields)[1]);
    if (!s.ok()) return s.status();
    const auto source = static_cast<graph::NodeId>(*s);
    if (source < 0 || source >= g->num_nodes()) {
      return Status::OutOfRange("source out of range");
    }
    std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
    for (const auto& [a, b] : g->Edges()) {
      edges.emplace_back(RenumberForBds(a, source),
                         RenumberForBds(b, source));
    }
    auto mapped = graph::Graph::FromEdges(g->num_nodes() + 1, edges,
                                          /*directed=*/false);
    if (!mapped.ok()) return mapped.status();
    return codec::EncodeFields({mapped->Encode()});
  };
  // β also sees the whole instance and emits (t', witness): the BDS of the
  // renumbered graph exhausts comp(s) starting at node 0, then restarts at
  // the isolated node 1 — so conn(s, t) iff t' is visited before node 1.
  r.beta = [](const std::string& x) -> Result<std::string> {
    auto fields = DecodeExactly(x, 3, "conn instance");
    if (!fields.ok()) return fields.status();
    auto s = DecodeInt((*fields)[1]);
    if (!s.ok()) return s.status();
    auto t = DecodeInt((*fields)[2]);
    if (!t.ok()) return t.status();
    const auto mapped_t = RenumberForBds(static_cast<graph::NodeId>(*t),
                                         static_cast<graph::NodeId>(*s));
    return codec::EncodeFields({std::to_string(mapped_t), "1"});
  };
  return r;
}

namespace {

/// The data part produced by CvpCircuitDataFactorization is the circuit
/// encoding wrapped as a single (escaped) field; unwrap before decoding.
Result<circuit::Circuit> DecodeCircuitDataPart(const std::string& data) {
  auto fields = DecodeExactly(data, 1, "cvp data part");
  if (!fields.ok()) return fields.status();
  return circuit::Circuit::Decode((*fields)[0]);
}

}  // namespace

// ---------------------------------------------------------------------------
// λ-rewriting: predicate selection (remark under Definition 1)
// ---------------------------------------------------------------------------

namespace {

constexpr int64_t kPredEq = 0;
constexpr int64_t kPredLe = 1;
constexpr int64_t kPredGe = 2;
constexpr int64_t kPredBetween = 3;
constexpr int64_t kIntervalMin = std::numeric_limits<int64_t>::min();
constexpr int64_t kIntervalMax = std::numeric_limits<int64_t>::max();

/// Normalizes "op,a(,b)" to the closed interval [lo, hi].
Result<std::pair<int64_t, int64_t>> PredicateToInterval(
    const std::string& predicate) {
  auto parts = codec::DecodeInts(predicate);
  if (!parts.ok()) return parts.status();
  if (parts->empty()) return Status::InvalidArgument("empty predicate");
  const int64_t op = (*parts)[0];
  switch (op) {
    case kPredEq:
      if (parts->size() != 2) {
        return Status::InvalidArgument("eq predicate needs 1 argument");
      }
      return std::make_pair((*parts)[1], (*parts)[1]);
    case kPredLe:
      if (parts->size() != 2) {
        return Status::InvalidArgument("le predicate needs 1 argument");
      }
      return std::make_pair(kIntervalMin, (*parts)[1]);
    case kPredGe:
      if (parts->size() != 2) {
        return Status::InvalidArgument("ge predicate needs 1 argument");
      }
      return std::make_pair((*parts)[1], kIntervalMax);
    case kPredBetween:
      if (parts->size() != 3) {
        return Status::InvalidArgument("between predicate needs 2 arguments");
      }
      return std::make_pair((*parts)[1], (*parts)[2]);
    default:
      return Status::InvalidArgument("unknown predicate op " +
                                     std::to_string(op));
  }
}

}  // namespace

DecisionProblem PredicateSelectionProblem() {
  DecisionProblem p;
  p.name = "L_sel";
  p.contains = [](const std::string& x) -> Result<bool> {
    auto fields = DecodeExactly(x, 3, "L_sel");
    if (!fields.ok()) return fields.status();
    auto list = codec::DecodeInts((*fields)[1]);
    if (!list.ok()) return list.status();
    auto interval = PredicateToInterval((*fields)[2]);
    if (!interval.ok()) return interval.status();
    for (int64_t m : *list) {
      if (m >= interval->first && m <= interval->second) return true;
    }
    return false;
  };
  return p;
}

std::string MakeSelectionInstance(int64_t universe,
                                  const std::vector<int64_t>& list,
                                  const std::vector<int64_t>& predicate) {
  return codec::EncodeFields({std::to_string(universe),
                              codec::EncodeInts(list),
                              codec::EncodeInts(predicate)});
}

Factorization SelectionFactorization() {
  return FieldSplitFactorization("Y_sel", /*query_fields=*/1);
}

QueryRewriter IntervalNormalizingRewriter() {
  QueryRewriter r;
  r.name = "lambda: predicate -> interval";
  r.lambda = [](const std::string& query) -> Result<std::string> {
    auto interval = PredicateToInterval(query);
    if (!interval.ok()) return interval.status();
    return codec::EncodeInts({interval->first, interval->second});
  };
  return r;
}

PiWitness IntervalWitness() {
  PiWitness w;
  w.name = "sorted-list interval probe";
  // Same Π as the membership witness: sort once.
  w.preprocess = MemberWitness().preprocess;
  w.answer = [](const std::string& prepared, const std::string& query,
                CostMeter* meter) -> Result<bool> {
    auto sorted = codec::DecodeInts(prepared);
    if (!sorted.ok()) return sorted.status();
    auto bounds = codec::DecodeInts(query);
    if (!bounds.ok()) return bounds.status();
    if (bounds->size() != 2) {
      return Status::InvalidArgument("interval query needs 2 bounds");
    }
    const int64_t lo = (*bounds)[0];
    const int64_t hi = (*bounds)[1];
    if (lo > hi) return false;
    ncsim::ChargeBinarySearch(meter, static_cast<int64_t>(sorted->size()));
    auto it = std::lower_bound(sorted->begin(), sorted->end(), lo);
    return it != sorted->end() && *it <= hi;
  };
  // Same Π as the membership witness, same decoded view of it.
  w.deserialize = DeserializeIntListView;
  w.answer_view = [](const void* view, const std::string& query,
                     CostMeter* meter) -> Result<bool> {
    const std::vector<int64_t>& sorted = IntListViewOf(view);
    auto bounds = codec::DecodeInts(query);
    if (!bounds.ok()) return bounds.status();
    if (bounds->size() != 2) {
      return Status::InvalidArgument("interval query needs 2 bounds");
    }
    const int64_t lo = (*bounds)[0];
    const int64_t hi = (*bounds)[1];
    if (lo > hi) return false;
    ncsim::ChargeBinarySearch(meter, static_cast<int64_t>(sorted.size()));
    auto it = std::lower_bound(sorted.begin(), sorted.end(), lo);
    return it != sorted.end() && *it <= hi;
  };
  return w;
}

FReduction CvpToNandFReduction() {
  FReduction r;
  r.name = "cvp<=nandcvp";
  r.alpha = [](const std::string& data) -> Result<std::string> {
    auto c = DecodeCircuitDataPart(data);
    if (!c.ok()) return c.status();
    auto nand = circuit::ToNandOnly(*c);
    if (!nand.ok()) return nand.status();
    return codec::EncodeFields({nand->Encode()});
  };
  r.beta = [](const std::string& query) -> Result<std::string> {
    return query;  // the assignment is unchanged
  };
  return r;
}

FReduction CvpToMonotoneFReduction() {
  FReduction r;
  r.name = "cvp<=mcvp";
  r.alpha = [](const std::string& data) -> Result<std::string> {
    auto c = DecodeCircuitDataPart(data);
    if (!c.ok()) return c.status();
    auto mono = circuit::ToMonotoneDoubleRail(*c);
    if (!mono.ok()) return mono.status();
    return codec::EncodeFields({mono->Encode()});
  };
  r.beta = [](const std::string& query) -> Result<std::string> {
    std::string doubled;
    doubled.reserve(query.size() * 2);
    for (char bit : query) {
      if (bit != '0' && bit != '1') {
        return Status::InvalidArgument("bad assignment bit");
      }
      doubled.push_back(bit);
      doubled.push_back(bit == '1' ? '0' : '1');
    }
    return doubled;
  };
  return r;
}

}  // namespace core
}  // namespace pitract
